package shard_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/shard"
	"repro/internal/testutil"
)

func newCounter(t *testing.T, shards int, threshold int64) (*shard.Monitor, *shard.Counter) {
	t.Helper()
	sm := shard.New(shards)
	return sm, sm.NewCounter("c", threshold)
}

func TestCounterBatchingThreshold(t *testing.T) {
	sm, c := newCounter(t, 4, 10)
	// Deltas below the threshold stay pending on their shard: nothing
	// published, the approximate total still zero.
	for s := 0; s < 4; s++ {
		s := s
		sm.DoShard(s, func(*core.Monitor) { c.Add(s, 3) })
	}
	if got := c.Approx(); got != 0 {
		t.Errorf("Approx = %d with all deltas sub-threshold, want 0", got)
	}
	if p := c.Publishes(); p != 0 {
		t.Errorf("published %d batches below threshold", p)
	}
	// Crossing the threshold on one shard publishes that shard's batch only.
	sm.DoShard(0, func(*core.Monitor) { c.Add(0, 7) }) // 3+7 = 10
	if got := c.Approx(); got != 10 {
		t.Errorf("Approx = %d after one threshold crossing, want 10", got)
	}
	if p := c.Publishes(); p != 1 {
		t.Errorf("publishes = %d, want 1", p)
	}
	// Flush drains the rest; Total is then exact.
	if got := c.Total(); got != 19 {
		t.Errorf("Total = %d, want 19", got)
	}
	if c.Name() != "c" {
		t.Errorf("Name = %q", c.Name())
	}
	// A zero delta is a no-op, not a publication.
	p := c.Publishes()
	sm.DoShard(1, func(*core.Monitor) { c.Add(1, 0) })
	if c.Publishes() != p {
		t.Error("Add(0) published")
	}
}

func TestCounterWatchMakesPrecise(t *testing.T) {
	sm, c := newCounter(t, 4, 100)
	sm.DoShard(2, func(*core.Monitor) { c.Add(2, 5) })
	done := c.Watch()
	// Watch flushed the pending delta...
	if got := c.Approx(); got != 5 {
		t.Errorf("Approx = %d after Watch flush, want 5", got)
	}
	// ...and while watched, every Add publishes immediately.
	sm.DoShard(3, func(*core.Monitor) { c.Add(3, 1) })
	if got := c.Approx(); got != 6 {
		t.Errorf("Approx = %d with watcher, want 6", got)
	}
	done()
	// Batching resumes once the last watcher leaves.
	sm.DoShard(3, func(*core.Monitor) { c.Add(3, 1) })
	if got := c.Approx(); got != 6 {
		t.Errorf("Approx = %d after unwatch, want 6 (batched)", got)
	}
}

func TestCounterAwaitAtLeastSeesBatchedDeltas(t *testing.T) {
	sm, c := newCounter(t, 4, 1000) // threshold never crossed by the adds
	got := make(chan int64, 1)
	go func() {
		if err := c.AwaitAtLeast(5); err != nil {
			panic(err)
		}
		got <- c.Approx()
	}()
	testutil.WaitFor(t, 5*time.Second, 0, func() bool { return c.Summary().Waiting() >= 1 },
		"aggregate waiter parked")
	// Sub-threshold adds on scattered shards: the parked watcher forces
	// precise publication, so the bound is reached without any flush.
	for i := 0; i < 5; i++ {
		s := i % 4
		sm.DoShard(s, func(*core.Monitor) { c.Add(s, 1) })
	}
	select {
	case v := <-got:
		if v < 5 {
			t.Errorf("waiter released at published total %d < bound 5", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("aggregate waiter missed batched deltas")
	}
	if w := c.Summary().Waiting(); w != 0 {
		t.Errorf("summary leaked %d waiters", w)
	}
}

func TestCounterAwaitAtMostAndCtx(t *testing.T) {
	sm, c := newCounter(t, 2, 1)
	sm.DoShard(0, func(*core.Monitor) { c.Add(0, 3) })
	done := make(chan struct{})
	go func() {
		if err := c.AwaitAtMost(0); err != nil {
			panic(err)
		}
		close(done)
	}()
	testutil.WaitFor(t, 5*time.Second, 0, func() bool { return c.Summary().Waiting() >= 1 }, "drain waiter parked")
	sm.DoShard(1, func(*core.Monitor) { c.Add(1, -3) })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("drain waiter never released")
	}

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() { errCh <- c.AwaitAtLeastCtx(ctx, 1<<40) }()
	testutil.WaitFor(t, 5*time.Second, 0, func() bool { return c.Summary().Waiting() >= 1 }, "ctx waiter parked")
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("AwaitAtLeastCtx = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled aggregate waiter stuck")
	}
	if w := c.Summary().Waiting(); w != 0 {
		t.Errorf("summary leaked %d waiters after cancel", w)
	}
}

func TestCounterEpochFencingAndPoke(t *testing.T) {
	_, c := newCounter(t, 2, 1)
	e := c.Epoch()
	// The bound (total >= 0) already holds, but the epoch fence keeps the
	// waiter parked until something is published after the snapshot.
	done := make(chan struct{})
	go func() {
		if err := c.AwaitAtLeastSince(nil, 0, e); err != nil {
			panic(err)
		}
		close(done)
	}()
	testutil.WaitFor(t, 5*time.Second, 0, func() bool { return c.Summary().Waiting() >= 1 }, "fenced waiter parked")
	select {
	case <-done:
		t.Fatal("epoch fence did not hold")
	case <-time.After(20 * time.Millisecond):
	}
	// Poke bumps the epoch without touching the total and releases it.
	c.Poke()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("poked waiter never released")
	}
	if c.Epoch() <= e {
		t.Error("Poke did not advance the epoch")
	}
}

// TestCounterWatchCorpusMirror is the real-implementation mirror of the
// simcheck "counter-watch" corpus program (2 shards, threshold 3, two
// sub-threshold adders racing a bound waiter). The model's exhaustive
// exploration proves the watch protocol — watch++ then flush-all-shards
// then park, with watched adds publishing immediately — releases the
// waiter on every schedule; this loops the concrete race under -race so
// a regression in that handshake shows up as a hang here.
func TestCounterWatchCorpusMirror(t *testing.T) {
	for i := 0; i < 50; i++ {
		sm, c := newCounter(t, 2, 3)
		var wg sync.WaitGroup
		wg.Add(3)
		released := make(chan struct{})
		go func() { // watcher: bound 2 is only reachable via precise publication
			defer wg.Done()
			if err := c.AwaitAtLeast(2); err != nil {
				panic(err)
			}
			close(released)
		}()
		for s := 0; s < 2; s++ {
			s := s
			go func() { // adder: one sub-threshold delta on its own shard
				defer wg.Done()
				sm.DoShard(s, func(*core.Monitor) { c.Add(s, 1) })
			}()
		}
		select {
		case <-testutil.Done(&wg):
		case <-time.After(5 * time.Second):
			t.Fatalf("iteration %d: watcher stranded on batched deltas", i)
		}
		<-released
		if got := c.Total(); got != 2 {
			t.Fatalf("iteration %d: Total = %d, want 2", i, got)
		}
		if w := c.Summary().Waiting() + sm.Waiting(); w != 0 {
			t.Fatalf("iteration %d: %d waiters leaked", i, w)
		}
	}
}

// TestCounterConcurrentConformance is the aggregate-predicate conformance
// test: many goroutines mutate the counter through random shards while
// bounded waiters come and go; every waiter must observe its bound in the
// published total at release, the final total must be exact, and nothing
// may leak. Run under -race in CI.
func TestCounterConcurrentConformance(t *testing.T) {
	const (
		shards   = 8
		adders   = 8
		opsEach  = 300
		waiters  = 6
		perAdder = opsEach // each adder nets +opsEach
	)
	sm, c := newCounter(t, shards, 5)
	defer testutil.NoLeaks(t, sm, c.Summary())()
	var wg sync.WaitGroup
	for a := 0; a < adders; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			rng := uint64(a)*6364136223846793005 + 1442695040888963407
			for i := 0; i < opsEach; i++ {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				s := int(rng % shards)
				// +2 then −1 in separate sections: the counter dips and
				// climbs, netting +1 per iteration.
				sm.DoShard(s, func(*core.Monitor) { c.Add(s, 2) })
				s2 := int((rng >> 8) % shards)
				sm.DoShard(s2, func(*core.Monitor) { c.Add(s2, -1) })
			}
		}(a)
	}
	for w := 0; w < waiters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each bound is eventually exceeded for good (the count climbs
			// to adders·perAdder); the waiter releasing at all is the
			// assertion — a lost batched delta would strand it forever.
			bound := int64((w + 1) * adders * perAdder / (waiters + 1))
			if err := c.AwaitAtLeast(bound); err != nil {
				panic(err)
			}
		}(w)
	}
	wg.Wait()
	if got, want := c.Total(), int64(adders*perAdder); got != want {
		t.Errorf("final Total = %d, want %d", got, want)
	}
	if w := c.Summary().Waiting(); w != 0 {
		t.Errorf("summary leaked %d waiters", w)
	}
	if w := sm.Waiting(); w != 0 {
		t.Errorf("shards leaked %d waiters", w)
	}
}
