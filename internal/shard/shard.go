// Package shard implements a hash-partitioned automatic-signal monitor:
// protected state is split by key across S inner core.Monitor instances,
// each with its own mutex, condition manager, tag index, and entry lists,
// so operations on independent keys proceed in parallel and the relay
// search on every exit walks only the predicate groups of one shard.
//
// A single monitor's relay cost grows with the number of co-resident
// predicate groups (findTrue visits every shared-expression group with a
// signalable waiter), so even a perfectly tagged workload serializes on
// one lock and one group table. Partitioning keeps the paper's guarantees
// intact per shard — relay invariance, no broadcasts, tag-pruned search —
// while dividing both the lock traffic and the group population by S.
//
// Cross-shard conditions ("total free slots across all shards ≥ n") are
// expressed with a Counter: per-shard counter cells accumulate deltas
// under their shard's lock and publish them to a small summary monitor in
// batches (threshold/epoch propagation), so the hot path touches one
// shard only. Waiters on the aggregate park on the summary monitor and a
// watch protocol (precise-mode flag plus a flush) guarantees no update is
// lost while anyone is watching; see Counter.
package shard

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/stats"
)

// config collects construction options.
type config struct {
	monOpts []core.Option
	setup   func(shard int, m *core.Monitor)
}

// Option configures New.
type Option func(*config)

// WithMonitorOptions passes core options (WithoutTagging, WithProfiling,
// …) to every inner monitor, and to the summary monitors of counters
// created later.
func WithMonitorOptions(opts ...core.Option) Option {
	return func(c *config) { c.monOpts = append(c.monOpts, opts...) }
}

// WithSetup runs fn once per shard at construction, before the monitor is
// shared: declare each shard's cells (and compile shard-resident
// predicates) here. Uniform declarations — the same cell names on every
// shard — are what make Compile and shard-agnostic predicates work.
func WithSetup(fn func(shard int, m *core.Monitor)) Option {
	return func(c *config) { c.setup = fn }
}

// Monitor is a sharded automatic-signal monitor. The per-key methods
// (Do, Enter/Exit, AwaitPred, ArmFunc, …) mirror the Mechanism surface of
// a single monitor with a routing key in front: every key deterministically
// maps to one shard, and two operations contend only when their keys
// collide. Stats are merged across shards with core.Stats.Add; Waiting
// sums the per-shard registered-waiter counts.
type Monitor struct {
	shards  []*core.Monitor
	monOpts []core.Option
}

// New constructs a sharded monitor with n inner automatic-signal
// monitors. n must be positive; 1 degenerates to a single core.Monitor
// behind the key-routing surface (the conformance reference).
func New(n int, opts ...Option) *Monitor {
	if n <= 0 {
		panic(fmt.Sprintf("shard: monitor needs a positive shard count, got %d", n))
	}
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	sm := &Monitor{shards: make([]*core.Monitor, n), monOpts: cfg.monOpts}
	for i := range sm.shards {
		sm.shards[i] = core.New(cfg.monOpts...)
		if cfg.setup != nil {
			cfg.setup(i, sm.shards[i])
		}
	}
	return sm
}

// NumShards returns the shard count.
func (sm *Monitor) NumShards() int { return len(sm.shards) }

// IndexFor is the pure routing function: the shard index key maps to
// among n shards. Exposed so setup code can compute ownership before the
// Monitor exists (declaring each key's cells on its owner shard).
func IndexFor(key uint64, n int) int {
	// fmix64: full-avalanche finalizer, so clustered keys spread.
	key ^= key >> 33
	key *= 0xff51afd7ed558ccd
	key ^= key >> 33
	key *= 0xc4ceb9fe1a85ec53
	key ^= key >> 33
	return int(key % uint64(n))
}

// StringKey hashes a string key (FNV-1a) into the uint64 key space.
func StringKey(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Index returns the shard index owning key.
func (sm *Monitor) Index(key uint64) int { return IndexFor(key, len(sm.shards)) }

// Of returns the inner monitor owning key.
func (sm *Monitor) Of(key uint64) *core.Monitor { return sm.shards[sm.Index(key)] }

// Shard returns the inner monitor at index i (for per-shard setup,
// stealing sweeps, and tests).
func (sm *Monitor) Shard(i int) *core.Monitor { return sm.shards[i] }

// Enter acquires the monitor of key's shard and returns it, so the
// critical section can read and write the shard's cells. Pair with
// Exit(key) — the same key, or the monitor's own Exit.
func (sm *Monitor) Enter(key uint64) *core.Monitor {
	m := sm.Of(key)
	m.Enter()
	return m
}

// Exit releases the monitor of key's shard (running its relay step).
func (sm *Monitor) Exit(key uint64) { sm.Of(key).Exit() }

// Do runs f inside key's shard: Enter, f(shard monitor), Exit.
func (sm *Monitor) Do(key uint64, f func(m *core.Monitor)) {
	m := sm.Of(key)
	m.Enter()
	defer m.Exit()
	f(m)
}

// DoShard is Do by shard index rather than key (stealing sweeps, flushes).
func (sm *Monitor) DoShard(i int, f func(m *core.Monitor)) {
	m := sm.shards[i]
	m.Enter()
	defer m.Exit()
	f(m)
}

// AwaitPred waits on key's shard for a sharded predicate; the caller must
// hold that shard (Enter(key) first), exactly as core.Monitor.AwaitPred.
func (sm *Monitor) AwaitPred(key uint64, p *Predicate, binds ...core.Binding) error {
	i := sm.Index(key)
	return sm.shards[i].AwaitPred(p.On(i), binds...)
}

// AwaitPredCtx is AwaitPred with cancellation; like the core form it
// returns holding the shard's monitor even when abandoning.
func (sm *Monitor) AwaitPredCtx(ctx context.Context, key uint64, p *Predicate, binds ...core.Binding) error {
	i := sm.Index(key)
	return sm.shards[i].AwaitPredCtx(ctx, p.On(i), binds...)
}

// AwaitPredDeadline is AwaitPred with an absolute deadline; the expiry
// rides the owning shard's timer wheel (each shard services its own
// deadlines — no cross-shard timer traffic).
func (sm *Monitor) AwaitPredDeadline(deadline time.Time, key uint64, p *Predicate, binds ...core.Binding) error {
	i := sm.Index(key)
	return sm.shards[i].AwaitPredDeadline(deadline, p.On(i), binds...)
}

// AwaitFunc blocks on key's shard until the closure holds; caller inside
// the shard's monitor.
func (sm *Monitor) AwaitFunc(key uint64, pred func() bool) { sm.Of(key).AwaitFunc(pred) }

// AwaitFuncCtx is AwaitFunc with cancellation.
func (sm *Monitor) AwaitFuncCtx(ctx context.Context, key uint64, pred func() bool) error {
	return sm.Of(key).AwaitFuncCtx(ctx, pred)
}

// AwaitFuncDeadline is AwaitFunc with an absolute deadline on key's
// shard; see core.Monitor.AwaitFuncDeadline for the expiry semantics.
func (sm *Monitor) AwaitFuncDeadline(deadline time.Time, key uint64, pred func() bool) error {
	return sm.Of(key).AwaitFuncDeadline(deadline, pred)
}

// AwaitFuncTimeout is AwaitFuncDeadline with a relative duration.
func (sm *Monitor) AwaitFuncTimeout(d time.Duration, key uint64, pred func() bool) error {
	return sm.Of(key).AwaitFuncTimeout(d, pred)
}

// Arm registers a handle for a sharded predicate on key's shard without
// blocking; call outside the shard's monitor, as Predicate.Arm.
func (sm *Monitor) Arm(key uint64, p *Predicate, binds ...core.Binding) *core.Wait {
	return p.On(sm.Index(key)).Arm(binds...)
}

// When returns the guarded region for a sharded predicate on key's
// shard: Do atomically enters that shard, awaits the predicate, runs the
// body, and exits with a panic-safe unlock. Guards of different keys may
// live on different shards — different inner monitors — and compose with
// core.Select exactly like guards of unrelated monitors, so one
// goroutine can serve many keys with first-true-wins selection and no
// parked goroutine per key.
func (sm *Monitor) When(key uint64, p *Predicate, binds ...core.Binding) *core.Guard {
	i := sm.Index(key)
	return sm.shards[i].When(p.On(i), binds...)
}

// WhenFunc is When for a closure predicate on key's shard; the closure
// must only read state guarded by that shard's monitor.
func (sm *Monitor) WhenFunc(key uint64, pred func() bool) *core.Guard {
	return sm.Of(key).WhenFunc(pred)
}

// WhenShard is WhenFunc by shard index rather than key (maintenance
// sweeps and rebalancers address shards directly, as with DoShard).
func (sm *Monitor) WhenShard(i int, pred func() bool) *core.Guard {
	return sm.shards[i].WhenFunc(pred)
}

// TryPred evaluates a sharded predicate once on key's shard; caller
// inside the shard's monitor.
func (sm *Monitor) TryPred(key uint64, p *Predicate, binds ...core.Binding) (bool, error) {
	i := sm.Index(key)
	return sm.shards[i].TryPred(p.On(i), binds...)
}

// ArmFunc registers a closure-predicate handle on key's shard; call
// outside the shard's monitor.
func (sm *Monitor) ArmFunc(key uint64, pred func() bool) *core.Wait {
	return sm.Of(key).ArmFunc(pred)
}

// TryFunc evaluates the closure once on key's shard; caller inside the
// shard's monitor.
func (sm *Monitor) TryFunc(key uint64, pred func() bool) bool { return sm.Of(key).TryFunc(pred) }

// TrySteal runs try inside the home shard and then, on failure, inside
// every other shard in rotation order — the work-stealing sweep: a caller
// that can be served by any shard (take a task, claim permits) probes its
// own shard first for locality and falls back to stealing before it ever
// parks. try runs under the visited shard's monitor and reports whether
// that shard satisfied the request; the sweep stops at the first success.
// The visited shard index is returned so the caller can account locality.
func (sm *Monitor) TrySteal(home int, try func(m *core.Monitor, shard int) bool) (int, bool) {
	n := len(sm.shards)
	for off := 0; off < n; off++ {
		i := (home + off) % n
		ok := false
		sm.DoShard(i, func(m *core.Monitor) { ok = try(m, i) })
		if ok {
			return i, true
		}
	}
	return -1, false
}

// Stats returns the field-wise sum of every shard's counters (merged with
// core.Stats.Add), so sharded and single-monitor runs are compared on the
// same instrumentation.
func (sm *Monitor) Stats() core.Stats {
	var s core.Stats
	for _, m := range sm.shards {
		s = s.Add(m.Stats())
	}
	return s
}

// WaitLatency returns the merged wake-to-claim histogram across every
// shard (see core.Mechanism.WaitLatency), or nil if no shard has
// completed a parked wait.
func (sm *Monitor) WaitLatency() *stats.Histogram {
	var merged *stats.Histogram
	for _, m := range sm.shards {
		h := m.WaitLatency()
		if h == nil {
			continue
		}
		if merged == nil {
			merged = h
			continue
		}
		merged.Merge(h)
	}
	return merged
}

// StatsByShard returns each shard's counters (skew diagnostics).
func (sm *Monitor) StatsByShard() []core.Stats {
	out := make([]core.Stats, len(sm.shards))
	for i, m := range sm.shards {
		out[i] = m.Stats()
	}
	return out
}

// ResetStats zeroes every shard's counters.
func (sm *Monitor) ResetStats() {
	for _, m := range sm.shards {
		m.ResetStats()
	}
}

// Waiting returns the total registered-waiter count across shards; tests
// poll it instead of sleeping and assert zero for leak checks, as with a
// single monitor.
func (sm *Monitor) Waiting() int {
	n := 0
	for _, m := range sm.shards {
		n += m.Waiting()
	}
	return n
}

// WaitingByShard returns each shard's registered-waiter count — the
// queue-depth signal that drives work-stealing rebalance: a shard with
// parked waiters and no work is starved while its siblings are backed up.
func (sm *Monitor) WaitingByShard() []int {
	out := make([]int, len(sm.shards))
	for i, m := range sm.shards {
		out[i] = m.Waiting()
	}
	return out
}

// Hottest returns the index of the shard with the deepest waiter queue
// (ties to the lowest index) — where a rebalancer should deliver work.
func (sm *Monitor) Hottest() int {
	best, depth := 0, -1
	for i, m := range sm.shards {
		if w := m.Waiting(); w > depth {
			best, depth = i, w
		}
	}
	return best
}
