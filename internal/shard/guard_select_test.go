package shard_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/shard"
	"repro/internal/testutil"
)

// twoShardKeys returns two keys owned by different shards.
func twoShardKeys(sm *shard.Monitor) (uint64, uint64) {
	a := uint64(0)
	for b := uint64(1); ; b++ {
		if sm.Index(b) != sm.Index(a) {
			return a, b
		}
	}
}

// TestShardedWhenRoutesByKey: a keyed guard waits on its key's shard
// only, and Do runs the body under that shard's monitor.
func TestShardedWhenRoutesByKey(t *testing.T) {
	sm, cells := newCounted(t, 4)
	avail := sm.MustCompile("x > 0")
	ka, kb := twoShardKeys(sm)

	done := make(chan error, 1)
	go func() { done <- sm.When(ka, avail).Do(func() { cells[sm.Index(ka)].Add(-1) }) }()
	testutil.WaitFor(t, 10*time.Second, 0,
		func() bool { return sm.Shard(sm.Index(ka)).Waiting() == 1 },
		"guard parked on ka's shard")
	if w := sm.Shard(sm.Index(kb)).Waiting(); w != 0 {
		t.Fatalf("guard registered %d waiters on the wrong shard", w)
	}
	// A deposit on the OTHER shard must not satisfy it.
	sm.Do(kb, func(*core.Monitor) { cells[sm.Index(kb)].Add(1) })
	sm.Do(ka, func(*core.Monitor) { cells[sm.Index(ka)].Add(1) })
	if err := <-done; err != nil {
		t.Fatalf("keyed guard Do: %v", err)
	}
	sm.Do(kb, func(*core.Monitor) { cells[sm.Index(kb)].Add(-1) })
	if w := sm.Waiting(); w != 0 {
		t.Fatalf("%d waiters left", w)
	}
}

// TestSelectAcrossShards: one Select over guards on two different shards
// of the same sharded monitor — two genuinely distinct inner monitors.
// The shard whose key receives the token wins; nothing leaks on either.
func TestSelectAcrossShards(t *testing.T) {
	sm, cells := newCounted(t, 4)
	avail := sm.MustCompile("x > 0")
	ka, kb := twoShardKeys(sm)
	ia, ib := sm.Index(ka), sm.Index(kb)

	for round, key := range []uint64{ka, kb, ka} {
		res := make(chan int, 1)
		go func() {
			idx, err := core.Select(
				sm.When(ka, avail).Then(func() { cells[ia].Add(-1) }),
				sm.When(kb, avail).Then(func() { cells[ib].Add(-1) }),
			)
			if err != nil {
				t.Error(err)
			}
			res <- idx
		}()
		testutil.WaitFor(t, 10*time.Second, 0,
			func() bool { return sm.Shard(ia).Waiting() == 1 && sm.Shard(ib).Waiting() == 1 },
			"both shard guards armed (round %d)", round)
		sm.Do(key, func(m *core.Monitor) { cells[sm.Index(key)].Add(1) })
		want := 0
		if key == kb {
			want = 1
		}
		if got := <-res; got != want {
			t.Fatalf("round %d: winner = %d, want %d", round, got, want)
		}
		testutil.WaitFor(t, 5*time.Second, 0, func() bool { return sm.Waiting() == 0 },
			"losers cancelled (round %d)", round)
	}
}

// TestShardedWhenFuncAndWhenShard cover the closure-guard routes: by key
// and by shard index.
func TestShardedWhenFuncAndWhenShard(t *testing.T) {
	sm, cells := newCounted(t, 4)
	ka, _ := twoShardKeys(sm)
	ia := sm.Index(ka)

	gk := sm.WhenFunc(ka, func() bool { return cells[ia].Get() > 0 })
	gs := sm.WhenShard(ia, func() bool { return cells[ia].Get() > 1 })
	if gk.Try(func() {}) || gs.Try(func() {}) {
		t.Fatal("closure guards ran with predicates false")
	}
	sm.Do(ka, func(*core.Monitor) { cells[ia].Add(2) })
	if !gk.Try(func() { cells[ia].Add(-1) }) {
		t.Fatal("keyed closure guard did not fire")
	}
	// x is now 1: the shard-index guard (x > 1) must stay false.
	if gs.Try(func() {}) {
		t.Fatal("shard-index guard fired with predicate false")
	}
	sm.DoShard(ia, func(*core.Monitor) { cells[ia].Add(1) })
	if !gs.Try(func() { cells[ia].Add(-2) }) {
		t.Fatal("shard-index guard did not fire")
	}
	if w := sm.Waiting(); w != 0 {
		t.Fatalf("%d waiters left", w)
	}
}
