package shard_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/problems"
	"repro/internal/shard"
)

// kvHost abstracts "a monitor with per-key counters and per-key
// threshold waiters" so the exact same workload drives a sharded monitor
// and a single bare core.Monitor, and the end states can be diffed.
type kvHost interface {
	bump(k int)                  // +1 to key k's cell, inside the owner monitor
	awaitAtLeast(k int, r int64) // block until key k's cell ≥ r
	value(k int) int64
	waiting() int
	stats() core.Stats
}

type shardedHost struct {
	sm    *shard.Monitor
	cells []*core.IntCell
	preds []*core.Predicate
}

func newShardedHost(shards, keys int) *shardedHost {
	h := &shardedHost{cells: make([]*core.IntCell, keys), preds: make([]*core.Predicate, keys)}
	h.sm = shard.New(shards, shard.WithSetup(func(s int, m *core.Monitor) {
		for k := 0; k < keys; k++ {
			if shard.IndexFor(uint64(k), shards) == s {
				h.cells[k] = m.NewInt(fmt.Sprintf("v%d", k), 0)
			}
		}
	}))
	for k := 0; k < keys; k++ {
		h.preds[k] = h.sm.MustCompileAt(uint64(k), fmt.Sprintf("v%d >= r", k))
	}
	return h
}

func (h *shardedHost) bump(k int) {
	h.sm.Do(uint64(k), func(*core.Monitor) { h.cells[k].Add(1) })
}

func (h *shardedHost) awaitAtLeast(k int, r int64) {
	h.sm.Enter(uint64(k))
	if err := h.preds[k].Await(core.BindInt("r", r)); err != nil {
		panic(err)
	}
	h.sm.Exit(uint64(k))
}

func (h *shardedHost) value(k int) int64 {
	var v int64
	h.sm.Do(uint64(k), func(*core.Monitor) { v = h.cells[k].Get() })
	return v
}

func (h *shardedHost) waiting() int      { return h.sm.Waiting() }
func (h *shardedHost) stats() core.Stats { return h.sm.Stats() }

type singleHost struct {
	m     *core.Monitor
	cells []*core.IntCell
	preds []*core.Predicate
}

func newSingleHost(keys int) *singleHost {
	h := &singleHost{m: core.New(), cells: make([]*core.IntCell, keys), preds: make([]*core.Predicate, keys)}
	for k := 0; k < keys; k++ {
		h.cells[k] = h.m.NewInt(fmt.Sprintf("v%d", k), 0)
	}
	for k := 0; k < keys; k++ {
		h.preds[k] = h.m.MustCompile(fmt.Sprintf("v%d >= r", k))
	}
	return h
}

func (h *singleHost) bump(k int) { h.m.Do(func() { h.cells[k].Add(1) }) }

func (h *singleHost) awaitAtLeast(k int, r int64) {
	h.m.Enter()
	if err := h.preds[k].Await(core.BindInt("r", r)); err != nil {
		panic(err)
	}
	h.m.Exit()
}

func (h *singleHost) value(k int) int64 {
	var v int64
	h.m.Do(func() { v = h.cells[k].Get() })
	return v
}

func (h *singleHost) waiting() int      { return h.m.Waiting() }
func (h *singleHost) stats() core.Stats { return h.m.Stats() }

// driveKV runs the deterministic watch-store workload: pairs of
// publisher/subscriber goroutines over a seeded shared key sequence (the
// subscriber waits for exactly the versions its publisher creates).
// Returns the number of await calls issued, which is deterministic.
func driveKV(h kvHost, pairs, opsPer, keys int) uint64 {
	var wg sync.WaitGroup
	for i := 0; i < pairs; i++ {
		seed := uint64(i)*2654435761 + 17
		wg.Add(1)
		go func() { // publisher
			defer wg.Done()
			rng := seed
			for j := 0; j < opsPer; j++ {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				h.bump(int(rng % uint64(keys)))
			}
		}()
		wg.Add(1)
		go func() { // subscriber
			defer wg.Done()
			rng := seed
			seen := map[int]int64{}
			for j := 0; j < opsPer; j++ {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				k := int(rng % uint64(keys))
				seen[k]++
				h.awaitAtLeast(k, seen[k])
			}
		}()
	}
	wg.Wait()
	return uint64(pairs) * uint64(opsPer)
}

// TestShardedVsSingleMonitorConformance is the differential conformance
// test of the sharding layer: the identical keyed workload runs against a
// sharded monitor and a single core.Monitor, and everything observable
// must agree — the final value of every key cell, the await counts, zero
// leaked waiters, and zero broadcasts on either side. Wake-up and relay
// counts legitimately differ (that is the point of sharding); state must
// not. Run under -race in CI.
func TestShardedVsSingleMonitorConformance(t *testing.T) {
	const (
		shards = 8
		keys   = 48
		pairs  = 6
		opsPer = 250
	)
	sharded := newShardedHost(shards, keys)
	single := newSingleHost(keys)
	awaitsSharded := driveKV(sharded, pairs, opsPer, keys)
	awaitsSingle := driveKV(single, pairs, opsPer, keys)

	if awaitsSharded != awaitsSingle {
		t.Errorf("op counts diverge: sharded=%d single=%d", awaitsSharded, awaitsSingle)
	}
	for k := 0; k < keys; k++ {
		if sv, gv := sharded.value(k), single.value(k); sv != gv {
			t.Errorf("key %d: sharded cell = %d, single cell = %d", k, sv, gv)
		}
	}
	for name, h := range map[string]kvHost{"sharded": sharded, "single": single} {
		if w := h.waiting(); w != 0 {
			t.Errorf("%s monitor leaked %d waiters", name, w)
		}
		s := h.stats()
		if s.Broadcasts != 0 {
			t.Errorf("%s monitor broadcast %d times", name, s.Broadcasts)
		}
		if s.Awaits != awaitsSingle {
			t.Errorf("%s monitor counted %d awaits, want %d", name, s.Awaits, awaitsSingle)
		}
	}
}

// TestShardedKVScenarioShardSweep runs the registered sharded-kv scenario
// across partition counts, including the single-monitor degenerate case:
// conservation and operation counts must be invariant under the shard
// count — sharding changes performance, never outcomes.
func TestShardedKVScenarioShardSweep(t *testing.T) {
	const threads, ops = 8, 600
	var baseOps int64
	for i, shards := range []int{1, 2, 8, 16} {
		r := problems.RunShardedKVShards(problems.AutoSynch, threads, ops, shards)
		if r.Check != 0 {
			t.Errorf("shards=%d: check = %d, want 0", shards, r.Check)
		}
		if i == 0 {
			baseOps = r.Ops
		} else if r.Ops != baseOps {
			t.Errorf("shards=%d: ops = %d, want %d (invariant under sharding)", shards, r.Ops, baseOps)
		}
		if b := r.Stats.Broadcasts; b != 0 {
			t.Errorf("shards=%d: %d broadcasts", shards, b)
		}
	}
}
