package shard

import "repro/internal/core"

// Predicate is a waiting condition compiled once on every shard: the
// sharded analog of core.Predicate for conditions whose cells are
// declared uniformly (the same names on each shard, via WithSetup).
// Compilation cost — parse, type inference, DNF, tag templates — is paid
// S times at setup; each wait then routes by key to the shard-resident
// compiled form and pays only bind-and-enqueue, exactly as AwaitPred on a
// single monitor.
type Predicate struct {
	src string
	ps  []*core.Predicate
}

// Compile compiles src on every shard. It requires the predicate's shared
// variables to be declared on all shards (WithSetup with uniform names);
// per-key cells that live on a single shard are compiled with CompileAt
// instead.
func (sm *Monitor) Compile(src string) (*Predicate, error) {
	ps := make([]*core.Predicate, len(sm.shards))
	for i, m := range sm.shards {
		p, err := m.Compile(src)
		if err != nil {
			return nil, err
		}
		ps[i] = p
	}
	return &Predicate{src: src, ps: ps}, nil
}

// MustCompile is Compile for predicates known to be well-formed; it
// panics on error (scenario setup, static tables).
func (sm *Monitor) MustCompile(src string) *Predicate {
	p, err := sm.Compile(src)
	if err != nil {
		panic("shard: MustCompile: " + err.Error())
	}
	return p
}

// CompileAt compiles src on the shard owning key, for predicates over
// cells that exist only there (per-key state declared on the owner
// shard). The returned core.Predicate is bound to that shard's monitor:
// wait on it while holding Enter(key) of the same key.
func (sm *Monitor) CompileAt(key uint64, src string) (*core.Predicate, error) {
	return sm.Of(key).Compile(src)
}

// MustCompileAt is CompileAt, panicking on error.
func (sm *Monitor) MustCompileAt(key uint64, src string) *core.Predicate {
	p, err := sm.CompileAt(key, src)
	if err != nil {
		panic("shard: MustCompileAt: " + err.Error())
	}
	return p
}

// Src returns the predicate's source text.
func (p *Predicate) Src() string { return p.src }

// On returns the compiled form resident on shard i.
func (p *Predicate) On(i int) *core.Predicate { return p.ps[i] }
