package shard_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/shard"
	"repro/internal/testutil"
)

// newCounted builds a sharded monitor with one uniform "x" cell per
// shard, returning the cell handles.
func newCounted(t *testing.T, shards int, opts ...shard.Option) (*shard.Monitor, []*core.IntCell) {
	t.Helper()
	cells := make([]*core.IntCell, shards)
	opts = append(opts, shard.WithSetup(func(s int, m *core.Monitor) {
		cells[s] = m.NewInt("x", 0)
	}))
	return shard.New(shards, opts...), cells
}

func TestRoutingDeterministicAndCovering(t *testing.T) {
	sm, _ := newCounted(t, 8)
	seen := map[int]bool{}
	for k := uint64(0); k < 512; k++ {
		i := sm.Index(k)
		if i != sm.Index(k) {
			t.Fatalf("Index(%d) unstable", k)
		}
		if i != shard.IndexFor(k, 8) {
			t.Fatalf("Index(%d) = %d disagrees with IndexFor = %d", k, i, shard.IndexFor(k, 8))
		}
		if sm.Of(k) != sm.Shard(i) {
			t.Fatalf("Of(%d) is not Shard(Index(%d))", k, k)
		}
		seen[i] = true
	}
	if len(seen) != 8 {
		t.Errorf("512 keys hit only %d of 8 shards", len(seen))
	}
	if shard.StringKey("alpha") == shard.StringKey("beta") {
		t.Error("StringKey collides on trivially distinct strings")
	}
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) did not panic")
		}
	}()
	shard.New(0)
}

func TestShardIsolationAndDo(t *testing.T) {
	sm, cells := newCounted(t, 4)
	// Mutating through one key touches only its owner shard's cell.
	key := uint64(7)
	owner := sm.Index(key)
	sm.Do(key, func(m *core.Monitor) { cells[owner].Add(3) })
	for s := 0; s < 4; s++ {
		s := s
		var got int64
		sm.DoShard(s, func(*core.Monitor) { got = cells[s].Get() })
		want := int64(0)
		if s == owner {
			want = 3
		}
		if got != want {
			t.Errorf("shard %d cell = %d, want %d", s, got, want)
		}
	}
	// Enter returns the owning monitor, and Exit routes back to it.
	m := sm.Enter(key)
	if m != sm.Shard(owner) {
		t.Error("Enter(key) returned a foreign shard")
	}
	cells[owner].Add(1)
	sm.Exit(key)
	if got := sm.Stats().Awaits; got != 0 {
		t.Errorf("plain Do/Enter traffic produced %d awaits", got)
	}
}

func TestUniformPredicateWaitAndRelay(t *testing.T) {
	sm, cells := newCounted(t, 4)
	atLeast := sm.MustCompile("x >= n")
	key := uint64(42)
	owner := sm.Index(key)

	released := make(chan struct{})
	go func() {
		sm.Enter(key)
		if err := sm.AwaitPred(key, atLeast, core.BindInt("n", 5)); err != nil {
			panic(err)
		}
		sm.Exit(key)
		close(released)
	}()
	testutil.WaitFor(t, 5*time.Second, 0, func() bool { return sm.Waiting() == 1 }, "waiter parked")
	if d := sm.WaitingByShard(); d[owner] != 1 {
		t.Fatalf("WaitingByShard = %v, want the waiter on shard %d", d, owner)
	}
	if h := sm.Hottest(); h != owner {
		t.Errorf("Hottest = %d, want %d", h, owner)
	}
	// A mutation on a DIFFERENT shard must not wake it; on the owner it must.
	other := uint64(0)
	for sm.Index(other) == owner {
		other++
	}
	sm.Do(other, func(*core.Monitor) { cells[sm.Index(other)].Add(10) })
	select {
	case <-released:
		t.Fatal("waiter released by a foreign shard's mutation")
	case <-time.After(20 * time.Millisecond):
	}
	sm.Do(key, func(*core.Monitor) { cells[owner].Add(5) })
	select {
	case <-released:
	case <-time.After(5 * time.Second):
		t.Fatal("waiter not released by its own shard's mutation")
	}
	if w := sm.Waiting(); w != 0 {
		t.Errorf("Waiting = %d after release", w)
	}
	if b := sm.Stats().Broadcasts; b != 0 {
		t.Errorf("sharded monitor broadcast %d times", b)
	}
}

func TestAwaitPredCtxAbandon(t *testing.T) {
	sm, _ := newCounted(t, 4)
	never := sm.MustCompile("x >= n")
	key := uint64(3)
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		sm.Enter(key)
		err := sm.AwaitPredCtx(ctx, key, never, core.BindInt("n", 1<<40))
		sm.Exit(key) // cancellation returns holding the shard
		errCh <- err
	}()
	testutil.WaitFor(t, 5*time.Second, 0, func() bool { return sm.Waiting() == 1 }, "ctx waiter parked")
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter never returned")
	}
	if w := sm.Waiting(); w != 0 {
		t.Errorf("abandoned waiter leaked: Waiting = %d", w)
	}
}

func TestArmedHandlesOnShards(t *testing.T) {
	sm, cells := newCounted(t, 4)
	defer testutil.NoLeaks(t, sm)()
	hit := sm.MustCompile("x == n")
	// One handle per shard-distinct key, claimed from one goroutine.
	keys := []uint64{1, 2, 4, 8}
	handles := make(map[uint64]*core.Wait, len(keys))
	for _, k := range keys {
		handles[k] = sm.Arm(k, hit, core.BindInt("n", int64(k)))
	}
	if w := sm.Waiting(); w != len(keys) {
		t.Fatalf("armed %d handles, Waiting = %d", len(keys), w)
	}
	for _, k := range keys {
		k := k
		sm.Do(k, func(*core.Monitor) { cells[sm.Index(k)].Set(int64(k)) })
		<-handles[k].Ready()
		if err := handles[k].Claim(); err != nil {
			t.Fatalf("claim for key %d: %v", k, err)
		}
		cells[sm.Index(k)].Set(0)
		sm.Exit(k)
	}
	if w := sm.Waiting(); w != 0 {
		t.Errorf("handles leaked: Waiting = %d", w)
	}
	// ArmFunc rides the same machinery with a closure.
	k := uint64(16)
	fw := sm.ArmFunc(k, func() bool { return cells[sm.Index(k)].Get() > 0 })
	sm.Do(k, func(*core.Monitor) { cells[sm.Index(k)].Add(1) })
	<-fw.Ready()
	if err := fw.Claim(); err != nil {
		t.Fatalf("ArmFunc claim: %v", err)
	}
	sm.Exit(k)
	if w := sm.Waiting(); w != 0 {
		t.Errorf("func handle leaked: Waiting = %d", w)
	}
}

func TestTryFormsAndSteal(t *testing.T) {
	sm, cells := newCounted(t, 4)
	pos := sm.MustCompile("x > 0")
	key := uint64(9)
	sm.Enter(key)
	if ok, err := sm.TryPred(key, pos); err != nil || ok {
		t.Errorf("TryPred on zero cell = %v, %v", ok, err)
	}
	if sm.TryFunc(key, func() bool { return true }) != true {
		t.Error("TryFunc lied")
	}
	sm.Exit(key)

	// Seed exactly one non-home shard and steal from home 0.
	target := 2
	sm.DoShard(target, func(*core.Monitor) { cells[target].Set(1) })
	got, ok := sm.TrySteal(0, func(_ *core.Monitor, s int) bool {
		if cells[s].Get() > 0 {
			cells[s].Add(-1)
			return true
		}
		return false
	})
	if !ok || got != target {
		t.Errorf("TrySteal = (%d, %v), want (%d, true)", got, ok, target)
	}
	// Nothing left anywhere: the sweep reports failure.
	if s, ok := sm.TrySteal(1, func(_ *core.Monitor, s int) bool { return cells[s].Get() > 0 }); ok {
		t.Errorf("TrySteal found phantom work on shard %d", s)
	}
}

func TestStatsMergeResetByShard(t *testing.T) {
	sm, cells := newCounted(t, 3)
	for k := uint64(0); k < 30; k++ {
		k := k
		sm.Do(k, func(*core.Monitor) { cells[sm.Index(k)].Add(1) })
	}
	per := sm.StatsByShard()
	var manual core.Stats
	for _, s := range per {
		manual = manual.Add(s)
	}
	if merged := sm.Stats(); merged != manual {
		t.Errorf("Stats() = %+v differs from the Add-merge of StatsByShard", merged)
	}
	if sm.Stats().RelayCalls == 0 {
		t.Error("no relay calls recorded across 30 exits")
	}
	sm.ResetStats()
	if s := sm.Stats(); s != (core.Stats{}) {
		t.Errorf("ResetStats left %+v", s)
	}
}

func TestCompileErrorsAndCompileAt(t *testing.T) {
	sm := shard.New(2, shard.WithSetup(func(s int, m *core.Monitor) {
		m.NewInt("x", 0)
		if s == 1 {
			m.NewInt("only1", 0)
		}
	}))
	if _, err := sm.Compile("x >"); err == nil {
		t.Error("Compile of malformed source succeeded")
	}
	// A cell present on one shard only compiles everywhere — undeclared
	// names become thread-locals, as in core.Compile — but the compiled
	// forms then disagree about what must be bound: that is the hazard
	// CompileAt exists to avoid.
	nonuniform, err := sm.Compile("only1 >= 1")
	if err != nil {
		t.Fatalf("Compile of a non-uniform cell: %v", err)
	}
	if locals := nonuniform.On(0).Locals(); len(locals) != 1 || locals[0] != "only1" {
		t.Errorf("shard 0 treats undeclared only1 as locals %v, want [only1]", locals)
	}
	if locals := nonuniform.On(1).Locals(); len(locals) != 0 {
		t.Errorf("shard 1 owns only1 but compiled locals %v", locals)
	}
	var k1 uint64
	for sm.Index(k1) != 1 {
		k1++
	}
	if _, err := sm.CompileAt(k1, "only1 >= 1"); err != nil {
		t.Errorf("CompileAt on the owner shard failed: %v", err)
	}
	p := sm.MustCompile("x >= 1")
	if p.Src() != "x >= 1" {
		t.Errorf("Src = %q", p.Src())
	}
	if p.On(0) == p.On(1) {
		t.Error("per-shard compiled predicates alias one monitor")
	}
}

// TestParallelKeyedTraffic drives random keyed increments from many
// goroutines with per-key waiters and checks conservation plus leak-free
// shutdown — the -race exercise of the routing layer.
func TestParallelKeyedTraffic(t *testing.T) {
	const (
		shards  = 8
		keys    = 64
		workers = 16
		opsEach = 200
	)
	cells := make([]*core.IntCell, keys)
	sm := shard.New(shards, shard.WithSetup(func(s int, m *core.Monitor) {
		for k := 0; k < keys; k++ {
			if shard.IndexFor(uint64(k), shards) == s {
				cells[k] = m.NewInt(fmt.Sprintf("k%d", k), 0)
			}
		}
	}))
	defer testutil.NoLeaks(t, sm)()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := uint64(w)*0x9e3779b97f4a7c15 + 1
			for i := 0; i < opsEach; i++ {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				k := rng % keys
				sm.Do(k, func(*core.Monitor) { cells[k].Add(1) })
			}
		}(w)
	}
	wg.Wait()
	var sum int64
	for k := 0; k < keys; k++ {
		k := k
		sm.Do(uint64(k), func(*core.Monitor) { sum += cells[k].Get() })
	}
	if want := int64(workers * opsEach); sum != want {
		t.Errorf("conservation: cells sum to %d, want %d", sum, want)
	}
	if w := sm.Waiting(); w != 0 {
		t.Errorf("Waiting = %d after quiesce", w)
	}
}
