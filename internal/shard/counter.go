package shard

import (
	"context"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/obs"
)

// Counter is a cross-shard aggregate: a logical integer whose increments
// land on whichever shard the mutating operation already holds, so the
// hot path never takes a second lock. Each shard accumulates a pending
// delta under its own monitor; when the delta's magnitude reaches the
// publication threshold — or immediately, while anyone is watching the
// aggregate — it is published into a dedicated summary monitor:
//
//	total — the published aggregate value ("total" cell)
//	ep    — the publication epoch, bumped once per published batch
//
// Aggregate predicates ("total free slots across all shards ≥ n") are
// therefore ordinary compiled predicates on the summary monitor, with the
// full relay/tagging machinery behind them: AwaitAtLeast parks exactly
// like any threshold-tagged waiter, and publication exits relay to it.
//
// Batching trades staleness for throughput: with threshold t and S shards
// the published total lags the true value by at most S·(t−1) in each
// direction. The watch protocol removes the staleness exactly when it
// matters: a waiter first enters precise mode (every subsequent Add
// publishes immediately), then flushes all pending deltas, then parks.
// Any mutation is thus either captured by the flush or published on its
// own — no wake-up is lost — and batching resumes when the last watcher
// leaves. Waiters park on the summary only after shard-local state could
// not satisfy them; that escalation order is the point: shard-local work
// stays shard-local, and only genuinely global conditions touch the
// summary.
//
// Lock order is shard → summary, everywhere: Add publishes while holding
// one shard's monitor; summary waiters hold no shard. Never call Add or
// Flush while holding the summary monitor.
type Counter struct {
	sm        *Monitor
	name      string
	threshold int64

	summary *core.Monitor
	total   *core.IntCell
	ep      *core.IntCell

	atLeast      *core.Predicate // total >= n
	atMost       *core.Predicate // total <= n
	atLeastSince *core.Predicate // total >= n && ep > e

	pend []int64 // pending delta per shard; guarded by that shard's monitor

	watchers  atomic.Int64 // precise mode while > 0
	publishes atomic.Uint64
	flushes   atomic.Uint64

	// rec, when the flight recorder was active at construction, receives a
	// KCounterPublish event per publication (seq = source shard, arg =
	// published delta). Publications from different shards write the ring
	// concurrently — this is the multi-writer path of the ring protocol.
	rec *obs.Ring
}

// NewCounter creates an aggregate counter named for diagnostics, starting
// at zero, publishing batches of magnitude ≥ threshold (threshold 1
// publishes every change — precise mode permanently). The summary monitor
// is built with the same core options as the shards, so an AutoSynch-T
// sharded monitor is AutoSynch-T end to end.
func (sm *Monitor) NewCounter(name string, threshold int64) *Counter {
	if threshold < 1 {
		threshold = 1
	}
	c := &Counter{
		sm:        sm,
		name:      name,
		threshold: threshold,
		summary:   core.New(sm.monOpts...),
		pend:      make([]int64, len(sm.shards)),
	}
	c.total = c.summary.NewInt("total", 0)
	c.ep = c.summary.NewInt("ep", 0)
	c.atLeast = c.summary.MustCompile("total >= n")
	c.atMost = c.summary.MustCompile("total <= n")
	c.atLeastSince = c.summary.MustCompile("total >= n && ep > e")
	if rec := obs.Active(); rec != nil {
		c.rec = rec.NewRing("counter:" + name)
	}
	return c
}

// Name returns the counter's diagnostic name.
func (c *Counter) Name() string { return c.name }

// Summary returns the summary monitor. Custom aggregate conditions are
// composed here — declare extra cells on it before first use and compile
// predicates mixing them with "total" and "ep" — combined with Watch
// around any park so publication stays precise while waiting.
func (c *Counter) Summary() *core.Monitor { return c.summary }

// Add adjusts the aggregate by d from shard i. The caller must hold shard
// i's monitor (the mutation this delta accounts for happened there); the
// delta folds into the shard's pending batch and publishes when the batch
// reaches the threshold, or immediately while the counter is watched.
func (c *Counter) Add(i int, d int64) {
	if d == 0 {
		return
	}
	c.pend[i] += d
	p := c.pend[i]
	if p < 0 {
		p = -p
	}
	if p >= c.threshold || c.watchers.Load() > 0 {
		c.publish(i)
	}
}

// publish moves shard i's pending delta into the summary, bumping the
// epoch. Caller holds shard i's monitor; the summary's exit relays to any
// aggregate waiter whose bound just became true.
func (c *Counter) publish(i int) {
	d := c.pend[i]
	if d == 0 {
		return
	}
	c.pend[i] = 0
	c.publishes.Add(1)
	if c.rec != nil {
		c.rec.Record(obs.KCounterPublish, uint64(i), d)
	}
	c.summary.Do(func() {
		c.total.Add(d)
		c.ep.Add(1)
	})
}

// Flush publishes every shard's pending delta, visiting each shard in
// turn. Call with no monitor held.
func (c *Counter) Flush() {
	c.flushes.Add(1)
	for i := range c.sm.shards {
		i := i
		c.sm.DoShard(i, func(*core.Monitor) { c.publish(i) })
	}
}

// Approx returns the published total without flushing: stale by at most
// S·(threshold−1) in each direction.
func (c *Counter) Approx() int64 {
	var v int64
	c.summary.Do(func() { v = c.total.Get() })
	return v
}

// Epoch returns the current publication epoch. Snapshot it before probing
// shard state, then wait with AwaitAtLeastSince: any mutation after the
// probe publishes past the snapshot, so the retry cannot miss it.
func (c *Counter) Epoch() int64 {
	var e int64
	c.summary.Do(func() { e = c.ep.Get() })
	return e
}

// Total flushes and returns the aggregate. Exact once mutators are
// quiescent (the conservation-check read); a best-effort snapshot while
// they run. Call with no monitor held.
func (c *Counter) Total() int64 {
	c.Flush()
	return c.Approx()
}

// Poke bumps the publication epoch without changing the total. A waiter
// that has just registered shard-locally (an armed handle on its home
// shard) advertises itself to epoch-fenced watchers — a rebalance
// supervisor parked on "ep > e" would otherwise never learn that a queue
// went deep, because registrations publish nothing. Arm first, then Poke:
// the supervisor then either sees the registration or is woken after it.
// Callable with no monitor held (it touches only the summary).
func (c *Counter) Poke() {
	c.summary.Do(func() { c.ep.Add(1) })
}

// Publishes returns how many batches have been published; Flushes how
// many full flush sweeps ran. The batching ablation: publishes ≪ Adds is
// the threshold doing its job.
func (c *Counter) Publishes() uint64 { return c.publishes.Load() }

// Flushes returns the flush-sweep count.
func (c *Counter) Flushes() uint64 { return c.flushes.Load() }

// Watch enters precise mode and flushes, returning the leave function:
// between the two calls every Add publishes immediately and nothing is
// pending, so a summary-monitor wait started after Watch cannot miss an
// update. Use it around custom waits on Summary(); the built-in Await
// forms call it internally.
//
//	defer c.Watch()()
//	s := c.Summary()
//	s.Enter()
//	err := s.AwaitPredCtx(ctx, myAggregatePred, binds...)
//	s.Exit()
func (c *Counter) Watch() func() {
	c.watchers.Add(1)
	c.Flush()
	return func() { c.watchers.Add(-1) }
}

// AwaitAtLeast blocks until the aggregate is at least n. On return the
// bound held at the moment the summary monitor was released; shard-local
// state may have moved since, so consumers re-verify under shard locks
// and re-wait with AwaitAtLeastSince on failure.
func (c *Counter) AwaitAtLeast(n int64) error {
	return c.awaitBound(nil, c.atLeast, core.BindInt("n", n))
}

// AwaitAtLeastCtx is AwaitAtLeast with cancellation.
func (c *Counter) AwaitAtLeastCtx(ctx context.Context, n int64) error {
	return c.awaitBound(ctx, c.atLeast, core.BindInt("n", n))
}

// AwaitAtMost blocks until the aggregate is at most n (drain waits).
func (c *Counter) AwaitAtMost(n int64) error {
	return c.awaitBound(nil, c.atMost, core.BindInt("n", n))
}

// AwaitAtMostCtx is AwaitAtMost with cancellation.
func (c *Counter) AwaitAtMostCtx(ctx context.Context, n int64) error {
	return c.awaitBound(ctx, c.atMost, core.BindInt("n", n))
}

// AwaitAtLeastSince blocks until the aggregate is at least n AND the
// epoch has advanced past since — the retry-loop form: snapshot the epoch
// (Epoch), probe the shards, and on failure wait here; the epoch conjunct
// suppresses wake-ups for states the caller has already inspected, while
// any mutation after the snapshot necessarily publishes past it.
func (c *Counter) AwaitAtLeastSince(ctx context.Context, n, since int64) error {
	return c.awaitBound(ctx, c.atLeastSince, core.BindInt("n", n), core.BindInt("e", since))
}

// awaitBound is the shared park: precise mode, flush, then an ordinary
// compiled-predicate wait on the summary monitor.
func (c *Counter) awaitBound(ctx context.Context, p *core.Predicate, binds ...core.Binding) error {
	defer c.Watch()()
	c.summary.Enter()
	defer c.summary.Exit()
	if ctx == nil {
		return c.summary.AwaitPred(p, binds...)
	}
	return c.summary.AwaitPredCtx(ctx, p, binds...)
}
