package tag

import (
	"testing"

	"repro/internal/dnf"
	"repro/internal/expr"
)

func conj(t *testing.T, src string) dnf.Conjunction {
	t.Helper()
	d, err := dnf.Convert(expr.MustParse(src))
	if err != nil {
		t.Fatalf("Convert(%q): %v", src, err)
	}
	if len(d.Conjs) != 1 {
		t.Fatalf("Convert(%q) has %d conjunctions, want 1", src, len(d.Conjs))
	}
	return d.Conjs[0]
}

func TestAnalyzeConjunctionKinds(t *testing.T) {
	cases := []struct {
		src  string
		kind Kind
		expr string
		key  int64
		op   expr.Op
	}{
		// Equivalence.
		{"x == 8", Equivalence, "x", 8, expr.OpEq},
		{"8 == x", Equivalence, "x", 8, expr.OpEq},
		{"x - y == 5", Equivalence, "x - y", 5, expr.OpEq},
		// The paper's example: x − a = y + b with a=11, b=2 globalized.
		{"x - 11 == y + 2", Equivalence, "x - y", 13, expr.OpEq},
		// Sign normalization: leading coefficient becomes positive.
		{"y - x == 5", Equivalence, "x - y", -5, expr.OpEq},
		// Threshold, all four operators.
		{"x > 5", Threshold, "x", 5, expr.OpGt},
		{"x >= 5", Threshold, "x", 5, expr.OpGe},
		{"x < 5", Threshold, "x", 5, expr.OpLt},
		{"x <= 5", Threshold, "x", 5, expr.OpLe},
		// The paper's threshold example: x + b > 2y + a, a=11, b=2
		// becomes (Threshold, x − 2y, 9, >).
		{"x + 2 > 2*y + 11", Threshold, "x - 2*y", 9, expr.OpGt},
		// Flipping via sign normalization: 5 > x ⇔ x < 5.
		{"5 > x", Threshold, "x", 5, expr.OpLt},
		{"-x >= 3", Threshold, "x", -3, expr.OpLe},
		// Equivalence beats threshold regardless of order (Fig. 3).
		{"x > 5 && y == 2", Equivalence, "y", 2, expr.OpEq},
		{"y == 2 && x > 5", Equivalence, "y", 2, expr.OpEq},
		// Boolean variables tag as 0/1 equivalences.
		{"p", Equivalence, "p", 1, expr.OpEq},
		{"!p", Equivalence, "p", 0, expr.OpEq},
		{"p == q", Equivalence, "p - q", 0, expr.OpEq},
		// None: ≠, nonlinear, shared division.
		{"x != 5", None, "", 0, 0},
		{"x * y > 5", None, "", 0, 0},
		{"x / y == 2", None, "", 0, 0},
		{"x % 2 == 0", None, "", 0, 0},
		{"p != q", None, "", 0, 0},
		// Threshold chosen when no equivalence exists.
		{"x != 5 && x > 3", Threshold, "x", 3, expr.OpGt},
	}
	for _, c := range cases {
		got := AnalyzeConjunction(conj(t, c.src))
		if got.Kind != c.kind {
			t.Errorf("AnalyzeConjunction(%q).Kind = %s, want %s", c.src, got.Kind, c.kind)
			continue
		}
		if c.kind == None {
			continue
		}
		if got.Expr != c.expr || got.Key != c.key {
			t.Errorf("AnalyzeConjunction(%q) = %s, want expr %q key %d", c.src, got, c.expr, c.key)
		}
		if got.Op != c.op {
			t.Errorf("AnalyzeConjunction(%q).Op = %s, want %s", c.src, got.Op, c.op)
		}
	}
}

func TestSharedTagAcrossPredicates(t *testing.T) {
	// Predicates (x = 5) ∧ (z ≤ 4) and (x = 5) ∧ (y ≥ 4) share the
	// equivalence tag (x = 5) — §4.3.1. With atoms sorted canonically the
	// first equivalence atom in both is x == 5.
	t1 := AnalyzeConjunction(conj(t, "x == 5 && z <= 4"))
	t2 := AnalyzeConjunction(conj(t, "x == 5 && y >= 4"))
	if t1.Kind != Equivalence || t2.Kind != Equivalence {
		t.Fatalf("kinds = %s, %s; want Equivalence both", t1.Kind, t2.Kind)
	}
	if t1.Expr != t2.Expr || t1.Key != t2.Key {
		t.Errorf("tags differ: %s vs %s", t1, t2)
	}
}

func TestTagHolds(t *testing.T) {
	cases := []struct {
		tag  Tag
		v    int64
		want bool
	}{
		{Tag{Kind: Equivalence, Key: 8}, 8, true},
		{Tag{Kind: Equivalence, Key: 8}, 7, false},
		{Tag{Kind: Threshold, Key: 5, Op: expr.OpGt}, 6, true},
		{Tag{Kind: Threshold, Key: 5, Op: expr.OpGt}, 5, false},
		{Tag{Kind: Threshold, Key: 5, Op: expr.OpGe}, 5, true},
		{Tag{Kind: Threshold, Key: 5, Op: expr.OpLt}, 4, true},
		{Tag{Kind: Threshold, Key: 5, Op: expr.OpLt}, 5, false},
		{Tag{Kind: Threshold, Key: 5, Op: expr.OpLe}, 5, true},
		{Tag{Kind: None}, 123, true},
	}
	for _, c := range cases {
		if got := c.tag.Holds(c.v); got != c.want {
			t.Errorf("%s.Holds(%d) = %t, want %t", c.tag, c.v, got, c.want)
		}
	}
}

func TestAnalyzeWholePredicate(t *testing.T) {
	// (x ≥ 8) ∨ (x = 3) from Fig. 7: one threshold and one equivalence tag.
	d, err := dnf.Convert(expr.MustParse("x >= 8 || x == 3"))
	if err != nil {
		t.Fatal(err)
	}
	tags := Analyze(d)
	if len(tags) != 2 {
		t.Fatalf("got %d tags, want 2", len(tags))
	}
	kinds := map[Kind]int{}
	for _, tg := range tags {
		kinds[tg.Kind]++
		if tg.Expr != "x" {
			t.Errorf("tag %s expr = %q, want x", tg, tg.Expr)
		}
	}
	if kinds[Equivalence] != 1 || kinds[Threshold] != 1 {
		t.Errorf("kind distribution = %v, want one Equivalence and one Threshold", kinds)
	}
}

func TestTagStringAndKindString(t *testing.T) {
	if Equivalence.String() != "Equivalence" || Threshold.String() != "Threshold" || None.String() != "None" {
		t.Error("Kind.String wrong")
	}
	e := AnalyzeConjunction(conj(t, "x == 8"))
	if e.String() != "(Equivalence, x, 8)" {
		t.Errorf("String = %q", e.String())
	}
	th := AnalyzeConjunction(conj(t, "x > 5"))
	if th.String() != "(Threshold, x, 5, >)" {
		t.Errorf("String = %q", th.String())
	}
	n := AnalyzeConjunction(conj(t, "x != 5"))
	if n.String() != "(None)" {
		t.Errorf("String = %q", n.String())
	}
}

// Property: whenever the conjunction is true under an environment, its tag
// must hold for the shared expression's value under the same environment
// (tag truth is a necessary condition — the pruning soundness invariant).
func TestPropertyTagIsNecessaryCondition(t *testing.T) {
	preds := []string{
		"x == 8", "x > 5 && y <= 2", "x - y == 5 && x > 0",
		"x + 2 > 2*y + 11", "2*x - 3*y >= 7", "y - x == 5",
		"x <= -3", "x != 5 && x > 3", "x >= 8 || x == 3",
		"3*x == 2*y && y > 1", "p && x > 0", "!p && x == 1",
	}
	for _, src := range preds {
		d, err := dnf.Convert(expr.MustParse(src))
		if err != nil {
			t.Fatal(err)
		}
		tags := Analyze(d)
		for x := int64(-10); x <= 10; x++ {
			for y := int64(-10); y <= 10; y += 2 {
				for _, pv := range []bool{false, true} {
					env := expr.MapEnv(map[string]expr.Value{
						"x": expr.IntValue(x), "y": expr.IntValue(y),
						"p": expr.BoolValue(pv),
					})
					for i, c := range d.Conjs {
						ok, err := c.Eval(env)
						if err != nil || !ok {
							continue
						}
						tg := tags[i]
						if tg.Kind == None {
							continue
						}
						v, err := expr.EvalInt(tg.Form.Node(), boolAsInt(env))
						if err != nil {
							t.Fatalf("%s: eval shared expr: %v", src, err)
						}
						if !tg.Holds(v) {
							t.Errorf("%s: conjunction %q true at x=%d y=%d p=%t but tag %s does not hold (v=%d)",
								src, c.String(), x, y, pv, tg, v)
						}
					}
				}
			}
		}
	}
}

// boolAsInt adapts an environment so boolean values read as 0/1 integers,
// matching the condition manager's evaluation of tag shared expressions.
func boolAsInt(env expr.Env) expr.Env {
	return func(name string) (expr.Value, bool) {
		v, ok := env(name)
		if ok && v.Type == expr.TypeBool {
			if v.B {
				return expr.IntValue(1), true
			}
			return expr.IntValue(0), true
		}
		return v, ok
	}
}
