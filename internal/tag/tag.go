// Package tag assigns predicate tags to DNF conjunctions, implementing the
// predicate-tagging scheme of §4.3 of the paper.
//
// A tag is a four-tuple (M, expr, key, op). For a conjunction containing an
// equivalence conjunct SE == LE the tag is (Equivalence, SE, value(LE), ⊥);
// for one containing a threshold conjunct SE op LE, op ∈ {<,≤,>,≥}, it is
// (Threshold, SE, value(LE), op); otherwise the conjunction gets the None
// tag. Equivalence has priority over Threshold (Fig. 3) because an
// equivalence tag prunes the search space harder. Exactly one tag is
// assigned per conjunction — the paper observes that additional tags cannot
// accelerate the search.
//
// Tagging runs on *globalized* conjunctions: thread-local variables have
// already been substituted with constants, so every remaining variable is a
// shared monitor variable. The left-hand shared expression is put in the
// canonical linear form produced by package linear (variables sorted, sign
// normalized so the leading coefficient is positive), which makes
// syntactically different spellings of the same comparison — x−2 ≥ y+1,
// x ≥ y+3, −y ≥ 3−x — share one tag structure.
package tag

import (
	"fmt"

	"repro/internal/dnf"
	"repro/internal/expr"
	"repro/internal/linear"
)

// Kind classifies a tag.
type Kind int

// Tag kinds, in increasing pruning power: None < Threshold < Equivalence.
const (
	None Kind = iota
	Threshold
	Equivalence
)

func (k Kind) String() string {
	switch k {
	case Equivalence:
		return "Equivalence"
	case Threshold:
		return "Threshold"
	}
	return "None"
}

// Tag is the paper's four-tuple. Expr is the canonical rendering of Form
// and identifies the shared-expression group (hash table or heap pair) the
// tag lives in; Form is kept so the condition manager can compile an
// evaluator for the group. Key and Op are meaningful only for Equivalence
// (Op fixed to ==) and Threshold tags.
type Tag struct {
	Kind Kind
	Expr string
	Form linear.Form
	Key  int64
	Op   expr.Op
}

func (t Tag) String() string {
	switch t.Kind {
	case Equivalence:
		return fmt.Sprintf("(Equivalence, %s, %d)", t.Expr, t.Key)
	case Threshold:
		return fmt.Sprintf("(Threshold, %s, %d, %s)", t.Expr, t.Key, t.Op)
	}
	return "(None)"
}

// Holds reports whether the tag is true when its shared expression
// currently evaluates to v (§4.3: "a tag is true if the predicate
// representing the tag is true" — this is the tag-level test, a necessary
// condition for the tagged predicates).
func (t Tag) Holds(v int64) bool {
	switch t.Kind {
	case Equivalence:
		return v == t.Key
	case Threshold:
		switch t.Op {
		case expr.OpLt:
			return v < t.Key
		case expr.OpLe:
			return v <= t.Key
		case expr.OpGt:
			return v > t.Key
		case expr.OpGe:
			return v >= t.Key
		}
	}
	return true // None tags prune nothing
}

// AnalyzeConjunction derives the single tag for a globalized conjunction.
// Atoms are examined left to right; the first equivalence atom wins, then
// the first threshold atom, then None.
//
// Taggable atom shapes:
//   - integer comparisons that are linear in the shared variables
//     (x − 2 ≥ y + 1 tags as (Threshold, x−y, 3, ≥));
//   - a bare boolean variable p, tagged (Equivalence, p, 1) using the 0/1
//     encoding, and its negation !p, tagged (Equivalence, p, 0);
//   - boolean equality p == q, which decomposes to (Equivalence, p−q, 0).
//
// Everything else (≠ comparisons, nonlinear arithmetic, divisions by a
// shared variable) falls back to None, which is always sound: None-tagged
// predicates are checked exhaustively.
func AnalyzeConjunction(c dnf.Conjunction) Tag {
	var threshold *Tag
	for _, a := range c.Atoms {
		t, ok := analyzeAtom(a)
		if !ok {
			continue
		}
		if t.Kind == Equivalence {
			return t
		}
		if t.Kind == Threshold && threshold == nil {
			tt := t
			threshold = &tt
		}
	}
	if threshold != nil {
		return *threshold
	}
	return Tag{Kind: None}
}

// Analyze tags every conjunction of a globalized DNF predicate.
func Analyze(d dnf.DNF) []Tag {
	tags := make([]Tag, len(d.Conjs))
	for i, c := range d.Conjs {
		tags[i] = AnalyzeConjunction(c)
	}
	return tags
}

// everySplit marks every variable as a split (shared) variable: tagging
// runs post-globalization, where no local variables remain.
func everySplit(string) bool { return true }

func analyzeAtom(a expr.Node) (Tag, bool) {
	switch n := a.(type) {
	case expr.Var:
		// Bare boolean variable: p  ⇔  p == 1 in the 0/1 encoding.
		f := linear.NewForm()
		f.Coeffs[n.Name] = 1
		return Tag{Kind: Equivalence, Expr: f.String(), Form: f, Key: 1, Op: expr.OpEq}, true
	case expr.Unary:
		if n.Op == expr.OpNot {
			if v, ok := n.X.(expr.Var); ok {
				f := linear.NewForm()
				f.Coeffs[v.Name] = 1
				return Tag{Kind: Equivalence, Expr: f.String(), Form: f, Key: 0, Op: expr.OpEq}, true
			}
		}
		return Tag{}, false
	case expr.Binary:
		if !n.Op.IsComparison() || n.Op == expr.OpNe {
			return Tag{}, false
		}
		s, ok := linear.Decompose(expr.Bin(expr.OpSub, n.L, n.R), everySplit)
		if !ok || len(s.Residuals) != 0 {
			return Tag{}, false
		}
		form := s.Shared
		if form.IsConst() {
			// Ground atom; constant folding should have removed it, and
			// tagging it would be meaningless.
			return Tag{}, false
		}
		// Atom ⇔ form + s.Const op 0 ⇔ form op −s.Const.
		key := -s.Const
		op := n.Op
		if _, lead, _ := form.Leading(); lead < 0 {
			form = form.Scale(-1)
			key = -key
			op = op.Flip()
		}
		kind := Threshold
		if op == expr.OpEq {
			kind = Equivalence
		}
		return Tag{Kind: kind, Expr: form.String(), Form: form, Key: key, Op: op}, true
	}
	return Tag{}, false
}
