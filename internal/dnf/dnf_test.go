package dnf

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/expr"
)

func conv(t *testing.T, src string) DNF {
	t.Helper()
	d, err := Convert(expr.MustParse(src))
	if err != nil {
		t.Fatalf("Convert(%q): %v", src, err)
	}
	return d
}

func TestConvertBasics(t *testing.T) {
	cases := []struct{ in, want string }{
		{"x > 0", "x > 0"},
		{"x > 0 && y < 2", "x > 0 && y < 2"},
		{"x > 0 || y < 2", "x > 0 || y < 2"},
		// The paper's DNF example: (x = 1) ∧ (y = 6) ∨ (z ≠ 8).
		{"x == 1 && y == 6 || z != 8", "x == 1 && y == 6 || z != 8"},
		// Distribution of ∧ over ∨.
		{"(a > 0 || b > 0) && c > 0", "a > 0 && c > 0 || b > 0 && c > 0"},
		{"(a>0 || b>0) && (c>0 || d>0)",
			"a > 0 && c > 0 || a > 0 && d > 0 || b > 0 && c > 0 || b > 0 && d > 0"},
		// De Morgan + comparison negation absorption.
		{"!(x > 0 && y > 0)", "x <= 0 || y <= 0"},
		{"!(x > 0 || y > 0)", "x <= 0 && y <= 0"},
		{"!(x == 1)", "x != 1"},
		{"!(x != 1)", "x == 1"},
		{"!(p && q)", "!p || !q"},
		{"!!(x > 0)", "x > 0"},
		// Constants.
		{"true", "true"},
		{"false", "false"},
		{"x > 0 || true", "true"},
		{"x > 0 && false", "false"},
		{"x > 0 || false", "x > 0"},
		{"x > 0 && true", "x > 0"},
		// Atom dedupe inside a conjunction.
		{"x > 0 && x > 0", "x > 0"},
		// p && !p is contradictory.
		{"p && !p", "false"},
		{"p && !p || x > 0", "x > 0"},
		// Subsumption: c ∨ (c ∧ d) = c.
		{"x > 0 || x > 0 && y > 0", "x > 0"},
		// Duplicate conjunction dedupe.
		{"x > 0 || x > 0", "x > 0"},
	}
	for _, c := range cases {
		if got := conv(t, c.in).String(); got != c.want {
			t.Errorf("Convert(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestConvertCanonicalOrder(t *testing.T) {
	// Equal predicates written differently must produce identical strings:
	// this is the syntax-equivalence relation of §5.2.
	a := conv(t, "y < 2 && x > 0 || z == 1").String()
	b := conv(t, "z == 1 || x > 0 && y < 2").String()
	if a != b {
		t.Errorf("canonical forms differ: %q vs %q", a, b)
	}
}

func TestConvertLimit(t *testing.T) {
	// (a1||b1) && (a2||b2) && ... grows as 2^n conjunctions.
	var sb strings.Builder
	for i := 0; i < 10; i++ {
		if i > 0 {
			sb.WriteString(" && ")
		}
		sb.WriteString("(a" + string(rune('0'+i)) + " > 0 || b" + string(rune('0'+i)) + " > 0)")
	}
	_, err := ConvertLimit(expr.MustParse(sb.String()), 64)
	var tooMany *ErrTooManyConjunctions
	if !errors.As(err, &tooMany) {
		t.Fatalf("expected ErrTooManyConjunctions, got %v", err)
	}
	if tooMany.Limit != 64 {
		t.Errorf("limit in error = %d, want 64", tooMany.Limit)
	}
}

func TestIsTrueIsFalse(t *testing.T) {
	if !conv(t, "true").IsTrue() || conv(t, "true").IsFalse() {
		t.Error("true misclassified")
	}
	if !conv(t, "false").IsFalse() || conv(t, "false").IsTrue() {
		t.Error("false misclassified")
	}
	if conv(t, "x > 0").IsTrue() || conv(t, "x > 0").IsFalse() {
		t.Error("x > 0 misclassified")
	}
}

func TestDNFEval(t *testing.T) {
	d := conv(t, "x == 1 && y == 6 || z != 8")
	e := expr.MapEnv(map[string]expr.Value{
		"x": expr.IntValue(1), "y": expr.IntValue(6), "z": expr.IntValue(8),
	})
	got, err := d.Eval(e)
	if err != nil || !got {
		t.Errorf("Eval = (%t, %v), want (true, nil)", got, err)
	}
	e2 := expr.MapEnv(map[string]expr.Value{
		"x": expr.IntValue(2), "y": expr.IntValue(6), "z": expr.IntValue(8),
	})
	got, err = d.Eval(e2)
	if err != nil || got {
		t.Errorf("Eval = (%t, %v), want (false, nil)", got, err)
	}
}

func TestDNFNodeRoundTrip(t *testing.T) {
	d := conv(t, "(a > 0 || b > 0) && c > 0")
	d2, err := Convert(d.Node())
	if err != nil {
		t.Fatal(err)
	}
	if d.String() != d2.String() {
		t.Errorf("Node round trip changed DNF: %q vs %q", d, d2)
	}
	if conv(t, "false").Node().String() != "false" {
		t.Error("false Node() wrong")
	}
	if conv(t, "true").Node().String() != "true" {
		t.Error("true Node() wrong")
	}
}

func TestDNFVars(t *testing.T) {
	d := conv(t, "count >= num || stopped")
	got := d.Vars()
	want := []string{"count", "num", "stopped"}
	if len(got) != len(want) {
		t.Fatalf("Vars = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Vars = %v, want %v", got, want)
		}
	}
}

func TestDNFSubst(t *testing.T) {
	d := conv(t, "count >= num")
	g, err := d.Subst(expr.MapEnv(map[string]expr.Value{"num": expr.IntValue(48)}))
	if err != nil {
		t.Fatal(err)
	}
	if g.String() != "count >= 48" {
		t.Errorf("Subst = %q, want %q", g.String(), "count >= 48")
	}
	// Substitution that collapses a conjunction to a constant.
	d2 := conv(t, "go1 && count > 0")
	g2, err := d2.Subst(expr.MapEnv(map[string]expr.Value{"go1": expr.BoolValue(false)}))
	if err != nil {
		t.Fatal(err)
	}
	if !g2.IsFalse() {
		t.Errorf("Subst(false && ...) = %q, want false", g2.String())
	}
}

func TestMustConvertPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustConvert on exploding predicate did not panic")
		}
	}()
	var sb strings.Builder
	for i := 0; i < 20; i++ {
		if i > 0 {
			sb.WriteString(" && ")
		}
		sb.WriteString("(a" + string(rune('a'+i)) + " > 0 || b" + string(rune('a'+i)) + " > 0)")
	}
	MustConvert(expr.MustParse(sb.String()))
}

// Property: conversion preserves semantics over random environments.
func TestPropertyConvertPreservesSemantics(t *testing.T) {
	gen := func(seed int64) (expr.Node, expr.Env) {
		s := seed
		next := func() int64 {
			s = s*6364136223846793005 + 1442695040888963407
			v := s >> 33
			if v < 0 {
				v = -v
			}
			return v
		}
		names := []string{"a", "b", "c", "d"}
		var boolExpr func(depth int) expr.Node
		intLeaf := func() expr.Node {
			if next()%2 == 0 {
				return expr.I(next() % 5)
			}
			return expr.V(names[next()%4])
		}
		boolExpr = func(depth int) expr.Node {
			if depth <= 0 {
				ops := []expr.Op{expr.OpLt, expr.OpLe, expr.OpGt, expr.OpGe, expr.OpEq, expr.OpNe}
				return expr.Bin(ops[next()%6], intLeaf(), intLeaf())
			}
			switch next() % 4 {
			case 0:
				return expr.Not(boolExpr(depth - 1))
			case 1:
				return expr.Bin(expr.OpAnd, boolExpr(depth-1), boolExpr(depth-1))
			case 2:
				return expr.Bin(expr.OpOr, boolExpr(depth-1), boolExpr(depth-1))
			default:
				ops := []expr.Op{expr.OpLt, expr.OpLe, expr.OpGt, expr.OpGe, expr.OpEq, expr.OpNe}
				return expr.Bin(ops[next()%6], intLeaf(), intLeaf())
			}
		}
		n := boolExpr(3)
		vals := map[string]expr.Value{}
		for _, name := range names {
			vals[name] = expr.IntValue(next() % 5)
		}
		return n, expr.MapEnv(vals)
	}
	f := func(seed int64) bool {
		n, e := gen(seed)
		want, err := expr.EvalBool(n, e)
		if err != nil {
			return true
		}
		d, err := Convert(n)
		if err != nil {
			t.Logf("Convert(%q): %v", n.String(), err)
			return false
		}
		got, err := d.Eval(e)
		if err != nil {
			t.Logf("Eval of DNF %q: %v", d.String(), err)
			return false
		}
		if got != want {
			t.Logf("semantics changed: %q -> %q (want %t, got %t)", n.String(), d.String(), want, got)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property: canonical strings are stable under re-conversion (idempotence).
func TestPropertyConvertIdempotent(t *testing.T) {
	srcs := []string{
		"a > 0 && (b > 1 || c > 2) || !(d >= 3)",
		"!(a > 0 && b > 0) || c == 1 && d != 2",
		"(a == 1 || b == 2) && (c == 3 || d == 4)",
		"p && (q || !r) || !p && r",
	}
	for _, src := range srcs {
		d1 := conv(t, src)
		d2, err := Convert(d1.Node())
		if err != nil {
			t.Errorf("re-Convert(%q): %v", src, err)
			continue
		}
		if d1.String() != d2.String() {
			t.Errorf("not idempotent for %q: %q vs %q", src, d1, d2)
		}
	}
}
