// Package dnf normalizes boolean predicates into disjunctive normal form.
//
// The AutoSynch runtime (§4 of the paper) assumes every waituntil predicate
// P = ∨ᵢ cᵢ is a disjunction of conjunctions of atomic boolean expressions;
// tags are assigned per conjunction. This package performs the conversion:
// constant folding, negation normal form via De Morgan's laws (negations of
// comparisons are absorbed into the comparison operator), distribution of ∧
// over ∨, and canonicalization (sorted, de-duplicated, subsumption-pruned).
package dnf

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/expr"
	"repro/internal/linear"
)

// DefaultMaxConjunctions bounds the DNF blow-up. Distribution is worst-case
// exponential; real synchronization predicates are tiny, so hitting this
// limit almost certainly indicates a runaway predicate and is reported as an
// error instead of silently consuming memory.
const DefaultMaxConjunctions = 128

// Conjunction is one conjunct c = a₁ ∧ … ∧ aₖ of a DNF predicate. Each atom
// is a boolean expression with no ∧/∨ structure: a comparison, a boolean
// variable, or the negation of a boolean variable. An empty conjunction is
// the constant true.
//
// Atoms preserve source order (with duplicates removed): tagging picks the
// first equivalence conjunct the programmer wrote (Fig. 3), and that order
// carries signal — "serving == t && activeReaders == 0" should tag on the
// discriminating serving == t, not on the constant-keyed second conjunct.
// Canonical identity is order-independent: String() sorts the rendered
// atoms.
type Conjunction struct {
	Atoms []expr.Node
}

// DNF is a predicate in disjunctive normal form: the disjunction of its
// conjunctions. A DNF with no conjunctions is the constant false; the
// constant true is represented by a single empty conjunction.
type DNF struct {
	Conjs []Conjunction

	// intVar reports whether a variable holds an integer; comparison atoms
	// whose variables are all integers are rewritten into canonical linear
	// form (see normalizeAtom). Carried so Subst re-canonicalizes the same
	// way. nil means "all variables are integers".
	intVar func(string) bool
}

// ErrTooManyConjunctions is wrapped in errors returned when conversion
// exceeds the conjunction limit.
type ErrTooManyConjunctions struct {
	Limit int
	Pred  expr.Node
}

func (e *ErrTooManyConjunctions) Error() string {
	return fmt.Sprintf("dnf: predicate %q exceeds %d conjunctions", e.Pred.String(), e.Limit)
}

// Convert normalizes n into DNF with the default blow-up limit, treating
// every variable as an integer for atom normalization.
func Convert(n expr.Node) (DNF, error) {
	return ConvertTyped(n, DefaultMaxConjunctions, nil)
}

// ConvertLimit normalizes n into DNF, failing if more than limit
// conjunctions would be produced.
func ConvertLimit(n expr.Node, limit int) (DNF, error) {
	return ConvertTyped(n, limit, nil)
}

// ConvertTyped normalizes n into DNF. intVar reports whether a variable is
// an integer: comparison atoms over integer variables are rewritten into
// the canonical linear form Σcᵢxᵢ op k (variables sorted, positive leading
// coefficient), which realizes the paper's syntax equivalence — predicates
// that globalize to the same condition get the same canonical string. A
// nil intVar treats every variable as an integer.
func ConvertTyped(n expr.Node, limit int, intVar func(string) bool) (DNF, error) {
	folded := expr.Fold(n)
	nnf := toNNF(folded, false)
	conjs, err := distribute(nnf, limit, n)
	if err != nil {
		return DNF{}, err
	}
	d := canonicalize(conjs, intVar)
	d.intVar = intVar
	return d, nil
}

// MustConvert converts and panics on error; for static predicate tables.
func MustConvert(n expr.Node) DNF {
	d, err := Convert(n)
	if err != nil {
		panic(err)
	}
	return d
}

// toNNF pushes negations down to the leaves. neg tracks whether the current
// subtree is under an odd number of negations.
func toNNF(n expr.Node, neg bool) expr.Node {
	switch n := n.(type) {
	case expr.BoolLit:
		return expr.B(n.Value != neg)
	case expr.Var:
		if neg {
			return expr.Not(n)
		}
		return n
	case expr.Unary:
		if n.Op == expr.OpNot {
			return toNNF(n.X, !neg)
		}
		return n // unary minus inside an atom; untouched
	case expr.Binary:
		switch n.Op {
		case expr.OpAnd:
			op := expr.OpAnd
			if neg {
				op = expr.OpOr
			}
			return expr.Bin(op, toNNF(n.L, neg), toNNF(n.R, neg))
		case expr.OpOr:
			op := expr.OpOr
			if neg {
				op = expr.OpAnd
			}
			return expr.Bin(op, toNNF(n.L, neg), toNNF(n.R, neg))
		case expr.OpLt, expr.OpLe, expr.OpGt, expr.OpGe:
			if neg {
				return expr.Bin(n.Op.Negate(), n.L, n.R)
			}
			return n
		case expr.OpEq, expr.OpNe:
			// ==/!= may compare bools whose operands have internal
			// boolean structure only via variables; either way the node
			// is an atom and negation flips the operator.
			if neg {
				return expr.Bin(n.Op.Negate(), n.L, n.R)
			}
			return n
		default:
			return n // arithmetic inside an atom
		}
	}
	return n
}

// distribute converts an NNF tree into conjunction lists.
func distribute(n expr.Node, limit int, orig expr.Node) ([]Conjunction, error) {
	switch t := n.(type) {
	case expr.BoolLit:
		if t.Value {
			return []Conjunction{{}}, nil // true: one empty conjunction
		}
		return nil, nil // false: no conjunctions
	case expr.Binary:
		switch t.Op {
		case expr.OpOr:
			l, err := distribute(t.L, limit, orig)
			if err != nil {
				return nil, err
			}
			r, err := distribute(t.R, limit, orig)
			if err != nil {
				return nil, err
			}
			out := append(l, r...)
			if len(out) > limit {
				return nil, &ErrTooManyConjunctions{Limit: limit, Pred: orig}
			}
			return out, nil
		case expr.OpAnd:
			l, err := distribute(t.L, limit, orig)
			if err != nil {
				return nil, err
			}
			r, err := distribute(t.R, limit, orig)
			if err != nil {
				return nil, err
			}
			if len(l) > 0 && len(r) > 0 && len(l)*len(r) > limit {
				return nil, &ErrTooManyConjunctions{Limit: limit, Pred: orig}
			}
			out := make([]Conjunction, 0, len(l)*len(r))
			for _, cl := range l {
				for _, cr := range r {
					atoms := make([]expr.Node, 0, len(cl.Atoms)+len(cr.Atoms))
					atoms = append(atoms, cl.Atoms...)
					atoms = append(atoms, cr.Atoms...)
					out = append(out, Conjunction{Atoms: atoms})
				}
			}
			return out, nil
		}
	}
	// Any other node is an atom.
	return []Conjunction{{Atoms: []expr.Node{n}}}, nil
}

// normalizeAtom rewrites a comparison atom over integer variables into the
// canonical linear form  Σcᵢxᵢ op k: variables sorted, constants moved to
// the right, leading coefficient positive (flipping the operator when the
// sign changes). Atoms that are nonlinear, non-comparisons, or involve
// non-integer variables are returned unchanged. Ground comparisons fold to
// a boolean literal.
func normalizeAtom(a expr.Node, intVar func(string) bool) expr.Node {
	cmp, ok := a.(expr.Binary)
	if !ok || !cmp.Op.IsComparison() {
		return a
	}
	if intVar != nil {
		for _, v := range expr.Vars(a) {
			if !intVar(v) {
				return a
			}
		}
	}
	s, ok := linear.Decompose(expr.Bin(expr.OpSub, cmp.L, cmp.R), func(string) bool { return true })
	if !ok || len(s.Residuals) != 0 {
		return a
	}
	form, op := s.Shared, cmp.Op
	key := -s.Const
	if form.IsConst() {
		return expr.Fold(expr.Bin(op, expr.I(0), expr.I(key)))
	}
	if _, lead, _ := form.Leading(); lead < 0 {
		form = form.Scale(-1)
		key = -key
		op = op.Flip()
	}
	return expr.Bin(op, form.Node(), expr.I(key))
}

// canonicalize sorts and de-duplicates atoms and conjunctions, removes
// contradictory and redundant structure where it is syntactically evident,
// and prunes subsumed conjunctions (c ∨ (c ∧ d) ≡ c).
func canonicalize(conjs []Conjunction, intVar func(string) bool) DNF {
	type keyed struct {
		conj Conjunction
		keys []string
	}
	var ks []keyed
	for _, c := range conjs {
		seen := map[string]bool{}
		var atoms []expr.Node
		var keys []string
		contradictory := false
		for _, a := range c.Atoms {
			a = normalizeAtom(a, intVar)
			if lit, ok := a.(expr.BoolLit); ok {
				if lit.Value {
					continue // true conjunct is a no-op
				}
				contradictory = true
				break
			}
			k := a.String()
			if seen[k] {
				continue
			}
			// a ∧ ¬a detection for bare boolean vars.
			if v, ok := a.(expr.Var); ok && seen["!"+v.Name] {
				contradictory = true
				break
			}
			if u, ok := a.(expr.Unary); ok && u.Op == expr.OpNot {
				if v, ok := u.X.(expr.Var); ok && seen[v.Name] {
					contradictory = true
					break
				}
			}
			seen[k] = true
			atoms = append(atoms, a)
			keys = append(keys, k)
		}
		if contradictory {
			continue
		}
		sort.Strings(keys) // identity keys are order-independent; atoms keep source order
		ks = append(ks, keyed{Conjunction{Atoms: atoms}, keys})
	}

	// Subsumption: keep a conjunction only if no other conjunction's atom
	// set is a strict subset of its own (and drop exact duplicates).
	var out []Conjunction
	seenConj := map[string]bool{}
	for i, ci := range ks {
		key := strings.Join(ci.keys, " && ")
		if seenConj[key] {
			continue
		}
		subsumed := false
		for j, cj := range ks {
			if i == j {
				continue
			}
			// Only strict subsets subsume; equal sets are handled by the
			// duplicate check above.
			if len(cj.keys) < len(ci.keys) && isSubset(cj.keys, ci.keys) {
				subsumed = true
				break
			}
		}
		if subsumed {
			continue
		}
		seenConj[key] = true
		out = append(out, ci.conj)
		if len(ci.conj.Atoms) == 0 {
			// A true conjunction makes the whole predicate true.
			return DNF{Conjs: []Conjunction{{}}}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].String() < out[j].String()
	})
	return DNF{Conjs: out, intVar: intVar}
}

// isSubset reports whether sorted slice sub ⊆ sorted slice super.
func isSubset(sub, super []string) bool {
	i := 0
	for _, s := range super {
		if i < len(sub) && sub[i] == s {
			i++
		}
	}
	return i == len(sub)
}

// IsFalse reports whether the predicate is the constant false.
func (d DNF) IsFalse() bool { return len(d.Conjs) == 0 }

// IsTrue reports whether the predicate is the constant true.
func (d DNF) IsTrue() bool {
	return len(d.Conjs) == 1 && len(d.Conjs[0].Atoms) == 0
}

// String renders the predicate; the output is canonical (equal DNFs render
// identically), which the condition manager uses for predicate identity.
func (d DNF) String() string {
	if d.IsFalse() {
		return "false"
	}
	parts := make([]string, len(d.Conjs))
	for i, c := range d.Conjs {
		parts[i] = c.String()
	}
	return strings.Join(parts, " || ")
}

// String renders one conjunction canonically: atom renderings are sorted,
// so differently ordered spellings of the same conjunction are identical
// strings (syntax equivalence, §5.2).
func (c Conjunction) String() string {
	if len(c.Atoms) == 0 {
		return "true"
	}
	parts := make([]string, len(c.Atoms))
	for i, a := range c.Atoms {
		parts[i] = a.String()
	}
	sort.Strings(parts)
	return strings.Join(parts, " && ")
}

// Node reconstructs an expression tree equivalent to the DNF.
func (d DNF) Node() expr.Node {
	if d.IsFalse() {
		return expr.B(false)
	}
	disjuncts := make([]expr.Node, len(d.Conjs))
	for i, c := range d.Conjs {
		disjuncts[i] = expr.And(c.Atoms...)
	}
	return expr.Or(disjuncts...)
}

// Eval evaluates the predicate under env.
func (d DNF) Eval(env expr.Env) (bool, error) {
	for _, c := range d.Conjs {
		ok, err := c.Eval(env)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// Eval evaluates one conjunction under env.
func (c Conjunction) Eval(env expr.Env) (bool, error) {
	for _, a := range c.Atoms {
		ok, err := expr.EvalBool(a, env)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// Vars returns the sorted variable set of the whole predicate.
func (d DNF) Vars() []string {
	return expr.Vars(d.Node())
}

// Subst applies a substitution to every atom, returning a new DNF that is
// re-canonicalized (substitution can collapse atoms to constants).
func (d DNF) Subst(env expr.Env) (DNF, error) {
	var conjs []Conjunction
	for _, c := range d.Conjs {
		atoms := make([]expr.Node, len(c.Atoms))
		for i, a := range c.Atoms {
			atoms[i] = expr.Fold(expr.Subst(a, env))
		}
		conjs = append(conjs, Conjunction{Atoms: atoms})
	}
	return canonicalize(conjs, d.intVar), nil
}
