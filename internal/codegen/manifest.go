package codegen

import (
	"fmt"
	"strings"
)

// A predicate manifest is the package-level input to minisynchc -manifest:
// it declares, per monitor, the shared variables in scope and the
// predicate sources to generate evaluators for. The format is line-based:
//
//	# bounded buffer (§6.3)
//	monitor buffer {
//	    shared count int
//	    shared cap   int
//	    shared stop  bool
//	    pred count + k <= cap || stop
//	    pred count > 0
//	}
//
// Blank lines and #-comments are ignored anywhere. A pred line's source
// runs to the end of the line. Monitors whose predicates share variable
// names and types may repeat predicates freely; Generate dedups by
// signature.

// ParseManifest parses a manifest; name is used in error positions
// ("preds.manifest:7: ...").
func ParseManifest(name, src string) ([]Input, error) {
	var (
		inputs []Input
		cur    *Input
	)
	errAt := func(line int, format string, args ...any) error {
		return fmt.Errorf("%s:%d: %s", name, line, fmt.Sprintf(format, args...))
	}
	for i, raw := range strings.Split(src, "\n") {
		lineNo := i + 1
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "monitor":
			if cur != nil {
				return nil, errAt(lineNo, "monitor %q not closed before new monitor", cur.Monitor)
			}
			if len(fields) != 3 || fields[2] != "{" {
				return nil, errAt(lineNo, "want `monitor <name> {`, got %q", line)
			}
			if !validName(fields[1]) {
				return nil, errAt(lineNo, "invalid monitor name %q", fields[1])
			}
			cur = &Input{Monitor: fields[1]}
		case "shared":
			if cur == nil {
				return nil, errAt(lineNo, "shared declaration outside a monitor block")
			}
			if len(cur.Preds) > 0 {
				return nil, errAt(lineNo, "shared declarations must precede pred lines")
			}
			if len(fields) != 3 {
				return nil, errAt(lineNo, "want `shared <name> int|bool`, got %q", line)
			}
			var isBool bool
			switch fields[2] {
			case "int":
			case "bool":
				isBool = true
			default:
				return nil, errAt(lineNo, "shared %q has unknown type %q (want int or bool)", fields[1], fields[2])
			}
			if !validName(fields[1]) {
				return nil, errAt(lineNo, "invalid shared variable name %q", fields[1])
			}
			for _, v := range cur.Shared {
				if v.Name == fields[1] {
					return nil, errAt(lineNo, "shared variable %q declared twice", fields[1])
				}
			}
			cur.Shared = append(cur.Shared, SharedVar{Name: fields[1], Bool: isBool})
		case "pred":
			if cur == nil {
				return nil, errAt(lineNo, "pred outside a monitor block")
			}
			src := strings.TrimSpace(strings.TrimPrefix(line, "pred"))
			if src == "" {
				return nil, errAt(lineNo, "empty pred")
			}
			cur.Preds = append(cur.Preds, src)
		case "}":
			if cur == nil {
				return nil, errAt(lineNo, "unmatched }")
			}
			if len(fields) != 1 {
				return nil, errAt(lineNo, "trailing input after }: %q", line)
			}
			if len(cur.Preds) == 0 {
				return nil, errAt(lineNo, "monitor %q declares no predicates", cur.Monitor)
			}
			inputs = append(inputs, *cur)
			cur = nil
		default:
			return nil, errAt(lineNo, "unknown directive %q (want monitor/shared/pred/})", fields[0])
		}
	}
	if cur != nil {
		return nil, fmt.Errorf("%s: monitor %q not closed at end of file", name, cur.Monitor)
	}
	if len(inputs) == 0 {
		return nil, fmt.Errorf("%s: no monitors declared", name)
	}
	return inputs, nil
}
