package codegen

// The checked-in corpus registrations are produced by the directive below;
// the CI drift gate (`go generate ./... && git diff --exit-code`) keeps the
// file in lock-step with the corpus enumeration. The seed/size constants
// exist so the differential test re-enumerates exactly the generated set —
// keep them in sync with the -corpus argument.

//go:generate go run repro/cmd/minisynchc -corpus 1:48 -pkg codegen -o zz_generated_corpus.go

// DefaultCorpusSeed and DefaultCorpusSize pin the generated fuzz corpus;
// they must match the -corpus seed:n in the go:generate directive above
// (TestCorpusFileUpToDate enforces it).
const (
	DefaultCorpusSeed = 1
	DefaultCorpusSize = 48
)
