package codegen

import (
	"repro/internal/expr"
	"repro/internal/preproc"
)

// FromChecked extracts generation inputs from a checked MiniSynch
// program: one Input per monitor that contains at least one waituntil,
// with the monitor's shared variables (declaration order) and every
// waituntil predicate in source order — the minisynchc -emit preds path,
// which lets a .ms file double as its own predicate manifest.
func FromChecked(c *preproc.Checked) []Input {
	var ins []Input
	for _, cm := range c.Monitors {
		in := Input{Monitor: cm.Decl.Name}
		for _, v := range cm.Decl.Vars {
			in.Shared = append(in.Shared, SharedVar{Name: v.Name, Bool: v.Type == expr.TypeBool})
		}
		var walk func(stmts []preproc.Stmt)
		walk = func(stmts []preproc.Stmt) {
			for _, s := range stmts {
				switch s := s.(type) {
				case *preproc.WaitStmt:
					in.Preds = append(in.Preds, s.Pred.String())
				case *preproc.IfStmt:
					walk(s.Then)
					walk(s.Else)
				case *preproc.WhileStmt:
					walk(s.Body)
				}
			}
		}
		for _, f := range cm.Decl.Funcs {
			walk(f.Body)
		}
		if len(in.Preds) > 0 {
			ins = append(ins, in)
		}
	}
	return ins
}
