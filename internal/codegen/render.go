package codegen

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/expr"
)

// renderer turns a type-checked predicate tree into Go source against the
// GenCells/locals calling convention. Every composite subexpression is
// parenthesized — go/format keeps the parens, and correctness never rides
// on reproducing Go precedence.
type renderer struct {
	shared map[string]cellRef // shared variable → typed cell index
	local  map[string]localRef
	// rawLocals renders every local as its int64 slot regardless of
	// declared type — the key-expression convention, where boolean
	// locals participate in arithmetic as 0/1 (exactly how the runtime
	// compiles template keys).
	rawLocals bool
}

type cellRef struct {
	boolTyped bool
	idx       int
}

type localRef struct {
	boolTyped bool
	idx       int
}

// newRenderer lays out the GenCells indices exactly as the runtime's
// resolveGenCells does: Shared is sorted by name, ints and bools each
// keeping that order within their slice.
func newRenderer(spec core.GenSpec) *renderer {
	r := &renderer{shared: map[string]cellRef{}, local: map[string]localRef{}}
	var ints, bools int
	for _, v := range spec.Shared {
		if v.Bool {
			r.shared[v.Name] = cellRef{boolTyped: true, idx: bools}
			bools++
		} else {
			r.shared[v.Name] = cellRef{idx: ints}
			ints++
		}
	}
	for i, v := range spec.Locals {
		r.local[v.Name] = localRef{boolTyped: v.Bool, idx: i}
	}
	return r
}

// typeOf classifies a subexpression; the tree is already type-checked, so
// unknown names or ill-typed shapes are internal errors.
func (r *renderer) typeOf(n expr.Node) (expr.Type, error) {
	switch n := n.(type) {
	case expr.IntLit:
		return expr.TypeInt, nil
	case expr.BoolLit:
		return expr.TypeBool, nil
	case expr.Var:
		if c, ok := r.shared[n.Name]; ok {
			if c.boolTyped {
				return expr.TypeBool, nil
			}
			return expr.TypeInt, nil
		}
		if l, ok := r.local[n.Name]; ok {
			if l.boolTyped && !r.rawLocals {
				return expr.TypeBool, nil
			}
			return expr.TypeInt, nil
		}
		return expr.TypeInvalid, fmt.Errorf("unresolved variable %q", n.Name)
	case expr.Unary:
		if n.Op == expr.OpNot {
			return expr.TypeBool, nil
		}
		return expr.TypeInt, nil
	case expr.Binary:
		switch n.Op {
		case expr.OpAnd, expr.OpOr, expr.OpLt, expr.OpLe, expr.OpGt, expr.OpGe, expr.OpEq, expr.OpNe:
			return expr.TypeBool, nil
		}
		return expr.TypeInt, nil
	}
	return expr.TypeInvalid, fmt.Errorf("unknown node %T", n)
}

// boolExpr renders a boolean-typed subexpression.
func (r *renderer) boolExpr(n expr.Node) (string, error) {
	switch n := n.(type) {
	case expr.BoolLit:
		if n.Value {
			return "true", nil
		}
		return "false", nil
	case expr.Var:
		if c, ok := r.shared[n.Name]; ok {
			if !c.boolTyped {
				return "", fmt.Errorf("int variable %q in bool position", n.Name)
			}
			return fmt.Sprintf("c.B[%d].Get()", c.idx), nil
		}
		if l, ok := r.local[n.Name]; ok {
			if !l.boolTyped {
				return "", fmt.Errorf("int local %q in bool position", n.Name)
			}
			return fmt.Sprintf("(locals[%d] != 0)", l.idx), nil
		}
		return "", fmt.Errorf("unresolved variable %q", n.Name)
	case expr.Unary:
		if n.Op != expr.OpNot {
			return "", fmt.Errorf("%s in bool position", n.Op)
		}
		x, err := r.boolExpr(n.X)
		if err != nil {
			return "", err
		}
		return "(!" + x + ")", nil
	case expr.Binary:
		switch n.Op {
		case expr.OpAnd, expr.OpOr:
			l, err := r.boolExpr(n.L)
			if err != nil {
				return "", err
			}
			rr, err := r.boolExpr(n.R)
			if err != nil {
				return "", err
			}
			return "(" + l + " " + n.Op.String() + " " + rr + ")", nil
		case expr.OpEq, expr.OpNe:
			lt, err := r.typeOf(n.L)
			if err != nil {
				return "", err
			}
			if lt == expr.TypeBool {
				l, err := r.boolExpr(n.L)
				if err != nil {
					return "", err
				}
				rr, err := r.boolExpr(n.R)
				if err != nil {
					return "", err
				}
				return "(" + l + " " + n.Op.String() + " " + rr + ")", nil
			}
			fallthrough
		case expr.OpLt, expr.OpLe, expr.OpGt, expr.OpGe:
			l, err := r.intExpr(n.L)
			if err != nil {
				return "", err
			}
			rr, err := r.intExpr(n.R)
			if err != nil {
				return "", err
			}
			return "(" + l + " " + n.Op.String() + " " + rr + ")", nil
		}
		return "", fmt.Errorf("%s in bool position", n.Op)
	}
	return "", fmt.Errorf("%T in bool position", n)
}

// intExpr renders an integer-typed subexpression. Division and modulus go
// through the GenDiv/GenMod helpers so a zero divisor evaluates the
// predicate to "not yet true" exactly as the closure compiler does.
func (r *renderer) intExpr(n expr.Node) (string, error) {
	switch n := n.(type) {
	case expr.IntLit:
		if n.Value < 0 {
			return "(" + strconv.FormatInt(n.Value, 10) + ")", nil
		}
		return strconv.FormatInt(n.Value, 10), nil
	case expr.Var:
		if c, ok := r.shared[n.Name]; ok {
			if c.boolTyped {
				return "", fmt.Errorf("bool variable %q in int position", n.Name)
			}
			return fmt.Sprintf("c.I[%d].Get()", c.idx), nil
		}
		if l, ok := r.local[n.Name]; ok {
			if l.boolTyped && !r.rawLocals {
				return "", fmt.Errorf("bool local %q in int position", n.Name)
			}
			return fmt.Sprintf("locals[%d]", l.idx), nil
		}
		return "", fmt.Errorf("unresolved variable %q", n.Name)
	case expr.Unary:
		if n.Op != expr.OpNeg {
			return "", fmt.Errorf("%s in int position", n.Op)
		}
		x, err := r.intExpr(n.X)
		if err != nil {
			return "", err
		}
		return "(-" + x + ")", nil
	case expr.Binary:
		l, err := r.intExpr(n.L)
		if err != nil {
			return "", err
		}
		rr, err := r.intExpr(n.R)
		if err != nil {
			return "", err
		}
		switch n.Op {
		case expr.OpAdd, expr.OpSub, expr.OpMul:
			return "(" + l + " " + n.Op.String() + " " + rr + ")", nil
		case expr.OpDiv:
			return "autosynch.GenDiv(" + l + ", " + rr + ")", nil
		case expr.OpMod:
			return "autosynch.GenMod(" + l + ", " + rr + ")", nil
		}
		return "", fmt.Errorf("%s in int position", n.Op)
	}
	return "", fmt.Errorf("%T in int position", n)
}

// keyExpr renders one template key expression: locals-only, every local
// read as its raw int64 slot.
func (r *renderer) keyExpr(n expr.Node) (string, error) {
	saved := r.rawLocals
	r.rawLocals = true
	defer func() { r.rawLocals = saved }()
	if len(r.shared) > 0 {
		// Key expressions never reference shared state; verify rather
		// than trust, since an emitted key silently overrides the
		// runtime's compiled one.
		for _, name := range expr.Vars(n) {
			if _, ok := r.shared[name]; ok {
				return "", fmt.Errorf("key expression references shared variable %q", name)
			}
		}
	}
	return r.intExpr(n)
}

// genVarsLiteral renders a []autosynch.GenVar literal.
func genVarsLiteral(vars []core.GenVar) string {
	if len(vars) == 0 {
		return "nil"
	}
	var b strings.Builder
	b.WriteString("[]autosynch.GenVar{")
	for i, v := range vars {
		if i > 0 {
			b.WriteString(", ")
		}
		if v.Bool {
			fmt.Fprintf(&b, "{Name: %q, Bool: true}", v.Name)
		} else {
			fmt.Fprintf(&b, "{Name: %q}", v.Name)
		}
	}
	b.WriteString("}")
	return b.String()
}
