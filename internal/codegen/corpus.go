package codegen

import (
	"repro/internal/core"
	"repro/internal/expr"
)

// The fuzzed half of the differential acceptance test. Go code cannot be
// generated at runtime, so "randomized predicates" are a deterministic
// seeded corpus: minisynchc -corpus seed:n re-enumerates the exact same
// predicates at generation time (writing zz_generated_corpus.go) and at
// test time (comparing every one against the closure interpreter and the
// AST-interpreting oracle over fuzzed states). Determinism is load-
// bearing — the CI drift gate regenerates the file and diffs.

// CorpusShared is the fixed shared-variable pool every corpus predicate
// draws from: two ints and a bool, mirroring the registry's typical
// monitor shapes.
var CorpusShared = []SharedVar{
	{Name: "cx"},
	{Name: "cy"},
	{Name: "cf", Bool: true},
}

// corpus local pool: two int locals and a bool local.
var corpusIntLocals = []string{"lk", "ln"}

const corpusBoolLocal = "lb"

// rng is the xorshift64* generator used everywhere the repo needs cheap
// deterministic randomness.
type rng struct{ s uint64 }

func newRng(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// intNode draws a random integer expression of the given depth budget.
func (r *rng) intNode(depth int) expr.Node {
	if depth <= 0 {
		switch r.intn(4) {
		case 0:
			return expr.I(int64(r.intn(13) - 4)) // constants in [-4, 8]
		case 1:
			return expr.V(CorpusShared[r.intn(2)].Name) // cx or cy
		default:
			return expr.V(corpusIntLocals[r.intn(len(corpusIntLocals))])
		}
	}
	switch r.intn(7) {
	case 0:
		return expr.Neg(r.intNode(depth - 1))
	case 1:
		return expr.Bin(expr.OpMul, r.intNode(depth-1), expr.I(int64(r.intn(5)-2)))
	case 2:
		return expr.Bin(expr.OpDiv, r.intNode(depth-1), r.intNode(depth-1))
	case 3:
		return expr.Bin(expr.OpMod, r.intNode(depth-1), r.intNode(depth-1))
	case 4:
		return expr.Bin(expr.OpSub, r.intNode(depth-1), r.intNode(depth-1))
	default:
		return expr.Bin(expr.OpAdd, r.intNode(depth-1), r.intNode(depth-1))
	}
}

// boolNode draws a random boolean expression.
func (r *rng) boolNode(depth int) expr.Node {
	if depth <= 0 {
		if r.intn(3) == 0 {
			if r.intn(2) == 0 {
				return expr.V("cf")
			}
			return expr.V(corpusBoolLocal)
		}
		ops := []expr.Op{expr.OpLt, expr.OpLe, expr.OpGt, expr.OpGe, expr.OpEq, expr.OpNe}
		return expr.Bin(ops[r.intn(len(ops))], r.intNode(1), r.intNode(1))
	}
	switch r.intn(7) {
	case 0:
		return expr.Not(r.boolNode(depth - 1))
	case 1, 2:
		return expr.Bin(expr.OpAnd, r.boolNode(depth-1), r.boolNode(depth-1))
	case 3, 4:
		return expr.Bin(expr.OpOr, r.boolNode(depth-1), r.boolNode(depth-1))
	case 5:
		// Boolean equality, the "flag == b" shape.
		op := expr.OpEq
		if r.intn(2) == 0 {
			op = expr.OpNe
		}
		return expr.Bin(op, r.boolNode(0), r.boolNode(0))
	default:
		ops := []expr.Op{expr.OpLt, expr.OpLe, expr.OpGt, expr.OpGe, expr.OpEq, expr.OpNe}
		return expr.Bin(ops[r.intn(len(ops))], r.intNode(depth-1), r.intNode(depth-1))
	}
}

// Corpus enumerates the deterministic predicate corpus for a seed: n
// distinct predicates (by canonical source) that compile cleanly against
// the CorpusShared monitor. Draws that fail to compile (DNF blow-up) or
// duplicate an earlier canon are skipped, so the sequence depends only on
// the seed.
func Corpus(seed uint64, n int) Input {
	r := newRng(seed)
	m := core.New(core.WithoutGenerated())
	for _, v := range CorpusShared {
		if v.Bool {
			m.NewBool(v.Name, false)
		} else {
			m.NewInt(v.Name, 0)
		}
	}
	in := Input{Monitor: "corpus"}
	in.Shared = append(in.Shared, CorpusShared...)
	seen := map[string]bool{}
	for len(in.Preds) < n {
		node := r.boolNode(1 + r.intn(3))
		p, err := m.Compile(node.String())
		if err != nil {
			continue
		}
		canon := p.GenSpec().Canon
		if seen[canon] {
			continue
		}
		seen[canon] = true
		in.Preds = append(in.Preds, canon)
	}
	return in
}
