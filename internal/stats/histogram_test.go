package stats

import (
	"encoding/json"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// fill builds a histogram from a sample set.
func fill(xs []time.Duration) *Histogram {
	var h Histogram
	for _, x := range xs {
		h.Observe(x)
	}
	return &h
}

// TestBucketGeometry pins the layout invariants every other property
// relies on: the index function and the bounds function are inverses, the
// buckets tile the value space in order, and the relative width bound
// holds.
func TestBucketGeometry(t *testing.T) {
	prevHigh := uint64(0)
	for i := 0; i < histBuckets; i++ {
		low, high := bucketBounds(i)
		if low > high {
			t.Fatalf("bucket %d: low %d > high %d", i, low, high)
		}
		if i > 0 && low != prevHigh+1 {
			t.Fatalf("bucket %d does not tile: low %d, previous high %d", i, low, prevHigh)
		}
		if got := bucketIndex(low); got != i {
			t.Fatalf("bucketIndex(low=%d) = %d, want %d", low, got, i)
		}
		if got := bucketIndex(high); got != i {
			t.Fatalf("bucketIndex(high=%d) = %d, want %d", high, got, i)
		}
		if low >= histSub && float64(high-low) > float64(low)/histSub {
			t.Fatalf("bucket %d [%d,%d] wider than the 1/%d relative bound", i, low, high, histSub)
		}
		prevHigh = high
	}
	if bucketIndex(^uint64(0)) != histBuckets-1 {
		t.Fatalf("max uint64 lands in bucket %d, want %d", bucketIndex(^uint64(0)), histBuckets-1)
	}
}

// quantileAgrees asserts the histogram quantile lands in the same bucket
// as the exact sort-based quantile — the precision the geometry promises.
func quantileAgrees(t *testing.T, xs []time.Duration, q float64) {
	t.Helper()
	h := fill(xs)
	got := h.Quantile(q)
	exact := ExactQuantile(xs, q)
	if bucketIndex(uint64(got)) != bucketIndex(uint64(exact)) {
		t.Errorf("q=%g over %d samples: histogram %v (bucket %d), exact %v (bucket %d)",
			q, len(xs), got, bucketIndex(uint64(got)), exact, bucketIndex(uint64(exact)))
	}
}

func TestQuantileFixedDistributions(t *testing.T) {
	fixed := map[string][]time.Duration{
		"single":   {1500 * time.Nanosecond},
		"uniform":  {1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
		"repeated": {100, 100, 100, 100, 100, 100},
		"bimodal": {time.Microsecond, time.Microsecond, time.Microsecond,
			time.Millisecond, time.Millisecond, 50 * time.Millisecond},
		"heavy-tail": {10, 12, 11, 10, 13, 9, 10, 11, 10 * time.Second},
		"zeros":      {0, 0, 0, time.Nanosecond},
	}
	for name, xs := range fixed {
		for _, q := range []float64{0.5, 0.9, 0.99, 0.999, 1.0} {
			t.Run(name, func(t *testing.T) { quantileAgrees(t, xs, q) })
		}
	}
}

// TestQuantileRandomized drives the same agreement property over
// log-uniform random samples via testing/quick: the interesting latencies
// span nanoseconds to seconds, so the generator picks a random magnitude
// first.
func TestQuantileRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	prop := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		xs := make([]time.Duration, int(n)+1)
		for i := range xs {
			mag := uint(r.Intn(34)) // up to ~17s
			xs[i] = time.Duration(r.Int63n(1 << mag))
		}
		for _, q := range []float64{0.5, 0.99, 0.999} {
			h := fill(xs)
			got, exact := h.Quantile(q), ExactQuantile(xs, q)
			if bucketIndex(uint64(got)) != bucketIndex(uint64(exact)) {
				t.Logf("seed %d n %d q %g: got %v exact %v", seed, n, q, got, exact)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestMergeAssociative checks (a⊕b)⊕c == a⊕(b⊕c) and that merging worker
// histograms equals observing the concatenated stream — the property the
// per-dispatcher collection in watchd depends on.
func TestMergeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	gen := func(seed int64, n uint8) ([]time.Duration, []time.Duration, []time.Duration) {
		r := rand.New(rand.NewSource(seed))
		mk := func() []time.Duration {
			xs := make([]time.Duration, r.Intn(int(n)+1))
			for i := range xs {
				xs[i] = time.Duration(r.Int63n(1 << uint(r.Intn(30))))
			}
			return xs
		}
		return mk(), mk(), mk()
	}
	prop := func(seed int64, n uint8) bool {
		a, b, c := gen(seed, n)
		left := fill(a)
		ab := fill(b)
		left.Merge(ab) // (a⊕b)
		left.Merge(fill(c))
		right := fill(b)
		right.Merge(fill(c)) // (b⊕c)
		ha := fill(a)
		ha.Merge(right)
		whole := fill(append(append(append([]time.Duration{}, a...), b...), c...))
		return left.Equal(ha) && left.Equal(whole)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Error(err)
	}
	// Merging an empty or nil histogram is the identity.
	h := fill([]time.Duration{5, 10})
	before := *h
	h.Merge(&Histogram{})
	h.Merge(nil)
	if !h.Equal(&before) {
		t.Error("merging empty/nil histograms changed state")
	}
}

func TestHistogramJSONRoundTrip(t *testing.T) {
	h := fill([]time.Duration{0, 17, 430 * time.Nanosecond, 12 * time.Microsecond,
		12 * time.Microsecond, 3 * time.Millisecond, 2 * time.Second})
	raw, err := json.Marshal(h)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Histogram
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !h.Equal(&back) {
		t.Fatalf("round trip lost state:\n  in:  %v\n  out: %v", h, &back)
	}
	for _, q := range []float64{0.5, 0.99, 0.999} {
		if h.Quantile(q) != back.Quantile(q) {
			t.Errorf("q=%g differs after round trip: %v vs %v", q, h.Quantile(q), back.Quantile(q))
		}
	}
	// The derived percentile fields must be present for artifact
	// consumers that do not know the bucket geometry.
	var wire map[string]any
	if err := json.Unmarshal(raw, &wire); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"count", "p50_ns", "p99_ns", "p999_ns", "buckets"} {
		if _, ok := wire[k]; !ok {
			t.Errorf("wire form missing %q: %s", k, raw)
		}
	}
	// An empty histogram round-trips too (no buckets key).
	raw, err = json.Marshal(&Histogram{})
	if err != nil {
		t.Fatal(err)
	}
	var empty Histogram
	if err := json.Unmarshal(raw, &empty); err != nil {
		t.Fatal(err)
	}
	if empty.Count() != 0 || empty.Quantile(0.5) != 0 {
		t.Errorf("empty histogram round trip: %v", &empty)
	}
}

func TestHistogramSummaryAccessors(t *testing.T) {
	h := fill([]time.Duration{100, 200, 300, 400})
	if h.Count() != 4 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Min() != 100 || h.Max() != 400 {
		t.Errorf("Min/Max = %v/%v", h.Min(), h.Max())
	}
	if h.Mean() != 250 {
		t.Errorf("Mean = %v", h.Mean())
	}
	h.Observe(-5 * time.Second) // clamps to zero
	if h.Min() != 0 {
		t.Errorf("negative observation did not clamp: Min = %v", h.Min())
	}
	if got := (&Histogram{}).String(); got != "n=0" {
		t.Errorf("empty String = %q", got)
	}
	if got := h.String(); got == "" || got == "n=0" {
		t.Errorf("String = %q", got)
	}
}
