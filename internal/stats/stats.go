// Package stats provides the small statistics toolkit used by the
// benchmark harness: the paper's protocol runs every configuration 25
// times, removes the best and the worst result, and reports the mean of
// the rest (§6.1).
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// TrimmedMean drops the k smallest and k largest values and returns the
// mean of the remainder. If trimming would remove everything, it falls
// back to the plain mean. xs is not modified.
func TrimmedMean(xs []float64, k int) float64 {
	if k <= 0 || len(xs) <= 2*k {
		return Mean(xs)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return Mean(sorted[k : len(sorted)-k])
}

// Min returns the smallest value (0 for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Median returns the middle value (mean of the two middles for even n).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// Durations converts a duration slice to seconds for the helpers above.
func Durations(ds []time.Duration) []float64 {
	xs := make([]float64, len(ds))
	for i, d := range ds {
		xs[i] = d.Seconds()
	}
	return xs
}

// FormatSeconds renders a second count compactly ("1.234s", "56.7ms").
func FormatSeconds(s float64) string {
	switch {
	case s >= 1:
		return fmt.Sprintf("%.3fs", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.3gms", s*1e3)
	default:
		return fmt.Sprintf("%.3gµs", s*1e6)
	}
}
