package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strconv"
	"time"
)

// Histogram bucket geometry. Values are nanosecond durations placed into
// base-2 log-scale buckets with histSub linear sub-buckets per power of
// two (the HDR layout): values below histSub land in exact unit buckets,
// and every larger bucket spans a 1/histSub fraction of its power of two,
// so the relative quantization error is bounded by 1/histSub (~3%) across
// the full uint64 range. The layout is fixed — every Histogram has the
// same buckets — which is what makes Merge a plain element-wise add and
// quantiles of merged worker histograms exact up to bucket width.
const (
	histSubBits = 5                                // log2 of sub-buckets per power of two
	histSub     = 1 << histSubBits                 // 32 sub-buckets
	histBuckets = (64 - histSubBits + 1) * histSub // 1920 buckets cover all uint64 ns
)

// bucketIndex maps a nanosecond value to its bucket.
func bucketIndex(v uint64) int {
	if v < histSub {
		return int(v)
	}
	exp := bits.Len64(v) - 1 // 2^exp <= v < 2^(exp+1)
	// The top histSubBits bits below the leading one select the
	// sub-bucket; the shifted block index selects the power of two.
	sub := int(v>>(uint(exp)-histSubBits)) - histSub
	return (exp-histSubBits+1)<<histSubBits + sub
}

// bucketBounds returns the inclusive [low, high] nanosecond range of a
// bucket.
func bucketBounds(idx int) (low, high uint64) {
	if idx < histSub {
		return uint64(idx), uint64(idx)
	}
	block := uint(idx >> histSubBits) // >= 1
	pos := uint64(idx & (histSub - 1))
	shift := block - 1
	low = (histSub + pos) << shift
	high = low + 1<<shift - 1
	return low, high
}

// Histogram is a fixed-bucket log-scale latency histogram: Observe places
// nanosecond durations into base-2 buckets with bounded relative error
// (see the geometry constants above), Quantile answers p50/p99/p999
// queries, and Merge combines histograms element-wise — workers record
// into private histograms with no synchronization and the collector merges
// them, so the hot path never contends on measurement state.
//
// The zero value is an empty histogram ready for use. A Histogram is not
// safe for concurrent mutation; merge per-worker copies instead.
type Histogram struct {
	count  uint64
	sum    uint64 // total observed nanoseconds
	min    uint64 // valid only when count > 0
	max    uint64
	counts [histBuckets]uint64
}

// Observe records one duration. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	v := uint64(0)
	if d > 0 {
		v = uint64(d)
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.counts[bucketIndex(v)]++
}

// Merge adds every observation of o into h. o is unchanged; merging is
// commutative and associative, so any tree of worker merges yields the
// same histogram.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.count == 0 {
		return
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
	for i, c := range o.counts {
		if c != 0 {
			h.counts[i] += c
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() time.Duration { return time.Duration(h.min) }

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() time.Duration { return time.Duration(h.max) }

// Mean returns the arithmetic mean observation (0 when empty).
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / h.count)
}

// Quantile returns the q-quantile (0 < q <= 1) by the nearest-rank rule:
// the bucket holding the ceil(q*count)-th smallest observation, reported
// as the bucket midpoint clamped to the observed [min, max]. The exact
// rank statistic is guaranteed to lie inside the returned value's bucket,
// so the relative error is bounded by the bucket width (~1/32). Returns 0
// for an empty histogram.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var cum uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += c
		if cum >= rank {
			low, high := bucketBounds(i)
			mid := low + (high-low)/2
			if mid < h.min {
				mid = h.min
			}
			if mid > h.max {
				mid = h.max
			}
			return time.Duration(mid)
		}
	}
	return time.Duration(h.max) // unreachable when counts and count agree
}

// P50 is Quantile(0.50), the median wake-to-claim latency.
func (h *Histogram) P50() time.Duration { return h.Quantile(0.50) }

// P99 is Quantile(0.99).
func (h *Histogram) P99() time.Duration { return h.Quantile(0.99) }

// P999 is Quantile(0.999), the tail a production service is judged by.
func (h *Histogram) P999() time.Duration { return h.Quantile(0.999) }

// Equal reports whether two histograms hold identical state (same
// observations up to bucket resolution).
func (h *Histogram) Equal(o *Histogram) bool {
	if h.count != o.count || h.sum != o.sum {
		return false
	}
	if h.count > 0 && (h.min != o.min || h.max != o.max) {
		return false
	}
	return h.counts == o.counts
}

// String renders the summary a soak report prints.
func (h *Histogram) String() string {
	if h.count == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v p999=%v max=%v",
		h.count, h.Mean(), h.P50(), h.P99(), h.P999(), h.Max())
}

// histogramJSON is the wire form: sparse buckets keyed by index, plus the
// derived percentiles so BENCH artifacts carry tail latency without the
// consumer re-implementing the bucket geometry. Unmarshal reads only the
// state fields; the derived p50/p99/p999 are recomputed on demand.
type histogramJSON struct {
	Count   uint64            `json:"count"`
	SumNs   uint64            `json:"sum_ns"`
	MinNs   uint64            `json:"min_ns"`
	MaxNs   uint64            `json:"max_ns"`
	P50Ns   uint64            `json:"p50_ns"`
	P99Ns   uint64            `json:"p99_ns"`
	P999Ns  uint64            `json:"p999_ns"`
	Buckets map[string]uint64 `json:"buckets,omitempty"`
}

// MarshalJSON emits the sparse wire form. The receiver is a value so the
// encoder finds the method even for non-addressable Histogram fields
// (e.g. Measurement.Latency inside a marshaled report).
func (h Histogram) MarshalJSON() ([]byte, error) {
	out := histogramJSON{
		Count: h.count, SumNs: h.sum, MinNs: h.min, MaxNs: h.max,
		P50Ns: uint64(h.P50()), P99Ns: uint64(h.P99()), P999Ns: uint64(h.P999()),
	}
	for i, c := range h.counts {
		if c != 0 {
			if out.Buckets == nil {
				out.Buckets = make(map[string]uint64)
			}
			out.Buckets[strconv.Itoa(i)] = c
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON restores a histogram from its wire form; the quantile
// fields are derived and ignored on input.
func (h *Histogram) UnmarshalJSON(raw []byte) error {
	var in histogramJSON
	if err := json.Unmarshal(raw, &in); err != nil {
		return err
	}
	*h = Histogram{count: in.Count, sum: in.SumNs, min: in.MinNs, max: in.MaxNs}
	for k, c := range in.Buckets {
		i, err := strconv.Atoi(k)
		if err != nil || i < 0 || i >= histBuckets {
			return fmt.Errorf("stats: histogram bucket key %q out of range", k)
		}
		h.counts[i] = c
	}
	return nil
}

// ExactQuantile is the sort-based nearest-rank reference the histogram is
// tested against: the ceil(q*n)-th smallest of xs. It is exported for the
// accuracy tests and for small sample sets where exact answers are cheap.
func ExactQuantile(xs []time.Duration, q float64) time.Duration {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), xs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
