package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if !almost(Mean([]float64{1, 2, 3}), 2) {
		t.Error("Mean wrong")
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
}

func TestTrimmedMean(t *testing.T) {
	xs := []float64{100, 1, 2, 3, 0.001} // outliers at both ends
	if got := TrimmedMean(xs, 1); !almost(got, 2) {
		t.Errorf("TrimmedMean = %f, want 2", got)
	}
	// Not enough values to trim: fall back to the plain mean.
	if got := TrimmedMean([]float64{1, 3}, 1); !almost(got, 2) {
		t.Errorf("TrimmedMean fallback = %f, want 2", got)
	}
	// Input must not be reordered.
	orig := []float64{5, 1, 4}
	TrimmedMean(orig, 1)
	if orig[0] != 5 || orig[1] != 1 || orig[2] != 4 {
		t.Error("TrimmedMean mutated its input")
	}
}

func TestMinMaxMedianStdDev(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if Min(xs) != 1 || Max(xs) != 4 {
		t.Error("Min/Max wrong")
	}
	if !almost(Median(xs), 2.5) {
		t.Errorf("Median = %f", Median(xs))
	}
	if !almost(Median([]float64{3, 1, 2}), 2) {
		t.Error("odd Median wrong")
	}
	if !almost(StdDev([]float64{2, 2, 2}), 0) {
		t.Error("StdDev of constants != 0")
	}
	if StdDev([]float64{1}) != 0 || Min(nil) != 0 || Max(nil) != 0 || Median(nil) != 0 {
		t.Error("degenerate inputs mishandled")
	}
}

func TestDurations(t *testing.T) {
	xs := Durations([]time.Duration{time.Second, 500 * time.Millisecond})
	if !almost(xs[0], 1) || !almost(xs[1], 0.5) {
		t.Errorf("Durations = %v", xs)
	}
}

func TestFormatSeconds(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{1.2345, "1.234s"},
		{0.0567, "56.7ms"},
		{0.000012, "12µs"},
	}
	for _, c := range cases {
		if got := FormatSeconds(c.in); got != c.want {
			t.Errorf("FormatSeconds(%g) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestPropertyTrimmedMeanBounded(t *testing.T) {
	// The trimmed mean always lies within [Min, Max].
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				// Bound the magnitude so the mean cannot overflow: the
				// property under test is ordering, not float64 limits.
				xs = append(xs, math.Remainder(x, 1e9))
			}
		}
		if len(xs) == 0 {
			return true
		}
		tm := TrimmedMean(xs, 1)
		return tm >= Min(xs)-1e-9 && tm <= Max(xs)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
