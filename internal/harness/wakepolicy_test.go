package harness

import (
	"strings"
	"testing"
	"time"

	"repro/internal/policy"
)

// TestWakePolicyStarvationBound is the starvation-bound assertion behind
// the wake-policy experiment: under the same storm, FIFO's worst
// client-observed wait must stay within a constant factor of its mean
// (with an absolute floor absorbing scheduler noise on loaded machines),
// while the priority policy must trip the starvation accounting — the
// low class waits for the higher classes' entire quota.
func TestWakePolicyStarvationBound(t *testing.T) {
	if testing.Short() {
		t.Skip("storm points are not short")
	}
	fifo := wakePolicyPoint(policy.FIFO, 16, 4000)
	if fifo.Check != 0 {
		t.Fatalf("fifo storm lost grants: check = %d", fifo.Check)
	}
	if fifo.Latency.Count() == 0 {
		t.Fatal("fifo storm observed no waits")
	}
	if fifo.Stats.PolicyWakes == 0 {
		t.Error("fifo storm recorded no policy-picked wakes")
	}
	bound := 200 * fifo.Latency.Mean()
	if floor := 100 * time.Millisecond; bound < floor {
		bound = floor
	}
	if max := fifo.Latency.Max(); max > bound {
		t.Errorf("fifo max wait %v exceeds %v (200x mean %v): FIFO must bound waits",
			max, bound, fifo.Latency.Mean())
	}

	prio := wakePolicyPoint(wakePolicyArms[2].pol, 16, 4000)
	if prio.Check != 0 {
		t.Fatalf("priority storm lost grants: check = %d", prio.Check)
	}
	if prio.Stats.Starved == 0 {
		t.Errorf("priority storm starved no one (max-wait %v, threshold %v)",
			time.Duration(prio.Stats.MaxWaitNs), wakePolicyStarveAfter)
	}
	if time.Duration(prio.Stats.MaxWaitNs) < wakePolicyStarveAfter {
		t.Errorf("priority max wait %v below the starvation threshold %v",
			time.Duration(prio.Stats.MaxWaitNs), wakePolicyStarveAfter)
	}
}

// TestWakePolicyReportShape runs the experiment end to end at a tiny
// configuration and pins the report contract: one p50 and one p99 series
// per policy arm, per-arm starvation notes, and the attached histogram
// the BENCH artifact serializes.
func TestWakePolicyReportShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke runs are not short")
	}
	rep := WakePolicy(tiny())
	if rep.ID != "wake-policy" {
		t.Fatalf("report ID = %q", rep.ID)
	}
	if rep.Figure == nil {
		t.Fatal("report lacks its figure")
	}
	if want := 2 * len(wakePolicyArms); len(rep.Figure.Series) != want {
		t.Fatalf("figure has %d series, want %d", len(rep.Figure.Series), want)
	}
	for _, s := range rep.Figure.Series {
		if len(s.Points) != len(rep.Figure.XS) {
			t.Errorf("series %q has %d points for %d xs", s.Label, len(s.Points), len(rep.Figure.XS))
		}
		for _, p := range s.Points {
			if p < 0 {
				t.Errorf("series %q carries the check-failure sentinel: %v", s.Label, s.Points)
				break
			}
		}
	}
	for _, arm := range wakePolicyArms {
		if !strings.Contains(rep.Text, arm.name+"-p99") {
			t.Errorf("report text missing series %s-p99:\n%s", arm.name, rep.Text)
		}
		found := false
		for _, n := range rep.Figure.Notes {
			if strings.HasPrefix(n, arm.name+" @ ") {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("figure notes missing the %s starvation line: %v", arm.name, rep.Figure.Notes)
		}
	}
	if rep.Latency == nil || rep.Latency.Count() == 0 {
		t.Error("report lacks the attached latency histogram")
	}
}
