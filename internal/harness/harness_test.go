package harness

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/problems"
)

func TestProtocolMeasure(t *testing.T) {
	calls := 0
	m := Protocol{Trials: 5, Drop: 1}.Measure(func() problems.Result {
		calls++
		return problems.Result{Elapsed: time.Duration(calls) * time.Millisecond, Ops: 1}
	})
	if calls != 5 {
		t.Fatalf("ran %d trials, want 5", calls)
	}
	// Trials are 1..5 ms; trimmed mean of {2,3,4} ms = 3 ms.
	if m.MeanSeconds < 0.0029 || m.MeanSeconds > 0.0031 {
		t.Errorf("trimmed mean = %f s, want ~0.003", m.MeanSeconds)
	}
	if m.MinSeconds >= m.MaxSeconds {
		t.Errorf("min %f >= max %f", m.MinSeconds, m.MaxSeconds)
	}
	if m.CheckFailed {
		t.Error("CheckFailed set with zero checks")
	}
}

func TestProtocolMeasureFlagsCheckFailure(t *testing.T) {
	m := Protocol{Trials: 1}.Measure(func() problems.Result {
		return problems.Result{Elapsed: time.Millisecond, Check: 7}
	})
	if !m.CheckFailed {
		t.Error("CheckFailed not set")
	}
}

func TestProtocolMeasureClampsTrials(t *testing.T) {
	calls := 0
	Protocol{Trials: 0}.Measure(func() problems.Result {
		calls++
		return problems.Result{Elapsed: time.Millisecond}
	})
	if calls != 1 {
		t.Errorf("ran %d trials, want 1", calls)
	}
}

func TestFigureRender(t *testing.T) {
	f := Figure{
		ID: "figX", Title: "demo", XLabel: "# threads", YLabel: "runtime (seconds)",
		XS: []int{2, 4},
		Series: []Series{
			{Label: "a", Points: []float64{0.5, 1.25}},
			{Label: "b", Points: []float64{0.25}}, // short series renders "-"
		},
		Notes: []string{"hello"},
	}
	out := f.Render()
	for _, want := range []string{"figX: demo", "# threads", "a", "b", "500ms", "1.250s", "-", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render output missing %q:\n%s", want, out)
		}
	}
}

func TestDoubling(t *testing.T) {
	got := doubling(2, 16)
	want := []int{2, 4, 8, 16}
	if len(got) != len(want) {
		t.Fatalf("doubling = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("doubling = %v, want %v", got, want)
		}
	}
	if doubling(2, 1) != nil {
		t.Error("doubling past max should be empty")
	}
}

func TestExperimentsRegistryComplete(t *testing.T) {
	paper := []string{"fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "table1", "abl-tags", "abl-inactive", "abl-compile", "scale-shards", "sel-fanout", "watchd", "wake-policy"}
	ids := IDs()
	// Every registered scenario contributes a prob-* sweep on top of the
	// paper experiments.
	if want := len(paper) + len(problems.Registry); len(ids) != want {
		t.Fatalf("got %d experiment IDs, want %d: %v", len(ids), want, ids)
	}
	for i, id := range paper {
		if ids[i] != id {
			t.Errorf("IDs[%d] = %q, want %q", i, ids[i], id)
		}
	}
	var probe []string
	for _, name := range problems.Names() {
		probe = append(probe, "prob-"+name)
	}
	for _, id := range append(append([]string{}, paper...), probe...) {
		e, ok := Find(id)
		if !ok {
			t.Errorf("Find(%q) failed", id)
			continue
		}
		if e.Run == nil || e.Title == "" {
			t.Errorf("experiment %q incomplete", id)
		}
	}
	if _, ok := Find("nope"); ok {
		t.Error("Find(nope) succeeded")
	}
}

func TestProblemSweepRendersEveryMechanism(t *testing.T) {
	s := problems.MustLookup("unisex-bathroom")
	rep := ProblemSweep(s, tiny())
	for _, want := range []string{"prob-unisex-bathroom", "explicit", "baseline", "autosynch-t", "autosynch", "check: "} {
		if !strings.Contains(rep.Text, want) {
			t.Errorf("sweep output missing %q:\n%s", want, rep.Text)
		}
	}
	if rep.Figure == nil || len(rep.Figure.Series) != len(s.Mechanisms()) {
		t.Fatalf("sweep report lacks its structured figure: %+v", rep.Figure)
	}
}

// TestReportJSONRoundTrip pins the -json contract of cmd/autosynch-bench:
// a figure-shaped report marshals with its id and series points and
// unmarshals back to the same values.
func TestReportJSONRoundTrip(t *testing.T) {
	rep := Fig8(tiny())
	if rep.ID != "fig8" || rep.Figure == nil {
		t.Fatalf("Fig8 report incomplete: id=%q figure=%v", rep.ID, rep.Figure)
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.ID != rep.ID || back.Figure == nil ||
		len(back.Figure.Series) != len(rep.Figure.Series) ||
		len(back.Figure.XS) != len(rep.Figure.XS) {
		t.Errorf("round trip lost structure:\n%s", raw)
	}
	for i, s := range back.Figure.Series {
		if len(s.Points) != len(rep.Figure.Series[i].Points) {
			t.Errorf("series %q lost points", s.Label)
		}
	}
	// Text-only experiments must still marshal, with the figure omitted.
	tr := textReport("table1", "body")
	raw, err = json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), "figure") {
		t.Errorf("text report marshaled a figure: %s", raw)
	}
}

// tiny returns a configuration small enough for unit tests.
func tiny() Config {
	return Config{Protocol: Protocol{Trials: 1}, TotalOps: 300, MaxThreads: 4}
}

func TestAllExperimentsRunTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke runs are not short")
	}
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			rep := e.Run(tiny())
			out := rep.Text
			if !strings.Contains(out, e.ID[:3]) && !strings.Contains(out, e.ID) {
				t.Errorf("%s output lacks its id:\n%s", e.ID, out)
			}
			if strings.Contains(out, "-1") && strings.Contains(out, "seconds") {
				t.Errorf("%s reported a conservation failure:\n%s", e.ID, out)
			}
			if rep.ID == "" {
				t.Errorf("%s report has no id", e.ID)
			}
		})
	}
}

func TestSweepSeriesShape(t *testing.T) {
	xs := []int{2, 4}
	series, lat := sweep(Protocol{Trials: 1}, problems.RunBoundedBuffer,
		[]problems.Mechanism{problems.AutoSynch}, xs, 100, meanSeconds)
	if len(series) != 1 || len(series[0].Points) != 2 {
		t.Fatalf("sweep shape wrong: %+v", series)
	}
	if lat != nil && lat.Count() == 0 {
		t.Errorf("sweep returned a non-nil empty latency histogram")
	}
	if series[0].Label != "autosynch" {
		t.Errorf("label = %q", series[0].Label)
	}
	for _, p := range series[0].Points {
		if p < 0 {
			t.Errorf("conservation failure sentinel in points: %v", series[0].Points)
		}
	}
}
