package harness

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/problems"
	"repro/internal/stats"
)

// wakePolicyClasses is the number of priority classes in the storm:
// waiter w carries priority w % wakePolicyClasses, so every class is
// populated at every point of the doubling axis.
const wakePolicyClasses = 4

// wakePolicyStarveAfter is the starvation threshold for the experiment's
// monitors: far above a FIFO round trip through the whole wait list
// (hundreds of microseconds, with scheduler outliers in the low
// milliseconds) and far below the time an unfair policy makes its victim
// wait for the favored waiters' entire quotas (tens of milliseconds), so
// Starved separates the policies instead of measuring the machine.
const wakePolicyStarveAfter = 2 * time.Millisecond

// wakePolicyArms are the policies under comparison. The priority arm
// ranks by the waiter's bound "prio" local — higher class wins every
// relay, which is exactly what starves the low class.
var wakePolicyArms = []struct {
	name string
	pol  policy.Policy
}{
	{"fifo", policy.FIFO},
	{"lifo", policy.LIFO},
	{"priority", policy.Priority(func(binds map[string]int64) int64 { return binds["prio"] })},
}

// wakePolicyPoint runs one storm: `waiters` threads with cyclic priority
// classes and fixed grant quotas compete for totalOps single-token
// grants. The coordinator mints one token per round and — crucially —
// spins until every still-active waiter is parked before minting, so the
// wait list is saturated at every relay and each grant is a pure policy
// decision (a free-running handoff chain instead lets the just-served
// waiter barge back in through the Mesa fast path, washing the policy
// out of the measurement). Client-observed wait latency (monitor entry
// to grant) lands in the histogram; conservation is grants minus mints
// plus the residual token.
func wakePolicyPoint(pol policy.Policy, waiters, totalOps int) problems.Result {
	m := core.New(core.WithPolicy(pol), core.WithStarvationThreshold(wakePolicyStarveAfter))
	tokens := m.NewInt("tokens", 0)
	// The prio conjunct constant-folds at globalization (prio >= 0 is
	// always true), so every waiter shares one canonical predicate while
	// the binding still carries the class to Priority.Rank.
	grant := m.MustCompile("tokens >= 1 && prio >= 0")

	quota := make([]int, waiters)
	for i, left := 0, totalOps; i < waiters; i++ {
		share := left / (waiters - i)
		quota[i] = share
		left -= share
	}

	granted := make([]int64, waiters)
	hists := make([]stats.Histogram, waiters)
	served := make(chan int, waiters)
	active := 0
	for _, q := range quota {
		if q > 0 {
			active++
		}
	}

	start := time.Now()
	for w := 0; w < waiters; w++ {
		go func(w, n int) {
			pr := int64(w % wakePolicyClasses)
			for i := 0; i < n; i++ {
				t0 := time.Now()
				m.Enter()
				if err := m.AwaitPred(grant, core.BindInt("prio", pr)); err != nil {
					panic(err)
				}
				hists[w].Observe(time.Since(t0))
				tokens.Add(-1)
				granted[w]++
				m.Exit()
				served <- w
			}
		}(w, quota[w])
	}
	remaining := append([]int(nil), quota...)
	wedge := time.Now().Add(2 * time.Minute)
	for issued := 0; issued < totalOps; issued++ {
		for m.Waiting() != active {
			if time.Now().After(wedge) {
				panic(fmt.Sprintf("wake-policy storm wedged: %d/%d parked after grant %d",
					m.Waiting(), active, issued))
			}
			runtime.Gosched()
		}
		m.Do(func() { tokens.Add(1) }) // one token: the relay's policy decides
		w := <-served
		remaining[w]--
		if remaining[w] == 0 {
			active--
		}
	}
	elapsed := time.Since(start)

	var got int64
	merged := &stats.Histogram{}
	for w := 0; w < waiters; w++ {
		got += granted[w]
		merged.Merge(&hists[w])
	}
	var residue int64
	m.Do(func() { residue = tokens.Get() })
	return problems.Result{
		Mechanism: problems.AutoSynch,
		Elapsed:   elapsed,
		Stats:     m.Stats(),
		Ops:       got,
		Check:     (got - int64(totalOps)) + residue,
		Latency:   merged,
	}
}

// WakePolicy is the wake-policy comparison experiment: the same
// single-token storm measured under FIFO, LIFO, and priority wake
// policies across a doubling waiter axis. The figure plots p50 and p99
// client-observed wait latency per policy in microseconds; the notes
// carry each policy's starvation accounting (Starved, MaxWaitNs,
// PolicyWakes) at the top point — the spread between FIFO's bounded
// max-wait and the unfair policies' starved victims is the result.
func WakePolicy(cfg Config) Report {
	maxW := cfg.MaxThreads
	if maxW > 64 {
		maxW = 64 // past this the axis measures the scheduler, not the policy
	}
	if maxW < 8 {
		maxW = 8
	}
	xs := doubling(8, maxW)
	f := Figure{
		ID:     "wake-policy",
		Title:  fmt.Sprintf("wake policy storm: wait latency vs #waiters (%d classes, %d grants per point)", wakePolicyClasses, cfg.TotalOps),
		XLabel: "# waiters", YLabel: "wait latency (µs)", XS: xs,
	}
	series := make([]Series, 0, 2*len(wakePolicyArms))
	for _, arm := range wakePolicyArms {
		series = append(series,
			Series{Label: arm.name + "-p50"},
			Series{Label: arm.name + "-p99"})
	}
	lasts := make([]Measurement, len(wakePolicyArms))
	for _, waiters := range xs {
		waiters := waiters
		for ai, arm := range wakePolicyArms {
			arm := arm
			m := cfg.Protocol.Measure(func() problems.Result {
				return wakePolicyPoint(arm.pol, waiters, cfg.TotalOps)
			})
			p50 := float64(m.Latency.P50()) / 1e3
			p99 := float64(m.Latency.P99()) / 1e3
			if m.CheckFailed {
				p50, p99 = -1, -1 // sentinel: a grant was lost; must never happen
			}
			series[2*ai].Points = append(series[2*ai].Points, p50)
			series[2*ai+1].Points = append(series[2*ai+1].Points, p99)
			lasts[ai] = m
		}
	}
	f.Series = series
	for ai, arm := range wakePolicyArms {
		s := lasts[ai].Last.Stats
		f.Notes = append(f.Notes, fmt.Sprintf(
			"%s @ %d waiters: starved=%d max-wait=%v policy-wakes=%d (threshold %v)",
			arm.name, xs[len(xs)-1], s.Starved, time.Duration(s.MaxWaitNs),
			s.PolicyWakes, wakePolicyStarveAfter))
	}
	f.Notes = append(f.Notes,
		"expected shape: fifo serves in park order, so max-wait stays within a small factor of the mean; priority starves the low class and lifo the oldest parker (starved > 0, max-wait ~ point runtime).")
	rep := f.report()
	// The priority arm's top-point histogram carries the widest tail —
	// that is the spread the BENCH artifact should capture.
	rep.Latency = &lasts[len(lasts)-1].Latency
	return rep
}
