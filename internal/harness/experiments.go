package harness

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/problems"
	"repro/internal/stats"
)

// Config scales an experiment run. The paper's absolute runtimes (tens of
// seconds per point on 2009-era Xeons) are not the target — the shapes
// are — so TotalOps defaults to a size that finishes in seconds per point
// and can be raised for higher fidelity.
type Config struct {
	Protocol   Protocol
	TotalOps   int // operation budget per configuration point
	MaxThreads int // upper end of the doubling x-axis
}

// DefaultConfig is used by cmd/autosynch-bench without flags.
func DefaultConfig() Config {
	return Config{Protocol: Protocol{Trials: 5, Drop: 1}, TotalOps: 20000, MaxThreads: 256}
}

// Experiment is one reproducible unit: a figure or table of the paper.
type Experiment struct {
	ID    string
	Title string
	Run   func(Config) Report
}

// Experiments lists every experiment: the paper's figures and tables in
// paper order, the ablations, and one generic thread sweep per registered
// scenario (prob-<name>), so any workload added to problems.Registry is
// immediately reproducible from the CLI. IDs match the EXPERIMENTS.md
// index.
func Experiments() []Experiment {
	exps := []Experiment{
		{"fig8", "Bounded-buffer runtime vs. #producers+consumers (Fig. 8)", Fig8},
		{"fig9", "H2O runtime vs. #H-atom threads (Fig. 9)", Fig9},
		{"fig10", "Sleeping-barber runtime vs. #customers (Fig. 10)", Fig10},
		{"fig11", "Round-robin access runtime vs. #threads (Fig. 11)", Fig11},
		{"fig12", "Readers/writers runtime vs. #writers/#readers (Fig. 12)", Fig12},
		{"fig13", "Dining-philosophers runtime vs. #philosophers (Fig. 13)", Fig13},
		{"fig14", "Parameterized bounded-buffer runtime vs. #consumers (Fig. 14)", Fig14},
		{"fig15", "Parameterized bounded-buffer context switches (Fig. 15)", Fig15},
		{"table1", "CPU-usage breakdown, round-robin with 128 threads (Table 1)", Table1},
		{"abl-tags", "Ablation: relay cost by tag kind (equivalence/threshold/none)", AblationTagKinds},
		{"abl-inactive", "Ablation: inactive-list limit vs. registration churn", AblationInactiveList},
		{"abl-compile", "Ablation: string Await vs compiled AwaitPred wait-path overhead", AblationCompiledPredicates},
		{"scale-shards", "Scaling: sharded-kv runtime vs shard count at fixed goroutines", ScaleShards},
		{"sel-fanout", "Selective waiting: cost per delivered item vs fan-out (Select / reflect handles / goroutine-per-guard)", SelectFanout},
		{"watchd", "Watch service soak: wake-to-claim latency percentiles vs standing sessions", WatchdSoak},
		{"wake-policy", "Wake policies: wait-latency percentiles and starvation spread (FIFO/LIFO/priority)", WakePolicy},
	}
	return append(exps, ProblemExperiments()...)
}

// ProblemExperiments builds one runtime-sweep experiment per registered
// scenario, iterating problems.Registry instead of a hand-maintained
// list.
func ProblemExperiments() []Experiment {
	var exps []Experiment
	for _, spec := range problems.Specs() {
		spec := spec
		title := fmt.Sprintf("Scenario sweep: %s runtime vs. #threads", spec.Name)
		if spec.Figure != "" {
			title += fmt.Sprintf(" (cf. %s)", spec.Figure)
		}
		exps = append(exps, Experiment{
			ID:    "prob-" + spec.Name,
			Title: title,
			Run:   func(cfg Config) Report { return ProblemSweep(spec, cfg) },
		})
	}
	return exps
}

// ProblemSweep renders the generic figure for one scenario: mean runtime
// per mechanism over a doubling thread axis.
func ProblemSweep(spec problems.Spec, cfg Config) Report {
	xs := doubling(2, cfg.MaxThreads)
	series, lat := sweep(cfg.Protocol, spec.Runner, spec.Mechanisms(), xs, cfg.TotalOps, meanSeconds)
	f := Figure{
		ID: "prob-" + spec.Name, Title: spec.Name, XLabel: "# threads",
		YLabel: "runtime (seconds)", XS: xs,
		Series: series,
		Notes:  []string{"check: " + spec.CheckDesc},
	}
	return f.reportLatency(lat)
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// spec fetches a registered scenario; the figure generators draw their
// runners and mechanism lineups from the registry (the paper drops the
// baseline from Fig. 11–13 as off-scale and compares only explicit vs.
// AutoSynch in Fig. 14–15 — encoded in each scenario's Spec.Mechs).
func spec(name string) problems.Spec { return problems.MustLookup(name) }

// Fig8 reproduces the bounded-buffer series.
func Fig8(cfg Config) Report {
	s := spec("bounded-buffer")
	xs := doubling(2, cfg.MaxThreads)
	series, lat := sweep(cfg.Protocol, s.Runner, s.Mechanisms(), xs, cfg.TotalOps, meanSeconds)
	f := Figure{
		ID: "fig8", Title: "bounded-buffer problem", XLabel: "# producers/consumers",
		YLabel: "runtime (seconds)", XS: xs,
		Series: series,
		Notes: []string{
			"expected shape: baseline grows with thread count; explicit, autosynch-t and autosynch stay comparable (constant number of shared predicates).",
		},
	}
	return f.reportLatency(lat)
}

// Fig9 reproduces the H2O series.
func Fig9(cfg Config) Report {
	s := spec("h2o")
	xs := doubling(2, cfg.MaxThreads)
	series, lat := sweep(cfg.Protocol, s.Runner, s.Mechanisms(), xs, cfg.TotalOps, meanSeconds)
	f := Figure{
		ID: "fig9", Title: "H2O problem (one oxygen thread)", XLabel: "# H-atom threads",
		YLabel: "runtime (seconds)", XS: xs,
		Series: series,
		Notes: []string{
			"expected shape: baseline degrades sharply; the other three stay comparable.",
		},
	}
	return f.reportLatency(lat)
}

// Fig10 reproduces the sleeping-barber series.
func Fig10(cfg Config) Report {
	s := spec("sleeping-barber")
	xs := doubling(2, cfg.MaxThreads)
	series, lat := sweep(cfg.Protocol, s.Runner, s.Mechanisms(), xs, cfg.TotalOps, meanSeconds)
	f := Figure{
		ID: "fig10", Title: "sleeping barber problem", XLabel: "# customers",
		YLabel: "runtime (seconds)", XS: xs,
		Series: series,
		Notes: []string{
			"expected shape: all four comparable — the baseline's broadcasts rarely wake threads whose condition is false here (§6.4).",
		},
	}
	return f.reportLatency(lat)
}

// Fig11 reproduces the round-robin series.
func Fig11(cfg Config) Report {
	s := spec("round-robin")
	xs := doubling(2, cfg.MaxThreads)
	series, lat := sweep(cfg.Protocol, s.Runner, s.Mechanisms(), xs, cfg.TotalOps, meanSeconds)
	f := Figure{
		ID: "fig11", Title: "round-robin access pattern", XLabel: "# threads",
		YLabel: "runtime (seconds)", XS: xs,
		Series: series,
		Notes: []string{
			"expected shape: explicit steady; autosynch-t grows with thread count (linear predicate scan); autosynch within a small factor of explicit and steady.",
			"baseline omitted as in the paper (off scale).",
		},
	}
	return f.reportLatency(lat)
}

// Fig12 reproduces the readers/writers series. The x-axis doubles the
// writer count with five readers per writer (2/10 … 64/320).
func Fig12(cfg Config) Report {
	s := spec("readers-writers")
	maxW := cfg.MaxThreads / 4
	if maxW < 2 {
		maxW = 2
	}
	if maxW > 64 {
		maxW = 64
	}
	xs := doubling(2, maxW)
	series, lat := sweep(cfg.Protocol, s.Runner, s.Mechanisms(), xs, cfg.TotalOps, meanSeconds)
	f := Figure{
		ID: "fig12", Title: "readers/writers problem (ticket order)", XLabel: "# writers (readers = 5x)",
		YLabel: "runtime (seconds)", XS: xs,
		Series: series,
		Notes: []string{
			"expected shape: explicit steady; autosynch-t grows; autosynch approaches explicit as the thread count grows (tag maintenance amortizes).",
		},
	}
	return f.reportLatency(lat)
}

// Fig13 reproduces the dining-philosophers series.
func Fig13(cfg Config) Report {
	s := spec("dining-philosophers")
	xs := doubling(2, cfg.MaxThreads)
	series, lat := sweep(cfg.Protocol, s.Runner, s.Mechanisms(), xs, cfg.TotalOps, meanSeconds)
	f := Figure{
		ID: "fig13", Title: "dining philosophers problem", XLabel: "# philosophers",
		YLabel: "runtime (seconds)", XS: xs,
		Series: series,
		Notes: []string{
			"expected shape: explicit's edge stays small — each philosopher competes with two neighbours regardless of table size (§6.4).",
		},
	}
	return f.reportLatency(lat)
}

// Fig14 reproduces the parameterized bounded-buffer runtime series.
func Fig14(cfg Config) Report {
	s := spec("parameterized-buffer")
	xs := doubling(2, cfg.MaxThreads)
	series, lat := sweep(cfg.Protocol, s.Runner, s.Mechanisms(), xs, cfg.TotalOps, meanSeconds)
	f := Figure{
		ID: "fig14", Title: "parameterized bounded-buffer (signalAll required in explicit)", XLabel: "# consumers",
		YLabel: "runtime (seconds)", XS: xs,
		Series: series,
		Notes: []string{
			"expected shape: explicit degrades as consumers multiply (broadcast storms); autosynch stays flat and wins big at the right end (paper: 26.9x at 256).",
		},
	}
	return f.reportLatency(lat)
}

// Fig15 reproduces the context-switch counts for the same workload. The
// repo counts wake-ups (goroutine unpark→park round trips) as the
// context-switch proxy.
func Fig15(cfg Config) Report {
	s := spec("parameterized-buffer")
	xs := doubling(2, cfg.MaxThreads)
	series, lat := sweep(cfg.Protocol, s.Runner, s.Mechanisms(), xs, cfg.TotalOps,
		func(m Measurement) float64 { return float64(m.Last.Stats.ContextSwitches()) / 1000 })
	f := Figure{
		ID: "fig15", Title: "parameterized bounded-buffer context switches", XLabel: "# consumers",
		YLabel: "wake-ups (K)", XS: xs,
		Series: series,
		Notes: []string{
			"expected shape: explicit wake-ups grow steeply with consumers; autosynch stays near-flat (paper: ~2.7M vs ~5.4K at 256).",
		},
	}
	return f.reportLatency(lat)
}

// Table1 reproduces the CPU-usage breakdown for the round-robin pattern
// with 128 threads: time in await, lock acquisition, relaySignal, and tag
// management, per mechanism.
func Table1(cfg Config) Report {
	const threads = 128
	mechs := []problems.Mechanism{problems.Explicit, problems.AutoSynchT, problems.AutoSynch}
	var sb strings.Builder
	fmt.Fprintf(&sb, "table1: CPU usage for the round-robin access pattern (%d threads, %d ops)\n", threads, cfg.TotalOps)
	fmt.Fprintf(&sb, "%-12s %14s %14s %14s %14s %14s\n", "mechanism", "await", "lock", "relaySignal", "tagMgr", "relay %")
	for _, mech := range mechs {
		r := problems.RunRoundRobinProfiled(mech, threads, cfg.TotalOps)
		s := r.Stats
		total := s.AwaitNs + s.LockNs + s.RelayNs + s.TagMgmtNs
		relayPct := 0.0
		if total > 0 {
			relayPct = 100 * float64(s.RelayNs) / float64(total)
		}
		fmt.Fprintf(&sb, "%-12s %14s %14s %14s %14s %13.2f%%\n",
			mech, time.Duration(s.AwaitNs), time.Duration(s.LockNs),
			time.Duration(s.RelayNs), time.Duration(s.TagMgmtNs), relayPct)
	}
	sb.WriteString("expected shape: tagging cuts relaySignal time by an order of magnitude or more vs. autosynch-t, at a small tagMgr cost (paper: −95%).\n")
	return textReport("table1", sb.String())
}

// AblationTagKinds measures the relay search cost per tag kind: waiters
// with equivalence-taggable, threshold-taggable, and untaggable (None)
// predicates under identical traffic.
func AblationTagKinds(cfg Config) Report {
	type shape struct {
		name string
		pred string // predicate template over shared x and local k
	}
	shapes := []shape{
		{"equivalence", "x == k"},
		{"threshold", "x >= k"},
		{"none", "x * x >= k"}, // nonlinear in the shared variable: untaggable
	}
	waiters := 64
	if cfg.MaxThreads < waiters {
		waiters = cfg.MaxThreads
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "abl-tags: relay cost by predicate shape (%d waiters, %d ops)\n", waiters, cfg.TotalOps)
	fmt.Fprintf(&sb, "%-14s %12s %16s %14s %12s\n", "shape", "runtime", "predicateEvals", "tagChecks", "futile")
	for _, sh := range shapes {
		m := cfg.Protocol.Measure(func() problems.Result {
			return runTagShape(sh.pred, waiters, cfg.TotalOps)
		})
		s := m.Last.Stats
		fmt.Fprintf(&sb, "%-14s %12s %16d %14d %12d\n",
			sh.name, stats.FormatSeconds(m.MeanSeconds), s.PredicateEvals, s.TagChecks, s.FutileWakeups)
	}
	sb.WriteString("expected shape: equivalence ≤ threshold < none in predicate evaluations per signal.\n")
	return textReport("abl-tags", sb.String())
}

// runTagShape parks `waiters` unsatisfiable waiters of one predicate
// shape, then drives totalOps empty monitor operations: every exit runs
// the relay search over the parked predicates, isolating the pruning cost
// of the tag kind. A done flag in the predicate releases everyone at the
// end.
func runTagShape(pred string, waiters, totalOps int) problems.Result {
	m := core.New()
	m.NewInt("x", 0) // stays 0: keys 1..waiters never satisfied
	done := m.NewBool("done", false)
	shaped := m.MustCompile(pred + " || done")
	finished := make(chan struct{}, waiters)
	for w := 1; w <= waiters; w++ {
		go func(k int64) {
			m.Enter()
			if err := m.AwaitPred(shaped, core.BindInt("k", k)); err != nil {
				panic(err)
			}
			m.Exit()
			finished <- struct{}{}
		}(int64(w))
	}
	for m.Stats().Awaits < uint64(waiters) {
		time.Sleep(time.Millisecond)
	}
	m.ResetStats()
	start := time.Now()
	for i := 0; i < totalOps; i++ {
		m.Do(func() {})
	}
	elapsed := time.Since(start)
	st := m.Stats()
	m.Do(func() { done.Set(true) })
	for w := 0; w < waiters; w++ {
		<-finished
	}
	return problems.Result{Mechanism: problems.AutoSynch, Elapsed: elapsed,
		Stats: st, Ops: int64(totalOps)}
}

// AblationInactiveList sweeps the inactive-list limit on the
// readers/writers workload, whose ticket predicates are never reused —
// maximal churn — versus the parameterized buffer, whose batch predicates
// recur.
func AblationInactiveList(cfg Config) Report {
	limits := []int{0, 16, 128, 1024}
	var sb strings.Builder
	fmt.Fprintf(&sb, "abl-inactive: predicate cache effectiveness (parameterized buffer, %d consumers, %d ops)\n",
		16, cfg.TotalOps)
	fmt.Fprintf(&sb, "%-10s %12s %14s %10s %10s\n", "limit", "runtime", "registrations", "reuses", "evictions")
	for _, lim := range limits {
		m := cfg.Protocol.Measure(func() problems.Result {
			return runParamBBLimit(lim, 16, cfg.TotalOps)
		})
		s := m.Last.Stats
		fmt.Fprintf(&sb, "%-10d %12s %14d %10d %10d\n",
			lim, stats.FormatSeconds(m.MeanSeconds), s.Registrations, s.Reuses, s.Evictions)
	}
	sb.WriteString("expected shape: reuses rise and registrations collapse once the limit covers the key space (256 distinct batch predicates).\n")
	return textReport("abl-inactive", sb.String())
}

// runParamBBLimit is the parameterized-buffer auto workload with a custom
// inactive-list limit.
func runParamBBLimit(limit, consumers, totalOps int) problems.Result {
	m := core.New(core.WithInactiveLimit(limit))
	count := m.NewInt("count", 0)
	m.NewInt("cap", problems.ParamBufferCap)
	stop := m.NewBool("stop", false)
	hasRoom := m.MustCompile("count + k <= cap || stop")
	hasItems := m.MustCompile("count >= num")

	takes := totalOps / consumers
	if takes < 1 {
		takes = 1
	}
	start := time.Now()
	prodDone := make(chan struct{})
	go func() {
		defer close(prodDone)
		rng := uint64(99)
		for {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			k := int64(rng%problems.MaxBatch) + 1
			m.Enter()
			if err := m.AwaitPred(hasRoom, core.BindInt("k", k)); err != nil {
				panic(err)
			}
			if stop.Get() {
				m.Exit()
				return
			}
			count.Add(k)
			m.Exit()
		}
	}()
	var doneCh = make(chan struct{}, consumers)
	for c := 0; c < consumers; c++ {
		go func(seed uint64) {
			rng := seed
			for i := 0; i < takes; i++ {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				num := int64(rng%problems.MaxBatch) + 1
				m.Enter()
				if err := m.AwaitPred(hasItems, core.BindInt("num", num)); err != nil {
					panic(err)
				}
				count.Add(-num)
				m.Exit()
			}
			doneCh <- struct{}{}
		}(uint64(c) + 7)
	}
	for c := 0; c < consumers; c++ {
		<-doneCh
	}
	m.Do(func() { stop.Set(true) })
	<-prodDone
	return problems.Result{Mechanism: problems.AutoSynch, Elapsed: time.Since(start),
		Stats: m.Stats(), Ops: int64(consumers * takes)}
}

// AblationCompiledPredicates isolates the per-wait overhead of the
// predicate API forms. The predicate is always true, so no wait ever
// parks and each operation pays exactly the bind-and-check path: the
// string form adds one predicate-cache lookup (hashing the source text)
// per wait, the compiled form skips it, the codegen form swaps the
// closure-tree evaluator for the minisynchc-generated monomorphic one
// (registered by internal/problems' zz_generated_preds.go, which this
// package links), and the closure form is the tag-opaque reference
// point. The interpreter arms opt out of generated dispatch with
// WithoutGenerated — the registration is process-global, so without the
// opt-out they would silently measure the generated path too. The run is
// unprofiled: the Table-1 phase timers cost more per wait than the whole
// evaluator and would drown the arms' differences (the benchmark's
// -profiled variants cover that view).
func AblationCompiledPredicates(cfg Config) Report {
	const pred = "count + k <= cap || stop"
	type mode struct {
		name string
		opts []core.Option
		wait func(m *core.Monitor, p *core.Predicate, k int64) error
	}
	interpOnly := []core.Option{core.WithoutGenerated()}
	awaitString := func(m *core.Monitor, _ *core.Predicate, k int64) error {
		return m.Await(pred, core.BindInt("k", k))
	}
	awaitPred := func(m *core.Monitor, p *core.Predicate, k int64) error {
		return m.AwaitPred(p, core.BindInt("k", k))
	}
	modes := []mode{
		{"string", interpOnly, awaitString},
		{"compiled", interpOnly, awaitPred},
		{"codegen", nil, awaitPred},
		{"closure", interpOnly, func(m *core.Monitor, _ *core.Predicate, k int64) error {
			m.AwaitFunc(func() bool { return true })
			return nil
		}},
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "abl-compile: per-wait API overhead on an always-true predicate (%d ops)\n", cfg.TotalOps)
	fmt.Fprintf(&sb, "%-10s %12s %12s %10s %5s\n", "mode", "runtime", "ns/op", "fastpath", "gen")
	for _, md := range modes {
		meas := cfg.Protocol.Measure(func() problems.Result {
			m := core.New(md.opts...)
			m.NewInt("count", 1)
			m.NewInt("cap", 1<<40)
			m.NewBool("stop", false)
			p := m.MustCompile(pred)
			if md.name == "codegen" && !p.Generated() {
				panic("abl-compile: codegen arm found no registered evaluator (is internal/problems linked?)")
			}
			start := time.Now()
			for i := 0; i < cfg.TotalOps; i++ {
				m.Enter()
				if err := md.wait(m, p, int64(i&1023)); err != nil {
					panic(err)
				}
				m.Exit()
			}
			elapsed := time.Since(start)
			return problems.Result{Mechanism: problems.AutoSynch, Elapsed: elapsed,
				Stats: m.Stats(), Ops: int64(cfg.TotalOps)}
		})
		nsPerOp := meas.MeanSeconds * 1e9 / float64(cfg.TotalOps)
		fmt.Fprintf(&sb, "%-10s %12s %12.1f %10d %5d\n",
			md.name, stats.FormatSeconds(meas.MeanSeconds), nsPerOp,
			meas.Last.Stats.FastPath, meas.Last.Stats.GenPreds)
	}
	sb.WriteString("expected shape: codegen < compiled < string (compiled-vs-string is the per-wait predicate-cache lookup; codegen-vs-compiled is the closure tree); see BenchmarkAwaitStringVsCompiled for the benchstat view.\n")
	return textReport("abl-compile", sb.String())
}

// ScaleShards sweeps the partition count of the sharded-kv scenario at a
// fixed goroutine count (the top of the configured thread axis): the
// beyond-the-paper scaling experiment. A single monitor pays the relay
// search over every resident per-key predicate group on every exit plus
// all the lock traffic; each doubling of the shard count divides both, so
// runtime falls until the partitions outnumber the independent keys in
// flight. The 1-shard point is the single-core.Monitor reference the
// speedups are quoted against.
func ScaleShards(cfg Config) Report {
	threads := cfg.MaxThreads
	if threads < 8 {
		threads = 8
	}
	xs := []int{1, 2, 4, 8, 16}
	f := Figure{
		ID:     "scale-shards",
		Title:  fmt.Sprintf("sharded-kv: shard-count sweep at %d goroutines", threads),
		XLabel: "# shards", YLabel: "runtime (seconds)", XS: xs,
	}
	var lat stats.Histogram
	for _, mech := range []problems.Mechanism{problems.AutoSynch, problems.AutoSynchT} {
		mech := mech
		ser := Series{Label: mech.String()}
		for _, shards := range xs {
			shards := shards
			m := cfg.Protocol.Measure(func() problems.Result {
				return problems.RunShardedKVShards(mech, threads, cfg.TotalOps, shards)
			})
			val := m.MeanSeconds
			if m.CheckFailed {
				val = -1 // sentinel: conservation violated; must never happen
			}
			ser.Points = append(ser.Points, val)
			lat.Merge(&m.Latency)
		}
		f.Series = append(f.Series, ser)
	}
	if as := f.Series[0].Points; len(as) == len(xs) && as[0] > 0 && as[len(as)-1] > 0 {
		f.Notes = append(f.Notes, fmt.Sprintf(
			"autosynch speedup at %d shards vs the single monitor: %.2fx", xs[len(xs)-1], as[0]/as[len(as)-1]))
	}
	f.Notes = append(f.Notes,
		"expected shape: runtime falls as shards divide the lock traffic and the per-exit relay search; BenchmarkShardScaling is the go-test view.")
	return f.reportLatency(latPtr(lat))
}

// SelectFanout prices the three ways one goroutine can wait on N
// predicates across N distinct monitors, swept over the fan-out: the
// guarded-region Select (arms, parks once on a shared channel, claims,
// cancels the losers — the leak-free API unit), the hand-assembled
// persistent-handle loop over reflect.Select that the dispatcher
// scenario used before guards existed, and a parked goroutine per
// monitor. Each operation deposits one token on a rotating monitor and
// waits for its consumption, so the measured quantity is the end-to-end
// multiplexing cost per delivered item. BenchmarkSelect is the go-test
// view at fan-out 16.
func SelectFanout(cfg Config) Report {
	xs := []int{2, 8, 32, 128}
	ops := cfg.TotalOps
	f := Figure{
		ID:     "sel-fanout",
		Title:  "selective waiting: cost per delivered item vs fan-out",
		XLabel: "# guards (one monitor each)", YLabel: "ns/op", XS: xs,
	}
	var lat stats.Histogram
	for _, mode := range []string{"select-guards", "reflect-handles", "goroutine-per-guard"} {
		mode := mode
		ser := Series{Label: mode}
		for _, fan := range xs {
			fan := fan
			m := cfg.Protocol.Measure(func() problems.Result { return RunSelectFan(mode, fan, ops) })
			ser.Points = append(ser.Points, m.MeanSeconds*1e9/float64(ops))
			lat.Merge(&m.Latency)
		}
		f.Series = append(f.Series, ser)
	}
	f.Notes = append(f.Notes,
		"select-guards polls before arming, so a ready guard costs ~one Try; only a Select that actually parks pays the N arms and N-1 cancels of the leak-free unit;",
		"reflect-handles keeps N handles armed (hand-rolled, leak-prone, and O(N) inside reflect.Select on every delivery);",
		"goroutine-per-guard parks a goroutine per monitor — flat in N but a stack per waiter, see BenchmarkMultiplexedWaiters for where it loses.")
	return f.reportLatency(latPtr(lat))
}

// RunSelectFan is one sel-fanout point: fan monitors, totalOps rounds of
// deposit-then-consume through the given multiplexing mode
// ("select-guards", "reflect-handles", or "goroutine-per-guard").
// Check counts waiters still registered afterwards (must be 0).
// Exported so BenchmarkSelect drives the exact same harness — one copy
// of the re-arm and teardown protocols, as BenchmarkShardScaling does
// with problems.RunShardedKVShards.
func RunSelectFan(mode string, fan, totalOps int) problems.Result {
	type buf struct {
		m        *core.Monitor
		x        *core.IntCell
		stop     *core.BoolCell
		notEmpty *core.Predicate
	}
	bufs := make([]*buf, fan)
	for i := range bufs {
		m := core.New()
		bufs[i] = &buf{
			m:        m,
			x:        m.NewInt("x", 0),
			stop:     m.NewBool("stop", false),
			notEmpty: m.MustCompile("x >= 1"),
		}
	}
	produce := func(i int) {
		bf := bufs[i%fan]
		bf.m.Do(func() { bf.x.Add(1) })
	}
	var lat *stats.Histogram // bound here: the closure below shadows the package name
	stats := func(elapsed time.Duration) problems.Result {
		var agg core.Stats
		var leaked int64
		for _, bf := range bufs {
			agg = agg.Add(bf.m.Stats())
			leaked += int64(bf.m.Waiting())
			if h := bf.m.WaitLatency(); h != nil {
				if lat == nil {
					lat = h
				} else {
					lat.Merge(h)
				}
			}
		}
		return problems.Result{Mechanism: problems.AutoSynch, Elapsed: elapsed,
			Stats: agg, Ops: int64(totalOps), Check: leaked, Latency: lat}
	}

	switch mode {
	case "select-guards":
		cases := make([]core.Case, fan)
		for i, bf := range bufs {
			bf := bf
			cases[i] = bf.m.When(bf.notEmpty).Then(func() { bf.x.Add(-1) })
		}
		start := time.Now()
		for i := 0; i < totalOps; i++ {
			produce(i)
			if _, err := core.Select(cases...); err != nil {
				panic(err)
			}
		}
		return stats(time.Since(start))

	case "reflect-handles":
		handles := make([]*core.Wait, fan)
		cases := make([]reflect.SelectCase, fan)
		for i, bf := range bufs {
			handles[i] = bf.notEmpty.Arm()
			cases[i] = reflect.SelectCase{Dir: reflect.SelectRecv, Chan: reflect.ValueOf(handles[i].Ready())}
		}
		start := time.Now()
		for i := 0; i < totalOps; i++ {
			produce(i)
			for {
				idx, _, _ := reflect.Select(cases)
				if err := handles[idx].Claim(); err != nil {
					if err == core.ErrNotReady {
						cases[idx].Chan = reflect.ValueOf(handles[idx].Ready())
						continue
					}
					panic(err)
				}
				bufs[idx].x.Add(-1)
				bufs[idx].m.Exit()
				handles[idx] = bufs[idx].notEmpty.Arm()
				cases[idx].Chan = reflect.ValueOf(handles[idx].Ready())
				break
			}
		}
		elapsed := time.Since(start)
		for _, h := range handles {
			h.Cancel()
		}
		return stats(elapsed)

	case "goroutine-per-guard":
		ack := make(chan struct{}, fan)
		var wg sync.WaitGroup
		for _, bf := range bufs {
			wg.Add(1)
			g := bf.m.When(bf.m.MustCompile("x >= 1 || stop"))
			go func(bf *buf, g *core.Guard) {
				defer wg.Done()
				for {
					quit := false
					if err := g.Do(func() {
						if bf.stop.Get() {
							quit = true
							return
						}
						bf.x.Add(-1)
					}); err != nil {
						panic(err)
					}
					if quit {
						return
					}
					ack <- struct{}{}
				}
			}(bf, g)
		}
		start := time.Now()
		for i := 0; i < totalOps; i++ {
			produce(i)
			<-ack
		}
		elapsed := time.Since(start)
		for _, bf := range bufs {
			bf.m.Do(func() { bf.stop.Set(true) })
		}
		wg.Wait()
		return stats(elapsed)
	}
	panic("unknown sel-fanout mode " + mode)
}

// IDs returns all experiment IDs in paper order, for CLI listings.
func IDs() []string {
	var ids []string
	for _, e := range Experiments() {
		ids = append(ids, e.ID)
	}
	return ids
}
