// Package harness runs the paper's evaluation protocol (§6.1) and renders
// figures and tables as text: every configuration is executed Trials
// times, the best and worst Drop results are removed, and the mean of the
// rest is reported. Each figure of the paper has a generator here that
// produces the same series the paper plots.
package harness

import (
	"fmt"
	"strings"

	"repro/internal/problems"
	"repro/internal/stats"
)

// Protocol is the repetition scheme for one measurement.
type Protocol struct {
	Trials int // runs per configuration
	Drop   int // best/worst results discarded on each side
}

// Paper is the protocol of §6.1: 25 runs, best and worst removed.
var Paper = Protocol{Trials: 25, Drop: 1}

// Quick is a fast protocol for smoke runs and CI.
var Quick = Protocol{Trials: 3, Drop: 0}

// Measurement is the aggregated outcome of repeated runs.
type Measurement struct {
	MeanSeconds float64
	MinSeconds  float64
	MaxSeconds  float64
	Last        problems.Result // per-run stats from the final trial
	CheckFailed bool            // any trial finished with Check != 0

	// Latency merges the wake-to-claim histograms of every trial that
	// recorded one (merging is associative, so trial order is immaterial);
	// empty when the workload reports throughput only.
	Latency stats.Histogram
}

// Measure runs the workload Trials times and aggregates.
func (p Protocol) Measure(run func() problems.Result) Measurement {
	trials := p.Trials
	if trials < 1 {
		trials = 1
	}
	secs := make([]float64, 0, trials)
	var m Measurement
	for i := 0; i < trials; i++ {
		r := run()
		secs = append(secs, r.Elapsed.Seconds())
		m.Last = r
		if r.Check != 0 {
			m.CheckFailed = true
		}
		m.Latency.Merge(r.Latency)
	}
	m.MeanSeconds = stats.TrimmedMean(secs, p.Drop)
	m.MinSeconds = stats.Min(secs)
	m.MaxSeconds = stats.Max(secs)
	return m
}

// Series is one curve of a figure.
type Series struct {
	Label  string    `json:"label"`
	Points []float64 `json:"points"` // aligned with the figure's XS
}

// Figure is a reproduction of one of the paper's plots: Render draws it
// as an aligned text table, and the struct itself marshals to JSON for
// machine consumption (cmd/autosynch-bench -json).
type Figure struct {
	ID     string   `json:"id"` // "fig8", …
	Title  string   `json:"title"`
	XLabel string   `json:"xlabel"`
	YLabel string   `json:"ylabel"`
	XS     []int    `json:"xs"`
	Series []Series `json:"series"`
	Notes  []string `json:"notes,omitempty"`
}

// Report is the outcome of one experiment run: the rendered text that the
// CLI prints plus, for figure-shaped experiments, the structured series
// points. Table- and ablation-shaped experiments carry text only.
type Report struct {
	ID     string  `json:"id"`
	Text   string  `json:"text"`
	Figure *Figure `json:"figure,omitempty"`

	// Latency carries the experiment's wake-to-claim histogram when the
	// workload measures one (the watch-service soak), so BENCH artifacts
	// capture tail percentiles alongside the throughput series.
	Latency *stats.Histogram `json:"latency,omitempty"`
}

// report wraps a figure into its Report.
func (f Figure) report() Report {
	return Report{ID: f.ID, Text: f.Render(), Figure: &f}
}

// reportLatency wraps a figure into its Report with the sweep's merged
// wake-to-claim histogram attached (nil is fine: the JSON field is
// omitted).
func (f Figure) reportLatency(lat *stats.Histogram) Report {
	r := f.report()
	r.Latency = lat
	return r
}

// textReport is a Report with no structured figure.
func textReport(id, text string) Report {
	return Report{ID: id, Text: text}
}

// Render produces an aligned text table of the figure, one row per x.
func (f *Figure) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %s\n", f.ID, f.Title)
	fmt.Fprintf(&sb, "y = %s\n", f.YLabel)

	w := 14
	fmt.Fprintf(&sb, "%*s", len(f.XLabel)+2, f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&sb, "%*s", w, s.Label)
	}
	sb.WriteByte('\n')
	for i, x := range f.XS {
		fmt.Fprintf(&sb, "%*d", len(f.XLabel)+2, x)
		for _, s := range f.Series {
			if i < len(s.Points) {
				fmt.Fprintf(&sb, "%*s", w, formatPoint(f.YLabel, s.Points[i]))
			} else {
				fmt.Fprintf(&sb, "%*s", w, "-")
			}
		}
		sb.WriteByte('\n')
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

func formatPoint(ylabel string, v float64) string {
	if strings.Contains(ylabel, "seconds") {
		return stats.FormatSeconds(v)
	}
	if v >= 1000 {
		return fmt.Sprintf("%.4g", v)
	}
	return fmt.Sprintf("%.4g", v)
}

// doubling returns 2, 4, 8, … up to max.
func doubling(from, max int) []int {
	var xs []int
	for x := from; x <= max; x *= 2 {
		xs = append(xs, x)
	}
	return xs
}

// sweep fills one series per mechanism over xs and merges every trial's
// wake-to-claim histogram into one sweep-wide latency distribution (nil
// when no run recorded latency), so figure reports carry tail percentiles
// alongside the runtime series.
func sweep(p Protocol, runner problems.Runner, mechs []problems.Mechanism, xs []int, totalOps int,
	y func(Measurement) float64) ([]Series, *stats.Histogram) {
	series := make([]Series, len(mechs))
	var lat stats.Histogram
	for i, mech := range mechs {
		series[i].Label = mech.String()
		for _, x := range xs {
			mech, x := mech, x
			m := p.Measure(func() problems.Result { return runner(mech, x, totalOps) })
			val := y(m)
			if m.CheckFailed {
				val = -1 // sentinel: conservation violated; must never happen
			}
			series[i].Points = append(series[i].Points, val)
			lat.Merge(&m.Latency)
		}
	}
	return series, latPtr(lat)
}

// latPtr boxes a merged histogram for Report.Latency: nil when empty, so
// JSON artifacts omit the field for latency-free workloads.
func latPtr(lat stats.Histogram) *stats.Histogram {
	if lat.Count() == 0 {
		return nil
	}
	return &lat
}

func meanSeconds(m Measurement) float64 { return m.MeanSeconds }
