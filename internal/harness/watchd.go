package harness

import (
	"fmt"
	"time"

	"repro/internal/problems"
	"repro/internal/watchd"
)

// watchdPointDuration is the per-point soak interval of the experiment
// sweep: long enough for the churn and publish generators to produce
// thousands of deliveries per point, short enough that the doubling axis
// finishes in seconds. cmd/watchd runs arbitrary durations directly.
const watchdPointDuration = 400 * time.Millisecond

// watchdPoint runs one soak and returns both views: the problems.Result
// the measurement protocol consumes (drain checks folded into Check, the
// merged histogram in Latency) and the raw soak result for the
// daemon-level counters the figure notes quote.
func watchdPoint(sessions int, duration time.Duration) (problems.Result, watchd.SoakResult) {
	// Key space scales with the population (as in the watch-service
	// scenario) so publishes land on watched keys at every point; the
	// daemon default of 4096 keys would leave small populations starved
	// of deliveries.
	keys := sessions / 4
	if keys < 64 {
		keys = 64
	}
	res, err := watchd.Soak(watchd.SoakConfig{
		Sessions: sessions,
		Duration: duration,
		Daemon: watchd.Config{
			Keys: keys,
			// Eviction pressure: MaxIdle below the standing population
			// keeps the LRU evictor working for the whole interval.
			MaxIdle: sessions - sessions/8,
		},
	})
	check := int64(res.LeakedGoroutines) + int64(res.ResidualWaiters)
	if err != nil && check == 0 {
		check = 1 // population collapse or drain failure without a leak count
	}
	hist := res.Stats.WakeToClaim
	return problems.Result{
		Mechanism: problems.AutoSynch,
		Elapsed:   duration,
		Stats:     res.Stats.Monitor,
		Ops:       int64(res.Stats.Delivered) + int64(res.Published),
		Check:     check,
		Latency:   &hist,
	}, res
}

// RunWatchdSoak is watchdPoint for external consumers (the cmd-level
// smoke tests): one soak of the given population under the experiment's
// standard eviction and churn configuration.
func RunWatchdSoak(sessions int, duration time.Duration) problems.Result {
	r, _ := watchdPoint(sessions, duration)
	return r
}

// WatchdSoak is the watch-service soak experiment: wake-to-claim latency
// percentiles over a doubling standing-session axis, each point a full
// soak with client churn, publish traffic, admission control, and LRU
// eviction pressure, drained leak-free between points. The figure plots
// p50/p99/p999 in microseconds; the report carries the largest point's
// merged histogram so the BENCH artifact captures the full tail.
func WatchdSoak(cfg Config) Report {
	from := cfg.MaxThreads
	if from < 32 {
		from = 32
	}
	xs := doubling(from, 16*from)
	f := Figure{
		ID:     "watchd",
		Title:  fmt.Sprintf("watchd soak: wake-to-claim latency vs standing sessions (%v per point)", watchdPointDuration),
		XLabel: "# sessions", YLabel: "wake-to-claim (µs)", XS: xs,
	}
	quantiles := []struct {
		label string
		f     func(Measurement) float64
	}{
		{"p50", func(m Measurement) float64 { return float64(m.Latency.P50()) / 1e3 }},
		{"p99", func(m Measurement) float64 { return float64(m.Latency.P99()) / 1e3 }},
		{"p999", func(m Measurement) float64 { return float64(m.Latency.P999()) / 1e3 }},
	}
	series := make([]Series, len(quantiles))
	for i, q := range quantiles {
		series[i].Label = q.label
	}
	var (
		last       Measurement
		lastSoak   watchd.SoakResult
		deliveries uint64
	)
	for _, sessions := range xs {
		sessions := sessions
		m := cfg.Protocol.Measure(func() problems.Result {
			r, sres := watchdPoint(sessions, watchdPointDuration)
			lastSoak = sres
			return r
		})
		for i, q := range quantiles {
			val := q.f(m)
			if m.CheckFailed {
				val = -1 // sentinel: the soak leaked; must never happen
			}
			series[i].Points = append(series[i].Points, val)
		}
		last = m
		deliveries += m.Latency.Count()
	}
	f.Series = series
	f.Notes = append(f.Notes,
		fmt.Sprintf("deliveries measured across all points: %d", deliveries),
		fmt.Sprintf("top point, final trial: sustained %d–%d of %d sessions, %d churned, %d evicted, %d rejected",
			lastSoak.SustainedMin, lastSoak.SustainedMax, lastSoak.Sessions,
			lastSoak.Churned, lastSoak.Stats.Evicted, lastSoak.Stats.Rejected),
		"every point drains to zero sessions, zombies, and registered waiters before the next starts; -1 marks a leaked point.",
		"expected shape: p50 stays flat in the session count (per-key shard relay, dispatcher fan-in); the tail grows with eviction and churn pressure.")
	rep := f.report()
	rep.Latency = &last.Latency
	return rep
}
