package harness

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/policy"
)

// TestWakePolicyTraceAccountsPolicyWakes is the flight-recorder
// acceptance check: a traced wake-policy storm must produce a ring whose
// reconstructed wake chains account for every policy-picked wake the
// monitor's own counters saw. The recorder is process-global, so this
// test must not run in parallel with tests that build monitors.
func TestWakePolicyTraceAccountsPolicyWakes(t *testing.T) {
	if testing.Short() {
		t.Skip("storm points are not short")
	}
	rec := obs.Start(1 << 17)
	defer obs.Stop()
	res := wakePolicyPoint(policy.FIFO, 16, 4000)
	obs.Stop()

	if res.Check != 0 {
		t.Fatalf("storm lost grants: check = %d", res.Check)
	}
	// The accounting below is exact only if the ring kept everything:
	// no slot-contention drops and no wrap-around overwrites.
	if d := rec.Drops(); d != 0 {
		t.Fatalf("ring dropped %d events; size the ring to the storm", d)
	}
	for _, r := range rec.Rings() {
		if r.Writes() > uint64(r.Cap()) {
			t.Fatalf("ring %q wrapped (%d writes into %d slots); size the ring to the storm",
				r.Label(), r.Writes(), r.Cap())
		}
	}

	events := rec.Events()
	if len(events) == 0 {
		t.Fatal("traced storm recorded no events")
	}
	an := obs.Analyze(events, rec.Drops())
	if res.Stats.PolicyWakes == 0 {
		t.Fatal("storm recorded no policy-picked wakes")
	}
	if uint64(an.PolicyWakes) != res.Stats.PolicyWakes {
		t.Errorf("trace accounts %d policy wakes, monitor counted %d",
			an.PolicyWakes, res.Stats.PolicyWakes)
	}
	if an.Chains == 0 || an.Claimed == 0 {
		t.Errorf("analysis reconstructed no closed chains: %+v", an)
	}
	if an.Signals < an.PolicyWakes {
		t.Errorf("fewer signals (%d) than policy wakes (%d)", an.Signals, an.PolicyWakes)
	}
}
