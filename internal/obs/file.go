package obs

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Trace file format "OBS1": a 24-byte header (magic, version, recorder
// drop count, event count) followed by count fixed 32-byte little-endian
// event records. Fixed-size records keep dumping allocation-free per
// event and make the file seekable by index; the drop count travels with
// the events so analysis knows when the window is lossy.

var fileMagic = [4]byte{'O', 'B', 'S', '1'}

const fileVersion = 1

// WriteFile dumps an event stream (plus the recorder's drop count for
// the same window) to path, overwriting any existing file.
func WriteFile(path string, events []Event, drops uint64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if err := writeTrace(w, events, drops); err != nil {
		f.Close()
		return fmt.Errorf("obs: writing %s: %w", path, err)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("obs: writing %s: %w", path, err)
	}
	return f.Close()
}

// ReadFile loads a trace written by WriteFile, returning the events and
// the recorded drop count.
func ReadFile(path string) ([]Event, uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	evs, drops, err := readTrace(bufio.NewReader(f))
	if err != nil {
		return nil, 0, fmt.Errorf("obs: reading %s: %w", path, err)
	}
	return evs, drops, nil
}

func writeTrace(w io.Writer, events []Event, drops uint64) error {
	var hdr [24]byte
	copy(hdr[0:4], fileMagic[:])
	binary.LittleEndian.PutUint32(hdr[4:8], fileVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], drops)
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(len(events)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	var rec [32]byte
	for i := range events {
		marshalEvent(&rec, &events[i])
		if _, err := w.Write(rec[:]); err != nil {
			return err
		}
	}
	return nil
}

func readTrace(r io.Reader) ([]Event, uint64, error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, 0, fmt.Errorf("header: %w", err)
	}
	if [4]byte(hdr[0:4]) != fileMagic {
		return nil, 0, fmt.Errorf("bad magic %q", hdr[0:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != fileVersion {
		return nil, 0, fmt.Errorf("unsupported version %d", v)
	}
	drops := binary.LittleEndian.Uint64(hdr[8:16])
	count := binary.LittleEndian.Uint64(hdr[16:24])
	const maxEvents = 1 << 28 // 8 GiB of records; reject corrupt headers
	if count > maxEvents {
		return nil, 0, fmt.Errorf("implausible event count %d", count)
	}
	evs := make([]Event, count)
	var rec [32]byte
	for i := range evs {
		if _, err := io.ReadFull(r, rec[:]); err != nil {
			return nil, 0, fmt.Errorf("event %d of %d: %w", i, count, err)
		}
		unmarshalEvent(&evs[i], &rec)
		if !evs[i].Kind.Valid() {
			return nil, 0, fmt.Errorf("event %d: invalid kind %d", i, uint8(evs[i].Kind))
		}
	}
	return evs, drops, nil
}

func marshalEvent(rec *[32]byte, ev *Event) {
	binary.LittleEndian.PutUint64(rec[0:8], uint64(ev.TS))
	binary.LittleEndian.PutUint64(rec[8:16], ev.Seq)
	binary.LittleEndian.PutUint64(rec[16:24], uint64(ev.Arg))
	binary.LittleEndian.PutUint32(rec[24:28], ev.Mon)
	rec[28] = byte(ev.Kind)
	rec[29], rec[30], rec[31] = 0, 0, 0
}

func unmarshalEvent(ev *Event, rec *[32]byte) {
	ev.TS = int64(binary.LittleEndian.Uint64(rec[0:8]))
	ev.Seq = binary.LittleEndian.Uint64(rec[8:16])
	ev.Arg = int64(binary.LittleEndian.Uint64(rec[16:24]))
	ev.Mon = binary.LittleEndian.Uint32(rec[24:28])
	ev.Kind = Kind(rec[28])
}
