package obs

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// ev builds a test event; ts doubles as insertion order.
func ev(ts int64, kind Kind, mon uint32, seq uint64, arg int64) Event {
	return Event{TS: ts, Kind: kind, Mon: mon, Seq: seq, Arg: arg}
}

func TestChainsSingleSignal(t *testing.T) {
	chains := Chains([]Event{
		ev(1, KSignal, 0, 10, 0),
		ev(2, KClaim, 0, 10, 0),
	})
	if len(chains) != 1 {
		t.Fatalf("chains = %d, want 1", len(chains))
	}
	c := chains[0]
	if c.Len() != 1 || c.Hops() != 0 || !c.Claimed || c.Cancelled || c.Expired {
		t.Fatalf("chain = %+v", c)
	}
	if c.Start != 1 || c.End != 2 {
		t.Fatalf("Start/End = %d/%d", c.Start, c.End)
	}
}

func TestChainsRelayHops(t *testing.T) {
	// Exit signals 10; 10 wakes futilely, relays to 11 (origin 10);
	// 11 claims. One chain, two signals, one hop.
	chains := Chains([]Event{
		ev(1, KSignal, 0, 10, 0),
		ev(2, KFutileWake, 0, 10, 0),
		ev(3, KSignal, 0, 11, 10),
		ev(4, KClaim, 0, 11, 0),
	})
	if len(chains) != 1 {
		t.Fatalf("chains = %d, want 1", len(chains))
	}
	c := chains[0]
	if c.Len() != 2 || c.Hops() != 1 || c.FutileWakes != 1 || !c.Claimed {
		t.Fatalf("chain = %+v", c)
	}
	if want := []uint64{10, 11}; !reflect.DeepEqual(c.Seqs, want) {
		t.Fatalf("Seqs = %v, want %v", c.Seqs, want)
	}
}

func TestChainsFutileClaimLoop(t *testing.T) {
	// Armed handle 10 claims futilely twice (re-armed each time, chain
	// stays open at 10 because the same waiter holds the baton), then a
	// relay with origin 10 hands to 11 which claims.
	chains := Chains([]Event{
		ev(1, KSignal, 0, 10, 0),
		ev(2, KFutileClaim, 0, 10, 0),
		ev(3, KFutileClaim, 0, 10, 0),
		ev(4, KSignal, 0, 11, 10),
		ev(5, KClaim, 0, 11, 0),
	})
	if len(chains) != 1 {
		t.Fatalf("chains = %d, want 1", len(chains))
	}
	c := chains[0]
	if c.FutileClaims != 2 || c.Len() != 2 || !c.Claimed {
		t.Fatalf("chain = %+v", c)
	}
}

func TestChainsMonitorsIndependent(t *testing.T) {
	// Same seqs on two monitors must not join.
	chains := Chains([]Event{
		ev(1, KSignal, 0, 10, 0),
		ev(2, KSignal, 1, 11, 10), // origin 10 is on monitor 0 — no join
		ev(3, KClaim, 0, 10, 0),
		ev(4, KClaim, 1, 11, 0),
	})
	if len(chains) != 2 {
		t.Fatalf("chains = %d, want 2", len(chains))
	}
	for _, c := range chains {
		if c.Len() != 1 || !c.Claimed {
			t.Fatalf("chain = %+v", c)
		}
	}
}

func TestChainsPolicyCancelExpireOpen(t *testing.T) {
	chains := Chains([]Event{
		// Policy-decided wake that gets cancelled.
		ev(1, KSignal, 0, 10, 0),
		ev(2, KPolicyWake, 0, 10, 3),
		ev(3, KCancel, 0, 10, 0),
		// A wake that expires (KExpire closes; trailing KCancel from the
		// abandon unwind finds the chain already closed — harmless).
		ev(4, KSignal, 0, 11, 0),
		ev(5, KExpire, 0, 11, 0),
		ev(6, KCancel, 0, 11, 0),
		// A chain the window cuts off.
		ev(7, KSignal, 0, 12, 0),
	})
	if len(chains) != 3 {
		t.Fatalf("chains = %d, want 3", len(chains))
	}
	if c := chains[0]; !c.Cancelled || c.PolicyWakes != 1 {
		t.Fatalf("cancelled chain = %+v", c)
	}
	if c := chains[1]; !c.Expired || c.Cancelled {
		t.Fatalf("expired chain = %+v", c)
	}
	if c := chains[2]; c.Closed() {
		t.Fatalf("open chain reported closed: %+v", c)
	}
}

func TestChainsSortsByTimestamp(t *testing.T) {
	// Events delivered out of order (merged rings) still reconstruct.
	chains := Chains([]Event{
		ev(4, KClaim, 0, 11, 0),
		ev(1, KSignal, 0, 10, 0),
		ev(3, KSignal, 0, 11, 10),
		ev(2, KFutileWake, 0, 10, 0),
	})
	if len(chains) != 1 || chains[0].Len() != 2 || !chains[0].Claimed {
		t.Fatalf("chains = %+v", chains)
	}
}

func TestAnalyze(t *testing.T) {
	var evs []Event
	ts := int64(0)
	next := func(kind Kind, seq uint64, arg int64) {
		ts++
		evs = append(evs, ev(ts, kind, 0, seq, arg))
	}
	// Chain 1: storm of StormLen signals, claimed, 7 futile wakes.
	for i := 0; i < StormLen; i++ {
		seq := uint64(100 + i)
		var origin int64
		if i > 0 {
			origin = int64(100 + i - 1)
		}
		next(KSignal, seq, origin)
		if i < StormLen-1 {
			next(KFutileWake, seq, 0)
		}
	}
	next(KClaim, uint64(100+StormLen-1), 0)
	// Chain 2: single policy wake, cancelled.
	next(KSignal, 200, 0)
	next(KPolicyWake, 200, 5)
	next(KCancel, 200, 0)
	// Chain 3: expired. Chain 4: left open.
	next(KSignal, 300, 0)
	next(KExpire, 300, 0)
	next(KSignal, 400, 0)

	a := Analyze(evs, 9)
	want := Analysis{
		Events:      len(evs),
		Drops:       9,
		Chains:      4,
		Signals:     StormLen + 3,
		Hops:        StormLen - 1,
		MaxLen:      StormLen,
		MeanLen:     float64(StormLen+3) / 4,
		Storms:      1,
		OpenEnded:   1,
		Claimed:     1,
		Cancelled:   1,
		Expired:     1,
		PolicyWakes: 1,
		FutileWakes: StormLen - 1,
		FutileRatio: float64(StormLen-1) / float64(StormLen+3),
	}
	if a != want {
		t.Fatalf("Analyze =\n%+v\nwant\n%+v", a, want)
	}
}

// TestAnalysisStringComplete is the obs-side completeness gate the ISSUE
// asks for: every Analysis field must be visible in String(), so a
// counter added to the analysis cannot silently vanish from reports.
func TestAnalysisStringComplete(t *testing.T) {
	typ := reflect.TypeOf(Analysis{})
	zero := Analysis{}.String()
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		a := Analysis{}
		fv := reflect.ValueOf(&a).Elem().Field(i)
		switch f.Type.Kind() {
		case reflect.Int:
			fv.SetInt(7)
		case reflect.Uint64:
			fv.SetUint(7)
		case reflect.Float64:
			fv.SetFloat(7.5)
		default:
			t.Fatalf("field %s: unhandled kind %v — extend this test", f.Name, f.Type.Kind())
		}
		if a.String() == zero {
			t.Errorf("field %s does not affect Analysis.String()", f.Name)
		}
	}
}

func TestLengthTable(t *testing.T) {
	chains := Chains([]Event{
		ev(1, KSignal, 0, 10, 0),
		ev(2, KClaim, 0, 10, 0),
		ev(3, KSignal, 0, 11, 0),
		ev(4, KFutileWake, 0, 11, 0),
		ev(5, KSignal, 0, 12, 11),
		ev(6, KClaim, 0, 12, 0),
		ev(7, KSignal, 0, 13, 0),
	})
	table := LengthTable(chains)
	for _, want := range []string{"len", "chains", "open", "futile-ratio"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
	// Three buckets: len 1 ×2 (one open), len 2 ×1 with futile ratio 0.5.
	if !strings.Contains(table, "0.500") {
		t.Fatalf("table missing len-2 futile ratio:\n%s", table)
	}
	lines := strings.Split(strings.TrimSpace(table), "\n")
	if len(lines) != 3 { // header + two length buckets
		t.Fatalf("table rows = %d:\n%s", len(lines), table)
	}
	if LengthTable(nil) != "no chains\n" {
		t.Fatalf("empty table = %q", LengthTable(nil))
	}
}

func TestChainStringerSmoke(t *testing.T) {
	// Kind names render in diagnostics without panicking.
	for k := Kind(0); k <= kindMax; k++ {
		_ = fmt.Sprintf("%v", k)
	}
}
