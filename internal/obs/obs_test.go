package obs

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func writeRaw(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

func TestRingRecordSnapshot(t *testing.T) {
	rec := NewRecorder(16)
	r := rec.NewRing("m")
	if r.Cap() != 16 {
		t.Fatalf("Cap = %d, want 16", r.Cap())
	}
	for i := 0; i < 10; i++ {
		r.Record(KEnter, uint64(i+1), int64(-i))
	}
	evs := r.Snapshot()
	if len(evs) != 10 {
		t.Fatalf("Snapshot len = %d, want 10", len(evs))
	}
	for i, ev := range evs {
		if ev.Kind != KEnter || ev.Seq != uint64(i+1) || ev.Arg != int64(-i) || ev.Mon != r.ID() {
			t.Fatalf("event %d = %+v", i, ev)
		}
		if i > 0 && ev.TS < evs[i-1].TS {
			t.Fatalf("events out of TS order at %d", i)
		}
	}
	if r.Writes() != 10 || r.Drops() != 0 {
		t.Fatalf("Writes/Drops = %d/%d, want 10/0", r.Writes(), r.Drops())
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	rec := NewRecorder(8)
	r := rec.NewRing("m")
	for i := 0; i < 100; i++ {
		r.Record(KSignal, uint64(i), 0)
	}
	evs := r.Snapshot()
	if len(evs) != 8 {
		t.Fatalf("Snapshot len = %d, want 8", len(evs))
	}
	// Single-writer wrap drops nothing; the last Cap events survive.
	if r.Drops() != 0 {
		t.Fatalf("Drops = %d, want 0", r.Drops())
	}
	for i, ev := range evs {
		if want := uint64(92 + i); ev.Seq != want {
			t.Fatalf("event %d seq = %d, want %d", i, ev.Seq, want)
		}
	}
}

func TestRecorderRoundsToPowerOfTwo(t *testing.T) {
	rec := NewRecorder(1000)
	if r := rec.NewRing("m"); r.Cap() != 1024 {
		t.Fatalf("Cap = %d, want 1024", r.Cap())
	}
	rec = NewRecorder(0)
	if r := rec.NewRing("m"); r.Cap() != DefaultRingSize {
		t.Fatalf("Cap = %d, want %d", r.Cap(), DefaultRingSize)
	}
}

// TestRingConcurrentWriters is the corruption guard the ISSUE asks for:
// many goroutines hammer one small ring (forcing wraps and slot
// contention) while a reader snapshots continuously. Every snapshotted
// event must be internally consistent — the kind valid and Seq/Arg from
// the same writer's encoding — and the writes/drops accounting must add
// up. Run under -race in CI.
func TestRingConcurrentWriters(t *testing.T) {
	rec := NewRecorder(64) // small: maximize wrap pressure
	r := rec.NewRing("m")

	const writers = 8
	const perWriter = 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	readerErr := make(chan string, 1)
	go func() { // concurrent reader: snapshots must never tear
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, ev := range r.Snapshot() {
				if msg := checkEvent(ev); msg != "" {
					select {
					case readerErr <- msg:
					default:
					}
					return
				}
			}
		}
	}()
	wg.Add(writers)
	for wid := 0; wid < writers; wid++ {
		go func(wid int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				// Seq/Arg encode the writer consistently: Arg = -Seq.
				seq := uint64(wid*perWriter + i + 1)
				r.Record(KSignal, seq, -int64(seq))
			}
		}(wid)
	}
	wg.Wait() // writers first, then stop the reader
	close(stop)
	<-readerDone

	select {
	case msg := <-readerErr:
		t.Fatal(msg)
	default:
	}
	if got := r.head.Load(); got != writers*perWriter {
		t.Fatalf("tickets issued = %d, want %d", got, writers*perWriter)
	}
	if r.Writes()+r.Drops() != writers*perWriter {
		t.Fatalf("Writes(%d) + Drops(%d) != %d", r.Writes(), r.Drops(), writers*perWriter)
	}
	for _, ev := range r.Snapshot() {
		if msg := checkEvent(ev); msg != "" {
			t.Fatal(msg)
		}
	}
}

func checkEvent(ev Event) string {
	if !ev.Kind.Valid() {
		return "torn event: invalid kind"
	}
	if ev.Arg != -int64(ev.Seq) {
		return "torn event: seq/arg mismatch"
	}
	return ""
}

func TestStartStopActive(t *testing.T) {
	if Active() != nil {
		t.Fatalf("recorder active before Start")
	}
	rec := Start(128)
	defer Stop()
	if Active() != rec {
		t.Fatalf("Active() != Start result")
	}
	if got := Stop(); got != rec {
		t.Fatalf("Stop returned %v, want the started recorder", got)
	}
	if Active() != nil {
		t.Fatalf("recorder still active after Stop")
	}
	if Stop() != nil {
		t.Fatalf("second Stop returned non-nil")
	}
}

func TestKindStringAndValid(t *testing.T) {
	for k := KEnter; k < kindMax; k++ {
		if !k.Valid() {
			t.Fatalf("kind %d not valid", uint8(k))
		}
		if s := k.String(); strings.HasPrefix(s, "Kind(") {
			t.Fatalf("kind %d has no name", uint8(k))
		}
	}
	if Kind(0).Valid() || kindMax.Valid() {
		t.Fatalf("sentinel kinds report valid")
	}
}

func TestFileRoundTrip(t *testing.T) {
	rec := NewRecorder(64)
	r := rec.NewRing("a")
	r2 := rec.NewRing("b")
	for i := 0; i < 20; i++ {
		r.Record(KSignal, uint64(i+1), int64(i))
		r2.Record(KCounterPublish, uint64(i), 7)
	}
	events := rec.Events()

	path := filepath.Join(t.TempDir(), "trace.obs")
	if err := WriteFile(path, events, 3); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, drops, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if drops != 3 {
		t.Fatalf("drops = %d, want 3", drops)
	}
	if len(got) != len(events) {
		t.Fatalf("read %d events, want %d", len(got), len(events))
	}
	for i := range got {
		if got[i] != events[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], events[i])
		}
	}
}

func TestReadFileRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bogus.obs")
	if err := WriteFile(path, nil, 0); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if _, _, err := ReadFile(path); err != nil {
		t.Fatalf("empty trace should read back: %v", err)
	}
	if err := writeRaw(path, []byte("not a trace file at all......")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadFile(path); err == nil {
		t.Fatalf("garbage accepted")
	}
}

func TestRegistry(t *testing.T) {
	reg := NewRegistry()
	n := 41
	reg.Register("answer", func() any { n++; return n })
	reg.Register("label", func() any { return "hi" })

	snap := reg.Snapshot()
	if snap["answer"] != 42 || snap["label"] != "hi" {
		t.Fatalf("snapshot = %v", snap)
	}

	rr := httptest.NewRecorder()
	reg.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/vars", nil))
	body := rr.Body.String()
	if !strings.Contains(body, `"answer": 43`) || !strings.Contains(body, `"label": "hi"`) {
		t.Fatalf("body = %q", body)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("content type = %q", ct)
	}

	// Replacement keeps one entry per name.
	reg.Register("answer", func() any { return 0 })
	if names := reg.Names(); len(names) != 2 {
		t.Fatalf("names = %v", names)
	}
}
