// Package obs is the monitor runtime's flight recorder and metrics
// surface: a low-overhead, always-compilable observability layer for the
// wake graph the runtime already knows — which exit relayed to which
// waiter, which claims went futile, which policy picked which candidate —
// but that a flat Stats counter struct can only summarize.
//
// The recorder is a set of per-monitor lock-free ring buffers of
// fixed-size binary events. Recording is armed process-wide with Start
// (one atomic pointer store); each monitor constructed while a recorder
// is active allocates its own ring with a single atomic load, and every
// event site afterwards is gated by a plain nil check of that ring field
// — monitors built with no recorder active carry a nil ring, so the
// disabled hot path pays one predictable branch and no atomics, staying
// within noise of the uninstrumented runtime (see the obs-disabled guard
// test at the repo root).
//
// Writers never block and never wait for readers: a slot claimed by a
// concurrent writer, or a reader racing a wrap, costs a dropped event
// counted in Drops — flight-recorder semantics, where the most recent
// window survives and loss is measured rather than prevented.
//
// Chains (chains.go) reconstructs signal→relay→claim causality from an
// event stream; WriteFile/ReadFile (file.go) persist the binary dump
// behind the CLIs' -trace flags; Registry (registry.go) is the
// expvar-compatible JSON metrics endpoint served by cmd/watchd.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind enumerates the event types of the flight recorder. The zero Kind
// is reserved as "empty slot" so a torn or unwritten record can never
// masquerade as a real event.
type Kind uint8

// The recorded protocol events. Seq is the waiter's monitor-global
// arrival sequence where one is involved (0 otherwise); Arg is
// kind-specific and documented per constant.
const (
	// KEnter and KExit bracket one monitor occupancy. Arg unused.
	KEnter Kind = iota + 1
	KExit
	// KSignal is one relay (or explicit) signal: Seq is the signaled
	// waiter, Arg the seq of the waiter whose consumed notification this
	// relay continues (0 when the chain starts at a plain monitor exit).
	KSignal
	// KPolicyWake accompanies a KSignal whose target a wake policy chose:
	// Seq is the winning candidate, Arg its policy rank.
	KPolicyWake
	// KArm is a waiter registration (blocking wait or armed handle);
	// Arg is the registration-time policy rank.
	KArm
	// KClaim is a completed wait: a successful handle Claim or a blocking
	// wait whose predicate held on wake-up. Arg unused.
	KClaim
	// KFutileClaim is a Claim that found the predicate falsified; the
	// handle was re-armed. Arg unused.
	KFutileClaim
	// KFutileWake is a wake-up that found the predicate still false;
	// the waiter re-parked. Arg unused.
	KFutileWake
	// KCancel is an abandoned waiter: context cancellation, handle
	// Cancel, or the unwind of an expiry. Arg unused.
	KCancel
	// KExpire is a deadline that fired before the wait completed.
	// Arg unused.
	KExpire
	// KStarved is a completed wait that crossed the starvation
	// threshold; Arg is the observed wait in nanoseconds.
	KStarved
	// KBroadcast is a signalAll (Baseline exit, explicit Broadcast).
	// Arg unused.
	KBroadcast
	// KCounterPublish is one shard.Counter batch publication: Seq is the
	// publishing shard index, Arg the published delta.
	KCounterPublish

	kindMax // sentinel: first invalid kind
)

// String names the kind for analysis tables.
func (k Kind) String() string {
	switch k {
	case KEnter:
		return "enter"
	case KExit:
		return "exit"
	case KSignal:
		return "signal"
	case KPolicyWake:
		return "policy-wake"
	case KArm:
		return "arm"
	case KClaim:
		return "claim"
	case KFutileClaim:
		return "futile-claim"
	case KFutileWake:
		return "futile-wake"
	case KCancel:
		return "cancel"
	case KExpire:
		return "expire"
	case KStarved:
		return "starved"
	case KBroadcast:
		return "broadcast"
	case KCounterPublish:
		return "counter-publish"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Valid reports whether k is a defined event kind.
func (k Kind) Valid() bool { return k >= KEnter && k < kindMax }

// Event is one fixed-size flight-recorder record. TS is monotonic
// nanoseconds since the recorder package initialized (comparable across
// rings of one process, meaningless across processes); Mon identifies the
// ring (monotonic per recorder) so merged streams stay attributable.
type Event struct {
	TS   int64  // monotonic nanos since process start
	Seq  uint64 // waiter arrival seq, or kind-specific id; 0 if none
	Arg  int64  // kind-specific argument; see the Kind constants
	Mon  uint32 // ring id within the recorder
	Kind Kind
	_    [3]byte
}

// epoch anchors the monotonic timestamps; time.Since reads the monotonic
// clock, so TS is immune to wall-clock jumps.
var epoch = time.Now()

// now returns the event timestamp. Kept minimal: one monotonic clock
// read, no allocation.
func now() int64 { return int64(time.Since(epoch)) }

// slot is one ring cell. stamp encodes the publication protocol:
//
//	0        — never written
//	2t+1     — a writer holding ticket t is mid-write (odd)
//	2t+2     — the event of ticket t is published (even, nonzero)
//
// A writer claims the slot by CASing the stamp from its current even
// value to its own odd writing stamp; a CAS loss or an odd stamp means a
// concurrent writer owns the slot (the ring lapped itself under burst),
// and the event is dropped rather than spun for. A reader snapshots the
// stamp, copies the event, and re-reads the stamp: any change in between
// means a torn copy, discarded. The payload is four atomic words (not a
// plain Event) so the copy racing a writer is merely stale, never a data
// race — the stamp re-check decides whether it is kept.
type slot struct {
	stamp atomic.Uint64
	ts    atomic.Uint64 // Event.TS
	seq   atomic.Uint64 // Event.Seq
	arg   atomic.Uint64 // Event.Arg
	mk    atomic.Uint64 // Event.Mon<<8 | Event.Kind
}

// Ring is a lock-free multi-writer flight-recorder ring: fixed capacity,
// newest events overwrite oldest, contended writes drop (counted) rather
// than block. One ring per monitor keeps hot-path writes uncontended in
// practice (monitor events are recorded under that monitor's lock); the
// multi-writer protocol is load-bearing for rings shared across locks,
// like a shard.Counter's publication ring.
type Ring struct {
	id    uint32
	label string
	mask  uint64
	head  atomic.Uint64 // next ticket; head - drops = published writes
	drops atomic.Uint64
	slots []slot
}

// ID returns the ring's id within its recorder (the Mon field of its
// events).
func (r *Ring) ID() uint32 { return r.id }

// Label returns the diagnostic label the ring was created with.
func (r *Ring) Label() string { return r.label }

// Cap returns the ring capacity in events.
func (r *Ring) Cap() int { return len(r.slots) }

// Drops returns how many events were discarded: slot contention between
// concurrent writers (never blocking is the contract).
func (r *Ring) Drops() uint64 { return r.drops.Load() }

// Writes returns how many events were successfully published (wrapped
// ones included — only the last Cap survive in the ring).
func (r *Ring) Writes() uint64 { return r.head.Load() - r.drops.Load() }

// Record appends one event. Never blocks: a slot owned by a concurrent
// writer drops the event and counts it. Safe for any number of
// concurrent writers.
func (r *Ring) Record(kind Kind, seq uint64, arg int64) {
	t := r.head.Add(1) - 1
	s := &r.slots[t&r.mask]
	old := s.stamp.Load()
	if old&1 == 1 || !s.stamp.CompareAndSwap(old, 2*t+1) {
		r.drops.Add(1)
		return
	}
	s.ts.Store(uint64(now()))
	s.seq.Store(seq)
	s.arg.Store(uint64(arg))
	s.mk.Store(uint64(r.id)<<8 | uint64(kind))
	s.stamp.Store(2*t + 2)
}

// Snapshot returns the ring's published events, oldest first. Safe to
// call while writers run: a slot mid-write or overwritten during the copy
// is skipped (it will appear complete in a later snapshot or has been
// superseded), so every returned event is internally consistent.
func (r *Ring) Snapshot() []Event {
	evs := make([]Event, 0, len(r.slots))
	for i := range r.slots {
		s := &r.slots[i]
		st := s.stamp.Load()
		if st == 0 || st&1 == 1 {
			continue
		}
		ts, seq, arg, mk := s.ts.Load(), s.seq.Load(), s.arg.Load(), s.mk.Load()
		if s.stamp.Load() != st {
			continue // torn: a writer replaced the slot mid-copy
		}
		evs = append(evs, Event{
			TS: int64(ts), Seq: seq, Arg: int64(arg),
			Mon: uint32(mk >> 8), Kind: Kind(mk),
		})
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].TS < evs[j].TS })
	return evs
}

// DefaultRingSize is the per-ring capacity Start allocates when given a
// non-positive size: 64Ki events (2 MiB per monitor) holds the full event
// stream of a -quick experiment and a multi-second window of a saturated
// monitor.
const DefaultRingSize = 1 << 16

// Recorder owns the rings of one recording session. Monitors constructed
// while a recorder is globally active (Start) call NewRing once and keep
// the ring for life; the recorder aggregates across rings for analysis
// and export.
type Recorder struct {
	size int

	mu    sync.Mutex
	rings []*Ring
}

// NewRecorder builds a recorder whose rings hold perRing events each
// (rounded up to a power of two; non-positive means DefaultRingSize).
// The recorder is inert until monitors are pointed at it — either
// explicitly via NewRing or process-wide via Start.
func NewRecorder(perRing int) *Recorder {
	size := 1
	if perRing <= 0 {
		perRing = DefaultRingSize
	}
	for size < perRing {
		size <<= 1
	}
	return &Recorder{size: size}
}

// NewRing allocates a labeled ring. Called once per monitor at
// construction; the returned ring is the monitor's to write for life,
// even after the recorder is detached with Stop (the events simply stop
// being collected by anyone).
func (rec *Recorder) NewRing(label string) *Ring {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	r := &Ring{
		id:    uint32(len(rec.rings)),
		label: label,
		mask:  uint64(rec.size - 1),
		slots: make([]slot, rec.size),
	}
	rec.rings = append(rec.rings, r)
	return r
}

// Rings returns the recorder's rings in creation order.
func (rec *Recorder) Rings() []*Ring {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	return append([]*Ring(nil), rec.rings...)
}

// Events merges every ring's snapshot into one stream ordered by
// timestamp.
func (rec *Recorder) Events() []Event {
	var evs []Event
	for _, r := range rec.Rings() {
		evs = append(evs, r.Snapshot()...)
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].TS < evs[j].TS })
	return evs
}

// Drops sums the drop counters across rings.
func (rec *Recorder) Drops() uint64 {
	var d uint64
	for _, r := range rec.Rings() {
		d += r.Drops()
	}
	return d
}

// Writes sums the published-event counters across rings.
func (rec *Recorder) Writes() uint64 {
	var w uint64
	for _, r := range rec.Rings() {
		w += r.Writes()
	}
	return w
}

// active is the process-wide recorder consulted (one atomic load) by
// every monitor constructor.
var active atomic.Pointer[Recorder]

// Start arms process-wide recording: monitors constructed from now on
// allocate a ring on the returned recorder. Size is the per-ring capacity
// (non-positive: DefaultRingSize). Monitors that already exist keep
// recording to whatever ring (possibly none) they were built with —
// rings are bound at construction so the per-event guard stays a plain
// nil check.
func Start(perRing int) *Recorder {
	rec := NewRecorder(perRing)
	active.Store(rec)
	return rec
}

// Stop detaches the process-wide recorder and returns it for analysis;
// nil if none was active. Monitors built during the session keep their
// rings (writes continue harmlessly into the detached recorder) but new
// monitors record nothing.
func Stop() *Recorder {
	return active.Swap(nil)
}

// Active returns the process-wide recorder, or nil. Monitor constructors
// call this once; event sites never do.
func Active() *Recorder {
	return active.Load()
}
