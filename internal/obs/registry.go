package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
)

// Registry is a pull-model metrics surface: named gauge functions
// sampled at serve time, emitted as one expvar-compatible JSON object
// (the /debug/vars shape, so existing expvar scrapers work unchanged).
// It exists so a multi-minute watchd soak is observable while running —
// session gauges, monitor Stats, latency percentiles, ring drop counts —
// rather than only in the post-mortem artifact.
//
// Values are marshaled with encoding/json; register funcs returning
// types with useful MarshalJSON (core.Stats, stats.Histogram) or plain
// numbers. A value that fails to marshal is reported in place as an
// error string rather than failing the whole snapshot.
type Registry struct {
	mu    sync.Mutex
	vars  map[string]func() any
	order []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{vars: make(map[string]func() any)}
}

// Register adds (or replaces) a named variable. The function is called
// on every snapshot; it must be safe to call concurrently with the
// system it observes.
func (reg *Registry) Register(name string, f func() any) {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if _, ok := reg.vars[name]; !ok {
		reg.order = append(reg.order, name)
	}
	reg.vars[name] = f
}

// Names returns the registered variable names, sorted.
func (reg *Registry) Names() []string {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	names := append([]string(nil), reg.order...)
	sort.Strings(names)
	return names
}

// Snapshot samples every variable once and returns the name→value map.
func (reg *Registry) Snapshot() map[string]any {
	reg.mu.Lock()
	funcs := make(map[string]func() any, len(reg.vars))
	for name, f := range reg.vars {
		funcs[name] = f
	}
	reg.mu.Unlock()
	// Sample outside the lock: gauge funcs may take monitor locks and
	// must not serialize against Register.
	snap := make(map[string]any, len(funcs))
	for name, f := range funcs {
		snap[name] = f()
	}
	return snap
}

// ServeHTTP emits the snapshot as a single JSON object, one member per
// registered variable, in sorted name order — the expvar /debug/vars
// wire shape.
func (reg *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	snap := reg.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)

	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	fmt.Fprintf(w, "{\n")
	for i, name := range names {
		if i > 0 {
			fmt.Fprintf(w, ",\n")
		}
		val, err := json.Marshal(snap[name])
		if err != nil {
			val, _ = json.Marshal(fmt.Sprintf("marshal error: %v", err))
		}
		key, _ := json.Marshal(name)
		fmt.Fprintf(w, "%s: %s", key, val)
	}
	fmt.Fprintf(w, "\n}\n")
}
