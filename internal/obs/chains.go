package obs

import (
	"fmt"
	"sort"
	"strings"
)

// A Chain is one reconstructed wake chain: the causal path a wake-up
// takes through the monitor from the signal that started it, across
// relay hops (each woken waiter passing the baton onward when it exits
// or goes futile), to the claim, cancellation, or expiry that ends it.
// Under the single-pending-signal discipline at most one chain is "hot"
// per monitor at a time, which is what makes the reconstruction exact:
// a KSignal whose origin seq matches a chain's current head extends that
// chain.
type Chain struct {
	Mon  uint32   // ring id of the monitor the chain ran on
	Seqs []uint64 // signaled waiter seqs, in causal order (len = signals)

	FutileWakes  int // wake-ups along the chain that re-parked
	FutileClaims int // handle claims along the chain that re-armed
	PolicyWakes  int // hops whose target a wake policy selected

	Claimed   bool // ended in a successful claim/wait completion
	Cancelled bool // ended in an abandon/cancel
	Expired   bool // ended in a deadline expiry

	Start, End int64 // TS of the first signal and of the closing event
}

// Len is the chain length in signals (1 = a signal answered directly,
// no relaying).
func (c *Chain) Len() int { return len(c.Seqs) }

// Hops is the number of relay handoffs (Len - 1).
func (c *Chain) Hops() int {
	if len(c.Seqs) == 0 {
		return 0
	}
	return len(c.Seqs) - 1
}

// Closed reports whether the chain's ending was observed in the window.
func (c *Chain) Closed() bool { return c.Claimed || c.Cancelled || c.Expired }

// chainKey identifies the waiter currently holding a chain's baton.
type chainKey struct {
	mon uint32
	seq uint64
}

// Chains reconstructs wake chains from an event stream (any order; it is
// re-sorted by timestamp). A KSignal whose origin matches an open
// chain's head extends that chain; otherwise it roots a new one. KClaim,
// KCancel, and KExpire on a chain's head close it; KFutileWake,
// KFutileClaim, and KPolicyWake annotate it. Chains cut off by the
// window (ring wrap, recorder stopped mid-wake) are returned unclosed.
func Chains(events []Event) []*Chain {
	evs := append([]Event(nil), events...)
	sort.Slice(evs, func(i, j int) bool { return evs[i].TS < evs[j].TS })

	open := make(map[chainKey]*Chain)
	var chains []*Chain
	for _, ev := range evs {
		key := chainKey{ev.Mon, ev.Seq}
		switch ev.Kind {
		case KSignal:
			// ev.Arg carries the origin seq: the waiter whose consumed
			// notification this relay continues.
			if ev.Arg != 0 {
				if c, ok := open[chainKey{ev.Mon, uint64(ev.Arg)}]; ok {
					delete(open, chainKey{ev.Mon, uint64(ev.Arg)})
					c.Seqs = append(c.Seqs, ev.Seq)
					// The origin may equal the target only if the ring lost
					// the intervening close; re-keying is still correct.
					open[key] = c
					continue
				}
			}
			c := &Chain{Mon: ev.Mon, Seqs: []uint64{ev.Seq}, Start: ev.TS}
			chains = append(chains, c)
			open[key] = c
		case KPolicyWake:
			if c, ok := open[key]; ok {
				c.PolicyWakes++
			}
		case KFutileWake:
			if c, ok := open[key]; ok {
				c.FutileWakes++
			}
		case KFutileClaim:
			if c, ok := open[key]; ok {
				c.FutileClaims++
			}
		case KClaim:
			if c, ok := open[key]; ok {
				c.Claimed = true
				c.End = ev.TS
				delete(open, key)
			}
		case KCancel:
			if c, ok := open[key]; ok {
				c.Cancelled = true
				c.End = ev.TS
				delete(open, key)
			}
		case KExpire:
			if c, ok := open[key]; ok {
				c.Expired = true
				c.End = ev.TS
				delete(open, key)
			}
		}
	}
	return chains
}

// StormLen is the chain length at and above which a chain counts as a
// relay storm in Analysis: one wake-up fanning out across that many
// handoffs means waiters are being woken mostly to pass the baton, not
// to make progress.
const StormLen = 8

// Analysis summarizes an event window: the chain population, how chains
// end, and how much of the signal traffic was futile. Every field is
// rendered by String; the completeness test in this package enforces
// that, so a field added here cannot silently vanish from reports.
type Analysis struct {
	Events int    // events analyzed
	Drops  uint64 // ring drops in the window (recorder-reported)

	Chains    int // wake chains reconstructed
	Signals   int // total signals across chains
	Hops      int // relay handoffs (signals beyond each chain's first)
	MaxLen    int // longest chain, in signals
	MeanLen   float64
	Storms    int // chains of StormLen or longer
	OpenEnded int // chains the window cut off before their close

	Claimed   int // chains ended by a successful claim
	Cancelled int // chains ended by an abandon/cancel
	Expired   int // chains ended by a deadline expiry

	PolicyWakes  int     // policy-selected wake-ups across chains
	FutileWakes  int     // wake-ups that re-parked
	FutileClaims int     // claims that re-armed
	FutileRatio  float64 // (FutileWakes+FutileClaims) / Signals
}

// Analyze reconstructs chains from the events and summarizes them.
// Drops is the recorder's drop count for the same window (0 if unknown);
// it is carried through so reports show when the window is lossy.
func Analyze(events []Event, drops uint64) Analysis {
	chains := Chains(events)
	a := Analysis{Events: len(events), Drops: drops, Chains: len(chains)}
	for _, c := range chains {
		a.Signals += c.Len()
		a.Hops += c.Hops()
		if c.Len() > a.MaxLen {
			a.MaxLen = c.Len()
		}
		if c.Len() >= StormLen {
			a.Storms++
		}
		if !c.Closed() {
			a.OpenEnded++
		}
		if c.Claimed {
			a.Claimed++
		}
		if c.Cancelled {
			a.Cancelled++
		}
		if c.Expired {
			a.Expired++
		}
		a.PolicyWakes += c.PolicyWakes
		a.FutileWakes += c.FutileWakes
		a.FutileClaims += c.FutileClaims
	}
	if a.Chains > 0 {
		a.MeanLen = float64(a.Signals) / float64(a.Chains)
	}
	if a.Signals > 0 {
		a.FutileRatio = float64(a.FutileWakes+a.FutileClaims) / float64(a.Signals)
	}
	return a
}

// String renders the analysis on two lines: the chain population and
// shape, then the outcome and futility accounting. Every Analysis field
// appears.
func (a Analysis) String() string {
	return fmt.Sprintf(
		"events=%d drops=%d chains=%d signals=%d hops=%d max-len=%d mean-len=%.2f storms=%d open=%d\n"+
			"claimed=%d cancelled=%d expired=%d policy-wakes=%d futile-wakes=%d futile-claims=%d futile-ratio=%.3f",
		a.Events, a.Drops, a.Chains, a.Signals, a.Hops, a.MaxLen, a.MeanLen, a.Storms, a.OpenEnded,
		a.Claimed, a.Cancelled, a.Expired, a.PolicyWakes, a.FutileWakes, a.FutileClaims, a.FutileRatio)
}

// LengthTable renders the chain-length distribution with per-bucket
// futility: one row per observed chain length, with how many chains had
// it, how many of those the window cut off, and the futile wake/claim
// ratio inside that bucket. This is the body of the CLI analyze mode.
func LengthTable(chains []*Chain) string {
	if len(chains) == 0 {
		return "no chains\n"
	}
	type bucket struct {
		count, open, futile, signals int
	}
	buckets := make(map[int]*bucket)
	var lens []int
	for _, c := range chains {
		b, ok := buckets[c.Len()]
		if !ok {
			b = &bucket{}
			buckets[c.Len()] = b
			lens = append(lens, c.Len())
		}
		b.count++
		if !c.Closed() {
			b.open++
		}
		b.futile += c.FutileWakes + c.FutileClaims
		b.signals += c.Len()
	}
	sort.Ints(lens)

	var sb strings.Builder
	fmt.Fprintf(&sb, "%8s %8s %8s %14s\n", "len", "chains", "open", "futile-ratio")
	for _, l := range lens {
		b := buckets[l]
		ratio := 0.0
		if b.signals > 0 {
			ratio = float64(b.futile) / float64(b.signals)
		}
		fmt.Fprintf(&sb, "%8d %8d %8d %14.3f\n", l, b.count, b.open, ratio)
	}
	return sb.String()
}
