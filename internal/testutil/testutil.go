// Package testutil provides event-driven synchronization helpers for
// concurrency tests. The tests in this repository must coordinate with
// goroutines that park inside monitors; polling an observable condition
// with WaitFor replaces fixed time.Sleep pauses, so the tests are fast on
// fast machines and correct on slow ones.
package testutil

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"
)

// DefaultPoll is the polling interval used by WaitFor when the caller
// passes a non-positive poll duration.
const DefaultPoll = 200 * time.Microsecond

// WaitFor repeatedly evaluates pred every poll interval until it returns
// true, failing t if timeout expires first. Use this instead of
// time.Sleep for event-driven testing: the predicate should observe state
// that the awaited event makes true and keeps true (a parked-waiter
// count, a monotonic counter, a flag).
func WaitFor(t testing.TB, timeout, poll time.Duration, pred func() bool, format string, args ...any) {
	t.Helper()
	if !Eventually(timeout, poll, pred) {
		t.Fatalf("WaitFor(%s): condition not met within %v", fmt.Sprintf(format, args...), timeout)
	}
}

// SeedFromEnv returns the seed for a randomized test: the decimal value
// of the named environment variable if it is set (a CI re-run pins the
// failing seed that way), otherwise one derived from the wall clock. The
// chosen seed is always logged, so every failure report carries what is
// needed to reproduce it.
func SeedFromEnv(t testing.TB, name string) uint64 {
	t.Helper()
	seed := uint64(time.Now().UnixNano())
	if v := os.Getenv(name); v != "" {
		parsed, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			t.Fatalf("%s=%q is not a uint64 seed: %v", name, v, err)
		}
		seed = parsed
	}
	t.Logf("seed: %d (pin with %s=%d)", seed, name, seed)
	return seed
}

// Done converts a WaitGroup into a channel that closes when the group
// finishes, so tests can race completion against a watchdog timeout in a
// select. The spawned goroutine leaks if the group never finishes — which
// is fine, since the caller is about to fail the test.
func Done(wg *sync.WaitGroup) <-chan struct{} {
	ch := make(chan struct{})
	go func() { wg.Wait(); close(ch) }()
	return ch
}

// Waiter is anything that can report its registered-waiter count — the
// monitor types and the sharded/watchd aggregates all satisfy it.
type Waiter interface {
	Waiting() int
}

// NoLeaks captures the current goroutine count and returns a check to
// defer: at test end it polls (with a deadline) until the goroutine count
// is back at the baseline and every supplied Waiter has drained to zero
// registered waiters, and fails the test otherwise. Tests that used to
// hand-roll drain assertions use this instead:
//
//	defer testutil.NoLeaks(t, m)()
//
// The goroutine baseline tolerates counts below the starting point
// (earlier tests' stragglers exiting mid-test) but not above it.
func NoLeaks(t testing.TB, ws ...Waiter) func() {
	t.Helper()
	base := runtime.NumGoroutine()
	return func() {
		t.Helper()
		const timeout = 5 * time.Second
		ok := Eventually(timeout, 0, func() bool {
			if runtime.NumGoroutine() > base {
				return false
			}
			for _, w := range ws {
				if w.Waiting() != 0 {
					return false
				}
			}
			return true
		})
		if ok {
			return
		}
		if n := runtime.NumGoroutine(); n > base {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Errorf("goroutine leak: %d at start, %d after drain deadline\n%s", base, n, buf)
		}
		for i, w := range ws {
			if n := w.Waiting(); n != 0 {
				t.Errorf("waiter %d leaked %d registered waiters after %v", i, n, timeout)
			}
		}
	}
}

// Eventually is WaitFor without a test handle: it reports whether pred
// became true before the timeout. Useful inside helper goroutines (e.g. a
// liveness pump) that must not call testing methods.
func Eventually(timeout, poll time.Duration, pred func() bool) bool {
	if poll <= 0 {
		poll = DefaultPoll
	}
	deadline := time.Now().Add(timeout)
	for {
		if pred() {
			return true
		}
		if !time.Now().Before(deadline) {
			// One final check so a condition that became true exactly at
			// the deadline is not reported as a timeout.
			return pred()
		}
		time.Sleep(poll)
	}
}
