// Package testutil provides event-driven synchronization helpers for
// concurrency tests. The tests in this repository must coordinate with
// goroutines that park inside monitors; polling an observable condition
// with WaitFor replaces fixed time.Sleep pauses, so the tests are fast on
// fast machines and correct on slow ones.
package testutil

import (
	"fmt"
	"testing"
	"time"
)

// DefaultPoll is the polling interval used by WaitFor when the caller
// passes a non-positive poll duration.
const DefaultPoll = 200 * time.Microsecond

// WaitFor repeatedly evaluates pred every poll interval until it returns
// true, failing t if timeout expires first. Use this instead of
// time.Sleep for event-driven testing: the predicate should observe state
// that the awaited event makes true and keeps true (a parked-waiter
// count, a monotonic counter, a flag).
func WaitFor(t testing.TB, timeout, poll time.Duration, pred func() bool, format string, args ...any) {
	t.Helper()
	if !Eventually(timeout, poll, pred) {
		t.Fatalf("WaitFor(%s): condition not met within %v", fmt.Sprintf(format, args...), timeout)
	}
}

// Eventually is WaitFor without a test handle: it reports whether pred
// became true before the timeout. Useful inside helper goroutines (e.g. a
// liveness pump) that must not call testing methods.
func Eventually(timeout, poll time.Duration, pred func() bool) bool {
	if poll <= 0 {
		poll = DefaultPoll
	}
	deadline := time.Now().Add(timeout)
	for {
		if pred() {
			return true
		}
		if !time.Now().Before(deadline) {
			// One final check so a condition that became true exactly at
			// the deadline is not reported as a timeout.
			return pred()
		}
		time.Sleep(poll)
	}
}
