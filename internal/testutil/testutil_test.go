package testutil

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestWaitForImmediateTruth(t *testing.T) {
	calls := 0
	WaitFor(t, time.Second, time.Millisecond, func() bool { calls++; return true }, "already true")
	if calls != 1 {
		t.Errorf("pred called %d times, want 1", calls)
	}
}

func TestWaitForEventualTruth(t *testing.T) {
	var n atomic.Int64
	go func() {
		time.Sleep(2 * time.Millisecond)
		n.Store(5)
	}()
	WaitFor(t, 5*time.Second, 0, func() bool { return n.Load() == 5 }, "counter reaches %d", 5)
}

func TestEventuallyTimesOut(t *testing.T) {
	start := time.Now()
	if Eventually(5*time.Millisecond, time.Millisecond, func() bool { return false }) {
		t.Fatal("Eventually reported success for a never-true predicate")
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Error("Eventually returned before the timeout")
	}
}

func TestEventuallyFinalCheck(t *testing.T) {
	// A predicate that flips true exactly once the deadline has passed must
	// still be honored by the final check.
	deadline := time.Now().Add(3 * time.Millisecond)
	if !Eventually(3*time.Millisecond, time.Millisecond, func() bool {
		return !time.Now().Before(deadline)
	}) {
		t.Error("final check did not observe the late truth")
	}
}

func TestWaitForFailsOnTimeout(t *testing.T) {
	// Run against a throwaway T so the failure does not fail this test.
	mock := &mockT{TB: t}
	func() {
		defer func() { recover() }() // Fatalf on the mock panics to stop the helper
		WaitFor(mock, 2*time.Millisecond, time.Millisecond, func() bool { return false }, "never")
	}()
	if !mock.failed {
		t.Error("WaitFor did not fail on timeout")
	}
}

type mockT struct {
	testing.TB
	failed bool
}

func (m *mockT) Helper() {}
func (m *mockT) Fatalf(format string, args ...any) {
	m.failed = true
	panic("fatalf")
}
