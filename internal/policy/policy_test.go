package policy

import "testing"

func c(seq uint64, rank int64) Candidate { return Candidate{Seq: seq, Rank: rank} }

func TestPolicyFIFOOrder(t *testing.T) {
	if !FIFO.Better(c(1, 0), c(2, 0)) || FIFO.Better(c(2, 0), c(1, 0)) {
		t.Error("FIFO must prefer the smaller sequence")
	}
	if FIFO.Rank(map[string]int64{"p": 9}) != 0 {
		t.Error("FIFO must not rank")
	}
	if FIFO.Name() != "fifo" {
		t.Errorf("name = %q", FIFO.Name())
	}
}

func TestPolicyLIFOOrder(t *testing.T) {
	if !LIFO.Better(c(2, 0), c(1, 0)) || LIFO.Better(c(1, 0), c(2, 0)) {
		t.Error("LIFO must prefer the larger sequence")
	}
	if LIFO.Name() != "lifo" {
		t.Errorf("name = %q", LIFO.Name())
	}
}

func TestPolicyPriorityOrder(t *testing.T) {
	p := Priority(func(binds map[string]int64) int64 { return binds["prio"] })
	if p.Rank(map[string]int64{"prio": 7}) != 7 {
		t.Error("Priority.Rank must read the bindings")
	}
	if p.Rank(nil) != 0 {
		t.Error("Priority.Rank(nil) must be the zero rank")
	}
	if !p.Better(c(9, 5), c(1, 3)) {
		t.Error("higher rank must win regardless of arrival")
	}
	if !p.Better(c(1, 5), c(9, 5)) || p.Better(c(9, 5), c(1, 5)) {
		t.Error("equal ranks must tie-break FIFO")
	}
	if Priority(nil).Rank(map[string]int64{"prio": 7}) != 0 {
		t.Error("nil rank function must rank 0")
	}
}

// TestPolicyTotalOrder pins the strict-total-order contract over a small
// candidate universe: for candidates with distinct seqs (seq is a unique
// per-monitor arrival stamp, so distinct candidates always differ in it)
// exactly one of Better(a,b) / Better(b,a) holds, and neither holds
// reflexively.
func TestPolicyTotalOrder(t *testing.T) {
	pols := []Policy{FIFO, LIFO, Priority(func(b map[string]int64) int64 { return b["p"] })}
	var universe []Candidate
	seq := uint64(0)
	for i := 0; i < 4; i++ {
		for rank := int64(-1); rank <= 1; rank++ {
			seq++
			universe = append(universe, c(seq, rank))
		}
	}
	for _, pol := range pols {
		for _, a := range universe {
			if pol.Better(a, a) {
				t.Errorf("%s: Better(a, a) for %+v", pol.Name(), a)
			}
			for _, b := range universe {
				if a == b {
					continue
				}
				ab, ba := pol.Better(a, b), pol.Better(b, a)
				if ab == ba {
					t.Errorf("%s: Better(%+v, %+v)=%t and Better(%+v, %+v)=%t — not a strict total order",
						pol.Name(), a, b, ab, b, a, ba)
				}
			}
		}
	}
}
