// Package policy defines pluggable wake policies for automatic-signal
// monitors. The paper's relay invariance (§4.2) guarantees that *some*
// waiter with a true predicate is signaled whenever one exists, but
// deliberately leaves *which* one unspecified — the runtime picks the
// first eligible waiter its scan happens to visit. A Policy makes that
// choice explicit and observable: FIFO for fairness, LIFO for cache
// warmth, Priority for schedulers.
//
// The package is deliberately free of monitor machinery: a policy is a
// pure comparator over Candidate records (arrival order plus a
// registration-time rank), so internal/core can consult it inside the
// relay scan without this package importing core. Select a policy for a
// whole monitor with core.WithPolicy, or override it per predicate with
// Predicate.UsePolicy.
//
// A policy must induce a total order: Better(a, b) and Better(b, a) must
// never both be true for distinct candidates, and ties must be broken
// deterministically (the built-in policies break ties by arrival
// sequence). The relay scan visits entries in map order, so a partial
// order would make the pick schedule-dependent.
package policy

// Candidate describes one eligible waiter at pick time: a waiter whose
// globalized predicate currently holds and that has no notification in
// flight. Seq is the waiter's monitor-global arrival sequence (smaller
// means registered earlier; re-arming after a futile wake-up keeps the
// original sequence, so fairness is measured from first registration).
// Rank is the registration-time priority computed by Policy.Rank from
// the waiter's local bindings; it is 0 for policies that do not rank.
type Candidate struct {
	Seq  uint64
	Rank int64
}

// Policy decides which eligible waiter a relay scan or Exit-time signal
// picks. Implementations must be safe for concurrent use (the built-ins
// are stateless).
type Policy interface {
	// Name identifies the policy in reports and experiment output.
	Name() string

	// Rank computes a waiter's rank once, at registration, from its
	// local bindings (predicate locals by name, booleans as 0/1; nil for
	// closure waiters, which have no bindings). Policies that do not
	// rank return 0.
	Rank(binds map[string]int64) int64

	// Better reports whether candidate a should be woken before
	// candidate b. It must be a strict total order (see the package
	// documentation).
	Better(a, b Candidate) bool
}

// FIFO wakes the earliest-registered eligible waiter: bounded max-wait,
// no starvation — the fairness policy.
var FIFO Policy = fifo{}

// LIFO wakes the latest-registered eligible waiter: the most recently
// parked goroutine has the warmest cache and stack, at the cost of
// possible starvation of old waiters under sustained load.
var LIFO Policy = lifo{}

type fifo struct{}

func (fifo) Name() string                { return "fifo" }
func (fifo) Rank(map[string]int64) int64 { return 0 }
func (fifo) Better(a, b Candidate) bool  { return a.Seq < b.Seq }

type lifo struct{}

func (lifo) Name() string                { return "lifo" }
func (lifo) Rank(map[string]int64) int64 { return 0 }
func (lifo) Better(a, b Candidate) bool  { return a.Seq > b.Seq }

// Priority builds a policy that wakes the highest-ranked eligible waiter,
// breaking rank ties FIFO (earliest arrival first). rank is evaluated
// once per waiter, at registration, against the waiter's local bindings —
// the same frozen snapshot globalization uses (Proposition 1: locals
// cannot change while the thread waits), so evaluating it off the wait
// path is sound. Closure waiters (AwaitFunc/ArmFunc) have no bindings and
// are ranked rank(nil).
//
// Priority can starve low-ranked waiters by design; monitors account for
// it (Stats.Starved, Stats.MaxWaitNs) rather than preventing it.
func Priority(rank func(binds map[string]int64) int64) Policy {
	return priority{rank: rank}
}

type priority struct {
	rank func(binds map[string]int64) int64
}

func (priority) Name() string { return "priority" }

func (p priority) Rank(binds map[string]int64) int64 {
	if p.rank == nil {
		return 0
	}
	return p.rank(binds)
}

func (priority) Better(a, b Candidate) bool {
	if a.Rank != b.Rank {
		return a.Rank > b.Rank
	}
	return a.Seq < b.Seq
}
