package preproc

import (
	"errors"
	"strings"
	"testing"
)

// roundTripCorpus collects the sources the formatting tests exercise; the
// fixed-point test runs the full parse→format→parse cycle over all of
// them.
var roundTripCorpus = []string{
	bufferSrc,
	`
monitor   BoundedBuffer ( n int )  {
  var count int;
  var cap int=n

  func Put( k int ){waituntil(count+k<=cap); count+=k}
  func Take(k int) { waituntil(count >= k)
      count -= k }
  func Size() int { return count }
}
`,
	`monitor M(a int, b bool) {
		var x int = a * 2
		var f bool = b
		func G(k int) int {
			y := k + 1
			if x > y {
				x--
			} else if f {
				while x < 10 { x++ }
			} else {
				return 0 - y
			}
			waituntil(x == k || f)
			return x
		}
	}`,
	`monitor M() {
		var x int
		func F() {
			x = 5
			x += 2
			x -= 3
			x++
			x--
			waituntil(x != 0)
			while x > 0 { x -= 1 }
			if x == 0 { x = 1 } else { x = 2 }
			return
		}
	}`,
	`monitor M() {
		var x int
		func F() {
			if x == 0 { x = 1 } else if x == 1 { x = 2 } else if x == 2 { x = 3 } else { x = 0 }
		}
	}`,
	`monitor A() { var x int } monitor B() { var y bool }`,
}

// TestFormatParseFixedPoint pins the parser/formatter round trip: for
// every corpus source, formatting reaches a fixed point after one pass
// (parse(format(src)) formats to the same text), and the formatted text
// still checks cleanly when the original did.
func TestFormatParseFixedPoint(t *testing.T) {
	for i, src := range roundTripCorpus {
		once, err := FormatSource(src)
		if err != nil {
			t.Fatalf("corpus[%d]: format: %v", i, err)
		}
		reparsed, err := Parse(once)
		if err != nil {
			t.Fatalf("corpus[%d]: formatted output does not re-parse: %v\n%s", i, err, once)
		}
		twice := Format(reparsed)
		if once != twice {
			t.Errorf("corpus[%d]: not a fixed point:\n--- once ---\n%s--- twice ---\n%s", i, once, twice)
		}
		if _, err := Parse(twice); err != nil {
			t.Errorf("corpus[%d]: second formatting does not re-parse: %v", i, err)
		}
		// Semantic preservation: if the original checks, so must the
		// formatted text, and generation must agree.
		if orig, err := Generate(src, "p"); err == nil {
			viaFormat, err := Generate(once, "p")
			if err != nil {
				t.Errorf("corpus[%d]: formatted source no longer generates: %v", i, err)
			} else if orig != viaFormat {
				t.Errorf("corpus[%d]: generation differs after formatting", i)
			}
		}
	}
}

// TestCheckWaituntilErrorPositions asserts that ill-typed waituntil
// bodies are rejected with the position of the waituntil statement, not
// a position-less error — the compiler surface minisynchc prints.
func TestCheckWaituntilErrorPositions(t *testing.T) {
	cases := []struct {
		name     string
		src      string
		wantLine int
		wantMsg  string
	}{
		{
			name: "bool in arithmetic",
			src: "monitor M() {\n" + // 1
				"\tvar x int\n" + // 2
				"\tvar f bool\n" + // 3
				"\tfunc F() {\n" + // 4
				"\t\twaituntil(x + f > 0)\n" + // 5
				"\t}\n}",
			wantLine: 5,
			wantMsg:  "waituntil:",
		},
		{
			name: "int predicate",
			src: "monitor M() {\n" + // 1
				"\tvar x int\n" + // 2
				"\tfunc F() {\n" + // 3
				"\t\twaituntil(x + 1)\n" + // 4
				"\t}\n}",
			wantLine: 4,
			wantMsg:  "waituntil:",
		},
		{
			name: "undeclared variable",
			src: "monitor M() {\n" + // 1
				"\tvar x int\n" + // 2
				"\tfunc F() {\n" + // 3
				"\t\tx = 1\n" + // 4
				"\t\twaituntil(x >= ghost)\n" + // 5
				"\t}\n}",
			wantLine: 5,
			wantMsg:  "waituntil:",
		},
		{
			name: "bool compared to int",
			src: "monitor M() {\n" + // 1
				"\tvar f bool\n" + // 2
				"\tfunc F(k int) {\n" + // 3
				"\t\twaituntil(f == k)\n" + // 4
				"\t}\n}",
			wantLine: 4,
			wantMsg:  "waituntil:",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog, err := Parse(tc.src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			_, err = Check(prog)
			if err == nil {
				t.Fatal("Check accepted an ill-typed waituntil")
			}
			var perr *Error
			if !errors.As(err, &perr) {
				t.Fatalf("error is %T, want *preproc.Error: %v", err, err)
			}
			if perr.Pos.Line != tc.wantLine {
				t.Errorf("error at line %d, want %d: %v", perr.Pos.Line, tc.wantLine, err)
			}
			if !strings.Contains(err.Error(), tc.wantMsg) {
				t.Errorf("error %q does not mention %q", err, tc.wantMsg)
			}
		})
	}
}
