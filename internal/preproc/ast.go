// Package preproc implements the MiniSynch preprocessor, the repo's analog
// of the paper's JavaCC source translator (Fig. 2): it parses a small
// monitor-class dialect with waituntil statements and emits plain Go code
// that targets the autosynch runtime library, performing the rewriting
// sketched in Figs. 5 and 6 of the paper — a monitor lock around every
// member function, shared variables registered in the constructor, and
// each waituntil(P) turned into an Await call with its local variables
// bound for globalization.
//
// The dialect:
//
//	monitor BoundedBuffer(n int) {
//	    var count int
//	    var cap int = n
//
//	    func Put(k int) {
//	        waituntil(count + k <= cap)
//	        count += k
//	    }
//	    func Take(k int) {
//	        waituntil(count >= k)
//	        count -= k
//	    }
//	    func Size() int {
//	        return count
//	    }
//	}
//
// Statements: var declarations, := short declarations, assignments
// (=, +=, -=, ++, --), waituntil(P), if/else, while, and return.
// Expressions are the predicate language of internal/expr (int and bool,
// no calls). Types are int (Go int64) and bool.
package preproc

import "repro/internal/expr"

// Pos is a source position.
type Pos struct {
	Line, Col int
}

// Program is a parsed MiniSynch source file: one or more monitors.
type Program struct {
	Monitors []*MonitorDecl
}

// MonitorDecl is one monitor class.
type MonitorDecl struct {
	Name   string
	Params []Param // constructor parameters
	Vars   []*VarDecl
	Funcs  []*FuncDecl
	Pos    Pos
}

// Param is a constructor or function parameter.
type Param struct {
	Name string
	Type expr.Type
	Pos  Pos
}

// VarDecl is a shared monitor variable, optionally initialized from an
// expression over the constructor parameters.
type VarDecl struct {
	Name string
	Type expr.Type
	Init expr.Node // nil → zero value
	Pos  Pos
}

// FuncDecl is a member function. Result is TypeInvalid for void.
type FuncDecl struct {
	Name   string
	Params []Param
	Result expr.Type
	Body   []Stmt
	Pos    Pos
}

// Stmt is a statement node.
type Stmt interface {
	stmtPos() Pos
	isStmt()
}

// VarStmt declares a function-local variable: var x int = e, or x := e.
type VarStmt struct {
	Name string
	Type expr.Type // inferred for :=
	Init expr.Node // nil → zero value (var form only)
	Pos  Pos
}

// AssignStmt assigns to a shared or local variable. Op is '=' (0), '+' for
// +=, '-' for -=.
type AssignStmt struct {
	Name string
	Op   byte // 0, '+', '-'
	Expr expr.Node
	Pos  Pos
}

// WaitStmt is waituntil(P).
type WaitStmt struct {
	Pred expr.Node
	Pos  Pos
}

// IfStmt is if/else; Else may be nil, a block, or another IfStmt (else if).
type IfStmt struct {
	Cond expr.Node
	Then []Stmt
	Else []Stmt // nil when absent; an else-if chain parses as a 1-stmt slice
	Pos  Pos
}

// WhileStmt is while C { … }.
type WhileStmt struct {
	Cond expr.Node
	Body []Stmt
	Pos  Pos
}

// ReturnStmt returns from a member function. Expr nil for void returns.
type ReturnStmt struct {
	Expr expr.Node
	Pos  Pos
}

func (s *VarStmt) stmtPos() Pos    { return s.Pos }
func (s *AssignStmt) stmtPos() Pos { return s.Pos }
func (s *WaitStmt) stmtPos() Pos   { return s.Pos }
func (s *IfStmt) stmtPos() Pos     { return s.Pos }
func (s *WhileStmt) stmtPos() Pos  { return s.Pos }
func (s *ReturnStmt) stmtPos() Pos { return s.Pos }

func (*VarStmt) isStmt()    {}
func (*AssignStmt) isStmt() {}
func (*WaitStmt) isStmt()   {}
func (*IfStmt) isStmt()     {}
func (*WhileStmt) isStmt()  {}
func (*ReturnStmt) isStmt() {}
