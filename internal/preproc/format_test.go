package preproc

import (
	"strings"
	"testing"
)

func TestFormatCanonical(t *testing.T) {
	src := `
monitor   BoundedBuffer ( n int )  {
  var count int;
  var cap int=n

  func Put( k int ){waituntil(count+k<=cap); count+=k}
  func Take(k int) { waituntil(count >= k)
      count -= k }
  func Size() int { return count }
}
`
	want := `monitor BoundedBuffer(n int) {
	var count int
	var cap int = n

	func Put(k int) {
		waituntil(count + k <= cap)
		count += k
	}

	func Take(k int) {
		waituntil(count >= k)
		count -= k
	}

	func Size() int {
		return count
	}
}
`
	got, err := FormatSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("FormatSource:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestFormatIdempotent(t *testing.T) {
	srcs := []string{
		bufferSrc,
		`monitor M(a int, b bool) {
			var x int = a * 2
			var f bool = b
			func G(k int) int {
				y := k + 1
				if x > y {
					x--
				} else if f {
					while x < 10 { x++ }
				} else {
					return 0 - y
				}
				waituntil(x == k || f)
				return x
			}
		}`,
	}
	for _, src := range srcs {
		once, err := FormatSource(src)
		if err != nil {
			t.Fatalf("format: %v", err)
		}
		twice, err := FormatSource(once)
		if err != nil {
			t.Fatalf("reformat failed on:\n%s\nerror: %v", once, err)
		}
		if once != twice {
			t.Errorf("formatting is not idempotent:\n--- once ---\n%s--- twice ---\n%s", once, twice)
		}
	}
}

func TestFormatRoundTripPreservesSemantics(t *testing.T) {
	// Formatting then generating must produce the same Go code as
	// generating directly — the formatter cannot change meaning.
	direct, err := Generate(bufferSrc, "p")
	if err != nil {
		t.Fatal(err)
	}
	formatted, err := FormatSource(bufferSrc)
	if err != nil {
		t.Fatal(err)
	}
	viaFormat, err := Generate(formatted, "p")
	if err != nil {
		t.Fatal(err)
	}
	if direct != viaFormat {
		t.Errorf("generation differs after formatting:\n--- direct ---\n%s--- via format ---\n%s", direct, viaFormat)
	}
}

func TestFormatStatements(t *testing.T) {
	src := `monitor M() {
		var x int
		func F() {
			x = 5
			x += 2
			x -= 3
			x++
			x--
			waituntil(x != 0)
			while x > 0 { x -= 1 }
			if x == 0 { x = 1 } else { x = 2 }
			return
		}
	}`
	got, err := FormatSource(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"x = 5\n", "x += 2\n", "x -= 3\n", "x++\n", "x--\n",
		"waituntil(x != 0)\n", "while x > 0 {\n",
		"if x == 0 {\n", "} else {\n", "return\n",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("formatted output missing %q:\n%s", want, got)
		}
	}
	// x -= 1 canonicalizes to x--.
	if !strings.Contains(got, "x--\n") {
		t.Errorf("x -= 1 not canonicalized:\n%s", got)
	}
}

func TestFormatElseIfChain(t *testing.T) {
	src := `monitor M() {
		var x int
		func F() {
			if x == 0 { x = 1 } else if x == 1 { x = 2 } else if x == 2 { x = 3 } else { x = 0 }
		}
	}`
	got, err := FormatSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(got, "} else if") != 2 {
		t.Errorf("else-if chain not rendered flat:\n%s", got)
	}
	out, err := FormatSource(got)
	if err != nil || out != got {
		t.Errorf("else-if formatting not idempotent (err=%v):\n%s\nvs\n%s", err, got, out)
	}
}

func TestFormatMultipleMonitors(t *testing.T) {
	src := `monitor A() { var x int } monitor B() { var y bool }`
	got, err := FormatSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got, "monitor A() {") || !strings.Contains(got, "monitor B() {") {
		t.Errorf("monitors missing:\n%s", got)
	}
	if !strings.Contains(got, "}\n\nmonitor B") {
		t.Errorf("no blank line between monitors:\n%s", got)
	}
}
