package preproc

import (
	"repro/internal/dnf"
	"repro/internal/expr"
)

// Checked is the semantic analysis result consumed by the code generator.
type Checked struct {
	Program  *Program
	Monitors []*CheckedMonitor
}

// CheckedMonitor carries the symbol tables of one monitor.
type CheckedMonitor struct {
	Decl   *MonitorDecl
	Shared map[string]expr.Type // shared variable name → type
	Ctor   map[string]expr.Type // constructor parameter name → type
	Funcs  []*CheckedFunc
}

// CheckedFunc carries one member function's local symbol table (parameters
// and every local declared anywhere in the body; MiniSynch has
// function-level scoping, like early C).
type CheckedFunc struct {
	Decl   *FuncDecl
	Locals map[string]expr.Type
}

// Check performs semantic analysis: declaration uniqueness, type checking
// of every expression, assignment compatibility, waituntil predicate
// sanity (boolean, DNF-convertible), and all-paths-return for value
// functions.
func Check(prog *Program) (*Checked, error) {
	out := &Checked{Program: prog}
	seenMonitors := map[string]bool{}
	for _, m := range prog.Monitors {
		if seenMonitors[m.Name] {
			return nil, errAt(m.Pos, "monitor %q declared twice", m.Name)
		}
		seenMonitors[m.Name] = true
		cm, err := checkMonitor(m)
		if err != nil {
			return nil, err
		}
		out.Monitors = append(out.Monitors, cm)
	}
	return out, nil
}

func checkMonitor(m *MonitorDecl) (*CheckedMonitor, error) {
	cm := &CheckedMonitor{
		Decl:   m,
		Shared: map[string]expr.Type{},
		Ctor:   map[string]expr.Type{},
	}
	for _, p := range m.Params {
		if _, dup := cm.Ctor[p.Name]; dup {
			return nil, errAt(p.Pos, "constructor parameter %q declared twice", p.Name)
		}
		cm.Ctor[p.Name] = p.Type
	}
	for _, v := range m.Vars {
		if _, dup := cm.Shared[v.Name]; dup {
			return nil, errAt(v.Pos, "shared variable %q declared twice", v.Name)
		}
		if _, clash := cm.Ctor[v.Name]; clash {
			return nil, errAt(v.Pos, "shared variable %q shadows a constructor parameter", v.Name)
		}
		if v.Init != nil {
			// Initializers run in the constructor: only parameters (and
			// previously declared shared variables) are in scope.
			t, err := expr.TypeCheck(v.Init, func(name string) (expr.Type, bool) {
				if ty, ok := cm.Ctor[name]; ok {
					return ty, true
				}
				ty, ok := cm.Shared[name]
				return ty, ok
			})
			if err != nil {
				return nil, errAt(v.Pos, "initializer of %q: %v", v.Name, err)
			}
			if t != v.Type {
				return nil, errAt(v.Pos, "initializer of %q has type %s, want %s", v.Name, t, v.Type)
			}
		}
		cm.Shared[v.Name] = v.Type
	}
	seenFuncs := map[string]bool{}
	for _, f := range m.Funcs {
		if seenFuncs[f.Name] {
			return nil, errAt(f.Pos, "function %q declared twice", f.Name)
		}
		seenFuncs[f.Name] = true
		cf, err := checkFunc(cm, f)
		if err != nil {
			return nil, err
		}
		cm.Funcs = append(cm.Funcs, cf)
	}
	return cm, nil
}

func checkFunc(cm *CheckedMonitor, f *FuncDecl) (*CheckedFunc, error) {
	cf := &CheckedFunc{Decl: f, Locals: map[string]expr.Type{}}
	for _, p := range f.Params {
		if _, dup := cf.Locals[p.Name]; dup {
			return nil, errAt(p.Pos, "parameter %q declared twice", p.Name)
		}
		if _, clash := cm.Shared[p.Name]; clash {
			return nil, errAt(p.Pos, "parameter %q shadows a shared variable", p.Name)
		}
		cf.Locals[p.Name] = p.Type
	}
	if err := checkStmts(cm, cf, f.Body); err != nil {
		return nil, err
	}
	if f.Result != expr.TypeInvalid && !allPathsReturn(f.Body) {
		return nil, errAt(f.Pos, "function %q: missing return (not all paths return a %s)", f.Name, f.Result)
	}
	return cf, nil
}

// scope resolves a name inside a member function: locals shadow nothing
// (shadowing is rejected at declaration), so the union is unambiguous.
func scope(cm *CheckedMonitor, cf *CheckedFunc) expr.VarTypes {
	return func(name string) (expr.Type, bool) {
		if t, ok := cf.Locals[name]; ok {
			return t, true
		}
		t, ok := cm.Shared[name]
		return t, ok
	}
}

func checkStmts(cm *CheckedMonitor, cf *CheckedFunc, stmts []Stmt) error {
	for _, s := range stmts {
		if err := checkStmt(cm, cf, s); err != nil {
			return err
		}
	}
	return nil
}

func checkStmt(cm *CheckedMonitor, cf *CheckedFunc, s Stmt) error {
	vars := scope(cm, cf)
	switch s := s.(type) {
	case *VarStmt:
		if _, dup := cf.Locals[s.Name]; dup {
			return errAt(s.Pos, "local %q declared twice", s.Name)
		}
		if _, clash := cm.Shared[s.Name]; clash {
			return errAt(s.Pos, "local %q shadows a shared variable", s.Name)
		}
		if s.Init == nil {
			if s.Type == expr.TypeInvalid {
				return errAt(s.Pos, "cannot infer type of %q without initializer", s.Name)
			}
			cf.Locals[s.Name] = s.Type
			return nil
		}
		t, err := expr.TypeCheck(s.Init, vars)
		if err != nil {
			return errAt(s.Pos, "%v", err)
		}
		if s.Type == expr.TypeInvalid {
			s.Type = t // := inference
		} else if s.Type != t {
			return errAt(s.Pos, "initializer of %q has type %s, want %s", s.Name, t, s.Type)
		}
		cf.Locals[s.Name] = s.Type
		return nil
	case *AssignStmt:
		lt, ok := vars(s.Name)
		if !ok {
			return errAt(s.Pos, "assignment to undeclared variable %q", s.Name)
		}
		rt, err := expr.TypeCheck(s.Expr, vars)
		if err != nil {
			return errAt(s.Pos, "%v", err)
		}
		if rt != lt {
			return errAt(s.Pos, "cannot assign %s to %q (%s)", rt, s.Name, lt)
		}
		if s.Op != 0 && lt != expr.TypeInt {
			return errAt(s.Pos, "%c= requires an int variable, %q is %s", s.Op, s.Name, lt)
		}
		return nil
	case *WaitStmt:
		if err := expr.CheckBool(s.Pred, vars); err != nil {
			return errAt(s.Pos, "waituntil: %v", err)
		}
		// Reject predicates the runtime would reject at registration.
		if _, err := dnf.Convert(s.Pred); err != nil {
			return errAt(s.Pos, "waituntil: %v", err)
		}
		return nil
	case *IfStmt:
		if err := expr.CheckBool(s.Cond, vars); err != nil {
			return errAt(s.Pos, "if condition: %v", err)
		}
		if err := checkStmts(cm, cf, s.Then); err != nil {
			return err
		}
		return checkStmts(cm, cf, s.Else)
	case *WhileStmt:
		if err := expr.CheckBool(s.Cond, vars); err != nil {
			return errAt(s.Pos, "while condition: %v", err)
		}
		return checkStmts(cm, cf, s.Body)
	case *ReturnStmt:
		want := cf.Decl.Result
		if s.Expr == nil {
			if want != expr.TypeInvalid {
				return errAt(s.Pos, "function %q must return a %s", cf.Decl.Name, want)
			}
			return nil
		}
		if want == expr.TypeInvalid {
			return errAt(s.Pos, "function %q has no result; unexpected return value", cf.Decl.Name)
		}
		t, err := expr.TypeCheck(s.Expr, vars)
		if err != nil {
			return errAt(s.Pos, "%v", err)
		}
		if t != want {
			return errAt(s.Pos, "return type %s, function %q returns %s", t, cf.Decl.Name, want)
		}
		return nil
	}
	return errAt(s.stmtPos(), "unknown statement kind %T", s)
}

// allPathsReturn reports whether every control path through stmts ends in
// a return.
func allPathsReturn(stmts []Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ReturnStmt:
		return true
	case *IfStmt:
		return last.Else != nil && allPathsReturn(last.Then) && allPathsReturn(last.Else)
	default:
		return false
	}
}
