package preproc

import (
	goparser "go/parser"
	"go/token"
	"strings"
	"testing"

	"repro/internal/expr"
)

const bufferSrc = `
// The paper's Fig. 1 bounded buffer, in MiniSynch.
monitor BoundedBuffer(n int) {
    var count int
    var cap int = n

    func Put(k int) {
        waituntil(count + k <= cap)
        count += k
    }
    func Take(k int) {
        waituntil(count >= k)
        count -= k
    }
    func Size() int {
        return count
    }
}
`

func TestParseBuffer(t *testing.T) {
	prog, err := Parse(bufferSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Monitors) != 1 {
		t.Fatalf("monitors = %d", len(prog.Monitors))
	}
	m := prog.Monitors[0]
	if m.Name != "BoundedBuffer" || len(m.Params) != 1 || len(m.Vars) != 2 || len(m.Funcs) != 3 {
		t.Fatalf("shape: %+v", m)
	}
	if m.Params[0].Name != "n" || m.Params[0].Type != expr.TypeInt {
		t.Errorf("param: %+v", m.Params[0])
	}
	if m.Vars[1].Init == nil || m.Vars[1].Init.String() != "n" {
		t.Errorf("cap initializer: %+v", m.Vars[1])
	}
	put := m.Funcs[0]
	if put.Name != "Put" || put.Result != expr.TypeInvalid || len(put.Body) != 2 {
		t.Fatalf("Put: %+v", put)
	}
	if w, ok := put.Body[0].(*WaitStmt); !ok || w.Pred.String() != "count + k <= cap" {
		t.Errorf("Put first stmt: %+v", put.Body[0])
	}
	size := m.Funcs[2]
	if size.Result != expr.TypeInt {
		t.Errorf("Size result: %v", size.Result)
	}
}

func TestParseStatements(t *testing.T) {
	src := `
monitor M() {
    var x int
    var flag bool

    func F(a int, b bool) int {
        var y int = a + 1
        z := y * 2
        x = z
        x += 1
        x -= 2
        x++
        x--
        flag = b
        if x > 0 {
            waituntil(x == a)
        } else if flag {
            while x < 10 {
                x++
            }
        } else {
            return 0
        }
        return x
    }
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Check(prog); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ src, errPart string }{
		{"", "no monitor declarations"},
		{"monitor {", "expected identifier"},
		{"monitor M() { var }", "expected identifier"},
		{"monitor M() { var x string }", "expected type"},
		{"monitor M() { func f() { x & y } }", "unexpected character"},
		{"monitor M() { func f() { 5 = 3 } }", "expected statement"},
		{"monitor M() { func f() { waituntil x > 0 } }", "expected ("},
		{"monitor M() { stray }", "expected var or func"},
		{"monitor var() {}", "reserved word"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil || !strings.Contains(err.Error(), c.errPart) {
			t.Errorf("Parse(%q) error %v does not contain %q", c.src, err, c.errPart)
		}
	}
}

func TestCheckErrors(t *testing.T) {
	cases := []struct{ src, errPart string }{
		{"monitor M() { var x int var x int }", "declared twice"},
		{"monitor M(n int) { var n int }", "shadows a constructor parameter"},
		{"monitor M() { var x bool = 3 }", "has type int, want bool"},
		{"monitor M() { var x int = y }", "undeclared"},
		{"monitor M() { var x int func f(x int) {} }", "shadows a shared variable"},
		{"monitor M() { var x int func f() { x := 1 } }", "shadows a shared variable"},
		{"monitor M() { func f() { y = 1 } }", "undeclared variable"},
		{"monitor M() { var x int func f() { x = true } }", "cannot assign bool"},
		{"monitor M() { var b bool func f() { b += true } }", "requires an int"},
		{"monitor M(x int, x int) {}", "declared twice"},
		{"monitor M() { var x int func f() { waituntil(x) } }", "must be bool"},
		{"monitor M() { func f() int { var q int = 1 q = 2 } }", "missing return"},
		{"monitor M() { func f() { return 3 } }", "no result"},
		{"monitor M() { func f() int { return true } }", "return type bool"},
		{"monitor M() { func f() int { } }", "missing return"},
		{"monitor M() {} monitor M() {}", "monitor \"M\" declared twice"},
		{"monitor M() { func f() {} func f() {} }", "declared twice"},
		{"monitor M() { func f() { v := 1 v := 2 } }", "declared twice"},
	}
	for _, c := range cases {
		prog, err := Parse(c.src)
		if err != nil {
			t.Errorf("Parse(%q) failed early: %v", c.src, err)
			continue
		}
		_, err = Check(prog)
		if err == nil || !strings.Contains(err.Error(), c.errPart) {
			t.Errorf("Check(%q) error %v does not contain %q", c.src, err, c.errPart)
		}
	}
}

func TestAllPathsReturn(t *testing.T) {
	good := `
monitor M() {
    var x int
    func f(a int) int {
        if a > 0 {
            return 1
        } else {
            return 2
        }
    }
    func g() int {
        while x < 5 {
            x++
        }
        return x
    }
}
`
	prog, err := Parse(good)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Check(prog); err != nil {
		t.Fatal(err)
	}
	bad := `
monitor M() {
    func f(a int) int {
        if a > 0 {
            return 1
        }
    }
}
`
	prog, err = Parse(bad)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Check(prog); err == nil || !strings.Contains(err.Error(), "missing return") {
		t.Errorf("want missing-return error, got %v", err)
	}
}

func TestGenerateBufferCompiles(t *testing.T) {
	code, err := Generate(bufferSrc, "demo")
	if err != nil {
		t.Fatal(err)
	}
	// The generated file must be parseable Go.
	fset := token.NewFileSet()
	if _, err := goparser.ParseFile(fset, "gen.go", code, 0); err != nil {
		t.Fatalf("generated code does not parse: %v\n%s", err, code)
	}
	for _, want := range []string{
		"package demo",
		"type BoundedBuffer struct",
		"func NewBoundedBuffer(n int64) *BoundedBuffer",
		`o.count = o.mon.NewInt("count", 0)`,
		`o.cap = o.mon.NewInt("cap", n)`,
		"o.mon.Enter()",
		"defer o.mon.Exit()",
		`o.mon.Await("count + k <= cap", autosynch.Bind("k", k))`,
		"o.count.Set(o.count.Get() + (k))",
		"func (o *BoundedBuffer) Size() int64",
		"return o.count.Get()",
		"MonitorStats",
	} {
		if !strings.Contains(code, want) {
			t.Errorf("generated code missing %q:\n%s", want, code)
		}
	}
}

func TestGenerateStatements(t *testing.T) {
	src := `
monitor Counter(start int) {
    var value int = start
    var open bool = start > 0

    func Bump(by int) int {
        waituntil(open || value == 0)
        if by > 0 {
            value += by
        } else {
            value -= 0 - by
        }
        while value > 100 {
            value -= 100
        }
        return value
    }
    func Toggle(b bool) {
        open = b
        waituntil(open == b)
    }
}
`
	code, err := Generate(src, "demo")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	if _, err := goparser.ParseFile(fset, "gen.go", code, 0); err != nil {
		t.Fatalf("generated code does not parse: %v\n%s", err, code)
	}
	for _, want := range []string{
		`o.value = o.mon.NewInt("value", start)`,
		`o.open = o.mon.NewBool("open", start > 0)`,
		"for o.value.Get() > 100 {",
		`autosynch.BindBool("b", b)`,
		"if by > 0 {",
		"} else {",
	} {
		if !strings.Contains(code, want) {
			t.Errorf("generated code missing %q:\n%s", want, code)
		}
	}
}

func TestGenerateGoKeywordSanitized(t *testing.T) {
	src := `
monitor M() {
    var type int
    func Get() int {
        return type
    }
}
`
	code, err := Generate(src, "demo")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(code, "type_ *autosynch.IntCell") {
		t.Errorf("keyword field not sanitized:\n%s", code)
	}
	if !strings.Contains(code, `o.mon.NewInt("type", 0)`) {
		t.Errorf("shared name must stay unsanitized for predicates:\n%s", code)
	}
	fset := token.NewFileSet()
	if _, err := goparser.ParseFile(fset, "gen.go", code, 0); err != nil {
		t.Fatalf("generated code does not parse: %v\n%s", err, code)
	}
}

func TestGenerateMultipleMonitors(t *testing.T) {
	src := `
monitor A() { var x int func F() { x = 1 } }
monitor B() { var y bool func G() { y = true } }
`
	code, err := Generate(src, "demo")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(code, "type A struct") || !strings.Contains(code, "type B struct") {
		t.Errorf("missing monitors:\n%s", code)
	}
}

func TestGenerateRejectsBadSource(t *testing.T) {
	if _, err := Generate("monitor M() { func f() { y = 1 } }", "p"); err == nil {
		t.Error("Generate accepted an undeclared variable")
	}
	if _, err := Generate("not minisynch", "p"); err == nil {
		t.Error("Generate accepted garbage")
	}
}
