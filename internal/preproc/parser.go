package preproc

import (
	"fmt"

	"repro/internal/expr"
)

// Error is a preprocessor diagnostic with a source position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Pos.Line, e.Pos.Col, e.Msg)
}

func errAt(p Pos, format string, args ...any) error {
	return &Error{Pos: p, Msg: fmt.Sprintf(format, args...)}
}

func tokPos(t expr.Token) Pos { return Pos{Line: t.Line, Col: t.Col} }

// parser wraps the shared expression parser with statement-level grammar.
type parser struct {
	*expr.Parser
}

// Parse parses a MiniSynch source file.
func Parse(src string) (*Program, error) {
	ep, err := expr.NewParser(src)
	if err != nil {
		return nil, err
	}
	p := &parser{Parser: ep}
	prog := &Program{}
	for p.Cur().Kind != expr.EOF {
		m, err := p.monitorDecl()
		if err != nil {
			return nil, err
		}
		prog.Monitors = append(prog.Monitors, m)
	}
	if len(prog.Monitors) == 0 {
		return nil, errAt(tokPos(p.Cur()), "no monitor declarations found")
	}
	return prog, nil
}

// ident consumes an identifier with a specific spelling (soft keyword).
func (p *parser) keyword(word string) error {
	t := p.Cur()
	if t.Kind != expr.Ident || t.Text != word {
		return errAt(tokPos(t), "expected %q, found %s", word, t)
	}
	return p.Advance()
}

func (p *parser) atKeyword(word string) bool {
	t := p.Cur()
	return t.Kind == expr.Ident && t.Text == word
}

func (p *parser) identName() (string, Pos, error) {
	t := p.Cur()
	if t.Kind != expr.Ident {
		return "", tokPos(t), errAt(tokPos(t), "expected identifier, found %s", t)
	}
	if isReserved(t.Text) {
		return "", tokPos(t), errAt(tokPos(t), "%q is a reserved word", t.Text)
	}
	return t.Text, tokPos(t), p.Advance()
}

var reserved = map[string]bool{
	"monitor": true, "var": true, "func": true, "waituntil": true,
	"if": true, "else": true, "while": true, "return": true,
	"int": true, "bool": true,
}

func isReserved(s string) bool { return reserved[s] }

func (p *parser) typeName() (expr.Type, error) {
	t := p.Cur()
	if t.Kind == expr.Ident {
		switch t.Text {
		case "int":
			return expr.TypeInt, p.Advance()
		case "bool":
			return expr.TypeBool, p.Advance()
		}
	}
	return expr.TypeInvalid, errAt(tokPos(t), "expected type (int or bool), found %s", t)
}

func (p *parser) monitorDecl() (*MonitorDecl, error) {
	pos := tokPos(p.Cur())
	if err := p.keyword("monitor"); err != nil {
		return nil, err
	}
	name, _, err := p.identName()
	if err != nil {
		return nil, err
	}
	m := &MonitorDecl{Name: name, Pos: pos}
	if m.Params, err = p.paramList(); err != nil {
		return nil, err
	}
	if _, err := p.Expect(expr.LBrace); err != nil {
		return nil, err
	}
	for p.Cur().Kind != expr.RBrace {
		switch {
		case p.atKeyword("var"):
			v, err := p.varDecl()
			if err != nil {
				return nil, err
			}
			m.Vars = append(m.Vars, v)
		case p.atKeyword("func"):
			f, err := p.funcDecl()
			if err != nil {
				return nil, err
			}
			m.Funcs = append(m.Funcs, f)
		default:
			return nil, errAt(tokPos(p.Cur()), "expected var or func declaration, found %s", p.Cur())
		}
	}
	return m, p.Advance() // consume }
}

func (p *parser) paramList() ([]Param, error) {
	if _, err := p.Expect(expr.LParen); err != nil {
		return nil, err
	}
	var params []Param
	for p.Cur().Kind != expr.RParen {
		if len(params) > 0 {
			if _, err := p.Expect(expr.Comma); err != nil {
				return nil, err
			}
		}
		name, pos, err := p.identName()
		if err != nil {
			return nil, err
		}
		typ, err := p.typeName()
		if err != nil {
			return nil, err
		}
		params = append(params, Param{Name: name, Type: typ, Pos: pos})
	}
	return params, p.Advance() // consume )
}

func (p *parser) varDecl() (*VarDecl, error) {
	pos := tokPos(p.Cur())
	if err := p.keyword("var"); err != nil {
		return nil, err
	}
	name, _, err := p.identName()
	if err != nil {
		return nil, err
	}
	typ, err := p.typeName()
	if err != nil {
		return nil, err
	}
	v := &VarDecl{Name: name, Type: typ, Pos: pos}
	if ok, err := p.Got(expr.Eq); err != nil {
		return nil, err
	} else if ok {
		if v.Init, err = p.ParseExpr(); err != nil {
			return nil, err
		}
	}
	p.skipSemis()
	return v, nil
}

func (p *parser) funcDecl() (*FuncDecl, error) {
	pos := tokPos(p.Cur())
	if err := p.keyword("func"); err != nil {
		return nil, err
	}
	name, _, err := p.identName()
	if err != nil {
		return nil, err
	}
	f := &FuncDecl{Name: name, Pos: pos}
	if f.Params, err = p.paramList(); err != nil {
		return nil, err
	}
	if p.Cur().Kind == expr.Ident && (p.Cur().Text == "int" || p.Cur().Text == "bool") {
		if f.Result, err = p.typeName(); err != nil {
			return nil, err
		}
	}
	if f.Body, err = p.block(); err != nil {
		return nil, err
	}
	return f, nil
}

func (p *parser) block() ([]Stmt, error) {
	if _, err := p.Expect(expr.LBrace); err != nil {
		return nil, err
	}
	var stmts []Stmt
	for p.Cur().Kind != expr.RBrace {
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	return stmts, p.Advance() // consume }
}

func (p *parser) skipSemis() {
	for p.Cur().Kind == expr.Semicolon {
		if p.Advance() != nil {
			return
		}
	}
}

func (p *parser) stmt() (Stmt, error) {
	t := p.Cur()
	pos := tokPos(t)
	switch {
	case p.atKeyword("var"):
		v, err := p.varDecl()
		if err != nil {
			return nil, err
		}
		return &VarStmt{Name: v.Name, Type: v.Type, Init: v.Init, Pos: v.Pos}, nil
	case p.atKeyword("waituntil"):
		if err := p.Advance(); err != nil {
			return nil, err
		}
		if _, err := p.Expect(expr.LParen); err != nil {
			return nil, err
		}
		pred, err := p.ParseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.Expect(expr.RParen); err != nil {
			return nil, err
		}
		p.skipSemis()
		return &WaitStmt{Pred: pred, Pos: pos}, nil
	case p.atKeyword("if"):
		return p.ifStmt()
	case p.atKeyword("while"):
		if err := p.Advance(); err != nil {
			return nil, err
		}
		cond, err := p.ParseExpr()
		if err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		p.skipSemis()
		return &WhileStmt{Cond: cond, Body: body, Pos: pos}, nil
	case p.atKeyword("return"):
		if err := p.Advance(); err != nil {
			return nil, err
		}
		r := &ReturnStmt{Pos: pos}
		if p.Cur().Kind != expr.RBrace && p.Cur().Kind != expr.Semicolon {
			var err error
			if r.Expr, err = p.ParseExpr(); err != nil {
				return nil, err
			}
		}
		p.skipSemis()
		return r, nil
	case t.Kind == expr.Ident:
		return p.assignOrShortDecl()
	}
	return nil, errAt(pos, "expected statement, found %s", t)
}

func (p *parser) ifStmt() (Stmt, error) {
	pos := tokPos(p.Cur())
	if err := p.Advance(); err != nil { // consume "if"
		return nil, err
	}
	cond, err := p.ParseExpr()
	if err != nil {
		return nil, err
	}
	then, err := p.block()
	if err != nil {
		return nil, err
	}
	s := &IfStmt{Cond: cond, Then: then, Pos: pos}
	if p.atKeyword("else") {
		if err := p.Advance(); err != nil {
			return nil, err
		}
		if p.atKeyword("if") {
			elif, err := p.ifStmt()
			if err != nil {
				return nil, err
			}
			s.Else = []Stmt{elif}
		} else {
			if s.Else, err = p.block(); err != nil {
				return nil, err
			}
		}
	}
	p.skipSemis()
	return s, nil
}

func (p *parser) assignOrShortDecl() (Stmt, error) {
	name, pos, err := p.identName()
	if err != nil {
		return nil, err
	}
	t := p.Cur()
	switch t.Kind {
	case expr.ColonEq:
		if err := p.Advance(); err != nil {
			return nil, err
		}
		init, err := p.ParseExpr()
		if err != nil {
			return nil, err
		}
		p.skipSemis()
		// Type inferred during checking.
		return &VarStmt{Name: name, Type: expr.TypeInvalid, Init: init, Pos: pos}, nil
	case expr.Eq:
		if err := p.Advance(); err != nil {
			return nil, err
		}
		e, err := p.ParseExpr()
		if err != nil {
			return nil, err
		}
		p.skipSemis()
		return &AssignStmt{Name: name, Op: 0, Expr: e, Pos: pos}, nil
	case expr.PlusEq, expr.MinusEq:
		op := byte('+')
		if t.Kind == expr.MinusEq {
			op = '-'
		}
		if err := p.Advance(); err != nil {
			return nil, err
		}
		e, err := p.ParseExpr()
		if err != nil {
			return nil, err
		}
		p.skipSemis()
		return &AssignStmt{Name: name, Op: op, Expr: e, Pos: pos}, nil
	case expr.PlusPlus, expr.MinusLess:
		op := byte('+')
		if t.Kind == expr.MinusLess {
			op = '-'
		}
		if err := p.Advance(); err != nil {
			return nil, err
		}
		p.skipSemis()
		return &AssignStmt{Name: name, Op: op, Expr: expr.I(1), Pos: pos}, nil
	}
	return nil, errAt(tokPos(t), "expected assignment after %q, found %s", name, t)
}
