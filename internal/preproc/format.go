package preproc

import (
	"fmt"
	"strings"

	"repro/internal/expr"
)

// Format renders a parsed program back to canonical MiniSynch source:
// tab-indented, one statement per line, normalized spacing inside
// expressions. Formatting is idempotent (formatting formatted output is a
// fixed point) and round-trips: the output parses to a structurally
// identical program.
func Format(p *Program) string {
	f := &formatter{}
	for i, m := range p.Monitors {
		if i > 0 {
			f.sb.WriteByte('\n')
		}
		f.monitor(m)
	}
	return f.sb.String()
}

// FormatSource parses and formats MiniSynch source text.
func FormatSource(src string) (string, error) {
	p, err := Parse(src)
	if err != nil {
		return "", err
	}
	return Format(p), nil
}

type formatter struct {
	sb strings.Builder
}

func (f *formatter) pf(format string, args ...any) {
	fmt.Fprintf(&f.sb, format, args...)
}

func typeWord(t expr.Type) string {
	if t == expr.TypeBool {
		return "bool"
	}
	return "int"
}

func formatParams(params []Param) string {
	parts := make([]string, len(params))
	for i, p := range params {
		parts[i] = p.Name + " " + typeWord(p.Type)
	}
	return strings.Join(parts, ", ")
}

func (f *formatter) monitor(m *MonitorDecl) {
	f.pf("monitor %s(%s) {\n", m.Name, formatParams(m.Params))
	for _, v := range m.Vars {
		f.varDecl(v, 1)
	}
	for i, fn := range m.Funcs {
		if i > 0 || len(m.Vars) > 0 {
			f.sb.WriteByte('\n')
		}
		f.fun(fn)
	}
	f.pf("}\n")
}

func (f *formatter) varDecl(v *VarDecl, depth int) {
	f.indent(depth)
	f.pf("var %s %s", v.Name, typeWord(v.Type))
	if v.Init != nil {
		f.pf(" = %s", v.Init.String())
	}
	f.sb.WriteByte('\n')
}

func (f *formatter) fun(fn *FuncDecl) {
	f.indent(1)
	f.pf("func %s(%s)", fn.Name, formatParams(fn.Params))
	if fn.Result != expr.TypeInvalid {
		f.pf(" %s", typeWord(fn.Result))
	}
	f.pf(" {\n")
	f.stmts(fn.Body, 2)
	f.indent(1)
	f.pf("}\n")
}

func (f *formatter) indent(depth int) {
	for i := 0; i < depth; i++ {
		f.sb.WriteByte('\t')
	}
}

func (f *formatter) stmts(stmts []Stmt, depth int) {
	for _, s := range stmts {
		f.stmt(s, depth)
	}
}

func (f *formatter) stmt(s Stmt, depth int) {
	switch s := s.(type) {
	case *VarStmt:
		f.indent(depth)
		if s.Type == expr.TypeInvalid {
			// A := declaration that has not been checked yet keeps its
			// short form; checked programs carry the inferred type but
			// the short form is canonical when there is an initializer.
			f.pf("%s := %s\n", s.Name, s.Init.String())
			return
		}
		if s.Init != nil {
			f.pf("var %s %s = %s\n", s.Name, typeWord(s.Type), s.Init.String())
		} else {
			f.pf("var %s %s\n", s.Name, typeWord(s.Type))
		}
	case *AssignStmt:
		f.indent(depth)
		switch {
		case s.Op == 0:
			f.pf("%s = %s\n", s.Name, s.Expr.String())
		case isOne(s.Expr) && s.Op == '+':
			f.pf("%s++\n", s.Name)
		case isOne(s.Expr) && s.Op == '-':
			f.pf("%s--\n", s.Name)
		default:
			f.pf("%s %c= %s\n", s.Name, s.Op, s.Expr.String())
		}
	case *WaitStmt:
		f.indent(depth)
		f.pf("waituntil(%s)\n", s.Pred.String())
	case *IfStmt:
		f.indent(depth)
		f.pf("if %s {\n", s.Cond.String())
		f.stmts(s.Then, depth+1)
		f.elseChain(s.Else, depth)
		f.indent(depth)
		f.pf("}\n")
	case *WhileStmt:
		f.indent(depth)
		f.pf("while %s {\n", s.Cond.String())
		f.stmts(s.Body, depth+1)
		f.indent(depth)
		f.pf("}\n")
	case *ReturnStmt:
		f.indent(depth)
		if s.Expr != nil {
			f.pf("return %s\n", s.Expr.String())
		} else {
			f.pf("return\n")
		}
	}
}

// elseChain renders else and else-if branches without closing the
// enclosing block (the caller writes the final brace).
func (f *formatter) elseChain(elseStmts []Stmt, depth int) {
	if elseStmts == nil {
		return
	}
	// An else-if chain parses as a single-element else block holding an
	// IfStmt; render it flat.
	if len(elseStmts) == 1 {
		if elif, ok := elseStmts[0].(*IfStmt); ok {
			f.indent(depth)
			f.pf("} else if %s {\n", elif.Cond.String())
			f.stmts(elif.Then, depth+1)
			f.elseChain(elif.Else, depth)
			return
		}
	}
	f.indent(depth)
	f.pf("} else {\n")
	f.stmts(elseStmts, depth+1)
}

func isOne(n expr.Node) bool {
	lit, ok := n.(expr.IntLit)
	return ok && lit.Value == 1
}
