package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/testutil"
)

// guardFixture is one guarded region per mechanism over equivalent
// state: a token counter the guard waits on (tokens > 0). deposit adds a
// token from outside; take consumes one from inside a guard body (the
// monitor is held there); tokens reads the counter (call under the
// monitor, e.g. inside a body).
type guardFixture struct {
	name    string
	mech    Mechanism
	guard   *Guard // tokens > 0
	deposit func()
	take    func()
	tokens  func() int64
}

func guardFixtures() []*guardFixture {
	var fs []*guardFixture

	m := New()
	tok := m.NewInt("tokens", 0)
	fs = append(fs, &guardFixture{
		name:    "monitor-pred",
		mech:    m,
		guard:   m.MustCompile("tokens > 0").When(),
		deposit: func() { m.Do(func() { tok.Add(1) }) },
		take:    func() { tok.Add(-1) },
		tokens:  tok.Get,
	})

	m2 := New()
	tok2 := m2.NewInt("tokens", 0)
	fs = append(fs, &guardFixture{
		name:    "monitor-func",
		mech:    m2,
		guard:   m2.WhenFunc(func() bool { return tok2.Get() > 0 }),
		deposit: func() { m2.Do(func() { tok2.Add(1) }) },
		take:    func() { tok2.Add(-1) },
		tokens:  tok2.Get,
	})

	b := NewBaseline()
	var tokB int64
	fs = append(fs, &guardFixture{
		name:    "baseline",
		mech:    b,
		guard:   b.WhenFunc(func() bool { return tokB > 0 }),
		deposit: func() { b.Do(func() { tokB++ }) },
		take:    func() { tokB-- },
		tokens:  func() int64 { return tokB },
	})

	e := NewExplicit()
	hasTok := e.NewCond()
	var tokE int64
	fs = append(fs, &guardFixture{
		name:  "explicit-cond",
		mech:  e,
		guard: hasTok.When(func() bool { return tokE > 0 }),
		deposit: func() {
			e.Do(func() {
				tokE++
				hasTok.Signal()
			})
		},
		take:   func() { tokE-- },
		tokens: func() int64 { return tokE },
	})

	e2 := NewExplicit()
	c2 := e2.NewCond()
	var tokE2 int64
	fs = append(fs, &guardFixture{
		name: "explicit-func",
		mech: e2,
		guard: e2.WhenFunc(func() bool {
			return tokE2 > 0
		}),
		deposit: func() {
			e2.Do(func() {
				tokE2++
				c2.Signal() // any manual signal wakes the generic guard
			})
		},
		take:   func() { tokE2-- },
		tokens: func() int64 { return tokE2 },
	})

	return fs
}

// TestGuardDoConsumesTokens: a consumer loop of Guard.Do against a
// producer, per mechanism; every token is consumed exactly once, the
// body only ever sees the predicate true, and Waiting drains to zero.
func TestGuardDoConsumesTokens(t *testing.T) {
	for _, f := range guardFixtures() {
		f := f
		t.Run(f.name, func(t *testing.T) {
			t.Parallel()
			const rounds = 200
			var consumed int64
			done := make(chan error, 1)
			go func() {
				for i := 0; i < rounds; i++ {
					if err := f.guard.Do(func() {
						if f.tokens() <= 0 {
							panic("guard body ran with predicate false")
						}
						consumed++
						f.take()
					}); err != nil {
						done <- err
						return
					}
				}
				done <- nil
			}()
			for i := 0; i < rounds; i++ {
				f.deposit()
			}
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("guard.Do: %v", err)
				}
			case <-time.After(30 * time.Second):
				t.Fatal("consumer did not finish: lost wake-up")
			}
			if consumed != rounds {
				t.Fatalf("consumed %d of %d", consumed, rounds)
			}
			testutil.WaitFor(t, 5*time.Second, 0, func() bool { return f.mech.Waiting() == 0 },
				"no waiter left registered")
		})
	}
}

// TestGuardTry: the body runs iff the predicate holds right now, and the
// monitor is always released.
func TestGuardTry(t *testing.T) {
	for _, f := range guardFixtures() {
		f := f
		t.Run(f.name, func(t *testing.T) {
			ran := false
			if f.guard.Try(func() { ran = true }) || ran {
				t.Fatal("Try ran the body with the predicate false")
			}
			f.deposit()
			if !f.guard.Try(func() { ran = true; f.take() }) || !ran {
				t.Fatal("Try did not run the body with the predicate true")
			}
			if w := f.mech.Waiting(); w != 0 {
				t.Fatalf("Try left %d waiters registered", w)
			}
		})
	}
}

// TestGuardDoCtx: a done context abandons the wait with the monitor
// released and no waiter leaked; the guard stays reusable afterwards.
func TestGuardDoCtx(t *testing.T) {
	for _, f := range guardFixtures() {
		f := f
		t.Run(f.name, func(t *testing.T) {
			t.Parallel()
			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan error, 1)
			go func() { done <- f.guard.DoCtx(ctx, func() { t.Error("body ran after cancellation") }) }()
			testutil.WaitFor(t, 10*time.Second, 0, func() bool { return f.mech.Waiting() == 1 },
				"guard waiter parked")
			cancel()
			select {
			case err := <-done:
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("DoCtx = %v, want context.Canceled", err)
				}
			case <-time.After(10 * time.Second):
				t.Fatal("DoCtx did not observe cancellation")
			}
			testutil.WaitFor(t, 5*time.Second, 0, func() bool { return f.mech.Waiting() == 0 },
				"abandoned waiter unregistered")
			// The monitor must be free and the guard reusable.
			f.deposit()
			if err := f.guard.DoCtx(context.Background(), func() { f.take() }); err != nil {
				t.Fatalf("DoCtx after cancel: %v", err)
			}
		})
	}
}

// TestGuardPanicSafety: a panicking body must release the monitor on
// every path — Do, DoCtx, Try — for every mechanism. Afterwards the
// monitor is usable and no waiter is left registered.
func TestGuardPanicSafety(t *testing.T) {
	for _, f := range guardFixtures() {
		f := f
		t.Run(f.name, func(t *testing.T) {
			f.deposit()
			boom := func(run func()) (recovered any) {
				defer func() { recovered = recover() }()
				run()
				return nil
			}
			if r := boom(func() { _ = f.guard.Do(func() { panic("do") }) }); r != "do" {
				t.Fatalf("Do panic = %v, want to propagate", r)
			}
			if r := boom(func() { _ = f.guard.DoCtx(context.Background(), func() { panic("doctx") }) }); r != "doctx" {
				t.Fatalf("DoCtx panic = %v, want to propagate", r)
			}
			if r := boom(func() { _ = f.guard.Try(func() { panic("try") }) }); r != "try" {
				t.Fatalf("Try panic = %v, want to propagate", r)
			}
			// The monitor must not be left held or dirty: a full guarded
			// round trip still works and nothing stays registered.
			if !f.guard.Try(func() { f.take() }) {
				t.Fatal("monitor unusable after body panics")
			}
			if w := f.mech.Waiting(); w != 0 {
				t.Fatalf("%d waiters left after panics", w)
			}
		})
	}
}

// TestMechanismDoPanicSafety: the plain Do of every mechanism must
// release the monitor when f panics — the same audit as the guard paths,
// at the Mechanism level.
func TestMechanismDoPanicSafety(t *testing.T) {
	mechs := []struct {
		name string
		mech Mechanism
	}{
		{"monitor", New()},
		{"baseline", NewBaseline()},
		{"explicit", NewExplicit()},
	}
	for _, tc := range mechs {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			r := func() (r any) {
				defer func() { r = recover() }()
				tc.mech.Do(func() { panic("body") })
				return nil
			}()
			if r != "body" {
				t.Fatalf("panic = %v, want to propagate", r)
			}
			// The monitor must be free: a plain round trip succeeds.
			done := make(chan struct{})
			go func() { tc.mech.Do(func() {}); close(done) }()
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				t.Fatal("monitor left held after Do body panic")
			}
		})
	}
}

// TestGuardErrSurfacesBeforeParking: malformed bindings and never-true
// globalizations are *PredicateError values carried by the guard, and
// Do/DoCtx/Try never park on them — the PR 2 error contract, pulled
// forward to guard construction.
func TestGuardErrSurfacesBeforeParking(t *testing.T) {
	m := New()
	m.NewInt("count", 0)
	p := m.MustCompile("count >= num")

	bad := m.When(p) // missing binding
	var perr *PredicateError
	if err := bad.Err(); err == nil || !errors.As(err, &perr) {
		t.Fatalf("Err = %v, want *PredicateError", bad.Err())
	}
	if err := bad.Do(func() { t.Error("body ran") }); !errors.As(err, &perr) {
		t.Fatalf("Do = %v, want *PredicateError", err)
	}
	if err := bad.DoCtx(context.Background(), func() { t.Error("body ran") }); !errors.As(err, &perr) {
		t.Fatalf("DoCtx = %v, want *PredicateError", err)
	}
	if bad.Try(func() { t.Error("body ran") }) {
		t.Fatal("Try succeeded on a malformed guard")
	}

	if err := m.When(p, BindInt("num", 1), BindInt("num", 2)).Err(); err == nil || !errors.As(err, &perr) {
		t.Fatalf("duplicate binding Err = %v", err)
	}
	if err := m.When(p, BindBool("num", true)).Err(); err == nil || !errors.As(err, &perr) {
		t.Fatalf("mistyped binding Err = %v", err)
	}
	if err := m.When(p, BindInt("num", 1), BindInt("other", 2)).Err(); err == nil || !errors.As(err, &perr) {
		t.Fatalf("unknown binding Err = %v", err)
	}

	if err := m.When(m.MustCompile("num < num"), BindInt("num", 1)).Err(); !errors.Is(err, ErrNeverTrue) {
		t.Fatalf("never-true Err = %v, want ErrNeverTrue", err)
	}

	other := New()
	other.NewInt("count", 0)
	if err := other.When(p).Err(); err == nil || !errors.As(err, &perr) {
		t.Fatalf("foreign-monitor Err = %v", err)
	}

	var nilP *Predicate
	if err := nilP.When().Err(); err == nil || !errors.As(err, &perr) {
		t.Fatalf("nil-predicate Err = %v", err)
	}
	if err := m.When(nil).Err(); err == nil || !errors.As(err, &perr) {
		t.Fatalf("When(nil) Err = %v", err)
	}

	if w := m.Waiting(); w != 0 {
		t.Fatalf("malformed guards registered %d waiters", w)
	}
}

// TestGuardBindingSnapshot: the guard snapshots its binding values at
// construction, so concurrent waits on the same Predicate with other
// bindings cannot corrupt its bound.
func TestGuardBindingSnapshot(t *testing.T) {
	m := New()
	x := m.NewInt("x", 0)
	p := m.MustCompile("x >= k")
	g3 := m.When(p, BindInt("k", 3))

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := g3.Do(func() {
			if x.Get() < 3 {
				panic("guard body ran before x reached its own bound")
			}
		}); err != nil {
			panic(err)
		}
	}()
	testutil.WaitFor(t, 10*time.Second, 0, func() bool { return m.Waiting() == 1 }, "g3 parked")
	// A competing wait on the same predicate with a smaller k must not
	// drag g3's bound down.
	m.Enter()
	if err := m.AwaitPred(p, BindInt("k", 0)); err != nil {
		t.Fatal(err)
	}
	m.Exit()
	m.Do(func() { x.Set(3) })
	wg.Wait()
	if w := m.Waiting(); w != 0 {
		t.Fatalf("%d waiters left", w)
	}
}

// TestShardedGuardAcrossShards is in the shard package; here we pin that
// a guard constructed from a constant-true globalization (entry folds
// away) still runs its body immediately and leaves nothing registered.
func TestGuardConstantTrue(t *testing.T) {
	m := New()
	m.NewInt("x", 0)
	g := m.When(m.MustCompile("k >= k"), BindInt("k", 7))
	if err := g.Err(); err != nil {
		t.Fatalf("constant-true guard Err = %v", err)
	}
	ran := false
	if err := g.Do(func() { ran = true }); err != nil || !ran {
		t.Fatalf("Do = %v, ran = %v", err, ran)
	}
	if idx, err := Select(g.Then(func() {})); idx != 0 || err != nil {
		t.Fatalf("Select on constant-true guard = %d, %v", idx, err)
	}
	if w := m.Waiting(); w != 0 {
		t.Fatalf("%d waiters left", w)
	}
}
