package core

import (
	"fmt"
	"time"
)

// Stats counts signaling events inside a monitor. All fields are mutated
// under the monitor lock; read a consistent copy with the monitor's Stats
// method. The wake-up counters are the repo's context-switch proxy: every
// wake-up is one unpark/park round trip of a goroutine, playing the role of
// the thread context switches counted in Fig. 15 of the paper.
type Stats struct {
	// Await traffic.
	Awaits   uint64 // Await/AwaitFunc calls
	FastPath uint64 // predicate already true on entry; no wait

	// Signaling.
	Signals    uint64 // single-thread signals issued
	Broadcasts uint64 // signalAll calls issued (baseline/explicit only)

	// Wake-ups observed by waiters.
	Wakeups       uint64 // returns from a condition wait
	FutileWakeups uint64 // wake-ups that found the predicate still false
	Abandons      uint64 // waiters that left early: context cancelled or handle Cancel

	// First-class wait handles (Arm/ArmFunc/Claim).
	Arms         uint64 // handles armed, including arm failures
	Claims       uint64 // successful Claim calls (wait completed, monitor handed off)
	FutileClaims uint64 // claims that found the predicate falsified; handle re-armed

	// Condition-manager work (automatic mechanisms only).
	RelayCalls     uint64 // relaySignal invocations
	PredicateEvals uint64 // globalized predicate evaluations during relay
	TagChecks      uint64 // tag truth tests (hash probe hits and heap roots)
	Registrations  uint64 // new predicate entries built
	Reuses         uint64 // entries reactivated from the inactive list
	Evictions      uint64 // inactive entries dropped by the LRU limit

	// Generated-evaluator dispatch (internal/codegen): which path served
	// each Compile, and how many entries run a generated evaluator.
	GenPreds   uint64 // compiled predicates bound to a registered generated evaluator
	GenMisses  uint64 // compiled predicates with no registration; closure fallback
	GenEntries uint64 // predicate entries built with a generated evaluator

	// Wake policies and deadline waits. A monitor runs one policy, so
	// PolicyWakes aggregated per monitor is the per-policy wake count;
	// experiments comparing policies run one monitor per policy and read
	// it per arm. MaxWaitNs merges by maximum in Add, not by sum.
	PolicyWakes uint64 // signals whose target a configured wake policy picked
	Starved     uint64 // completed waits that exceeded the starvation threshold
	Expired     uint64 // waits and handles that ended at their deadline (ErrDeadline)
	MaxWaitNs   int64  // longest registration-to-completion wait observed

	// Flight recorder (internal/obs). Folded in from the monitor's ring
	// at snapshot time, never incremented per event, so recording costs
	// the hot path nothing beyond the ring write itself. Zero unless the
	// monitor was constructed while a recorder was active.
	ObsEvents uint64 // events published to the monitor's ring
	ObsDrops  uint64 // events dropped by ring slot contention

	// Profiling (populated only with WithProfiling): cumulative
	// nanoseconds, the Table 1 breakdown.
	AwaitNs   int64 // blocked in condition waits
	LockNs    int64 // acquiring the monitor lock in Enter
	RelayNs   int64 // inside relaySignal (search + signal)
	TagMgmtNs int64 // maintaining tag structures (register/activate/deactivate)
}

// ContextSwitches returns the wake-up count, the Fig. 15 quantity.
func (s Stats) ContextSwitches() uint64 { return s.Wakeups }

// String renders a compact single-line summary. Together with Profile it
// covers every field, a contract pinned by TestStatsCompleteness: a field
// that neither renders would silently vanish from experiment output.
func (s Stats) String() string {
	out := fmt.Sprintf(
		"awaits=%d fast=%d signals=%d broadcasts=%d wakeups=%d futile=%d relay=%d evals=%d tags=%d reg=%d reuse=%d",
		s.Awaits, s.FastPath, s.Signals, s.Broadcasts, s.Wakeups, s.FutileWakeups,
		s.RelayCalls, s.PredicateEvals, s.TagChecks, s.Registrations, s.Reuses)
	if s.Abandons > 0 {
		out += fmt.Sprintf(" abandons=%d", s.Abandons)
	}
	if s.Evictions > 0 {
		out += fmt.Sprintf(" evict=%d", s.Evictions)
	}
	if s.Arms > 0 || s.Claims > 0 || s.FutileClaims > 0 {
		out += fmt.Sprintf(" arms=%d claims=%d futile-claims=%d", s.Arms, s.Claims, s.FutileClaims)
	}
	if s.GenPreds > 0 || s.GenMisses > 0 || s.GenEntries > 0 {
		out += fmt.Sprintf(" gen=%d gen-miss=%d gen-entries=%d", s.GenPreds, s.GenMisses, s.GenEntries)
	}
	if s.PolicyWakes > 0 || s.Starved > 0 {
		out += fmt.Sprintf(" policy-wakes=%d starved=%d", s.PolicyWakes, s.Starved)
	}
	if s.Expired > 0 {
		out += fmt.Sprintf(" expired=%d", s.Expired)
	}
	if s.MaxWaitNs > 0 {
		out += fmt.Sprintf(" max-wait=%v", time.Duration(s.MaxWaitNs))
	}
	if s.ObsEvents > 0 || s.ObsDrops > 0 {
		out += fmt.Sprintf(" obs=%d obs-drops=%d", s.ObsEvents, s.ObsDrops)
	}
	return out
}

// Profile renders the Table 1 style time breakdown.
func (s Stats) Profile() string {
	return fmt.Sprintf("await=%v lock=%v relaySignal=%v tagMgr=%v",
		time.Duration(s.AwaitNs), time.Duration(s.LockNs),
		time.Duration(s.RelayNs), time.Duration(s.TagMgmtNs))
}

// Add merges two stats, used when aggregating several monitors of one
// experiment: counters sum field-wise, and MaxWaitNs — a maximum, not a
// total — merges by max, so the aggregate reports the single longest
// wait observed anywhere.
func (s Stats) Add(o Stats) Stats {
	maxWait := s.MaxWaitNs
	if o.MaxWaitNs > maxWait {
		maxWait = o.MaxWaitNs
	}
	return Stats{
		Awaits:         s.Awaits + o.Awaits,
		FastPath:       s.FastPath + o.FastPath,
		Signals:        s.Signals + o.Signals,
		Broadcasts:     s.Broadcasts + o.Broadcasts,
		Wakeups:        s.Wakeups + o.Wakeups,
		FutileWakeups:  s.FutileWakeups + o.FutileWakeups,
		Abandons:       s.Abandons + o.Abandons,
		Arms:           s.Arms + o.Arms,
		Claims:         s.Claims + o.Claims,
		FutileClaims:   s.FutileClaims + o.FutileClaims,
		RelayCalls:     s.RelayCalls + o.RelayCalls,
		PredicateEvals: s.PredicateEvals + o.PredicateEvals,
		TagChecks:      s.TagChecks + o.TagChecks,
		Registrations:  s.Registrations + o.Registrations,
		Reuses:         s.Reuses + o.Reuses,
		Evictions:      s.Evictions + o.Evictions,
		GenPreds:       s.GenPreds + o.GenPreds,
		GenMisses:      s.GenMisses + o.GenMisses,
		GenEntries:     s.GenEntries + o.GenEntries,
		PolicyWakes:    s.PolicyWakes + o.PolicyWakes,
		Starved:        s.Starved + o.Starved,
		Expired:        s.Expired + o.Expired,
		MaxWaitNs:      maxWait,
		ObsEvents:      s.ObsEvents + o.ObsEvents,
		ObsDrops:       s.ObsDrops + o.ObsDrops,
		AwaitNs:        s.AwaitNs + o.AwaitNs,
		LockNs:         s.LockNs + o.LockNs,
		RelayNs:        s.RelayNs + o.RelayNs,
		TagMgmtNs:      s.TagMgmtNs + o.TagMgmtNs,
	}
}
