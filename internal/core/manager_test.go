package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/testutil"
)

// startWaiter parks a goroutine on pred and returns a channel closed when
// it gets through. It returns only once the waiter is actually parked
// (the monitor's Waiting count has grown), so callers can immediately
// drive state changes without racing the registration.
func startWaiter(t *testing.T, m *Monitor, pred string, binds ...Binding) chan struct{} {
	t.Helper()
	before := m.Waiting()
	done := make(chan struct{})
	go func() {
		defer close(done)
		m.Enter()
		if err := m.Await(pred, binds...); err != nil {
			t.Errorf("Await(%q): %v", pred, err)
		}
		m.Exit()
	}()
	testutil.WaitFor(t, 10*time.Second, 0, func() bool { return m.Waiting() > before },
		"waiter on %q parked", pred)
	return done
}

func TestEquivalenceTagSignaling(t *testing.T) {
	// Three waiters on x == 3, x == 6, x == 8 (the §4.3.2 example): setting
	// x to 8 must wake exactly the third, via one O(1) hash probe.
	m := New()
	x := m.NewInt("x", 0)
	d3 := startWaiter(t, m, "x == 3")
	d6 := startWaiter(t, m, "x == 6")
	d8 := startWaiter(t, m, "x == 8")

	m.Do(func() { x.Set(8) })
	waitTimeout(t, 5*time.Second, "x==8 waiter", func() { <-d8 })
	select {
	case <-d3:
		t.Fatal("x==3 waiter released with x=8")
	case <-d6:
		t.Fatal("x==6 waiter released with x=8")
	case <-time.After(30 * time.Millisecond):
	}
	s := m.Stats()
	if s.FutileWakeups != 0 {
		t.Errorf("futile wakeups = %d, want 0 (only the true predicate is signaled)", s.FutileWakeups)
	}
	// Release the rest for cleanliness.
	m.Do(func() { x.Set(3) })
	waitTimeout(t, 5*time.Second, "x==3 waiter", func() { <-d3 })
	m.Do(func() { x.Set(6) })
	waitTimeout(t, 5*time.Second, "x==6 waiter", func() { <-d6 })
}

func TestThresholdHeapSignaling(t *testing.T) {
	// Waiters on x > 5, x >= 8, x < 3: the min-heap prunes both ≥-side
	// predicates with one root check while x stays in [3, 5].
	m := New()
	x := m.NewInt("x", 4)
	dGt5 := startWaiter(t, m, "x > 5")
	dGe8 := startWaiter(t, m, "x >= 8")
	dLt3 := startWaiter(t, m, "x < 3")

	// x = 4 satisfies nobody.
	m.Do(func() { x.Set(4) })
	select {
	case <-dGt5:
		t.Fatal("x>5 released at x=4")
	case <-dGe8:
		t.Fatal("x>=8 released at x=4")
	case <-dLt3:
		t.Fatal("x<3 released at x=4")
	case <-time.After(30 * time.Millisecond):
	}

	m.Do(func() { x.Set(6) }) // only x > 5 becomes true
	waitTimeout(t, 5*time.Second, "x>5 waiter", func() { <-dGt5 })

	m.Do(func() { x.Set(9) }) // x >= 8 true
	waitTimeout(t, 5*time.Second, "x>=8 waiter", func() { <-dGe8 })

	m.Do(func() { x.Set(0) }) // x < 3 true
	waitTimeout(t, 5*time.Second, "x<3 waiter", func() { <-dLt3 })

	if s := m.Stats(); s.FutileWakeups != 0 {
		t.Errorf("futile wakeups = %d, want 0", s.FutileWakeups)
	}
}

func TestThresholdTieBreakGeBeforeGt(t *testing.T) {
	// Fig. 4 ordering detail: with both x > 3 and x ≥ 3 registered, the ≥
	// tag must be checked first, because x > 3 false does not prune x ≥ 3.
	m := New()
	x := m.NewInt("x", 0)
	dGt := startWaiter(t, m, "x > 3")
	dGe := startWaiter(t, m, "x >= 3")
	m.Do(func() { x.Set(3) }) // only ≥ is true
	waitTimeout(t, 5*time.Second, "x>=3 waiter", func() { <-dGe })
	select {
	case <-dGt:
		t.Fatal("x>3 released at x=3")
	case <-time.After(30 * time.Millisecond):
	}
	m.Do(func() { x.Set(4) })
	waitTimeout(t, 5*time.Second, "x>3 waiter", func() { <-dGt })
}

func TestFig4PopAndReinsert(t *testing.T) {
	// The worked example of §4.3.2: P1 = (x ≥ 5) ∧ (y ≠ 1) with tag
	// (x,5,≥); P2 = (x > 7) with tag (x,7,>). With x=9, y=1: the root tag
	// (5,≥) is true but P1 is false; the search must pop it, find P2 true
	// under the next root (7,>), signal P2's waiter, and reinsert the tag.
	m := New()
	x := m.NewInt("x", 0)
	y := m.NewInt("y", 1)
	_ = y
	d1 := startWaiter(t, m, "x >= 5 && y != 1")
	d2 := startWaiter(t, m, "x > 7")

	m.Do(func() { x.Set(9) }) // y stays 1: P1 false, P2 true
	waitTimeout(t, 5*time.Second, "P2 waiter", func() { <-d2 })
	select {
	case <-d1:
		t.Fatal("P1 released while y == 1")
	case <-time.After(30 * time.Millisecond):
	}
	// The popped tag must be back in the heap: making P1 true must work.
	m.Do(func() { y.Set(2) })
	waitTimeout(t, 5*time.Second, "P1 waiter", func() { <-d1 })
	if s := m.Stats(); s.FutileWakeups != 0 {
		t.Errorf("futile wakeups = %d, want 0", s.FutileWakeups)
	}
}

func TestSharedTagAcrossEntries(t *testing.T) {
	// (x == 5 && y > 0) and (x == 5 && y < 0) share the equivalence tag
	// x == 5; the hash probe must check both entries and pick the true one.
	m := New()
	x := m.NewInt("x", 0)
	y := m.NewInt("y", 1)
	dPos := startWaiter(t, m, "x == 5 && y > 0")
	dNeg := startWaiter(t, m, "x == 5 && y < 0")

	m.Do(func() { x.Set(5) }) // y = 1: only the first is true
	waitTimeout(t, 5*time.Second, "y>0 waiter", func() { <-dPos })
	select {
	case <-dNeg:
		t.Fatal("y<0 waiter released with y=1")
	case <-time.After(30 * time.Millisecond):
	}
	m.Do(func() { y.Set(-1); x.Set(5) })
	waitTimeout(t, 5*time.Second, "y<0 waiter", func() { <-dNeg })
}

func TestBoolVarEquivalenceTag(t *testing.T) {
	m := New()
	open := m.NewBool("open", false)
	x := m.NewInt("x", 1)
	done := startWaiter(t, m, "open")
	negDone := startWaiter(t, m, "!open && x == 0")

	m.Do(func() { open.Set(true) })
	waitTimeout(t, 5*time.Second, "open waiter", func() { <-done })
	select {
	case <-negDone:
		t.Fatal("!open waiter released while open")
	case <-time.After(30 * time.Millisecond):
	}
	m.Do(func() { open.Set(false); x.Set(0) })
	waitTimeout(t, 5*time.Second, "!open waiter", func() { <-negDone })
}

func TestDisjunctionAcrossGroups(t *testing.T) {
	// (x ≥ 8) ∨ (y == 3): one entry registered under two different tags in
	// two different shared-expression groups; either route must wake it.
	m := New()
	x := m.NewInt("x", 0)
	y := m.NewInt("y", 0)

	d := startWaiter(t, m, "x >= 8 || y == 3")
	m.Do(func() { y.Set(3) })
	waitTimeout(t, 5*time.Second, "disjunction waiter (y route)", func() { <-d })

	// Reset y first so the second waiter actually parks and must be woken
	// through the x route (with y still 3 it would fast-path instead).
	m.Do(func() { y.Set(0) })
	d = startWaiter(t, m, "x >= 8 || y == 3")
	m.Do(func() { x.Set(8) })
	waitTimeout(t, 5*time.Second, "disjunction waiter (x route)", func() { <-d })
}

func TestNoneTagExhaustiveSearch(t *testing.T) {
	// x != 5 is not taggable; it must still work via the None list.
	m := New()
	x := m.NewInt("x", 5)
	d := startWaiter(t, m, "x != 5")
	m.Do(func() { x.Set(6) })
	waitTimeout(t, 5*time.Second, "x!=5 waiter", func() { <-d })
}

func TestManyWaitersSameEntry(t *testing.T) {
	// Multiple waiters on one canonical predicate share one entry and are
	// released one per satisfying state change.
	m := New()
	tokens := m.NewInt("tokens", 0)
	const n = 10
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.Enter()
			if err := m.Await("tokens > 0"); err != nil {
				t.Error(err)
			}
			tokens.Add(-1)
			m.Exit()
		}()
	}
	waitTimeout(t, 10*time.Second, "token consumers", func() {
		for i := 0; i < n; i++ {
			m.Do(func() { tokens.Add(1) })
		}
		wg.Wait()
	})
	m.Do(func() {
		if v := tokens.Get(); v != 0 {
			t.Errorf("tokens = %d, want 0", v)
		}
	})
}

func TestRelayOnWaitNotJustExit(t *testing.T) {
	// A thread that goes to sleep must first relay: T1 makes P2 true and
	// then waits on P1; T2 (waiting on P2) must be released by T1's
	// pre-wait relay even though T1 never exits.
	m := New()
	a := m.NewInt("a", 0)
	m.NewInt("b", 0)

	d2 := startWaiter(t, m, "a == 1")
	d1 := make(chan struct{})
	go func() {
		defer close(d1)
		m.Enter()
		a.Set(1) // makes P2 true
		if err := m.Await("b == 1"); err != nil {
			t.Error(err)
		}
		m.Exit()
	}()
	waitTimeout(t, 5*time.Second, "P2 waiter released by pre-wait relay", func() { <-d2 })
	// Release T1 too.
	m.Do(func() { m.vars["b"].ic.Set(1) })
	waitTimeout(t, 5*time.Second, "P1 waiter", func() { <-d1 })
}

func TestGroupsCleanedUp(t *testing.T) {
	m := New()
	x := m.NewInt("x", 0)
	d := startWaiter(t, m, "x >= num", BindInt("num", 10))
	if _, _, groups, _ := m.DebugCounts(); groups != 1 {
		t.Errorf("groups = %d while waiting, want 1", groups)
	}
	m.Do(func() { x.Set(10) })
	waitTimeout(t, 5*time.Second, "waiter", func() { <-d })
	// Entry parked: its tag nodes are removed and the group is empty.
	if _, inactive, groups, _ := m.DebugCounts(); groups != 0 || inactive != 1 {
		t.Errorf("groups=%d inactive=%d after wait, want 0/1", groups, inactive)
	}
}

func TestConcurrentDistinctPredicates(t *testing.T) {
	// A mix of equivalence, threshold, and None predicates under load.
	m := New()
	x := m.NewInt("x", 0)
	var wg sync.WaitGroup
	preds := []struct {
		pred  string
		binds func(i int) []Binding
	}{
		{"x == target", func(i int) []Binding { return []Binding{BindInt("target", int64(i))} }},
		{"x >= lo", func(i int) []Binding { return []Binding{BindInt("lo", int64(i))} }},
		{"x != bad && x >= lo2", func(i int) []Binding {
			return []Binding{BindInt("bad", -1), BindInt("lo2", int64(i))}
		}},
	}
	const rounds = 30
	var completed atomic.Int64
	for i := 1; i <= rounds; i++ {
		for _, p := range preds {
			wg.Add(1)
			go func(pred string, binds []Binding) {
				defer wg.Done()
				m.Enter()
				if err := m.Await(pred, binds...); err != nil {
					t.Errorf("Await(%q): %v", pred, err)
				}
				m.Exit()
				completed.Add(1)
			}(p.pred, p.binds(i))
		}
	}
	waitTimeout(t, 20*time.Second, "mixed predicates", func() {
		for v := int64(1); v <= rounds; v++ {
			m.Do(func() { x.Set(v) })
			// x == v is transient: hold it until all three round-v waiters
			// (and every straggler of earlier rounds) have gotten through,
			// so the equivalence waiter cannot miss its only true state.
			testutil.WaitFor(t, 20*time.Second, 0, func() bool {
				return completed.Load() >= 3*v
			}, "round %d waiters released", v)
		}
		wg.Wait()
	})
}

func TestDebugCountsShape(t *testing.T) {
	m := New()
	m.NewInt("x", 0)
	active, inactive, groups, none := m.DebugCounts()
	if active+inactive+groups+none != 0 {
		t.Errorf("fresh monitor counts = %d/%d/%d/%d", active, inactive, groups, none)
	}
}

func TestCanonicalIdentityMergesSpellings(t *testing.T) {
	// x - 2 >= y + 1 and x >= y + 3 globalize to the same canonical
	// predicate and must share one entry (one registration).
	m := New()
	x := m.NewInt("x", 0)
	m.NewInt("y", 0)
	d1 := startWaiter(t, m, "x - 2 >= y + 1")
	d2 := startWaiter(t, m, "x >= y + 3")
	if s := m.Stats(); s.Registrations != 1 {
		t.Errorf("registrations = %d, want 1 (syntax equivalence)", s.Registrations)
	}
	m.Do(func() { x.Set(3) })
	waitTimeout(t, 5*time.Second, "both spellings", func() { <-d1; <-d2 })
}

func TestAwaitErrorDoesNotCorrupt(t *testing.T) {
	m := New()
	x := m.NewInt("x", 0)
	m.Enter()
	if err := m.Await("x > "); err == nil {
		t.Fatal("want parse error")
	}
	m.Exit()
	d := startWaiter(t, m, "x > 0")
	m.Do(func() { x.Set(1) })
	waitTimeout(t, 5*time.Second, "waiter after error", func() { <-d })
}

func TestHeapStressManyKeys(t *testing.T) {
	// 64 distinct threshold keys live in one heap; release in random-ish
	// order and verify each wake-up matches a true predicate.
	m := New()
	x := m.NewInt("x", 0)
	const n = 64
	var wg sync.WaitGroup
	for i := 1; i <= n; i++ {
		wg.Add(1)
		go func(k int64) {
			defer wg.Done()
			m.Enter()
			if err := m.Await("x >= k", BindInt("k", k)); err != nil {
				t.Error(err)
			}
			if x.Get() < k {
				t.Errorf("woke with x=%d < k=%d", x.Get(), k)
			}
			m.Exit()
		}(int64(i))
	}
	// Let every waiter park so the heap really holds all 64 keys, then
	// release monotonically (x >= k stays true once true, so no wake-up
	// can be lost even if a release overtakes a slow waiter).
	testutil.WaitFor(t, 10*time.Second, 0, func() bool { return m.Waiting() == n },
		"all %d threshold waiters parked", n)
	waitTimeout(t, 20*time.Second, "heap stress", func() {
		for v := int64(1); v <= n; v++ {
			m.Do(func() { x.Set(v) })
		}
		wg.Wait()
	})
}

func TestBaselineMonitor(t *testing.T) {
	b := NewBaseline()
	count := 0
	var wg sync.WaitGroup
	const n = 8
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b.Enter()
			b.Await(func() bool { return count > 0 })
			count--
			b.Exit()
		}()
	}
	waitTimeout(t, 10*time.Second, "baseline consumers", func() {
		for i := 0; i < n; i++ {
			b.Do(func() { count++ })
		}
		wg.Wait()
	})
	if count != 0 {
		t.Errorf("count = %d, want 0", count)
	}
	s := b.Stats()
	if s.Broadcasts == 0 {
		t.Error("baseline never broadcast")
	}
	if s.Signals != 0 {
		t.Error("baseline should not use single signals")
	}
}

func TestBaselineFastPath(t *testing.T) {
	b := NewBaseline()
	b.Enter()
	b.Await(func() bool { return true })
	b.Exit()
	if s := b.Stats(); s.FastPath != 1 || s.Wakeups != 0 {
		t.Errorf("stats = %s", s)
	}
}

func TestBaselinePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewBaseline().Exit()
}

func TestExplicitMonitor(t *testing.T) {
	e := NewExplicit()
	notEmpty := e.NewCond()
	notFull := e.NewCond()
	const cap = 4
	queue := 0
	var wg sync.WaitGroup
	const items = 50
	wg.Add(2)
	go func() { // producer
		defer wg.Done()
		for i := 0; i < items; i++ {
			e.Enter()
			notFull.Await(func() bool { return queue < cap })
			queue++
			notEmpty.Signal()
			e.Exit()
		}
	}()
	go func() { // consumer
		defer wg.Done()
		for i := 0; i < items; i++ {
			e.Enter()
			notEmpty.Await(func() bool { return queue > 0 })
			queue--
			notFull.Signal()
			e.Exit()
		}
	}()
	waitTimeout(t, 10*time.Second, "explicit producer/consumer", wg.Wait)
	if queue != 0 {
		t.Errorf("queue = %d, want 0", queue)
	}
	s := e.Stats()
	if s.Signals == 0 {
		t.Error("explicit monitor recorded no signals")
	}
}

func TestExplicitBroadcast(t *testing.T) {
	e := NewExplicit()
	c := e.NewCond()
	released := 0
	var wg sync.WaitGroup
	gate := false
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.Enter()
			c.Await(func() bool { return gate })
			released++
			e.Exit()
		}()
	}
	testutil.WaitFor(t, 10*time.Second, 0, func() bool { return e.Waiting() == 5 },
		"all 5 broadcast waiters parked")
	e.Enter()
	gate = true
	c.Broadcast()
	e.Exit()
	waitTimeout(t, 5*time.Second, "broadcast waiters", wg.Wait)
	if released != 5 {
		t.Errorf("released = %d, want 5", released)
	}
	if s := e.Stats(); s.Broadcasts != 1 || s.Wakeups != 5 {
		t.Errorf("stats = %s", s)
	}
}

func TestExplicitPanics(t *testing.T) {
	check := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	check("exit", func() { NewExplicit().Exit() })
	check("await", func() {
		e := NewExplicit()
		e.NewCond().Await(func() bool { return true })
	})
}

func TestStressAllMechanismsBoundedBuffer(t *testing.T) {
	// The same bounded-buffer workload on all four mechanisms, verifying
	// conservation (everything produced is consumed) and termination.
	const capBuf, producers, consumers, itemsEach = 8, 4, 4, 200

	t.Run("autosynch", func(t *testing.T) {
		runAutoBB(t, New(), capBuf, producers, consumers, itemsEach)
	})
	t.Run("autosynch-t", func(t *testing.T) {
		runAutoBB(t, New(WithoutTagging()), capBuf, producers, consumers, itemsEach)
	})
	t.Run("baseline", func(t *testing.T) {
		b := NewBaseline()
		count := 0
		var produced, consumed int64
		var wg sync.WaitGroup
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < itemsEach; i++ {
					b.Enter()
					b.Await(func() bool { return count < capBuf })
					count++
					produced++
					b.Exit()
				}
			}()
		}
		for c := 0; c < consumers; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < itemsEach; i++ {
					b.Enter()
					b.Await(func() bool { return count > 0 })
					count--
					consumed++
					b.Exit()
				}
			}()
		}
		waitTimeout(t, 30*time.Second, "baseline bb", wg.Wait)
		if produced != consumed || produced != producers*itemsEach {
			t.Errorf("produced=%d consumed=%d", produced, consumed)
		}
	})
	t.Run("explicit", func(t *testing.T) {
		e := NewExplicit()
		notFull := e.NewCond()
		notEmpty := e.NewCond()
		count := 0
		var produced, consumed int64
		var wg sync.WaitGroup
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < itemsEach; i++ {
					e.Enter()
					notFull.Await(func() bool { return count < capBuf })
					count++
					produced++
					notEmpty.Signal()
					e.Exit()
				}
			}()
		}
		for c := 0; c < consumers; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < itemsEach; i++ {
					e.Enter()
					notEmpty.Await(func() bool { return count > 0 })
					count--
					consumed++
					notFull.Signal()
					e.Exit()
				}
			}()
		}
		waitTimeout(t, 30*time.Second, "explicit bb", wg.Wait)
		if produced != consumed || produced != producers*itemsEach {
			t.Errorf("produced=%d consumed=%d", produced, consumed)
		}
	})
}

func runAutoBB(t *testing.T, m *Monitor, capBuf, producers, consumers, itemsEach int) {
	t.Helper()
	count := m.NewInt("count", 0)
	m.NewInt("cap", int64(capBuf))
	var produced, consumed int64
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < itemsEach; i++ {
				m.Enter()
				if err := m.Await("count < cap"); err != nil {
					t.Error(err)
					m.Exit()
					return
				}
				count.Add(1)
				produced++
				m.Exit()
			}
		}()
	}
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < itemsEach; i++ {
				m.Enter()
				if err := m.Await("count > 0"); err != nil {
					t.Error(err)
					m.Exit()
					return
				}
				count.Add(-1)
				consumed++
				m.Exit()
			}
		}()
	}
	waitTimeout(t, 30*time.Second, fmt.Sprintf("bb tagging=%t", m.Tagging()), wg.Wait)
	if produced != consumed || int(produced) != producers*itemsEach {
		t.Errorf("produced=%d consumed=%d want %d", produced, consumed, producers*itemsEach)
	}
	if s := m.Stats(); s.Broadcasts != 0 {
		t.Errorf("broadcasts = %d, want 0", s.Broadcasts)
	}
}
