package core

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCompileOnceAwaitMany(t *testing.T) {
	// The compiled-predicate flow: one Compile per scenario, any number of
	// concurrent waiters binding through the same *Predicate.
	m := New()
	count := m.NewInt("count", 0)
	need, err := m.Compile("count >= num")
	if err != nil {
		t.Fatal(err)
	}
	if got := need.Locals(); len(got) != 1 || got[0] != "num" {
		t.Fatalf("Locals() = %v, want [num]", got)
	}
	if need.Src() != "count >= num" {
		t.Errorf("Src() = %q", need.Src())
	}

	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(n int64) {
			defer wg.Done()
			m.Enter()
			if err := m.AwaitPred(need, BindInt("num", n)); err != nil {
				t.Error(err)
			}
			count.Add(-n)
			m.Exit()
		}(int64(i%4 + 1))
	}
	waitTimeout(t, 10*time.Second, "compiled waiters", func() {
		for j := 0; j < 120; j++ {
			m.Do(func() { count.Add(1) })
		}
		wg.Wait()
	})
	if s := m.Stats(); s.Broadcasts != 0 {
		t.Errorf("broadcasts = %d", s.Broadcasts)
	}
}

func TestCompileSharesCacheWithStringAwait(t *testing.T) {
	m := New()
	m.NewInt("count", 1)
	p := m.MustCompile("count >= num")
	m.Enter()
	if err := m.Await("count >= num", BindInt("num", 1)); err != nil {
		t.Fatal(err)
	}
	m.Exit()
	q, err := m.Compile("count >= num")
	if err != nil {
		t.Fatal(err)
	}
	if p != q {
		t.Error("Compile of the same source returned a distinct *Predicate")
	}
}

func TestPredicateAwaitMethod(t *testing.T) {
	m := New()
	count := m.NewInt("count", 0)
	p := m.MustCompile("count >= 2")
	done := make(chan struct{})
	go func() {
		defer close(done)
		m.Enter()
		if err := p.Await(); err != nil {
			t.Error(err)
		}
		m.Exit()
	}()
	waitParked(t, m, 1)
	m.Do(func() { count.Set(2) })
	waitTimeout(t, 5*time.Second, "p.Await waiter", func() { <-done })
}

func TestAwaitPredBindValidation(t *testing.T) {
	m := New()
	m.NewInt("count", 100) // large: every valid wait takes the fast path
	p := m.MustCompile("count >= a && count >= b")
	m.Enter()
	defer m.Exit()

	cases := []struct {
		name    string
		binds   []Binding
		errPart string // "" → must succeed
	}{
		{"ok", []Binding{BindInt("a", 1), BindInt("b", 2)}, ""},
		{"order-insensitive", []Binding{BindInt("b", 2), BindInt("a", 1)}, ""},
		{"missing all", nil, "neither a shared monitor variable nor bound"},
		{"missing one", []Binding{BindInt("a", 1)}, "b neither a shared"},
		{"duplicate", []Binding{BindInt("a", 1), BindInt("a", 2)}, "duplicate binding"},
		{"unknown", []Binding{BindInt("a", 1), BindInt("z", 2)}, "does not match any local"},
		{"shared name", []Binding{BindInt("a", 1), BindInt("count", 2)}, "shared monitor variable"},
		{"wrong type", []Binding{BindInt("a", 1), BindBool("b", true)}, "has type bool"},
	}
	for _, c := range cases {
		err := m.AwaitPred(p, c.binds...)
		if c.errPart == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.errPart) {
			t.Errorf("%s: error %v does not contain %q", c.name, err, c.errPart)
		}
		var perr *PredicateError
		if !errors.As(err, &perr) {
			t.Errorf("%s: error %T is not a *PredicateError", c.name, err)
		}
	}
}

func TestPredicateErrorShapes(t *testing.T) {
	m := New()
	m.NewInt("count", 0)

	// Compile-time failures.
	for _, src := range []string{"count >=", "count + 1", "a && a > 0"} {
		_, err := m.Compile(src)
		if err == nil {
			t.Errorf("Compile(%q) succeeded", src)
			continue
		}
		var perr *PredicateError
		if !errors.As(err, &perr) {
			t.Errorf("Compile(%q): %T is not a *PredicateError", src, err)
		} else if perr.Src != src {
			t.Errorf("Compile(%q): PredicateError.Src = %q", src, perr.Src)
		}
	}

	// Bind-time and never-true failures, through both entry points.
	// (Compile acquires the monitor itself, so it must run before Enter.)
	p := m.MustCompile("num >= 10")
	m.Enter()
	defer m.Exit()
	for name, err := range map[string]error{
		"string": m.Await("num >= 10", BindInt("num", 5)),
		"pred":   m.AwaitPred(p, BindInt("num", 5)),
	} {
		if !errors.Is(err, ErrNeverTrue) {
			t.Errorf("%s: err = %v, want ErrNeverTrue", name, err)
		}
		var perr *PredicateError
		if !errors.As(err, &perr) {
			t.Errorf("%s: never-true error %T is not a *PredicateError", name, err)
		}
	}
	err := m.AwaitPred(p)
	var perr *PredicateError
	if !errors.As(err, &perr) || errors.Is(err, ErrNeverTrue) {
		t.Errorf("bind arity error = %v; want *PredicateError not wrapping ErrNeverTrue", err)
	}
}

func TestAwaitPredWrongMonitor(t *testing.T) {
	m1 := New()
	m1.NewInt("x", 0)
	m2 := New()
	m2.NewInt("x", 0)
	p := m1.MustCompile("x >= 0")
	m2.Enter()
	defer m2.Exit()
	err := m2.AwaitPred(p)
	if err == nil || !strings.Contains(err.Error(), "different monitor") {
		t.Errorf("err = %v, want different-monitor error", err)
	}
	if err := m2.AwaitPred(nil); err == nil {
		t.Error("AwaitPred(nil) succeeded")
	}
}

func TestBuilderLowersToSameIR(t *testing.T) {
	m := New()
	count := m.NewInt("count", 0)
	capV := m.NewInt("cap", 64)
	stop := m.NewBool("stop", false)

	cases := []struct {
		b   BoolExpr
		src string
	}{
		{count.AtLeast(Local("num")), "count >= num"},
		{count.Expr().Plus(Local("k")).AtMost(capV.Expr()), "count + k <= cap"},
		{Or(count.Expr().Plus(Local("k")).AtMost(capV.Expr()), stop.IsTrue()), "count + k <= cap || stop"},
		{And(count.GreaterThan(Lit(0)), Not(stop.IsTrue())), "count > 0 && !stop"},
		{count.EqualTo(Lit(3)), "count == 3"},
		{count.Expr().Minus(Lit(1)).Times(Lit(2)).NotEqualTo(Local("v")), "(count - 1) * 2 != v"},
		{stop.IsFalse(), "!stop"},
		{count.LessThan(capV.Expr()), "count < cap"},
	}
	for _, c := range cases {
		if got := c.b.Src(); got != c.src {
			t.Errorf("builder rendered %q, want %q", got, c.src)
			continue
		}
		pb, err := m.CompileExpr(c.b)
		if err != nil {
			t.Errorf("CompileExpr(%q): %v", c.src, err)
			continue
		}
		ps, err := m.Compile(c.src)
		if err != nil {
			t.Errorf("Compile(%q): %v", c.src, err)
			continue
		}
		if pb != ps {
			t.Errorf("builder and string forms of %q compiled to distinct predicates", c.src)
		}
	}
}

func TestBuilderScenarioEndToEnd(t *testing.T) {
	// The quickstart workload written entirely with typed builders.
	m := New()
	count := m.NewInt("count", 0)
	capV := m.NewInt("cap", 4)
	hasRoom := m.MustCompileExpr(count.Expr().Plus(Local("k")).AtMost(capV.Expr()))
	hasItems := m.MustCompileExpr(count.AtLeast(Local("num")))

	const items = 60
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < items/2; i++ {
			m.Enter()
			if err := hasRoom.Await(BindInt("k", 2)); err != nil {
				t.Error(err)
			}
			count.Add(2)
			m.Exit()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < items/3; i++ {
			m.Enter()
			if err := hasItems.Await(BindInt("num", 3)); err != nil {
				t.Error(err)
			}
			count.Add(-3)
			m.Exit()
		}
	}()
	waitTimeout(t, 15*time.Second, "builder scenario", func() { wg.Wait() })
	m.Do(func() {
		if count.Get() != 0 {
			t.Errorf("final count = %d", count.Get())
		}
	})
	if s := m.Stats(); s.Broadcasts != 0 {
		t.Errorf("broadcasts = %d", s.Broadcasts)
	}
}

func TestBuilderErrors(t *testing.T) {
	m := New()
	m.NewInt("count", 0)
	if _, err := m.CompileExpr(BoolExpr{}); err == nil {
		t.Error("empty builder predicate compiled")
	}
	var orphan IntCell // not created by NewInt: has no name
	if _, err := m.CompileExpr(orphan.AtLeast(Lit(1))); err == nil {
		t.Error("unnamed-cell predicate compiled")
	}
	// Ill-typed: the same local used as both int and bool.
	bad := And(Local("flag").AtMost(Lit(3)), LocalBool("flag"))
	if _, err := m.CompileExpr(bad); err == nil {
		t.Error("ill-typed builder predicate compiled")
	}
}
