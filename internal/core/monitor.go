package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/expr"
)

// ErrNeverTrue is returned by Await when the globalized predicate folds to
// the constant false: the local bindings make the condition unsatisfiable
// for every possible shared state, so waiting would deadlock the caller.
var ErrNeverTrue = errors.New("autosynch: globalized predicate is constant false")

// Monitor is an automatic-signal monitor. Member-function bodies run
// between Enter and Exit (or inside Do); Await replaces the paper's
// waituntil statement. There are no condition variables and no signal
// calls in the client API — the condition manager signals the appropriate
// thread when a waiter's predicate becomes true (relay signaling, §4.2).
//
// By default the monitor is the full AutoSynch mechanism with predicate
// tagging; construct with WithoutTagging for the AutoSynch-T variant.
type Monitor struct {
	mu    sync.Mutex
	cfg   config
	vars  map[string]*varSlot
	preds map[string]*parsedPred
	cm    *condManager
	in    bool // a thread is inside the monitor (diagnostics only)

	waiting int // goroutines currently parked in Await/AwaitFunc
	stats   Stats
}

// New constructs a monitor.
func New(opts ...Option) *Monitor {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	m := &Monitor{
		cfg:   cfg,
		vars:  map[string]*varSlot{},
		preds: map[string]*parsedPred{},
	}
	m.cm = newCondManager(m)
	return m
}

// NewInt declares a shared integer variable. Declare every shared variable
// before the monitor is used; redeclaring a name panics.
func (m *Monitor) NewInt(name string, init int64) *IntCell {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := &IntCell{v: init}
	m.declare(name, &varSlot{
		typ:  expr.TypeInt,
		get:  func() int64 { return c.v },
		ic:   c,
		name: name,
	})
	return c
}

// NewBool declares a shared boolean variable.
func (m *Monitor) NewBool(name string, init bool) *BoolCell {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := &BoolCell{v: init}
	m.declare(name, &varSlot{
		typ: expr.TypeBool,
		get: func() int64 {
			if c.v {
				return 1
			}
			return 0
		},
		bc:   c,
		name: name,
	})
	return c
}

func (m *Monitor) declare(name string, s *varSlot) {
	if !validVarName(name) {
		panic(fmt.Sprintf("autosynch: invalid shared variable name %q", name))
	}
	if _, dup := m.vars[name]; dup {
		panic(fmt.Sprintf("autosynch: shared variable %q declared twice", name))
	}
	m.vars[name] = s
}

func validVarName(name string) bool {
	if name == "" || name == "true" || name == "false" {
		return false
	}
	n, err := expr.Parse(name)
	if err != nil {
		return false
	}
	_, isVar := n.(expr.Var)
	return isVar
}

// Enter acquires the monitor, like calling a member function of an
// AutoSynch class. Monitors are not reentrant.
func (m *Monitor) Enter() {
	if m.cfg.profile {
		t0 := time.Now()
		m.mu.Lock()
		m.stats.LockNs += time.Since(t0).Nanoseconds()
	} else {
		m.mu.Lock()
	}
	m.in = true
}

// Exit relays a signal to a waiter whose condition has become true (the
// relay signaling rule runs on every monitor exit) and releases the
// monitor.
func (m *Monitor) Exit() {
	if !m.in {
		panic("autosynch: Exit without Enter")
	}
	m.cm.relaySignal()
	m.in = false
	m.mu.Unlock()
}

// Do runs f inside the monitor: Enter, f, Exit.
func (m *Monitor) Do(f func()) {
	m.Enter()
	defer m.Exit()
	f()
}

// Await blocks until the predicate holds — the paper's waituntil(P).
//
// The predicate source may reference the monitor's shared variables and
// any local variables supplied through bindings. Await must be called
// inside the monitor (between Enter and Exit); while the caller waits the
// monitor is released, and when Await returns the caller holds the monitor
// and the predicate is true.
//
// Errors report malformed predicates, binding mismatches, or a globalized
// predicate that is constant false (ErrNeverTrue); no error paths block.
func (m *Monitor) Await(pred string, binds ...Binding) error {
	if !m.in {
		panic("autosynch: Await outside the monitor; call Enter first")
	}
	m.stats.Awaits++
	p, err := m.parsePred(pred, binds)
	if err != nil {
		return err
	}
	if err := p.setBinds(binds); err != nil {
		return err
	}
	if p.fast() {
		m.stats.FastPath++
		return nil
	}
	if p.tmpl != nil {
		// Globalization fast path: precompiled template + key vector.
		return m.awaitTemplate(p)
	}
	// Generic slow path: globalize (Definition 2) by substitution and
	// register the resulting predicate.
	glob, err := p.d.Subst(p.bindEnv())
	if err != nil {
		return predErrf(pred, "globalize: %v", err)
	}
	if glob.IsTrue() {
		// Possible only when folding knows more than the compiled
		// evaluator (e.g. division-by-zero fallback); treat as satisfied.
		m.stats.FastPath++
		return nil
	}
	if glob.IsFalse() {
		return fmt.Errorf("%w: %q with the given bindings", ErrNeverTrue, pred)
	}
	canon := glob.String()
	e, err := m.cm.getEntry(canon, func() (*entry, error) {
		return m.buildEntry(canon, glob, p.isShared())
	})
	if err != nil {
		return err
	}
	m.wait(e)
	return nil
}

// AwaitFunc blocks until the closure predicate returns true. The closure
// is evaluated by other threads while they hold the monitor, so it must
// only read state guarded by this monitor and the caller's own locals
// (which cannot change while it waits — Proposition 1). Closure predicates
// are opaque to tagging and are scanned exhaustively; prefer Await with a
// predicate string where possible.
func (m *Monitor) AwaitFunc(pred func() bool) {
	if !m.in {
		panic("autosynch: AwaitFunc outside the monitor; call Enter first")
	}
	m.stats.Awaits++
	m.stats.PredicateEvals++
	if pred() {
		m.stats.FastPath++
		return
	}
	e := m.funcEntry(pred)
	e.noneIdx = len(m.cm.none)
	m.cm.none = append(m.cm.none, e)
	m.wait(e)
}

// wait is the waituntil loop of Fig. 6: relay a signal to some other
// true-condition waiter, sleep, and on wake-up re-check the predicate.
func (m *Monitor) wait(e *entry) {
	m.cm.addWaiter(e)
	m.waiting++
	for {
		m.cm.relaySignal()
		if m.cfg.profile {
			t0 := time.Now()
			e.cond.Wait()
			m.stats.AwaitNs += time.Since(t0).Nanoseconds()
		} else {
			e.cond.Wait()
		}
		m.stats.Wakeups++
		e.signaled--
		m.cm.pending--
		m.stats.PredicateEvals++
		if e.evalFn() {
			break
		}
		m.stats.FutileWakeups++
	}
	m.waiting--
	m.cm.removeWaiter(e)
	if e.waiters == 0 {
		if e.funcOnly {
			if e.noneIdx >= 0 {
				m.cm.removeNone(e)
			}
		} else {
			m.cm.deactivate(e)
		}
	}
	m.in = true
}

// Stats returns a snapshot of the monitor's counters.
func (m *Monitor) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// ResetStats zeroes the counters (between benchmark warm-up and the
// measured phase).
func (m *Monitor) ResetStats() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats = Stats{}
}

// Waiting returns the number of goroutines currently parked in Await or
// AwaitFunc. The count becomes visible only once the waiter is fully
// registered (it is updated under the monitor lock), so tests can poll it
// to know a waiter has parked instead of sleeping for a guessed duration.
func (m *Monitor) Waiting() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.waiting
}

// Tagging reports whether predicate tagging is enabled (false for the
// AutoSynch-T variant).
func (m *Monitor) Tagging() bool { return m.cfg.tagging }

// DebugCounts returns sizes of the internal structures: active predicate
// entries, inactive (parked) entries, shared-expression groups, and
// None-list length. Intended for tests and the ablation benchmarks.
func (m *Monitor) DebugCounts() (active, inactive, groups, none int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.cm.table), len(m.cm.inactive), len(m.cm.groups), len(m.cm.none)
}

// profileStart returns the phase start time when profiling is on.
func (m *Monitor) profileStart() time.Time {
	if !m.cfg.profile {
		return time.Time{}
	}
	return time.Now()
}

func (m *Monitor) profileEndTag(t0 time.Time) {
	if !m.cfg.profile || t0.IsZero() {
		return
	}
	m.stats.TagMgmtNs += time.Since(t0).Nanoseconds()
}

func (m *Monitor) profileEndRelay(t0 time.Time) {
	if !m.cfg.profile || t0.IsZero() {
		return
	}
	m.stats.RelayNs += time.Since(t0).Nanoseconds()
}
