package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/stats"
)

// ErrNeverTrue is the sentinel cause reported (wrapped in a
// *PredicateError) when the globalized predicate folds to the constant
// false: the local bindings make the condition unsatisfiable for every
// possible shared state, so waiting would deadlock the caller. Test for it
// with errors.Is(err, ErrNeverTrue).
var ErrNeverTrue = errors.New("autosynch: globalized predicate is constant false")

// Monitor is an automatic-signal monitor. Member-function bodies run
// between Enter and Exit (or inside Do); Await replaces the paper's
// waituntil statement. There are no condition variables and no signal
// calls in the client API — the condition manager signals the appropriate
// thread when a waiter's predicate becomes true (relay signaling, §4.2).
//
// By default the monitor is the full AutoSynch mechanism with predicate
// tagging; construct with WithoutTagging for the AutoSynch-T variant.
type Monitor struct {
	mu    sync.Mutex
	cfg   config
	vars  map[string]*varSlot
	preds map[string]*Predicate
	cm    *condManager
	in    bool // a thread is inside the monitor (diagnostics only)

	waiting int // registered waiters: parked Awaits plus armed handles
	stats   Stats

	seq   uint64      // arrival counter stamped on waiters; policy sort key
	wheel *timerWheel // deadline wheel, created on first deadline-aware wait

	// Flight recorder ring, bound once at construction when an obs
	// recorder is active process-wide, nil otherwise. Every event site is
	// gated by a plain nil check of this field — the field is set before
	// the monitor is shared, so no atomics are needed and the disabled
	// path costs one predictable branch.
	rec *obs.Ring

	// Wake-to-claim latency, allocated lazily on the first completed
	// (non-fast-path) wait so monitors that never park stay alloc-free.
	lat *stats.Histogram
}

// New constructs a monitor.
func New(opts ...Option) *Monitor {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	m := &Monitor{
		cfg:   cfg,
		vars:  map[string]*varSlot{},
		preds: map[string]*Predicate{},
	}
	m.cm = newCondManager(m)
	if rec := obs.Active(); rec != nil {
		m.rec = rec.NewRing("monitor")
	}
	return m
}

// NewInt declares a shared integer variable. Declare every shared variable
// before the monitor is used; redeclaring a name panics.
func (m *Monitor) NewInt(name string, init int64) *IntCell {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := &IntCell{v: init, name: name}
	m.declare(name, &varSlot{
		typ:  expr.TypeInt,
		get:  func() int64 { return c.v },
		ic:   c,
		name: name,
	})
	return c
}

// NewBool declares a shared boolean variable.
func (m *Monitor) NewBool(name string, init bool) *BoolCell {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := &BoolCell{v: init, name: name}
	m.declare(name, &varSlot{
		typ: expr.TypeBool,
		get: func() int64 {
			if c.v {
				return 1
			}
			return 0
		},
		bc:   c,
		name: name,
	})
	return c
}

func (m *Monitor) declare(name string, s *varSlot) {
	if !validVarName(name) {
		panic(fmt.Sprintf("autosynch: invalid shared variable name %q", name))
	}
	if _, dup := m.vars[name]; dup {
		panic(fmt.Sprintf("autosynch: shared variable %q declared twice", name))
	}
	m.vars[name] = s
}

func validVarName(name string) bool {
	if name == "" || name == "true" || name == "false" {
		return false
	}
	n, err := expr.Parse(name)
	if err != nil {
		return false
	}
	_, isVar := n.(expr.Var)
	return isVar
}

// Enter acquires the monitor, like calling a member function of an
// AutoSynch class. Monitors are not reentrant.
func (m *Monitor) Enter() {
	if m.cfg.profile {
		t0 := time.Now()
		m.mu.Lock()
		m.stats.LockNs += time.Since(t0).Nanoseconds()
	} else {
		m.mu.Lock()
	}
	if m.rec != nil {
		m.rec.Record(obs.KEnter, 0, 0)
	}
	m.in = true
}

// Exit relays a signal to a waiter whose condition has become true (the
// relay signaling rule runs on every monitor exit) and releases the
// monitor.
func (m *Monitor) Exit() {
	if !m.in {
		panic("autosynch: Exit without Enter")
	}
	if m.rec != nil {
		// A relay issued from a plain exit starts a fresh wake chain: the
		// exiting thread consumed no notification, so any origin left by
		// an earlier consume on this monitor is stale here.
		m.cm.relayOrigin = 0
		m.rec.Record(obs.KExit, 0, 0)
	}
	m.cm.relaySignal()
	m.in = false
	m.mu.Unlock()
}

// Do runs f inside the monitor: Enter, f, Exit.
func (m *Monitor) Do(f func()) {
	m.Enter()
	defer m.Exit()
	f()
}

// Await blocks until the predicate holds — the paper's waituntil(P).
//
// The predicate source may reference the monitor's shared variables and
// any local variables supplied through bindings. Await must be called
// inside the monitor (between Enter and Exit); while the caller waits the
// monitor is released, and when Await returns the caller holds the monitor
// and the predicate is true.
//
// The string form is convenience sugar over the compiled-predicate API: it
// consults the monitor's predicate cache and otherwise compiles on first
// use, so hot loops pay a map lookup per wait. Compile once and use
// AwaitPred (or Predicate.Await) to hoist even that off the wait path.
//
// Errors are *PredicateError values reporting malformed predicates,
// binding mismatches, or a globalized predicate that is constant false
// (errors.Is(err, ErrNeverTrue)); no error paths block.
func (m *Monitor) Await(pred string, binds ...Binding) error {
	return m.await(nil, time.Time{}, pred, binds)
}

// AwaitCtx is Await with cancellation: if ctx is done before the predicate
// becomes true, the waiter is abandoned and AwaitCtx returns ctx.Err().
//
// Like Await, AwaitCtx returns holding the monitor — on cancellation too —
// so the usual Enter/defer-Exit pairing stays valid. An abandoned waiter
// is fully unregistered from the predicate table and the tag structures,
// and relay invariance is preserved: before returning, the abandoning
// thread reconciles any signal that was in flight to it and relays to the
// next waiter whose predicate holds, so no wake-up is lost. Cancellation
// takes priority once observed: a waiter woken by a cancellation returns
// ctx.Err() even if its predicate has just become true.
func (m *Monitor) AwaitCtx(ctx context.Context, pred string, binds ...Binding) error {
	return m.await(ctx, time.Time{}, pred, binds)
}

// AwaitDeadline is Await with an absolute deadline: if the predicate has
// not become true by then, the waiter is abandoned and AwaitDeadline
// returns ErrDeadline. Deadlines are the timer-shaped peer of AwaitCtx —
// same return-holding-the-monitor contract, same unregistration and
// relay-invariance repair, same priority rule (an expiry observed on
// wake-up wins even if the predicate just became true) — but they are
// served by a per-monitor timer wheel instead of a per-wait context, so
// a deadline'd wait costs no extra goroutine. A deadline already in the
// past fails immediately without evaluating the predicate.
func (m *Monitor) AwaitDeadline(deadline time.Time, pred string, binds ...Binding) error {
	return m.await(nil, deadline, pred, binds)
}

// AwaitTimeout is AwaitDeadline with a relative duration.
func (m *Monitor) AwaitTimeout(d time.Duration, pred string, binds ...Binding) error {
	return m.await(nil, time.Now().Add(d), pred, binds)
}

func (m *Monitor) await(ctx context.Context, deadline time.Time, pred string, binds []Binding) error {
	if !m.in {
		panic("autosynch: Await outside the monitor; call Enter first")
	}
	p, err := m.compile(pred)
	if err != nil {
		m.stats.Awaits++
		return err
	}
	return m.awaitPred(ctx, deadline, p, binds)
}

// AwaitPred waits on a predicate compiled with Compile or CompileExpr.
// All analysis was done at compile time; AwaitPred only validates and
// snapshots the bindings, checks the fast path, and enqueues — this is
// the hot-path form of Await.
func (m *Monitor) AwaitPred(p *Predicate, binds ...Binding) error {
	return m.awaitPred(nil, time.Time{}, p, binds)
}

// AwaitPredCtx is AwaitPred with cancellation; see AwaitCtx for the
// abandonment semantics.
func (m *Monitor) AwaitPredCtx(ctx context.Context, p *Predicate, binds ...Binding) error {
	return m.awaitPred(ctx, time.Time{}, p, binds)
}

// AwaitPredDeadline is AwaitPred with an absolute deadline; see
// AwaitDeadline for the expiry semantics.
func (m *Monitor) AwaitPredDeadline(deadline time.Time, p *Predicate, binds ...Binding) error {
	return m.awaitPred(nil, deadline, p, binds)
}

func (m *Monitor) awaitPred(ctx context.Context, deadline time.Time, p *Predicate, binds []Binding) error {
	if !m.in {
		panic("autosynch: Await outside the monitor; call Enter first")
	}
	m.stats.Awaits++
	if p == nil {
		return &PredicateError{Src: "<nil>", Msg: "nil predicate"}
	}
	if p.m != m {
		return predErrf(p.src, "predicate was compiled by a different monitor")
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	if !deadline.IsZero() && !time.Now().Before(deadline) {
		m.stats.Expired++
		return ErrDeadline
	}
	if err := p.setBinds(binds); err != nil {
		return err
	}
	if p.fast() {
		m.stats.FastPath++
		return nil
	}
	e, err := m.entryFor(p)
	if err != nil {
		return err
	}
	if e == nil {
		// Folding knew more than the compiled evaluator (e.g. a
		// division-by-zero fallback); treat as satisfied.
		m.stats.FastPath++
		return nil
	}
	var rank int64
	if e.policy != nil || m.cfg.policy != nil {
		rank = m.rankFor(e, p.localsMap())
	}
	return m.wait(ctx, deadline, e, rank)
}

// entryFor resolves the predicate plus its current bindings to a
// registered entry: the template fast path when the predicate fits the
// template shape, otherwise globalization by substitution (Definition 2).
// A nil entry with a nil error means the globalization folded to true.
// The predicate's per-predicate wake policy, if any, is attached to the
// entry here, so it governs every waiter sharing the entry.
func (m *Monitor) entryFor(p *Predicate) (*entry, error) {
	e, err := m.resolveEntry(p)
	if e != nil && p.policy != nil {
		e.policy = p.policy
	}
	return e, err
}

func (m *Monitor) resolveEntry(p *Predicate) (*entry, error) {
	if p.tmpl != nil {
		return m.templateEntry(p)
	}
	glob, err := p.d.Subst(p.bindEnv())
	if err != nil {
		return nil, predErrf(p.src, "globalize: %v", err)
	}
	if glob.IsTrue() {
		return nil, nil
	}
	if glob.IsFalse() {
		return nil, errNeverTrue(p.src)
	}
	canon := glob.String()
	return m.cm.getEntry(canon, func() (*entry, error) {
		e, err := m.buildEntry(canon, glob, p.isShared())
		if err != nil {
			return nil, err
		}
		// The entry is keyed by the globalized DNF, so the generated
		// evaluator under the frozen bindings computes the same truth
		// function; swap it in for the per-conjunction closures.
		if genEval := p.genEntryEval(); genEval != nil {
			e.evalFn = genEval
			m.stats.GenEntries++
		}
		return e, nil
	})
}

// AwaitFunc blocks until the closure predicate returns true. The closure
// is evaluated by other threads while they hold the monitor, so it must
// only read state guarded by this monitor and the caller's own locals
// (which cannot change while it waits — Proposition 1). Closure predicates
// are opaque to tagging and are scanned exhaustively; prefer Await with a
// predicate string where possible.
func (m *Monitor) AwaitFunc(pred func() bool) {
	_ = m.awaitFunc(nil, time.Time{}, pred)
}

// AwaitFuncCtx is AwaitFunc with cancellation; see AwaitCtx for the
// abandonment semantics.
func (m *Monitor) AwaitFuncCtx(ctx context.Context, pred func() bool) error {
	return m.awaitFunc(ctx, time.Time{}, pred)
}

// AwaitFuncDeadline is AwaitFunc with an absolute deadline; see
// AwaitDeadline for the expiry semantics.
func (m *Monitor) AwaitFuncDeadline(deadline time.Time, pred func() bool) error {
	return m.awaitFunc(nil, deadline, pred)
}

// AwaitFuncTimeout is AwaitFuncDeadline with a relative duration.
func (m *Monitor) AwaitFuncTimeout(d time.Duration, pred func() bool) error {
	return m.awaitFunc(nil, time.Now().Add(d), pred)
}

func (m *Monitor) awaitFunc(ctx context.Context, deadline time.Time, pred func() bool) error {
	if !m.in {
		panic("autosynch: AwaitFunc outside the monitor; call Enter first")
	}
	m.stats.Awaits++
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	if !deadline.IsZero() && !time.Now().Before(deadline) {
		m.stats.Expired++
		return ErrDeadline
	}
	m.stats.PredicateEvals++
	if pred() {
		m.stats.FastPath++
		return nil
	}
	e := m.funcEntry(pred)
	e.noneIdx = len(m.cm.none)
	m.cm.none = append(m.cm.none, e)
	return m.wait(ctx, deadline, e, m.rankFor(e, nil))
}

// wait is the waituntil loop of Fig. 6, expressed over a first-class
// waiter: register a *Wait on the entry, relay a signal to some other
// true-condition waiter, park on the handle's ready channel, and on
// notification consume the signal and re-check the predicate Mesa-style.
// The blocking Await is thus a thin wrapper around the same waiter object
// the handle API exposes; only the parking differs. With a non-nil ctx
// the park is a select against ctx.Done(), and the abandoned waiter
// unregisters itself and restores relay invariance before returning
// ctx.Err(). With a non-zero deadline a wheel item marks the waiter
// expired and notifies it; the expiry is observed on wake-up — before
// the Mesa re-check, so like cancellation it wins a race against the
// predicate becoming true — and unwinds through the same abandon path.
func (m *Monitor) wait(ctx context.Context, deadline time.Time, e *entry, rank int64) error {
	w := newWait(m)
	w.e = e
	w.rank = rank
	m.cm.register(w)
	if !deadline.IsZero() {
		w.timer = m.timers().add(deadline, func() { m.expireWait(w) })
	}
	if m.rec != nil {
		// The pre-park relay continues no one's notification: a fresh
		// chain if it signals (stale origins otherwise survive here only
		// when the prior relay found no true waiter, but keep attribution
		// exact regardless).
		m.cm.relayOrigin = 0
	}

	for {
		m.cm.relaySignal()
		ready := w.ready
		t0 := m.profileStart()
		m.mu.Unlock()
		if ctx == nil {
			<-ready
			m.mu.Lock()
		} else {
			select {
			case <-ready:
				m.mu.Lock()
			case <-ctx.Done():
				m.mu.Lock()
				m.profileEndAwait(t0)
				return m.abandon(w, ctx.Err())
			}
		}
		m.profileEndAwait(t0)
		m.stats.Wakeups++
		if w.expired {
			m.stats.Expired++
			if m.rec != nil {
				m.rec.Record(obs.KExpire, w.seq, 0)
			}
			return m.abandon(w, ErrDeadline)
		}
		m.consumeSignal(w)
		m.stats.PredicateEvals++
		if e.evalFn() {
			break
		}
		m.stats.FutileWakeups++
		if m.rec != nil {
			m.rec.Record(obs.KFutileWake, w.seq, 0)
		}
		m.rearmWaiter(w)
	}
	w.stopTimer()
	if m.rec != nil {
		m.rec.Record(obs.KClaim, w.seq, 0)
	}
	m.observeWaitDone(w)
	m.cm.unregister(w)
	m.retireIfIdle(e)
	m.in = true
	return nil
}

// expireWait runs from the timer wheel when a parked deadline'd wait
// reaches its deadline: mark the waiter expired and wake it; the waiter
// unwinds itself. An unnotified waiter gets a direct notification (not a
// relay signal — no signal is pending on its account); a waiter already
// holding a notification is merely flagged, and the expiry is observed
// when it wakes. A waiter that already completed (idx < 0) is left
// alone — its stop() lost the race to the wheel's sweep, harmlessly.
func (m *Monitor) expireWait(w *Wait) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if w.idx < 0 || w.expired {
		return
	}
	w.expired = true
	if !w.notified {
		m.cm.notify(w)
	}
}

// consumeSignal settles the in-flight-signal accounting when a notified
// waiter proceeds (by wake-up or claim). Runs under the monitor lock.
func (m *Monitor) consumeSignal(w *Wait) {
	if m.rec != nil {
		// The consumer now holds the wake baton: a relay it triggers
		// before re-parking (futile wake, futile claim, abandon) continues
		// this waiter's chain. A consume with no notification in flight
		// continues nothing.
		if w.viaRelay {
			m.cm.relayOrigin = w.seq
		} else {
			m.cm.relayOrigin = 0
		}
	}
	if w.viaRelay {
		w.viaRelay = false
		m.cm.pending--
	}
}

// rearmWaiter returns a still-registered waiter to the signalable pool
// with a fresh ready channel. Only a waiter that consumed a notification
// re-enters the unnotified count — an early Claim re-arms a waiter that
// was never notified, whose registration count still stands. Runs under
// the monitor lock.
func (m *Monitor) rearmWaiter(w *Wait) {
	if w.notified {
		w.e.unnotified++
	}
	w.rearm()
}

// abandon unwinds a waiter whose context was cancelled or whose deadline
// expired, returning err. Called with the monitor lock held. The waiter
// is removed from the entry (and the entry, if now waiterless, from the
// predicate table and tag structures); a signal that was in flight to
// the abandoned waiter is reconciled; and relaySignal runs so the
// signaling chain moves to the next waiter whose predicate holds — relay
// invariance survives the abandonment. Every expiry is also an abandon
// (Expired never exceeds Abandons).
func (m *Monitor) abandon(w *Wait, err error) error {
	m.stats.Abandons++
	if m.rec != nil {
		m.rec.Record(obs.KCancel, w.seq, 0)
	}
	w.stopTimer()
	m.consumeSignal(w)
	m.cm.unregister(w)
	m.retireIfIdle(w.e)
	m.cm.relaySignal()
	m.in = true
	return err
}

// observeWaitDone folds a completing waiter's wait time into the
// fairness counters: MaxWaitNs keeps the longest registration-to-
// completion wait, and Starved counts completions past the configured
// threshold. Runs under the monitor lock; waiters that never registered
// (fast paths, folded-true arms) have since == 0 and are skipped.
func (m *Monitor) observeWaitDone(w *Wait) {
	if w.since == 0 {
		return
	}
	ns := time.Now().UnixNano() - w.since
	if ns > m.stats.MaxWaitNs {
		m.stats.MaxWaitNs = ns
	}
	if m.cfg.starveNs > 0 && ns > m.cfg.starveNs {
		m.stats.Starved++
		if m.rec != nil {
			m.rec.Record(obs.KStarved, w.seq, ns)
		}
	}
	if m.lat == nil {
		m.lat = new(stats.Histogram)
	}
	m.lat.Observe(time.Duration(ns))
}

// rankFor computes a waiter's policy rank once, at registration time:
// the caller's locals cannot change while it waits (Proposition 1), so a
// rank taken from the binding snapshot stays valid for the wait's whole
// lifetime. binds may be nil (closure predicates carry no named locals).
// The per-entry override, when present, is the policy whose Better will
// compare this waiter within its entry, so its Rank is the one captured.
func (m *Monitor) rankFor(e *entry, binds map[string]int64) int64 {
	pol := e.policy
	if pol == nil {
		pol = m.cfg.policy
	}
	if pol == nil {
		return 0
	}
	return pol.Rank(binds)
}

// retireIfIdle parks or discards an entry that no longer has waiters.
func (m *Monitor) retireIfIdle(e *entry) {
	if len(e.waiters) != 0 {
		return
	}
	if e.funcOnly {
		if e.noneIdx >= 0 {
			m.cm.removeNone(e)
		}
		return
	}
	m.cm.deactivate(e)
}

// Stats returns a snapshot of the monitor's counters. The flight-
// recorder fields (ObsEvents/ObsDrops) are folded in from the ring here
// rather than maintained per event, so they survive ResetStats as long
// as the ring does.
func (m *Monitor) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.stats
	if m.rec != nil {
		s.ObsEvents = m.rec.Writes()
		s.ObsDrops = m.rec.Drops()
	}
	return s
}

// WaitLatency returns a copy of the monitor's wake-to-claim latency
// histogram — registration to completion of every non-fast-path wait —
// or nil if no wait has completed.
func (m *Monitor) WaitLatency() *stats.Histogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.lat == nil {
		return nil
	}
	h := *m.lat
	return &h
}

// ResetStats zeroes the counters (between benchmark warm-up and the
// measured phase).
func (m *Monitor) ResetStats() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats = Stats{}
}

// Waiting returns the number of registered waiters: goroutines parked in
// Await or AwaitFunc plus armed, unclaimed handles. The count becomes
// visible only once the waiter is fully registered (it is updated under
// the monitor lock), so tests can poll it to know a waiter has parked —
// and assert it returns to zero to prove no handle leaked.
func (m *Monitor) Waiting() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.waiting
}

// PendingSignals returns the number of relay signals issued and not yet
// consumed by a woken or claiming waiter — the pending count of the
// relay rule (at most 1 under the single-signal discipline). Protocol
// tests observe it to place a schedule precisely: a waiter holding the
// in-flight signal is exactly the window cancellation repair exists for.
func (m *Monitor) PendingSignals() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cm.pending
}

// Tagging reports whether predicate tagging is enabled (false for the
// AutoSynch-T variant).
func (m *Monitor) Tagging() bool { return m.cfg.tagging }

// DebugCounts returns sizes of the internal structures: active predicate
// entries, inactive (parked) entries, shared-expression groups, and
// None-list length. Intended for tests and the ablation benchmarks.
func (m *Monitor) DebugCounts() (active, inactive, groups, none int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.cm.table), len(m.cm.inactive), len(m.cm.groups), len(m.cm.none)
}

// profileStart returns the phase start time when profiling is on.
func (m *Monitor) profileStart() time.Time {
	if !m.cfg.profile {
		return time.Time{}
	}
	return time.Now()
}

func (m *Monitor) profileEndTag(t0 time.Time) {
	if !m.cfg.profile || t0.IsZero() {
		return
	}
	m.stats.TagMgmtNs += time.Since(t0).Nanoseconds()
}

func (m *Monitor) profileEndRelay(t0 time.Time) {
	if !m.cfg.profile || t0.IsZero() {
		return
	}
	m.stats.RelayNs += time.Since(t0).Nanoseconds()
}

func (m *Monitor) profileEndAwait(t0 time.Time) {
	if !m.cfg.profile || t0.IsZero() {
		return
	}
	m.stats.AwaitNs += time.Since(t0).Nanoseconds()
}

// ---------------------------------------------------------------------------
// Select-composable wait handles.

// ArmFunc registers a closure-predicate waiter without blocking and
// returns its handle; it is the Mechanism-interface form of
// Predicate.Arm. Like AwaitFunc, the closure is evaluated by other
// threads under the monitor lock, so it must only read state guarded by
// this monitor and values that cannot change while the handle is armed;
// closure predicates are opaque to tagging and are scanned exhaustively.
//
// ArmFunc acquires the monitor internally: call it outside Enter/Exit.
func (m *Monitor) ArmFunc(pred func() bool) *Wait {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.Arms++
	e := m.funcEntry(pred)
	e.noneIdx = len(m.cm.none)
	m.cm.none = append(m.cm.none, e)
	return m.armEntry(e, m.rankFor(e, nil))
}

// armEntry registers a fresh handle on an entry, delivering an immediate
// notification when the predicate already holds (the non-blocking analog
// of the Await fast path — the claim re-validates anyway). Runs under the
// monitor lock.
func (m *Monitor) armEntry(e *entry, rank int64) *Wait {
	w := newWait(m)
	w.e = e
	w.rank = rank
	m.cm.register(w)
	m.stats.PredicateEvals++
	if e.evalFn() {
		// A free notification: no relay signal is consumed, so other
		// waiters' signaling is unaffected and Claim settles the truth.
		m.cm.notify(w)
	}
	return w
}

// lockWait and unlockWait expose the monitor lock to the generic handle
// methods.
func (m *Monitor) lockWait()   { m.mu.Lock() }
func (m *Monitor) unlockWait() { m.mu.Unlock() }

// timers lazily creates the monitor's deadline wheel. Runs under the
// monitor lock.
func (m *Monitor) timers() *timerWheel {
	if m.wheel == nil {
		m.wheel = newTimerWheel()
	}
	return m.wheel
}

// statExpired counts a handle that ended at its deadline. Runs under the
// monitor lock.
func (m *Monitor) statExpired(w *Wait) {
	m.stats.Expired++
	if m.rec != nil {
		m.rec.Record(obs.KExpire, w.seq, 0)
	}
}

// claimLocked re-validates an armed handle's predicate under the monitor
// lock. On success the waiter is unregistered, the handle is spent, and
// the monitor stays HELD for the caller; on failure the handle is
// re-armed and any relay signal it held is passed onward, so relay
// invariance survives the futile claim.
func (m *Monitor) claimLocked(w *Wait) error {
	if w.e == nil {
		// The globalization folded to constant true at arm time: the
		// predicate holds in every state, no entry was registered.
		m.stats.Claims++
		w.state = waitClaimed
		m.in = true
		return nil
	}
	wasRelay := w.viaRelay
	m.consumeSignal(w)
	m.stats.PredicateEvals++
	if w.e.evalFn() {
		m.stats.Claims++
		w.state = waitClaimed
		if m.rec != nil {
			m.rec.Record(obs.KClaim, w.seq, 0)
		}
		m.observeWaitDone(w)
		m.cm.unregister(w)
		m.retireIfIdle(w.e)
		m.in = true
		return nil
	}
	m.stats.FutileClaims++
	if m.rec != nil {
		m.rec.Record(obs.KFutileClaim, w.seq, 0)
	}
	m.rearmWaiter(w)
	if wasRelay {
		// The falsifying mutation's own exit saw this waiter as signaled
		// and relayed nowhere; now that the orphan is reconciled, move the
		// signaling chain to the next waiter whose predicate holds.
		m.cm.relaySignal()
	}
	return ErrNotReady
}

// cancelLocked unregisters a cancelled handle and restores relay
// invariance, exactly as context abandonment does for a blocking wait.
func (m *Monitor) cancelLocked(w *Wait) {
	m.stats.Abandons++
	if m.rec != nil {
		m.rec.Record(obs.KCancel, w.seq, 0)
	}
	if w.e == nil {
		return
	}
	m.consumeSignal(w)
	m.cm.unregister(w)
	m.retireIfIdle(w.e)
	m.cm.relaySignal()
}

// TryFunc is the non-blocking degenerate case of AwaitFunc: it evaluates
// the closure once inside the monitor and reports whether it holds,
// never parking and never arming.
func (m *Monitor) TryFunc(pred func() bool) bool {
	if !m.in {
		panic("autosynch: TryFunc outside the monitor; call Enter first")
	}
	m.stats.PredicateEvals++
	return pred()
}

// TryAwait is the non-blocking degenerate case of Await: it validates and
// snapshots the bindings and reports whether the predicate holds right
// now, never parking. Like Await it must be called inside the monitor.
func (m *Monitor) TryAwait(pred string, binds ...Binding) (bool, error) {
	if !m.in {
		panic("autosynch: TryAwait outside the monitor; call Enter first")
	}
	p, err := m.compile(pred)
	if err != nil {
		return false, err
	}
	return m.tryPred(p, binds)
}

// TryPred is TryAwait for a compiled predicate; see Predicate.Try.
func (m *Monitor) TryPred(p *Predicate, binds ...Binding) (bool, error) {
	if !m.in {
		panic("autosynch: TryPred outside the monitor; call Enter first")
	}
	return m.tryPred(p, binds)
}

// tryPred validates the predicate and bindings and evaluates once.
// Called under the monitor lock.
func (m *Monitor) tryPred(p *Predicate, binds []Binding) (bool, error) {
	if p == nil {
		return false, &PredicateError{Src: "<nil>", Msg: "nil predicate"}
	}
	if p.m != m {
		return false, predErrf(p.src, "predicate was compiled by a different monitor")
	}
	if err := p.setBinds(binds); err != nil {
		return false, err
	}
	m.stats.PredicateEvals++
	return p.fast(), nil
}
