package core

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/testutil"
)

// deadlineMechs builds one instance of each mechanism for the
// cross-mechanism conformance runs.
func deadlineMechs() []struct {
	name string
	mech Mechanism
} {
	return []struct {
		name string
		mech Mechanism
	}{
		{"autosynch", New()},
		{"autosynch-t", New(WithoutTagging())},
		{"baseline", NewBaseline()},
		{"explicit", NewExplicit()},
	}
}

// TestAwaitDeadlineExpires: on every mechanism, a deadline'd wait on a
// never-true predicate returns ErrDeadline, holding the monitor, fully
// drained, with Expired and Abandons both counted.
func TestAwaitDeadlineExpires(t *testing.T) {
	for _, tc := range deadlineMechs() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			defer testutil.NoLeaks(t, tc.mech)()
			tc.mech.Enter()
			err := tc.mech.AwaitFuncTimeout(5*time.Millisecond, func() bool { return false })
			if !errors.Is(err, ErrDeadline) {
				t.Fatalf("err = %v, want ErrDeadline", err)
			}
			// The wait returned holding the monitor: Exit must not panic.
			tc.mech.Exit()
			s := tc.mech.Stats()
			if s.Expired != 1 {
				t.Errorf("Expired = %d, want 1", s.Expired)
			}
			if s.Abandons != 1 {
				t.Errorf("Abandons = %d, want 1 (every expiry is an abandon)", s.Abandons)
			}
		})
	}
}

// TestAwaitDeadlineAlreadyPassed: a deadline in the past fails before
// the predicate is even consulted — no park, no registration, Expired
// counted without an Abandon (nothing was registered to abandon).
func TestAwaitDeadlineAlreadyPassed(t *testing.T) {
	for _, tc := range deadlineMechs() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			defer testutil.NoLeaks(t, tc.mech)()
			evaluated := false
			tc.mech.Enter()
			err := tc.mech.AwaitFuncDeadline(time.Now().Add(-time.Second), func() bool {
				evaluated = true
				return true
			})
			tc.mech.Exit()
			if !errors.Is(err, ErrDeadline) {
				t.Fatalf("err = %v, want ErrDeadline", err)
			}
			if evaluated {
				t.Error("predicate evaluated despite the deadline having passed")
			}
			s := tc.mech.Stats()
			if s.Expired != 1 || s.Abandons != 0 {
				t.Errorf("Expired = %d Abandons = %d, want 1 and 0", s.Expired, s.Abandons)
			}
		})
	}
}

// TestAwaitDeadlineEligibleCompletes: a deadline'd wait whose predicate
// becomes true well before the deadline completes normally, and the
// timer is disarmed (no Expired, and the wheel goroutine drains — the
// NoLeaks baseline would catch a straggler).
func TestAwaitDeadlineEligibleCompletes(t *testing.T) {
	m := New()
	mt := New(WithoutTagging())
	b := NewBaseline()
	e := NewExplicit()
	side := e.NewCond() // explicit monitors wake generic waiters on a manual signal
	cases := []struct {
		name string
		mech Mechanism
		wake func()
	}{
		{"autosynch", m, func() { m.Do(func() {}) }},
		{"autosynch-t", mt, func() { mt.Do(func() {}) }},
		{"baseline", b, func() { b.Do(func() {}) }},
		{"explicit", e, func() { e.Do(func() { side.Broadcast() }) }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			defer testutil.NoLeaks(t, tc.mech)()
			var flag atomic.Bool
			done := make(chan error, 1)
			go func() {
				tc.mech.Enter()
				err := tc.mech.AwaitFuncTimeout(10*time.Second, func() bool { return flag.Load() })
				tc.mech.Exit()
				done <- err
			}()
			testutil.WaitFor(t, 5*time.Second, 0, func() bool { return tc.mech.Waiting() == 1 },
				"waiter parked on %s", tc.name)
			flag.Store(true)
			tc.wake()
			if err := <-done; err != nil {
				t.Fatalf("err = %v, want nil", err)
			}
			if s := tc.mech.Stats(); s.Expired != 0 {
				t.Errorf("Expired = %d, want 0", s.Expired)
			}
		})
	}
}

// TestWaitHandleDeadline: an armed handle whose deadline passes fires
// Ready, reports ErrDeadline from Claim and Err, and is unregistered
// with the usual repair. On every mechanism.
func TestWaitHandleDeadline(t *testing.T) {
	for _, tc := range deadlineMechs() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			defer testutil.NoLeaks(t, tc.mech)()
			w := tc.mech.ArmFunc(func() bool { return false }).Timeout(5 * time.Millisecond)
			select {
			case <-w.Ready():
			case <-time.After(5 * time.Second):
				t.Fatal("Ready did not fire on expiry")
			}
			if err := w.Claim(); !errors.Is(err, ErrDeadline) {
				t.Fatalf("Claim = %v, want ErrDeadline", err)
			}
			if err := w.Err(); !errors.Is(err, ErrDeadline) {
				t.Fatalf("Err = %v, want ErrDeadline", err)
			}
			if s := tc.mech.Stats(); s.Expired != 1 {
				t.Errorf("Expired = %d, want 1", s.Expired)
			}
		})
	}
}

// TestWaitHandleDeadlineClaimWins: a handle claimed before its (distant)
// deadline disarms the timer; nothing expires afterwards.
func TestWaitHandleDeadlineClaimWins(t *testing.T) {
	m := New()
	defer testutil.NoLeaks(t, m)()
	tokens := m.NewInt("tokens", 1)
	p := m.MustCompile("tokens >= 1")
	w := p.Arm().Deadline(time.Now().Add(10 * time.Second))
	<-w.Ready()
	if err := w.Claim(); err != nil {
		t.Fatalf("Claim = %v", err)
	}
	tokens.Add(-1)
	m.Exit()
	if s := m.Stats(); s.Expired != 0 {
		t.Errorf("Expired = %d, want 0", s.Expired)
	}
}

// TestDeadlineRelayHandoffOnExpiry pins the orphaned-signal repair for
// expiry, the exact shape cancellation repair exists for: an armed
// handle holds the monitor's single in-flight relay signal when its
// deadline fires; the expiry must reconcile the signal and relay onward,
// or the parked second waiter would wait forever on a true predicate.
func TestDeadlineRelayHandoffOnExpiry(t *testing.T) {
	m := New()
	defer testutil.NoLeaks(t, m)()
	tokens := m.NewInt("tokens", 0)
	p := m.MustCompile("tokens >= 1")

	// Handle first: it is the entry's first unnotified waiter, so the
	// relay below addresses it, not the blocking waiter.
	w := p.Arm()
	done := make(chan error, 1)
	go func() {
		m.Enter()
		err := p.Await()
		tokens.Add(-1)
		m.Exit()
		done <- err
	}()
	testutil.WaitFor(t, 5*time.Second, 0, func() bool { return m.Waiting() == 2 },
		"handle and blocking waiter registered")

	m.Do(func() { tokens.Set(1) }) // Exit relays: the signal lands on the handle
	testutil.WaitFor(t, 5*time.Second, 0, func() bool { return m.PendingSignals() == 1 },
		"in-flight signal addressed to the handle")

	// The handle expires while holding the signal. Repair must hand it
	// to the blocking waiter, whose predicate is true.
	w.Deadline(time.Now().Add(time.Millisecond))
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("blocking waiter err = %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocking waiter starved: expiry did not relay the orphaned signal")
	}
	if errors.Is(w.Err(), ErrDeadline) == false {
		t.Errorf("handle Err = %v, want ErrDeadline", w.Err())
	}
	if n := m.PendingSignals(); n != 0 {
		t.Errorf("PendingSignals = %d, want 0", n)
	}
}

// TestAwaitDeadlineExpiryWinsRace: once a blocking waiter is woken by
// its deadline, ErrDeadline is returned even if the predicate has just
// become true — the same priority rule as cancellation, pinned here on
// the monitor path (the predicate turns true after expiry is already
// latched but before the waiter runs).
func TestAwaitDeadlineExpiryWinsRace(t *testing.T) {
	m := New()
	defer testutil.NoLeaks(t, m)()
	tokens := m.NewInt("tokens", 0)
	done := make(chan error, 1)
	go func() {
		m.Enter()
		err := m.AwaitDeadline(time.Now().Add(10*time.Millisecond), "tokens >= 1")
		m.Exit()
		done <- err
	}()
	testutil.WaitFor(t, 5*time.Second, 0, func() bool { return m.Waiting() == 1 }, "waiter parked")
	// Make the predicate true only after expiry has certainly latched.
	testutil.WaitFor(t, 5*time.Second, 0, func() bool { return m.Stats().Expired >= 1 || m.Waiting() == 0 },
		"deadline fired")
	m.Do(func() { tokens.Set(1) })
	err := <-done
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline (expiry latched before the predicate turned true)", err)
	}
}

// TestAwaitPredDeadlineAndStringForms smoke-tests the remaining deadline
// spellings: AwaitDeadline/AwaitTimeout (string), AwaitPredDeadline,
// Predicate.AwaitDeadline, Cond.AwaitDeadline, and the sharded keyed
// forms are covered in their own packages.
func TestAwaitDeadlineSpellings(t *testing.T) {
	m := New()
	defer testutil.NoLeaks(t, m)()
	m.NewInt("tokens", 0)
	p := m.MustCompile("tokens >= n")

	m.Enter()
	if err := m.AwaitTimeout(time.Millisecond, "tokens >= 1"); !errors.Is(err, ErrDeadline) {
		t.Fatalf("AwaitTimeout err = %v", err)
	}
	if err := m.AwaitPredDeadline(time.Now().Add(time.Millisecond), p, BindInt("n", 1)); !errors.Is(err, ErrDeadline) {
		t.Fatalf("AwaitPredDeadline err = %v", err)
	}
	if err := p.AwaitDeadline(time.Now().Add(time.Millisecond), BindInt("n", 1)); !errors.Is(err, ErrDeadline) {
		t.Fatalf("Predicate.AwaitDeadline err = %v", err)
	}
	m.Exit()

	e := NewExplicit()
	defer testutil.NoLeaks(t, e)()
	c := e.NewCond()
	e.Enter()
	if err := c.AwaitTimeout(time.Millisecond, func() bool { return false }); !errors.Is(err, ErrDeadline) {
		t.Fatalf("Cond.AwaitTimeout err = %v", err)
	}
	e.Exit()
}
