package core

import (
	"context"
	"sync"
	"time"
)

// Explicit is the instrumented explicit-signal monitor: a mutex with
// programmer-managed condition variables, the java.util.concurrent
// Lock/Condition analog used as the principal comparison point in the
// paper's evaluation. The programmer associates predicates with conditions
// and must signal the right condition at the right time — exactly the
// burden (and bug source) AutoSynch removes.
type Explicit struct {
	mu      sync.Mutex
	profile bool
	in      bool
	waiting int // goroutines currently parked in Cond.Await or AwaitFunc
	stats   Stats

	// any is the condition behind the Mechanism-interface AwaitFunc: a
	// generic waiter with no condition variable of its own parks here and
	// is woken whenever the program signals or broadcasts any of the
	// monitor's conditions. anyWaiters gates the extra broadcast so
	// signal-heavy workloads that never use AwaitFunc pay nothing.
	any        *sync.Cond
	anyWaiters int
}

// NewExplicit constructs an explicit-signal monitor.
func NewExplicit(opts ...Option) *Explicit {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	e := &Explicit{profile: cfg.profile}
	e.any = sync.NewCond(&e.mu)
	return e
}

// Enter acquires the monitor.
func (e *Explicit) Enter() {
	if e.profile {
		t0 := time.Now()
		e.mu.Lock()
		e.stats.LockNs += time.Since(t0).Nanoseconds()
	} else {
		e.mu.Lock()
	}
	e.in = true
}

// Exit releases the monitor. No signaling happens implicitly.
func (e *Explicit) Exit() {
	if !e.in {
		panic("autosynch: Exit without Enter")
	}
	e.in = false
	e.mu.Unlock()
}

// Do runs f inside the monitor.
func (e *Explicit) Do(f func()) {
	e.Enter()
	defer e.Exit()
	f()
}

// notifyAny wakes the generic AwaitFunc waiters after a manual signal.
func (e *Explicit) notifyAny() {
	if e.anyWaiters > 0 {
		e.any.Broadcast()
	}
}

// AwaitFunc blocks until pred() holds, waking whenever the program signals
// or broadcasts any condition of this monitor. It is the explicit
// monitor's implementation of the Mechanism interface: generic drivers can
// wait without owning a condition variable, while the program's own
// signaling discipline stays manual. A waiter starves if nothing is ever
// signaled — use NewCond and precise signals in real explicit-monitor
// code.
func (e *Explicit) AwaitFunc(pred func() bool) {
	_ = e.awaitAny(nil, pred)
}

// AwaitFuncCtx is AwaitFunc with cancellation; on a done context the
// waiter returns ctx.Err() still holding the monitor.
func (e *Explicit) AwaitFuncCtx(ctx context.Context, pred func() bool) error {
	return e.awaitAny(ctx, pred)
}

func (e *Explicit) awaitAny(ctx context.Context, pred func() bool) error {
	if !e.in {
		panic("autosynch: AwaitFunc outside the monitor; call Enter first")
	}
	e.stats.Awaits++
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	if pred() {
		e.stats.FastPath++
		return nil
	}
	e.anyWaiters++
	defer func() { e.anyWaiters-- }()
	return e.waitLoop(ctx, e.any, pred)
}

// waitLoop is the shared wake/re-check loop for Cond.Await and AwaitFunc,
// with optional context cancellation. Runs (and returns) with the monitor
// lock held.
func (e *Explicit) waitLoop(ctx context.Context, cond *sync.Cond, pred func() bool) error {
	var cw *ctxWaiter
	if ctx != nil && ctx.Done() != nil {
		cw = &ctxWaiter{}
		defer watchCtx(ctx, &e.mu, cw, cond)()
	}
	e.waiting++
	for {
		if e.profile {
			t0 := time.Now()
			cond.Wait()
			e.stats.AwaitNs += time.Since(t0).Nanoseconds()
		} else {
			cond.Wait()
		}
		if cw != nil && cw.cancelled {
			e.stats.Abandons++
			e.waiting--
			e.in = true
			return ctx.Err()
		}
		e.stats.Wakeups++
		if pred() {
			break
		}
		e.stats.FutileWakeups++
	}
	e.waiting--
	e.in = true
	if cw != nil {
		cw.finished = true
	}
	return nil
}

// Stats returns a snapshot of the counters.
func (e *Explicit) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// ResetStats zeroes the counters.
func (e *Explicit) ResetStats() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.stats = Stats{}
}

// Waiting returns the number of goroutines currently parked in Cond.Await
// across all of the monitor's conditions; tests poll it instead of
// sleeping to know waiters have parked.
func (e *Explicit) Waiting() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.waiting
}

// Cond is an explicit condition variable bound to its monitor's lock.
type Cond struct {
	m    *Explicit
	cond *sync.Cond
}

// NewCond creates a condition variable on the monitor.
func (e *Explicit) NewCond() *Cond {
	return &Cond{m: e, cond: sync.NewCond(&e.mu)}
}

// Await blocks until pred() holds, re-checking after every wake-up — the
// standard while-loop idiom around Condition.await.
func (c *Cond) Await(pred func() bool) {
	_ = c.await(nil, pred)
}

// AwaitCtx is Await with cancellation: a waiter whose context is done
// gives up its spot on the condition and returns ctx.Err(), still holding
// the monitor. The cancellation wakes the condition's other waiters too;
// they re-check their predicates and park again, as after any broadcast.
func (c *Cond) AwaitCtx(ctx context.Context, pred func() bool) error {
	return c.await(ctx, pred)
}

func (c *Cond) await(ctx context.Context, pred func() bool) error {
	if !c.m.in {
		panic("autosynch: Cond.Await outside the monitor; call Enter first")
	}
	c.m.stats.Awaits++
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	if pred() {
		c.m.stats.FastPath++
		return nil
	}
	return c.m.waitLoop(ctx, c.cond, pred)
}

// Signal wakes one thread waiting on the condition.
func (c *Cond) Signal() {
	c.m.stats.Signals++
	c.cond.Signal()
	c.m.notifyAny()
}

// Broadcast wakes every thread waiting on the condition (signalAll).
func (c *Cond) Broadcast() {
	c.m.stats.Broadcasts++
	c.cond.Broadcast()
	c.m.notifyAny()
}
