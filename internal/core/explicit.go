package core

import (
	"context"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/stats"
)

// Explicit is the instrumented explicit-signal monitor: a mutex with
// programmer-managed condition variables, the java.util.concurrent
// Lock/Condition analog used as the principal comparison point in the
// paper's evaluation. The programmer associates predicates with conditions
// and must signal the right condition at the right time — exactly the
// burden (and bug source) AutoSynch removes.
//
// Blocking waits park on each condition's sync.Cond exactly as the
// comparison point demands; armed handles (Cond.Arm, ArmFunc) ride
// alongside on per-condition waiter lists whose channels Signal and
// Broadcast also notify, so explicit monitors offer the full Mechanism
// handle surface without perturbing the measured signaling discipline.
type Explicit struct {
	mu      sync.Mutex
	profile bool
	in      bool
	waiting int // registered waiters: parked waits plus armed handles
	stats   Stats

	// any is the condition behind the Mechanism-interface AwaitFunc and
	// ArmFunc: a generic waiter with no condition variable of its own
	// parks here and is woken whenever the program signals or broadcasts
	// any of the monitor's conditions. anyWaiters and the armed list's
	// emptiness gate the extra broadcast so signal-heavy workloads that
	// never use the generic forms pay nothing.
	any        *sync.Cond
	anyWaiters int
	anyArmed   waitList

	pol      policy.Policy // wake policy for armed-handle Signal picks
	starveNs int64         // starvation threshold; 0 disables Starved
	seq      uint64        // arrival counter for armed handles
	wheel    *timerWheel   // deadline wheel, created on first deadline'd wait

	rec *obs.Ring        // flight recorder ring; nil unless recording was active at construction
	lat *stats.Histogram // wake-to-claim latency, allocated on first completed wait
}

// NewExplicit constructs an explicit-signal monitor.
func NewExplicit(opts ...Option) *Explicit {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	e := &Explicit{profile: cfg.profile, pol: cfg.policy, starveNs: cfg.starveNs}
	e.any = sync.NewCond(&e.mu)
	if rec := obs.Active(); rec != nil {
		e.rec = rec.NewRing("explicit")
	}
	return e
}

// Enter acquires the monitor.
func (e *Explicit) Enter() {
	if e.profile {
		t0 := time.Now()
		e.mu.Lock()
		e.stats.LockNs += time.Since(t0).Nanoseconds()
	} else {
		e.mu.Lock()
	}
	if e.rec != nil {
		e.rec.Record(obs.KEnter, 0, 0)
	}
	e.in = true
}

// Exit releases the monitor. No signaling happens implicitly.
func (e *Explicit) Exit() {
	if !e.in {
		panic("autosynch: Exit without Enter")
	}
	if e.rec != nil {
		e.rec.Record(obs.KExit, 0, 0)
	}
	e.in = false
	e.mu.Unlock()
}

// Do runs f inside the monitor.
func (e *Explicit) Do(f func()) {
	e.Enter()
	defer e.Exit()
	f()
}

// notifyAny wakes the generic AwaitFunc/ArmFunc waiters after a manual
// signal.
func (e *Explicit) notifyAny() {
	if e.anyWaiters > 0 {
		e.any.Broadcast()
	}
	if len(e.anyArmed.ws) > 0 {
		e.anyArmed.broadcast(nil)
	}
}

// AwaitFunc blocks until pred() holds, waking whenever the program signals
// or broadcasts any condition of this monitor. It is the explicit
// monitor's implementation of the Mechanism interface: generic drivers can
// wait without owning a condition variable, while the program's own
// signaling discipline stays manual. A waiter starves if nothing is ever
// signaled — use NewCond and precise signals in real explicit-monitor
// code.
func (e *Explicit) AwaitFunc(pred func() bool) {
	_ = e.awaitAny(nil, time.Time{}, pred)
}

// AwaitFuncCtx is AwaitFunc with cancellation; on a done context the
// waiter returns ctx.Err() still holding the monitor.
func (e *Explicit) AwaitFuncCtx(ctx context.Context, pred func() bool) error {
	return e.awaitAny(ctx, time.Time{}, pred)
}

// AwaitFuncDeadline is AwaitFunc with an absolute deadline: if the
// predicate has not become true by then the waiter gives up and returns
// ErrDeadline, still holding the monitor. The expiry broadcast wakes the
// condition's other waiters too, which re-check and re-park as after any
// broadcast; like cancellation, an observed expiry wins a race against
// the predicate becoming true.
func (e *Explicit) AwaitFuncDeadline(deadline time.Time, pred func() bool) error {
	return e.awaitAny(nil, deadline, pred)
}

// AwaitFuncTimeout is AwaitFuncDeadline with a relative duration.
func (e *Explicit) AwaitFuncTimeout(d time.Duration, pred func() bool) error {
	return e.awaitAny(nil, time.Now().Add(d), pred)
}

func (e *Explicit) awaitAny(ctx context.Context, deadline time.Time, pred func() bool) error {
	if !e.in {
		panic("autosynch: AwaitFunc outside the monitor; call Enter first")
	}
	e.stats.Awaits++
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	if !deadline.IsZero() && !time.Now().Before(deadline) {
		e.stats.Expired++
		return ErrDeadline
	}
	if pred() {
		e.stats.FastPath++
		return nil
	}
	e.anyWaiters++
	defer func() { e.anyWaiters-- }()
	return e.waitLoop(ctx, deadline, e.any, pred)
}

// waitLoop is the shared wake/re-check loop for Cond.Await and AwaitFunc,
// with optional context cancellation and deadline expiry. Runs (and
// returns) with the monitor lock held.
func (e *Explicit) waitLoop(ctx context.Context, deadline time.Time, cond *sync.Cond, pred func() bool) error {
	var cw *ctxWaiter
	if ctx != nil && ctx.Done() != nil {
		cw = &ctxWaiter{}
		defer watchCtx(ctx, &e.mu, cw, cond)()
	}
	if !deadline.IsZero() {
		if cw == nil {
			cw = &ctxWaiter{}
		}
		defer watchDeadline(e.timers(), deadline, &e.mu, cw, cond)()
	}
	since := time.Now().UnixNano()
	e.waiting++
	for {
		if e.profile {
			t0 := time.Now()
			cond.Wait()
			e.stats.AwaitNs += time.Since(t0).Nanoseconds()
		} else {
			cond.Wait()
		}
		if cw != nil && cw.cancelled {
			if cw.err == ErrDeadline {
				e.stats.Expired++
				if e.rec != nil {
					e.rec.Record(obs.KExpire, 0, 0)
				}
			}
			e.stats.Abandons++
			if e.rec != nil {
				e.rec.Record(obs.KCancel, 0, 0)
			}
			e.waiting--
			e.in = true
			return cw.err
		}
		e.stats.Wakeups++
		if pred() {
			break
		}
		e.stats.FutileWakeups++
		if e.rec != nil {
			e.rec.Record(obs.KFutileWake, 0, 0)
		}
	}
	e.waiting--
	e.in = true
	if cw != nil {
		cw.finished = true
	}
	if e.rec != nil {
		e.rec.Record(obs.KClaim, 0, 0)
	}
	e.observeWait(since, 0)
	return nil
}

// observeWait folds a completed wait's duration into the fairness
// counters. Runs under the monitor lock; seq identifies the waiter in
// recorded events (0 for parked condition waiters, which carry no seq).
func (e *Explicit) observeWait(since int64, seq uint64) {
	if since == 0 {
		return
	}
	ns := time.Now().UnixNano() - since
	if ns > e.stats.MaxWaitNs {
		e.stats.MaxWaitNs = ns
	}
	if e.starveNs > 0 && ns > e.starveNs {
		e.stats.Starved++
		if e.rec != nil {
			e.rec.Record(obs.KStarved, seq, ns)
		}
	}
	if e.lat == nil {
		e.lat = new(stats.Histogram)
	}
	e.lat.Observe(time.Duration(ns))
}

// timers lazily creates the monitor's deadline wheel. Runs under the
// monitor lock.
func (e *Explicit) timers() *timerWheel {
	if e.wheel == nil {
		e.wheel = newTimerWheel()
	}
	return e.wheel
}

// statExpired counts a handle that ended at its deadline. Runs under the
// monitor lock.
func (e *Explicit) statExpired(w *Wait) {
	e.stats.Expired++
	if e.rec != nil {
		e.rec.Record(obs.KExpire, w.seq, 0)
	}
}

// ArmFunc registers a generic any-signal waiter without blocking and
// returns its handle: any manual Signal or Broadcast on any of the
// monitor's conditions notifies it, and Claim re-validates the closure
// under the lock. See Wait for the select-composition contract. ArmFunc
// acquires the monitor internally: call it outside Enter/Exit.
func (e *Explicit) ArmFunc(pred func() bool) *Wait {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.armOn(&e.anyArmed, pred)
}

// armOn registers a handle on a waiter list, with the immediate
// notification when the predicate already holds. Runs under the lock.
func (e *Explicit) armOn(l *waitList, pred func() bool) *Wait {
	e.stats.Arms++
	w := newWait(e)
	w.pred = pred
	e.seq++
	w.seq = e.seq
	w.since = time.Now().UnixNano()
	if e.pol != nil {
		w.rank = e.pol.Rank(nil)
	}
	if e.rec != nil {
		e.rec.Record(obs.KArm, w.seq, w.rank)
	}
	l.add(w)
	e.waiting++
	if pred() {
		w.notify()
	}
	return w
}

// TryFunc is the non-blocking degenerate case of AwaitFunc: one
// evaluation inside the monitor, no parking, no arming.
func (e *Explicit) TryFunc(pred func() bool) bool {
	if !e.in {
		panic("autosynch: TryFunc outside the monitor; call Enter first")
	}
	return pred()
}

// lockWait and unlockWait expose the monitor lock to the handle methods.
func (e *Explicit) lockWait()   { e.mu.Lock() }
func (e *Explicit) unlockWait() { e.mu.Unlock() }

// claimLocked re-validates a handle's closure; on success the claimer
// holds the monitor, on failure the handle is re-armed for the next
// signal of its condition (or any signal, for ArmFunc handles). The
// re-armed handle rotates behind its list's later registrants, matching a
// condition queue's FIFO fairness.
func (e *Explicit) claimLocked(w *Wait) error {
	if w.pred() {
		e.stats.Claims++
		w.state = waitClaimed
		if e.rec != nil {
			e.rec.Record(obs.KClaim, w.seq, 0)
		}
		e.observeWait(w.since, w.seq)
		w.list.remove(w)
		e.waiting--
		e.in = true
		return nil
	}
	e.stats.FutileClaims++
	if e.rec != nil {
		e.rec.Record(obs.KFutileClaim, w.seq, 0)
	}
	w.rearm()
	w.list.requeue(w)
	return ErrNotReady
}

// cancelLocked drops a cancelled handle from its condition's list; the
// manual signaling discipline needs no further repair.
func (e *Explicit) cancelLocked(w *Wait) {
	e.stats.Abandons++
	if e.rec != nil {
		e.rec.Record(obs.KCancel, w.seq, 0)
	}
	w.list.remove(w)
	e.waiting--
}

// Stats returns a snapshot of the counters, with the flight-recorder
// fields folded in from the ring.
func (e *Explicit) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := e.stats
	if e.rec != nil {
		s.ObsEvents = e.rec.Writes()
		s.ObsDrops = e.rec.Drops()
	}
	return s
}

// WaitLatency returns a copy of the wake-to-claim latency histogram, or
// nil if no wait has completed.
func (e *Explicit) WaitLatency() *stats.Histogram {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.lat == nil {
		return nil
	}
	h := *e.lat
	return &h
}

// ResetStats zeroes the counters.
func (e *Explicit) ResetStats() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.stats = Stats{}
}

// Waiting returns the number of registered waiters across all of the
// monitor's conditions (parked waits plus armed handles); tests poll it
// instead of sleeping, and assert zero to prove no handle leaked.
func (e *Explicit) Waiting() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.waiting
}

// Cond is an explicit condition variable bound to its monitor's lock.
type Cond struct {
	m     *Explicit
	cond  *sync.Cond
	armed waitList // armed handles routed to this condition
}

// NewCond creates a condition variable on the monitor.
func (e *Explicit) NewCond() *Cond {
	return &Cond{m: e, cond: sync.NewCond(&e.mu)}
}

// Await blocks until pred() holds, re-checking after every wake-up — the
// standard while-loop idiom around Condition.await.
func (c *Cond) Await(pred func() bool) {
	_ = c.await(nil, time.Time{}, pred)
}

// AwaitCtx is Await with cancellation: a waiter whose context is done
// gives up its spot on the condition and returns ctx.Err(), still holding
// the monitor. The cancellation wakes the condition's other waiters too;
// they re-check their predicates and park again, as after any broadcast.
func (c *Cond) AwaitCtx(ctx context.Context, pred func() bool) error {
	return c.await(ctx, time.Time{}, pred)
}

// AwaitDeadline is Await with an absolute deadline; see
// Explicit.AwaitFuncDeadline for the expiry semantics.
func (c *Cond) AwaitDeadline(deadline time.Time, pred func() bool) error {
	return c.await(nil, deadline, pred)
}

// AwaitTimeout is AwaitDeadline with a relative duration.
func (c *Cond) AwaitTimeout(d time.Duration, pred func() bool) error {
	return c.await(nil, time.Now().Add(d), pred)
}

func (c *Cond) await(ctx context.Context, deadline time.Time, pred func() bool) error {
	if !c.m.in {
		panic("autosynch: Cond.Await outside the monitor; call Enter first")
	}
	c.m.stats.Awaits++
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	if !deadline.IsZero() && !time.Now().Before(deadline) {
		c.m.stats.Expired++
		return ErrDeadline
	}
	if pred() {
		c.m.stats.FastPath++
		return nil
	}
	return c.m.waitLoop(ctx, deadline, c.cond, pred)
}

// Arm registers a waiter on this condition without blocking and returns
// its handle: Signal and Broadcast on this condition notify it, and Claim
// re-validates the closure under the lock — the handle analog of the
// while-loop around Condition.await. Arm acquires the monitor internally:
// call it outside Enter/Exit.
func (c *Cond) Arm(pred func() bool) *Wait {
	c.m.mu.Lock()
	defer c.m.mu.Unlock()
	return c.m.armOn(&c.armed, pred)
}

// Signal wakes one thread waiting on the condition. A signal reaches both
// waiter populations: one parked goroutine (if any) and one armed handle
// — the handle re-validates at claim time, so the at-most-one-consumer
// contract of the underlying state is preserved by the predicates
// themselves, as everywhere in an explicit monitor.
func (c *Cond) Signal() {
	c.m.stats.Signals++
	c.cond.Signal()
	picked := c.armed.signalOne(c.m.pol)
	if picked != nil && c.m.pol != nil {
		c.m.stats.PolicyWakes++
	}
	if r := c.m.rec; r != nil {
		// Explicit monitors have no relay: every signal roots its own
		// chain (origin 0); the seq is the picked armed handle's, or 0
		// when only a parked (seq-less) goroutine can answer.
		var seq uint64
		if picked != nil {
			seq = picked.seq
		}
		r.Record(obs.KSignal, seq, 0)
		if picked != nil && c.m.pol != nil {
			r.Record(obs.KPolicyWake, picked.seq, picked.rank)
		}
	}
	c.m.notifyAny()
}

// Broadcast wakes every thread waiting on the condition (signalAll).
func (c *Cond) Broadcast() {
	c.m.stats.Broadcasts++
	if r := c.m.rec; r != nil {
		r.Record(obs.KBroadcast, 0, 0)
	}
	c.cond.Broadcast()
	if len(c.armed.ws) > 0 {
		c.armed.broadcast(nil)
	}
	c.m.notifyAny()
}
