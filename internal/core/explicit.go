package core

import (
	"sync"
	"time"
)

// Explicit is the instrumented explicit-signal monitor: a mutex with
// programmer-managed condition variables, the java.util.concurrent
// Lock/Condition analog used as the principal comparison point in the
// paper's evaluation. The programmer associates predicates with conditions
// and must signal the right condition at the right time — exactly the
// burden (and bug source) AutoSynch removes.
type Explicit struct {
	mu      sync.Mutex
	profile bool
	in      bool
	waiting int // goroutines currently parked in Cond.Await
	stats   Stats
}

// NewExplicit constructs an explicit-signal monitor.
func NewExplicit(opts ...Option) *Explicit {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	return &Explicit{profile: cfg.profile}
}

// Enter acquires the monitor.
func (e *Explicit) Enter() {
	if e.profile {
		t0 := time.Now()
		e.mu.Lock()
		e.stats.LockNs += time.Since(t0).Nanoseconds()
	} else {
		e.mu.Lock()
	}
	e.in = true
}

// Exit releases the monitor. No signaling happens implicitly.
func (e *Explicit) Exit() {
	if !e.in {
		panic("autosynch: Exit without Enter")
	}
	e.in = false
	e.mu.Unlock()
}

// Do runs f inside the monitor.
func (e *Explicit) Do(f func()) {
	e.Enter()
	defer e.Exit()
	f()
}

// Stats returns a snapshot of the counters.
func (e *Explicit) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// ResetStats zeroes the counters.
func (e *Explicit) ResetStats() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.stats = Stats{}
}

// Waiting returns the number of goroutines currently parked in Cond.Await
// across all of the monitor's conditions; tests poll it instead of
// sleeping to know waiters have parked.
func (e *Explicit) Waiting() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.waiting
}

// Cond is an explicit condition variable bound to its monitor's lock.
type Cond struct {
	m    *Explicit
	cond *sync.Cond
}

// NewCond creates a condition variable on the monitor.
func (e *Explicit) NewCond() *Cond {
	return &Cond{m: e, cond: sync.NewCond(&e.mu)}
}

// Await blocks until pred() holds, re-checking after every wake-up — the
// standard while-loop idiom around Condition.await.
func (c *Cond) Await(pred func() bool) {
	if !c.m.in {
		panic("autosynch: Cond.Await outside the monitor; call Enter first")
	}
	c.m.stats.Awaits++
	if pred() {
		c.m.stats.FastPath++
		return
	}
	c.m.waiting++
	for {
		if c.m.profile {
			t0 := time.Now()
			c.cond.Wait()
			c.m.stats.AwaitNs += time.Since(t0).Nanoseconds()
		} else {
			c.cond.Wait()
		}
		c.m.stats.Wakeups++
		if pred() {
			break
		}
		c.m.stats.FutileWakeups++
	}
	c.m.waiting--
	c.m.in = true
}

// Signal wakes one thread waiting on the condition.
func (c *Cond) Signal() {
	c.m.stats.Signals++
	c.cond.Signal()
}

// Broadcast wakes every thread waiting on the condition (signalAll).
func (c *Cond) Broadcast() {
	c.m.stats.Broadcasts++
	c.cond.Broadcast()
}
