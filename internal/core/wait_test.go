package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/testutil"
)

// TestWaitHandleLifecycle walks one handle through the full happy path:
// armed, notified by a relay signal, claimed with the monitor held.
func TestWaitHandleLifecycle(t *testing.T) {
	m := New()
	defer testutil.NoLeaks(t, m)()
	count := m.NewInt("count", 0)
	need := m.MustCompile("count >= k")

	w := need.Arm(BindInt("k", 3))
	if err := w.Err(); err != nil {
		t.Fatalf("Err after Arm = %v", err)
	}
	if got := m.Waiting(); got != 1 {
		t.Fatalf("Waiting() = %d after Arm, want 1", got)
	}
	select {
	case <-w.Ready():
		t.Fatal("handle ready before the predicate became true")
	default:
	}
	// An early Claim is answered truthfully: not ready, handle re-armed.
	if err := w.Claim(); !errors.Is(err, ErrNotReady) {
		t.Fatalf("early Claim = %v, want ErrNotReady", err)
	}
	if s := m.Stats(); s.FutileClaims != 1 {
		t.Errorf("FutileClaims = %d, want 1", s.FutileClaims)
	}

	m.Do(func() { count.Set(5) })
	waitTimeout(t, 10*time.Second, "handle notification", func() { <-w.Ready() })
	if err := w.Claim(); err != nil {
		t.Fatalf("Claim = %v", err)
	}
	// The claimer holds the monitor with the predicate true.
	if count.Get() < 3 {
		t.Error("claimed with predicate false")
	}
	count.Set(0)
	m.Exit()

	if err := w.Claim(); !errors.Is(err, ErrClaimed) {
		t.Errorf("double Claim = %v, want ErrClaimed", err)
	}
	w.Cancel() // after claim: no-op
	if err := w.Err(); err != nil {
		t.Errorf("Err after claim = %v", err)
	}
	if got := m.Waiting(); got != 0 {
		t.Errorf("Waiting() = %d after claim, want 0 (handle leaked)", got)
	}
	if p := pendingSignals(m); p != 0 {
		t.Errorf("pending = %d after claim", p)
	}
}

// TestWaitHandleFutileClaim forces the futile-claim re-arm path: the
// notified predicate is falsified by a racing mutation before the claim,
// the claim re-arms transparently, and the handle fires again on the next
// mutation — no signal is lost and no state leaks.
func TestWaitHandleFutileClaim(t *testing.T) {
	m := New()
	count := m.NewInt("count", 0)
	need := m.MustCompile("count >= k")

	w := need.Arm(BindInt("k", 1))
	m.Do(func() { count.Set(1) })
	waitTimeout(t, 10*time.Second, "first notification", func() { <-w.Ready() })
	// Falsify before the claim.
	m.Do(func() { count.Set(0) })
	if err := w.Claim(); !errors.Is(err, ErrNotReady) {
		t.Fatalf("Claim after falsification = %v, want ErrNotReady", err)
	}
	if s := m.Stats(); s.FutileClaims != 1 {
		t.Errorf("FutileClaims = %d, want 1", s.FutileClaims)
	}
	if got := m.Waiting(); got != 1 {
		t.Fatalf("Waiting() = %d after futile claim, want 1 (still armed)", got)
	}
	if p := pendingSignals(m); p != 0 {
		t.Fatalf("pending = %d after futile claim (orphan not reconciled)", p)
	}

	// The re-armed handle must fire again.
	m.Do(func() { count.Set(2) })
	waitTimeout(t, 10*time.Second, "re-armed notification", func() { <-w.Ready() })
	if err := w.Claim(); err != nil {
		t.Fatalf("Claim after re-arm = %v", err)
	}
	m.Exit()
	if got := m.Waiting(); got != 0 {
		t.Errorf("Waiting() = %d at end, want 0", got)
	}
}

// TestWaitHandleCancelReleasesSelect proves Cancel unblocks a selecting
// goroutine and fully unregisters the handle from the predicate table and
// tag structures.
func TestWaitHandleCancelReleasesSelect(t *testing.T) {
	m := New()
	m.NewInt("count", 0)
	need := m.MustCompile("count >= k")

	w := need.Arm(BindInt("k", 5))
	done := make(chan error, 1)
	go func() {
		<-w.Ready()
		done <- w.Err()
	}()
	w.Cancel()
	var err error
	waitTimeout(t, 10*time.Second, "cancelled select", func() { err = <-done })
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("Err after Cancel = %v, want ErrCancelled", err)
	}
	if err := w.Claim(); !errors.Is(err, ErrCancelled) {
		t.Errorf("Claim after Cancel = %v, want ErrCancelled", err)
	}
	w.Cancel() // idempotent
	if got := m.Waiting(); got != 0 {
		t.Errorf("Waiting() = %d after Cancel, want 0", got)
	}
	if active, inactive, groups, none := m.DebugCounts(); active != 0 || groups != 0 || none != 0 || inactive != 1 {
		t.Errorf("counts after Cancel: active=%d inactive=%d groups=%d none=%d, want 0/1/0/0",
			active, inactive, groups, none)
	}
}

// TestWaitHandleArmErrors verifies arming failures are delivered through
// the handle: Ready closed immediately, Claim and Err carrying the
// *PredicateError (including ErrNeverTrue), Cancel a no-op.
func TestWaitHandleArmErrors(t *testing.T) {
	m := New()
	m.NewInt("count", 0)
	need := m.MustCompile("count >= k")

	bad := need.Arm() // missing binding
	select {
	case <-bad.Ready():
	default:
		t.Fatal("failed handle not born ready")
	}
	var perr *PredicateError
	if err := bad.Claim(); !errors.As(err, &perr) {
		t.Fatalf("Claim on failed handle = %v, want *PredicateError", err)
	}
	if bad.Err() == nil {
		t.Error("Err on failed handle = nil")
	}
	bad.Cancel()

	never := m.MustCompile("count >= k && k < 0")
	w := never.Arm(BindInt("k", 3))
	if err := w.Claim(); !errors.Is(err, ErrNeverTrue) {
		t.Fatalf("Claim on never-true handle = %v, want ErrNeverTrue", err)
	}
	if got := m.Waiting(); got != 0 {
		t.Errorf("Waiting() = %d after failed arms, want 0", got)
	}
}

// TestWaitHandleConstantTrue arms a predicate whose globalization folds to
// constant true: the handle is born ready and Claim hands the monitor
// over immediately.
func TestWaitHandleConstantTrue(t *testing.T) {
	m := New()
	m.NewInt("count", 0)
	p := m.MustCompile("k >= 0 || count > 0")
	w := p.Arm(BindInt("k", 1))
	select {
	case <-w.Ready():
	default:
		t.Fatal("constant-true handle not born ready")
	}
	if err := w.Claim(); err != nil {
		t.Fatalf("Claim = %v", err)
	}
	m.Exit()
	if err := w.Claim(); !errors.Is(err, ErrClaimed) {
		t.Errorf("second Claim = %v, want ErrClaimed", err)
	}
}

// TestWaitHandleArmCancelVsRelayRace is the adversarial schedule of the
// handle API: a mutation that makes the armed predicate true races a
// Cancel of the same handle, with a second blocking waiter of the same
// predicate standing by. Whichever way the race resolves, the in-flight
// signal must be reconciled (pending returns to 0) and the blocking
// waiter must be released — relay invariance survives handle abandonment.
// Run with -race.
func TestWaitHandleArmCancelVsRelayRace(t *testing.T) {
	m := New()
	defer testutil.NoLeaks(t, m)()
	count := m.NewInt("count", 0)
	need := m.MustCompile("count >= k")

	iters := 150
	if testing.Short() {
		iters = 25
	}
	for iter := 0; iter < iters; iter++ {
		w := need.Arm(BindInt("k", 1))
		survivor := make(chan struct{})
		go func() {
			defer close(survivor)
			m.Enter()
			if err := m.AwaitPred(need, BindInt("k", 2)); err != nil {
				t.Error(err)
			}
			m.Exit()
		}()
		waitParked(t, m, 2) // the armed handle plus the parked goroutine

		// Make both predicates true while concurrently cancelling the
		// handle: the relay signal may land on the handle or the parked
		// waiter, and the Cancel races it for the monitor lock.
		go w.Cancel()
		m.Do(func() { count.Set(2) })

		waitTimeout(t, 10*time.Second, "surviving waiter", func() { <-survivor })
		// The handle either completed the race cancelled, or — if Cancel
		// lost every race — is still armed/notified; settle it.
		w.Cancel()
		if err := w.Err(); !errors.Is(err, ErrCancelled) {
			t.Fatalf("iter %d: handle Err = %v", iter, err)
		}
		if p := pendingSignals(m); p != 0 {
			t.Fatalf("iter %d: pending = %d, relay chain corrupted", iter, p)
		}
		if got := m.Waiting(); got != 0 {
			t.Fatalf("iter %d: Waiting() = %d, handle leaked", iter, got)
		}
		m.Do(func() { count.Set(0) })
	}
}

// TestWaitHandleSharedEntryWithBlockingWaiter parks a blocking waiter and
// arms a handle on the SAME entry (identical canonical predicate), then
// satisfies it once: exactly one of them gets the signal, and completing
// that one (claim or wake) must relay onward when the predicate still
// holds, releasing the other. Run with -race.
func TestWaitHandleSharedEntryWithBlockingWaiter(t *testing.T) {
	m := New()
	count := m.NewInt("count", 0)
	need := m.MustCompile("count >= k")

	iters := 100
	if testing.Short() {
		iters = 20
	}
	for iter := 0; iter < iters; iter++ {
		blocked := make(chan struct{})
		go func() {
			defer close(blocked)
			m.Enter()
			if err := m.AwaitPred(need, BindInt("k", 3)); err != nil {
				t.Error(err)
			}
			m.Exit()
		}()
		waitParked(t, m, 1)
		w := need.Arm(BindInt("k", 3)) // same canonical entry
		m.Do(func() { count.Set(3) })  // stays true: both must complete

		waitTimeout(t, 10*time.Second, "handle side", func() { <-w.Ready() })
		if err := w.Claim(); err == nil {
			m.Exit()
		} else if !errors.Is(err, ErrNotReady) {
			t.Fatalf("iter %d: Claim = %v", iter, err)
		}
		waitTimeout(t, 10*time.Second, "blocked side", func() { <-blocked })
		w.Cancel() // in case the claim was futile and the handle re-armed
		if p := pendingSignals(m); p != 0 {
			t.Fatalf("iter %d: pending = %d", iter, p)
		}
		if got := m.Waiting(); got != 0 {
			t.Fatalf("iter %d: Waiting() = %d", iter, got)
		}
		m.Do(func() { count.Set(0) })
	}
}

// TestWaitHandleStress churns handles against blocking waiters and a
// producer: random arms, claims, cancels, and double-claims under -race.
// At the end no signal may be in flight and the monitor must be empty.
func TestWaitHandleStress(t *testing.T) {
	m := New()
	defer testutil.NoLeaks(t, m)()
	count := m.NewInt("count", 0)
	need := m.MustCompile("count >= k")

	const actors = 48
	var claimed, cancelled atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < actors; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k := int64(i%7 + 1)
			w := need.Arm(BindInt("k", k))
			if i%4 == 0 {
				// Cancel from a separate goroutine, racing the relay.
				go w.Cancel()
			}
			for {
				<-w.Ready()
				err := w.Claim()
				switch {
				case err == nil:
					count.Add(-k / 2)
					m.Exit()
					claimed.Add(1)
					return
				case errors.Is(err, ErrNotReady):
					continue
				case errors.Is(err, ErrCancelled):
					cancelled.Add(1)
					return
				default:
					t.Errorf("actor %d: Claim = %v", i, err)
					return
				}
			}
		}(i)
	}
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				m.Do(func() { count.Add(2) })
			}
		}
	}()
	waitTimeout(t, 30*time.Second, "stress actors", func() { wg.Wait() })
	close(stop)
	if got := claimed.Load() + cancelled.Load(); got != actors {
		t.Errorf("accounted actors = %d, want %d", got, actors)
	}
	if p := pendingSignals(m); p != 0 {
		t.Errorf("pending = %d at end of stress", p)
	}
	if w := m.Waiting(); w != 0 {
		t.Errorf("Waiting() = %d at end of stress", w)
	}
	s := m.Stats()
	if s.Arms != actors {
		t.Errorf("Arms = %d, want %d", s.Arms, actors)
	}
	if s.Claims != uint64(claimed.Load()) {
		t.Errorf("Claims = %d, claimed = %d", s.Claims, claimed.Load())
	}
	t.Logf("stress: %d claimed, %d cancelled, stats: %s", claimed.Load(), cancelled.Load(), s.String())
}

// TestWaitHandleEarlyClaimAccounting pins the entry's signalable count
// against early claims: a Claim before any notification re-arms a waiter
// that never consumed one, which must NOT inflate the entry's unnotified
// count. The schedule then drains and re-arms the entry with the
// predicate true, so a corrupted count makes the next relaySignal find a
// "signalable" entry with no unnotified waiter and crash.
func TestWaitHandleEarlyClaimAccounting(t *testing.T) {
	m := New()
	count := m.NewInt("count", 0)
	need := m.MustCompile("count >= k")

	w1 := need.Arm(BindInt("k", 1))
	w2 := need.Arm(BindInt("k", 1)) // same entry
	if err := w1.Claim(); !errors.Is(err, ErrNotReady) {
		t.Fatalf("early Claim = %v", err)
	}
	m.Do(func() { count.Set(1) })
	for _, w := range []*Wait{w1, w2} {
		waitTimeout(t, 10*time.Second, "handle", func() { <-w.Ready() })
		if err := w.Claim(); err != nil {
			t.Fatalf("Claim = %v", err)
		}
		m.Exit()
	}
	// Re-register the (cached) entry while its predicate is true and
	// drive an exit: the relay search must deliver, not crash.
	w3 := need.Arm(BindInt("k", 1))
	m.Do(func() {})
	waitTimeout(t, 10*time.Second, "post-accounting handle", func() { <-w3.Ready() })
	if err := w3.Claim(); err != nil {
		t.Fatalf("Claim = %v", err)
	}
	m.Exit()
	if p := pendingSignals(m); p != 0 {
		t.Errorf("pending = %d", p)
	}
}

// TestWaitHandleCancelUnnotifiedAccounting pins the companion schedule:
// cancelling a handle that was never notified must release its slot in
// the entry's unnotified count even though Cancel closes the ready
// channel (the courtesy close is not a delivered notification).
func TestWaitHandleCancelUnnotifiedAccounting(t *testing.T) {
	m := New()
	count := m.NewInt("count", 0)
	need := m.MustCompile("count >= k")

	w1 := need.Arm(BindInt("k", 1))
	w2 := need.Arm(BindInt("k", 1)) // same entry
	w1.Cancel()                     // never notified
	m.Do(func() { count.Set(1) })
	waitTimeout(t, 10*time.Second, "survivor handle", func() { <-w2.Ready() })
	if err := w2.Claim(); err != nil {
		t.Fatalf("Claim = %v", err)
	}
	m.Exit()
	// The entry parks on the inactive list with its counts; reuse it
	// while true and make sure relay delivery still works.
	w3 := need.Arm(BindInt("k", 1))
	m.Do(func() {})
	waitTimeout(t, 10*time.Second, "reused-entry handle", func() { <-w3.Ready() })
	if err := w3.Claim(); err != nil {
		t.Fatalf("Claim = %v", err)
	}
	m.Exit()
	if p := pendingSignals(m); p != 0 {
		t.Errorf("pending = %d", p)
	}
	if got := m.Waiting(); got != 0 {
		t.Errorf("Waiting() = %d", got)
	}
}

// TestArmFuncAcrossMechanisms drives the handle surface through the
// Mechanism interface on all three monitor types, checking the shared
// arms/claims/futile-claims accounting and handle leak freedom.
func TestArmFuncAcrossMechanisms(t *testing.T) {
	mon := New()
	flag := mon.NewInt("flag", 0)
	exp := NewExplicit()
	side := exp.NewCond()
	base := NewBaseline()

	var expFlag, baseFlag int
	cases := []struct {
		name  string
		mech  Mechanism
		pred  func() bool
		set   func()
		unset func()
	}{
		{"autosynch", mon, func() bool { return flag.Get() == 1 }, func() { flag.Set(1) }, func() { flag.Set(0) }},
		{"baseline", base, func() bool { return baseFlag == 1 }, func() { baseFlag = 1 }, func() { baseFlag = 0 }},
		{"explicit", exp, func() bool { return expFlag == 1 }, func() { expFlag = 1; side.Broadcast() }, func() { expFlag = 0 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			// TryFunc: the non-blocking degenerate case.
			c.mech.Enter()
			if c.mech.TryFunc(c.pred) {
				t.Error("TryFunc true before set")
			}
			c.set()
			if !c.mech.TryFunc(c.pred) {
				t.Error("TryFunc false after set")
			}
			c.unset()
			c.mech.Exit()

			// Arm, notify, falsify, futile-claim, re-notify, claim.
			w := c.mech.ArmFunc(c.pred)
			if got := c.mech.Waiting(); got != 1 {
				t.Fatalf("Waiting() = %d after ArmFunc", got)
			}
			c.mech.Do(c.set)
			waitTimeout(t, 10*time.Second, c.name+" handle ready", func() { <-w.Ready() })
			c.mech.Do(c.unset)
			if err := w.Claim(); !errors.Is(err, ErrNotReady) {
				t.Fatalf("Claim after falsify = %v, want ErrNotReady", err)
			}
			c.mech.Do(c.set)
			waitTimeout(t, 10*time.Second, c.name+" re-armed ready", func() { <-w.Ready() })
			if err := w.Claim(); err != nil {
				t.Fatalf("Claim = %v", err)
			}
			if !c.pred() {
				t.Error("claimed with predicate false")
			}
			c.unset()
			c.mech.Exit()

			// Cancel path and leak check.
			w2 := c.mech.ArmFunc(c.pred)
			w2.Cancel()
			if err := w2.Err(); !errors.Is(err, ErrCancelled) {
				t.Errorf("Err after Cancel = %v", err)
			}
			if got := c.mech.Waiting(); got != 0 {
				t.Errorf("Waiting() = %d after claim+cancel, want 0", got)
			}
			s := c.mech.Stats()
			if s.Arms < 2 || s.Claims < 1 || s.FutileClaims < 1 {
				t.Errorf("handle stats not accounted: arms=%d claims=%d futile=%d",
					s.Arms, s.Claims, s.FutileClaims)
			}
			c.mech.ResetStats()
		})
	}
}

// TestCondArmSignalRouting checks that a Cond.Arm handle is notified by
// its own condition's Signal and not by an unrelated condition's.
func TestCondArmSignalRouting(t *testing.T) {
	e := NewExplicit()
	mine := e.NewCond()
	other := e.NewCond()
	state := 0

	w := mine.Arm(func() bool { return state >= 1 })
	e.Do(func() { state = 1; other.Signal() })
	// other's Signal reaches generic any-waiters only; this handle is
	// condition-routed and must stay quiet.
	select {
	case <-w.Ready():
		t.Fatal("handle notified by an unrelated condition")
	case <-time.After(20 * time.Millisecond):
	}
	e.Do(func() { mine.Signal() })
	waitTimeout(t, 10*time.Second, "own-condition signal", func() { <-w.Ready() })
	if err := w.Claim(); err != nil {
		t.Fatalf("Claim = %v", err)
	}
	e.Exit()
	if got := e.Waiting(); got != 0 {
		t.Errorf("Waiting() = %d, want 0", got)
	}
}

// TestBlockingWaitIsHandleWrapper pins the redesign's claim that blocking
// waits and handles share one waiter representation: a parked Await and
// an armed handle on the same entry both count in Waiting, and the relay
// search treats them identically — the single signal lands on either, and
// completing that waiter (wake-and-exit or claim-and-exit) relays to the
// other while the predicate stays true.
func TestBlockingWaitIsHandleWrapper(t *testing.T) {
	m := New()
	count := m.NewInt("count", 0)
	need := m.MustCompile("count >= 1")

	w := need.Arm()
	blocked := make(chan struct{})
	go func() {
		defer close(blocked)
		m.Enter()
		if err := m.AwaitPred(need); err != nil {
			t.Error(err)
		}
		count.Add(-1)
		m.Exit()
	}()
	claimed := make(chan struct{})
	go func() {
		defer close(claimed)
		for {
			<-w.Ready()
			err := w.Claim()
			if err == nil {
				count.Add(-1)
				m.Exit()
				return
			}
			if !errors.Is(err, ErrNotReady) {
				t.Errorf("Claim = %v", err)
				return
			}
		}
	}()
	waitParked(t, m, 2)
	m.Do(func() { count.Set(2) }) // one unit for each waiter
	waitTimeout(t, 10*time.Second, "blocking waiter", func() { <-blocked })
	waitTimeout(t, 10*time.Second, "handle claimer", func() { <-claimed })
	if p := pendingSignals(m); p != 0 {
		t.Errorf("pending = %d", p)
	}
	if got := m.Waiting(); got != 0 {
		t.Errorf("Waiting() = %d", got)
	}
}
