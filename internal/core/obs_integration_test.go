package core

import (
	"runtime"
	"testing"

	"repro/internal/obs"
)

// TestObsFoldsIntoStats pins the recorder integration shared by all
// three mechanisms: an active recorder at construction binds a ring,
// monitor operations publish events into it, Stats folds the ring's
// write/drop accounting in at snapshot time (so ResetStats cannot lose
// it), and a parked wait lands in the wake-to-claim histogram. The
// recorder is process-global, so no t.Parallel here.
func TestObsFoldsIntoStats(t *testing.T) {
	rec := obs.Start(1 << 10)
	defer obs.Stop()

	mon := New()
	base := NewBaseline()
	exp := NewExplicit()
	cond := exp.NewCond()
	for _, tc := range []struct {
		name string
		mech Mechanism
		set  func(f func()) // run f inside the monitor and wake waiters
	}{
		{"monitor", mon, mon.Do},
		{"explicit", exp, func(f func()) { exp.Do(func() { f(); cond.Broadcast() }) }},
		{"baseline", base, base.Do},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := tc.mech
			done := make(chan struct{})
			var gate bool
			go func() {
				defer close(done)
				// Open the gate only once the main goroutine is parked, so
				// the wait cannot resolve on the fast path (which would
				// leave the latency histogram empty by design).
				for m.Waiting() == 0 {
					runtime.Gosched()
				}
				tc.set(func() { gate = true })
			}()
			m.Enter()
			m.AwaitFunc(func() bool { return gate })
			m.Exit()
			<-done

			s := m.Stats()
			if s.ObsEvents == 0 {
				t.Fatal("no events folded into Stats with an active recorder")
			}
			m.ResetStats()
			s2 := m.Stats()
			if s2.ObsEvents < s.ObsEvents {
				t.Errorf("ObsEvents fell from %d to %d across ResetStats; ring accounting must survive resets",
					s.ObsEvents, s2.ObsEvents)
			}
			if h := m.WaitLatency(); h == nil || h.Count() == 0 {
				t.Errorf("parked wait recorded no wake-to-claim latency (hist=%v)", h)
			}
		})
	}

	if len(rec.Rings()) != 3 {
		t.Errorf("recorder holds %d rings, want 3 (one per mechanism)", len(rec.Rings()))
	}
	events := rec.Events()
	if len(events) == 0 {
		t.Fatal("recorder captured no events")
	}
	kinds := make(map[obs.Kind]int)
	for _, ev := range events {
		if !ev.Kind.Valid() {
			t.Fatalf("invalid kind in captured event %+v", ev)
		}
		kinds[ev.Kind]++
	}
	for _, k := range []obs.Kind{obs.KEnter, obs.KExit, obs.KClaim} {
		if kinds[k] == 0 {
			t.Errorf("no %v events captured (kinds: %v)", k, kinds)
		}
	}
}

// TestObsInactiveMonitorsRecordNothing pins the disabled default: a
// monitor built with no active recorder never touches a ring and reports
// zero obs counters.
func TestObsInactiveMonitorsRecordNothing(t *testing.T) {
	if obs.Active() != nil {
		t.Fatal("recorder unexpectedly active")
	}
	m := New()
	m.Do(func() {})
	if s := m.Stats(); s.ObsEvents != 0 || s.ObsDrops != 0 {
		t.Errorf("inactive recorder but ObsEvents=%d ObsDrops=%d", s.ObsEvents, s.ObsDrops)
	}
}
