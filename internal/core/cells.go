package core

import "repro/internal/expr"

// IntCell is a shared integer monitor variable. Cells may be read or
// written only while holding their monitor (between Enter and Exit, or
// inside Do); the monitor lock is the sole synchronization for cell state,
// exactly as fields of a Java monitor object are guarded by its lock.
// A cell knows its declared name, so the typed predicate builders
// (builder.go) can reference it symbolically.
type IntCell struct {
	v    int64
	name string
}

// Get returns the current value. Caller must hold the monitor.
func (c *IntCell) Get() int64 { return c.v }

// Set stores v. Caller must hold the monitor.
func (c *IntCell) Set(v int64) { c.v = v }

// Add adds d and returns the new value. Caller must hold the monitor.
func (c *IntCell) Add(d int64) int64 {
	c.v += d
	return c.v
}

// BoolCell is a shared boolean monitor variable; see IntCell for the
// locking discipline.
type BoolCell struct {
	v    bool
	name string
}

// Get returns the current value. Caller must hold the monitor.
func (c *BoolCell) Get() bool { return c.v }

// Set stores v. Caller must hold the monitor.
func (c *BoolCell) Set(v bool) { c.v = v }

// varSlot records one declared shared variable of a monitor.
type varSlot struct {
	typ  expr.Type
	get  expr.Getter // reads the cell; bools encode as 0/1
	ic   *IntCell
	bc   *BoolCell
	name string
}

func (s *varSlot) value() expr.Value {
	if s.typ == expr.TypeBool {
		return expr.BoolValue(s.bc.Get())
	}
	return expr.IntValue(s.ic.Get())
}

// Binding supplies the value of one thread-local variable to Await. The
// bound values are the ~a_t of Definition 2: they are captured at the
// moment waituntil begins and globalize the predicate for the duration of
// the wait.
type Binding struct {
	Name string
	Val  expr.Value
}

// BindInt binds a local integer variable for the duration of an Await.
func BindInt(name string, v int64) Binding {
	return Binding{Name: name, Val: expr.IntValue(v)}
}

// BindBool binds a local boolean variable for the duration of an Await.
func BindBool(name string, v bool) Binding {
	return Binding{Name: name, Val: expr.BoolValue(v)}
}
