// Package core implements the AutoSynch runtime: the condition manager, the
// relay-signaling rule, predicate registration with tagging, and the four
// monitor mechanisms compared in the paper's evaluation (§6.2):
//
//   - Monitor (AutoSynch): automatic signaling with globalization, relay
//     invariance, and predicate tagging — the paper's contribution.
//   - Monitor with WithoutTagging (AutoSynch-T): identical, but the search
//     for a true waiter scans every registered predicate linearly.
//   - Baseline: a single condition variable; every state change broadcasts
//     (signalAll) and each woken thread re-evaluates its own predicate.
//   - Explicit: an instrumented mutex + condition-variable monitor, the
//     java.util.concurrent analog, where the programmer signals manually.
//
// All four share the Stats instrumentation so experiments can compare
// signals, wake-ups, and futile wake-ups (the context-switch proxy of
// Fig. 15) on equal footing.
//
// Waiters are first-class: a *Wait handle (Predicate.Arm, Cond.Arm, or
// any mechanism's ArmFunc) registers with the condition manager exactly
// like a blocking wait but delivers its notification by closing a
// channel, so one goroutine can multiplex any number of armed waits with
// select. In the automatic monitor the blocking waits are thin wrappers
// over the same waiter objects — relay signaling, tag structures, and
// cancellation all operate on them; the comparison mechanisms keep their
// native condition-variable parking (that parking IS what they measure)
// and run the handle lists alongside.
package core
