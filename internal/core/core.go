// Package core implements the AutoSynch runtime: the condition manager, the
// relay-signaling rule, predicate registration with tagging, and the four
// monitor mechanisms compared in the paper's evaluation (§6.2):
//
//   - Monitor (AutoSynch): automatic signaling with globalization, relay
//     invariance, and predicate tagging — the paper's contribution.
//   - Monitor with WithoutTagging (AutoSynch-T): identical, but the search
//     for a true waiter scans every registered predicate linearly.
//   - Baseline: a single condition variable; every state change broadcasts
//     (signalAll) and each woken thread re-evaluates its own predicate.
//   - Explicit: an instrumented mutex + condition-variable monitor, the
//     java.util.concurrent analog, where the programmer signals manually.
//
// All four share the Stats instrumentation so experiments can compare
// signals, wake-ups, and futile wake-ups (the context-switch proxy of
// Fig. 15) on equal footing.
//
// Waiters are first-class: a *Wait handle (Predicate.Arm, Cond.Arm, or
// any mechanism's ArmFunc) registers with the condition manager exactly
// like a blocking wait but delivers its notification by closing a
// channel, so one goroutine can multiplex any number of armed waits with
// select. In the automatic monitor the blocking waits are thin wrappers
// over the same waiter objects — relay signaling, tag structures, and
// cancellation all operate on them; the comparison mechanisms keep their
// native condition-variable parking (that parking IS what they measure)
// and run the handle lists alongside.
//
// Guarded regions are first-class too: When (on a compiled predicate, a
// closure, or an explicit condition) returns a *Guard whose Do/DoCtx/Try
// run the whole enter-waituntil-mutate-exit unit atomically with a
// panic-safe unlock, and Select waits on any number of guards across
// monitors and mechanisms — parking once on a shared delivery channel,
// claiming the first true predicate Mesa-style, and cancelling the
// losers with the usual relay repair, so no wake-up and no waiter leaks.
//
// # When to shard
//
// One Monitor is one lock and one condition manager: every entry and
// exit serializes, and the relay search on each exit considers every
// shared-expression group with a signalable waiter. Predicate tagging
// makes the search within a group O(1)-ish, but it cannot prune across
// groups — a monitor carrying N independent waiting conditions (per-key
// watchers, per-session completion waits) pays an O(N) sweep on every
// exit no matter how good the tags are. When state partitions cleanly by
// key and waiters are keyed too, use a sharded monitor (internal/shard,
// re-exported as autosynch.Sharded): S inner Monitors, each with its own
// lock, condition manager, and tag index, so both the lock traffic and
// the standing group population divide by S. Every per-shard guarantee
// of this package survives unchanged, because each shard IS a Monitor:
// relay invariance holds shard-locally, signals are relayed (never
// broadcast), and tags prune within each shard's groups.
//
// Conditions spanning shards ("total free slots across all shards ≥ n")
// cannot be a predicate of any single shard. The shard package's Counter
// gives them a home: per-shard deltas batch under the shard lock and
// publish into a small summary Monitor when they cross a threshold, and
// the aggregate bound is an ordinary compiled predicate on that summary
// — threshold-tagged, relay-signaled. Waiters escalate to the summary
// only after shard-local probing fails, and a watch protocol (precise
// publication plus a flush, ordered before the park) guarantees the
// batching never hides the update a parked aggregate waiter needs.
package core
