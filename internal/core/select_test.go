package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/testutil"
)

// TestSelectFirstTrueAcrossMonitors: two independent monitors, one
// Select; whichever predicate becomes true first wins, its body runs
// under that monitor, and the loser is cancelled with nothing left
// registered on either monitor.
func TestSelectFirstTrueAcrossMonitors(t *testing.T) {
	for winner := 0; winner < 2; winner++ {
		ma, mb := New(), New()
		xa, xb := ma.NewInt("x", 0), mb.NewInt("x", 0)
		ga := ma.MustCompile("x > 0").When()
		gb := mb.MustCompile("x > 0").When()

		type outcome struct {
			idx int
			err error
		}
		res := make(chan outcome, 1)
		var ranA, ranB bool
		go func() {
			idx, err := Select(
				ga.Then(func() { ranA = true; xa.Add(-1) }),
				gb.Then(func() { ranB = true; xb.Add(-1) }),
			)
			res <- outcome{idx, err}
		}()
		// Both guards must be armed (parked) before the winner fires, so
		// the win is decided by notification, not by the initial poll.
		testutil.WaitFor(t, 10*time.Second, 0,
			func() bool { return ma.Waiting() == 1 && mb.Waiting() == 1 },
			"both guards armed")
		if winner == 0 {
			ma.Do(func() { xa.Add(1) })
		} else {
			mb.Do(func() { xb.Add(1) })
		}
		o := <-res
		if o.err != nil {
			t.Fatalf("Select: %v", o.err)
		}
		if o.idx != winner || (winner == 0) != ranA || (winner == 1) != ranB {
			t.Fatalf("winner = %d (ranA=%v ranB=%v), want %d", o.idx, ranA, ranB, winner)
		}
		for i, m := range []*Monitor{ma, mb} {
			testutil.WaitFor(t, 5*time.Second, 0, func() bool { return m.Waiting() == 0 },
				"monitor %d drained", i)
		}
	}
}

// TestSelectAcrossMechanisms: one Select spanning an automatic monitor,
// a baseline, and an explicit condition. Fire each in turn; the right
// body runs and no mechanism leaks a waiter.
func TestSelectAcrossMechanisms(t *testing.T) {
	m := New()
	xm := m.NewInt("x", 0)
	b := NewBaseline()
	var xb int64
	e := NewExplicit()
	ce := e.NewCond()
	var xe int64

	cases := []Case{
		m.MustCompile("x > 0").When().Then(func() { xm.Add(-1) }),
		b.WhenFunc(func() bool { return xb > 0 }).Then(func() { xb-- }),
		ce.When(func() bool { return xe > 0 }).Then(func() { xe-- }),
	}
	fire := []func(){
		func() { m.Do(func() { xm.Add(1) }) },
		func() { b.Do(func() { xb++ }) },
		func() { e.Do(func() { xe++; ce.Signal() }) },
	}
	mechs := []Mechanism{m, b, e}

	for want := range cases {
		res := make(chan int, 1)
		go func() {
			idx, err := Select(cases...)
			if err != nil {
				t.Error(err)
			}
			res <- idx
		}()
		testutil.WaitFor(t, 10*time.Second, 0, func() bool {
			return m.Waiting()+b.Waiting()+e.Waiting() == 3
		}, "all three guards armed")
		fire[want]()
		if got := <-res; got != want {
			t.Fatalf("winner = %d, want %d", got, want)
		}
		for i, mech := range mechs {
			testutil.WaitFor(t, 5*time.Second, 0, func() bool { return mech.Waiting() == 0 },
				"mechanism %d drained", i)
		}
	}
}

// TestSelectClaimVsFalsify: a thief races the selector for every token,
// so claims are falsified between notification and re-entry; the handle
// must transparently re-arm and the selector must still consume exactly
// its share, with no lost wake-up and no leak. Run under -race.
func TestSelectClaimVsFalsify(t *testing.T) {
	m := New()
	x := m.NewInt("x", 0)
	g := m.MustCompile("x > 0").When()

	const tokens = 300
	var bySelect, byThief int64
	done := make(chan struct{})
	// The thief consumes inside plain critical sections, never waiting.
	go func() {
		defer close(done)
		for {
			stop := false
			m.Do(func() {
				if x.Get() > 0 {
					x.Add(-1)
					byThief++
				}
				stop = bySelect+byThief >= tokens
			})
			if stop {
				return
			}
		}
	}()
	go func() {
		for i := 0; i < tokens; i++ {
			m.Do(func() { x.Add(1) })
		}
	}()
	for {
		var quit bool
		m.Do(func() { quit = bySelect+byThief >= tokens })
		if quit {
			break
		}
		idx, err := SelectCtx(timeoutCtx(t, 30*time.Second),
			g.Then(func() { x.Add(-1); bySelect++ }),
		)
		if err != nil {
			// The thief may have consumed the last token while we parked.
			var fin bool
			m.Do(func() { fin = bySelect+byThief >= tokens })
			if fin {
				break
			}
			t.Fatalf("Select: idx=%d err=%v", idx, err)
		}
	}
	<-done
	var final int64
	m.Do(func() { final = x.Get() })
	if bySelect+byThief != tokens || final != 0 {
		t.Fatalf("consumed %d+%d of %d, x=%d", bySelect, byThief, tokens, final)
	}
	testutil.WaitFor(t, 5*time.Second, 0, func() bool { return m.Waiting() == 0 }, "no leaks")
	if s := m.Stats(); s.FutileClaims == 0 {
		t.Logf("note: no futile claim was observed this run (schedule-dependent)")
	}
}

// timeoutCtx returns a context that fails the test if it expires.
func timeoutCtx(t *testing.T, d time.Duration) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	t.Cleanup(cancel)
	return ctx
}

// TestSelectLoserCancelVsRelay: the losing guard's monitor has a relay
// signal in flight to the armed handle when the Select cancels it; the
// cancellation must pass the signal on to the blocking waiter parked on
// the same predicate — relay invariance across guard teardown. Run many
// rounds so the in-flight window is actually hit. Run under -race.
func TestSelectLoserCancelVsRelay(t *testing.T) {
	const rounds = 200
	for r := 0; r < rounds; r++ {
		ma, mb := New(), New()
		xa, xb := ma.NewInt("x", 0), mb.NewInt("x", 0)
		ga := ma.MustCompile("x > 0").When()
		gb := mb.MustCompile("x > 0").When()

		// A blocking waiter on B's predicate, behind the Select's guard.
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			mb.Enter()
			if err := mb.Await("x > 0"); err != nil {
				panic(err)
			}
			xb.Add(-1)
			mb.Exit()
		}()

		res := make(chan int, 1)
		go func() {
			idx, err := Select(
				ga.Then(func() { xa.Add(-1) }),
				gb.Then(func() {}), // does not consume: the blocked waiter must still win the token
			)
			if err != nil {
				t.Error(err)
			}
			res <- idx
		}()
		testutil.WaitFor(t, 10*time.Second, 0,
			func() bool { return ma.Waiting() == 1 && mb.Waiting() == 2 },
			"guards and blocking waiter parked (round %d)", r)

		// Fire both sides as close together as possible: B's relay may be
		// in flight to the armed handle exactly when A wins and the Select
		// cancels it.
		var fire sync.WaitGroup
		fire.Add(2)
		go func() { defer fire.Done(); mb.Do(func() { xb.Add(1) }) }()
		go func() { defer fire.Done(); ma.Do(func() { xa.Add(1) }) }()
		fire.Wait()
		<-res

		// Whoever won, the blocking waiter on B must eventually get its
		// token: either the Select won B (body consumed nothing) or the
		// cancellation relayed the in-flight signal onward.
		wg.Wait()
		testutil.WaitFor(t, 10*time.Second, 0,
			func() bool { return ma.Waiting() == 0 && mb.Waiting() == 0 },
			"all waiters drained (round %d)", r)
		var leftB int64
		mb.Do(func() { leftB = xb.Get() })
		if leftB != 0 {
			t.Fatalf("round %d: token on B not consumed (x=%d): lost wake-up", r, leftB)
		}
	}
}

// TestSelectTwoMonitorStress: tokens land randomly on two monitors while
// one selector drains both; every token must be consumed with zero leaks.
// Run under -race.
func TestSelectTwoMonitorStress(t *testing.T) {
	const total = 2000
	ma, mb := New(), New()
	xa, xb := ma.NewInt("x", 0), mb.NewInt("x", 0)
	ga := ma.MustCompile("x > 0").When()
	gb := mb.MustCompile("x > 0").When()

	var produced int64
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for atomic.AddInt64(&produced, 1) <= total {
				if seed = seed*6364136223846793005 + 1442695040888963407; seed&1 == 0 {
					ma.Do(func() { xa.Add(1) })
				} else {
					mb.Do(func() { xb.Add(1) })
				}
			}
		}(int64(p + 1))
	}

	drained := 0
	for drained < total {
		_, err := Select(
			ga.Then(func() { xa.Add(-1); drained++ }),
			gb.Then(func() { xb.Add(-1); drained++ }),
		)
		if err != nil {
			t.Fatalf("Select: %v", err)
		}
	}
	wg.Wait()
	var la, lb int64
	ma.Do(func() { la = xa.Get() })
	mb.Do(func() { lb = xb.Get() })
	if la != 0 || lb != 0 {
		t.Fatalf("leftover tokens: a=%d b=%d", la, lb)
	}
	testutil.WaitFor(t, 5*time.Second, 0,
		func() bool { return ma.Waiting() == 0 && mb.Waiting() == 0 }, "zero leaked waiters")
}

// TestSelectDefault: with no guard ready the default body runs outside
// any monitor, nothing is armed, and nothing leaks; with a guard ready
// the guard wins and the default does not run.
func TestSelectDefault(t *testing.T) {
	m := New()
	x := m.NewInt("x", 0)
	g := m.MustCompile("x > 0").When()

	ran, dflt := false, false
	idx, err := Select(
		g.Then(func() { ran = true }),
		Default(func() { dflt = true }),
	)
	if err != nil || idx != 1 || ran || !dflt {
		t.Fatalf("empty: idx=%d err=%v ran=%v dflt=%v", idx, err, ran, dflt)
	}
	if arms := m.Stats().Arms; arms != 0 {
		t.Fatalf("Default path armed %d handles; must arm none", arms)
	}

	m.Do(func() { x.Add(1) })
	ran, dflt = false, false
	idx, err = Select(
		g.Then(func() { ran = true; x.Add(-1) }),
		Default(func() { dflt = true }),
	)
	if err != nil || idx != 0 || !ran || dflt {
		t.Fatalf("ready: idx=%d err=%v ran=%v dflt=%v", idx, err, ran, dflt)
	}
	if w := m.Waiting(); w != 0 {
		t.Fatalf("%d waiters left", w)
	}
}

// TestSelectCtxCancel: cancellation while parked returns ctx.Err() with
// index -1 and cancels every armed guard.
func TestSelectCtxCancel(t *testing.T) {
	ma, mb := New(), New()
	ma.NewInt("x", 0)
	mb.NewInt("x", 0)
	ga := ma.MustCompile("x > 0").When()
	gb := mb.MustCompile("x > 0").When()

	ctx, cancel := context.WithCancel(context.Background())
	res := make(chan error, 1)
	go func() {
		idx, err := SelectCtx(ctx, ga.Then(func() {}), gb.Then(func() {}))
		if idx != -1 {
			t.Errorf("idx = %d, want -1", idx)
		}
		res <- err
	}()
	testutil.WaitFor(t, 10*time.Second, 0,
		func() bool { return ma.Waiting() == 1 && mb.Waiting() == 1 }, "guards armed")
	cancel()
	if err := <-res; !errors.Is(err, context.Canceled) {
		t.Fatalf("SelectCtx = %v, want context.Canceled", err)
	}
	testutil.WaitFor(t, 5*time.Second, 0,
		func() bool { return ma.Waiting() == 0 && mb.Waiting() == 0 }, "losers cancelled")

	// An already-done context wins over everything, Default included:
	// no body runs, on either shape.
	if idx, err := SelectCtx(ctx, Default(func() { t.Error("default ran") })); idx != -1 || !errors.Is(err, context.Canceled) {
		t.Fatalf("done-ctx default-only = %d, %v", idx, err)
	}
	if idx, err := SelectCtx(ctx, ga.Then(func() { t.Error("body ran") }), Default(func() { t.Error("default ran") })); idx != -1 || !errors.Is(err, context.Canceled) {
		t.Fatalf("done-ctx with guards = %d, %v", idx, err)
	}
}

// TestSelectOrderedPriority: when several guards are ready at the same
// decision point, SelectOrdered always picks the earliest case, while
// Select spreads wins across positions.
func TestSelectOrderedPriority(t *testing.T) {
	m := New()
	m.NewInt("x", 1) // stays 1: every guard is permanently ready
	g := m.MustCompile("x > 0").When()

	for i := 0; i < 50; i++ {
		idx, err := SelectOrdered(g.Then(func() {}), g.Then(func() {}), g.Then(func() {}))
		if err != nil || idx != 0 {
			t.Fatalf("SelectOrdered picked %d (err %v), want 0", idx, err)
		}
	}

	seen := map[int]bool{}
	for i := 0; i < 200 && len(seen) < 3; i++ {
		idx, err := Select(g.Then(func() {}), g.Then(func() {}), g.Then(func() {}))
		if err != nil {
			t.Fatal(err)
		}
		seen[idx] = true
	}
	if len(seen) < 2 {
		t.Errorf("randomized Select always picked the same case: %v", seen)
	}
	if w := m.Waiting(); w != 0 {
		t.Fatalf("%d waiters left", w)
	}
}

// TestSelectErrors: misuse and guard construction errors surface before
// anything parks, with the erring case's index.
func TestSelectErrors(t *testing.T) {
	if idx, err := Select(); idx != -1 || !errors.Is(err, ErrNoCases) {
		t.Fatalf("Select() = %d, %v", idx, err)
	}
	if idx, err := Select(Case{}); idx != 0 || !errors.Is(err, ErrNilGuard) {
		t.Fatalf("nil guard = %d, %v", idx, err)
	}
	if idx, err := Select(Default(func() {}), Default(func() {})); idx != 1 || !errors.Is(err, ErrManyDefaults) {
		t.Fatalf("two defaults = %d, %v", idx, err)
	}

	m := New()
	m.NewInt("count", 0)
	p := m.MustCompile("count >= num")
	good := m.MustCompile("count >= 0").When()
	bad := m.When(p) // missing binding
	var perr *PredicateError
	if idx, err := Select(good.Then(func() {}), bad.Then(func() {})); idx != 1 || !errors.As(err, &perr) {
		t.Fatalf("bad guard = %d, %v", idx, err)
	}
	never := m.When(m.MustCompile("num < num"), BindInt("num", 0))
	if idx, err := Select(never.Then(func() {}), good.Then(func() {})); idx != 0 || !errors.Is(err, ErrNeverTrue) {
		t.Fatalf("never-true guard = %d, %v", idx, err)
	}
	if w := m.Waiting(); w != 0 {
		t.Fatalf("error paths registered %d waiters", w)
	}

	// Default-only Select runs the default.
	ran := false
	if idx, err := Select(Default(func() { ran = true })); idx != 0 || err != nil || !ran {
		t.Fatalf("default-only = %d, %v, ran=%v", idx, err, ran)
	}
}

// TestSelectWinnerPanic: a panicking winning body must release the
// winner's monitor AND cancel every loser before the panic propagates.
func TestSelectWinnerPanic(t *testing.T) {
	ma, mb := New(), New()
	xa := ma.NewInt("x", 1)
	mb.NewInt("x", 0)
	ga := ma.MustCompile("x > 0").When()
	gb := mb.MustCompile("x > 0").When()

	recovered := func() (r any) {
		defer func() { r = recover() }()
		_, _ = Select(ga.Then(func() { panic("winner") }), gb.Then(func() {}))
		return nil
	}()
	if recovered != "winner" {
		t.Fatalf("panic = %v, want to propagate", recovered)
	}
	testutil.WaitFor(t, 5*time.Second, 0,
		func() bool { return ma.Waiting() == 0 && mb.Waiting() == 0 },
		"losers cancelled after winner panic")
	// Both monitors must be usable.
	ma.Do(func() { xa.Add(-1) })
	mb.Do(func() {})
}

// TestSelectGuardReuseConcurrent: two selectors share the same guards;
// every token is claimed by exactly one of them. Run under -race.
func TestSelectGuardReuseConcurrent(t *testing.T) {
	m := New()
	x := m.NewInt("x", 0)
	g := m.MustCompile("x > 0").When()

	const total = 600
	var drained int64
	var wg sync.WaitGroup
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				var quit bool
				m.Do(func() { quit = drained >= total })
				if quit {
					return
				}
				ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
				_, err := SelectCtx(ctx, g.Then(func() { x.Add(-1); drained++ }))
				cancel()
				if err != nil && !errors.Is(err, context.DeadlineExceeded) {
					t.Error(err)
					return
				}
			}
		}()
	}
	for i := 0; i < total; i++ {
		m.Do(func() { x.Add(1) })
	}
	wg.Wait()
	var left, got int64
	m.Do(func() { left = x.Get(); got = drained })
	if got != total || left != 0 {
		t.Fatalf("drained %d of %d, left %d", got, total, left)
	}
	testutil.WaitFor(t, 5*time.Second, 0, func() bool { return m.Waiting() == 0 }, "no leaks")
}
