package core

import (
	"errors"
	"time"

	"repro/internal/policy"
)

// Handle lifecycle sentinels. ErrNotReady is the expected return of a
// futile Claim (the handle has been re-armed and will fire again);
// ErrClaimed and ErrCancelled report misuse of a finished handle.
var (
	// ErrNotReady is returned by Wait.Claim when a racing mutation
	// falsified the predicate between notification and the claim. The
	// handle has been transparently re-armed: Ready returns a fresh
	// channel and the claim loop simply selects again.
	ErrNotReady = errors.New("autosynch: predicate no longer holds; wait handle re-armed")

	// ErrClaimed is returned by Wait.Claim on a handle that was already
	// claimed successfully.
	ErrClaimed = errors.New("autosynch: wait handle already claimed")

	// ErrCancelled is reported by Wait.Err and Wait.Claim after Cancel.
	ErrCancelled = errors.New("autosynch: wait handle cancelled")

	// ErrDeadline is returned by the deadline-aware waits
	// (AwaitDeadline/AwaitTimeout/AwaitFuncDeadline) and reported by a
	// handle whose Wait.Deadline passed before it was claimed. Like a
	// context cancellation, expiry takes priority once observed: a waiter
	// woken by its deadline returns ErrDeadline even if its predicate has
	// just become true, and relay invariance is restored before it
	// returns (the in-flight signal, if it held one, is reconciled and
	// relayed onward).
	ErrDeadline = errors.New("autosynch: wait deadline exceeded")
)

// waitState is the lifecycle of a handle: armed (registered, waiting to
// be notified or re-validated), claimed (the wait completed; the claimer
// holds the monitor), or cancelled (unregistered without completing —
// by Cancel or because arming itself failed).
type waitState uint8

const (
	waitArmed waitState = iota
	waitClaimed
	waitCancelled
)

// waitHost is the mechanism half of a handle: each monitor type supplies
// its own lock plus the registration-aware claim and cancel steps, so one
// Wait type serves Monitor, Baseline, and Explicit uniformly.
type waitHost interface {
	lockWait()
	unlockWait()
	// claimLocked runs under the host lock with the handle armed. On nil
	// it has marked the handle claimed, unregistered it, and left the
	// monitor HELD for the caller; on ErrNotReady it has re-armed the
	// handle and the generic wrapper releases the lock.
	claimLocked(w *Wait) error
	// cancelLocked unregisters an armed handle and restores the host's
	// signaling invariants. The generic wrapper has already moved the
	// handle to waitCancelled and closed its channel.
	cancelLocked(w *Wait)
	// timers returns the host's deadline wheel, creating it lazily.
	// Called under the host lock.
	timers() *timerWheel
	// statExpired counts one deadline expiry (of handle w) under the
	// host lock.
	statExpired(w *Wait)
}

// Wait is a first-class armed waiter: the waituntil of the paper without
// the parked goroutine. Predicate.Arm (and the per-mechanism ArmFunc)
// registers the waiter with the condition manager exactly like a blocking
// Await, but delivers the notification by closing a channel instead of
// unparking a goroutine — so one goroutine can multiplex any number of
// armed waits with select:
//
//	w := notEmpty.Arm()
//	select {
//	case <-w.Ready():
//	    if err := w.Claim(); err == autosynch.ErrNotReady {
//	        continue // falsified by a racing mutation; handle re-armed
//	    }
//	    // predicate true, monitor held: consume, then Exit.
//	    take()
//	    m.Exit()
//	case <-other:
//	    ...
//	}
//
// Ready fires when the mechanism decides this waiter's predicate has
// become true (relay signaling for Monitor, a broadcast for Baseline, a
// manual signal for Explicit). Notification is decoupled from monitor
// handoff: the claimer re-enters the monitor and re-validates Mesa-style,
// because the state may have changed since the channel was closed.
//
// An armed handle counts toward Waiting() and, for Monitor, may hold the
// mechanism's single in-flight relay signal; a handle that fires must be
// claimed or cancelled promptly, and every armed handle must eventually
// be claimed or cancelled, or its monitor's signaling stalls (exactly as
// if a signaled thread were never scheduled again).
//
// All methods are safe for concurrent use, but Claim and Cancel acquire
// the monitor internally — do not call them while holding it.
type Wait struct {
	host waitHost

	// All remaining fields are guarded by the host's monitor lock.
	ready    chan struct{} // closed to notify; replaced on re-arm
	state    waitState
	notified bool  // ready is closed for the current arm cycle
	viaRelay bool  // the notification is an in-flight relay signal (Monitor)
	err      error // terminal error: arm failure, ErrCancelled, or ErrDeadline
	e        *entry
	pred     func() bool // Baseline/Explicit re-validation closure
	list     *waitList   // registration list for list-based hosts
	idx      int         // position in e.waiters or list.ws

	// Wake-policy and deadline state. seq is the host-global arrival
	// sequence and rank the registration-time policy rank — together the
	// policy.Candidate the wake policy compares. since is the
	// registration wall time feeding MaxWaitNs/Starved; timer the armed
	// deadline item, if any; expired flags a blocking waiter whose
	// deadline fired (checked before the predicate on wake-up).
	seq     uint64
	rank    int64
	since   int64
	timer   *timerItem
	expired bool

	// Select subscription: when set, every notification additionally
	// delivers selIdx on selCh, so one goroutine can park on a single
	// channel shared by any number of handles (across monitors and
	// mechanisms) instead of reflect.Select's O(N) case walk. The
	// subscription survives re-arming: a futile claim re-arms the handle
	// and the next notification delivers again.
	selCh  chan int
	selIdx int
}

// newWait constructs an armed handle for a host; registration is the
// host's job.
func newWait(h waitHost) *Wait {
	return &Wait{host: h, ready: make(chan struct{}), idx: -1}
}

// failedWait is a handle whose arming failed: Ready is already closed,
// Claim and Err report the error, Cancel is a no-op.
func failedWait(err error) *Wait {
	w := &Wait{state: waitCancelled, err: err, ready: make(chan struct{}), idx: -1}
	close(w.ready)
	w.notified = true
	return w
}

// notify closes the ready channel for the current arm cycle. Idempotent;
// runs under the host lock.
func (w *Wait) notify() {
	if w.notified {
		return
	}
	w.notified = true
	close(w.ready)
	if w.selCh != nil {
		// At most one delivery is outstanding per handle (notify is gated
		// by the notified flag and re-arming happens under the subscriber's
		// own claim), so a buffered channel sized to the subscription count
		// never drops; the non-blocking send only discards post-teardown
		// courtesy closes from Cancel.
		select {
		case w.selCh <- w.selIdx:
		default:
		}
	}
}

// rearm resets the handle for another notification cycle: a fresh channel
// and cleared delivery flags. Runs under the host lock; the caller settles
// any in-flight-signal accounting first.
func (w *Wait) rearm() {
	w.notified = false
	w.viaRelay = false
	w.ready = make(chan struct{})
}

// subscribe attaches a shared Select delivery channel to the handle: the
// current and every future notification (the subscription survives
// re-arming) sends idx on ch. A handle that is already notified — or
// whose arming failed, leaving it born-notified — delivers immediately,
// so a subscriber can never miss the arm-time evaluation.
func (w *Wait) subscribe(ch chan int, idx int) {
	if w.host == nil {
		select {
		case ch <- idx:
		default:
		}
		return
	}
	w.host.lockWait()
	w.selCh, w.selIdx = ch, idx
	if w.notified {
		select {
		case ch <- idx:
		default:
		}
	}
	w.host.unlockWait()
}

// Subscribe attaches a standing delivery channel to the handle: the
// current and every future notification (the subscription survives the
// transparent re-arm after a futile Claim) sends idx on ch, so one
// goroutine can multiplex any number of armed handles by receiving from
// a single channel — the mechanism behind Select, exposed for daemons
// that hold long-lived handle populations (internal/watchd).
//
// The contract that makes delivery lossless: ch must be buffered, and the
// subscriber must guarantee capacity for every notification that can be
// outstanding at once. A handle sends at most once per arm cycle (the
// notified flag gates it), and a new cycle begins only after the previous
// notification was consumed — via Claim (success starts no cycle; a
// futile claim re-arms) — so a population of N live handles needs
// capacity N, plus one slot per cancelled handle whose final notification
// (Cancel's courtesy delivery) has not yet been received. Sends never
// block: a notification that finds the channel full is dropped, which
// the sizing rule above must make impossible for live handles.
//
// A handle already notified — or born notified because arming failed —
// delivers immediately, so a subscriber cannot miss the arm-time
// evaluation. Subscribing again replaces the previous subscription.
func (w *Wait) Subscribe(ch chan int, idx int) { w.subscribe(ch, idx) }

// Ready returns the channel that is closed when the waiter is notified.
// After a futile Claim the handle is re-armed with a fresh channel, so a
// select loop must call Ready again on each iteration rather than caching
// the first channel.
func (w *Wait) Ready() <-chan struct{} {
	if w.host == nil {
		return w.ready
	}
	w.host.lockWait()
	ch := w.ready
	w.host.unlockWait()
	return ch
}

// Claim completes the wait: it re-enters the monitor and re-validates the
// predicate Mesa-style. On nil the caller HOLDS the monitor with the
// predicate true — the handle is spent, and the usual critical section
// ends with Exit. If a racing mutation falsified the predicate, Claim
// re-arms the handle transparently and returns ErrNotReady without the
// monitor; select on Ready again. A cancelled or arm-failed handle
// returns its terminal error, an already-claimed one ErrClaimed.
//
// Claim may be called before Ready fires; it then simply answers whether
// the predicate holds right now (claiming eagerly, or re-arming).
func (w *Wait) Claim() error {
	if w.host == nil {
		return w.err
	}
	w.host.lockWait()
	switch w.state {
	case waitClaimed:
		w.host.unlockWait()
		return ErrClaimed
	case waitCancelled:
		err := w.err
		w.host.unlockWait()
		return err
	}
	err := w.host.claimLocked(w)
	if err != nil {
		w.host.unlockWait()
		return err
	}
	w.stopTimer()
	return nil
}

// Deadline arms a deadline on the handle: if it is still armed when t
// passes, the handle is cancelled with ErrDeadline — Ready fires (so a
// selecting goroutine unblocks), Claim and Err report ErrDeadline, and
// the host's signaling invariants are restored exactly as by Cancel (an
// in-flight relay signal is reconciled and relayed onward). A successful
// Claim or an explicit Cancel first disarms the timer. Arming a second
// deadline replaces the first. Deadline returns its receiver so it chains
// off Arm: p.Arm(binds...).Deadline(t). The expiry machinery is the
// host's timer wheel — one goroutine per monitor, not one per handle —
// and that goroutine exits whenever no deadline is pending.
func (w *Wait) Deadline(t time.Time) *Wait {
	if w.host == nil {
		return w
	}
	w.host.lockWait()
	if w.state != waitArmed {
		w.host.unlockWait()
		return w
	}
	w.timer.stop()
	w.timer = w.host.timers().add(t, func() { w.expire() })
	w.host.unlockWait()
	return w
}

// Timeout is Deadline relative to now.
func (w *Wait) Timeout(d time.Duration) *Wait { return w.Deadline(time.Now().Add(d)) }

// expire is the timer wheel's fire path for a handle deadline: cancel
// the handle with ErrDeadline. Racing claims are settled by the host
// lock — a handle claimed or cancelled first makes this a no-op.
func (w *Wait) expire() {
	w.host.lockWait()
	defer w.host.unlockWait()
	if w.state != waitArmed {
		return
	}
	w.state = waitCancelled
	w.err = ErrDeadline
	w.host.statExpired(w)
	w.host.cancelLocked(w)
	w.notify()
}

// stopTimer disarms the handle's deadline, if any. Runs under the host
// lock.
func (w *Wait) stopTimer() {
	w.timer.stop()
	w.timer = nil
}

// cand is the waiter's identity for wake-policy comparisons.
func cand(w *Wait) policy.Candidate { return policy.Candidate{Seq: w.seq, Rank: w.rank} }

// Cancel abandons an armed handle: it is unregistered from the predicate
// table and tag structures, any in-flight signal addressed to it is
// reconciled and relayed onward (relay invariance survives, exactly as
// for a context-cancelled Await), and Ready is closed so a selecting
// goroutine unblocks. Err reports ErrCancelled afterwards. Cancelling a
// claimed, failed, or already-cancelled handle is a no-op.
func (w *Wait) Cancel() {
	if w.host == nil {
		return
	}
	w.host.lockWait()
	defer w.host.unlockWait()
	if w.state != waitArmed {
		return
	}
	w.state = waitCancelled
	w.err = ErrCancelled
	w.stopTimer()
	// Unregister before closing the channel: the host's bookkeeping (the
	// entry's unnotified count, for Monitor) distinguishes delivered
	// notifications from the cancellation's courtesy close.
	w.host.cancelLocked(w)
	w.notify()
}

// Err returns the handle's terminal error: nil while armed or after a
// successful claim, ErrCancelled after Cancel, or the arming error for a
// handle whose Arm failed (malformed bindings, ErrNeverTrue, …).
func (w *Wait) Err() error {
	if w.host == nil {
		return w.err
	}
	w.host.lockWait()
	err := w.err
	w.host.unlockWait()
	return err
}

// waitList is the waiter registry of the broadcast- and signal-based
// mechanisms (Baseline, Explicit): an order-indifferent set with O(1)
// add/remove and notification sweeps. All methods run under the owning
// monitor's lock.
type waitList struct {
	ws []*Wait
}

func (l *waitList) add(w *Wait) {
	w.list = l
	w.idx = len(l.ws)
	l.ws = append(l.ws, w)
}

func (l *waitList) remove(w *Wait) {
	last := len(l.ws) - 1
	moved := l.ws[last]
	l.ws[w.idx] = moved
	moved.idx = w.idx
	l.ws[last] = nil
	l.ws = l.ws[:last]
	w.idx = -1
	w.list = nil
}

// broadcast notifies every registered waiter except skip (a waiter about
// to park must not wake itself with its own pre-wait broadcast).
func (l *waitList) broadcast(skip *Wait) {
	for _, w := range l.ws {
		if w != skip {
			w.notify()
		}
	}
}

// signalOne notifies one not-yet-notified waiter, mirroring
// sync.Cond.Signal; returns the notified waiter, or nil when every
// waiter is already notified (or the list is empty). Without a policy
// the pick is list order; with one, the policy compares every eligible
// handle and the best wakes — the explicit-monitor half of the
// pluggable wake policies.
func (l *waitList) signalOne(pol policy.Policy) *Wait {
	var best *Wait
	for _, w := range l.ws {
		if w.notified {
			continue
		}
		if pol == nil {
			w.notify()
			return w
		}
		if best == nil || pol.Better(cand(w), cand(best)) {
			best = w
		}
	}
	if best == nil {
		return nil
	}
	best.notify()
	return best
}

// requeue moves a futile-woken waiter behind the waiters registered after
// it, mirroring a condition variable's FIFO rotation: a waiter whose
// predicate stays false cannot absorb every future signal while a
// runnable waiter starves behind it.
func (l *waitList) requeue(w *Wait) {
	l.remove(w)
	l.add(w)
}
