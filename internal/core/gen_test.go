package core

import (
	"testing"
	"time"

	"repro/internal/testutil"
)

// testGenPred registers a hand-written generated evaluator for
// "count + k <= cap || stop" whose tag derivation is taken from the
// runtime's own GenSpec, exactly as minisynchc does, and returns the
// registered form. Shared vars sorted: cap(int), count(int), stop(bool)
// → I[0]=cap, I[1]=count, B[0]=stop; locals: k.
func testGenPred(t *testing.T) GeneratedPred {
	t.Helper()
	probe := New(WithoutGenerated())
	probe.NewInt("count", 0)
	probe.NewInt("cap", 0)
	probe.NewBool("stop", false)
	spec := probe.MustCompile("count + k <= cap || stop").GenSpec()
	if spec.TagCanon == "" || len(spec.KeyNodes) != 1 {
		t.Fatalf("unexpected GenSpec template: canon=%q keys=%d", spec.TagCanon, len(spec.KeyNodes))
	}
	g := GeneratedPred{
		Src:      spec.Canon,
		Shared:   spec.Shared,
		Locals:   spec.Locals,
		TagCanon: spec.TagCanon,
		Eval: func(c *GenCells, locals []int64) bool {
			return c.I[1].Get()+locals[0] <= c.I[0].Get() || c.B[0].Get()
		},
		// The template sign-normalizes count - cap to cap - count and
		// negates the residual key back: cap - count >= k, so key = k.
		Keys: []GenKeyFn{func(locals []int64) int64 { return locals[0] }},
	}
	RegisterGenerated(g)
	return g
}

func newGenTestMonitor(opts ...Option) *Monitor {
	m := New(opts...)
	m.NewInt("count", 1)
	m.NewInt("cap", 10)
	m.NewBool("stop", false)
	return m
}

func TestGeneratedDispatch(t *testing.T) {
	testGenPred(t)
	m := newGenTestMonitor()
	p := m.MustCompile("count + k <= cap || stop")
	if !p.Generated() {
		t.Fatal("registered generated evaluator was not bound")
	}
	if s := m.Stats(); s.GenPreds != 1 {
		t.Errorf("GenPreds = %d, want 1", s.GenPreds)
	}
	m.Enter()
	ok, err := p.Try(BindInt("k", 9))
	if err != nil || !ok {
		m.Exit()
		t.Fatalf("Try(k=9) = %v, %v; want true", ok, err)
	}
	ok, err = p.Try(BindInt("k", 10))
	m.Exit()
	if err != nil || ok {
		t.Fatalf("Try(k=10) = %v, %v; want false", ok, err)
	}

	// The generated path must agree with the closure fallback on the
	// full registration probe: identity, evaluator verdict, and tags.
	fb := newGenTestMonitor(WithoutGenerated())
	pf := fb.MustCompile("count + k <= cap || stop")
	if pf.Generated() {
		t.Fatal("WithoutGenerated monitor bound a generated evaluator")
	}
	for k := int64(-3); k <= 12; k++ {
		got, err := m.ProbeEntry(p, BindInt("k", k))
		if err != nil {
			t.Fatalf("ProbeEntry(gen, k=%d): %v", k, err)
		}
		want, err := fb.ProbeEntry(pf, BindInt("k", k))
		if err != nil {
			t.Fatalf("ProbeEntry(fallback, k=%d): %v", k, err)
		}
		if got.Fast != want.Fast || got.Folded != want.Folded || got.Canon != want.Canon || got.Eval != want.Eval {
			t.Errorf("k=%d: probe diverged: gen=%+v fallback=%+v", k, got, want)
		}
		if len(got.Tags) != len(want.Tags) {
			t.Fatalf("k=%d: tag count %d vs %d", k, len(got.Tags), len(want.Tags))
		}
		for i := range got.Tags {
			if got.Tags[i].String() != want.Tags[i].String() {
				t.Errorf("k=%d tag[%d]: %s vs %s", k, i, got.Tags[i], want.Tags[i])
			}
		}
	}
}

func TestGeneratedEntryServesWait(t *testing.T) {
	testGenPred(t)
	m := newGenTestMonitor()
	p := m.MustCompile("count + k <= cap || stop")
	done := make(chan error, 1)
	go func() {
		m.Enter()
		err := m.AwaitPred(p, BindInt("k", 100)) // 1+100 > 10: parks
		m.Exit()
		done <- err
	}()
	testutil.WaitFor(t, 10*time.Second, 0, func() bool { return m.Waiting() == 1 }, "waiter parked")
	m.Do(func() { m.vars["cap"].ic.Set(1000) })
	if err := <-done; err != nil {
		t.Fatalf("await: %v", err)
	}
	s := m.Stats()
	if s.GenEntries == 0 {
		t.Error("parked wait did not build a generated entry")
	}
}

func TestGeneratedSignatureMismatchFallsBack(t *testing.T) {
	testGenPred(t)
	// Same source, but "stop" declared as an int: the typed signature
	// differs, so the closure path must serve.
	m := New()
	m.NewInt("count", 1)
	m.NewInt("cap", 10)
	m.NewInt("stop", 0)
	p, err := m.Compile("count + k <= cap || stop > 0")
	if err != nil {
		t.Fatal(err)
	}
	if p.Generated() {
		t.Fatal("bound a generated evaluator across a type mismatch")
	}
	if s := m.Stats(); s.GenMisses != 1 {
		t.Errorf("GenMisses = %d, want 1", s.GenMisses)
	}
	m.Enter()
	ok, err := p.Try(BindInt("k", 3))
	m.Exit()
	if err != nil || !ok {
		t.Fatalf("fallback Try = %v, %v", ok, err)
	}
}

func TestGeneratedBuilderSharesRegistration(t *testing.T) {
	testGenPred(t)
	m := newGenTestMonitor()
	count, capacity := m.vars["count"].ic, m.vars["cap"].ic
	var stop *BoolCell = m.vars["stop"].bc
	p, err := m.CompileExpr(Or(
		count.Expr().Plus(Local("k")).AtMost(capacity.Expr()),
		stop.IsTrue()))
	if err != nil {
		t.Fatal(err)
	}
	if !p.Generated() {
		t.Error("builder-compiled predicate did not bind the generated evaluator")
	}
}
