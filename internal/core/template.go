package core

import (
	"strconv"

	"repro/internal/expr"
	"repro/internal/linear"
	"repro/internal/tag"
)

// This file implements the globalization fast path. A predicate like
// "count >= num" is analyzed once into a template: per atom, a compiled
// evaluator for the canonical shared linear form (count), a canonical
// comparison operator, and a compiled key function over the local
// bindings (num). Each Await then computes the key vector, forms the
// entry identity from (template canon, keys), and — on a miss — builds
// the entry from the precompiled pieces. No substitution, DNF
// re-canonicalization, string rendering of predicates, or expression
// compilation happens per wait; this is what makes AutoSynch competitive
// with hand-signaled monitors on complex-predicate workloads like the
// round-robin pattern (Fig. 11).
//
// Predicates that do not fit the template shape (atoms that are nonlinear
// in the shared variables, or atoms mentioning only locals, whose truth
// changes the DNF structure per binding) fall back to the generic
// substitution path in Await.

// atomTmpl is one pre-analyzed atom: sharedForm op key.
type atomTmpl struct {
	formVal expr.IntFn  // canonical shared form over the cells
	formStr string      // canonical rendering, the tag group identity
	form    linear.Form // kept for tag construction
	op      expr.Op     // comparison, sign-normalized
	keyIdx  int         // index into the entry's key vector; -1 → constant
	keyK    int64       // the constant key when keyIdx < 0
}

type conjTmpl struct {
	atoms  []atomTmpl
	tagIdx int // atom supplying the conjunction's tag; -1 → None
}

// predTmpl is the per-predicate analysis.
type predTmpl struct {
	conjs    []conjTmpl
	keyFns   []expr.IntFn // key computations over the local binding slots
	keyNodes []expr.Node  // the key expressions themselves, for codegen
	canon    string       // template identity with $i key placeholders
}

// buildTemplate analyzes p's DNF into a template, or returns nil when the
// predicate does not fit the template shape.
func (m *Monitor) buildTemplate(p *Predicate) *predTmpl {
	if p.d.IsTrue() || p.d.IsFalse() {
		// Constant predicates take the generic path, which resolves them
		// to the fast path or ErrNeverTrue.
		return nil
	}
	t := &predTmpl{}
	var canon []byte
	for ci, c := range p.d.Conjs {
		if ci > 0 {
			canon = append(canon, " || "...)
		}
		ct := conjTmpl{tagIdx: -1}
		var thresholdIdx = -1
		for ai, a := range c.Atoms {
			at, ok := m.buildAtom(p, t, a)
			if !ok {
				return nil
			}
			if ai > 0 {
				canon = append(canon, " && "...)
			}
			canon = append(canon, at.formStr...)
			canon = append(canon, ' ')
			canon = append(canon, at.op.String()...)
			canon = append(canon, ' ')
			if at.keyIdx >= 0 {
				canon = append(canon, '$')
				canon = strconv.AppendInt(canon, int64(at.keyIdx), 10)
			} else {
				canon = strconv.AppendInt(canon, at.keyK, 10)
			}
			if at.op == expr.OpEq && ct.tagIdx < 0 {
				ct.tagIdx = ai
			}
			if at.op.IsOrdering() && thresholdIdx < 0 {
				thresholdIdx = ai
			}
			ct.atoms = append(ct.atoms, at)
		}
		if ct.tagIdx < 0 {
			ct.tagIdx = thresholdIdx // may stay -1 → None
		}
		t.conjs = append(t.conjs, ct)
	}
	t.canon = string(canon)
	return t
}

// buildAtom analyzes one atom. The supported shapes are bare shared
// boolean variables, their negations, and comparisons linear in the
// shared variables with any local-only residual as the key.
func (m *Monitor) buildAtom(p *Predicate, t *predTmpl, a expr.Node) (atomTmpl, bool) {
	isShared := func(name string) bool {
		_, ok := m.vars[name]
		return ok
	}
	switch n := a.(type) {
	case expr.Var:
		if !isShared(n.Name) {
			return atomTmpl{}, false
		}
		return m.boolAtom(n.Name, 1)
	case expr.Unary:
		if n.Op != expr.OpNot {
			return atomTmpl{}, false
		}
		v, ok := n.X.(expr.Var)
		if !ok || !isShared(v.Name) {
			return atomTmpl{}, false
		}
		return m.boolAtom(v.Name, 0)
	case expr.Binary:
		if !n.Op.IsComparison() {
			return atomTmpl{}, false
		}
		s, ok := linear.Decompose(expr.Bin(expr.OpSub, n.L, n.R), isShared)
		if !ok || s.Shared.IsConst() {
			return atomTmpl{}, false
		}
		form, op, sign := s.Shared, n.Op, int64(1)
		if _, lead, _ := form.Leading(); lead < 0 {
			form = form.Scale(-1)
			op = op.Flip()
			sign = -1
		}
		formVal, err := m.compileForm(form)
		if err != nil {
			return atomTmpl{}, false
		}
		at := atomTmpl{formVal: formVal, formStr: form.String(), form: form, op: op, keyIdx: -1}
		// Atom ⇔ form op sign·(−(residual + const)).
		if len(s.Residuals) == 0 {
			at.keyK = sign * -s.Const
			return at, true
		}
		keyNode := expr.Neg(expr.Bin(expr.OpAdd, s.ResidualNode(), expr.I(s.Const)))
		if sign < 0 {
			keyNode = expr.Neg(keyNode)
		}
		folded := expr.Fold(keyNode)
		keyFn, err := expr.CompileInt(folded, func(name string) (expr.Getter, expr.Type, bool) {
			i, ok := p.localIdx[name]
			if !ok {
				return nil, expr.TypeInvalid, false
			}
			slot := &p.localVals[i]
			// Local booleans read as 0/1; the comparison stays sound in
			// the integer encoding.
			return func() int64 { return *slot }, expr.TypeInt, true
		})
		if err != nil {
			return atomTmpl{}, false
		}
		at.keyIdx = len(t.keyFns)
		t.keyFns = append(t.keyFns, keyFn)
		t.keyNodes = append(t.keyNodes, folded)
		return at, true
	}
	return atomTmpl{}, false
}

// boolAtom builds the template atom for a shared boolean variable
// compared against the constant want (1 for p, 0 for !p).
func (m *Monitor) boolAtom(name string, want int64) (atomTmpl, bool) {
	f := linear.NewForm()
	f.Coeffs[name] = 1
	formVal, err := m.compileForm(f)
	if err != nil {
		return atomTmpl{}, false
	}
	return atomTmpl{
		formVal: formVal, formStr: f.String(), form: f,
		op: expr.OpEq, keyIdx: -1, keyK: want,
	}, true
}

func cmpInt(op expr.Op, v, k int64) bool {
	switch op {
	case expr.OpEq:
		return v == k
	case expr.OpNe:
		return v != k
	case expr.OpLt:
		return v < k
	case expr.OpLe:
		return v <= k
	case expr.OpGt:
		return v > k
	case expr.OpGe:
		return v >= k
	}
	return false
}

// makeEval builds the entry evaluator over a frozen key vector.
func (t *predTmpl) makeEval(keys []int64) func() bool {
	conjs := t.conjs
	return func() bool {
		for ci := range conjs {
			c := &conjs[ci]
			ok := true
			for ai := range c.atoms {
				a := &c.atoms[ai]
				k := a.keyK
				if a.keyIdx >= 0 {
					k = keys[a.keyIdx]
				}
				if !cmpInt(a.op, a.formVal(), k) {
					ok = false
					break
				}
			}
			if ok {
				return true
			}
		}
		return false
	}
}

// tags materializes the per-conjunction tags for a key vector.
func (t *predTmpl) tags(keys []int64) []tag.Tag {
	out := make([]tag.Tag, len(t.conjs))
	for ci := range t.conjs {
		c := &t.conjs[ci]
		if c.tagIdx < 0 {
			out[ci] = tag.Tag{Kind: tag.None}
			continue
		}
		a := &c.atoms[c.tagIdx]
		k := a.keyK
		if a.keyIdx >= 0 {
			k = keys[a.keyIdx]
		}
		kind := tag.Threshold
		op := a.op
		if op == expr.OpEq {
			kind = tag.Equivalence
		}
		out[ci] = tag.Tag{Kind: kind, Expr: a.formStr, Form: a.form, Key: k, Op: op}
	}
	return out
}

// identity renders the entry identity for a key vector. The template
// canon contains $i placeholders, so distinct key vectors cannot collide;
// appending the raw keys is both unambiguous and cheap.
func (t *predTmpl) identity(keys []int64) string {
	buf := make([]byte, 0, len(t.canon)+16*len(keys))
	buf = append(buf, t.canon...)
	for _, k := range keys {
		buf = append(buf, '\x00')
		buf = strconv.AppendInt(buf, k, 36)
	}
	return string(buf)
}

// templateEntry is the template slow path of Await: compute keys, then
// find or build the entry from the precompiled pieces.
func (m *Monitor) templateEntry(p *Predicate) (*entry, error) {
	t := p.tmpl
	// Static predicates short-circuit everything: the entry is registered
	// once and never evicted.
	if p.staticEntry != nil {
		return p.staticEntry, nil
	}
	var keysArr [8]int64
	var keys []int64
	if len(t.keyFns) <= len(keysArr) {
		keys = keysArr[:len(t.keyFns)]
	} else {
		keys = make([]int64, len(t.keyFns))
	}
	for i, fn := range t.keyFns {
		keys[i] = fn()
	}
	canon := t.canon
	if len(keys) > 0 {
		canon = t.identity(keys)
	}
	e, err := m.cm.getEntry(canon, func() (*entry, error) {
		frozen := append([]int64(nil), keys...)
		evalFn := t.makeEval(frozen)
		if genEval := p.genEntryEval(); genEval != nil {
			evalFn = genEval
			m.stats.GenEntries++
		}
		return &entry{
			canon:    canon,
			static:   p.isShared(),
			noneIdx:  -1,
			evalFn:   evalFn,
			conjTags: t.tags(frozen),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	if p.isShared() {
		p.staticEntry = e
	}
	return e, nil
}
