package core

import (
	"container/list"

	"repro/internal/dnf"
	"repro/internal/expr"
	"repro/internal/policy"
	"repro/internal/tag"
)

// entry is one registered (globalized) predicate — a row of the predicate
// table in Fig. 7. Threads waiting on syntactically equivalent predicates
// share an entry (§5.2). Its waiters are standalone *Wait objects: parked
// goroutines and armed handles are the same representation, and relay
// signaling delivers a notification by closing a waiter's channel rather
// than unparking a particular goroutine.
type entry struct {
	canon  string // canonical globalized DNF string; identity key
	static bool   // shared predicate: registered once, never evicted
	active bool

	waiters    []*Wait // registered waiters, parked and armed alike
	unnotified int     // waiters with no notification in flight

	evalFn   func() bool // whole-predicate evaluation against the cells
	conjTags []tag.Tag   // tag analysis per conjunction (for registration)

	nodes   []*tagNode // tag nodes the entry is registered in (deduplicated)
	noneIdx int        // index in the None scan list, -1 when absent

	lruElem *list.Element // position in the inactive LRU, nil while active

	funcOnly bool // one-shot AwaitFunc/ArmFunc entry; never cached

	// policy is the per-predicate wake-policy override (Predicate.
	// UsePolicy): it refines which of THIS entry's waiters a signal
	// picks, taking precedence over the monitor policy within the entry.
	policy policy.Policy
}

// signalable reports whether the entry has a waiter without a pending
// notification. Entries whose every waiter is already notified are skipped
// by the relay search: notifying them again could only produce a futile
// wake-up.
func (e *entry) signalable() bool { return e.unnotified > 0 }

// firstUnnotified returns a waiter eligible for signal delivery.
func (e *entry) firstUnnotified() *Wait {
	for _, w := range e.waiters {
		if !w.notified {
			return w
		}
	}
	return nil
}

// pickUnnotified returns the waiter the given policy prefers among the
// entry's unnotified waiters, or the first found when pol is nil. The
// waiters slice uses swap-remove and so carries no arrival order; the
// policy compares the monitor-global arrival seq (and precomputed rank)
// captured on each Wait at registration.
func (e *entry) pickUnnotified(pol policy.Policy) *Wait {
	if pol == nil {
		return e.firstUnnotified()
	}
	var best *Wait
	for _, w := range e.waiters {
		if w.notified {
			continue
		}
		if best == nil || pol.Better(cand(w), cand(best)) {
			best = w
		}
	}
	return best
}

// buildEntry compiles the globalized predicate and analyzes its tags.
// Called under the monitor lock.
func (m *Monitor) buildEntry(canon string, glob dnf.DNF, static bool) (*entry, error) {
	e := &entry{
		canon:   canon,
		static:  static,
		noneIdx: -1,
	}
	conjFns := make([]expr.BoolFn, len(glob.Conjs))
	resolver := func(name string) (expr.Getter, expr.Type, bool) {
		s, ok := m.vars[name]
		if !ok {
			return nil, expr.TypeInvalid, false
		}
		return s.get, s.typ, true
	}
	for i, c := range glob.Conjs {
		fn, err := expr.CompileBool(expr.And(c.Atoms...), resolver)
		if err != nil {
			return nil, predErrf(canon, "compile conjunction %q: %v", c.String(), err)
		}
		conjFns[i] = fn
	}
	e.evalFn = func() bool {
		for _, fn := range conjFns {
			if fn() {
				return true
			}
		}
		return false
	}
	e.conjTags = tag.Analyze(glob)
	return e, nil
}

// funcEntry wraps a closure predicate from AwaitFunc or ArmFunc. The
// closure may capture the calling goroutine's locals: they cannot change
// while it waits (Proposition 1), so evaluation by other threads under the
// monitor lock is sound. Closure predicates are opaque, so they always
// carry the None tag and are scanned exhaustively.
func (m *Monitor) funcEntry(f func() bool) *entry {
	return &entry{
		canon:    "<func>",
		evalFn:   f,
		conjTags: []tag.Tag{{Kind: tag.None}},
		noneIdx:  -1,
		funcOnly: true,
	}
}
