package core

import (
	"sync"
	"time"
)

// Baseline is the reference automatic-signal monitor of the paper's
// evaluation (§6.2): one condition variable for the whole monitor, a
// signalAll whenever the state may have changed, and every woken thread
// re-evaluating its own predicate after re-acquiring the lock. It is the
// design whose measured 10–50× slowdowns (Buhr et al.) created the belief
// that automatic-signal monitors are inherently expensive.
type Baseline struct {
	mu      sync.Mutex
	cond    *sync.Cond
	profile bool
	in      bool
	waiting int // goroutines currently parked in Await
	stats   Stats
}

// NewBaseline constructs a baseline monitor. Profiling enables the lock
// and await phase timers.
func NewBaseline(opts ...Option) *Baseline {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	b := &Baseline{profile: cfg.profile}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Enter acquires the monitor.
func (b *Baseline) Enter() {
	if b.profile {
		t0 := time.Now()
		b.mu.Lock()
		b.stats.LockNs += time.Since(t0).Nanoseconds()
	} else {
		b.mu.Lock()
	}
	b.in = true
}

// Exit broadcasts (the state may have changed) and releases the monitor.
func (b *Baseline) Exit() {
	if !b.in {
		panic("autosynch: Exit without Enter")
	}
	b.stats.Broadcasts++
	b.cond.Broadcast()
	b.in = false
	b.mu.Unlock()
}

// Do runs f inside the monitor.
func (b *Baseline) Do(f func()) {
	b.Enter()
	defer b.Exit()
	f()
}

// Await blocks until pred() is true. pred must read only monitor-guarded
// state and the caller's locals. Before each wait the monitor broadcasts,
// because the caller may have changed the state since entering.
func (b *Baseline) Await(pred func() bool) {
	if !b.in {
		panic("autosynch: Await outside the monitor; call Enter first")
	}
	b.stats.Awaits++
	if pred() {
		b.stats.FastPath++
		return
	}
	b.waiting++
	for {
		b.stats.Broadcasts++
		b.cond.Broadcast()
		if b.profile {
			t0 := time.Now()
			b.cond.Wait()
			b.stats.AwaitNs += time.Since(t0).Nanoseconds()
		} else {
			b.cond.Wait()
		}
		b.stats.Wakeups++
		if pred() {
			break
		}
		b.stats.FutileWakeups++
	}
	b.waiting--
	b.in = true
}

// Stats returns a snapshot of the counters.
func (b *Baseline) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// ResetStats zeroes the counters.
func (b *Baseline) ResetStats() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.stats = Stats{}
}

// Waiting returns the number of goroutines currently parked in Await;
// tests poll it instead of sleeping to know waiters have parked.
func (b *Baseline) Waiting() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.waiting
}
