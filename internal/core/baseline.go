package core

import (
	"context"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/stats"
)

// Baseline is the reference automatic-signal monitor of the paper's
// evaluation (§6.2): one condition variable for the whole monitor, a
// signalAll whenever the state may have changed, and every woken thread
// re-evaluating its own predicate after re-acquiring the lock. It is the
// design whose measured 10–50× slowdowns (Buhr et al.) created the belief
// that automatic-signal monitors are inherently expensive.
//
// Blocking waits deliberately stay on the shared condition variable — the
// broadcast storm they form under contention IS the strawman being
// measured, and it has no per-waiter addressing to reify. Armed handles
// (ArmFunc) ride alongside on a waiter list whose channels every
// broadcast also closes, so the baseline still offers the full Mechanism
// handle surface.
type Baseline struct {
	mu      sync.Mutex
	cond    *sync.Cond
	armed   waitList // armed handles, notified on every broadcast
	profile bool
	in      bool
	waiting int // registered waiters: parked Awaits plus armed handles
	stats   Stats

	pol      policy.Policy // wake policy: accounting only (broadcasts wake everyone)
	starveNs int64         // starvation threshold; 0 disables Starved
	seq      uint64        // arrival counter for armed handles
	wheel    *timerWheel   // deadline wheel, created on first deadline'd wait

	rec *obs.Ring        // flight recorder ring; nil unless recording was active at construction
	lat *stats.Histogram // wake-to-claim latency, allocated on first completed wait
}

// NewBaseline constructs a baseline monitor. Profiling enables the lock
// and await phase timers.
func NewBaseline(opts ...Option) *Baseline {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	b := &Baseline{profile: cfg.profile, pol: cfg.policy, starveNs: cfg.starveNs}
	b.cond = sync.NewCond(&b.mu)
	if rec := obs.Active(); rec != nil {
		b.rec = rec.NewRing("baseline")
	}
	return b
}

// Enter acquires the monitor.
func (b *Baseline) Enter() {
	if b.profile {
		t0 := time.Now()
		b.mu.Lock()
		b.stats.LockNs += time.Since(t0).Nanoseconds()
	} else {
		b.mu.Lock()
	}
	if b.rec != nil {
		b.rec.Record(obs.KEnter, 0, 0)
	}
	b.in = true
}

// Exit broadcasts (the state may have changed) and releases the monitor.
func (b *Baseline) Exit() {
	if !b.in {
		panic("autosynch: Exit without Enter")
	}
	if b.rec != nil {
		b.rec.Record(obs.KExit, 0, 0)
	}
	b.broadcastLocked()
	b.in = false
	b.mu.Unlock()
}

// broadcastLocked is the baseline's signalAll: wake every parked waiter
// and notify every armed handle.
func (b *Baseline) broadcastLocked() {
	b.stats.Broadcasts++
	if b.rec != nil {
		b.rec.Record(obs.KBroadcast, 0, 0)
	}
	b.cond.Broadcast()
	if len(b.armed.ws) > 0 {
		b.armed.broadcast(nil)
	}
}

// Do runs f inside the monitor.
func (b *Baseline) Do(f func()) {
	b.Enter()
	defer b.Exit()
	f()
}

// Await blocks until pred() is true. pred must read only monitor-guarded
// state and the caller's locals. Before each wait the monitor broadcasts,
// because the caller may have changed the state since entering.
func (b *Baseline) Await(pred func() bool) {
	_ = b.await(nil, time.Time{}, pred)
}

// AwaitCtx is Await with cancellation: if ctx is done before the
// predicate becomes true the waiter gives up and returns ctx.Err(), still
// holding the monitor (the baseline's broadcast discipline needs no
// further repair — every state change wakes every waiter anyway).
func (b *Baseline) AwaitCtx(ctx context.Context, pred func() bool) error {
	return b.await(ctx, time.Time{}, pred)
}

// AwaitFunc and AwaitFuncCtx adapt Await to the Mechanism interface.
func (b *Baseline) AwaitFunc(pred func() bool) { _ = b.await(nil, time.Time{}, pred) }

// AwaitFuncCtx is AwaitCtx under the Mechanism interface's name.
func (b *Baseline) AwaitFuncCtx(ctx context.Context, pred func() bool) error {
	return b.await(ctx, time.Time{}, pred)
}

// AwaitFuncDeadline is AwaitFunc with an absolute deadline: if the
// predicate has not become true by then the waiter gives up and returns
// ErrDeadline, still holding the monitor. The expiry rides the monitor's
// timer wheel — one goroutine for every pending deadline, started on
// demand — and, like cancellation, wins a race against the predicate
// once observed.
func (b *Baseline) AwaitFuncDeadline(deadline time.Time, pred func() bool) error {
	return b.await(nil, deadline, pred)
}

// AwaitFuncTimeout is AwaitFuncDeadline with a relative duration.
func (b *Baseline) AwaitFuncTimeout(d time.Duration, pred func() bool) error {
	return b.await(nil, time.Now().Add(d), pred)
}

// ctxWaiter is the give-up state of one cond-parked waiter with a
// context or a deadline. All fields are written and read only under the
// monitor lock.
type ctxWaiter struct {
	cancelled bool  // a watcher (ctx or deadline) fired before the wait finished
	finished  bool  // the wait completed normally; watchers must not act
	err       error // the error to return: ctx.Err() or ErrDeadline
}

// watchCtx spawns the cancellation watcher for one cond-parked waiter:
// when ctx is done before the wait finishes, it marks the waiter
// cancelled under mu and broadcasts (waking every waiter; the cancelled
// one abandons, the rest re-check and re-park). The returned stop
// function retires the watcher; the caller defers it from the wait loop,
// where it runs holding mu — the watcher then either loses the select
// race (and exits via stop) or observes finished and does nothing.
func watchCtx(ctx context.Context, mu *sync.Mutex, cw *ctxWaiter, wake *sync.Cond) (stop func()) {
	ch := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			mu.Lock()
			if !cw.finished && !cw.cancelled {
				cw.cancelled = true
				cw.err = ctx.Err()
				wake.Broadcast()
			}
			mu.Unlock()
		case <-ch:
		}
	}()
	return func() { close(ch) }
}

// watchDeadline arms a wheel item that marks the waiter expired and
// broadcasts when the deadline passes first. The caller defers the
// returned stop, which runs holding mu — the lock order (monitor lock,
// then wheel lock) matches every other wheel call.
func watchDeadline(tw *timerWheel, deadline time.Time, mu *sync.Mutex, cw *ctxWaiter, wake *sync.Cond) (stop func()) {
	it := tw.add(deadline, func() {
		mu.Lock()
		if !cw.finished && !cw.cancelled {
			cw.cancelled = true
			cw.err = ErrDeadline
			wake.Broadcast()
		}
		mu.Unlock()
	})
	return it.stop
}

func (b *Baseline) await(ctx context.Context, deadline time.Time, pred func() bool) error {
	if !b.in {
		panic("autosynch: Await outside the monitor; call Enter first")
	}
	b.stats.Awaits++
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	if !deadline.IsZero() && !time.Now().Before(deadline) {
		b.stats.Expired++
		return ErrDeadline
	}
	if pred() {
		b.stats.FastPath++
		return nil
	}
	var cw *ctxWaiter
	if ctx != nil && ctx.Done() != nil {
		cw = &ctxWaiter{}
		defer watchCtx(ctx, &b.mu, cw, b.cond)()
	}
	if !deadline.IsZero() {
		if cw == nil {
			cw = &ctxWaiter{}
		}
		defer watchDeadline(b.timers(), deadline, &b.mu, cw, b.cond)()
	}
	since := time.Now().UnixNano()
	b.waiting++
	for {
		b.broadcastLocked()
		if b.profile {
			t0 := time.Now()
			b.cond.Wait()
			b.stats.AwaitNs += time.Since(t0).Nanoseconds()
		} else {
			b.cond.Wait()
		}
		if cw != nil && cw.cancelled {
			if cw.err == ErrDeadline {
				b.stats.Expired++
				if b.rec != nil {
					b.rec.Record(obs.KExpire, 0, 0)
				}
			}
			b.stats.Abandons++
			if b.rec != nil {
				b.rec.Record(obs.KCancel, 0, 0)
			}
			b.waiting--
			b.in = true
			return cw.err
		}
		b.stats.Wakeups++
		if pred() {
			break
		}
		b.stats.FutileWakeups++
		if b.rec != nil {
			b.rec.Record(obs.KFutileWake, 0, 0)
		}
	}
	b.waiting--
	b.in = true
	if cw != nil {
		cw.finished = true
	}
	if b.rec != nil {
		b.rec.Record(obs.KClaim, 0, 0)
	}
	b.observeWait(since, 0)
	return nil
}

// observeWait folds a completed wait's duration into the fairness
// counters. Runs under the monitor lock; seq identifies the waiter in
// recorded events (0 for parked waiters, which carry no seq).
func (b *Baseline) observeWait(since int64, seq uint64) {
	if since == 0 {
		return
	}
	ns := time.Now().UnixNano() - since
	if ns > b.stats.MaxWaitNs {
		b.stats.MaxWaitNs = ns
	}
	if b.starveNs > 0 && ns > b.starveNs {
		b.stats.Starved++
		if b.rec != nil {
			b.rec.Record(obs.KStarved, seq, ns)
		}
	}
	if b.lat == nil {
		b.lat = new(stats.Histogram)
	}
	b.lat.Observe(time.Duration(ns))
}

// timers lazily creates the monitor's deadline wheel. Runs under the
// monitor lock.
func (b *Baseline) timers() *timerWheel {
	if b.wheel == nil {
		b.wheel = newTimerWheel()
	}
	return b.wheel
}

// statExpired counts a handle that ended at its deadline. Runs under the
// monitor lock.
func (b *Baseline) statExpired(w *Wait) {
	b.stats.Expired++
	if b.rec != nil {
		b.rec.Record(obs.KExpire, w.seq, 0)
	}
}

// ArmFunc registers a closure-predicate waiter without blocking and
// returns its handle: every broadcast (that is, every monitor exit)
// notifies it, and Claim re-validates the closure under the lock. See
// Wait for the select-composition contract. ArmFunc acquires the monitor
// internally: call it outside Enter/Exit.
func (b *Baseline) ArmFunc(pred func() bool) *Wait {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.stats.Arms++
	w := newWait(b)
	w.pred = pred
	b.seq++
	w.seq = b.seq
	w.since = time.Now().UnixNano()
	if b.pol != nil {
		w.rank = b.pol.Rank(nil)
	}
	if b.rec != nil {
		b.rec.Record(obs.KArm, w.seq, w.rank)
	}
	b.armed.add(w)
	b.waiting++
	if pred() {
		w.notify()
	}
	return w
}

// TryFunc is the non-blocking degenerate case of AwaitFunc: one
// evaluation inside the monitor, no parking, no arming.
func (b *Baseline) TryFunc(pred func() bool) bool {
	if !b.in {
		panic("autosynch: TryFunc outside the monitor; call Enter first")
	}
	return pred()
}

// lockWait and unlockWait expose the monitor lock to the handle methods.
func (b *Baseline) lockWait()   { b.mu.Lock() }
func (b *Baseline) unlockWait() { b.mu.Unlock() }

// claimLocked re-validates a handle's closure; on success the claimer
// holds the monitor, on failure the handle is re-armed for the next
// broadcast.
func (b *Baseline) claimLocked(w *Wait) error {
	if w.pred() {
		b.stats.Claims++
		w.state = waitClaimed
		if b.rec != nil {
			b.rec.Record(obs.KClaim, w.seq, 0)
		}
		b.observeWait(w.since, w.seq)
		b.armed.remove(w)
		b.waiting--
		b.in = true
		return nil
	}
	b.stats.FutileClaims++
	if b.rec != nil {
		b.rec.Record(obs.KFutileClaim, w.seq, 0)
	}
	w.rearm()
	return ErrNotReady
}

// cancelLocked drops a cancelled handle; the broadcast discipline needs
// no further repair.
func (b *Baseline) cancelLocked(w *Wait) {
	b.stats.Abandons++
	if b.rec != nil {
		b.rec.Record(obs.KCancel, w.seq, 0)
	}
	b.armed.remove(w)
	b.waiting--
}

// Stats returns a snapshot of the counters, with the flight-recorder
// fields folded in from the ring.
func (b *Baseline) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := b.stats
	if b.rec != nil {
		s.ObsEvents = b.rec.Writes()
		s.ObsDrops = b.rec.Drops()
	}
	return s
}

// WaitLatency returns a copy of the wake-to-claim latency histogram, or
// nil if no wait has completed.
func (b *Baseline) WaitLatency() *stats.Histogram {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.lat == nil {
		return nil
	}
	h := *b.lat
	return &h
}

// ResetStats zeroes the counters.
func (b *Baseline) ResetStats() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.stats = Stats{}
}

// Waiting returns the number of registered waiters (parked Awaits plus
// armed handles); tests poll it instead of sleeping, and assert zero to
// prove no handle leaked.
func (b *Baseline) Waiting() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.waiting
}
