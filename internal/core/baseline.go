package core

import (
	"context"
	"sync"
	"time"
)

// Baseline is the reference automatic-signal monitor of the paper's
// evaluation (§6.2): one condition variable for the whole monitor, a
// signalAll whenever the state may have changed, and every woken thread
// re-evaluating its own predicate after re-acquiring the lock. It is the
// design whose measured 10–50× slowdowns (Buhr et al.) created the belief
// that automatic-signal monitors are inherently expensive.
type Baseline struct {
	mu      sync.Mutex
	cond    *sync.Cond
	profile bool
	in      bool
	waiting int // goroutines currently parked in Await
	stats   Stats
}

// NewBaseline constructs a baseline monitor. Profiling enables the lock
// and await phase timers.
func NewBaseline(opts ...Option) *Baseline {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	b := &Baseline{profile: cfg.profile}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Enter acquires the monitor.
func (b *Baseline) Enter() {
	if b.profile {
		t0 := time.Now()
		b.mu.Lock()
		b.stats.LockNs += time.Since(t0).Nanoseconds()
	} else {
		b.mu.Lock()
	}
	b.in = true
}

// Exit broadcasts (the state may have changed) and releases the monitor.
func (b *Baseline) Exit() {
	if !b.in {
		panic("autosynch: Exit without Enter")
	}
	b.stats.Broadcasts++
	b.cond.Broadcast()
	b.in = false
	b.mu.Unlock()
}

// Do runs f inside the monitor.
func (b *Baseline) Do(f func()) {
	b.Enter()
	defer b.Exit()
	f()
}

// Await blocks until pred() is true. pred must read only monitor-guarded
// state and the caller's locals. Before each wait the monitor broadcasts,
// because the caller may have changed the state since entering.
func (b *Baseline) Await(pred func() bool) {
	_ = b.await(nil, pred)
}

// AwaitCtx is Await with cancellation: if ctx is done before the
// predicate becomes true the waiter gives up and returns ctx.Err(), still
// holding the monitor (the baseline's broadcast discipline needs no
// further repair — every state change wakes every waiter anyway).
func (b *Baseline) AwaitCtx(ctx context.Context, pred func() bool) error {
	return b.await(ctx, pred)
}

// AwaitFunc and AwaitFuncCtx adapt Await to the Mechanism interface.
func (b *Baseline) AwaitFunc(pred func() bool) { _ = b.await(nil, pred) }

// AwaitFuncCtx is AwaitCtx under the Mechanism interface's name.
func (b *Baseline) AwaitFuncCtx(ctx context.Context, pred func() bool) error {
	return b.await(ctx, pred)
}

func (b *Baseline) await(ctx context.Context, pred func() bool) error {
	if !b.in {
		panic("autosynch: Await outside the monitor; call Enter first")
	}
	b.stats.Awaits++
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	if pred() {
		b.stats.FastPath++
		return nil
	}
	var cw *ctxWaiter
	if ctx != nil && ctx.Done() != nil {
		cw = &ctxWaiter{}
		defer watchCtx(ctx, &b.mu, cw, b.cond)()
	}
	b.waiting++
	for {
		b.stats.Broadcasts++
		b.cond.Broadcast()
		if b.profile {
			t0 := time.Now()
			b.cond.Wait()
			b.stats.AwaitNs += time.Since(t0).Nanoseconds()
		} else {
			b.cond.Wait()
		}
		if cw != nil && cw.cancelled {
			b.stats.Abandons++
			b.waiting--
			b.in = true
			return ctx.Err()
		}
		b.stats.Wakeups++
		if pred() {
			break
		}
		b.stats.FutileWakeups++
	}
	b.waiting--
	b.in = true
	if cw != nil {
		cw.finished = true
	}
	return nil
}

// Stats returns a snapshot of the counters.
func (b *Baseline) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// ResetStats zeroes the counters.
func (b *Baseline) ResetStats() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.stats = Stats{}
}

// Waiting returns the number of goroutines currently parked in Await;
// tests poll it instead of sleeping to know waiters have parked.
func (b *Baseline) Waiting() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.waiting
}
