package core

import (
	"context"
	"errors"
	"math/rand/v2"
)

// Select sentinels. Guard construction errors (*PredicateError) are
// surfaced through the erring case's index instead.
var (
	// ErrNoCases is returned by Select when no guard case was supplied
	// (a Default-only Select runs the default instead).
	ErrNoCases = errors.New("autosynch: Select with no guard cases")

	// ErrNilGuard reports a non-default case whose guard is nil.
	ErrNilGuard = errors.New("autosynch: Select case has a nil guard")

	// ErrManyDefaults reports more than one Default case.
	ErrManyDefaults = errors.New("autosynch: Select with more than one Default case")
)

// Case pairs a guard with the body to run if the guard wins a Select.
// Build cases with Guard.Then and Default.
type Case struct {
	guard *Guard
	body  func()
	dflt  bool
}

// Default returns the non-blocking case of a Select: if no guard's
// predicate is true at the initial poll, the default body runs — outside
// any monitor — and Select returns the default's index without arming or
// parking anything, exactly like the default clause of a select
// statement.
func Default(body func()) Case {
	return Case{body: body, dflt: true}
}

// Select is the cross-monitor waituntil-select: it waits until the first
// of the cases' guard predicates becomes true and runs that case's body
// inside its guard's monitor, with the predicate true. The guards may
// live on arbitrary monitors and arbitrary mechanisms — an automatic
// monitor, a baseline, explicit conditions, shards of a sharded monitor —
// and one Select composes them the way a select statement composes
// channels. It returns the index of the case that ran.
//
// The initial poll scans the cases from a randomized start index, so two
// perpetually-ready guards win alternately rather than by position; use
// SelectOrdered when the case order is a priority order. If no guard is
// immediately true, every guard is armed (the arm-time evaluation closes
// the window between poll and park: a predicate that becomes true in it
// is notified at arm time) and the goroutine parks ONCE on a single
// delivery channel shared by all handles — no goroutine per guard, no
// reflect.Select walk. A notification is claimed Mesa-style under its
// monitor: if a racing mutation falsified the predicate the handle is
// transparently re-armed and the Select keeps waiting. Once a claim
// succeeds the losers are cancelled — with the mechanism's usual relay
// repair, so no signal and no waiter is leaked — and the body runs under
// the winner's monitor; the exit and the loser cancellation are deferred,
// so a panicking body unwinds with every monitor released and every
// handle cancelled.
//
// Errors surface before anything parks: a guard constructed from bad
// bindings or a never-true globalization returns its *PredicateError
// together with that case's index (errors.Is/As work as for Await).
//
// Select enters the cases' monitors internally: call it outside any
// Enter/Exit of a monitor one of its guards lives on (monitors are not
// reentrant, so selecting inside such a critical section deadlocks).
func Select(cases ...Case) (int, error) {
	return selectCases(nil, false, cases)
}

// SelectCtx is Select with cancellation: if ctx is done before any guard
// wins, every armed handle is cancelled and SelectCtx returns ctx.Err()
// with index -1. Unlike the single-monitor AwaitCtx, the caller holds no
// monitor afterwards.
func SelectCtx(ctx context.Context, cases ...Case) (int, error) {
	return selectCases(ctx, false, cases)
}

// SelectOrdered is Select with the case order as a priority order: the
// initial poll and the arming sequence prefer earlier cases, so whenever
// several guards are ready at the same decision point the lowest index
// wins. Once parked, the first predicate to BECOME true wins regardless
// of position — priority selects among the simultaneously ready, it does
// not starve a ready low-priority guard behind a false high-priority one.
func SelectOrdered(cases ...Case) (int, error) {
	return selectCases(nil, true, cases)
}

// selectCases implements Select. ordered pins the scan start to 0;
// otherwise it is randomized for fairness.
func selectCases(ctx context.Context, ordered bool, cases []Case) (int, error) {
	dflt := -1
	guards := 0
	for i := range cases {
		c := &cases[i]
		if c.dflt {
			if dflt >= 0 {
				return i, ErrManyDefaults
			}
			dflt = i
			continue
		}
		if c.guard == nil {
			return i, ErrNilGuard
		}
		if err := c.guard.err; err != nil {
			return i, err
		}
		guards++
	}
	// Cancellation wins over everything that has not already run,
	// including a Default-only Select: once ctx is done, no body runs.
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return -1, err
		}
	}
	if guards == 0 {
		if dflt >= 0 {
			cases[dflt].body()
			return dflt, nil
		}
		return -1, ErrNoCases
	}
	start := 0
	if !ordered {
		start = rand.IntN(len(cases))
	}

	// Initial poll: one Try per guard in scan order. A hit runs that
	// case's body under its monitor and returns without arming anything,
	// so the common already-ready case pays one lock acquisition instead
	// of N arms and N−1 cancels. A miss is safe: arming below re-evaluates
	// each predicate under its monitor, so a predicate that becomes true
	// between the poll and the arm is notified at arm time.
	for off := 0; off < len(cases); off++ {
		i := (start + off) % len(cases)
		c := &cases[i]
		if c.dflt {
			continue
		}
		if c.guard.Try(c.body) {
			return i, nil
		}
	}
	if dflt >= 0 {
		// Non-blocking form: nothing was ready, run the default. Nothing
		// was armed, so nothing can leak.
		cases[dflt].body()
		return dflt, nil
	}

	// Blocking form: arm every guard in scan order and subscribe each
	// handle to one shared delivery channel. Arming evaluates the
	// predicate under its monitor and notifies immediately when already
	// true, so the immediate deliveries arrive in arming order — which is
	// how SelectOrdered's priority materializes among the already-ready.
	ch := make(chan int, guards)
	handles := make([]*Wait, len(cases))
	claimed := -1
	defer func() {
		for i, h := range handles {
			if h != nil && i != claimed {
				h.Cancel()
			}
		}
	}()
	for off := 0; off < len(cases); off++ {
		i := (start + off) % len(cases)
		c := &cases[i]
		w := c.guard.arm()
		handles[i] = w
		w.subscribe(ch, i)
	}

	for {
		var i int
		if ctx == nil {
			i = <-ch
		} else {
			select {
			case i = <-ch:
			case <-ctx.Done():
				return -1, ctx.Err()
			}
		}
		err := handles[i].Claim()
		if err == nil {
			// Claim succeeded: the winner's monitor is HELD and the
			// predicate true. Run the body with the exit deferred; the
			// loser cancellation (deferred above) runs after the exit, so
			// no two monitor locks are ever held at once.
			claimed = i
			defer cases[i].guard.mech.Exit()
			cases[i].body()
			return i, nil
		}
		if err == ErrNotReady {
			// Falsified between notification and claim; the handle was
			// transparently re-armed and its subscription will deliver
			// again when the predicate next becomes true.
			continue
		}
		// Cancelled or double-claimed handles cannot occur here — the
		// handles are private to this Select — but fail loudly rather
		// than spinning if the invariant is ever broken.
		return i, err
	}
}
