package core

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/dnf"
	"repro/internal/expr"
	"repro/internal/policy"
)

// Predicate is a compiled waiting condition: the per-source analysis of an
// Await predicate with parsing, type inference, canonicalization, DNF
// conversion, fast-path compilation, and tag-template derivation all done
// once, ahead of the wait path. Compile it once per scenario with
// Monitor.Compile (or CompileExpr for the typed builder) and wait on it
// any number of times with AwaitPred/Await; each wait only snapshots the
// local bindings and enqueues.
//
// A Predicate is bound to the monitor that compiled it (its evaluators
// read that monitor's cells); waiting on it from another monitor is an
// error. Binding values are stored under the monitor lock, so one compiled
// Predicate is safely shared by any number of waiting goroutines.
type Predicate struct {
	m    *Monitor
	src  string
	node expr.Node
	d    dnf.DNF // locals still symbolic

	localNames []string
	localIdx   map[string]int
	localTypes []expr.Type
	localVals  []int64 // current binding values, bools as 0/1; monitor-locked

	fast expr.BoolFn // evaluates node against cells + current localVals

	tmpl        *predTmpl // globalization fast path; nil → generic Subst path
	staticEntry *entry    // cached entry for shared (local-free) predicates

	gen      *GeneratedPred // registered generated evaluator; nil → closure path
	genCells *GenCells      // resolved cell layout for gen, nil with it

	policy policy.Policy // per-predicate wake policy; nil → monitor policy
}

// Src returns the predicate's canonical source text.
func (p *Predicate) Src() string { return p.src }

// Locals returns the names of the thread-local variables the predicate
// expects to be bound on every wait, in binding-slot order.
func (p *Predicate) Locals() []string {
	return append([]string(nil), p.localNames...)
}

// Await waits on the compiled predicate; see Monitor.AwaitPred.
func (p *Predicate) Await(binds ...Binding) error {
	return p.m.awaitPred(nil, time.Time{}, p, binds)
}

// AwaitCtx is Await with cancellation; see Monitor.AwaitPredCtx.
func (p *Predicate) AwaitCtx(ctx context.Context, binds ...Binding) error {
	return p.m.awaitPred(ctx, time.Time{}, p, binds)
}

// AwaitDeadline is Await with an absolute deadline; see
// Monitor.AwaitDeadline.
func (p *Predicate) AwaitDeadline(deadline time.Time, binds ...Binding) error {
	return p.m.awaitPred(nil, deadline, p, binds)
}

// UsePolicy attaches a wake policy to this predicate and returns the
// predicate for chaining. The policy decides which of the predicate's
// waiters a signal picks, overriding the monitor policy within this
// predicate's entry; across entries the monitor policy (if any) still
// arbitrates. Call it from setup code before waiting begins — the
// policy is attached to the underlying table entry as waits arrive.
func (p *Predicate) UsePolicy(pol policy.Policy) *Predicate {
	p.m.mu.Lock()
	defer p.m.mu.Unlock()
	p.policy = pol
	if p.staticEntry != nil {
		p.staticEntry.policy = pol
	}
	return p
}

// localsMap snapshots the current binding values by name for policy rank
// computation. Called under the monitor lock after setBinds.
func (p *Predicate) localsMap() map[string]int64 {
	if len(p.localNames) == 0 {
		return nil
	}
	binds := make(map[string]int64, len(p.localNames))
	for i, name := range p.localNames {
		binds[name] = p.localVals[i]
	}
	return binds
}

// Arm registers a waiter for the predicate without blocking and returns
// its first-class handle: Ready fires when relay signaling finds the
// predicate true, Claim re-enters the monitor and re-validates it
// Mesa-style (re-arming transparently if a racing mutation falsified it),
// and Cancel abandons the registration. One goroutine can therefore
// multiplex any number of resources by selecting over armed handles,
// where each blocking Await would cost a parked goroutine; see Wait.
//
// The bindings are snapshotted now, exactly as Await would. Arming errors
// — binding mismatches, a globalization that is constant false
// (ErrNeverTrue) — are delivered through the handle: Ready is already
// closed and Claim/Err report the error, so a select loop needs no
// separate error path.
//
// Arm acquires the monitor internally: call it outside Enter/Exit.
func (p *Predicate) Arm(binds ...Binding) *Wait {
	m := p.m
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.Arms++
	if err := p.setBinds(binds); err != nil {
		return failedWait(err)
	}
	e, err := m.entryFor(p)
	if err != nil {
		return failedWait(err)
	}
	if e == nil {
		// Globalization folded to constant true: the handle is born ready
		// and Claim always succeeds.
		w := newWait(m)
		w.notify()
		return w
	}
	var rank int64
	if e.policy != nil || m.cfg.policy != nil {
		rank = m.rankFor(e, p.localsMap())
	}
	return m.armEntry(e, rank)
}

// Try is the non-blocking degenerate case of Await: it binds and
// evaluates once inside the monitor, reporting whether the predicate
// holds right now; see Monitor.TryPred.
func (p *Predicate) Try(binds ...Binding) (bool, error) {
	return p.m.TryPred(p, binds...)
}

// PredicateError reports a malformed predicate or a binding mismatch.
// Every predicate-shaped failure — parse errors, type errors, DNF blow-up,
// bind-time arity/name/type mismatches, and unsatisfiable globalizations —
// is a *PredicateError, so callers can uniformly errors.As on it; Err
// carries a sentinel cause (ErrNeverTrue) when one applies, reachable via
// errors.Is.
type PredicateError struct {
	Src string
	Msg string
	Err error // sentinel cause (e.g. ErrNeverTrue); nil otherwise
}

func (e *PredicateError) Error() string {
	return fmt.Sprintf("predicate %q: %s", e.Src, e.Msg)
}

// Unwrap exposes the sentinel cause to errors.Is.
func (e *PredicateError) Unwrap() error { return e.Err }

func predErrf(src, format string, args ...any) error {
	return &PredicateError{Src: src, Msg: fmt.Sprintf(format, args...)}
}

// errNeverTrue builds the ErrNeverTrue failure for a predicate whose
// globalization folded to constant false.
func errNeverTrue(src string) error {
	return &PredicateError{Src: src, Msg: "globalized predicate is constant false with the given bindings", Err: ErrNeverTrue}
}

// maxLocals bounds the number of local variables per predicate; the bind
// validator tracks the bound set in one machine word.
const maxLocals = 64

// Compile analyzes src once and returns the reusable compiled predicate.
// The predicate may reference the monitor's shared variables and any
// thread-local variables; local types are inferred from usage at compile
// time (an equality between two otherwise unconstrained locals defaults
// them to int) and bindings are validated against them on every wait.
//
// Compile acquires the monitor internally: call it from setup code, not
// between Enter and Exit. Compiling the same source twice returns the same
// cached *Predicate; Await with a string predicate consults the same
// cache, so the two forms can be mixed freely.
func (m *Monitor) Compile(src string) (*Predicate, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.compile(src)
}

// MustCompile is Compile for predicates that are known to be well-formed;
// it panics on error. Intended for scenario setup and static tables.
func (m *Monitor) MustCompile(src string) *Predicate {
	p, err := m.Compile(src)
	if err != nil {
		panic("autosynch: MustCompile: " + err.Error())
	}
	return p
}

// compile is Compile under the monitor lock (the Await string path enters
// here directly).
func (m *Monitor) compile(src string) (*Predicate, error) {
	if p, ok := m.preds[src]; ok {
		return p, nil
	}
	node, err := expr.Parse(src)
	if err != nil {
		return nil, predErrf(src, "parse: %v", err)
	}
	return m.compileNodeCached(src, node)
}

// compileNodeCached is the shared cache path behind compile and
// CompileExpr: the string and builder forms of one predicate resolve to
// the same *Predicate because both store through here under the canonical
// source key. Called under the monitor lock with the cache already missed
// for src (a builder caller checks before rendering work; re-checking is
// harmless).
func (m *Monitor) compileNodeCached(src string, node expr.Node) (*Predicate, error) {
	if p, ok := m.preds[src]; ok {
		return p, nil
	}
	p, err := m.compileNode(src, node)
	if err != nil {
		return nil, err
	}
	m.preds[src] = p
	return p, nil
}

// compileNode builds the compiled predicate for an already-parsed tree.
// Called under the monitor lock.
func (m *Monitor) compileNode(src string, node expr.Node) (*Predicate, error) {
	p := &Predicate{m: m, src: src, node: node, localIdx: map[string]int{}}

	sharedType := func(name string) (expr.Type, bool) {
		if s, ok := m.vars[name]; ok {
			return s.typ, true
		}
		return expr.TypeInvalid, false
	}
	localType, err := expr.Infer(node, sharedType)
	if err != nil {
		return nil, predErrf(src, "%v", err)
	}
	for _, name := range expr.Vars(node) {
		if _, shared := m.vars[name]; shared {
			continue
		}
		p.localIdx[name] = len(p.localNames)
		p.localNames = append(p.localNames, name)
		p.localTypes = append(p.localTypes, localType[name])
	}
	if len(p.localNames) > maxLocals {
		return nil, predErrf(src, "predicate has %d local variables; the limit is %d", len(p.localNames), maxLocals)
	}
	p.localVals = make([]int64, len(p.localNames))

	if err := expr.CheckBool(node, func(name string) (expr.Type, bool) {
		if s, ok := m.vars[name]; ok {
			return s.typ, true
		}
		if i, ok := p.localIdx[name]; ok {
			return p.localTypes[i], true
		}
		return expr.TypeInvalid, false
	}); err != nil {
		return nil, predErrf(src, "%v", err)
	}

	limit := m.cfg.dnfLimit
	if limit <= 0 {
		limit = dnf.DefaultMaxConjunctions
	}
	intVar := func(name string) bool {
		if s, ok := m.vars[name]; ok {
			return s.typ == expr.TypeInt
		}
		if i, ok := p.localIdx[name]; ok {
			return p.localTypes[i] == expr.TypeInt
		}
		return false
	}
	d, err := dnf.ConvertTyped(node, limit, intVar)
	if err != nil {
		return nil, predErrf(src, "%v", err)
	}
	p.d = d

	fast, err := expr.CompileBool(node, func(name string) (expr.Getter, expr.Type, bool) {
		if s, ok := m.vars[name]; ok {
			return s.get, s.typ, true
		}
		if i, ok := p.localIdx[name]; ok {
			slot := &p.localVals[i]
			return func() int64 { return *slot }, p.localTypes[i], true
		}
		return nil, expr.TypeInvalid, false
	})
	if err != nil {
		return nil, predErrf(src, "compile: %v", err)
	}
	p.fast = fast
	p.tmpl = m.buildTemplate(p)
	m.bindGenerated(p)
	return p, nil
}

// setBinds validates the bindings against the compile-time local-variable
// set — every local bound exactly once, no unknown or shared names, types
// matching the inferred ones — and stores the values for the current wait.
// Called under the monitor lock.
func (p *Predicate) setBinds(binds []Binding) error {
	var bound uint64
	for _, b := range binds {
		i, ok := p.localIdx[b.Name]
		if !ok {
			if _, shared := p.m.vars[b.Name]; shared {
				return predErrf(p.src, "%q is a shared monitor variable and cannot be bound", b.Name)
			}
			return predErrf(p.src, "binding %q does not match any local variable (locals: %v) among %d binding(s)",
				b.Name, p.localNames, len(binds))
		}
		if bound&(1<<uint(i)) != 0 {
			return predErrf(p.src, "duplicate binding %q", b.Name)
		}
		bound |= 1 << uint(i)
		if b.Val.Type != p.localTypes[i] {
			return predErrf(p.src, "binding %q has type %s, predicate uses it as %s", b.Name, b.Val.Type, p.localTypes[i])
		}
		if b.Val.Type == expr.TypeBool {
			if b.Val.B {
				p.localVals[i] = 1
			} else {
				p.localVals[i] = 0
			}
		} else {
			p.localVals[i] = b.Val.I
		}
	}
	if len(binds) != len(p.localNames) {
		var missing []string
		for i, name := range p.localNames {
			if bound&(1<<uint(i)) == 0 {
				missing = append(missing, name)
			}
		}
		return predErrf(p.src, "local variable(s) %s neither a shared monitor variable nor bound (%d binding(s) for locals %v)",
			strings.Join(missing, ", "), len(binds), p.localNames)
	}
	return nil
}

// bindEnv exposes the current binding values as a substitution environment
// for globalization.
func (p *Predicate) bindEnv() expr.Env {
	return func(name string) (expr.Value, bool) {
		i, ok := p.localIdx[name]
		if !ok {
			return expr.Value{}, false
		}
		if p.localTypes[i] == expr.TypeBool {
			return expr.BoolValue(p.localVals[i] != 0), true
		}
		return expr.IntValue(p.localVals[i]), true
	}
}

// isShared reports whether the predicate mentions no local variables, in
// which case its globalization is itself and the registered entry is static
// (never evicted — §5.2).
func (p *Predicate) isShared() bool { return len(p.localNames) == 0 }
