package core

import (
	"fmt"

	"repro/internal/dnf"
	"repro/internal/expr"
)

// parsedPred is the per-source-string analysis of an Await predicate,
// cached on the monitor. Parsing, DNF conversion, and fast-path compilation
// happen once per distinct predicate text; subsequent Awaits only store the
// current local bindings and call the compiled evaluator.
type parsedPred struct {
	src  string
	node expr.Node
	d    dnf.DNF // locals still symbolic

	localNames []string
	localIdx   map[string]int
	localTypes []expr.Type
	localVals  []int64 // current binding values, bools as 0/1; monitor-locked

	fast expr.BoolFn // evaluates node against cells + current localVals

	tmpl        *predTmpl // globalization fast path; nil → generic Subst path
	staticEntry *entry    // cached entry for shared (local-free) predicates
}

// PredicateError reports a malformed predicate or binding mismatch.
type PredicateError struct {
	Src string
	Msg string
}

func (e *PredicateError) Error() string {
	return fmt.Sprintf("predicate %q: %s", e.Src, e.Msg)
}

func predErrf(src, format string, args ...any) error {
	return &PredicateError{Src: src, Msg: fmt.Sprintf(format, args...)}
}

// parsePred analyzes src under the monitor lock. binds supplies the local
// variables (and fixes their types on first use).
func (m *Monitor) parsePred(src string, binds []Binding) (*parsedPred, error) {
	if p, ok := m.preds[src]; ok {
		return p, nil
	}
	node, err := expr.Parse(src)
	if err != nil {
		return nil, predErrf(src, "parse: %v", err)
	}
	p := &parsedPred{src: src, node: node, localIdx: map[string]int{}}

	bindType := map[string]expr.Type{}
	for _, b := range binds {
		bindType[b.Name] = b.Val.Type
	}
	for _, name := range expr.Vars(node) {
		if _, shared := m.vars[name]; shared {
			if _, alsoBound := bindType[name]; alsoBound {
				return nil, predErrf(src, "%q is a shared monitor variable and cannot be bound", name)
			}
			continue
		}
		t, ok := bindType[name]
		if !ok {
			return nil, predErrf(src, "variable %q is neither a shared monitor variable nor bound", name)
		}
		p.localIdx[name] = len(p.localNames)
		p.localNames = append(p.localNames, name)
		p.localTypes = append(p.localTypes, t)
	}
	p.localVals = make([]int64, len(p.localNames))

	if err := expr.CheckBool(node, func(name string) (expr.Type, bool) {
		if s, ok := m.vars[name]; ok {
			return s.typ, true
		}
		if i, ok := p.localIdx[name]; ok {
			return p.localTypes[i], true
		}
		return expr.TypeInvalid, false
	}); err != nil {
		return nil, predErrf(src, "%v", err)
	}

	limit := m.cfg.dnfLimit
	if limit <= 0 {
		limit = dnf.DefaultMaxConjunctions
	}
	intVar := func(name string) bool {
		if s, ok := m.vars[name]; ok {
			return s.typ == expr.TypeInt
		}
		if i, ok := p.localIdx[name]; ok {
			return p.localTypes[i] == expr.TypeInt
		}
		return false
	}
	d, err := dnf.ConvertTyped(node, limit, intVar)
	if err != nil {
		return nil, predErrf(src, "%v", err)
	}
	p.d = d

	fast, err := expr.CompileBool(node, func(name string) (expr.Getter, expr.Type, bool) {
		if s, ok := m.vars[name]; ok {
			return s.get, s.typ, true
		}
		if i, ok := p.localIdx[name]; ok {
			slot := &p.localVals[i]
			return func() int64 { return *slot }, p.localTypes[i], true
		}
		return nil, expr.TypeInvalid, false
	})
	if err != nil {
		return nil, predErrf(src, "compile: %v", err)
	}
	p.fast = fast
	p.tmpl = m.buildTemplate(p)

	m.preds[src] = p
	return p, nil
}

// setBinds stores the binding values for the current Await. The set of
// bound names must exactly match the predicate's local variables, with the
// types fixed at first use.
func (p *parsedPred) setBinds(binds []Binding) error {
	if len(binds) != len(p.localNames) {
		return predErrf(p.src, "predicate has %d local variable(s) %v, got %d binding(s)",
			len(p.localNames), p.localNames, len(binds))
	}
	for _, b := range binds {
		i, ok := p.localIdx[b.Name]
		if !ok {
			return predErrf(p.src, "binding %q does not match any local variable (locals: %v)", b.Name, p.localNames)
		}
		if b.Val.Type != p.localTypes[i] {
			return predErrf(p.src, "binding %q has type %s, predicate uses it as %s", b.Name, b.Val.Type, p.localTypes[i])
		}
		if b.Val.Type == expr.TypeBool {
			if b.Val.B {
				p.localVals[i] = 1
			} else {
				p.localVals[i] = 0
			}
		} else {
			p.localVals[i] = b.Val.I
		}
	}
	return nil
}

// bindEnv exposes the current binding values as a substitution environment
// for globalization.
func (p *parsedPred) bindEnv() expr.Env {
	return func(name string) (expr.Value, bool) {
		i, ok := p.localIdx[name]
		if !ok {
			return expr.Value{}, false
		}
		if p.localTypes[i] == expr.TypeBool {
			return expr.BoolValue(p.localVals[i] != 0), true
		}
		return expr.IntValue(p.localVals[i]), true
	}
}

// isShared reports whether the predicate mentions no local variables, in
// which case its globalization is itself and the registered entry is static
// (never evicted — §5.2).
func (p *parsedPred) isShared() bool { return len(p.localNames) == 0 }
