package core

import (
	"sync"
	"time"
)

// timerTick is the bucket width of the deadline wheel. Deadlines are
// rounded UP to the next tick, so an expiry never fires early; the cost
// is up to one tick of lateness, far below goroutine scheduling jitter.
const timerTick = int64(time.Millisecond)

// timerWheel is a per-monitor deadline wheel: every deadline-aware wait
// and every Wait.Deadline registers one item, and a single lazily-started
// goroutine services them all — never one time.Timer goroutine per
// waiter. Items hash into tick-width buckets; the service goroutine
// sleeps until the earliest live bucket, fires every due item (outside
// the wheel lock, so fire callbacks may take the monitor lock), and
// exits as soon as no items remain, so an idle monitor holds no
// goroutine and testutil.NoLeaks sees a clean baseline.
//
// Lock order: host monitor lock → wheel lock (add/stop are called with
// the monitor held). The fire path inverts the data flow, not the locks:
// due items are collected and detached under the wheel lock, which is
// released before any fire callback runs.
type timerWheel struct {
	mu      sync.Mutex
	slots   map[int64][]*timerItem // live items by deadline tick
	n       int                    // live (not yet fired or stopped) items
	running bool                   // service goroutine exists
	kick    chan struct{}          // wakes the goroutine early: new earlier item, or drained
}

// timerItem is one armed deadline. done flips exactly once — under the
// wheel lock, by stop or by the collection sweep — so an expiry and a
// concurrent completion race to it and the loser becomes a no-op.
type timerItem struct {
	wheel *timerWheel
	fire  func()
	done  bool
}

func newTimerWheel() *timerWheel {
	return &timerWheel{slots: map[int64][]*timerItem{}, kick: make(chan struct{}, 1)}
}

// add registers fire to run at (or one tick after) deadline and returns
// the item so the caller can stop it on normal completion.
func (tw *timerWheel) add(deadline time.Time, fire func()) *timerItem {
	slot := (deadline.UnixNano() + timerTick - 1) / timerTick
	it := &timerItem{wheel: tw, fire: fire}
	tw.mu.Lock()
	tw.slots[slot] = append(tw.slots[slot], it)
	tw.n++
	if !tw.running {
		tw.running = true
		go tw.run()
	} else {
		tw.kickLocked()
	}
	tw.mu.Unlock()
	return it
}

func (tw *timerWheel) kickLocked() {
	select {
	case tw.kick <- struct{}{}:
	default:
	}
}

// stop disarms the item: the fire callback will not run. Safe on nil
// items and after firing (both no-ops), and safe to call while holding
// the host monitor lock. Draining the last item kicks the service
// goroutine so it exits promptly rather than sleeping out a far future
// deadline as a leaked goroutine.
func (it *timerItem) stop() {
	if it == nil {
		return
	}
	tw := it.wheel
	tw.mu.Lock()
	if !it.done {
		it.done = true
		tw.n--
		if tw.n == 0 {
			tw.kickLocked()
		}
	}
	tw.mu.Unlock()
}

// run is the wheel's service loop: sleep until the earliest live bucket,
// fire everything due, exit when empty. Stale kicks only cause a
// harmless re-scan.
func (tw *timerWheel) run() {
	for {
		tw.mu.Lock()
		if tw.n == 0 {
			tw.running = false
			tw.slots = map[int64][]*timerItem{}
			tw.mu.Unlock()
			return
		}
		next := int64(0)
		for s, items := range tw.slots {
			live := false
			for _, it := range items {
				if !it.done {
					live = true
					break
				}
			}
			if !live {
				delete(tw.slots, s) // every item stopped; drop the spent bucket
				continue
			}
			if next == 0 || s < next {
				next = s
			}
		}
		now := time.Now().UnixNano()
		if wait := next*timerTick - now; wait > 0 {
			tw.mu.Unlock()
			t := time.NewTimer(time.Duration(wait))
			select {
			case <-t.C:
			case <-tw.kick:
				t.Stop()
			}
			continue
		}
		var due []*timerItem
		for s, items := range tw.slots {
			if s*timerTick > now {
				continue
			}
			for _, it := range items {
				if !it.done {
					it.done = true
					tw.n--
					due = append(due, it)
				}
			}
			delete(tw.slots, s)
		}
		tw.mu.Unlock()
		for _, it := range due {
			it.fire()
		}
	}
}
