package core

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/testutil"
)

// waitParked blocks until exactly n goroutines are parked inside the
// monitor — the event-driven replacement for "sleep and hope the waiter
// parked". Waiting() is updated under the monitor lock, so once it reads
// n the waiters are fully registered with the condition manager.
func waitParked(t *testing.T, m *Monitor, n int) {
	t.Helper()
	testutil.WaitFor(t, 10*time.Second, 0, func() bool { return m.Waiting() == n },
		"%d waiter(s) parked", n)
}

// waitTimeout runs f in a goroutine and fails the test if it does not
// finish within the deadline — the standard guard against lost wake-ups.
func waitTimeout(t *testing.T, d time.Duration, name string, f func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		f()
	}()
	select {
	case <-done:
	case <-time.After(d):
		t.Fatalf("%s did not finish within %v (lost wake-up?)", name, d)
	}
}

func TestAwaitFastPath(t *testing.T) {
	m := New()
	m.NewInt("count", 5)
	m.Enter()
	if err := m.Await("count >= 3"); err != nil {
		t.Fatal(err)
	}
	m.Exit()
	s := m.Stats()
	if s.FastPath != 1 || s.Wakeups != 0 {
		t.Errorf("stats = %s; want one fast path, no wakeups", s)
	}
}

func TestAwaitHandoff(t *testing.T) {
	m := New()
	count := m.NewInt("count", 0)
	released := make(chan int64, 1)

	go func() {
		m.Enter()
		if err := m.Await("count >= num", BindInt("num", 5)); err != nil {
			released <- -1
			m.Exit()
			return
		}
		released <- count.Get()
		m.Exit()
	}()

	// Wait for the waiter to park, then push count over the threshold in
	// two steps; only the second should release it.
	waitParked(t, m, 1)
	m.Do(func() { count.Add(3) })
	select {
	case v := <-released:
		t.Fatalf("waiter released early with count=%d", v)
	case <-time.After(20 * time.Millisecond):
	}
	m.Do(func() { count.Add(2) })
	select {
	case v := <-released:
		if v < 5 {
			t.Errorf("waiter saw count=%d, want >= 5", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter never released")
	}
}

func TestAwaitPredicateTrueOnReturn(t *testing.T) {
	// Whenever Await returns, the predicate must hold — the globalization
	// guarantee that distinguishes AutoSynch from broadcast-based designs.
	for _, tagging := range []bool{true, false} {
		var opts []Option
		if !tagging {
			opts = append(opts, WithoutTagging())
		}
		m := New(opts...)
		count := m.NewInt("count", 0)
		var wg sync.WaitGroup
		const consumers = 8
		var violations int64
		for i := 0; i < consumers; i++ {
			wg.Add(1)
			go func(need int64) {
				defer wg.Done()
				m.Enter()
				if err := m.Await("count >= need", BindInt("need", need)); err != nil {
					violations++
					m.Exit()
					return
				}
				if count.Get() < need {
					violations++ // under the lock; safe
				}
				count.Add(-need)
				m.Exit()
			}(int64(i%4 + 1))
		}
		waitTimeout(t, 10*time.Second, "consumers", func() {
			for j := 0; j < 100; j++ {
				m.Do(func() { count.Add(1) })
			}
			wg.Wait()
		})
		if violations != 0 {
			t.Errorf("tagging=%t: %d waiters saw a false predicate after Await", tagging, violations)
		}
	}
}

func TestAwaitErrors(t *testing.T) {
	m := New()
	m.NewInt("count", 0)
	m.Enter()
	defer m.Exit()

	cases := []struct {
		name    string
		pred    string
		binds   []Binding
		errPart string
	}{
		{"parse error", "count >=", nil, "parse"},
		{"undeclared", "missing > 0", nil, "neither a shared monitor variable nor bound"},
		{"missing binding", "count >= num", nil, "neither a shared monitor variable nor bound"},
		{"shared bound fresh", "count >= 0", []Binding{BindInt("count", 1)}, "shared monitor variable"},
		{"unknown binding", "count > 0", []Binding{BindInt("x", 1)}, "binding(s)"},
		{"shared bound cached", "count > 0", []Binding{BindInt("count", 1)}, "shared monitor variable"},
		{"duplicate binding", "count >= num", []Binding{BindInt("num", 1), BindInt("num", 2)}, "duplicate binding"},
		{"extra binding", "count >= num", []Binding{BindInt("num", 1), BindInt("extra", 2)}, "does not match any local variable"},
		{"type mismatch binding", "count >= num", []Binding{BindBool("num", true)}, "has type bool, predicate uses it as int"},
		{"ill-typed", "count && count > 0", nil, "must be bool"},
	}
	for _, c := range cases {
		err := m.Await(c.pred, c.binds...)
		if err == nil {
			t.Errorf("%s: Await(%q) succeeded, want error containing %q", c.name, c.pred, c.errPart)
			continue
		}
		if !strings.Contains(err.Error(), c.errPart) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.errPart)
		}
	}
}

func TestAwaitNeverTrue(t *testing.T) {
	m := New()
	m.NewInt("count", 0)
	m.Enter()
	defer m.Exit()
	// 5 >= 10 globalizes to false: waiting would deadlock, so it errors.
	err := m.Await("num >= 10", BindInt("num", 5))
	if !errors.Is(err, ErrNeverTrue) {
		t.Errorf("err = %v, want ErrNeverTrue", err)
	}
}

func TestBindingTypeFixedAtFirstUse(t *testing.T) {
	m := New()
	m.NewInt("count", 0)
	m.Enter()
	defer m.Exit()
	if err := m.Await("count >= num", BindInt("num", 0)); err != nil {
		t.Fatal(err)
	}
	err := m.Await("count >= num", BindBool("num", true))
	if err == nil || !strings.Contains(err.Error(), "type") {
		t.Errorf("expected type mismatch error, got %v", err)
	}
}

func TestAwaitFunc(t *testing.T) {
	m := New()
	count := m.NewInt("count", 0)
	done := make(chan struct{})
	limit := int64(3) // captured local: constant while waiting
	go func() {
		defer close(done)
		m.Enter()
		m.AwaitFunc(func() bool { return count.Get() >= limit })
		if count.Get() < limit {
			t.Error("closure predicate false after AwaitFunc")
		}
		m.Exit()
	}()
	waitParked(t, m, 1)
	for i := 0; i < 3; i++ {
		m.Do(func() { count.Add(1) })
	}
	waitTimeout(t, 5*time.Second, "AwaitFunc waiter", func() { <-done })

	// The one-shot entry must be gone.
	if _, _, _, none := m.DebugCounts(); none != 0 {
		t.Errorf("func entry leaked: none list has %d entries", none)
	}
}

func TestPredicateReuseAndInactiveList(t *testing.T) {
	m := New()
	count := m.NewInt("count", 0)

	await := func(n int64) {
		done := make(chan struct{})
		go func() {
			defer close(done)
			m.Enter()
			if err := m.Await("count >= num", BindInt("num", n)); err != nil {
				t.Error(err)
			}
			m.Exit()
		}()
		waitParked(t, m, 1)
		m.Do(func() { count.Set(n) })
		waitTimeout(t, 5*time.Second, "waiter", func() { <-done })
		m.Do(func() { count.Set(0) })
	}

	await(7)
	s := m.Stats()
	if s.Registrations != 1 || s.Reuses != 0 {
		t.Fatalf("after first wait: %s", s)
	}
	if active, inactive, _, _ := m.DebugCounts(); active != 0 || inactive != 1 {
		t.Fatalf("counts after first wait: active=%d inactive=%d, want 0/1", active, inactive)
	}
	// Same canonical predicate again: the parked entry must be reused.
	await(7)
	s = m.Stats()
	if s.Registrations != 1 || s.Reuses != 1 {
		t.Errorf("after reuse: %s", s)
	}
	// Different key registers a fresh entry.
	await(9)
	s = m.Stats()
	if s.Registrations != 2 {
		t.Errorf("after new key: %s", s)
	}
}

func TestInactiveListEviction(t *testing.T) {
	m := New(WithInactiveLimit(2))
	count := m.NewInt("count", 0)
	for n := int64(1); n <= 4; n++ {
		done := make(chan struct{})
		go func(n int64) {
			defer close(done)
			m.Enter()
			if err := m.Await("count >= num", BindInt("num", n*100)); err != nil {
				t.Error(err)
			}
			m.Exit()
		}(n)
		waitParked(t, m, 1)
		m.Do(func() { count.Set(n * 100) })
		waitTimeout(t, 5*time.Second, "waiter", func() { <-done })
		m.Do(func() { count.Set(0) })
	}
	if _, inactive, _, _ := m.DebugCounts(); inactive != 2 {
		t.Errorf("inactive = %d, want 2 (limit)", inactive)
	}
	if s := m.Stats(); s.Evictions != 2 {
		t.Errorf("evictions = %d, want 2", s.Evictions)
	}
}

func TestSharedPredicateIsStatic(t *testing.T) {
	m := New()
	count := m.NewInt("count", 0)
	done := make(chan struct{})
	go func() {
		defer close(done)
		m.Enter()
		if err := m.Await("count > 0"); err != nil { // no locals: shared predicate
			t.Error(err)
		}
		m.Exit()
	}()
	waitParked(t, m, 1)
	m.Do(func() { count.Set(1) })
	waitTimeout(t, 5*time.Second, "waiter", func() { <-done })
	// Static predicates stay in the active table with no waiters.
	if active, inactive, _, _ := m.DebugCounts(); active != 1 || inactive != 0 {
		t.Errorf("active=%d inactive=%d, want 1/0 (static entry retained)", active, inactive)
	}
}

func TestNoSignalAllEver(t *testing.T) {
	// The headline property: AutoSynch never issues a broadcast.
	m := New()
	count := m.NewInt("count", 0)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(n int64) {
			defer wg.Done()
			m.Enter()
			if err := m.Await("count >= num", BindInt("num", n)); err != nil {
				t.Error(err)
			}
			count.Add(-n)
			m.Exit()
		}(int64(i%5 + 1))
	}
	waitTimeout(t, 10*time.Second, "workload", func() {
		for j := 0; j < 200; j++ {
			m.Do(func() { count.Add(1) })
		}
		wg.Wait()
	})
	if s := m.Stats(); s.Broadcasts != 0 {
		t.Errorf("AutoSynch issued %d broadcasts; must be 0", s.Broadcasts)
	}
}

func TestMonitorPanics(t *testing.T) {
	check := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	check("exit without enter", func() { New().Exit() })
	check("await outside monitor", func() {
		m := New()
		m.NewInt("x", 0)
		_ = m.Await("x > 0")
	})
	check("awaitfunc outside monitor", func() { New().AwaitFunc(func() bool { return true }) })
	check("duplicate variable", func() {
		m := New()
		m.NewInt("x", 0)
		m.NewInt("x", 1)
	})
	check("invalid variable name", func() { New().NewInt("9bad", 0) })
	check("keyword variable name", func() { New().NewBool("true", false) })
}

func TestDoReleasesOnPanic(t *testing.T) {
	m := New()
	func() {
		defer func() { recover() }()
		m.Do(func() { panic("boom") })
	}()
	// The monitor must be usable afterwards.
	waitTimeout(t, 2*time.Second, "reacquire", func() { m.Do(func() {}) })
}

func TestResetStats(t *testing.T) {
	m := New()
	m.NewInt("x", 1)
	m.Enter()
	_ = m.Await("x > 0")
	m.Exit()
	if s := m.Stats(); s.Awaits != 1 {
		t.Fatalf("awaits = %d", s.Awaits)
	}
	m.ResetStats()
	if s := m.Stats(); s.Awaits != 0 {
		t.Errorf("after reset: %s", s)
	}
}

func TestTaggingAccessor(t *testing.T) {
	if !New().Tagging() {
		t.Error("default monitor should have tagging enabled")
	}
	if New(WithoutTagging()).Tagging() {
		t.Error("WithoutTagging monitor reports tagging enabled")
	}
}

func TestProfilingPopulatesTimers(t *testing.T) {
	m := New(WithProfiling())
	count := m.NewInt("count", 0)
	done := make(chan struct{})
	go func() {
		defer close(done)
		m.Enter()
		_ = m.Await("count >= 1")
		m.Exit()
	}()
	waitParked(t, m, 1)
	m.Do(func() { count.Set(1) })
	waitTimeout(t, 5*time.Second, "waiter", func() { <-done })
	s := m.Stats()
	if s.AwaitNs == 0 {
		t.Error("AwaitNs not populated under profiling")
	}
	if s.RelayNs == 0 {
		t.Error("RelayNs not populated under profiling")
	}
	if s.TagMgmtNs == 0 {
		t.Error("TagMgmtNs not populated under profiling")
	}
	if !strings.Contains(s.Profile(), "relaySignal=") {
		t.Errorf("Profile() = %q", s.Profile())
	}
}

func TestStatsAddAndString(t *testing.T) {
	a := Stats{Awaits: 1, Signals: 2, Wakeups: 3, AwaitNs: 10}
	b := Stats{Awaits: 10, Signals: 20, Wakeups: 30, AwaitNs: 5}
	sum := a.Add(b)
	if sum.Awaits != 11 || sum.Signals != 22 || sum.Wakeups != 33 || sum.AwaitNs != 15 {
		t.Errorf("Add = %+v", sum)
	}
	if sum.ContextSwitches() != 33 {
		t.Errorf("ContextSwitches = %d", sum.ContextSwitches())
	}
	if !strings.Contains(a.String(), "signals=2") {
		t.Errorf("String = %q", a.String())
	}
}
