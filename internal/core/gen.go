package core

import (
	"strings"
	"sync"

	"repro/internal/expr"
	"repro/internal/tag"
)

// This file is the runtime half of the predicate code generator
// (internal/codegen + cmd/minisynchc). The generator emits, per predicate,
// a monomorphic Go evaluator that reads the monitor's cells directly — no
// closure tree, no binding map, no expr.Value boxing — plus key functions
// matching the tag template's §4.3 linear-form decomposition. Generated
// files register those functions in a process-global registry from init();
// compileNode then transparently swaps them in for the closure-compiled
// evaluators whenever the canonical source, shared-variable types, and
// local-variable types all match. Nothing else changes: the DNF analysis,
// tag template, and entry identities are exactly the interpreter's, so a
// registration can never alter which waiter is signaled — only how fast
// the predicate evaluates. Stats records which path served (GenPreds /
// GenMisses / GenEntries), and WithoutGenerated opts a monitor out.

// GenVar names one variable of a generated predicate together with its
// type (int by default, bool when Bool is set).
type GenVar struct {
	Name string
	Bool bool
}

// GenCells is the resolved shared-state view passed to generated
// evaluators: the predicate's referenced shared variables in sorted name
// order, integers in I and booleans in B (each keeping the sorted order
// within its type). The generator emits index constants against the same
// layout, so a cell read is one slice index and one inlinable Get.
type GenCells struct {
	I []*IntCell
	B []*BoolCell
}

// GenEval is a generated whole-predicate evaluator. locals holds the
// current binding values in binding-slot order, booleans encoded as 0/1 —
// the same encoding Predicate.setBinds maintains.
type GenEval func(c *GenCells, locals []int64) bool

// GenKeyFn is a generated tag-key computation over the local bindings,
// mirroring one of the template's compiled key functions.
type GenKeyFn func(locals []int64) int64

// GeneratedPred is one registered generated predicate.
type GeneratedPred struct {
	// Src is the canonical predicate source, expr.Node.String() of the
	// parsed tree; the string and builder forms of one predicate share it.
	Src string
	// Shared lists the referenced shared variables in sorted name order
	// with their types; a monitor whose declarations disagree falls back
	// to the closure path (the signature won't match).
	Shared []GenVar
	// Locals lists the thread-local variables in binding-slot order
	// (sorted, since slots are assigned in expr.Vars order).
	Locals []GenVar
	// Eval evaluates the predicate against resolved cells and bindings.
	Eval GenEval
	// TagCanon is the tag template's canonical identity ($i key
	// placeholders) as derived at generation time, and Keys the generated
	// key functions in template order. They are consulted only if they
	// match the runtime's own template derivation exactly; on any
	// disagreement the runtime keeps its compiled key functions.
	TagCanon string
	Keys     []GenKeyFn
}

// sig renders the registry key: canonical source plus the typed shared
// and local variable lists. Two predicates share a generated evaluator
// only when all three agree.
func (g *GeneratedPred) sig() string { return genSig(g.Src, g.Shared, g.Locals) }

func genSig(src string, shared, locals []GenVar) string {
	var b strings.Builder
	b.Grow(len(src) + 8*(len(shared)+len(locals)) + 2)
	b.WriteString(src)
	b.WriteByte('\x01')
	for _, v := range shared {
		b.WriteByte('\x00')
		b.WriteString(v.Name)
		if v.Bool {
			b.WriteString(":bool")
		} else {
			b.WriteString(":int")
		}
	}
	b.WriteByte('\x01')
	for _, v := range locals {
		b.WriteByte('\x00')
		b.WriteString(v.Name)
		if v.Bool {
			b.WriteString(":bool")
		} else {
			b.WriteString(":int")
		}
	}
	return b.String()
}

var (
	genMu       sync.RWMutex
	genRegistry = map[string]*GeneratedPred{}
)

// RegisterGenerated installs a generated predicate in the process-global
// registry. It is called from init() of zz_generated_preds.go files
// emitted by minisynchc; monitors constructed afterwards pick the
// evaluator up in Compile. Re-registering the same signature overwrites
// (latest wins), so regenerated packages need no dedup bookkeeping.
func RegisterGenerated(g GeneratedPred) {
	if g.Eval == nil {
		panic("autosynch: RegisterGenerated with nil Eval")
	}
	genMu.Lock()
	defer genMu.Unlock()
	genRegistry[g.sig()] = &g
}

// GeneratedCount returns the number of registered generated predicates;
// diagnostics and tests only.
func GeneratedCount() int {
	genMu.RLock()
	defer genMu.RUnlock()
	return len(genRegistry)
}

func lookupGenerated(sig string) *GeneratedPred {
	genMu.RLock()
	defer genMu.RUnlock()
	return genRegistry[sig]
}

// GenDiv is integer division with the compiled-predicate convention:
// division by zero evaluates to 0 ("not yet true") instead of panicking,
// matching expr.CompileBool. Generated code calls it for every / operator.
func GenDiv(a, b int64) int64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// GenMod is the modulus companion of GenDiv.
func GenMod(a, b int64) int64 {
	if b == 0 {
		return 0
	}
	return a % b
}

// genVars computes the typed shared and local variable lists that form
// the predicate's registry signature. Both lists are sorted by name:
// expr.Vars is sorted, and local binding slots are assigned in that order.
func (p *Predicate) genVars() (shared, locals []GenVar) {
	for _, name := range expr.Vars(p.node) {
		if s, ok := p.m.vars[name]; ok {
			shared = append(shared, GenVar{Name: name, Bool: s.typ == expr.TypeBool})
		}
	}
	for i, name := range p.localNames {
		locals = append(locals, GenVar{Name: name, Bool: p.localTypes[i] == expr.TypeBool})
	}
	return shared, locals
}

// resolveGenCells lays the predicate's referenced shared cells out in the
// GenCells order the generator indexed against (sorted by name within
// each type). Called under the monitor lock at compile time.
func (m *Monitor) resolveGenCells(shared []GenVar) *GenCells {
	c := &GenCells{}
	for _, v := range shared {
		s := m.vars[v.Name]
		if v.Bool {
			c.B = append(c.B, s.bc)
		} else {
			c.I = append(c.I, s.ic)
		}
	}
	return c
}

// bindGenerated swaps a registered generated evaluator into a freshly
// compiled predicate: the fast-path evaluator is replaced by the
// monomorphic one, and — when the generation-time template derivation
// matches the runtime's exactly — the template key functions as well.
// A miss (or WithoutGenerated) leaves the closure-compiled path in place.
// Called under the monitor lock at the end of compileNode.
func (m *Monitor) bindGenerated(p *Predicate) {
	if !m.cfg.generated {
		return
	}
	shared, locals := p.genVars()
	g := lookupGenerated(genSig(p.node.String(), shared, locals))
	if g == nil {
		m.stats.GenMisses++
		return
	}
	cells := m.resolveGenCells(shared)
	p.gen = g
	p.genCells = cells
	eval := g.Eval
	locVals := p.localVals
	p.fast = func() bool { return eval(cells, locVals) }
	if p.tmpl != nil && g.TagCanon == p.tmpl.canon && len(g.Keys) == len(p.tmpl.keyFns) {
		for i := range g.Keys {
			kf := g.Keys[i]
			p.tmpl.keyFns[i] = func() int64 { return kf(locVals) }
		}
	}
	m.stats.GenPreds++
}

// genEntryEval builds a whole-entry evaluator from the generated
// predicate with the current bindings frozen, the generated analog of
// predTmpl.makeEval / buildEntry. Sound on both registration paths: an
// entry's identity already pins the predicate truth function (template
// atoms depend on locals only through the frozen keys; the Subst path
// keys the entry by the globalized DNF itself), so evaluating the
// original predicate under the frozen bindings is exactly the globalized
// predicate. Called under the monitor lock; returns nil when the
// predicate has no generated evaluator bound.
func (p *Predicate) genEntryEval() func() bool {
	g := p.gen
	if g == nil {
		return nil
	}
	cells := p.genCells
	eval := g.Eval
	var frozen []int64
	if len(p.localVals) > 0 {
		frozen = append([]int64(nil), p.localVals...)
	}
	return func() bool { return eval(cells, frozen) }
}

// Generated reports whether a registered generated evaluator serves this
// predicate's wait path (false means the closure-compiled fallback).
func (p *Predicate) Generated() bool { return p.gen != nil }

// GenSpec is the compile-time shape of a predicate that the code
// generator (internal/codegen) emits from. Introspecting the runtime's
// own analysis — rather than re-deriving it — guarantees the generated
// registration's signature and tag canon match what bindGenerated will
// compute, byte for byte.
type GenSpec struct {
	Canon    string      // canonical source, expr.Node.String()
	Node     expr.Node   // the parsed, type-checked tree
	Shared   []GenVar    // referenced shared variables, sorted by name
	Locals   []GenVar    // locals in binding-slot order
	TagCanon string      // template identity; "" when no template applies
	KeyNodes []expr.Node // key expressions over locals, template order
}

// GenSpec exposes the predicate's generation shape; see GenSpec.
func (p *Predicate) GenSpec() GenSpec {
	shared, locals := p.genVars()
	s := GenSpec{Canon: p.node.String(), Node: p.node, Shared: shared, Locals: locals}
	if p.tmpl != nil {
		s.TagCanon = p.tmpl.canon
		s.KeyNodes = append([]expr.Node(nil), p.tmpl.keyNodes...)
	}
	return s
}

// EntryProbe is the registration-time view of one (predicate, bindings)
// combination: the entry identity, its evaluator's current verdict, and
// the tags it would register under. Differential tests compare probes
// across a generated-evaluator monitor, the closure-compiled fallback,
// and the AST interpreter to pin codegen ≡ interpreter.
type EntryProbe struct {
	Fast   bool      // fast-path evaluator verdict before registration
	Folded bool      // globalization folded to constant true (no entry)
	Canon  string    // entry identity ("" when folded)
	Eval   bool      // entry evaluator verdict at probe time
	Tags   []tag.Tag // per-conjunction tags the entry registers under
}

// ProbeEntry binds, evaluates the fast path, resolves the entry exactly
// as AwaitPred would, and reports what it found without ever parking.
// The probed entry is registered and immediately retired, so the probe
// perturbs only the Registrations/Reuses counters. Test hook; call it
// outside Enter/Exit.
func (m *Monitor) ProbeEntry(p *Predicate, binds ...Binding) (EntryProbe, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if p == nil {
		return EntryProbe{}, &PredicateError{Src: "<nil>", Msg: "nil predicate"}
	}
	if p.m != m {
		return EntryProbe{}, predErrf(p.src, "predicate was compiled by a different monitor")
	}
	if err := p.setBinds(binds); err != nil {
		return EntryProbe{}, err
	}
	pr := EntryProbe{Fast: p.fast()}
	e, err := m.entryFor(p)
	if err != nil {
		return EntryProbe{}, err
	}
	if e == nil {
		pr.Folded = true
		pr.Eval = true
		return pr, nil
	}
	pr.Canon = e.canon
	m.stats.PredicateEvals++
	pr.Eval = e.evalFn()
	pr.Tags = append([]tag.Tag(nil), e.conjTags...)
	m.retireIfIdle(e)
	return pr, nil
}
