package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// pendingSignals reads the condition manager's in-flight signal count; the
// cancellation paths must always reconcile it back to zero, or the relay
// search wedges forever.
func pendingSignals(m *Monitor) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cm.pending
}

func TestAwaitCtxAlreadyDone(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	m := New()
	m.NewInt("count", 5)
	m.Enter()
	// A done context wins even when the predicate is already true.
	if err := m.AwaitCtx(ctx, "count >= 1"); !errors.Is(err, context.Canceled) {
		t.Errorf("monitor: err = %v, want context.Canceled", err)
	}
	if err := m.AwaitFuncCtx(ctx, func() bool { return true }); !errors.Is(err, context.Canceled) {
		t.Errorf("monitor func: err = %v", err)
	}
	m.Exit()

	b := NewBaseline()
	b.Enter()
	if err := b.AwaitCtx(ctx, func() bool { return true }); !errors.Is(err, context.Canceled) {
		t.Errorf("baseline: err = %v", err)
	}
	b.Exit()

	e := NewExplicit()
	c := e.NewCond()
	e.Enter()
	if err := c.AwaitCtx(ctx, func() bool { return true }); !errors.Is(err, context.Canceled) {
		t.Errorf("explicit cond: err = %v", err)
	}
	if err := e.AwaitFuncCtx(ctx, func() bool { return true }); !errors.Is(err, context.Canceled) {
		t.Errorf("explicit func: err = %v", err)
	}
	e.Exit()
}

func TestAwaitCtxCancelAbandonsWaiter(t *testing.T) {
	m := New()
	count := m.NewInt("count", 0)
	need := m.MustCompile("count >= k")

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		m.Enter()
		err := m.AwaitPredCtx(ctx, need, BindInt("k", 5))
		m.Exit()
		errCh <- err
	}()
	waitParked(t, m, 1)
	cancel()
	var err error
	waitTimeout(t, 10*time.Second, "cancelled waiter", func() { err = <-errCh })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if w := m.Waiting(); w != 0 {
		t.Errorf("Waiting() = %d after abandonment", w)
	}
	if s := m.Stats(); s.Abandons != 1 {
		t.Errorf("Abandons = %d, want 1", s.Abandons)
	}
	// The abandoned entry must be fully unregistered from the predicate
	// table and the tag structures (it parks on the inactive list).
	if active, inactive, groups, none := m.DebugCounts(); active != 0 || groups != 0 || none != 0 || inactive != 1 {
		t.Errorf("counts after abandonment: active=%d inactive=%d groups=%d none=%d, want 0/1/0/0",
			active, inactive, groups, none)
	}
	if p := pendingSignals(m); p != 0 {
		t.Errorf("pending = %d after abandonment", p)
	}

	// The monitor must still be fully functional: the same predicate is
	// reactivated from the inactive list and signaled normally.
	done := make(chan struct{})
	go func() {
		defer close(done)
		m.Enter()
		if err := m.AwaitPred(need, BindInt("k", 5)); err != nil {
			t.Error(err)
		}
		m.Exit()
	}()
	waitParked(t, m, 1)
	m.Do(func() { count.Set(5) })
	waitTimeout(t, 10*time.Second, "post-abandon waiter", func() { <-done })
}

func TestAwaitCtxDeadline(t *testing.T) {
	m := New()
	m.NewInt("count", 0)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	m.Enter()
	err := m.AwaitCtx(ctx, "count >= k", BindInt("k", 1))
	m.Exit()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestAwaitFuncCtxCancelCleansNoneList(t *testing.T) {
	m := New()
	count := m.NewInt("count", 0)
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		m.Enter()
		err := m.AwaitFuncCtx(ctx, func() bool { return count.Get() >= 3 })
		m.Exit()
		errCh <- err
	}()
	waitParked(t, m, 1)
	cancel()
	var err error
	waitTimeout(t, 10*time.Second, "cancelled func waiter", func() { err = <-errCh })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if _, _, _, none := m.DebugCounts(); none != 0 {
		t.Errorf("abandoned func entry leaked: none = %d", none)
	}
}

// TestAwaitCtxRelayInvarianceUnderAbandonment is the adversarial schedule
// for the relay rule: two waiters whose predicates become true in the same
// critical section that cancels one of them. The single relayed signal may
// land on either waiter, and the cancellation broadcast races with it. In
// every interleaving the surviving waiter must be released — either it got
// the signal directly, or the abandoning waiter reconciled the orphaned
// signal and re-relayed. Run with -race; a lost wake-up hangs the
// iteration and a bookkeeping slip shows up as pending != 0.
func TestAwaitCtxRelayInvarianceUnderAbandonment(t *testing.T) {
	m := New()
	count := m.NewInt("count", 0)
	need := m.MustCompile("count >= k")

	iters := 150
	if testing.Short() {
		iters = 25
	}
	for iter := 0; iter < iters; iter++ {
		ctx, cancel := context.WithCancel(context.Background())
		cErr := make(chan error, 1)
		survivor := make(chan struct{})
		go func() {
			m.Enter()
			err := m.AwaitPredCtx(ctx, need, BindInt("k", 1))
			m.Exit()
			cErr <- err
		}()
		go func() {
			defer close(survivor)
			m.Enter()
			if err := m.AwaitPred(need, BindInt("k", 2)); err != nil {
				t.Error(err)
			}
			m.Exit()
		}()
		waitParked(t, m, 2)

		// Make both predicates true and cancel the first waiter inside one
		// critical section: Exit relays exactly one signal, and the
		// cancellation watcher races it for the monitor lock.
		m.Enter()
		count.Set(2)
		cancel()
		m.Exit()

		waitTimeout(t, 10*time.Second, "surviving waiter", func() { <-survivor })
		var err error
		waitTimeout(t, 10*time.Second, "cancelled waiter", func() { err = <-cErr })
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("iter %d: cancelled waiter returned %v", iter, err)
		}
		if p := pendingSignals(m); p != 0 {
			t.Fatalf("iter %d: pending = %d, relay chain corrupted", iter, p)
		}
		m.Do(func() { count.Set(0) })
	}
}

// TestAwaitCtxSharedEntryAbandonment cancels one of several waiters that
// share a single predicate entry: the cancellation broadcast wakes them
// all, and only unconsumed-signal accounting keeps the survivors correct.
func TestAwaitCtxSharedEntryAbandonment(t *testing.T) {
	m := New()
	count := m.NewInt("count", 0)
	need := m.MustCompile("count >= k")

	iters := 100
	if testing.Short() {
		iters = 20
	}
	for iter := 0; iter < iters; iter++ {
		ctx, cancel := context.WithCancel(context.Background())
		cErr := make(chan error, 1)
		var survivors sync.WaitGroup
		for s := 0; s < 2; s++ {
			survivors.Add(1)
			go func() {
				defer survivors.Done()
				m.Enter()
				if err := m.AwaitPred(need, BindInt("k", 3)); err != nil {
					t.Error(err)
				}
				count.Add(-1) // keep the predicate true for the co-waiter
				m.Exit()
			}()
		}
		go func() {
			m.Enter()
			err := m.AwaitPredCtx(ctx, need, BindInt("k", 3)) // same entry
			m.Exit()
			cErr <- err
		}()
		waitParked(t, m, 3)
		m.Enter()
		count.Set(4) // stays >= 3 after each survivor's decrement
		cancel()
		m.Exit()
		waitTimeout(t, 10*time.Second, "shared-entry survivors", func() { survivors.Wait() })
		<-cErr
		if p := pendingSignals(m); p != 0 {
			t.Fatalf("iter %d: pending = %d", iter, p)
		}
		m.Do(func() { count.Set(0) })
	}
}

// TestAwaitCtxStress churns waiters with randomly cancelled contexts under
// a running producer; run with -race. Every waiter must terminate, no
// signal may stay in flight, and the monitor must end empty.
func TestAwaitCtxStress(t *testing.T) {
	m := New()
	count := m.NewInt("count", 0)
	need := m.MustCompile("count >= k")

	const waiters = 60
	var cancelled, released atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := context.Background()
			if i%3 == 0 {
				tctx, cancel := context.WithTimeout(ctx, time.Duration(i%7)*time.Millisecond)
				defer cancel()
				ctx = tctx
			}
			m.Enter()
			err := m.AwaitPredCtx(ctx, need, BindInt("k", int64(i%9+1)))
			switch {
			case err == nil:
				count.Add(int64(-(i%9 + 1) / 2)) // consume some, keep churn
				released.Add(1)
			case errors.Is(err, context.DeadlineExceeded):
				cancelled.Add(1)
			default:
				t.Errorf("waiter %d: %v", i, err)
			}
			m.Exit()
		}(i)
	}
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				m.Do(func() { count.Add(2) })
			}
		}
	}()
	waitTimeout(t, 30*time.Second, "stress waiters", func() { wg.Wait() })
	close(stop)
	if got := cancelled.Load() + released.Load(); got != waiters {
		t.Errorf("accounted waiters = %d, want %d", got, waiters)
	}
	if p := pendingSignals(m); p != 0 {
		t.Errorf("pending = %d at end of stress", p)
	}
	if w := m.Waiting(); w != 0 {
		t.Errorf("Waiting() = %d at end of stress", w)
	}
	t.Logf("stress: %d released, %d cancelled, stats: %s", released.Load(), cancelled.Load(), m.Stats().String())
}

func TestBaselineAwaitCtx(t *testing.T) {
	b := NewBaseline()
	state := 0
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		b.Enter()
		err := b.AwaitCtx(ctx, func() bool { return state >= 2 })
		b.Exit()
		errCh <- err
	}()
	testWaitParkedMech(t, b, 1)
	cancel()
	var err error
	waitTimeout(t, 10*time.Second, "baseline cancelled", func() { err = <-errCh })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if s := b.Stats(); s.Abandons != 1 {
		t.Errorf("Abandons = %d", s.Abandons)
	}
	// The baseline still works afterwards.
	done := make(chan struct{})
	go func() {
		defer close(done)
		b.Enter()
		b.Await(func() bool { return state >= 2 })
		b.Exit()
	}()
	testWaitParkedMech(t, b, 1)
	b.Do(func() { state = 2 })
	waitTimeout(t, 10*time.Second, "baseline waiter", func() { <-done })
}

func TestExplicitCondAwaitCtx(t *testing.T) {
	e := NewExplicit()
	c := e.NewCond()
	state := 0
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		e.Enter()
		err := c.AwaitCtx(ctx, func() bool { return state >= 1 })
		e.Exit()
		errCh <- err
	}()
	// A second, signal-released waiter on the same condition: the
	// cancellation broadcast must not corrupt it.
	done := make(chan struct{})
	go func() {
		defer close(done)
		e.Enter()
		c.Await(func() bool { return state >= 1 })
		e.Exit()
	}()
	testWaitParkedMech(t, e, 2)
	cancel()
	var err error
	waitTimeout(t, 10*time.Second, "explicit cancelled", func() { err = <-errCh })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	e.Do(func() { state = 1; c.Signal() })
	waitTimeout(t, 10*time.Second, "explicit survivor", func() { <-done })
	if s := e.Stats(); s.Abandons != 1 {
		t.Errorf("Abandons = %d", s.Abandons)
	}
}

// testWaitParkedMech polls any Mechanism's Waiting count.
func testWaitParkedMech(t *testing.T, mech Mechanism, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for mech.Waiting() != n {
		if time.Now().After(deadline) {
			t.Fatalf("%d waiter(s) never parked (have %d)", n, mech.Waiting())
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// TestMechanismInterface drives all three monitor types through the
// Mechanism interface alone: a generic waiter parks on a closure predicate
// and a generic driver flips the state. The explicit monitor needs one
// manual signal — issued here through a condition created on the side,
// which is exactly its contract (AwaitFunc wakes on any manual signal).
func TestMechanismInterface(t *testing.T) {
	mon := New()
	flag := mon.NewInt("flag", 0)
	exp := NewExplicit()
	side := exp.NewCond()
	base := NewBaseline()

	var expFlag, baseFlag int
	cases := []struct {
		name string
		mech Mechanism
		pred func() bool
		set  func()
	}{
		{"autosynch", mon, func() bool { return flag.Get() == 1 }, func() { flag.Set(1) }},
		{"baseline", base, func() bool { return baseFlag == 1 }, func() { baseFlag = 1 }},
		{"explicit", exp, func() bool { return expFlag == 1 }, func() { expFlag = 1; side.Broadcast() }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			done := make(chan struct{})
			go func() {
				defer close(done)
				c.mech.Enter()
				c.mech.AwaitFunc(c.pred)
				c.mech.Exit()
			}()
			testWaitParkedMech(t, c.mech, 1)
			c.mech.Do(c.set)
			waitTimeout(t, 10*time.Second, c.name+" generic waiter", func() { <-done })
			if c.mech.Stats().Awaits == 0 {
				t.Error("no awaits recorded through the interface")
			}
			c.mech.ResetStats()
			if c.mech.Stats().Awaits != 0 {
				t.Error("ResetStats through the interface failed")
			}

			// And the ctx variant with a pre-cancelled context.
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			c.mech.Enter()
			if err := c.mech.AwaitFuncCtx(ctx, func() bool { return false }); !errors.Is(err, context.Canceled) {
				t.Errorf("AwaitFuncCtx = %v", err)
			}
			c.mech.Exit()
		})
	}
}
