package core

import (
	"container/heap"

	"repro/internal/expr"
	"repro/internal/linear"
	"repro/internal/tag"
)

// sharedGroup holds every tag structure for one canonical shared expression
// (Fig. 7): a hash table of equivalence tags keyed by the globalized local
// value, a min-heap of {>, ≥} threshold tags, and a max-heap of {<, ≤}
// threshold tags. eval computes the shared expression's current value from
// the monitor cells.
type sharedGroup struct {
	exprStr string
	eval    expr.IntFn
	equiv   map[int64]*tagNode
	minHeap tagHeap // ops > and >=, smallest key at the root
	maxHeap tagHeap // ops < and <=, largest key at the root
	waiters int     // total waiters across entries registered here; idle groups are skipped
}

func (g *sharedGroup) empty() bool {
	return len(g.equiv) == 0 && g.minHeap.Len() == 0 && g.maxHeap.Len() == 0
}

// thrKey indexes threshold nodes within a group so predicates with the same
// (key, op) share one node.
type thrKey struct {
	key int64
	op  expr.Op
}

// tagNode is one tag instance holding the predicate entries it was assigned
// to. Multiple predicates with a common conjunct share a node (§4.3.1).
type tagNode struct {
	group   *sharedGroup
	kind    tag.Kind
	key     int64
	op      expr.Op // ==, or one of < <= > >=
	entries []*entry
	heapIdx int // index within its heap; -1 when not resident
}

// holds reports whether the tag is true given the group's current value v.
func (n *tagNode) holds(v int64) bool {
	switch n.op {
	case expr.OpEq:
		return v == n.key
	case expr.OpLt:
		return v < n.key
	case expr.OpLe:
		return v <= n.key
	case expr.OpGt:
		return v > n.key
	case expr.OpGe:
		return v >= n.key
	}
	return false
}

func (n *tagNode) addEntry(e *entry) {
	n.entries = append(n.entries, e)
}

func (n *tagNode) removeEntry(e *entry) {
	for i, x := range n.entries {
		if x == e {
			last := len(n.entries) - 1
			n.entries[i] = n.entries[last]
			n.entries[last] = nil
			n.entries = n.entries[:last]
			return
		}
	}
}

// tagHeap orders threshold tag nodes so that if the root tag is false every
// other tag in the heap is false (§4.3.2). For the {>, ≥} heap that means
// ascending key with ≥ ordered before > at equal keys (x ≥ 3 is implied by
// x > 3's truth, not vice versa); the {<, ≤} heap mirrors this.
type tagHeap struct {
	items []*tagNode
	min   bool // true for the {>, ≥} min-heap
}

func (h *tagHeap) Len() int { return len(h.items) }

func (h *tagHeap) Less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if h.min {
		if a.key != b.key {
			return a.key < b.key
		}
		// ≥ sorts before > : (5, ≥) is true whenever (5, >) is.
		return a.op == expr.OpGe && b.op == expr.OpGt
	}
	if a.key != b.key {
		return a.key > b.key
	}
	return a.op == expr.OpLe && b.op == expr.OpLt
}

func (h *tagHeap) Swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.items[i].heapIdx = i
	h.items[j].heapIdx = j
}

func (h *tagHeap) Push(x any) {
	n := x.(*tagNode)
	n.heapIdx = len(h.items)
	h.items = append(h.items, n)
}

func (h *tagHeap) Pop() any {
	last := len(h.items) - 1
	n := h.items[last]
	h.items[last] = nil
	h.items = h.items[:last]
	n.heapIdx = -1
	return n
}

func (h *tagHeap) push(n *tagNode)   { heap.Push(h, n) }
func (h *tagHeap) remove(n *tagNode) { heap.Remove(h, n.heapIdx) }
func (h *tagHeap) popRoot() *tagNode { return heap.Pop(h).(*tagNode) }

func (h *tagHeap) root() *tagNode {
	if len(h.items) == 0 {
		return nil
	}
	return h.items[0]
}

// compileForm builds the group evaluator for a canonical shared linear
// form: Σ coeffᵢ·getᵢ() + const over the monitor's cells. Boolean cells
// contribute their 0/1 encoding, which is how bare boolean atoms become
// equivalence tags.
func (m *Monitor) compileForm(f linear.Form) (expr.IntFn, error) {
	type term struct {
		get   expr.Getter
		coeff int64
	}
	terms := make([]term, 0, len(f.Coeffs))
	for _, name := range f.Vars() {
		s, ok := m.vars[name]
		if !ok {
			return nil, predErrf(f.String(), "shared expression references undeclared variable %q", name)
		}
		terms = append(terms, term{get: s.get, coeff: f.Coeffs[name]})
	}
	konst := f.Const
	return func() int64 {
		v := konst
		for _, t := range terms {
			v += t.coeff * t.get()
		}
		return v
	}, nil
}
