package core

import (
	"container/list"
	"time"

	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/tag"
)

// condManager owns the predicate table, the tag structures, and the
// inactive list of one monitor (§5.2, Fig. 7). Every method runs under the
// monitor lock.
type condManager struct {
	m *Monitor

	table    map[string]*entry // active entries by canonical string
	inactive map[string]*entry // parked entries by canonical string
	lru      *list.List        // inactive entries, most recently parked at the front

	groups map[string]*sharedGroup // tag structures by canonical shared expression
	none   []*entry                // entries needing exhaustive search

	pending int // signals issued and not yet consumed by a woken or claiming waiter

	// relayOrigin is the seq of the waiter whose consumed notification the
	// next relay signal continues — the wake-chain edge the flight
	// recorder stamps on KSignal events. Maintained only while the
	// monitor records (m.rec != nil): consumeSignal sets it, relay sites
	// with no preceding consume (Exit, the pre-park relay) zero it.
	relayOrigin uint64
}

func newCondManager(m *Monitor) *condManager {
	return &condManager{
		m:        m,
		table:    map[string]*entry{},
		inactive: map[string]*entry{},
		lru:      list.New(),
		groups:   map[string]*sharedGroup{},
	}
}

// getEntry finds or creates the entry for a globalized predicate,
// reactivating a parked entry when the same canonical predicate was used
// before (predicate reuse, §5.2). build constructs the entry on a miss.
func (cm *condManager) getEntry(canon string, build func() (*entry, error)) (*entry, error) {
	if e, ok := cm.table[canon]; ok {
		return e, nil
	}
	if e, ok := cm.inactive[canon]; ok {
		delete(cm.inactive, canon)
		cm.lru.Remove(e.lruElem)
		e.lruElem = nil
		cm.m.stats.Reuses++
		cm.activate(e)
		return e, nil
	}
	e, err := build()
	if err != nil {
		return nil, err
	}
	cm.m.stats.Registrations++
	cm.activate(e)
	return e, nil
}

// activate registers the entry in the predicate table and in the tag
// structures (or the None list when tagging is disabled).
func (cm *condManager) activate(e *entry) {
	start := cm.m.profileStart()
	cm.table[e.canon] = e
	e.active = true
	seen := map[*tagNode]bool{}
	inNone := false
	for _, tg := range e.conjTags {
		if !cm.m.cfg.tagging || tg.Kind == tag.None {
			if !inNone {
				e.noneIdx = len(cm.none)
				cm.none = append(cm.none, e)
				inNone = true
			}
			continue
		}
		node := cm.nodeFor(tg)
		if node == nil {
			// Shared-expression compilation failed (undeclared variable
			// in a hand-built DNF); fall back to exhaustive search.
			if !inNone {
				e.noneIdx = len(cm.none)
				cm.none = append(cm.none, e)
				inNone = true
			}
			continue
		}
		if seen[node] {
			continue
		}
		seen[node] = true
		node.addEntry(e)
		e.nodes = append(e.nodes, node)
	}
	cm.m.profileEndTag(start)
}

// nodeFor finds or creates the tag node for tg in its shared-expression
// group, creating the group (with its compiled evaluator) on first use.
func (cm *condManager) nodeFor(tg tag.Tag) *tagNode {
	g, ok := cm.groups[tg.Expr]
	if !ok {
		eval, err := cm.m.compileForm(tg.Form)
		if err != nil {
			return nil
		}
		g = &sharedGroup{
			exprStr: tg.Expr,
			eval:    eval,
			equiv:   map[int64]*tagNode{},
			minHeap: tagHeap{min: true},
			maxHeap: tagHeap{min: false},
		}
		cm.groups[tg.Expr] = g
	}
	if tg.Kind == tag.Equivalence {
		if n, ok := g.equiv[tg.Key]; ok {
			return n
		}
		n := &tagNode{group: g, kind: tag.Equivalence, key: tg.Key, op: tg.Op, heapIdx: -1}
		g.equiv[tg.Key] = n
		return n
	}
	h := g.heapFor(tg.Op)
	for _, n := range h.items {
		if n.key == tg.Key && n.op == tg.Op {
			return n
		}
	}
	n := &tagNode{group: g, kind: tag.Threshold, key: tg.Key, op: tg.Op}
	h.push(n)
	return n
}

// heapFor selects the heap for a threshold operator: {>, ≥} tags live in
// the min-heap, {<, ≤} tags in the max-heap.
func (g *sharedGroup) heapFor(op expr.Op) *tagHeap {
	if op == expr.OpGt || op == expr.OpGe {
		return &g.minHeap
	}
	return &g.maxHeap
}

// deactivate unregisters an entry with no remaining waiters. Static
// (shared) predicates stay active forever; closure entries are discarded;
// everything else is parked on the inactive list for reuse, evicting the
// oldest entries past the configured limit.
func (cm *condManager) deactivate(e *entry) {
	if e.static || !e.active {
		return
	}
	start := cm.m.profileStart()
	delete(cm.table, e.canon)
	e.active = false
	for _, n := range e.nodes {
		n.removeEntry(e)
		if len(n.entries) == 0 {
			g := n.group
			if n.kind == tag.Equivalence {
				delete(g.equiv, n.key)
			} else if n.heapIdx >= 0 {
				g.heapFor(n.op).remove(n)
			}
			if g.empty() {
				delete(cm.groups, g.exprStr)
			}
		}
	}
	e.nodes = nil
	if e.noneIdx >= 0 {
		cm.removeNone(e)
	}
	if !e.funcOnly && cm.m.cfg.inactiveLimit > 0 {
		e.lruElem = cm.lru.PushFront(e)
		cm.inactive[e.canon] = e
		for cm.lru.Len() > cm.m.cfg.inactiveLimit {
			oldest := cm.lru.Remove(cm.lru.Back()).(*entry)
			delete(cm.inactive, oldest.canon)
			oldest.lruElem = nil
			cm.m.stats.Evictions++
		}
	}
	cm.m.profileEndTag(start)
}

func (cm *condManager) removeNone(e *entry) {
	last := len(cm.none) - 1
	moved := cm.none[last]
	cm.none[e.noneIdx] = moved
	moved.noneIdx = e.noneIdx
	cm.none[last] = nil
	cm.none = cm.none[:last]
	e.noneIdx = -1
}

// relaySignal implements the relay signaling rule (§4.2): if no signal is
// already pending, find one waiter whose globalized predicate is true and
// signal it — by closing that waiter's ready channel, which unparks a
// blocked Await or fires an armed handle's select case. A pending signal
// means an active waiter already exists (Definition 3 counts signaled
// threads as active), so relay invariance holds without a second search —
// and the signaled waiter itself relays again before it re-waits (Fig. 6),
// or on the Exit/re-arm that ends its Claim, keeping the chain alive.
func (cm *condManager) relaySignal() {
	cm.m.stats.RelayCalls++
	if cm.pending > 0 {
		return
	}
	start := cm.m.profileStart()
	var w *Wait
	if pol := cm.m.cfg.policy; pol != nil {
		w = cm.policyPick(pol)
	} else if e := cm.findTrue(); e != nil {
		// Per-predicate policies still apply without a monitor policy:
		// the tag-pruned search picks the entry, the entry's own policy
		// picks the waiter within it.
		w = e.pickUnnotified(e.policy)
	}
	if w != nil {
		w.viaRelay = true
		cm.pending++
		cm.m.stats.Signals++
		policyPicked := cm.m.cfg.policy != nil || w.e.policy != nil
		if policyPicked {
			cm.m.stats.PolicyWakes++
		}
		if r := cm.m.rec; r != nil {
			r.Record(obs.KSignal, w.seq, int64(cm.relayOrigin))
			if policyPicked {
				r.Record(obs.KPolicyWake, w.seq, w.rank)
			}
			cm.relayOrigin = 0 // baton handed to w; reset until its consume
		}
		cm.notify(w)
	}
	cm.m.profileEndRelay(start)
}

// policyPick is the exhaustive relay scan used when a monitor-wide wake
// policy is configured. Tag pruning is built to find *a* true waiter
// early, but a policy must compare *all* of them, so the scan visits
// every active entry — the predicate table plus the closure entries of
// the None list (closure entries are never in the table) — evaluates
// each signalable one, and keeps the policy-best eligible waiter. A
// per-entry override governs the pick within its entry; the monitor
// policy arbitrates across entries.
func (cm *condManager) policyPick(pol policy.Policy) *Wait {
	var best *Wait
	consider := func(e *entry) {
		if !e.signalable() {
			return
		}
		cm.m.stats.PredicateEvals++
		if !e.evalFn() {
			return
		}
		epol := e.policy
		if epol == nil {
			epol = pol
		}
		w := e.pickUnnotified(epol)
		if w == nil {
			return
		}
		if best == nil || pol.Better(cand(w), cand(best)) {
			best = w
		}
	}
	for _, e := range cm.table {
		consider(e)
	}
	for _, e := range cm.none {
		if e.funcOnly {
			consider(e)
		}
	}
	return best
}

// notify delivers a notification to one waiter, keeping the entry's
// signalable accounting exact.
func (cm *condManager) notify(w *Wait) {
	w.notify()
	w.e.unnotified--
}

// register attaches a waiter to its entry and updates the per-group
// waiter totals and the monitor-wide Waiting count. First registration
// stamps the waiter's arrival seq (the FIFO/LIFO sort key — the waiters
// slice itself is swap-removed and order-free) and its wait-start time;
// both survive futile-wake re-registration so a policy cannot demote a
// waiter for having been woken uselessly.
func (cm *condManager) register(w *Wait) {
	if w.seq == 0 {
		cm.m.seq++
		w.seq = cm.m.seq
	}
	if w.since == 0 {
		w.since = time.Now().UnixNano()
	}
	if r := cm.m.rec; r != nil {
		r.Record(obs.KArm, w.seq, w.rank)
	}
	e := w.e
	w.idx = len(e.waiters)
	e.waiters = append(e.waiters, w)
	e.unnotified++
	for _, n := range e.nodes {
		n.group.waiters++
	}
	cm.m.waiting++
}

// unregister detaches a waiter from its entry. An entry's node set is
// stable while it has waiters (deactivation requires an empty waiter
// list), so the group bookkeeping is exact.
func (cm *condManager) unregister(w *Wait) {
	e := w.e
	last := len(e.waiters) - 1
	moved := e.waiters[last]
	e.waiters[w.idx] = moved
	moved.idx = w.idx
	e.waiters[last] = nil
	e.waiters = e.waiters[:last]
	w.idx = -1
	if !w.notified {
		e.unnotified--
	}
	for _, n := range e.nodes {
		n.group.waiters--
	}
	cm.m.waiting--
}

// findTrue locates a signalable entry whose predicate currently holds.
// With tagging, equivalence hash tables are probed first, then the
// threshold heaps, and only then the None list (§4.3.2); without tagging
// every entry in the None list (which then holds all of them) is scanned.
func (cm *condManager) findTrue() *entry {
	if cm.m.cfg.tagging {
		for _, g := range cm.groups {
			// Groups whose entries have no signalable waiters (e.g. the
			// permanently registered static predicates of an idle
			// problem) are skipped without evaluating the expression.
			if g.waiters == 0 {
				continue
			}
			v := g.eval()
			if node, ok := g.equiv[v]; ok {
				cm.m.stats.TagChecks++
				if e := cm.firstTrue(node.entries); e != nil {
					return e
				}
			}
			if e := cm.searchHeap(&g.minHeap, v); e != nil {
				return e
			}
			if e := cm.searchHeap(&g.maxHeap, v); e != nil {
				return e
			}
		}
	}
	return cm.firstTrue(cm.none)
}

// firstTrue returns the first signalable entry whose predicate evaluates
// to true.
func (cm *condManager) firstTrue(entries []*entry) *entry {
	for _, e := range entries {
		if !e.signalable() {
			continue
		}
		cm.m.stats.PredicateEvals++
		if e.evalFn() {
			return e
		}
	}
	return nil
}

// searchHeap is the threshold search of Fig. 4: examine the root tag; if it
// is false, every descendant is false and the search stops; if it is true
// but none of its predicates has a signalable true waiter, pop it to a
// backup list and look at the new root. Popped tags are reinserted before
// returning so the heap stays complete.
func (cm *condManager) searchHeap(h *tagHeap, v int64) *entry {
	if h.Len() == 0 {
		return nil
	}
	var backup []*tagNode
	var found *entry
	for h.Len() > 0 {
		root := h.root()
		cm.m.stats.TagChecks++
		if !root.holds(v) {
			break
		}
		if e := cm.firstTrue(root.entries); e != nil {
			found = e
			break
		}
		backup = append(backup, h.popRoot())
	}
	for _, b := range backup {
		h.push(b)
	}
	return found
}
