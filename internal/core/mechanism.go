package core

import (
	"context"
	"time"

	"repro/internal/stats"
)

// Mechanism is the driving surface shared by the three monitor types —
// Monitor (and its AutoSynch-T variant), Baseline, and Explicit — so
// harnesses, benchmarks, and tests can run one workload against every
// mechanism through a single interface instead of per-mechanism adapter
// code.
//
// The closure wait is the portable common denominator: every mechanism
// can park a waiter on an opaque predicate and re-check it on wake-up —
// blocking (AwaitFunc), non-blocking (TryFunc), or as a first-class armed
// handle (ArmFunc) whose notification arrives on a channel. How
// notifications happen stays mechanism-specific — Monitor relays a signal
// exactly when the predicate is true, Baseline broadcasts on every exit,
// and Explicit wakes its generic waiters on any manual signal. Monitor's
// string and compiled-predicate waits (Await/AwaitPred/Predicate.Arm)
// remain on the concrete type: they are what the other mechanisms, by
// design, cannot offer.
type Mechanism interface {
	// Enter acquires the monitor and Exit releases it (relaying or
	// broadcasting per the mechanism's discipline); Do wraps both.
	Enter()
	Exit()
	Do(f func())

	// AwaitFunc blocks inside the monitor until pred() holds; the ctx
	// variant additionally abandons the wait and returns ctx.Err() when
	// the context is done, still holding the monitor.
	AwaitFunc(pred func() bool)
	AwaitFuncCtx(ctx context.Context, pred func() bool) error

	// AwaitFuncDeadline and AwaitFuncTimeout are the timer-shaped peers
	// of AwaitFuncCtx: if the predicate has not become true by the
	// deadline, the wait is abandoned with ErrDeadline, still holding
	// the monitor. Expiries ride a per-monitor timer wheel (one service
	// goroutine for all pending deadlines, none when idle) rather than a
	// context and goroutine per wait, and an observed expiry wins a race
	// against the predicate becoming true, exactly like cancellation.
	AwaitFuncDeadline(deadline time.Time, pred func() bool) error
	AwaitFuncTimeout(d time.Duration, pred func() bool) error

	// ArmFunc registers a waiter without blocking and returns its
	// first-class handle: select on Ready, then Claim (re-validating
	// Mesa-style) or Cancel. Called outside the monitor — it locks
	// internally. TryFunc is the non-blocking degenerate case: one
	// in-monitor evaluation, no parking, no arming.
	ArmFunc(pred func() bool) *Wait
	TryFunc(pred func() bool) bool

	// WhenFunc returns the guarded region on a closure predicate: the
	// conditional critical section as one unit. Guard.Do atomically
	// enters, awaits the predicate, runs the body, and exits with a
	// panic-safe unlock; guards on different monitors and mechanisms
	// compose with Select. Monitor additionally offers When for compiled
	// predicates (and Cond.When targets one explicit condition).
	WhenFunc(pred func() bool) *Guard

	// Stats/ResetStats expose the shared instrumentation; Waiting reports
	// the registered-waiter count (parked waits plus armed handles) that
	// tests poll instead of sleeping, and assert zero for leak checks.
	Stats() Stats
	ResetStats()
	Waiting() int

	// WaitLatency returns a copy of the mechanism's wake-to-claim latency
	// histogram — the registration-to-completion duration of every wait
	// that actually parked or armed (fast-path awaits are excluded) — or
	// nil if no wait has completed. The histogram is allocated lazily on
	// the first completed wait, so mechanisms that never park report nil
	// at zero cost.
	WaitLatency() *stats.Histogram
}

// The three mechanisms implement the interface, and each doubles as the
// host of its own handles.
var (
	_ Mechanism = (*Monitor)(nil)
	_ Mechanism = (*Baseline)(nil)
	_ Mechanism = (*Explicit)(nil)

	_ waitHost = (*Monitor)(nil)
	_ waitHost = (*Baseline)(nil)
	_ waitHost = (*Explicit)(nil)
)
