package core

import "context"

// Mechanism is the driving surface shared by the three monitor types —
// Monitor (and its AutoSynch-T variant), Baseline, and Explicit — so
// harnesses, benchmarks, and tests can run one workload against every
// mechanism through a single interface instead of per-mechanism adapter
// code.
//
// The closure wait is the portable common denominator: every mechanism
// can park a waiter on an opaque predicate and re-check it on wake-up.
// How wake-ups happen stays mechanism-specific — Monitor relays a signal
// exactly when the predicate is true, Baseline broadcasts on every exit,
// and Explicit wakes its generic waiters on any manual signal (see
// Explicit.AwaitFunc). Monitor's string and compiled-predicate waits
// (Await/AwaitPred) remain on the concrete type: they are what the other
// mechanisms, by design, cannot offer.
type Mechanism interface {
	// Enter acquires the monitor and Exit releases it (relaying or
	// broadcasting per the mechanism's discipline); Do wraps both.
	Enter()
	Exit()
	Do(f func())

	// AwaitFunc blocks inside the monitor until pred() holds; the ctx
	// variant additionally abandons the wait and returns ctx.Err() when
	// the context is done, still holding the monitor.
	AwaitFunc(pred func() bool)
	AwaitFuncCtx(ctx context.Context, pred func() bool) error

	// Stats/ResetStats expose the shared instrumentation; Waiting reports
	// the parked-waiter count tests poll instead of sleeping.
	Stats() Stats
	ResetStats()
	Waiting() int
}

// The three mechanisms implement the interface.
var (
	_ Mechanism = (*Monitor)(nil)
	_ Mechanism = (*Baseline)(nil)
	_ Mechanism = (*Explicit)(nil)
)
