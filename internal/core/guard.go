package core

import (
	"context"
	"time"
)

// Guard is a guarded region: the paper's waituntil-guarded critical
// section reified as a first-class value. Where the primitive API makes
// callers hand-assemble Enter / Await / mutate / Exit, a Guard packages
// the whole unit — Do (and DoCtx, Try) atomically enters the monitor,
// awaits the predicate, runs the body, and exits, with the unlock
// guaranteed even when the body panics.
//
// Guards are created by Monitor.When (compiled predicate plus bindings),
// Predicate.When, Cond.When, the WhenFunc of every Mechanism, and the
// keyed When/WhenFunc of a sharded monitor. A Guard is immutable and
// reusable: Do it any number of times, from any goroutine, and compose
// guards on different monitors — and different mechanisms — with Select.
//
// Arming errors are surfaced eagerly: a guard built from malformed
// bindings or an unsatisfiable globalization (ErrNeverTrue) reports the
// *PredicateError from Err, and Do/DoCtx return it (Try returns false)
// without ever entering the monitor or parking, matching the compiled
// predicate API's error contract.
//
// Like Arm, guard construction and use acquire the monitor internally:
// call When/WhenFunc and Do/DoCtx/Try (and Select) OUTSIDE Enter/Exit —
// monitors are not reentrant, so doing either inside a critical section
// of the same monitor deadlocks. Inside the body the monitor is held;
// mutate the cells directly rather than calling Do/Enter again.
type Guard struct {
	mech Mechanism
	err  error

	// The three faces of the wait, mechanism-bound at construction.
	// await and try run inside the monitor (between Enter and Exit);
	// arm runs outside it and returns a fresh armed handle for Select.
	await func(ctx context.Context) error
	try   func() bool
	arm   func() *Wait
}

// Err reports the guard's construction error: a *PredicateError for
// malformed bindings or a never-true globalization, nil for a usable
// guard. Do, DoCtx, and Select surface the same error without parking.
func (g *Guard) Err() error { return g.err }

// Do is the guarded region: enter the monitor, wait until the predicate
// holds, run body inside the monitor with the predicate true, and exit —
// relaying onward per the mechanism's discipline. The exit is deferred,
// so a panicking body still releases the monitor and the panic propagates
// to the caller with all signaling invariants intact. Call Do outside
// the monitor (it Enters internally; monitors are not reentrant).
func (g *Guard) Do(body func()) error {
	if g.err != nil {
		return g.err
	}
	g.mech.Enter()
	defer g.mech.Exit()
	if err := g.await(nil); err != nil {
		return err
	}
	body()
	return nil
}

// DoCtx is Do with cancellation: if ctx is done before the predicate
// becomes true the wait is abandoned (with the mechanism's usual relay
// repair) and DoCtx returns ctx.Err() without running body. The monitor
// is released on every path, panicking bodies included.
func (g *Guard) DoCtx(ctx context.Context, body func()) error {
	if g.err != nil {
		return g.err
	}
	g.mech.Enter()
	defer g.mech.Exit()
	if err := g.await(ctx); err != nil {
		return err
	}
	body()
	return nil
}

// Try is the non-blocking guarded region: enter, evaluate the predicate
// once, and — only if it holds — run body inside the monitor. It reports
// whether the body ran. A guard with a construction error never runs its
// body; check Err. The exit is deferred exactly as in Do.
func (g *Guard) Try(body func()) bool {
	if g.err != nil {
		return false
	}
	g.mech.Enter()
	defer g.mech.Exit()
	if !g.try() {
		return false
	}
	body()
	return true
}

// Then pairs the guard with the body to run if it wins a Select.
func (g *Guard) Then(body func()) Case {
	return Case{guard: g, body: body}
}

// whenFunc builds the closure-predicate guard every mechanism shares:
// the closure is evaluated under the mechanism's monitor exactly as in
// AwaitFunc/TryFunc/ArmFunc, so it must only read state guarded by that
// monitor and values that cannot change while waiting.
func whenFunc(mech Mechanism, pred func() bool) *Guard {
	return &Guard{
		mech:  mech,
		await: func(ctx context.Context) error { return mech.AwaitFuncCtx(ctx, pred) },
		try:   func() bool { return mech.TryFunc(pred) },
		arm:   func() *Wait { return mech.ArmFunc(pred) },
	}
}

// WhenFunc returns the guarded region on a closure predicate; see Guard.
// Notification follows the monitor's relay discipline: the body runs only
// when the closure is actually true.
func (m *Monitor) WhenFunc(pred func() bool) *Guard { return whenFunc(m, pred) }

// WhenFunc returns the guarded region on a closure predicate; the
// baseline's broadcast-on-exit discipline wakes it like any waiter.
func (b *Baseline) WhenFunc(pred func() bool) *Guard { return whenFunc(b, pred) }

// WhenFunc returns the guarded region on a closure predicate, woken by
// any manual signal of the monitor (the generic any-condition waiter);
// prefer Cond.When in real explicit-monitor code, where precise signals
// target the guard's own condition.
func (e *Explicit) WhenFunc(pred func() bool) *Guard { return whenFunc(e, pred) }

// When returns the guarded region on an explicit condition variable:
// Do parks on this condition (woken by its Signal/Broadcast), Select
// arms a handle on it — the guarded-region analog of the while-loop
// around Condition.await.
func (c *Cond) When(pred func() bool) *Guard {
	return &Guard{
		mech:  c.m,
		await: func(ctx context.Context) error { return c.await(ctx, time.Time{}, pred) },
		try:   func() bool { return c.m.TryFunc(pred) },
		arm:   func() *Wait { return c.Arm(pred) },
	}
}

// When returns the guarded region on a compiled predicate with the given
// bindings. The bindings are validated — and the globalization checked
// for satisfiability — immediately: a malformed guard carries its
// *PredicateError in Err and never parks. The binding values are
// snapshotted into the guard, so the guard stays valid however the
// caller's locals change, and one Predicate yields independent guards
// for different bindings. When acquires the monitor internally: call it
// (like Compile and Arm) outside Enter/Exit.
func (m *Monitor) When(p *Predicate, binds ...Binding) *Guard {
	bs := append([]Binding(nil), binds...)
	g := &Guard{mech: m}
	if g.err = m.vetPred(p, bs); g.err != nil {
		return g
	}
	g.await = func(ctx context.Context) error { return m.awaitPred(ctx, time.Time{}, p, bs) }
	g.try = func() bool {
		ok, err := m.tryPred(p, bs)
		return err == nil && ok
	}
	g.arm = func() *Wait { return p.Arm(bs...) }
	return g
}

// When is Monitor.When spelled from the predicate:
// hasItems.When(Bind("num", 3)).Do(take).
func (p *Predicate) When(binds ...Binding) *Guard {
	if p == nil {
		return &Guard{err: &PredicateError{Src: "<nil>", Msg: "nil predicate"}}
	}
	return p.m.When(p, binds...)
}

// vetPred validates a guard's predicate and bindings at construction
// time: binding names, arity, and types against the compiled locals, and
// the globalized predicate against ErrNeverTrue — the same checks the
// wait path would make, pulled forward so the guard fails before parking.
// A fresh entry built only for the probe is retired immediately (parked
// on the inactive list for reuse, exactly as a completed wait leaves it).
func (m *Monitor) vetPred(p *Predicate, binds []Binding) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if p == nil {
		return &PredicateError{Src: "<nil>", Msg: "nil predicate"}
	}
	if p.m != m {
		return predErrf(p.src, "predicate was compiled by a different monitor")
	}
	if err := p.setBinds(binds); err != nil {
		return err
	}
	e, err := m.entryFor(p)
	if err != nil {
		return err
	}
	if e != nil {
		m.retireIfIdle(e)
	}
	return nil
}
