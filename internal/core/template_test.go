package core

import (
	"testing"
	"time"
)

func TestTemplatePathChosen(t *testing.T) {
	m := New()
	m.NewInt("x", 0)
	m.NewInt("y", 0)
	m.NewBool("open", false)

	templateable := []struct {
		pred  string
		binds []Binding
	}{
		{"x > 0", nil},
		{"open", nil},
		{"!open && x == 0", nil},
		{"x >= k", []Binding{BindInt("k", 1)}},
		{"x - 2 >= y + k", []Binding{BindInt("k", 1)}},
		{"x == a && y >= b || open", []Binding{BindInt("a", 1), BindInt("b", 2)}},
		{"x >= a * a", []Binding{BindInt("a", 3)}}, // nonlinear in locals only: key = a²
	}
	for _, c := range templateable {
		p, err := m.Compile(c.pred)
		if err != nil {
			t.Errorf("Compile(%q): %v", c.pred, err)
			continue
		}
		if p.tmpl == nil {
			t.Errorf("predicate %q did not get a template", c.pred)
		}
		if err := p.setBinds(c.binds); err != nil {
			t.Errorf("setBinds(%q): %v", c.pred, err)
		}
	}

	generic := []struct {
		pred  string
		binds []Binding
	}{
		{"x * x >= k", []Binding{BindInt("k", 1)}},     // nonlinear in shared
		{"x % 2 == 0", nil},                            // modulus of shared
		{"k > 0 || x > 0", []Binding{BindInt("k", 1)}}, // pure-local atom
		{"b && x > 0", []Binding{BindBool("b", true)}}, // bare local bool atom
		{"true", nil},
		{"false", nil},
	}
	for _, c := range generic {
		p, err := m.Compile(c.pred)
		if err != nil {
			t.Errorf("Compile(%q): %v", c.pred, err)
			continue
		}
		if p.tmpl != nil {
			t.Errorf("predicate %q unexpectedly got a template (canon %q)", c.pred, p.tmpl.canon)
		}
		if err := p.setBinds(c.binds); err != nil {
			t.Errorf("setBinds(%q): %v", c.pred, err)
		}
	}
}

func TestTemplateStaticEntryCached(t *testing.T) {
	m := New()
	x := m.NewInt("x", 0)
	for round := 0; round < 3; round++ {
		done := startWaiter(t, m, "x > 0")
		m.Do(func() { x.Set(1) })
		waitTimeout(t, 5*time.Second, "waiter", func() { <-done })
		m.Do(func() { x.Set(0) })
	}
	s := m.Stats()
	if s.Registrations != 1 {
		t.Errorf("registrations = %d, want 1 (static entry cached on the predicate)", s.Registrations)
	}
	if s.Reuses != 0 {
		t.Errorf("reuses = %d, want 0 (static path skips the inactive list)", s.Reuses)
	}
}

func TestTemplateKeyVariants(t *testing.T) {
	// The same source predicate with different bindings produces distinct
	// entries keyed by the globalized values, and identical bindings
	// reuse the parked entry.
	m := New()
	x := m.NewInt("x", 0)
	release := func(v int64) {
		m.Do(func() { x.Set(v) })
	}
	d5 := startWaiter(t, m, "x >= k", BindInt("k", 5))
	d9 := startWaiter(t, m, "x >= k", BindInt("k", 9))
	if s := m.Stats(); s.Registrations != 2 {
		t.Fatalf("registrations = %d, want 2", s.Registrations)
	}
	release(5)
	waitTimeout(t, 5*time.Second, "k=5 waiter", func() { <-d5 })
	select {
	case <-d9:
		t.Fatal("k=9 waiter released at x=5")
	case <-time.After(30 * time.Millisecond):
	}
	release(9)
	waitTimeout(t, 5*time.Second, "k=9 waiter", func() { <-d9 })
	release(0)

	// Same key again: must reuse the parked entry, not register.
	d5b := startWaiter(t, m, "x >= k", BindInt("k", 5))
	release(5)
	waitTimeout(t, 5*time.Second, "k=5 again", func() { <-d5b })
	s := m.Stats()
	if s.Registrations != 2 || s.Reuses == 0 {
		t.Errorf("registrations=%d reuses=%d, want 2 and >0", s.Registrations, s.Reuses)
	}
}

func TestTemplateLocalBoolKey(t *testing.T) {
	// open == b with a local bool: the key is b's 0/1 encoding.
	m := New()
	open := m.NewBool("open", false)
	done := startWaiter(t, m, "open == b", BindBool("b", true))
	select {
	case <-done:
		t.Fatal("released while open=false, b=true")
	case <-time.After(30 * time.Millisecond):
	}
	m.Do(func() { open.Set(true) })
	waitTimeout(t, 5*time.Second, "bool-key waiter", func() { <-done })

	// b=false is satisfied immediately (fast path).
	m.Do(func() { open.Set(false) })
	m.Enter()
	if err := m.Await("open == b", BindBool("b", false)); err != nil {
		t.Fatal(err)
	}
	m.Exit()
}

func TestTemplateComputedKey(t *testing.T) {
	// The paper's §4.3 example: x + b > 2y + a with a=11, b=2 must behave
	// as (x − 2y > 9).
	m := New()
	x := m.NewInt("x", 0)
	m.NewInt("y", 0) // y stays 0
	done := startWaiter(t, m, "x + b > 2*y + a", BindInt("a", 11), BindInt("b", 2))
	m.Do(func() { x.Set(9) })
	select {
	case <-done:
		t.Fatal("released at x-2y = 9, needs > 9")
	case <-time.After(30 * time.Millisecond):
	}
	m.Do(func() { x.Set(10) })
	waitTimeout(t, 5*time.Second, "computed-key waiter", func() { <-done })
}

func TestTemplateGenericPathStillWorks(t *testing.T) {
	// Nonlinear shared predicate: generic registration path end to end.
	m := New()
	x := m.NewInt("x", 0)
	done := startWaiter(t, m, "x * x >= k", BindInt("k", 9))
	m.Do(func() { x.Set(2) })
	select {
	case <-done:
		t.Fatal("released at x²=4 < 9")
	case <-time.After(30 * time.Millisecond):
	}
	m.Do(func() { x.Set(3) })
	waitTimeout(t, 5*time.Second, "nonlinear waiter", func() { <-done })
}

func TestTemplateManyKeysFallbackBuffer(t *testing.T) {
	// More than 8 keys exercises the heap-allocated key vector.
	m := New()
	for _, v := range []string{"a", "b", "c", "d", "e", "f", "g", "h", "i"} {
		m.NewInt(v, 100)
	}
	m.Enter()
	err := m.Await("a>k1 && b>k2 && c>k3 && d>k4 && e>k5 && f>k6 && g>k7 && h>k8 && i>k9",
		BindInt("k1", 1), BindInt("k2", 2), BindInt("k3", 3), BindInt("k4", 4),
		BindInt("k5", 5), BindInt("k6", 6), BindInt("k7", 7), BindInt("k8", 8), BindInt("k9", 9))
	m.Exit()
	if err != nil {
		t.Fatal(err)
	}
}

func TestTemplateIdentityDistinguishesKeys(t *testing.T) {
	m := New()
	m.NewInt("x", 0)
	p, err := m.Compile("x >= k")
	if err != nil {
		t.Fatal(err)
	}
	if p.tmpl == nil {
		t.Fatal("no template")
	}
	a := p.tmpl.identity([]int64{1})
	b := p.tmpl.identity([]int64{-1})
	c := p.tmpl.identity([]int64{1, 2})
	if a == b || a == c || b == c {
		t.Errorf("identities collide: %q %q %q", a, b, c)
	}
}
