package core

import (
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/testutil"
)

// wakeOrder arms one handle per entry of prios on the folded-conjunct
// predicate "tokens >= 1 && prio >= 0" (the prio conjunct is constant
// under each waiter's binding, so every handle globalizes to the shared
// canonical "tokens >= 1" — while the binding still feeds Priority's
// rank), then produces a single token and drains the wake chain: each
// woken handle claims, records its arm index, and exits — the exit
// relays to the policy's next choice while the token stays available.
func wakeOrder(t *testing.T, m *Monitor, prios []int64) []int {
	t.Helper()
	tokens := m.NewInt("tokens", 0)
	p := m.MustCompile("tokens >= 1 && prio >= 0")
	ch := make(chan int, len(prios))
	ws := make([]*Wait, len(prios))
	for i, pr := range prios {
		ws[i] = p.Arm(BindInt("prio", pr))
		if err := ws[i].Err(); err != nil {
			t.Fatalf("arm %d: %v", i, err)
		}
		ws[i].Subscribe(ch, i)
	}
	m.Do(func() { tokens.Set(1) })
	var order []int
	for range prios {
		select {
		case i := <-ch:
			if err := ws[i].Claim(); err != nil {
				t.Fatalf("claim %d: %v", i, err)
			}
			order = append(order, i)
			m.Exit() // token still available: relay picks the policy's next waiter
		case <-time.After(5 * time.Second):
			t.Fatalf("wake chain stalled after %v", order)
		}
	}
	return order
}

func eqOrder(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPolicyWakeOrderFIFO(t *testing.T) {
	m := New(WithPolicy(policy.FIFO))
	defer testutil.NoLeaks(t, m)()
	got := wakeOrder(t, m, []int64{1, 3, 2, 5, 4})
	if want := []int{0, 1, 2, 3, 4}; !eqOrder(got, want) {
		t.Errorf("FIFO wake order = %v, want %v", got, want)
	}
	if s := m.Stats(); s.PolicyWakes == 0 {
		t.Errorf("PolicyWakes = 0, want > 0 under an installed policy")
	}
}

func TestPolicyWakeOrderLIFO(t *testing.T) {
	m := New(WithPolicy(policy.LIFO))
	defer testutil.NoLeaks(t, m)()
	got := wakeOrder(t, m, []int64{1, 3, 2, 5, 4})
	if want := []int{4, 3, 2, 1, 0}; !eqOrder(got, want) {
		t.Errorf("LIFO wake order = %v, want %v", got, want)
	}
}

func TestPolicyWakeOrderPriority(t *testing.T) {
	m := New(WithPolicy(policy.Priority(func(binds map[string]int64) int64 { return binds["prio"] })))
	defer testutil.NoLeaks(t, m)()
	// prios 1,3,2,5,4 at arm indexes 0..4: descending rank = 5,4,3,2,1.
	got := wakeOrder(t, m, []int64{1, 3, 2, 5, 4})
	if want := []int{3, 4, 1, 2, 0}; !eqOrder(got, want) {
		t.Errorf("Priority wake order = %v, want %v", got, want)
	}
	if s := m.Stats(); s.PolicyWakes == 0 {
		t.Errorf("PolicyWakes = 0, want > 0")
	}
}

// TestPolicyPerPredicateOverride: UsePolicy on the predicate drives the
// wake order even when the monitor has no policy installed — the
// override applies within the entry's waiters on the first-found-true
// relay path.
func TestPolicyPerPredicateOverride(t *testing.T) {
	m := New() // no monitor-wide policy
	defer testutil.NoLeaks(t, m)()
	tokens := m.NewInt("tokens", 0)
	p := m.MustCompile("tokens >= 1").UsePolicy(policy.LIFO)
	ch := make(chan int, 3)
	ws := make([]*Wait, 3)
	for i := range ws {
		ws[i] = p.Arm()
		ws[i].Subscribe(ch, i)
	}
	m.Do(func() { tokens.Set(1) })
	var order []int
	for range ws {
		select {
		case i := <-ch:
			if err := ws[i].Claim(); err != nil {
				t.Fatalf("claim %d: %v", i, err)
			}
			order = append(order, i)
			m.Exit()
		case <-time.After(5 * time.Second):
			t.Fatalf("wake chain stalled after %v", order)
		}
	}
	if want := []int{2, 1, 0}; !eqOrder(order, want) {
		t.Errorf("override wake order = %v, want %v (LIFO)", order, want)
	}
	if s := m.Stats(); s.PolicyWakes == 0 {
		t.Errorf("PolicyWakes = 0, want > 0 (per-predicate override counts)")
	}
}

// TestExplicitSignalPolicy: on an explicit monitor with a policy
// installed, Cond.Signal hands the armed-waiter notification to the
// policy's choice rather than the first armed.
func TestExplicitSignalPolicy(t *testing.T) {
	e := NewExplicit(WithPolicy(policy.LIFO))
	defer testutil.NoLeaks(t, e)()
	c := e.NewCond()
	ch := make(chan int, 3)
	ws := make([]*Wait, 3)
	ready := false // false while arming, so no handle is notified early
	for i := range ws {
		ws[i] = c.Arm(func() bool { return ready })
		ws[i].Subscribe(ch, i)
	}
	var order []int
	for range ws {
		e.Do(func() { ready = true; c.Signal() })
		select {
		case i := <-ch:
			if err := ws[i].Claim(); err != nil {
				t.Fatalf("claim %d: %v", i, err)
			}
			e.Exit()
			order = append(order, i)
		case <-time.After(5 * time.Second):
			t.Fatalf("signal chain stalled after %v", order)
		}
	}
	if want := []int{2, 1, 0}; !eqOrder(order, want) {
		t.Errorf("explicit signal order = %v, want %v (LIFO)", order, want)
	}
	if s := e.Stats(); s.PolicyWakes == 0 {
		t.Errorf("PolicyWakes = 0, want > 0")
	}
}

// TestStarvationAccounting: a wait that completes after longer than the
// configured starvation threshold increments Starved and pushes
// MaxWaitNs past the threshold, on every mechanism.
func TestStarvationAccounting(t *testing.T) {
	const threshold = 5 * time.Millisecond
	m := New(WithStarvationThreshold(threshold))
	b := NewBaseline(WithStarvationThreshold(threshold))
	e := NewExplicit(WithStarvationThreshold(threshold))
	side := e.NewCond()
	cases := []struct {
		name string
		mech Mechanism
		wake func()
	}{
		{"autosynch", m, func() { m.Do(func() {}) }},
		{"baseline", b, func() { b.Do(func() {}) }},
		{"explicit", e, func() { e.Do(func() { side.Broadcast() }) }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			defer testutil.NoLeaks(t, tc.mech)()
			flag := false
			done := make(chan struct{})
			go func() {
				tc.mech.Enter()
				tc.mech.AwaitFunc(func() bool { return flag })
				tc.mech.Exit()
				close(done)
			}()
			testutil.WaitFor(t, 5*time.Second, 0, func() bool { return tc.mech.Waiting() == 1 }, "waiter parked")
			time.Sleep(2 * threshold)
			tc.mech.Do(func() { flag = true })
			tc.wake()
			<-done
			s := tc.mech.Stats()
			if s.Starved != 1 {
				t.Errorf("Starved = %d, want 1", s.Starved)
			}
			if s.MaxWaitNs < threshold.Nanoseconds() {
				t.Errorf("MaxWaitNs = %d, want >= %d", s.MaxWaitNs, threshold.Nanoseconds())
			}
		})
	}
}

// runStorm parks a prio-0 victim first, then runs rounds of one
// high-prio (100) arrival plus one token each: the installed policy
// decides, deterministically, who takes each token. It returns the round
// at which the victim completed — 0 means the very first token, rounds
// means the victim only completed in the final drain — plus the monitor
// for stats assertions.
func runStorm(t *testing.T, pol policy.Policy) (victimRound int, m *Monitor) {
	t.Helper()
	const rounds = 8
	m = New(WithPolicy(pol), WithStarvationThreshold(time.Millisecond))
	tokens := m.NewInt("tokens", 0)
	p := m.MustCompile("tokens >= 1 && prio >= 0")

	await := func(prio int64, done chan struct{}) {
		m.Enter()
		if err := p.Await(BindInt("prio", prio)); err != nil {
			t.Errorf("await(prio=%d): %v", prio, err)
		}
		tokens.Add(-1)
		m.Exit()
		done <- struct{}{}
	}

	victimDone := make(chan struct{}, 1)
	go await(0, victimDone)
	testutil.WaitFor(t, 5*time.Second, 0, func() bool { return m.Waiting() == 1 }, "victim parked")

	highDone := make(chan struct{}, rounds)
	spawned, highFinished := 0, 0
	victimRound = -1
	for i := 0; i < rounds && victimRound < 0; i++ {
		go await(100, highDone)
		spawned++
		testutil.WaitFor(t, 5*time.Second, 0, func() bool { return m.Waiting() == 2 },
			"round %d: victim and high-prio waiter parked", i)
		m.Do(func() { tokens.Add(1) }) // one token: the policy decides who takes it
		select {
		case <-victimDone:
			victimRound = i
			victimDone = nil
		case <-highDone:
			highFinished++
		case <-time.After(5 * time.Second):
			t.Fatalf("round %d: no waiter took the token", i)
		}
	}
	// Drain whoever is still parked, one token per waiter.
	for victimDone != nil || highFinished < spawned {
		m.Do(func() { tokens.Add(1) })
		select {
		case <-victimDone:
			victimRound = rounds
			victimDone = nil
		case <-highDone:
			highFinished++
		case <-time.After(5 * time.Second):
			t.Fatal("drain stalled")
		}
	}
	return victimRound, m
}

// TestPriorityStarvesVictimFIFODoesNot pins the policy trade-off the
// package documents, on the same deterministic schedule: under Priority
// every round's token goes to the prio-100 arrival and the victim only
// completes in the drain (counted as starved); under FIFO the victim's
// earlier arrival wins the very first token.
func TestPriorityStarvesVictimFIFODoesNot(t *testing.T) {
	rankFn := func(binds map[string]int64) int64 { return binds["prio"] }

	t.Run("priority", func(t *testing.T) {
		round, m := runStorm(t, policy.Priority(rankFn))
		defer testutil.NoLeaks(t, m)()
		if round != 8 {
			t.Errorf("victim completed at round %d, want only in the drain (8)", round)
		}
		if s := m.Stats(); s.Starved == 0 {
			t.Errorf("Starved = 0, want > 0 under Priority with a high-prio storm")
		}
	})
	t.Run("fifo", func(t *testing.T) {
		round, m := runStorm(t, policy.FIFO)
		defer testutil.NoLeaks(t, m)()
		if round != 0 {
			t.Errorf("victim completed at round %d, want 0 (earliest arrival wins under FIFO)", round)
		}
	})
}
