package core

import "repro/internal/expr"

// Typed predicate builders: a small combinator layer for constructing
// waiting conditions without predicate strings. Expressions reference
// shared variables through their cells (count.AtLeast(Local("num"))) and
// thread-local variables through Local/LocalBool placeholders bound at
// wait time, and lower — via Monitor.CompileExpr — to exactly the same
// compiled IR as Monitor.Compile, so the typed and string forms share the
// predicate cache, the tag templates, and the wait path.
//
// IntExpr and BoolExpr are immutable values; every combinator returns a
// new expression, so subterms can be shared and reused freely.

// IntExpr is an integer-valued predicate subexpression.
type IntExpr struct{ n expr.Node }

// BoolExpr is a boolean-valued predicate expression, ready to compile.
type BoolExpr struct{ n expr.Node }

// Lit is an integer literal.
func Lit(v int64) IntExpr { return IntExpr{expr.I(v)} }

// Local references a thread-local integer variable whose value is
// supplied with Bind on every wait.
func Local(name string) IntExpr { return IntExpr{expr.V(name)} }

// LocalBool references a thread-local boolean variable, supplied with
// BindBool on every wait.
func LocalBool(name string) BoolExpr { return BoolExpr{expr.V(name)} }

// Expr references the shared integer cell inside a larger expression.
func (c *IntCell) Expr() IntExpr { return IntExpr{expr.V(c.name)} }

// Expr references the shared boolean cell as a predicate.
func (c *BoolCell) Expr() BoolExpr { return BoolExpr{expr.V(c.name)} }

// IsTrue waits on the cell itself; IsFalse on its negation.
func (c *BoolCell) IsTrue() BoolExpr  { return c.Expr() }
func (c *BoolCell) IsFalse() BoolExpr { return Not(c.Expr()) }

// --- arithmetic over integer expressions ---

func bin(op expr.Op, l, r IntExpr) IntExpr { return IntExpr{expr.Bin(op, l.n, r.n)} }

// Plus, Minus, and Times combine integer expressions.
func (e IntExpr) Plus(o IntExpr) IntExpr  { return bin(expr.OpAdd, e, o) }
func (e IntExpr) Minus(o IntExpr) IntExpr { return bin(expr.OpSub, e, o) }
func (e IntExpr) Times(o IntExpr) IntExpr { return bin(expr.OpMul, e, o) }

// --- comparisons, producing predicates ---

func cmp(op expr.Op, l, r IntExpr) BoolExpr { return BoolExpr{expr.Bin(op, l.n, r.n)} }

// AtLeast is >=, AtMost is <=, GreaterThan is >, LessThan is <,
// EqualTo is ==, and NotEqualTo is !=.
func (e IntExpr) AtLeast(o IntExpr) BoolExpr     { return cmp(expr.OpGe, e, o) }
func (e IntExpr) AtMost(o IntExpr) BoolExpr      { return cmp(expr.OpLe, e, o) }
func (e IntExpr) GreaterThan(o IntExpr) BoolExpr { return cmp(expr.OpGt, e, o) }
func (e IntExpr) LessThan(o IntExpr) BoolExpr    { return cmp(expr.OpLt, e, o) }
func (e IntExpr) EqualTo(o IntExpr) BoolExpr     { return cmp(expr.OpEq, e, o) }
func (e IntExpr) NotEqualTo(o IntExpr) BoolExpr  { return cmp(expr.OpNe, e, o) }

// Cell-level sugar: count.AtLeast(Local("num")) reads like the predicate
// it builds.
func (c *IntCell) AtLeast(o IntExpr) BoolExpr     { return c.Expr().AtLeast(o) }
func (c *IntCell) AtMost(o IntExpr) BoolExpr      { return c.Expr().AtMost(o) }
func (c *IntCell) GreaterThan(o IntExpr) BoolExpr { return c.Expr().GreaterThan(o) }
func (c *IntCell) LessThan(o IntExpr) BoolExpr    { return c.Expr().LessThan(o) }
func (c *IntCell) EqualTo(o IntExpr) BoolExpr     { return c.Expr().EqualTo(o) }
func (c *IntCell) NotEqualTo(o IntExpr) BoolExpr  { return c.Expr().NotEqualTo(o) }

// --- boolean connectives ---

// And is the conjunction of its operands (true when given none).
func And(ps ...BoolExpr) BoolExpr {
	nodes := make([]expr.Node, len(ps))
	for i, p := range ps {
		nodes[i] = p.n
	}
	return BoolExpr{expr.And(nodes...)}
}

// Or is the disjunction of its operands (false when given none).
func Or(ps ...BoolExpr) BoolExpr {
	nodes := make([]expr.Node, len(ps))
	for i, p := range ps {
		nodes[i] = p.n
	}
	return BoolExpr{expr.Or(nodes...)}
}

// Not negates a predicate.
func Not(p BoolExpr) BoolExpr { return BoolExpr{expr.Not(p.n)} }

// EqualBool compares two boolean expressions (== over bools).
func (e BoolExpr) EqualBool(o BoolExpr) BoolExpr {
	return BoolExpr{expr.Bin(expr.OpEq, e.n, o.n)}
}

// Src renders the expression as predicate-language source; compiling the
// rendering yields an equivalent predicate.
func (e BoolExpr) Src() string {
	if e.n == nil {
		return ""
	}
	return e.n.String()
}

// CompileExpr lowers a builder predicate to the same compiled IR as
// Compile, sharing the monitor's predicate cache (keyed by the canonical
// rendering, so a builder expression and the equivalent string compile to
// the same *Predicate). Cells from other monitors are resolved by name
// against this monitor's variables.
func (m *Monitor) CompileExpr(p BoolExpr) (*Predicate, error) {
	if p.n == nil {
		return nil, predErrf("", "empty builder predicate")
	}
	src := p.n.String()
	for _, name := range expr.Vars(p.n) {
		if !validVarName(name) {
			return nil, predErrf(src, "invalid variable name %q (cell not created with NewInt/NewBool?)", name)
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.compileNodeCached(src, p.n)
}

// MustCompileExpr is CompileExpr for predicates that are known to be
// well-formed; it panics on error.
func (m *Monitor) MustCompileExpr(p BoolExpr) *Predicate {
	q, err := m.CompileExpr(p)
	if err != nil {
		panic("autosynch: MustCompileExpr: " + err.Error())
	}
	return q
}
