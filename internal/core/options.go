package core

import (
	"time"

	"repro/internal/policy"
)

// DefaultInactiveLimit is the default length bound of the inactive
// predicate list (§5.2: predicates with no waiting thread are parked for
// reuse; the oldest are dropped when the list exceeds a threshold). The
// default comfortably covers the key spaces of the paper's workloads
// (the parameterized buffer cycles through ~260 distinct globalized
// predicates); see the abl-inactive experiment for the sensitivity.
const DefaultInactiveLimit = 512

type config struct {
	tagging       bool
	profile       bool
	generated     bool
	inactiveLimit int
	dnfLimit      int
	policy        policy.Policy // wake policy; nil keeps the first-found relay pick
	starveNs      int64         // starvation threshold; 0 disables Starved accounting
}

func defaultConfig() config {
	return config{
		tagging:       true,
		generated:     true,
		inactiveLimit: DefaultInactiveLimit,
		dnfLimit:      0, // 0 → dnf.DefaultMaxConjunctions
	}
}

// Option configures a Monitor at construction.
type Option func(*config)

// WithoutTagging disables predicate tagging: the relay search scans every
// registered predicate linearly. This is the AutoSynch-T mechanism of the
// paper's evaluation, kept as a first-class option because it doubles as
// the ablation baseline for tagging.
func WithoutTagging() Option {
	return func(c *config) { c.tagging = false }
}

// WithProfiling enables the nanosecond phase accounting used to reproduce
// Table 1 (await / lock / relaySignal / tag-manager). It adds two clock
// reads around each phase, so leave it off in throughput benchmarks.
func WithProfiling() Option {
	return func(c *config) { c.profile = true }
}

// WithoutGenerated disables generated-evaluator dispatch: Compile keeps
// the closure-compiled evaluators even when a matching registration
// exists (see RegisterGenerated). This is the ablation baseline for the
// codegen experiments, and the escape hatch if a stale generated file is
// ever suspect.
func WithoutGenerated() Option {
	return func(c *config) { c.generated = false }
}

// WithInactiveLimit bounds the inactive predicate list. Zero disables
// caching entirely (every deactivated predicate is discarded).
func WithInactiveLimit(n int) Option {
	return func(c *config) {
		if n >= 0 {
			c.inactiveLimit = n
		}
	}
}

// WithDNFLimit bounds the DNF conversion blow-up per predicate.
func WithDNFLimit(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.dnfLimit = n
		}
	}
}

// WithPolicy selects the monitor's wake policy (policy.FIFO, policy.LIFO,
// policy.Priority, or a custom total order): whenever the relay rule — or
// an Explicit condition's Signal — has several eligible waiters, the
// policy decides which one wakes. Without a policy the runtime keeps the
// paper's behavior: the first eligible waiter the (tag-pruned) scan
// visits, which is cheapest but unspecified.
//
// A policy-governed relay scan is exhaustive across entries (tag pruning
// can find *a* true waiter early, but the policy must compare *all* of
// them), so expect the relay cost of AutoSynch-T plus a comparison per
// candidate. Per-predicate overrides (Predicate.UsePolicy) refine the
// pick within that predicate's waiters only. For Baseline the policy has
// no blocking-wait effect — its broadcast discipline wakes everyone and
// the lock queue arbitrates — but the wait-time accounting (Starved,
// MaxWaitNs) still applies.
func WithPolicy(p policy.Policy) Option {
	return func(c *config) { c.policy = p }
}

// WithStarvationThreshold sets the wait duration past which a completed
// wait counts into Stats.Starved, making starvation a counted quantity
// instead of an anecdote. Zero (the default) disables the counter;
// MaxWaitNs is tracked regardless.
func WithStarvationThreshold(d time.Duration) Option {
	return func(c *config) {
		if d > 0 {
			c.starveNs = int64(d)
		}
	}
}
