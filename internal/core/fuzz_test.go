package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/testutil"
)

// The tests in this file drive randomized mixed workloads — many
// predicate shapes, fluctuating waiter populations, all tag kinds at
// once — and check the global invariants that must survive any schedule:
// conservation of the shared counters, predicate truth on return from
// Await, zero broadcasts, and structural emptiness after quiescence.

type fuzzRng uint64

func (r *fuzzRng) next() uint64 {
	v := uint64(*r)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*r = fuzzRng(v)
	return v
}

func TestFuzzMixedPredicateShapes(t *testing.T) {
	for _, tagging := range []bool{true, false} {
		tagging := tagging
		t.Run(fmt.Sprintf("tagging=%t", tagging), func(t *testing.T) {
			t.Parallel()
			var opts []Option
			if !tagging {
				opts = append(opts, WithoutTagging())
			}
			m := New(opts...)
			level := m.NewInt("level", 0)
			phase := m.NewInt("phase", 0)
			open := m.NewBool("open", true)

			const workers = 12
			const opsEach = 300
			var violations int64
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(seed uint64) {
					defer wg.Done()
					rng := fuzzRng(seed*2654435761 + 1)
					for i := 0; i < opsEach; i++ {
						switch rng.next() % 6 {
						case 0: // equivalence wait on phase
							k := int64(rng.next() % 4)
							m.Enter()
							if err := m.Await("phase == k || !open", BindInt("k", k)); err != nil {
								violations++
							} else if phase.Get() != k && open.Get() {
								violations++
							}
							m.Exit()
						case 1: // threshold wait on level
							k := int64(rng.next()%8) + 1
							m.Enter()
							if err := m.Await("level >= k || !open", BindInt("k", k)); err != nil {
								violations++
							} else if level.Get() < k && open.Get() {
								violations++
							}
							level.Add(-1)
							m.Exit()
						case 2: // untaggable wait (nonlinear in shared)
							k := int64(rng.next()%4) + 1
							m.Enter()
							if err := m.Await("level * level >= k || !open", BindInt("k", k)); err != nil {
								violations++
							}
							m.Exit()
						case 3: // producer: raise level, rotate phase
							m.Enter()
							level.Add(2)
							phase.Set(int64(rng.next() % 4))
							m.Exit()
						case 4: // closure predicate
							k := int64(rng.next()%6) + 1
							m.Enter()
							m.AwaitFunc(func() bool { return level.Get() >= k || !open.Get() })
							m.Exit()
						case 5: // toggle the gate briefly (releases everyone)
							m.Enter()
							open.Set(rng.next()%8 != 0)
							m.Exit()
						}
					}
				}(uint64(w) + 1)
			}
			// A pump keeps the system live: whatever the random mix did,
			// eventually open the gate and raise the level so every
			// waiter can get out. The pump is event-driven in both
			// directions: it fires only when a worker is actually parked,
			// and after firing it yields until the wake-up lands, so it
			// cannot monopolize the monitor and starve the very waiters
			// it released.
			stopPump := make(chan struct{})
			var pump sync.WaitGroup
			pump.Add(1)
			go func() {
				defer pump.Done()
				for {
					select {
					case <-stopPump:
						return
					default:
					}
					if !testutil.Eventually(5*time.Millisecond, 50*time.Microsecond,
						func() bool { return m.Waiting() > 0 }) {
						continue // nobody parked; recheck the stop signal
					}
					woken := m.Stats().Wakeups
					m.Enter()
					open.Set(true)
					level.Add(3)
					phase.Set(int64(time.Now().UnixNano()) % 4)
					m.Exit()
					testutil.Eventually(5*time.Millisecond, 50*time.Microsecond, func() bool {
						return m.Stats().Wakeups > woken || m.Waiting() == 0
					})
				}
			}()
			waitTimeout(t, 60*time.Second, "fuzz workers", wg.Wait)
			close(stopPump)
			pump.Wait()

			if violations != 0 {
				t.Errorf("%d invariant violations", violations)
			}
			s := m.Stats()
			if s.Broadcasts != 0 {
				t.Errorf("broadcasts = %d", s.Broadcasts)
			}
			// Quiescent: nobody waits, so the tag structures hold only
			// static entries and the None list only static/none entries.
			active, _, _, _ := m.DebugCounts()
			if active > 40 { // static predicates only; bounded by distinct shapes
				t.Errorf("active entries after quiescence = %d", active)
			}
		})
	}
}

func TestFuzzConservationAcrossMechanisms(t *testing.T) {
	// The same token-passing workload on AutoSynch, AutoSynch-T, and
	// Baseline must conserve tokens exactly.
	const producers, consumers, opsEach = 6, 6, 250

	type mech struct {
		name string
		run  func() (produced, consumed int64, broadcasts uint64)
	}
	mechs := []mech{
		{"autosynch", func() (int64, int64, uint64) {
			m := New()
			tokens := m.NewInt("tokens", 0)
			var produced, consumed int64
			var wg sync.WaitGroup
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(seed uint64) {
					defer wg.Done()
					rng := fuzzRng(seed)
					for i := 0; i < opsEach; i++ {
						n := int64(rng.next()%5) + 1
						m.Do(func() { tokens.Add(n); produced += n })
					}
				}(uint64(p) + 1)
			}
			// Consumers mirror the producers' seeds, so total demand equals
			// total production exactly and every schedule terminates.
			for c := 0; c < consumers; c++ {
				wg.Add(1)
				go func(seed uint64) {
					defer wg.Done()
					rng := fuzzRng(seed)
					for i := 0; i < opsEach; i++ {
						n := int64(rng.next()%5) + 1
						m.Enter()
						if err := m.Await("tokens >= n", BindInt("n", n)); err != nil {
							t.Error(err)
						}
						tokens.Add(-n)
						consumed += n
						m.Exit()
					}
				}(uint64(c) + 1)
			}
			doneCh := make(chan struct{})
			go func() { wg.Wait(); close(doneCh) }()
			select {
			case <-doneCh:
			case <-time.After(60 * time.Second):
				t.Fatal("autosynch conservation run deadlocked")
			}
			var rest int64
			m.Do(func() { rest = tokens.Get() })
			return produced, consumed + rest, m.Stats().Broadcasts
		}},
		{"baseline", func() (int64, int64, uint64) {
			b := NewBaseline()
			tokens := int64(0)
			var produced, consumed int64
			var wg sync.WaitGroup
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(seed uint64) {
					defer wg.Done()
					rng := fuzzRng(seed)
					for i := 0; i < opsEach; i++ {
						n := int64(rng.next()%5) + 1
						b.Do(func() { tokens += n; produced += n })
					}
				}(uint64(p) + 1)
			}
			for c := 0; c < consumers; c++ {
				wg.Add(1)
				go func(seed uint64) {
					defer wg.Done()
					rng := fuzzRng(seed)
					for i := 0; i < opsEach; i++ {
						n := int64(rng.next()%5) + 1
						b.Enter()
						b.Await(func() bool { return tokens >= n })
						tokens -= n
						consumed += n
						b.Exit()
					}
				}(uint64(c) + 1)
			}
			doneCh := make(chan struct{})
			go func() { wg.Wait(); close(doneCh) }()
			select {
			case <-doneCh:
			case <-time.After(60 * time.Second):
				t.Fatal("baseline conservation run deadlocked")
			}
			return produced, consumed + tokens, 0
		}},
	}

	// The producers inject the same seeded token amounts in both
	// mechanisms, so total production matches exactly; consumption +
	// remainder must equal it on every run.
	var totals []int64
	for _, mc := range mechs {
		produced, accounted, _ := mc.run()
		if produced != accounted {
			t.Errorf("%s: produced %d, accounted %d", mc.name, produced, accounted)
		}
		totals = append(totals, produced)
	}
	if totals[0] != totals[1] {
		t.Errorf("seeded production differs across mechanisms: %v", totals)
	}
}

func TestFuzzWaiterChurn(t *testing.T) {
	// Rapidly appearing and disappearing waiters with clashing canonical
	// predicates stress activate/deactivate/reuse and the LRU.
	m := New(WithInactiveLimit(8))
	x := m.NewInt("x", 0)
	var wg sync.WaitGroup
	const churners = 10
	for c := 0; c < churners; c++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := fuzzRng(seed)
			for i := 0; i < 400; i++ {
				k := int64(rng.next() % 20)
				m.Enter()
				if err := m.Await("x >= k", BindInt("k", k)); err != nil {
					t.Error(err)
				}
				x.Set(k / 2)
				m.Exit()
				m.Do(func() { x.Add(1) })
			}
		}(uint64(c)*13 + 7)
	}
	// The pump fires only while a churner is parked, and after each shove
	// it yields until the wake-up lands (see TestFuzzMixedPredicateShapes
	// for the rationale).
	pumpStop := make(chan struct{})
	var pump sync.WaitGroup
	pump.Add(1)
	go func() {
		defer pump.Done()
		for {
			select {
			case <-pumpStop:
				return
			default:
			}
			if !testutil.Eventually(5*time.Millisecond, 50*time.Microsecond,
				func() bool { return m.Waiting() > 0 }) {
				continue // nobody parked; recheck the stop signal
			}
			woken := m.Stats().Wakeups
			m.Do(func() { x.Add(2) })
			testutil.Eventually(5*time.Millisecond, 50*time.Microsecond, func() bool {
				return m.Stats().Wakeups > woken || m.Waiting() == 0
			})
		}
	}()
	waitTimeout(t, 60*time.Second, "churners", wg.Wait)
	close(pumpStop)
	pump.Wait()
	if s := m.Stats(); s.Broadcasts != 0 {
		t.Errorf("broadcasts = %d", s.Broadcasts)
	}
	if _, inactive, _, _ := m.DebugCounts(); inactive > 8 {
		t.Errorf("inactive = %d exceeds limit 8", inactive)
	}
}
