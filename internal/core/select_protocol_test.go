package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/testutil"
)

// Real-implementation mirrors of the simcheck blocking-bug corpus
// (internal/simcheck/corpus.go): each model program whose exhaustive
// exploration proves a protocol property has a concrete regression here,
// run under -race, with PendingSignals pinning the in-flight-signal
// windows the model reasons about.

const protoWait = 5 * time.Second

// TestPendingSignalsTracksInflightRelay pins the new observability hook
// against the one deterministic in-flight window: an armed handle is
// notified by a relay and holds the monitor's single signal until it
// claims — or until cancellation reconciles it.
func TestPendingSignalsTracksInflightRelay(t *testing.T) {
	m := New()
	x := m.NewInt("x", 0)
	avail := m.MustCompile("x > 0")

	if got := m.PendingSignals(); got != 0 {
		t.Fatalf("idle monitor has %d pending signals", got)
	}

	h := avail.Arm()
	m.Do(func() { x.Set(1) }) // exit relays to the only waiter: the handle
	if got := m.PendingSignals(); got != 1 {
		t.Fatalf("after relay to armed handle: %d pending signals, want 1", got)
	}
	select {
	case <-h.Ready():
	case <-time.After(protoWait):
		t.Fatal("relay signal never reached the armed handle")
	}

	if err := h.Claim(); err != nil {
		t.Fatalf("Claim: %v", err)
	}
	x.Add(-1)
	m.Exit()
	if got := m.PendingSignals(); got != 0 {
		t.Fatalf("after claim: %d pending signals, want 0", got)
	}

	// The same window resolved by cancellation: the reconciled signal
	// has no eligible waiter left, so pending drops to zero.
	x.Set(0)
	h2 := avail.Arm()
	m.Do(func() { x.Set(1) })
	if got := m.PendingSignals(); got != 1 {
		t.Fatalf("after second relay: %d pending signals, want 1", got)
	}
	h2.Cancel()
	if got := m.PendingSignals(); got != 0 {
		t.Fatalf("after cancel reconciled the signal: %d pending, want 0", got)
	}
	if w := m.Waiting(); w != 0 {
		t.Fatalf("%d waiters leaked", w)
	}
}

// TestCorpusDoubleClaim mirrors the "double-claim" program: claiming a
// spent handle must be the ErrClaimed no-op, never a second consumption.
func TestCorpusDoubleClaim(t *testing.T) {
	m := New()
	x := m.NewInt("x", 0)
	avail := m.MustCompile("x > 0")

	h := avail.Arm()
	m.Do(func() { x.Set(1) })
	select {
	case <-h.Ready():
	case <-time.After(protoWait):
		t.Fatal("handle never notified")
	}
	if err := h.Claim(); err != nil {
		t.Fatalf("first Claim: %v", err)
	}
	x.Add(-1)
	m.Exit()

	if err := h.Claim(); !errors.Is(err, ErrClaimed) {
		t.Fatalf("second Claim: %v, want ErrClaimed", err)
	}
	var v int64
	m.Do(func() { v = x.Get() })
	if v != 0 {
		t.Fatalf("spent handle consumed again: x = %d, want 0", v)
	}
}

// TestCorpusCancelPassesInflightSignal mirrors "cancel-inflight": when
// the armed handle holds the in-flight relay signal and a blocking
// waiter needs the same resource, Cancel must pass the signal onward or
// the waiter starves. The relay's target choice is the scheduler's, so
// the scenario loops; PendingSignals and Ready tell which path each
// iteration took, and the waiter must complete on every one.
func TestCorpusCancelPassesInflightSignal(t *testing.T) {
	handlePath := 0
	for i := 0; i < 50; i++ {
		m := New()
		x := m.NewInt("x", 0)
		avail := m.MustCompile("x > 0")

		h := avail.Arm() // registered first: a plausible relay target

		done := make(chan struct{})
		go func() {
			defer close(done)
			m.Enter()
			defer m.Exit()
			if err := m.AwaitPred(avail); err != nil {
				panic(err)
			}
			x.Add(-1)
		}()
		testutil.WaitFor(t, protoWait, 0, func() bool { return m.Waiting() == 2 },
			"handle and waiter registered")

		m.Do(func() { x.Set(1) }) // exit relays to handle or waiter

		select {
		case <-h.Ready():
			// The handle holds the signal; the waiter is parked with a
			// true predicate. This is the window: Cancel must repair.
			handlePath++
			h.Cancel()
		case <-done:
		case <-time.After(protoWait):
			t.Fatal("neither handle nor waiter was woken by the relay")
		}
		h.Cancel() // idempotent on both paths

		select {
		case <-done:
		case <-time.After(protoWait):
			t.Fatal("waiter starved: cancellation did not pass the in-flight signal on")
		}
		if w := m.Waiting(); w != 0 {
			t.Fatalf("iteration %d: %d waiters leaked", i, w)
		}
		if p := m.PendingSignals(); p != 0 {
			t.Fatalf("iteration %d: %d signals still pending at quiescence", i, p)
		}
	}
	t.Logf("relay chose the armed handle in %d/50 iterations", handlePath)
}

// TestCorpusBargeFalsify mirrors "barge-falsify": a TryFunc barger may
// falsify a notified waiter's predicate before it re-enters; the waiter
// must re-wait and be released by the next production. Conservation is
// the assertion: each produced item is consumed exactly once.
func TestCorpusBargeFalsify(t *testing.T) {
	m := New()
	x := m.NewInt("x", 0)
	avail := m.MustCompile("x > 0")

	var got, barge int64
	var wg sync.WaitGroup
	wg.Add(3)
	go func() { // waiter: exactly one item
		defer wg.Done()
		m.Enter()
		defer m.Exit()
		if err := m.AwaitPred(avail); err != nil {
			panic(err)
		}
		x.Add(-1)
		got++
	}()
	go func() { // barger: at most one item, never blocks (Guard.Try)
		defer wg.Done()
		m.WhenFunc(func() bool { return x.Get() > 0 }).Try(func() {
			x.Add(-1)
			barge++
		})
	}()
	go func() { // producer: two items
		defer wg.Done()
		m.Do(func() { x.Add(1) })
		m.Do(func() { x.Add(1) })
	}()
	wg.Wait()

	var rest int64
	m.Do(func() { rest = x.Get() })
	if got != 1 {
		t.Fatalf("waiter consumed %d items, want exactly 1", got)
	}
	if rest != 1-barge {
		t.Fatalf("conservation broken: %d produced, waiter 1, barger %d, left %d", 2, barge, rest)
	}
	if w := m.Waiting(); w != 0 {
		t.Fatalf("%d waiters leaked", w)
	}
}

// TestCorpusSelectLoserCancelRepair mirrors "select-loser-cancel": a
// selector across two monitors wins on one while its losing case may
// hold the other monitor's relay signal; loser cancellation must hand
// that signal to the blocking waiter parked behind it. Looped, since the
// window placement is the scheduler's.
func TestCorpusSelectLoserCancelRepair(t *testing.T) {
	for i := 0; i < 50; i++ {
		m0, m1 := New(), New()
		x := m0.NewInt("x", 0)
		y := m1.NewInt("y", 0)
		xAvail := m0.MustCompile("x > 0")
		yAvail := m1.MustCompile("y > 0")

		var wg sync.WaitGroup
		wg.Add(4)
		go func() { // selector
			defer wg.Done()
			_, err := SelectOrdered(
				m0.When(xAvail).Then(func() { x.Add(-1) }),
				m1.When(yAvail).Then(func() { y.Add(-1) }),
			)
			if err != nil {
				panic(err)
			}
		}()
		go func() { // blocking waiter on m1
			defer wg.Done()
			m1.Enter()
			defer m1.Exit()
			if err := m1.AwaitPred(yAvail); err != nil {
				panic(err)
			}
			y.Add(-1)
		}()
		go func() { defer wg.Done(); m0.Do(func() { x.Add(1) }) }()
		go func() { // two y items: one for waiter or selector each way
			defer wg.Done()
			m1.Do(func() { y.Add(1) })
			m1.Do(func() { y.Add(1) })
		}()

		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(protoWait):
			t.Fatalf("iteration %d: scenario hung — a cancelled loser swallowed a signal", i)
		}

		var rx, ry int64
		m0.Do(func() { rx = x.Get() })
		m1.Do(func() { ry = y.Get() })
		if rx+ry != 1 {
			t.Fatalf("iteration %d: conservation broken: x=%d y=%d, want one leftover", i, rx, ry)
		}
		if w := m0.Waiting() + m1.Waiting(); w != 0 {
			t.Fatalf("iteration %d: %d waiters leaked", i, w)
		}
		if p := m0.PendingSignals() + m1.PendingSignals(); p != 0 {
			t.Fatalf("iteration %d: %d signals pending at quiescence", i, p)
		}
	}
}
