package core

import (
	"reflect"
	"testing"
)

// maxMerged names the Stats fields Add merges by maximum instead of
// summing; every other field is a counter and must sum. A new max-merged
// field must be listed here or the completeness test flags it.
var maxMerged = map[string]bool{
	"MaxWaitNs": true,
}

// TestStatsCompleteness walks the Stats struct by reflection and pins two
// contracts for every field, present and future (the shard package merges
// per-shard Stats with Add, so a field dropped there would silently
// disappear from every sharded experiment):
//
//   - Add must propagate it with the right merge: counters sum (3+5 = 8),
//     max-merged fields keep the maximum (max(3, 5) = 5). Either way, a
//     field Add drops would come back 0 and fail both expectations.
//   - String or Profile must render it: setting the field alone must
//     change the combined text output.
func TestStatsCompleteness(t *testing.T) {
	typ := reflect.TypeOf(Stats{})
	baseline := Stats{}.String() + "\n" + Stats{}.Profile()
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)

		var a, b Stats
		av := reflect.ValueOf(&a).Elem().Field(i)
		bv := reflect.ValueOf(&b).Elem().Field(i)
		switch f.Type.Kind() {
		case reflect.Uint64:
			av.SetUint(3)
			bv.SetUint(5)
		case reflect.Int64:
			av.SetInt(3)
			bv.SetInt(5)
		default:
			t.Fatalf("field %s has unhandled kind %s; extend this test", f.Name, f.Type.Kind())
		}

		want := int64(8)
		if maxMerged[f.Name] {
			want = 5
		}
		merged := reflect.ValueOf(a.Add(b)).Field(i)
		var got int64
		switch f.Type.Kind() {
		case reflect.Uint64:
			got = int64(merged.Uint())
		case reflect.Int64:
			got = merged.Int()
		}
		if got != want {
			t.Errorf("Add mishandles field %s: merge(3, 5) = %d, want %d", f.Name, got, want)
		}

		if out := a.String() + "\n" + a.Profile(); out == baseline {
			t.Errorf("field %s appears in neither String nor Profile", f.Name)
		}
	}
}

// TestStatsAddCommutes pins that Add has no hidden normalization: it is a
// plain field-wise sum for counters and a field-wise max for MaxWaitNs,
// both of which commute and have the zero value as identity.
func TestStatsAddCommutes(t *testing.T) {
	a := Stats{Awaits: 1, Wakeups: 2, RelayNs: 3, Abandons: 4, Evictions: 5, MaxWaitNs: 70}
	b := Stats{Awaits: 10, Wakeups: 20, RelayNs: 30, Arms: 7, MaxWaitNs: 40}
	if a.Add(b) != b.Add(a) {
		t.Error("Add is not commutative")
	}
	if got := a.Add(Stats{}); got != a {
		t.Errorf("Add identity violated: %+v", got)
	}
	if got := a.Add(b).MaxWaitNs; got != 70 {
		t.Errorf("MaxWaitNs merged to %d, want the maximum 70", got)
	}
}
