package core

import (
	"reflect"
	"testing"
)

// TestStatsCompleteness walks the Stats struct by reflection and pins two
// contracts for every field, present and future (the shard package merges
// per-shard Stats with Add, so a field dropped there would silently
// disappear from every sharded experiment):
//
//   - Add must propagate it: summing a stats value with itself must
//     double every field.
//   - String or Profile must render it: setting the field alone must
//     change the combined text output.
func TestStatsCompleteness(t *testing.T) {
	typ := reflect.TypeOf(Stats{})
	baseline := Stats{}.String() + "\n" + Stats{}.Profile()
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)

		var s Stats
		fv := reflect.ValueOf(&s).Elem().Field(i)
		switch f.Type.Kind() {
		case reflect.Uint64:
			fv.SetUint(3)
		case reflect.Int64:
			fv.SetInt(3)
		default:
			t.Fatalf("field %s has unhandled kind %s; extend this test", f.Name, f.Type.Kind())
		}

		sum := reflect.ValueOf(s.Add(s)).Field(i)
		switch f.Type.Kind() {
		case reflect.Uint64:
			if sum.Uint() != 6 {
				t.Errorf("Add drops field %s: 3+3 = %d", f.Name, sum.Uint())
			}
		case reflect.Int64:
			if sum.Int() != 6 {
				t.Errorf("Add drops field %s: 3+3 = %d", f.Name, sum.Int())
			}
		}

		if out := s.String() + "\n" + s.Profile(); out == baseline {
			t.Errorf("field %s appears in neither String nor Profile", f.Name)
		}
	}
}

// TestStatsAddCommutes pins that Add is a plain field-wise sum with no
// hidden normalization.
func TestStatsAddCommutes(t *testing.T) {
	a := Stats{Awaits: 1, Wakeups: 2, RelayNs: 3, Abandons: 4, Evictions: 5}
	b := Stats{Awaits: 10, Wakeups: 20, RelayNs: 30, Arms: 7}
	if a.Add(b) != b.Add(a) {
		t.Error("Add is not commutative")
	}
	if got := a.Add(Stats{}); got != a {
		t.Errorf("Add identity violated: %+v", got)
	}
}
