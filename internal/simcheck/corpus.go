package simcheck

import (
	"fmt"
	"sort"
)

// The corpus: named model programs covering the protocol surface, in the
// spirit of the goker blocking-bug collections — each entry is either a
// workload whose every schedule must be clean, or the minimal shape of a
// historical protocol bug kept as a permanent regression. Tests explore
// them exhaustively; the -simcheck.replay flag resolves names back to
// programs, so a failure printed by any test replays from its one line.
var corpus = map[string]func() Program{
	"bounded-buffer":      func() Program { return BoundedBuffer(1, 2, 2, 3) },
	"handoff":             handoffProgram,
	"ring":                ringProgram,
	"double-claim":        doubleClaimProgram,
	"cancel-inflight":     cancelInflightProgram,
	"barge-falsify":       bargeFalsifyProgram,
	"handle-multiplex":    handleMultiplexProgram,
	"select-2x2":          select2x2Program,
	"select-loser-cancel": selectLoserCancelProgram,
	"counter-watch":       counterWatchProgram,
	"deadline-buffer":     deadlineBufferProgram,
}

// Programs lists the corpus names, sorted.
func Programs() []string {
	names := make([]string, 0, len(corpus))
	for n := range corpus {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// MustProgram returns the named corpus program, panicking on an unknown
// name (the replay flag's error path reports the valid names first).
func MustProgram(name string) Program {
	mk, ok := corpus[name]
	if !ok {
		panic(fmt.Sprintf("simcheck: no corpus program %q (have %v)", name, Programs()))
	}
	return mk()
}

// BoundedBuffer builds the classic producer/consumer workload on one
// monitor: producers wait for space, consumers for items.
func BoundedBuffer(capacity int64, producers, consumers, opsEach int) Program {
	p := Program{Init: State{"count": 0, "cap": capacity}}
	space := func(s State) bool { return s["count"] < s["cap"] }
	items := func(s State) bool { return s["count"] > 0 }
	for i := 0; i < producers; i++ {
		var ops []Op
		for j := 0; j < opsEach; j++ {
			ops = append(ops, Wait("put", space, func(s State) { s["count"]++ }))
		}
		p.Threads = append(p.Threads, Thread{Name: "producer", Ops: ops})
	}
	for i := 0; i < consumers; i++ {
		var ops []Op
		for j := 0; j < opsEach; j++ {
			ops = append(ops, Wait("take", items, func(s State) { s["count"]-- }))
		}
		p.Threads = append(p.Threads, Thread{Name: "consumer", Ops: ops})
	}
	return p
}

// handoffProgram is the paper's §4.2 running example: a consumer needs 32
// items, 24 exist, a producer adds 16 — the producer's exit must relay.
func handoffProgram() Program {
	return Program{
		Init: State{"count": 24},
		Threads: []Thread{
			{Name: "consumer", Ops: []Op{
				Wait("take32", func(s State) bool { return s["count"] >= 32 },
					func(s State) { s["count"] -= 32 }),
			}},
			{Name: "producer", Ops: []Op{
				Step("put16", func(s State) { s["count"] += 16 }),
			}},
		},
	}
}

// ringProgram is a three-thread round-robin: every relay must reach the
// unique eligible waiter or the ring stalls.
func ringProgram() Program {
	mk := func(id int64) Thread {
		var ops []Op
		for j := 0; j < 2; j++ {
			ops = append(ops, Wait("turn", func(s State) bool { return s["turn"] == id },
				func(s State) { s["turn"] = (s["turn"] + 1) % 3 }))
		}
		return Thread{Name: fmt.Sprintf("rr%d", id), Ops: ops}
	}
	return Program{Init: State{"turn": 0}, Threads: []Thread{mk(0), mk(1), mk(2)}}
}

// doubleClaimProgram arms one handle and claims it twice: the second
// claim must be the ErrClaimed no-op on a spent slot, never a second
// consumption.
func doubleClaimProgram() Program {
	return Program{
		Init: State{"x": 0, "got": 0},
		Threads: []Thread{
			{Name: "holder", Ops: []Op{
				Arm("arm", "h", func(s State) bool { return s["x"] > 0 }),
				Claim("claim", "h", func(s State) { s["x"]--; s["got"]++ }),
				Claim("reclaim", "h", func(s State) { s["got"] += 100 }), // must never run
			}},
			{Name: "producer", Ops: []Op{
				Step("produce", func(s State) { s["x"]++ }),
			}},
		},
	}
}

// cancelInflightProgram is the signal-to-cancelled-waiter shape: the
// armed handle is first in registration order, so a relay signal can land
// on it while a blocking waiter needs the same resource; Cancel must
// reconcile the in-flight signal and relay it onward. With
// DisableCancelRepair the waiter starves — the checker's deadlock.
func cancelInflightProgram() Program {
	avail := func(s State) bool { return s["x"] > 0 }
	return Program{
		Init: State{"x": 0},
		Threads: []Thread{
			{Name: "holder", Ops: []Op{
				Arm("arm", "h", avail),
				Cancel("cancel", "h"),
			}},
			{Name: "waiter", Ops: []Op{
				Wait("wait", avail, func(s State) { s["x"]-- }),
			}},
			{Name: "producer", Ops: []Op{
				Step("produce", func(s State) { s["x"]++ }),
			}},
		},
	}
}

// bargeFalsifyProgram exercises the Fig. 6 do-while: a Try can barge in
// between a waiter's notification and its re-entry, falsifying the
// predicate; the waiter must re-wait (futile wake), and the second
// production must release it.
func bargeFalsifyProgram() Program {
	avail := func(s State) bool { return s["x"] > 0 }
	return Program{
		Init: State{"x": 0, "got": 0, "barge": 0},
		Threads: []Thread{
			{Name: "waiter", Ops: []Op{
				Wait("wait", avail, func(s State) { s["x"]--; s["got"]++ }),
			}},
			{Name: "barger", Ops: []Op{
				Try("barge", avail, func(s State) { s["x"]--; s["barge"]++ }, nil),
			}},
			{Name: "producer", Ops: []Op{
				Step("produce", func(s State) { s["x"]++ }),
				Step("produce", func(s State) { s["x"]++ }),
			}},
		},
	}
}

// handleMultiplexProgram arms handles on two monitors and claims them in
// sequence — the waiter-per-monitor bookkeeping must keep the handles
// independent.
func handleMultiplexProgram() Program {
	xAvail := func(s State) bool { return s["x"] > 0 }
	yAvail := func(s State) bool { return s["y"] > 0 }
	return Program{
		Init: State{"x": 0, "y": 0},
		Threads: []Thread{
			{Name: "holder", Ops: []Op{
				Arm("armX", "hx", xAvail).On(0),
				Arm("armY", "hy", yAvail).On(1),
				Claim("claimX", "hx", func(s State) { s["x"]-- }),
				Claim("claimY", "hy", func(s State) { s["y"]-- }),
			}},
			{Name: "px", Ops: []Op{Step("fx", func(s State) { s["x"]++ }).On(0)}},
			{Name: "py", Ops: []Op{Step("fy", func(s State) { s["y"]++ }).On(1)}},
		},
	}
}

// select2x2Program: two selectors race for one resource on each of two
// monitors. Every schedule must end with both resources consumed, one by
// each selector — the shared-delivery claim protocol must neither lose a
// case nor double-deliver one.
func select2x2Program() Program {
	xAvail := func(s State) bool { return s["x"] > 0 }
	yAvail := func(s State) bool { return s["y"] > 0 }
	sel := func(name, won string) Thread {
		return Thread{Name: name, Ops: []Op{
			Select("pick",
				Case(0, "cx", xAvail, func(s State) { s["x"]--; s[won] = 1 }),
				Case(1, "cy", yAvail, func(s State) { s["y"]--; s[won] = 2 }),
			),
		}}
	}
	return Program{
		Init: State{"x": 0, "y": 0, "w1": 0, "w2": 0},
		Threads: []Thread{
			sel("sel1", "w1"),
			sel("sel2", "w2"),
			{Name: "px", Ops: []Op{Step("fx", func(s State) { s["x"]++ }).On(0)}},
			{Name: "py", Ops: []Op{Step("fy", func(s State) { s["y"]++ }).On(1)}},
		},
	}
}

// selectLoserCancelProgram is the cross-monitor Select with an in-flight
// relay: the selector's y-case can hold monitor 1's relay signal when the
// selector wins on x, and the loser cancellation must pass that signal to
// the blocked waiter. With DisableCancelRepair the waiter starves.
func selectLoserCancelProgram() Program {
	xAvail := func(s State) bool { return s["x"] > 0 }
	yAvail := func(s State) bool { return s["y"] > 0 }
	return Program{
		Init: State{"x": 0, "y": 0, "sel": 0},
		Threads: []Thread{
			{Name: "selector", Ops: []Op{
				Select("pick",
					Case(0, "cx", xAvail, func(s State) { s["x"]--; s["sel"] = 1 }),
					Case(1, "cy", yAvail, func(s State) { s["y"]--; s["sel"] = 2 }),
				),
			}},
			{Name: "waiter", Ops: []Op{
				Wait("wait", yAvail, func(s State) { s["y"]-- }).On(1),
			}},
			{Name: "px", Ops: []Op{Step("fx", func(s State) { s["x"]++ }).On(0)}},
			{Name: "py", Ops: []Op{
				Step("fy", func(s State) { s["y"]++ }).On(1),
				Step("fy", func(s State) { s["y"]++ }).On(1),
			}},
		},
	}
}

// deadlineBufferProgram is the deadline'd buffer: two consumers each
// need one of the producer's two items, one of them on a deadline'd
// wait. Because both items appear at once, the relay signal can be in
// flight to the deadline'd consumer when its timer fires — expiry must
// reconcile that signal and relay it to the plain waiter, or the waiter
// loses its wake-up. With DisableCancelRepair the checker reports the
// relay-invariance breach at exactly that step.
func deadlineBufferProgram() Program {
	items := func(s State) bool { return s["count"] > 0 }
	return Program{
		Init: State{"count": 0, "missed": 0},
		Threads: []Thread{
			{Name: "deadliner", Ops: []Op{
				WaitDeadline("take", items,
					func(s State) { s["count"]-- },
					func(s State) { s["missed"]++ }),
			}},
			{Name: "waiter", Ops: []Op{
				Wait("take", items, func(s State) { s["count"]-- }),
			}},
			{Name: "producer", Ops: []Op{
				Step("put2", func(s State) { s["count"] += 2 }),
			}},
		},
	}
}

// counterWatchProgram models the shard.Counter watch protocol: deltas of
// 1 against a threshold of 3 never publish on their own, so the
// aggregate waiter's watch/flush/park sequence is the only thing keeping
// it from sleeping forever on stale batches.
func counterWatchProgram() Program {
	return Program{
		Init: State{"adds": 0},
		Counters: []CounterSpec{
			{Name: "c", ShardMons: []int{0, 1}, Threshold: 3},
		},
		Threads: []Thread{
			{Name: "addA", Ops: []Op{
				CounterAdd("add", "c", 0, 1, func(s State) { s["adds"]++ }),
			}},
			{Name: "addB", Ops: []Op{
				CounterAdd("add", "c", 1, 1, func(s State) { s["adds"]++ }),
			}},
			{Name: "watcher", Ops: []Op{
				CounterAwait("await2", "c", 2),
			}},
		},
	}
}
