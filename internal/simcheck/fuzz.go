package simcheck

import (
	"fmt"
	"math/rand/v2"
	"strings"
)

// FuzzOptions configures the random-priority scheduler.
type FuzzOptions struct {
	// Runs is the number of independent schedules to sample (default 200).
	Runs int
	// Seed makes the whole campaign reproducible: run r uses the PCG
	// stream (Seed, r). Always log it.
	Seed uint64
	// Steps bounds each run's schedule length (default 10 000).
	Steps int
	// ChangePoints is the number of priority-change points injected per
	// run (the d−1 of PCT, default 3): at each, the highest-priority
	// runnable thread is demoted below every other, covering bugs of
	// depth up to d.
	ChangePoints int
	// Check carries the semantic options (RelayNondet is implied: the
	// fuzzer resolves every internal choice randomly).
	Check Options
}

func (fo FuzzOptions) withDefaults() FuzzOptions {
	if fo.Runs == 0 {
		fo.Runs = 200
	}
	if fo.Steps == 0 {
		fo.Steps = 10000
	}
	if fo.ChangePoints == 0 {
		fo.ChangePoints = 3
	}
	return fo
}

// FuzzReport summarizes a fuzz campaign.
type FuzzReport struct {
	Runs        int // schedules completed without violation
	Transitions int
	Seed        uint64
}

// Fuzz samples schedules of p under a seeded random-priority (PCT-style)
// scheduler: each run assigns random thread priorities, always steps the
// highest-priority runnable thread, and demotes the current leader at a
// few random change points — biasing toward the adversarial orderings an
// uninstrumented scheduler rarely produces. Internal choices (relay
// targets under RelayNondet, Select claim order) are resolved randomly
// and recorded, so a violation's Schedule replays deterministically. It
// returns the first violation as the error.
func Fuzz(p Program, fo FuzzOptions) (*FuzzReport, error) {
	fo = fo.withDefaults()
	rep := &FuzzReport{Seed: fo.Seed}
	mc, err := compile(p, fo.Check.withDefaults())
	if err != nil {
		return rep, err
	}
	for run := 0; run < fo.Runs; run++ {
		rng := rand.New(rand.NewPCG(fo.Seed, uint64(run)))
		if err := mc.fuzzOnce(rng, fo, rep); err != nil {
			return rep, err
		}
		rep.Runs++
	}
	return rep, nil
}

func (mc *machine) fuzzOnce(rng *rand.Rand, fo FuzzOptions, rep *FuzzReport) error {
	c := newConfig(mc)
	n := len(c.threads)
	prio := make([]int, n)
	for i, v := range rng.Perm(n) {
		prio[i] = v + n // leave room below for demotions
	}
	floor := n
	change := map[int]bool{}
	for i := 0; i < fo.ChangePoints; i++ {
		change[rng.IntN(fo.Steps)] = true
	}

	var trace, sched []string
	for step := 0; ; step++ {
		var enabled []int
		unfinished := false
		for ti := 0; ti < n; ti++ {
			if !c.threads[ti].done() {
				unfinished = true
			}
			if mc.runnable(c, ti) {
				enabled = append(enabled, ti)
			}
		}
		if len(enabled) == 0 {
			if unfinished {
				var stuck []string
				for ti := 0; ti < n; ti++ {
					if !c.threads[ti].done() {
						stuck = append(stuck, mc.prog.Threads[ti].Name)
					}
				}
				return &Violation{
					Kind:     fmt.Sprintf("deadlock freedom: threads [%s] blocked with no runnable thread", strings.Join(stuck, " ")),
					Trace:    trace,
					Schedule: strings.Join(sched, ","),
					State:    c.state.clone(),
				}
			}
			if v := mc.terminalViolation(c); v != nil {
				v.Trace = trace
				v.Schedule = strings.Join(sched, ",")
				return v
			}
			return nil
		}
		if step >= fo.Steps {
			return &Violation{
				Kind:     fmt.Sprintf("depth bound: fuzz run reached %d steps without terminating (livelock, or raise FuzzOptions.Steps)", step),
				Trace:    trace,
				Schedule: strings.Join(sched, ","),
				State:    c.state.clone(),
			}
		}

		best := enabled[0]
		for _, ti := range enabled[1:] {
			if prio[ti] > prio[best] {
				best = ti
			}
		}
		if change[step] {
			floor--
			prio[best] = floor // demote the leader below everyone
			best = enabled[0]
			for _, ti := range enabled[1:] {
				if prio[ti] > prio[best] {
					best = ti
				}
			}
		}

		ch := &chooser{rand: rng.IntN}
		label, viol := mc.exec(c, best, ch)
		rep.Transitions++
		trace = append(trace, label)
		sched = append(sched, token(best, ch.taken))
		if viol != nil {
			viol.Trace = trace
			viol.Schedule = strings.Join(sched, ",")
			return viol
		}
	}
}
