package simcheck

import (
	"fmt"
	"strconv"
	"strings"
)

// Replay re-runs exactly one schedule of p and reports what that single
// interleaving produces: the violation it hits (with the same Kind and
// state every time — the machine is deterministic given the schedule),
// or nil if the scheduled prefix runs clean. A schedule is the
// comma-joined token list of Violation.Schedule: each token is a thread
// index, optionally suffixed with the step's internal choices
// ("3" or "3:1.0"). If the schedule ends with threads still blocked and
// nothing runnable, the deadlock is reported just as exploration would.
func Replay(p Program, schedule string, opts Options) error {
	mc, err := compile(p, opts.withDefaults())
	if err != nil {
		return err
	}
	c := newConfig(mc)
	var trace, sched []string

	tokens := strings.Split(schedule, ",")
	if schedule == "" {
		tokens = nil
	}
	for pos, tok := range tokens {
		ti, script, err := parseToken(tok)
		if err != nil {
			return fmt.Errorf("simcheck: replay token %d: %w", pos, err)
		}
		if ti < 0 || ti >= len(c.threads) {
			return fmt.Errorf("simcheck: replay token %d: no thread %d", pos, ti)
		}
		if !mc.runnable(c, ti) {
			return fmt.Errorf("simcheck: replay diverged at token %d: thread %d (%s) is not runnable — schedule and program/options disagree",
				pos, ti, mc.prog.Threads[ti].Name)
		}
		ch := &chooser{script: script}
		label, viol := mc.exec(c, ti, ch)
		trace = append(trace, label)
		sched = append(sched, token(ti, ch.taken))
		if viol != nil {
			viol.Trace = trace
			viol.Schedule = strings.Join(sched, ",")
			return viol
		}
	}

	// End of schedule: report the configuration it left behind.
	anyRunnable, unfinished := false, false
	for ti := range c.threads {
		if !c.threads[ti].done() {
			unfinished = true
		}
		if mc.runnable(c, ti) {
			anyRunnable = true
		}
	}
	if unfinished && !anyRunnable {
		var stuck []string
		for ti := range c.threads {
			if !c.threads[ti].done() {
				stuck = append(stuck, mc.prog.Threads[ti].Name)
			}
		}
		return &Violation{
			Kind:     fmt.Sprintf("deadlock freedom: threads [%s] blocked with no runnable thread", strings.Join(stuck, " ")),
			Trace:    trace,
			Schedule: strings.Join(sched, ","),
			State:    c.state.clone(),
		}
	}
	if !unfinished {
		if v := mc.terminalViolation(c); v != nil {
			v.Trace = trace
			v.Schedule = strings.Join(sched, ",")
			return v
		}
	}
	return nil
}

func parseToken(tok string) (ti int, script []int, err error) {
	head, rest, hasChoices := strings.Cut(tok, ":")
	ti, err = strconv.Atoi(strings.TrimSpace(head))
	if err != nil {
		return 0, nil, fmt.Errorf("bad thread index %q", head)
	}
	if hasChoices {
		for _, part := range strings.Split(rest, ".") {
			v, err := strconv.Atoi(part)
			if err != nil {
				return 0, nil, fmt.Errorf("bad choice %q in token %q", part, tok)
			}
			script = append(script, v)
		}
	}
	return ti, script, nil
}

// ReplayArg packages a corpus program name, the semantic options, and a
// schedule into the single string the -simcheck.replay test flag takes:
// "name[flags]:schedule". Violations printed by the exploration and fuzz
// tests use this form, so a CI failure line pastes straight back into
//
//	go test ./internal/simcheck -run TestReplayFlag -simcheck.replay='...'
func ReplayArg(name string, opts Options, schedule string) string {
	return name + "[" + opts.flags() + "]:" + schedule
}

// ParseReplayArg is the inverse of ReplayArg.
func ParseReplayArg(arg string) (name string, opts Options, schedule string, err error) {
	open := strings.Index(arg, "[")
	close_ := strings.Index(arg, "]:")
	if open < 0 || close_ < open {
		return "", Options{}, "", fmt.Errorf("simcheck: replay arg %q is not name[flags]:schedule", arg)
	}
	name = arg[:open]
	schedule = arg[close_+2:]
	for _, f := range strings.Split(arg[open+1:close_], "!") {
		switch f {
		case "":
		case "rnd":
			opts.RelayNondet = true
		case "ref":
			opts.Reference = true
		case "norelay":
			opts.DisableRelay = true
		case "norepair":
			opts.DisableCancelRepair = true
		default:
			return "", Options{}, "", fmt.Errorf("simcheck: unknown replay flag %q in %q", f, arg)
		}
	}
	return name, opts, schedule, nil
}
