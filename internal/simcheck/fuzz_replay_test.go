package simcheck

import (
	"flag"
	"os"
	"strconv"
	"strings"
	"testing"

	"repro/internal/testutil"
)

var replayFlag = flag.String("simcheck.replay", "",
	"replay one schedule against a corpus program: 'name[flags]:schedule', as printed by a failing exploration or fuzz test")

// TestReplayFlag re-runs exactly the schedule given on the command line:
//
//	go test ./internal/simcheck -run TestReplayFlag -simcheck.replay='bounded-buffer[!norelay]:0,1,2,3'
//
// It fails iff the replayed schedule produces a violation, printing it —
// so a schedule string from any CI failure reproduces deterministically.
func TestReplayFlag(t *testing.T) {
	if *replayFlag == "" {
		t.Skip("no -simcheck.replay argument")
	}
	name, opts, sched, err := ParseReplayArg(*replayFlag)
	if err != nil {
		t.Fatal(err)
	}
	if err := Replay(MustProgram(name), sched, opts); err != nil {
		t.Fatalf("replayed schedule fails:\n%v", err)
	}
}

func TestLostWakeupMutationCaughtAndReplays(t *testing.T) {
	// Acceptance: disabling the relay rule plants a lost wake-up in the
	// bounded buffer; exhaustive exploration must catch it, and the
	// reported schedule must replay to the identical violation — twice,
	// and through the replay-flag plumbing (ReplayArg/ParseReplayArg).
	opts := Options{DisableRelay: true}
	err := Check(MustProgram("bounded-buffer"), opts)
	if err == nil {
		t.Fatal("lost-wakeup mutation not caught")
	}
	v, ok := err.(*Violation)
	if !ok {
		t.Fatalf("expected *Violation, got %T: %v", err, err)
	}
	if !strings.Contains(v.Kind, "relay invariance") && !strings.Contains(v.Kind, "deadlock") {
		t.Fatalf("unexpected violation kind: %v", v)
	}
	if v.Schedule == "" {
		t.Fatal("violation carries no schedule")
	}

	arg := ReplayArg("bounded-buffer", opts, v.Schedule)
	for i := 0; i < 2; i++ {
		name, popts, sched, err := ParseReplayArg(arg)
		if err != nil {
			t.Fatal(err)
		}
		if name != "bounded-buffer" || !popts.DisableRelay || sched != v.Schedule {
			t.Fatalf("replay arg did not round-trip: %q -> %q %+v %q", arg, name, popts, sched)
		}
		rerr := Replay(MustProgram(name), sched, popts)
		if rerr == nil {
			t.Fatal("replay of the failing schedule passed")
		}
		rv, ok := rerr.(*Violation)
		if !ok {
			t.Fatalf("replay returned %T: %v", rerr, rerr)
		}
		if rv.Kind != v.Kind || rv.State.key() != v.State.key() {
			t.Fatalf("replay diverged on run %d:\n exploration: %s / %s\n replay:      %s / %s",
				i, v.Kind, v.State.key(), rv.Kind, rv.State.key())
		}
	}
}

func TestReplayDivergenceDetected(t *testing.T) {
	// A schedule recorded under one semantics must not silently replay
	// under another: scheduling a thread that is not runnable is reported
	// as divergence, not executed.
	err := Replay(MustProgram("handoff"), "0,0,1", Options{})
	if err == nil || !strings.Contains(err.Error(), "diverged") {
		t.Fatalf("expected divergence error, got %v", err)
	}
}

func TestReplayArgParseErrors(t *testing.T) {
	if _, _, _, err := ParseReplayArg("no-brackets"); err == nil {
		t.Error("malformed arg accepted")
	}
	if _, _, _, err := ParseReplayArg("name[!bogus]:0,1"); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestFuzzCleanCorpus(t *testing.T) {
	// A short seeded campaign over the corpus: every sampled schedule of
	// every clean program must pass. Deterministic seed — this is the
	// regression net; the long randomized pass is TestFuzzLong.
	for _, name := range Programs() {
		name := name
		t.Run(name, func(t *testing.T) {
			rep, err := Fuzz(MustProgram(name), FuzzOptions{
				Runs:  50,
				Seed:  1,
				Check: Options{RelayNondet: true},
			})
			if err != nil {
				t.Fatalf("seed %d: %v", rep.Seed, err)
			}
		})
	}
}

func TestFuzzCatchesMutationWithReplayableSchedule(t *testing.T) {
	// The fuzzer must find the lost wake-up too, and its randomized
	// schedule — internal choices included — must replay exactly.
	opts := Options{DisableRelay: true, RelayNondet: true}
	rep, err := Fuzz(MustProgram("bounded-buffer"), FuzzOptions{Runs: 200, Seed: 7, Check: opts})
	if err == nil {
		t.Fatalf("fuzzer missed the lost-wakeup mutation in %d runs", rep.Runs)
	}
	v, ok := err.(*Violation)
	if !ok {
		t.Fatalf("expected *Violation, got %T: %v", err, err)
	}
	rerr := Replay(MustProgram("bounded-buffer"), v.Schedule, opts)
	if rerr == nil {
		t.Fatal("replay of the fuzzer's failing schedule passed")
	}
	rv, ok := rerr.(*Violation)
	if !ok {
		t.Fatalf("replay returned %T: %v", rerr, rerr)
	}
	if rv.Kind != v.Kind || rv.State.key() != v.State.key() {
		t.Fatalf("replay diverged:\n fuzzer: %s / %s\n replay: %s / %s",
			v.Kind, v.State.key(), rv.Kind, rv.State.key())
	}
}

// TestFuzzLong is the opt-in long-budget pass CI runs on demand: set
// SIMCHECK_FUZZ_RUNS to enable (and SIMCHECK_FUZZ_SEED to pin a seed —
// the chosen seed is always logged for reproduction).
func TestFuzzLong(t *testing.T) {
	runsEnv := os.Getenv("SIMCHECK_FUZZ_RUNS")
	if runsEnv == "" {
		t.Skip("SIMCHECK_FUZZ_RUNS not set; short corpus fuzz is TestFuzzCleanCorpus")
	}
	runs, err := strconv.Atoi(runsEnv)
	if err != nil || runs <= 0 {
		t.Fatalf("SIMCHECK_FUZZ_RUNS=%q is not a positive integer", runsEnv)
	}
	seed := testutil.SeedFromEnv(t, "SIMCHECK_FUZZ_SEED")
	for _, name := range Programs() {
		name := name
		t.Run(name, func(t *testing.T) {
			rep, err := Fuzz(MustProgram(name), FuzzOptions{
				Runs:  runs,
				Seed:  seed,
				Check: Options{RelayNondet: true},
			})
			if err != nil {
				v, _ := err.(*Violation)
				if v != nil {
					t.Fatalf("seed %d: %v\nreplay with: -simcheck.replay='%s'",
						seed, err, ReplayArg(name, Options{RelayNondet: true}, v.Schedule))
				}
				t.Fatalf("seed %d: %v", seed, err)
			}
			t.Logf("%s: %d runs, %d transitions, seed %d", name, rep.Runs, rep.Transitions, rep.Seed)
		})
	}
}
