package simcheck

import (
	"strings"
	"testing"
)

// terminalKeys explores p and returns the canonical renderings of its
// terminal set.
func terminalKeys(t *testing.T, p Program, opts Options) map[string]State {
	t.Helper()
	res, err := Explore(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res.TerminalSet()
}

func wantTerminals(t *testing.T, got map[string]State, want ...State) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("terminal set has %d states, want %d:\n got %v", len(got), len(want), got)
	}
	for _, s := range want {
		if _, ok := got[s.key()]; !ok {
			t.Errorf("terminal %s not reached; got %v", s.key(), got)
		}
	}
}

func TestCorpusExploresClean(t *testing.T) {
	// Every corpus program must explore to completion with zero
	// violations under both the deterministic and the nondeterministic
	// relay pick — except the two programs whose only purpose is to fail
	// under a seeded mutation; those are clean unmutated too.
	for _, name := range Programs() {
		name := name
		t.Run(name, func(t *testing.T) {
			if err := Check(MustProgram(name), Options{}); err != nil {
				t.Fatalf("deterministic relay: %v", err)
			}
			if err := Check(MustProgram(name), Options{RelayNondet: true}); err != nil {
				t.Fatalf("nondeterministic relay: %v", err)
			}
		})
	}
}

func TestCorpusLinearizable(t *testing.T) {
	// Every relay-reachable terminal state must be reachable under the
	// sequential reference semantics: the relay rule restricts outcomes,
	// it never invents one.
	for _, name := range Programs() {
		name := name
		t.Run(name, func(t *testing.T) {
			if _, err := CheckLinearizable(MustProgram(name), Options{RelayNondet: true}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestDoubleClaimTerminal(t *testing.T) {
	// The second claim of a spent handle must be a no-op: got stays 1 on
	// every schedule (the +100 branch never runs).
	got := terminalKeys(t, MustProgram("double-claim"), Options{})
	wantTerminals(t, got, State{"x": 0, "got": 1})
}

func TestBargeFalsifyTerminals(t *testing.T) {
	// The barger either loses every race (barge 0, one item left) or
	// steals one item; the waiter always gets exactly one.
	got := terminalKeys(t, MustProgram("barge-falsify"), Options{})
	wantTerminals(t, got,
		State{"x": 1, "got": 1, "barge": 0},
		State{"x": 0, "got": 1, "barge": 1},
	)
}

func TestCancelInflightTerminal(t *testing.T) {
	got := terminalKeys(t, MustProgram("cancel-inflight"), Options{})
	wantTerminals(t, got, State{"x": 0})
}

func TestHandleMultiplexTerminal(t *testing.T) {
	got := terminalKeys(t, MustProgram("handle-multiplex"), Options{})
	wantTerminals(t, got, State{"x": 0, "y": 0})
}

func TestCounterWatchTerminal(t *testing.T) {
	// The watch protocol must release the aggregate waiter on every
	// schedule even though both deltas are below the batching threshold.
	got := terminalKeys(t, MustProgram("counter-watch"), Options{})
	wantTerminals(t, got, State{"adds": 2})
}

func TestGuardBodyPanicStillRelays(t *testing.T) {
	// A panicking guarded body models Guard.Do's deferred unlock: the
	// exit relay must still run, so the waiter behind it is released on
	// every schedule even though the panicking thread dies.
	p := Program{
		Init: State{"x": 0, "y": 0, "got": 0},
		Threads: []Thread{
			{Name: "dying", Ops: []Op{
				Wait("boom", func(s State) bool { return s["x"] > 0 },
					func(s State) { s["x"]--; s["y"] += 2 }).Panicking(),
			}},
			{Name: "waiter", Ops: []Op{
				Wait("wait", func(s State) bool { return s["y"] > 0 },
					func(s State) { s["y"]--; s["got"]++ }),
			}},
			{Name: "producer", Ops: []Op{
				Step("produce", func(s State) { s["x"]++ }),
			}},
		},
	}
	got := terminalKeys(t, p, Options{})
	wantTerminals(t, got, State{"x": 0, "y": 1, "got": 1})
}

func TestCancelRepairMutationCaught(t *testing.T) {
	// With the relay repair removed from Cancel, the cancel-inflight
	// shape has a schedule where the armed handle swallows the in-flight
	// signal and the blocking waiter starves. The checker must find it.
	err := Check(MustProgram("cancel-inflight"), Options{DisableCancelRepair: true})
	if err == nil {
		t.Fatal("cancel-repair mutation not caught")
	}
	// The local inductive check catches it the moment the cancel drops
	// the signal (relay invariance); without that check it would surface
	// later as the starved waiter's deadlock. Either way it must fail.
	if !strings.Contains(err.Error(), "relay invariance") && !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("unexpected violation kind: %v", err)
	}
}

func TestMemoizationPinsBoundedBuffer(t *testing.T) {
	// Satellite pin: on the base bounded-buffer instance, memoized
	// exploration must visit fewer than 10% of the arrivals a
	// memoization-free DFS re-explores.
	p := BoundedBuffer(1, 2, 2, 2)
	memo, err := Explore(p, Options{DisableSleepSets: true})
	if err != nil {
		t.Fatal(err)
	}
	nomemo, err := Explore(p, Options{DisableMemo: true, DisableSleepSets: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("memoized: %d states (%d revisits pruned); unmemoized: %d arrivals",
		memo.States, memo.Revisits, nomemo.States)
	if memo.States == 0 || nomemo.States == 0 {
		t.Fatal("exploration did not run")
	}
	if 10*memo.States >= nomemo.States {
		t.Errorf("memoization too weak: %d distinct states vs %d arrivals (want <10%%)",
			memo.States, nomemo.States)
	}
}

func TestSleepSetsPreserveTerminalsAndPrune(t *testing.T) {
	// Two disjoint producer/consumer pairs on two monitors: their steps
	// commute, so sleep sets must prune transitions — and must not change
	// the terminal set or the verdict.
	pair := func(mon int, item string) []Thread {
		avail := func(s State) bool { return s[item] > 0 }
		return []Thread{
			{Name: "p" + item, Ops: []Op{
				Step("put", func(s State) { s[item]++ }).On(mon).Touching(item),
				Step("put", func(s State) { s[item]++ }).On(mon).Touching(item),
			}},
			{Name: "c" + item, Ops: []Op{
				Wait("take", avail, func(s State) { s[item]-- }).On(mon).Touching(item),
				Wait("take", avail, func(s State) { s[item]-- }).On(mon).Touching(item),
			}},
		}
	}
	p := Program{Init: State{"x": 0, "y": 0}}
	p.Threads = append(p.Threads, pair(0, "x")...)
	p.Threads = append(p.Threads, pair(1, "y")...)

	with, err := Explore(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Explore(p, Options{DisableSleepSets: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("with sleep sets: %d transitions (%d skipped); without: %d transitions",
		with.Transitions, with.SleepSkips, without.Transitions)
	if with.SleepSkips == 0 {
		t.Error("sleep sets skipped nothing on a program with independent threads")
	}
	if with.Transitions >= without.Transitions {
		t.Errorf("sleep sets did not reduce transitions: %d vs %d", with.Transitions, without.Transitions)
	}
	ws, wos := with.TerminalSet(), without.TerminalSet()
	if len(ws) != len(wos) {
		t.Fatalf("terminal sets differ: %d vs %d states", len(ws), len(wos))
	}
	for k := range wos {
		if _, ok := ws[k]; !ok {
			t.Errorf("terminal %s lost under sleep sets", k)
		}
	}
}

func TestRelayNondetExploresMoreChoices(t *testing.T) {
	// Two waiters eligible for the same relay: the deterministic pick
	// explores one target, RelayNondet both. Both must be clean; the
	// nondeterministic run must branch at least as much.
	avail := func(s State) bool { return s["x"] > 0 }
	p := Program{
		Init: State{"x": 0},
		Threads: []Thread{
			{Name: "w1", Ops: []Op{Wait("take", avail, func(s State) { s["x"]-- })}},
			{Name: "w2", Ops: []Op{Wait("take", avail, func(s State) { s["x"]-- })}},
			{Name: "p", Ops: []Op{
				Step("put", func(s State) { s["x"]++ }),
				Step("put", func(s State) { s["x"]++ }),
			}},
		},
	}
	det, err := Explore(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	nondet, err := Explore(p, Options{RelayNondet: true})
	if err != nil {
		t.Fatal(err)
	}
	if nondet.Transitions < det.Transitions {
		t.Errorf("RelayNondet explored fewer transitions (%d) than the deterministic pick (%d)",
			nondet.Transitions, det.Transitions)
	}
}
