// Package simcheck model-checks the AutoSynch protocol surface by
// systematic schedule exploration.
//
// The production runtime (internal/core, internal/shard) rides on
// sync.Mutex and channels, whose scheduling cannot be controlled from a
// test, so its correctness arguments — Proposition 1 (globalization is
// sound), Proposition 2 (the relay rule preserves relay invariance), the
// no-lost-wakeup liveness of the Fig. 6 do-while, and the handle/Select
// claim/cancel/relay-repair protocol built on top — are exercised there
// only probabilistically. This package re-implements the whole signaling
// discipline as a deterministic state machine over virtual threads and
// explores interleavings of small programs, checking after every step.
//
// # What is modeled
//
// Threads are sequences of atomic monitor sections, mirroring how member
// functions decompose around waituntil. Beyond the base Step/Wait ops of
// the original checker, the machine models the full post-handle surface:
//
//   - multiple monitors, each with its own waiter set, single in-flight
//     relay signal, and exit-relay discipline (relaySignal of §4.2);
//   - armed wait handles: Arm registers a first-class waiter (with the
//     arm-time free notification when the predicate already holds),
//     Claim re-enters and re-validates Mesa-style (a falsified claim
//     re-arms transparently and passes an in-flight relay signal
//     onward), Cancel unregisters with relay repair;
//   - cross-monitor Select: the ordered initial poll (each Try exits
//     with a relay, exactly like the real Guard.Try), per-case arming
//     with arm-time notification, a shared-delivery park that claims a
//     notified case first-true Mesa-style, transparent re-arm on
//     falsification, and loser cancellation with relay repair after the
//     winner's exit — including the panic-unwinding order (body, exit
//     relay, loser cancels, then the thread dies);
//   - deadline-aware waits (AwaitDeadline): a parked deadline'd waiter
//     has a second enabled transition — its timer firing — explored
//     like any other scheduler choice, so every race between signal
//     delivery and expiry is covered; expiry unregisters the waiter
//     with Cancel's reconcile-and-relay repair (an orphaned in-flight
//     signal is passed onward) and then runs the expiry continuation
//     in its own atomic section;
//   - guarded regions: Wait/Step bodies may be marked Panicking, which
//     models Guard.Do's deferred unlock — the relay still runs, the
//     thread terminates by panic;
//   - epoch-batched aggregate counters (shard.Counter): per-shard
//     pending deltas folded under the shard monitor, threshold or
//     precise-mode publication into a summary monitor (bumping the
//     epoch and relaying there), and the watch protocol around
//     aggregate waits (enter precise mode, flush every shard, then park
//     on the summary) that guarantees batching never hides an update.
//
// # What is checked
//
// After every atomic step:
//
//   - relay invariance (Definition 4), in its local inductive form: for
//     every monitor, if some unnotified waiter's globalized predicate is
//     true, a relay signal is in flight on that monitor;
//   - signal soundness by construction: relays target only waiters
//     whose predicate is true at signal time, and a signaled thread that
//     finds its predicate falsified by a barging thread re-waits (the
//     futile wake of Fig. 6) or re-arms (a futile claim), never
//     proceeds;
//   - deadlock freedom / no lost wake-up: if any thread can still move,
//     some thread moves, and every program terminates on every explored
//     schedule (a depth bound catches livelock);
//   - no leaked waiter: at full termination the waiter table is empty —
//     every armed handle was claimed or cancelled, no signal is in
//     flight, and no counter is left in precise mode;
//   - terminal-state soundness: CheckLinearizable re-explores the
//     program under a reference semantics (a parked thread may proceed
//     whenever its predicate is true, signaling ignored — the
//     obviously-correct broadcast discipline) and asserts that every
//     terminal state reachable under relay signaling is also reachable
//     sequentially under the reference, i.e. the relay rule can only
//     restrict outcomes, never invent them.
//
// # Proven vs. sampled
//
// Explore is exhaustive: DFS over every scheduler choice (and, with
// RelayNondet, every relay-target choice), memoized on a 128-bit state
// hash and pruned with sleep-set partial-order reduction over declared
// monitor footprints. Within the instance sizes and bounds given, its
// verdict is a proof about the model. Fuzz is a seeded random-priority
// (PCT-style) scheduler for instances too large to exhaust; it samples.
// Both emit a replayable schedule on failure (Violation.Schedule) that
// Replay — or the -simcheck.replay test flag — re-runs deterministically.
// The differential shapes in gen.go close the loop to the real
// implementation: each small program runs both as a model and as a
// concrete scenario against the four real mechanisms, with the real
// outcomes checked for membership in the model's terminal set.
//
// The model's faithfulness contract: a predicate registered on monitor M
// must read only variables mutated under M (exactly as real compiled
// predicates read only their monitor's cells), and scheduler-visible
// nondeterminism beyond thread choice — relay targets, Select claim
// order — is either fixed deterministically (registration order, lowest
// case) or explored exhaustively (Options.RelayNondet; claim order is
// always explored).
package simcheck

import (
	"fmt"
	"sort"
	"strings"
)

// State is the shared monitor state of a simulated program: a fixed set
// of integer variables (booleans are 0/1 by convention). Every variable
// must be declared in Program.Init — actions must not invent keys, or
// state hashing would be unstable. Keys beginning with '#' are reserved
// for counter internals.
type State map[string]int64

func (s State) clone() State {
	c := make(State, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// key renders the state deterministically, for messages and terminal-set
// comparison.
func (s State) key() string {
	names := make([]string, 0, len(s))
	for n := range s {
		names = append(names, n)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, n := range names {
		fmt.Fprintf(&sb, "%s=%d;", n, s[n])
	}
	return sb.String()
}

// Pred is a globalized predicate over the shared state. Implementations
// must be pure functions of the state, and a predicate registered on
// monitor M must read only variables mutated under M.
type Pred func(State) bool

// Action is one atomic monitor section body: it runs with the (virtual)
// monitor held and mutates the shared state.
type Action func(State)

// OpKind discriminates the step types a thread program is built from.
type OpKind uint8

// The op kinds. Build ops with the constructors below rather than by
// struct literal; the zero Op is invalid.
const (
	OpStep         OpKind = iota // unguarded atomic section
	OpWait                       // blocking waituntil + body
	OpTry                        // non-blocking guarded section (Guard.Try)
	OpArm                        // arm a wait handle into a named slot
	OpClaim                      // claim the slot's handle (Wait.Claim)
	OpCancel                     // cancel the slot's handle (Wait.Cancel)
	OpSelect                     // cross-monitor select over guard cases
	OpCounterAdd                 // fold a delta into an aggregate counter
	OpCounterWait                // aggregate wait: watch, flush, park
	OpWaitDeadline               // deadline-aware waituntil (AwaitDeadline)
)

// SelCase is one guard case of a Select op: a predicate on a monitor and
// the body to run under that monitor if the case wins.
type SelCase struct {
	Mon  int
	Name string
	Pred Pred
	Body Action
}

// Case builds a Select guard case.
func Case(mon int, name string, pred Pred, body Action) SelCase {
	return SelCase{Mon: mon, Name: name, Pred: pred, Body: body}
}

// Op is one step of a thread's program.
type Op struct {
	Kind OpKind
	// Name labels the op in counterexample traces.
	Name string
	// Mon is the monitor the op runs on (default 0). Claim/Cancel must
	// name the same monitor as the Arm that created their slot.
	Mon int
	// Guard is the waituntil predicate (OpWait, OpTry, OpArm, OpClaim
	// re-validation uses the armed predicate).
	Guard Pred
	// Body mutates the state inside the monitor. May be nil.
	Body Action
	// Else runs (inside the monitor) when an OpTry guard is false, or as
	// the expiry continuation of an OpWaitDeadline whose timer fired.
	Else Action
	// Panics marks the body as panicking after it runs: the modeled
	// guarded region unwinds — exit relay, loser cancellation for
	// Select — and the thread terminates by panic.
	Panics bool
	// Slot names the handle for OpArm/OpClaim/OpCancel.
	Slot string
	// Cases are the guards of an OpSelect.
	Cases []SelCase
	// Counter/Shard/Delta/Bound parameterize the counter ops.
	Counter string
	Shard   int
	Delta   int64
	Bound   int64
	// Vars optionally declares extra variables this op reads or writes
	// beyond its monitor's own state, for partial-order reduction.
	Vars []string
}

// On returns the op rebound to monitor mon.
func (o Op) On(mon int) Op { o.Mon = mon; return o }

// Touching declares extra shared variables for partial-order reduction.
func (o Op) Touching(vars ...string) Op { o.Vars = vars; return o }

// Panicking marks the op's body as panicking after it runs.
func (o Op) Panicking() Op { o.Panics = true; return o }

// Step is an unguarded atomic monitor section on monitor 0; rebind with
// On.
func Step(name string, body Action) Op {
	return Op{Kind: OpStep, Name: name, Body: body}
}

// Wait is a waituntil(P) followed by body, run atomically once P holds —
// exactly the shape of a member function that waits and then acts.
func Wait(name string, pred Pred, body Action) Op {
	return Op{Kind: OpWait, Name: name, Guard: pred, Body: body}
}

// WaitDeadline is the deadline-aware waituntil (AwaitDeadline /
// AwaitFuncDeadline): it evaluates and parks exactly like Wait, but
// while the thread is parked its deadline timer is a schedulable
// transition of its own, always eligible — the model has no clock, so
// exploration covers every race between signal delivery and expiry,
// including the timer taking a waiter that already holds the in-flight
// relay signal. When the timer branch is taken the waiter unregisters
// with the same reconcile-and-relay repair as Cancel (an orphaned
// signal must be passed onward, or a peer loses its wake-up), and the
// expiry action then runs in its own atomic section — the caller's
// ErrDeadline fallback under the re-acquired monitor — before the
// thread continues past the op. A wait whose predicate already holds
// at entry completes without ever exposing the timer, matching the
// real fast path.
func WaitDeadline(name string, pred Pred, body, expiry Action) Op {
	return Op{Kind: OpWaitDeadline, Name: name, Guard: pred, Body: body, Else: expiry}
}

// Try is the non-blocking guarded section: evaluate pred once inside the
// monitor, run then if it holds, els (which may be nil) otherwise —
// Guard.Try with an else branch.
func Try(name string, pred Pred, then, els Action) Op {
	return Op{Kind: OpTry, Name: name, Guard: pred, Body: then, Else: els}
}

// Arm registers a wait handle on pred into the thread's named slot
// without blocking, delivering the arm-time free notification when pred
// already holds — ArmFunc/Predicate.Arm.
func Arm(name, slot string, pred Pred) Op {
	return Op{Kind: OpArm, Name: name, Slot: slot, Guard: pred}
}

// Claim claims the slot's handle once it is notified: re-enter the
// monitor, re-validate Mesa-style, run body with the predicate true. A
// falsified claim re-arms the handle transparently (ErrNotReady) and the
// thread retries when re-notified. Claiming a spent slot is the
// ErrClaimed/ErrCancelled no-op.
func Claim(name, slot string, body Action) Op {
	return Op{Kind: OpClaim, Name: name, Slot: slot, Body: body}
}

// Cancel cancels the slot's armed handle: unregister, reconcile any
// in-flight signal addressed to it, and relay onward (relay repair).
func Cancel(name, slot string) Op {
	return Op{Kind: OpCancel, Name: name, Slot: slot}
}

// Select is the cross-monitor waituntil-select over the cases, modeled
// on SelectOrdered: an ordered initial poll (each miss exits with a
// relay), per-case arming, a shared-delivery park claiming notified
// cases Mesa-style, and loser cancellation with relay repair after the
// winner's body and exit. Panicking applies to the winner's body.
func Select(name string, cases ...SelCase) Op {
	return Op{Kind: OpSelect, Name: name, Cases: cases}
}

// CounterAdd folds delta into the named counter from the given shard,
// running body (which may be nil) first under the shard's monitor —
// shard.Counter.Add from inside a mutating section. Publication follows
// the real protocol: when the shard's pending batch reaches the
// counter's threshold, or immediately while any watcher is in precise
// mode, the batch publishes into the summary monitor (total, epoch) and
// relays there.
func CounterAdd(name, counter string, shard int, delta int64, body Action) Op {
	return Op{Kind: OpCounterAdd, Name: name, Counter: counter, Shard: shard, Delta: delta, Body: body}
}

// CounterAwait blocks until the named counter's aggregate is at least
// bound, via the real watch protocol: enter precise mode, flush every
// shard (one atomic section each), then park on the summary monitor.
func CounterAwait(name, counter string, bound int64) Op {
	return Op{Kind: OpCounterWait, Name: name, Counter: counter, Bound: bound}
}

// Thread is a named sequence of ops.
type Thread struct {
	Name string
	Ops  []Op
}

// CounterSpec declares an aggregate counter: its shard monitors (the
// pend slot of CounterAdd's Shard i lives under ShardMons[i]) and the
// publication threshold. The summary monitor is allocated automatically
// after the program's own monitors.
type CounterSpec struct {
	Name      string
	ShardMons []int
	Threshold int64
}

// Program is a set of threads over an initial state, with optional
// aggregate counters and an optional observation projection.
type Program struct {
	Init     State
	Threads  []Thread
	Counters []CounterSpec
	// Observe projects a terminal state for linearizability and
	// differential comparison. Nil strips the '#'-prefixed counter
	// internals and keeps everything else.
	Observe func(State) State
}

// Options bound and configure the exploration.
type Options struct {
	MaxDepth       int // maximum schedule length (default 10 000)
	MaxStates      int // distinct-state budget (default 1 000 000)
	MaxTransitions int // executed-step budget (default 20 000 000)

	// DisableMemo turns off state-hash memoization: every arrival is
	// explored. Only for measuring what memoization saves.
	DisableMemo bool
	// DisableSleepSets turns off the sleep-set partial-order reduction.
	DisableSleepSets bool
	// RelayNondet explores every choice of relay target (any waiter
	// whose predicate is true) instead of the deterministic
	// registration-order pick. Required for the differential tests:
	// the real tag structures may relay to any eligible waiter.
	RelayNondet bool
	// Reference switches to the reference semantics used as the
	// linearizability baseline: a parked thread (or claimable handle)
	// may proceed whenever its predicate is true, signaling ignored.
	// Relay-invariance checking is off in this mode.
	Reference bool

	// DisableRelay is a seeded mutation: the relay rule never fires.
	// The checker must catch the resulting lost wake-ups.
	DisableRelay bool
	// DisableCancelRepair is a seeded mutation: Cancel (and Select
	// loser cancellation, and deadline expiry) skips the relay repair.
	DisableCancelRepair bool
}

func (o Options) withDefaults() Options {
	if o.MaxDepth == 0 {
		o.MaxDepth = 10000
	}
	if o.MaxStates == 0 {
		o.MaxStates = 1_000_000
	}
	if o.MaxTransitions == 0 {
		o.MaxTransitions = 20_000_000
	}
	return o
}

// flags renders the semantics-affecting options for replay arguments.
func (o Options) flags() string {
	var sb strings.Builder
	if o.RelayNondet {
		sb.WriteString("!rnd")
	}
	if o.Reference {
		sb.WriteString("!ref")
	}
	if o.DisableRelay {
		sb.WriteString("!norelay")
	}
	if o.DisableCancelRepair {
		sb.WriteString("!norepair")
	}
	return sb.String()
}

// Violation describes a failed check with the schedule that produced it.
type Violation struct {
	Kind     string
	Trace    []string // human-readable step labels
	Schedule string   // machine-readable schedule; feed to Replay
	State    State
}

func (v *Violation) Error() string {
	msg := fmt.Sprintf("simcheck: %s violated\nstate: %s", v.Kind, v.State.key())
	if v.Schedule != "" {
		msg += "\nschedule: " + v.Schedule
	}
	if len(v.Trace) > 0 {
		msg += "\ntrace:\n  " + strings.Join(v.Trace, "\n  ")
	}
	return msg
}

// Result reports what an exploration covered.
type Result struct {
	// States counts configurations explored — distinct ones under
	// memoization, every arrival with DisableMemo.
	States int
	// Transitions counts executed atomic steps.
	Transitions int
	// Revisits counts arrivals pruned by memoization (covered by an
	// earlier visit).
	Revisits int
	// SleepSkips counts enabled transitions pruned by sleep sets.
	SleepSkips int
	// DeepestTrace is the longest schedule explored.
	DeepestTrace int
	// Terminals are the distinct projected terminal states.
	Terminals []State

	terminalKeys map[string]bool
}

// TerminalSet returns the projected terminal states keyed by their
// canonical rendering.
func (r *Result) TerminalSet() map[string]State {
	set := make(map[string]State, len(r.Terminals))
	for _, s := range r.Terminals {
		set[s.key()] = s
	}
	return set
}

func (r *Result) addTerminal(s State) {
	if r.terminalKeys == nil {
		r.terminalKeys = map[string]bool{}
	}
	k := s.key()
	if r.terminalKeys[k] {
		return
	}
	r.terminalKeys[k] = true
	r.Terminals = append(r.Terminals, s)
}

// Check exhaustively explores every interleaving of the program under
// the relay-signaling discipline and returns the first violation found,
// or nil if every schedule satisfies the invariants and terminates.
func Check(p Program, opts Options) error {
	_, err := Explore(p, opts)
	return err
}

// Explore is Check returning coverage statistics alongside the verdict.
// The Result is valid even when err is non-nil (partial coverage up to
// the violation or budget).
func Explore(p Program, opts Options) (*Result, error) {
	mc, err := compile(p, opts.withDefaults())
	if err != nil {
		return &Result{}, err
	}
	return mc.explore()
}

// CheckLinearizable explores the program under both the relay semantics
// and the reference semantics and verifies that every relay-reachable
// terminal state is reference-reachable: the relay rule only restricts
// outcomes. It returns the relay-side result.
func CheckLinearizable(p Program, opts Options) (*Result, error) {
	res, err := Explore(p, opts)
	if err != nil {
		return res, err
	}
	refOpts := opts
	refOpts.Reference = true
	refOpts.DisableRelay = false
	refOpts.DisableCancelRepair = false
	ref, err := Explore(p, refOpts)
	if err != nil {
		return res, fmt.Errorf("simcheck: reference exploration failed: %w", err)
	}
	refSet := ref.TerminalSet()
	for _, s := range res.Terminals {
		if _, ok := refSet[s.key()]; !ok {
			return res, fmt.Errorf("simcheck: terminal state %s reachable under relay signaling but not under the sequential reference", s.key())
		}
	}
	return res, nil
}
