// Package simcheck model-checks the AutoSynch signaling algorithm.
//
// The production runtime (internal/core) rides on sync.Mutex and
// sync.Cond, whose scheduling cannot be controlled from a test, so its
// correctness arguments — Proposition 1 (globalization is sound),
// Proposition 2 (the relay rule preserves relay invariance), and the
// no-lost-wakeup liveness that follows — are exercised there only
// probabilistically. This package re-implements the monitor discipline as
// a deterministic state machine over virtual threads and exhaustively
// explores every interleaving of small programs (DFS over scheduler
// choices), checking after every step:
//
//   - mutual exclusion: monitor sections are atomic by construction;
//   - signal soundness: relays target only waiters whose globalized
//     predicate is true at signal time; a signaled thread that finds its
//     predicate falsified by a barging thread re-waits through the
//     Fig. 6 do-while (modeled as a futile wake), never proceeds;
//   - relay invariance (Definition 4): if some waiter's predicate is
//     true, at least one thread is active (running, ready, or signaled);
//   - deadlock freedom: if any thread can still move, some thread moves,
//     and all programs that should terminate do, on every schedule.
//
// Threads are written as sequences of atomic monitor sections
// (Step/Wait), mirroring how member functions decompose around waituntil.
// The scheduler is the adversary: at every decision point it forks one
// branch per runnable thread.
package simcheck

import (
	"fmt"
	"sort"
	"strings"
)

// State is the shared monitor state of a simulated program: a fixed set
// of integer variables (booleans are 0/1 by convention).
type State map[string]int64

func (s State) clone() State {
	c := make(State, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// key renders the state deterministically for memoization.
func (s State) key() string {
	names := make([]string, 0, len(s))
	for n := range s {
		names = append(names, n)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, n := range names {
		fmt.Fprintf(&sb, "%s=%d;", n, s[n])
	}
	return sb.String()
}

// Pred is a globalized predicate over the shared state. Implementations
// must be pure functions of the state.
type Pred func(State) bool

// Action is one atomic monitor section: it runs with the (virtual)
// monitor held and mutates the shared state.
type Action func(State)

// Op is one step of a thread's program.
type Op struct {
	// Guard, when non-nil, is a waituntil: the thread blocks until the
	// predicate holds, then atomically runs Body (still in the monitor).
	Guard Pred
	// Body mutates the state inside the monitor. May be nil.
	Body Action
	// Name labels the op in counterexample traces.
	Name string
}

// Step is an unguarded atomic monitor section.
func Step(name string, body Action) Op { return Op{Name: name, Body: body} }

// Wait is a waituntil(P) followed by body, run atomically once P holds —
// exactly the shape of a member function that waits and then acts.
func Wait(name string, pred Pred, body Action) Op {
	return Op{Name: name, Guard: pred, Body: body}
}

// Thread is a named sequence of ops.
type Thread struct {
	Name string
	Ops  []Op
}

// Program is a set of threads over an initial state.
type Program struct {
	Init    State
	Threads []Thread
}

// threadStatus tracks one virtual thread through the exploration.
type threadStatus struct {
	pc       int  // next op index
	waiting  bool // parked on its current op's guard
	signaled bool // woken by a relay, not yet re-entered
}

// config is one node of the interleaving tree.
type config struct {
	state   State
	threads []threadStatus
}

func (c *config) clone() *config {
	ts := make([]threadStatus, len(c.threads))
	copy(ts, c.threads)
	return &config{state: c.state.clone(), threads: ts}
}

func (c *config) key() string {
	var sb strings.Builder
	sb.WriteString(c.state.key())
	for _, t := range c.threads {
		fmt.Fprintf(&sb, "|%d,%t,%t", t.pc, t.waiting, t.signaled)
	}
	return sb.String()
}

// Violation describes a failed check with the schedule that produced it.
type Violation struct {
	Kind  string
	Trace []string
	State State
}

func (v *Violation) Error() string {
	return fmt.Sprintf("simcheck: %s violated\nstate: %s\ntrace:\n  %s",
		v.Kind, v.State.key(), strings.Join(v.Trace, "\n  "))
}

// Options bound the exploration.
type Options struct {
	MaxDepth  int // maximum schedule length (default 10 000)
	MaxStates int // memoized-state budget (default 1 000 000)
}

// Check exhaustively explores every interleaving of the program under the
// relay-signaling discipline and returns the first violation found, or
// nil if every schedule satisfies the invariants and terminates.
func Check(p Program, opts Options) error {
	if opts.MaxDepth == 0 {
		opts.MaxDepth = 10000
	}
	if opts.MaxStates == 0 {
		opts.MaxStates = 1_000_000
	}
	init := &config{state: p.Init.clone(), threads: make([]threadStatus, len(p.Threads))}
	e := &explorer{prog: p, opts: opts, seen: map[string]bool{}}
	return e.dfs(init, nil)
}

type explorer struct {
	prog Program
	opts Options
	seen map[string]bool
}

// runnable reports whether thread i can take a step in c: it has ops left
// and is not parked (parked threads move only via relay signals, which
// happen inside steps, not as scheduler choices — matching the runtime,
// where a signaled thread becomes ready).
func (e *explorer) runnable(c *config, i int) bool {
	t := c.threads[i]
	if t.pc >= len(e.prog.Threads[i].Ops) {
		return false
	}
	return !t.waiting || t.signaled
}

func (e *explorer) dfs(c *config, trace []string) error {
	if len(trace) > e.opts.MaxDepth {
		return &Violation{Kind: "depth bound exceeded (livelock?)", Trace: trace, State: c.state}
	}
	k := c.key()
	if e.seen[k] {
		return nil
	}
	if len(e.seen) >= e.opts.MaxStates {
		return fmt.Errorf("simcheck: state budget (%d) exhausted", e.opts.MaxStates)
	}
	e.seen[k] = true

	anyRunnable := false
	anyUnfinished := false
	for i := range c.threads {
		if c.threads[i].pc < len(e.prog.Threads[i].Ops) {
			anyUnfinished = true
		}
		if e.runnable(c, i) {
			anyRunnable = true
		}
	}
	if !anyUnfinished {
		return nil // full termination on this schedule: success leaf
	}
	if !anyRunnable {
		return &Violation{Kind: "deadlock (threads waiting, none signaled)", Trace: trace, State: c.state}
	}

	for i := range c.threads {
		if !e.runnable(c, i) {
			continue
		}
		next := c.clone()
		label, err := e.step(next, i)
		step := fmt.Sprintf("%s: %s", e.prog.Threads[i].Name, label)
		if err != nil {
			if v, ok := err.(*Violation); ok {
				v.Trace = append(append([]string{}, trace...), step)
				return v
			}
			return err
		}
		if err := e.dfs(next, append(trace, step)); err != nil {
			return err
		}
	}
	return nil
}

// step executes one atomic move of thread i in c: entering the monitor,
// evaluating its guard, running its body or parking, and applying the
// relay-signaling rule on the way out. The entire move is atomic — the
// monitor is held throughout — so scheduler choices happen only between
// monitor sections, exactly as in the runtime.
func (e *explorer) step(c *config, i int) (string, error) {
	t := &c.threads[i]
	op := e.prog.Threads[i].Ops[t.pc]

	if t.waiting {
		// The thread was signaled: it re-enters and re-checks its guard.
		t.signaled = false
		if !op.Guard(c.state) {
			// Futile wake-up: the predicate was true when the signal was
			// sent, but a thread that never blocked barged in first and
			// falsified it. The Fig. 6 do-while handles this: relay (the
			// pre-wait relay) and park again.
			e.relay(c)
			return op.Name + " (futile wake)", e.invariants(c)
		}
		t.waiting = false
		if op.Body != nil {
			op.Body(c.state)
		}
		t.pc++
		e.relay(c)
		return op.Name + " (resumed)", e.invariants(c)
	}

	if op.Guard != nil && !op.Guard(c.state) {
		// waituntil with a false predicate: relay (the pre-wait relay of
		// Fig. 6), then park.
		t.waiting = true
		e.relay(c)
		return op.Name + " (parked)", e.invariants(c)
	}
	if op.Body != nil {
		op.Body(c.state)
	}
	t.pc++
	e.relay(c)
	return op.Name, e.invariants(c)
}

// relay applies the relay-signaling rule: if no signal is pending and
// some parked thread's guard is true, signal exactly one such thread.
func (e *explorer) relay(c *config) {
	for i := range c.threads {
		if c.threads[i].waiting && c.threads[i].signaled {
			return // a signal is already pending: an active thread exists
		}
	}
	for i := range c.threads {
		t := &c.threads[i]
		if !t.waiting || t.signaled {
			continue
		}
		if e.prog.Threads[i].Ops[t.pc].Guard(c.state) {
			t.signaled = true
			return
		}
	}
}

// invariants checks relay invariance (Definition 4): if any waiter's
// predicate is true, some thread is active — not waiting, or signaled.
func (e *explorer) invariants(c *config) error {
	waiterTrue := false
	active := false
	for i := range c.threads {
		t := c.threads[i]
		done := t.pc >= len(e.prog.Threads[i].Ops)
		switch {
		case t.waiting && t.signaled:
			active = true
		case t.waiting:
			if e.prog.Threads[i].Ops[t.pc].Guard(c.state) {
				waiterTrue = true
			}
		case !done:
			active = true
		}
	}
	if waiterTrue && !active {
		return &Violation{Kind: "relay invariance (Definition 4)", State: c.state.clone()}
	}
	return nil
}
