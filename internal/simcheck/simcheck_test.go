package simcheck

import (
	"strings"
	"testing"
)

func TestBoundedBufferAllInterleavings(t *testing.T) {
	// 2 producers × 2 consumers × 3 ops each, capacity 1: the tightest
	// coupling. Every interleaving must terminate with the invariants
	// intact. (The builder lives in corpus.go; "bounded-buffer" names
	// this exact instance.)
	if err := Check(BoundedBuffer(1, 2, 2, 3), Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestBoundedBufferLargerCapacity(t *testing.T) {
	if err := Check(BoundedBuffer(2, 2, 2, 4), Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestParameterizedHandoff(t *testing.T) {
	// The paper's §4.2 running example: a consumer waits for 32 items
	// while only 24 exist; a producer adds 16 and must relay the signal
	// on exit. Every schedule must see the consumer released.
	p := Program{
		Init: State{"count": 24},
		Threads: []Thread{
			{Name: "consumer", Ops: []Op{
				Wait("take32", func(s State) bool { return s["count"] >= 32 },
					func(s State) { s["count"] -= 32 }),
			}},
			{Name: "producer", Ops: []Op{
				Step("put16", func(s State) { s["count"] += 16 }),
			}},
		},
	}
	if err := Check(p, Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundRobinRing(t *testing.T) {
	// Three threads take turns twice each; termination on every schedule
	// requires every relay to reach the unique eligible waiter.
	mk := func(id int64, n int64) Thread {
		var ops []Op
		for j := 0; j < 2; j++ {
			ops = append(ops, Wait("turn", func(s State) bool { return s["turn"] == id },
				func(s State) { s["turn"] = (s["turn"] + 1) % n }))
		}
		return Thread{Name: "rr", Ops: ops}
	}
	p := Program{Init: State{"turn": 0}, Threads: []Thread{mk(0, 3), mk(1, 3), mk(2, 3)}}
	if err := Check(p, Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestH2OTrio(t *testing.T) {
	// Two hydrogens and one oxygen forming one molecule, all schedules.
	hOffer := func(s State) { s["hAvail"]++ }
	hWait := func(s State) bool { return s["hBonded"] > 0 }
	hTake := func(s State) { s["hBonded"]-- }
	p := Program{
		Init: State{"hAvail": 0, "hBonded": 0},
		Threads: []Thread{
			{Name: "H1", Ops: []Op{Step("offer", hOffer), Wait("bond", hWait, hTake)}},
			{Name: "H2", Ops: []Op{Step("offer", hOffer), Wait("bond", hWait, hTake)}},
			{Name: "O", Ops: []Op{
				Wait("form", func(s State) bool { return s["hAvail"] >= 2 },
					func(s State) { s["hAvail"] -= 2; s["hBonded"] += 2 }),
			}},
		},
	}
	if err := Check(p, Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestDetectsGenuineDeadlock(t *testing.T) {
	// A waiter whose predicate can never become true must be reported as
	// a deadlock, not explored forever.
	p := Program{
		Init: State{"x": 0},
		Threads: []Thread{
			{Name: "stuck", Ops: []Op{
				Wait("never", func(s State) bool { return s["x"] > 0 }, nil),
			}},
		},
	}
	err := Check(p, Options{})
	if err == nil {
		t.Fatal("expected a deadlock violation")
	}
	if !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("wrong violation: %v", err)
	}
}

func TestDetectsDeadlockFromMissedPairing(t *testing.T) {
	// The bug the H2O rework fixed (one hydrogen cannot pair with
	// itself): a single H thread with two sequential offer/bond rounds
	// against an O needing two offers at once deadlocks on every
	// schedule; the checker must find it.
	hOffer := func(s State) { s["hAvail"]++ }
	hWait := func(s State) bool { return s["hBonded"] > 0 }
	hTake := func(s State) { s["hBonded"]-- }
	p := Program{
		Init: State{"hAvail": 0, "hBonded": 0},
		Threads: []Thread{
			{Name: "H", Ops: []Op{
				Step("offer", hOffer), Wait("bond", hWait, hTake),
				Step("offer", hOffer), Wait("bond", hWait, hTake),
			}},
			{Name: "O", Ops: []Op{
				Wait("form", func(s State) bool { return s["hAvail"] >= 2 },
					func(s State) { s["hAvail"] -= 2; s["hBonded"] += 2 }),
			}},
		},
	}
	err := Check(p, Options{})
	if err == nil {
		t.Fatal("expected a deadlock violation")
	}
	if !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("wrong violation: %v", err)
	}
}

func TestViolationCarriesTrace(t *testing.T) {
	p := Program{
		Init: State{"x": 0},
		Threads: []Thread{
			{Name: "a", Ops: []Op{Step("bump", func(s State) { s["x"]++ })}},
			{Name: "b", Ops: []Op{Wait("never", func(s State) bool { return s["x"] > 5 }, nil)}},
		},
	}
	err := Check(p, Options{})
	if err == nil {
		t.Fatal("expected violation")
	}
	v, ok := err.(*Violation)
	if !ok {
		t.Fatalf("expected *Violation, got %T", err)
	}
	if len(v.Trace) == 0 {
		t.Error("violation has no trace")
	}
	if !strings.Contains(v.Error(), "trace:") {
		t.Errorf("Error() lacks trace: %s", v.Error())
	}
}

func TestDepthBound(t *testing.T) {
	// Two threads ping-ponging forever exceed any depth bound; the
	// checker reports it instead of hanging. (State memoization would
	// normally prune this; an ever-growing counter defeats it.)
	p := Program{
		Init: State{"x": 0},
		Threads: []Thread{
			{Name: "spin", Ops: func() []Op {
				var ops []Op
				for i := 0; i < 60; i++ {
					ops = append(ops, Step("inc", func(s State) { s["x"]++ }))
				}
				return ops
			}()},
		},
	}
	err := Check(p, Options{MaxDepth: 10})
	if err == nil || !strings.Contains(err.Error(), "depth bound") {
		t.Fatalf("expected depth-bound violation, got %v", err)
	}
}

func TestStateBudget(t *testing.T) {
	p := BoundedBuffer(2, 2, 2, 4)
	err := Check(p, Options{MaxStates: 10})
	if err == nil || !strings.Contains(err.Error(), "state budget") {
		t.Fatalf("expected state-budget error, got %v", err)
	}
}

func TestStateKeyDeterministic(t *testing.T) {
	a := State{"x": 1, "y": 2}
	b := State{"y": 2, "x": 1}
	if a.key() != b.key() {
		t.Errorf("keys differ: %q vs %q", a.key(), b.key())
	}
	c := a.clone()
	c["x"] = 9
	if a["x"] != 1 {
		t.Error("clone aliases the original")
	}
}

func TestBarberMini(t *testing.T) {
	// One barber, two customers, one visit each; chairs unbounded at
	// this scale. All interleavings must serve both.
	p := Program{
		Init: State{"waiting": 0, "cuts": 0, "stop": 0},
		Threads: []Thread{
			{Name: "barber", Ops: []Op{
				Wait("serve", func(s State) bool { return s["waiting"] > 0 },
					func(s State) { s["waiting"]--; s["cuts"]++ }),
				Wait("serve", func(s State) bool { return s["waiting"] > 0 },
					func(s State) { s["waiting"]--; s["cuts"]++ }),
			}},
			{Name: "cust1", Ops: []Op{
				Step("sit", func(s State) { s["waiting"]++ }),
				Wait("cut", func(s State) bool { return s["cuts"] > 0 },
					func(s State) { s["cuts"]-- }),
			}},
			{Name: "cust2", Ops: []Op{
				Step("sit", func(s State) { s["waiting"]++ }),
				Wait("cut", func(s State) bool { return s["cuts"] > 0 },
					func(s State) { s["cuts"]-- }),
			}},
		},
	}
	if err := Check(p, Options{}); err != nil {
		t.Fatal(err)
	}
}
