package simcheck

import (
	"testing"
	"time"

	"repro/internal/problems"
)

// TestDifferentialShapes runs every Shape both ways: the model program
// explored exhaustively with nondeterministic relay targets (so the
// model's terminal set over-approximates anything the real tag
// structures may do), and the concrete scenario against the real
// mechanisms under the race detector. Every real outcome must be a
// model-reachable terminal state.
func TestDifferentialShapes(t *testing.T) {
	const runsPerMech = 5

	for _, shape := range Shapes() {
		shape := shape
		t.Run(shape.Name, func(t *testing.T) {
			res, err := Explore(shape.Model, Options{RelayNondet: true})
			if err != nil {
				t.Fatalf("model exploration: %v", err)
			}
			terminals := res.TerminalSet()
			if len(terminals) == 0 {
				t.Fatal("model reached no terminal state")
			}
			t.Logf("model: %d states, %d terminals", res.States, len(terminals))

			mechs := shape.Mechs
			if mechs == nil {
				mechs = problems.All
			}
			for _, mech := range mechs {
				mech := mech
				t.Run(mech.String(), func(t *testing.T) {
					t.Parallel()
					for run := 0; run < runsPerMech; run++ {
						outcome := runWithWatchdog(t, shape, mech)
						if _, ok := terminals[outcome.key()]; !ok {
							t.Fatalf("run %d: real outcome %s is not a model-reachable terminal; model has %v",
								run, outcome.key(), keysOf(terminals))
						}
					}
				})
			}
		})
	}
}

// runWithWatchdog runs the shape's concrete scenario, failing the test
// if it does not complete — a hang here is exactly the class of bug the
// model checks for, so report it as such instead of letting the test
// binary time out.
func runWithWatchdog(t *testing.T, shape Shape, mech problems.Mechanism) State {
	t.Helper()
	done := make(chan State, 1)
	go func() { done <- shape.Run(mech) }()
	select {
	case s := <-done:
		return s
	case <-time.After(30 * time.Second):
		t.Fatalf("%s on %s: real scenario did not terminate (blocked goroutine?)", shape.Name, mech)
		return nil
	}
}

func keysOf(set map[string]State) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	return out
}
