package simcheck

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// machine is a compiled program: ops with counter monitors resolved, the
// monitor count, counter runtime metadata, and the canonical variable
// order that makes state hashing stable.
type machine struct {
	prog     Program
	threads  [][]Op
	numMons  int
	counters map[string]*counterRT
	vars     []string
	opts     Options
}

// counterRT is the resolved runtime view of a CounterSpec: its summary
// monitor id and the reserved state keys holding its batching state.
type counterRT struct {
	spec     CounterSpec
	summary  int
	pendKeys []string
	totalKey string
	epKey    string
	watchKey string
}

func compile(p Program, opts Options) (*machine, error) {
	mc := &machine{prog: p, opts: opts, counters: map[string]*counterRT{}}
	maxMon := 0
	note := func(m int) {
		if m > maxMon {
			maxMon = m
		}
	}
	for _, t := range p.Threads {
		for _, op := range t.Ops {
			note(op.Mon)
			for _, cs := range op.Cases {
				note(cs.Mon)
			}
		}
	}
	for _, cs := range p.Counters {
		for _, m := range cs.ShardMons {
			note(m)
		}
	}
	mc.numMons = maxMon + 1

	state := p.Init.clone()
	for _, cs := range p.Counters {
		if cs.Name == "" || len(cs.ShardMons) == 0 {
			return nil, fmt.Errorf("simcheck: counter needs a name and shard monitors")
		}
		if _, dup := mc.counters[cs.Name]; dup {
			return nil, fmt.Errorf("simcheck: counter %q declared twice", cs.Name)
		}
		if cs.Threshold < 1 {
			cs.Threshold = 1
		}
		rt := &counterRT{
			spec:     cs,
			summary:  mc.numMons,
			totalKey: "#" + cs.Name + ".total",
			epKey:    "#" + cs.Name + ".ep",
			watchKey: "#" + cs.Name + ".watch",
		}
		mc.numMons++
		for i := range cs.ShardMons {
			k := fmt.Sprintf("#%s.pend%d", cs.Name, i)
			rt.pendKeys = append(rt.pendKeys, k)
			state[k] = 0
		}
		state[rt.totalKey] = 0
		state[rt.epKey] = 0
		state[rt.watchKey] = 0
		mc.counters[cs.Name] = rt
	}
	mc.prog.Init = state

	for ti, t := range p.Threads {
		ops := append([]Op(nil), t.Ops...)
		for oi := range ops {
			op := &ops[oi]
			switch op.Kind {
			case OpCounterAdd, OpCounterWait:
				rt, ok := mc.counters[op.Counter]
				if !ok {
					return nil, fmt.Errorf("simcheck: thread %d op %q uses undeclared counter %q", ti, op.Name, op.Counter)
				}
				if op.Kind == OpCounterAdd {
					if op.Shard < 0 || op.Shard >= len(rt.pendKeys) {
						return nil, fmt.Errorf("simcheck: thread %d op %q: counter %q has no shard %d", ti, op.Name, op.Counter, op.Shard)
					}
					op.Mon = rt.spec.ShardMons[op.Shard]
				}
			case OpSelect:
				if len(op.Cases) == 0 {
					return nil, fmt.Errorf("simcheck: thread %d op %q: Select with no cases", ti, op.Name)
				}
			}
		}
		mc.threads = append(mc.threads, ops)
	}

	mc.vars = make([]string, 0, len(state))
	for k := range state {
		mc.vars = append(mc.vars, k)
	}
	sort.Strings(mc.vars)
	return mc, nil
}

// observe projects a terminal state for comparison: the program's
// Observe hook, or by default everything except '#'-internal keys.
func (mc *machine) observe(s State) State {
	if mc.prog.Observe != nil {
		return mc.prog.Observe(s)
	}
	out := State{}
	for k, v := range s {
		if len(k) > 0 && k[0] == '#' {
			continue
		}
		out[k] = v
	}
	return out
}

// phase is where a thread stands between atomic steps.
type phase uint8

const (
	phRun       phase = iota // execute the op at pc
	phBlocked                // parked on a blocking wait
	phSelPoll                // Select: polling case sub
	phSelArm                 // Select: arming case sub
	phSelPark                // Select: parked on the shared delivery
	phSelCancel              // Select: cancelling losers (sub scans cases)
	phCwFlush                // counter wait: flushing shard sub
	phCwTry                  // counter wait: first summary evaluation
	phCwBlocked              // counter wait: parked on the summary
	phExpired                // deadline wait: timer fired, expiry section pending
	phDone                   // program finished
	phPanicked               // terminated by a panicking body
)

// threadStatus tracks one virtual thread through the exploration.
type threadStatus struct {
	pc     int
	ph     phase
	sub    int // case / shard index within a multi-section op
	winner int // Select winner case during phSelCancel
}

func (t threadStatus) done() bool { return t.ph == phDone || t.ph == phPanicked }

// waiter is one registered waiter of one monitor: a parked blocking
// wait, an armed handle, or an armed Select case. Registration order is
// the slice order in config.waiters — the deterministic relay pick.
type waiter struct {
	mon      int
	thread   int
	pc       int
	caseIdx  int    // Select case index; -1 otherwise
	slot     string // handle slot; "" otherwise
	pred     Pred
	notified bool
	viaRelay bool // this notification is the monitor's in-flight relay signal
}

// config is one node of the interleaving tree.
type config struct {
	state   State
	threads []threadStatus
	waiters []waiter
}

func newConfig(mc *machine) *config {
	c := &config{state: mc.prog.Init.clone(), threads: make([]threadStatus, len(mc.threads))}
	for ti := range c.threads {
		c.threads[ti].winner = -1
		if len(mc.threads[ti]) == 0 {
			c.threads[ti].ph = phDone
		}
	}
	return c
}

func (c *config) clone() *config {
	ts := make([]threadStatus, len(c.threads))
	copy(ts, c.threads)
	ws := make([]waiter, len(c.waiters))
	copy(ws, c.waiters)
	return &config{state: c.state.clone(), threads: ts, waiters: ws}
}

// hash is the 128-bit memoization key over the canonical encoding of
// state, thread statuses, and the waiter table.
func (mc *machine) hash(c *config) [16]byte {
	h := fnv.New128a()
	var buf [8]byte
	putU64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	for _, k := range mc.vars {
		putU64(uint64(c.state[k]))
	}
	for _, t := range c.threads {
		putU64(uint64(t.pc)<<32 | uint64(t.ph)<<16 | uint64(uint8(t.sub))<<8 | uint64(uint8(t.winner+1)))
	}
	for _, w := range c.waiters {
		bits := uint64(w.mon)<<40 | uint64(w.thread)<<24 | uint64(w.pc)<<8
		if w.notified {
			bits |= 2
		}
		if w.viaRelay {
			bits |= 1
		}
		putU64(bits)
		putU64(uint64(w.caseIdx + 1))
	}
	var out [16]byte
	h.Sum(out[:0])
	return out
}

// findWaiter locates a thread's waiter: by slot for handles, by case
// index (with slot "") for Select and blocking waits (caseIdx -1).
func (c *config) findWaiter(thread int, slot string, caseIdx int) int {
	for i := range c.waiters {
		w := &c.waiters[i]
		if w.thread == thread && w.slot == slot && w.caseIdx == caseIdx {
			return i
		}
	}
	return -1
}

func (c *config) removeWaiter(i int) {
	c.waiters = append(c.waiters[:i:i], c.waiters[i+1:]...)
}

func (c *config) register(w waiter) {
	c.waiters = append(c.waiters[:len(c.waiters):len(c.waiters)], w)
}

// pending reports whether a relay signal is in flight on mon.
func (c *config) pending(mon int) bool {
	for i := range c.waiters {
		if c.waiters[i].mon == mon && c.waiters[i].viaRelay {
			return true
		}
	}
	return false
}

// chooser resolves a step's internal nondeterminism (relay targets,
// Select claim order): scripted picks first, then the fallback — 0 for
// DFS enumeration (the odometer rewrites the script), the rng for
// fuzzing. Every pick is recorded in taken, so any executed step can be
// replayed exactly.
type chooser struct {
	script []int
	pos    int
	taken  []int
	arity  []int
	rand   func(n int) int
}

func (ch *chooser) pick(n int) int {
	if n <= 0 {
		panic("simcheck: chooser.pick with no options")
	}
	v := 0
	if ch.pos < len(ch.script) {
		v = ch.script[ch.pos]
		if v >= n {
			v = n - 1
		}
	} else if ch.rand != nil {
		v = ch.rand(n)
	}
	ch.pos++
	ch.taken = append(ch.taken, v)
	ch.arity = append(ch.arity, n)
	return v
}

// consume settles the in-flight-signal accounting when a notified waiter
// proceeds or is reconciled; it reports whether the waiter held the
// relay signal.
func consume(w *waiter) bool {
	was := w.viaRelay
	w.viaRelay = false
	return was
}

// relay applies the relay-signaling rule on mon: if no signal is in
// flight and some unnotified waiter's predicate is true, signal exactly
// one such waiter. The deterministic pick is registration order; with
// RelayNondet every eligible target is a branch.
func (mc *machine) relay(c *config, mon int, ch *chooser) {
	if mc.opts.DisableRelay {
		return
	}
	if c.pending(mon) {
		return
	}
	var cands []int
	for i := range c.waiters {
		w := &c.waiters[i]
		if w.mon == mon && !w.notified && w.pred(c.state) {
			cands = append(cands, i)
			if !mc.opts.RelayNondet {
				break
			}
		}
	}
	if len(cands) == 0 {
		return
	}
	pick := cands[0]
	if mc.opts.RelayNondet && len(cands) > 1 {
		pick = cands[ch.pick(len(cands))]
	}
	c.waiters[pick].notified = true
	c.waiters[pick].viaRelay = true
}

// cancelWaiter unregisters waiter i with the real Cancel's relay repair:
// reconcile any in-flight signal addressed to it, then relay onward.
func (mc *machine) cancelWaiter(c *config, i int, ch *chooser) {
	w := &c.waiters[i]
	mon := w.mon
	consume(w)
	c.removeWaiter(i)
	if !mc.opts.DisableCancelRepair {
		mc.relay(c, mon, ch)
	}
}

// runnable reports whether thread ti can take a step in c.
func (mc *machine) runnable(c *config, ti int) bool {
	t := c.threads[ti]
	if t.done() {
		return false
	}
	ref := mc.opts.Reference
	switch t.ph {
	case phRun:
		op := mc.threads[ti][t.pc]
		if op.Kind == OpClaim {
			wi := c.findWaiter(ti, op.Slot, -1)
			if wi < 0 {
				return true // spent slot: the ErrClaimed no-op
			}
			w := &c.waiters[wi]
			return w.notified || (ref && w.pred(c.state))
		}
		return true
	case phSelPoll, phSelArm, phSelCancel, phCwFlush, phCwTry, phExpired:
		return true
	case phBlocked, phCwBlocked:
		if t.ph == phBlocked && mc.threads[ti][t.pc].Kind == OpWaitDeadline {
			return true // the deadline timer is always eligible to fire
		}
		wi := c.findWaiter(ti, "", -1)
		if wi < 0 {
			return false
		}
		w := &c.waiters[wi]
		return w.notified || (ref && w.pred(c.state))
	case phSelPark:
		return len(mc.claimable(c, ti)) > 0
	}
	return false
}

// claimable lists the Select cases of thread ti whose waiters may be
// claimed now: notified ones (delivery order is a scheduler choice), or
// any true-predicate one under the reference semantics.
func (mc *machine) claimable(c *config, ti int) []int {
	t := c.threads[ti]
	op := mc.threads[ti][t.pc]
	var out []int
	for k := range op.Cases {
		wi := c.findWaiter(ti, "", k)
		if wi < 0 {
			continue
		}
		w := &c.waiters[wi]
		if w.notified || (mc.opts.Reference && w.pred(c.state)) {
			out = append(out, k)
		}
	}
	return out
}

// footprint returns the monitors (and counters) thread ti's next step
// can touch, for the sleep-set independence relation. Conservative: a
// multi-section op reports the union over its sections.
type footprint struct {
	mons     []int
	counters []string
	vars     []string
}

func (mc *machine) footprint(c *config, ti int) footprint {
	t := c.threads[ti]
	if t.done() {
		return footprint{}
	}
	op := mc.threads[ti][t.pc]
	switch op.Kind {
	case OpSelect:
		var mons []int
		for _, cs := range op.Cases {
			mons = append(mons, cs.Mon)
		}
		return footprint{mons: mons, vars: op.Vars}
	case OpCounterAdd:
		rt := mc.counters[op.Counter]
		return footprint{mons: []int{op.Mon, rt.summary}, counters: []string{op.Counter}, vars: op.Vars}
	case OpCounterWait:
		rt := mc.counters[op.Counter]
		mons := append(append([]int(nil), rt.spec.ShardMons...), rt.summary)
		return footprint{mons: mons, counters: []string{op.Counter}, vars: op.Vars}
	case OpClaim, OpCancel:
		mon := op.Mon
		if wi := c.findWaiter(ti, op.Slot, -1); wi >= 0 {
			mon = c.waiters[wi].mon
		}
		return footprint{mons: []int{mon}, vars: op.Vars}
	default:
		return footprint{mons: []int{op.Mon}, vars: op.Vars}
	}
}

func intersects(a, b []int) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}

func intersectsStr(a, b []string) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}

// independent reports whether the next steps of two threads commute:
// disjoint monitor sets, disjoint counters, disjoint declared extras.
func (mc *machine) independent(c *config, ta, tb int) bool {
	fa, fb := mc.footprint(c, ta), mc.footprint(c, tb)
	return !intersects(fa.mons, fb.mons) &&
		!intersectsStr(fa.counters, fb.counters) &&
		!intersectsStr(fa.vars, fb.vars)
}

// counterPublish moves shard slot si's pending delta of counter rt into
// the summary monitor (total, epoch) and relays there — the model of
// Counter.publish, running under the shard's monitor.
func (mc *machine) counterPublish(c *config, rt *counterRT, si int, ch *chooser) {
	d := c.state[rt.pendKeys[si]]
	if d == 0 {
		return
	}
	c.state[rt.pendKeys[si]] = 0
	c.state[rt.totalKey] += d
	c.state[rt.epKey]++
	mc.relay(c, rt.summary, ch)
}

// exec runs one atomic step of thread ti, mutating c, and returns the
// trace label plus any invariant violation detected inside the step.
// The caller has verified runnable(c, ti).
func (mc *machine) exec(c *config, ti int, ch *chooser) (string, *Violation) {
	t := &c.threads[ti]
	ops := mc.threads[ti]
	op := ops[t.pc]
	name := mc.prog.Threads[ti].Name + ": " + op.Name

	advance := func() {
		t.pc++
		t.sub = 0
		t.winner = -1
		if op.Panics {
			t.ph = phPanicked
		} else if t.pc >= len(ops) {
			t.ph = phDone
		} else {
			t.ph = phRun
		}
	}
	runBody := func(b Action) {
		if b != nil {
			b(c.state)
		}
	}

	var label string
	switch t.ph {
	case phRun:
		switch op.Kind {
		case OpStep:
			runBody(op.Body)
			mc.relay(c, op.Mon, ch)
			advance()
			label = name

		case OpWait, OpWaitDeadline:
			if op.Guard(c.state) {
				runBody(op.Body)
				advance()
				mc.relay(c, op.Mon, ch)
				label = name
				break
			}
			c.register(waiter{mon: op.Mon, thread: ti, pc: t.pc, caseIdx: -1, pred: op.Guard})
			mc.relay(c, op.Mon, ch) // the pre-wait relay of Fig. 6
			t.ph = phBlocked
			label = name + " (parked)"

		case OpTry:
			if op.Guard(c.state) {
				runBody(op.Body)
				label = name + " (hit)"
			} else {
				runBody(op.Else)
				label = name + " (miss)"
			}
			mc.relay(c, op.Mon, ch)
			advance()

		case OpArm:
			w := waiter{mon: op.Mon, thread: ti, pc: t.pc, caseIdx: -1, slot: op.Slot, pred: op.Guard}
			label = name + " (armed)"
			if op.Guard(c.state) {
				// The arm-time free notification: no relay signal is
				// consumed, and ArmFunc's raw unlock does not relay.
				w.notified = true
				label = name + " (armed, ready)"
			}
			c.register(w)
			advance()

		case OpClaim:
			wi := c.findWaiter(ti, op.Slot, -1)
			if wi < 0 {
				advance()
				label = name + " (spent)"
				break
			}
			w := &c.waiters[wi]
			mon := w.mon
			wasRelay := consume(w)
			if w.pred(c.state) {
				c.removeWaiter(wi)
				runBody(op.Body)
				advance()
				mc.relay(c, mon, ch)
				label = name + " (claimed)"
				break
			}
			w.notified = false // transparent re-arm: ErrNotReady
			if wasRelay {
				mc.relay(c, mon, ch)
			}
			label = name + " (futile claim)"

		case OpCancel:
			if wi := c.findWaiter(ti, op.Slot, -1); wi >= 0 {
				mc.cancelWaiter(c, wi, ch)
			}
			advance()
			label = name + " (cancelled)"

		case OpSelect:
			// First scheduler slot of a Select is its first poll.
			t.ph = phSelPoll
			t.sub = 0
			return mc.execSelect(c, ti, ch, name)

		case OpCounterAdd:
			rt := mc.counters[op.Counter]
			runBody(op.Body)
			c.state[rt.pendKeys[op.Shard]] += op.Delta
			p := c.state[rt.pendKeys[op.Shard]]
			if p < 0 {
				p = -p
			}
			if p >= rt.spec.Threshold || c.state[rt.watchKey] > 0 {
				mc.counterPublish(c, rt, op.Shard, ch)
			}
			mc.relay(c, op.Mon, ch)
			advance()
			label = name

		case OpCounterWait:
			// Enter precise mode; flushing and parking follow as
			// separate sections, exactly like Watch + Flush + Await.
			rt := mc.counters[op.Counter]
			c.state[rt.watchKey]++
			t.ph = phCwFlush
			t.sub = 0
			label = name + " (watch)"
		}

	case phBlocked:
		wi := c.findWaiter(ti, "", -1)
		w := &c.waiters[wi]
		if op.Kind == OpWaitDeadline {
			// A parked deadline'd waiter has up to two enabled branches:
			// the signaled resume (when it would be runnable as a plain
			// wait) and the timer firing. When both are enabled the pick
			// is a scheduler choice — branch 1 is the timer winning the
			// race against an already-delivered signal.
			resumable := w.notified || (mc.opts.Reference && w.pred(c.state))
			if !resumable || ch.pick(2) == 1 {
				// Timer fires: unregister with Cancel's relay repair —
				// reconcile any in-flight signal addressed to this
				// waiter and relay it onward. The expiry continuation
				// and its exit relay run as a separate section
				// (phExpired), so a skipped repair's lost signal is
				// visible to the invariant checker in between, exactly
				// the window where the real bug loses a wake-up.
				mc.cancelWaiter(c, wi, ch)
				t.ph = phExpired
				label = name + " (deadline)"
				break
			}
		}
		mon := w.mon
		consume(w)
		if op.Guard(c.state) {
			c.removeWaiter(wi)
			runBody(op.Body)
			advance()
			mc.relay(c, mon, ch)
			label = name + " (resumed)"
			break
		}
		// Futile wake-up: a barging thread falsified the predicate
		// between signal and re-entry. Re-wait through the Fig. 6
		// do-while: re-arm and relay before parking again.
		w.notified = false
		mc.relay(c, mon, ch)
		label = name + " (futile wake)"

	case phExpired:
		// The expiry continuation: the caller's ErrDeadline fallback runs
		// under the re-acquired monitor, then the monitor exit relays.
		runBody(op.Else)
		advance()
		mc.relay(c, op.Mon, ch)
		label = name + " (expired)"

	case phSelPoll, phSelArm, phSelPark, phSelCancel:
		return mc.execSelect(c, ti, ch, name)

	case phCwFlush:
		rt := mc.counters[op.Counter]
		si := t.sub
		mc.counterPublish(c, rt, si, ch)
		mc.relay(c, rt.spec.ShardMons[si], ch) // the DoShard exit
		t.sub++
		if t.sub >= len(rt.pendKeys) {
			t.ph = phCwTry
			t.sub = 0
		}
		label = fmt.Sprintf("%s (flush %d)", name, si)

	case phCwTry:
		rt := mc.counters[op.Counter]
		if c.state[rt.totalKey] >= op.Bound {
			c.state[rt.watchKey]--
			advance()
			mc.relay(c, rt.summary, ch)
			label = name + " (ready)"
			break
		}
		bound := op.Bound
		totalKey := rt.totalKey
		c.register(waiter{mon: rt.summary, thread: ti, pc: t.pc, caseIdx: -1,
			pred: func(s State) bool { return s[totalKey] >= bound }})
		mc.relay(c, rt.summary, ch)
		t.ph = phCwBlocked
		label = name + " (parked)"

	case phCwBlocked:
		rt := mc.counters[op.Counter]
		wi := c.findWaiter(ti, "", -1)
		w := &c.waiters[wi]
		consume(w)
		if c.state[rt.totalKey] >= op.Bound {
			c.removeWaiter(wi)
			c.state[rt.watchKey]--
			advance()
			mc.relay(c, rt.summary, ch)
			label = name + " (resumed)"
			break
		}
		w.notified = false
		mc.relay(c, rt.summary, ch)
		label = name + " (futile wake)"
	}

	return label, mc.invariants(c)
}

// execSelect runs one atomic section of a Select: a poll, an arm, a
// claim attempt, or one loser cancellation.
func (mc *machine) execSelect(c *config, ti int, ch *chooser, name string) (string, *Violation) {
	t := &c.threads[ti]
	op := mc.threads[ti][t.pc]

	finish := func() {
		pc := t.pc + 1
		if op.Panics {
			t.ph = phPanicked
		} else if pc >= len(mc.threads[ti]) {
			t.ph = phDone
		} else {
			t.ph = phRun
		}
		t.pc = pc
		t.sub = 0
		t.winner = -1
	}

	var label string
	switch t.ph {
	case phSelPoll:
		cs := op.Cases[t.sub]
		if cs.Pred(c.state) {
			// Poll hit: nothing was armed, nothing to cancel.
			if cs.Body != nil {
				cs.Body(c.state)
			}
			finish()
			mc.relay(c, cs.Mon, ch)
			label = fmt.Sprintf("%s (poll %s hit)", name, cs.Name)
			break
		}
		// A missed Try still exits its monitor — and the exit relays.
		mc.relay(c, cs.Mon, ch)
		label = fmt.Sprintf("%s (poll %s miss)", name, cs.Name)
		t.sub++
		if t.sub >= len(op.Cases) {
			t.ph = phSelArm
			t.sub = 0
		}

	case phSelArm:
		cs := op.Cases[t.sub]
		w := waiter{mon: cs.Mon, thread: ti, pc: t.pc, caseIdx: t.sub, pred: cs.Pred}
		label = fmt.Sprintf("%s (arm %s)", name, cs.Name)
		if cs.Pred(c.state) {
			w.notified = true // arm-time free notification
			label = fmt.Sprintf("%s (arm %s, ready)", name, cs.Name)
		}
		c.register(w)
		t.sub++
		if t.sub >= len(op.Cases) {
			t.ph = phSelPark
			t.sub = 0
		}

	case phSelPark:
		cands := mc.claimable(c, ti)
		k := cands[0]
		if len(cands) > 1 {
			k = cands[ch.pick(len(cands))]
		}
		cs := op.Cases[k]
		wi := c.findWaiter(ti, "", k)
		w := &c.waiters[wi]
		mon := w.mon
		wasRelay := consume(w)
		if w.pred(c.state) {
			// Winner: claim succeeds with the monitor held, the body
			// runs, the deferred exit relays; losers are cancelled in
			// subsequent sections — after the exit, as in selectCases.
			c.removeWaiter(wi)
			if cs.Body != nil {
				cs.Body(c.state)
			}
			mc.relay(c, mon, ch)
			t.ph = phSelCancel
			t.sub = 0
			t.winner = k
			label = fmt.Sprintf("%s (claim %s)", name, cs.Name)
			break
		}
		w.notified = false // transparent re-arm; subscription survives
		if wasRelay {
			mc.relay(c, mon, ch)
		}
		label = fmt.Sprintf("%s (futile claim %s)", name, cs.Name)

	case phSelCancel:
		k := t.sub
		for k < len(op.Cases) && (k == t.winner || c.findWaiter(ti, "", k) < 0) {
			k++
		}
		if k >= len(op.Cases) {
			// No loser left to cancel (e.g. a two-case select whose
			// loser was already reaped): complete in this section.
			finish()
			label = name + " (done)"
			break
		}
		wi := c.findWaiter(ti, "", k)
		mc.cancelWaiter(c, wi, ch)
		t.sub = k + 1
		label = fmt.Sprintf("%s (cancel %s)", name, op.Cases[k].Name)
		// If that was the last loser, the select is complete; the next
		// section would be a no-op, so finish now.
		done := true
		for j := t.sub; j < len(op.Cases); j++ {
			if j != t.winner && c.findWaiter(ti, "", j) >= 0 {
				done = false
				break
			}
		}
		if done {
			finish()
		}
	}

	return label, mc.invariants(c)
}

// invariants checks relay invariance (Definition 4) in its local
// inductive form after a step: for every monitor, if some unnotified
// waiter's predicate is true, a relay signal must be in flight there.
// Skipped under the reference semantics, where signaling is advisory.
func (mc *machine) invariants(c *config) *Violation {
	if mc.opts.Reference {
		return nil
	}
	for i := range c.waiters {
		w := &c.waiters[i]
		if w.notified || !w.pred(c.state) {
			continue
		}
		if !c.pending(w.mon) {
			return &Violation{
				Kind: fmt.Sprintf("relay invariance (Definition 4): waiter of %q on monitor %d has a true predicate but no signal is in flight",
					mc.prog.Threads[w.thread].Name, w.mon),
				State: c.state.clone(),
			}
		}
	}
	return nil
}

// terminalViolation checks the leak invariants once every thread is
// done: no registered waiter, no in-flight signal, no counter left in
// precise mode.
func (mc *machine) terminalViolation(c *config) *Violation {
	if len(c.waiters) > 0 {
		w := c.waiters[0]
		return &Violation{
			Kind: fmt.Sprintf("leaked waiter: %q left a registered waiter on monitor %d at termination",
				mc.prog.Threads[w.thread].Name, w.mon),
			State: c.state.clone(),
		}
	}
	for _, rt := range mc.counters {
		if c.state[rt.watchKey] != 0 {
			return &Violation{
				Kind:  fmt.Sprintf("leaked watcher: counter %q still in precise mode at termination", rt.spec.Name),
				State: c.state.clone(),
			}
		}
	}
	return nil
}
