package simcheck

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/problems"
	"repro/internal/shard"
)

// This file closes the loop between the model and the real
// implementation: each Shape is one small scenario emitted twice — as a
// simcheck Program whose terminal states are enumerated exhaustively
// (with RelayNondet, since the real tag structures may relay to any
// eligible waiter), and as a concrete goroutine scenario run against a
// real mechanism under -race. The differential check is terminal-state
// membership: every real outcome must be a model-reachable terminal.

// Rig is one concrete monitor under differential test: the mechanism
// plus a pulse that manual-signaling mechanisms need after every
// mutation (a Cond broadcast for Explicit, a no-op elsewhere — the
// model's relay rule is what the automatic mechanisms replace it with).
type Rig struct {
	Mech  core.Mechanism
	Pulse func()
}

// NewRig builds a fresh monitor of the given mechanism.
func NewRig(mech problems.Mechanism) Rig {
	m := problems.NewMechanism(mech)
	r := Rig{Mech: m, Pulse: func() {}}
	if e, ok := m.(*core.Explicit); ok {
		cond := e.NewCond()
		r.Pulse = cond.Broadcast
	}
	return r
}

// Shape pairs a model program with its concrete scenario.
type Shape struct {
	Name  string
	Model Program
	// Run drives the real scenario to completion against mech and
	// returns the observed terminal state, in the model's Observe
	// projection. It must only return once every goroutine it started
	// has finished.
	Run func(mech problems.Mechanism) State
	// Mechs restricts the mechanisms the shape runs against (nil = all
	// four).
	Mechs []problems.Mechanism
}

// Shapes returns the differential scenarios.
func Shapes() []Shape {
	return []Shape{
		bufferShape(),
		handoffShape(),
		raceTakeShape(),
		cancelRepairShape(),
		select2Shape(),
		counterShape(),
		deadlineShape(),
	}
}

// bufferShape: the capacity-1 bounded buffer, 2×2 threads × 2 ops.
// Terminal is always count=0; the differential content is that no
// mechanism deadlocks or overfills on any real schedule.
func bufferShape() Shape {
	run := func(mech problems.Mechanism) State {
		r := NewRig(mech)
		var count int64
		var wg sync.WaitGroup
		work := func(pred func() bool, mut func()) {
			defer wg.Done()
			for i := 0; i < 2; i++ {
				r.Mech.Enter()
				r.Mech.AwaitFunc(pred)
				mut()
				r.Pulse()
				r.Mech.Exit()
			}
		}
		wg.Add(4)
		for i := 0; i < 2; i++ {
			go work(func() bool { return count < 1 }, func() { count++ })
			go work(func() bool { return count > 0 }, func() { count-- })
		}
		wg.Wait()
		return State{"count": count, "cap": 1}
	}
	return Shape{Name: "buffer", Model: BoundedBuffer(1, 2, 2, 2), Run: run}
}

// handoffShape: the §4.2 parameterized handoff — the producer's exit
// must relay to the threshold waiter.
func handoffShape() Shape {
	run := func(mech problems.Mechanism) State {
		r := NewRig(mech)
		count := int64(24)
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			r.Mech.Enter()
			r.Mech.AwaitFunc(func() bool { return count >= 32 })
			count -= 32
			r.Pulse()
			r.Mech.Exit()
		}()
		go func() {
			defer wg.Done()
			r.Mech.Do(func() { count += 16; r.Pulse() })
		}()
		wg.Wait()
		return State{"count": count}
	}
	return Shape{Name: "handoff", Model: MustProgram("handoff"), Run: run}
}

// raceTakeShape: two non-blocking Try takers race one producer. The
// outcome is genuinely nondeterministic — either taker, or neither, gets
// the item — so membership in the model's terminal set is the whole
// assertion.
func raceTakeShape() Shape {
	avail := func(s State) bool { return s["x"] > 0 }
	model := Program{
		Init: State{"x": 0, "a": 0, "b": 0},
		Threads: []Thread{
			{Name: "takerA", Ops: []Op{Try("tryA", avail, func(s State) { s["x"]--; s["a"] = 1 }, nil)}},
			{Name: "takerB", Ops: []Op{Try("tryB", avail, func(s State) { s["x"]--; s["b"] = 1 }, nil)}},
			{Name: "producer", Ops: []Op{Step("produce", func(s State) { s["x"]++ })}},
		},
	}
	run := func(mech problems.Mechanism) State {
		r := NewRig(mech)
		var x, a, b int64
		var wg sync.WaitGroup
		take := func(flag *int64) {
			defer wg.Done()
			r.Mech.WhenFunc(func() bool { return x > 0 }).Try(func() {
				x--
				*flag = 1
				r.Pulse()
			})
		}
		wg.Add(3)
		go take(&a)
		go take(&b)
		go func() {
			defer wg.Done()
			r.Mech.Do(func() { x++; r.Pulse() })
		}()
		wg.Wait()
		return State{"x": x, "a": a, "b": b}
	}
	return Shape{Name: "race-take", Model: model, Run: run}
}

// cancelRepairShape mirrors the cancel-inflight corpus program: an armed
// handle that may be holding the in-flight signal is cancelled while a
// blocking waiter needs it; Cancel's relay repair must keep the waiter
// alive on every schedule.
func cancelRepairShape() Shape {
	run := func(mech problems.Mechanism) State {
		r := NewRig(mech)
		var x int64
		var wg sync.WaitGroup
		wg.Add(3)
		go func() { // holder: arm, then cancel
			defer wg.Done()
			h := r.Mech.ArmFunc(func() bool { return x > 0 })
			h.Cancel()
		}()
		go func() { // waiter
			defer wg.Done()
			r.Mech.Enter()
			r.Mech.AwaitFunc(func() bool { return x > 0 })
			x--
			r.Pulse()
			r.Mech.Exit()
		}()
		go func() { // producer
			defer wg.Done()
			r.Mech.Do(func() { x++; r.Pulse() })
		}()
		wg.Wait()
		return State{"x": x}
	}
	return Shape{Name: "cancel-repair", Model: MustProgram("cancel-inflight"), Run: run}
}

// select2Shape: one selector over guards on two monitors, one feeder
// each. The selector consumes exactly one resource; which one is the
// scheduler's choice, so the model's terminal set has both outcomes.
func select2Shape() Shape {
	xAvail := func(s State) bool { return s["x"] > 0 }
	yAvail := func(s State) bool { return s["y"] > 0 }
	model := Program{
		Init: State{"x": 0, "y": 0, "sel": 0},
		Threads: []Thread{
			{Name: "selector", Ops: []Op{
				Select("pick",
					Case(0, "cx", xAvail, func(s State) { s["x"]--; s["sel"] = 1 }),
					Case(1, "cy", yAvail, func(s State) { s["y"]--; s["sel"] = 2 }),
				),
			}},
			{Name: "px", Ops: []Op{Step("fx", func(s State) { s["x"]++ }).On(0)}},
			{Name: "py", Ops: []Op{Step("fy", func(s State) { s["y"]++ }).On(1)}},
		},
	}
	run := func(mech problems.Mechanism) State {
		r0, r1 := NewRig(mech), NewRig(mech)
		var x, y, sel int64
		var wg sync.WaitGroup
		wg.Add(3)
		go func() {
			defer wg.Done()
			_, err := core.SelectOrdered(
				r0.Mech.WhenFunc(func() bool { return x > 0 }).Then(func() { x--; sel = 1; r0.Pulse() }),
				r1.Mech.WhenFunc(func() bool { return y > 0 }).Then(func() { y--; sel = 2; r1.Pulse() }),
			)
			if err != nil {
				panic(err)
			}
		}()
		go func() {
			defer wg.Done()
			r0.Mech.Do(func() { x++; r0.Pulse() })
		}()
		go func() {
			defer wg.Done()
			r1.Mech.Do(func() { y++; r1.Pulse() })
		}()
		wg.Wait()
		return State{"x": x, "y": y, "sel": sel}
	}
	return Shape{Name: "select2", Model: model, Run: run}
}

// deadlineShape mirrors the deadline-buffer corpus program for real: a
// short AwaitFuncTimeout races the producer and the plain waiter. The
// deadline'd consumer either takes an item or expires with ErrDeadline
// — and because an observed expiry wins the race against the predicate
// becoming true, the expired-with-items-present outcome is real too.
// The model's always-eligible timer branch enumerates exactly this set.
func deadlineShape() Shape {
	run := func(mech problems.Mechanism) State {
		r := NewRig(mech)
		var count, missed int64
		var wg sync.WaitGroup
		wg.Add(3)
		go func() { // deadliner
			defer wg.Done()
			r.Mech.Enter()
			err := r.Mech.AwaitFuncTimeout(500*time.Microsecond, func() bool { return count > 0 })
			switch {
			case err == nil:
				count--
			case errors.Is(err, core.ErrDeadline):
				missed++
			default:
				panic(err)
			}
			r.Pulse()
			r.Mech.Exit()
		}()
		go func() { // plain waiter
			defer wg.Done()
			r.Mech.Enter()
			r.Mech.AwaitFunc(func() bool { return count > 0 })
			count--
			r.Pulse()
			r.Mech.Exit()
		}()
		go func() { // producer
			defer wg.Done()
			r.Mech.Do(func() { count += 2; r.Pulse() })
		}()
		wg.Wait()
		return State{"count": count, "missed": missed}
	}
	return Shape{Name: "deadline", Model: MustProgram("deadline-buffer"), Run: run}
}

// counterShape: the shard.Counter watch protocol — two sub-threshold
// adds on different shards, one aggregate waiter. Only the automatic
// mechanisms have sharded counters.
func counterShape() Shape {
	model := MustProgram("counter-watch")
	model.Observe = func(s State) State {
		return State{"adds": s["adds"], "total": s["#c.total"]}
	}
	run := func(mech problems.Mechanism) State {
		sm := shard.New(2, shard.WithMonitorOptions(problems.AutoOptions(mech)...))
		c := sm.NewCounter("c", 3)
		var adds atomic.Int64 // incremented under two different shard monitors
		var wg sync.WaitGroup
		wg.Add(3)
		for i := 0; i < 2; i++ {
			i := i
			go func() {
				defer wg.Done()
				sm.DoShard(i, func(*core.Monitor) {
					adds.Add(1)
					c.Add(i, 1)
				})
			}()
		}
		var total int64
		go func() {
			defer wg.Done()
			if err := c.AwaitAtLeast(2); err != nil {
				panic(err)
			}
			total = c.Total()
		}()
		wg.Wait()
		return State{"adds": adds.Load(), "total": total}
	}
	return Shape{Name: "counter", Model: model, Run: run, Mechs: problems.Automatic}
}
