package simcheck

import (
	"strings"
	"testing"
)

func TestSelect2x2Exhaustive(t *testing.T) {
	// Acceptance: the 2-guard/2-monitor instance explores to completion
	// with zero violations, and the claim protocol gives each selector
	// exactly one of the two resources — both assignments reachable,
	// nothing else.
	res, err := Explore(MustProgram("select-2x2"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("select-2x2: %d states, %d transitions", res.States, res.Transitions)
	wantTerminals(t, res.TerminalSet(),
		State{"x": 0, "y": 0, "w1": 1, "w2": 2},
		State{"x": 0, "y": 0, "w1": 2, "w2": 1},
	)
	// The relay-nondeterministic run must reach the same terminal set.
	nd, err := Explore(MustProgram("select-2x2"), Options{RelayNondet: true})
	if err != nil {
		t.Fatal(err)
	}
	got, want := nd.TerminalSet(), res.TerminalSet()
	if len(got) != len(want) {
		t.Fatalf("RelayNondet changed the terminal set: %v vs %v", got, want)
	}
	for k := range want {
		if _, ok := got[k]; !ok {
			t.Errorf("terminal %s lost under RelayNondet", k)
		}
	}
}

func TestSelectLoserCancelExhaustive(t *testing.T) {
	// The in-flight-relay shape: the selector consumes x or one of the
	// two y items, the blocking waiter always gets a y. Every schedule —
	// including the one where the loser's cancellation must hand the
	// in-flight y-signal to the waiter — terminates cleanly.
	res, err := Explore(MustProgram("select-loser-cancel"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantTerminals(t, res.TerminalSet(),
		State{"x": 0, "y": 1, "sel": 1}, // selector took x; waiter one y
		State{"x": 1, "y": 0, "sel": 2}, // selector took a y; waiter the other
	)
}

func TestSelectLoserCancelRepairMutationCaught(t *testing.T) {
	// Remove the relay repair from loser cancellation and the schedule
	// where the selector's losing y-case holds monitor 1's signal while
	// winning on x starves the blocked waiter. The checker must catch it
	// and the reported schedule must replay to the same violation.
	p := MustProgram("select-loser-cancel")
	opts := Options{DisableCancelRepair: true}
	err := Check(p, opts)
	if err == nil {
		t.Fatal("loser-cancel repair mutation not caught")
	}
	v, ok := err.(*Violation)
	if !ok {
		t.Fatalf("expected *Violation, got %T: %v", err, err)
	}
	if !strings.Contains(v.Kind, "relay invariance") && !strings.Contains(v.Kind, "deadlock") {
		t.Fatalf("unexpected violation kind: %v", v)
	}

	for i := 0; i < 2; i++ {
		rerr := Replay(MustProgram("select-loser-cancel"), v.Schedule, opts)
		if rerr == nil {
			t.Fatal("replay of the failing schedule passed")
		}
		rv, ok := rerr.(*Violation)
		if !ok {
			t.Fatalf("replay returned %T: %v", rerr, rerr)
		}
		if rv.Kind != v.Kind || rv.State.key() != v.State.key() {
			t.Fatalf("replay diverged:\n exploration: %s / %s\n replay:      %s / %s",
				v.Kind, v.State.key(), rv.Kind, rv.State.key())
		}
	}
}

func TestSelectPollHitRunsNoArm(t *testing.T) {
	// When a case is already true at the initial poll, the Select must
	// complete without arming anything: the terminal waiter table is
	// empty (checked by the machine) and only one resource is consumed.
	xAvail := func(s State) bool { return s["x"] > 0 }
	yAvail := func(s State) bool { return s["y"] > 0 }
	p := Program{
		Init: State{"x": 1, "y": 1, "sel": 0},
		Threads: []Thread{
			{Name: "selector", Ops: []Op{
				Select("pick",
					Case(0, "cx", xAvail, func(s State) { s["x"]--; s["sel"] = 1 }),
					Case(1, "cy", yAvail, func(s State) { s["y"]--; s["sel"] = 2 }),
				),
			}},
		},
	}
	got := terminalKeys(t, p, Options{})
	// The ordered poll always hits the first case.
	wantTerminals(t, got, State{"x": 0, "y": 1, "sel": 1})
}

func TestSelectWinnerPanicUnwinds(t *testing.T) {
	// A panicking winner body must still exit with a relay and cancel
	// the losers with repair: the waiter parked behind the losing case's
	// monitor is released on every schedule, and no waiter leaks.
	xAvail := func(s State) bool { return s["x"] > 0 }
	yAvail := func(s State) bool { return s["y"] > 0 }
	p := Program{
		Init: State{"x": 0, "y": 0, "got": 0},
		Threads: []Thread{
			{Name: "selector", Ops: []Op{
				Select("pick",
					Case(0, "cx", xAvail, func(s State) { s["x"]-- }),
					Case(1, "cy", yAvail, func(s State) { s["y"]-- }),
				).Panicking(),
			}},
			{Name: "waiter", Ops: []Op{
				Wait("wait", yAvail, func(s State) { s["y"]--; s["got"]++ }).On(1),
			}},
			{Name: "px", Ops: []Op{Step("fx", func(s State) { s["x"]++ }).On(0)}},
			{Name: "py", Ops: []Op{
				Step("fy", func(s State) { s["y"]++ }).On(1),
				Step("fy", func(s State) { s["y"]++ }).On(1),
			}},
		},
	}
	res, err := Explore(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantTerminals(t, res.TerminalSet(),
		State{"x": 0, "y": 1, "got": 1}, // selector died on x; waiter got one y
		State{"x": 1, "y": 0, "got": 1}, // selector died on a y; waiter the other
	)
}
