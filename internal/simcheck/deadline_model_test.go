package simcheck

import (
	"errors"
	"strings"
	"testing"
)

// TestDeadlineRescuesDeadlock: a waiter whose predicate can never become
// true is a guaranteed deadlock as a plain Wait (TestDetectsGenuineDeadlock)
// — as a deadline'd wait, every schedule instead terminates through the
// timer branch, the expiry action runs exactly once, and no waiter leaks.
func TestDeadlineRescuesDeadlock(t *testing.T) {
	p := Program{
		Init: State{"x": 0, "missed": 0},
		Threads: []Thread{
			{Name: "stuck", Ops: []Op{
				WaitDeadline("never", func(s State) bool { return s["x"] > 0 },
					nil, func(s State) { s["missed"]++ }),
			}},
		},
	}
	res, err := Explore(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Terminals) != 1 {
		t.Fatalf("terminal set = %v, want exactly the expired state", res.Terminals)
	}
	want := State{"x": 0, "missed": 1}
	if res.Terminals[0].key() != want.key() {
		t.Fatalf("terminal = %s, want %s", res.Terminals[0].key(), want.key())
	}
}

// TestDeadlineFastPathHidesTimer: a deadline'd wait whose predicate holds
// at entry completes on the fast path without ever exposing the timer —
// one terminal state, the expiry action never runs.
func TestDeadlineFastPathHidesTimer(t *testing.T) {
	p := Program{
		Init: State{"x": 1, "missed": 0},
		Threads: []Thread{
			{Name: "lucky", Ops: []Op{
				WaitDeadline("take", func(s State) bool { return s["x"] > 0 },
					func(s State) { s["x"]-- }, func(s State) { s["missed"]++ }),
			}},
		},
	}
	res, err := Explore(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := State{"x": 0, "missed": 0}
	if len(res.Terminals) != 1 || res.Terminals[0].key() != want.key() {
		t.Fatalf("terminal set = %v, want exactly %s", res.Terminals, want.key())
	}
}

// TestDeadlineBufferAllInterleavings explores the deadline-buffer corpus
// program exhaustively, deterministic and nondeterministic relay alike,
// and pins the exact terminal set: the deadline'd consumer either takes
// its item (count 0) or expires and leaves it (count 1, missed 1) — and
// the plain waiter is served on every schedule, which is the relay-repair
// obligation of the timer branch.
func TestDeadlineBufferAllInterleavings(t *testing.T) {
	for _, opts := range []Options{{}, {RelayNondet: true}} {
		res, err := Explore(MustProgram("deadline-buffer"), opts)
		if err != nil {
			t.Fatalf("opts %+v: %v", opts, err)
		}
		set := res.TerminalSet()
		took := State{"count": 0, "missed": 0}
		expired := State{"count": 1, "missed": 1}
		if len(set) != 2 {
			t.Fatalf("opts %+v: terminal set %v, want {%s, %s}", opts, keysOf(set), took.key(), expired.key())
		}
		for _, want := range []State{took, expired} {
			if _, ok := set[want.key()]; !ok {
				t.Errorf("opts %+v: terminal %s unreachable", opts, want.key())
			}
		}
	}
}

// TestDeadlineBufferLinearizable: every terminal reachable under relay
// signaling with deadline expiries is also reachable under the sequential
// reference — the timer branch restricts outcomes like every other relay
// rule, it never invents one.
func TestDeadlineBufferLinearizable(t *testing.T) {
	if _, err := CheckLinearizable(MustProgram("deadline-buffer"), Options{RelayNondet: true}); err != nil {
		t.Fatal(err)
	}
}

// TestDeadlineRepairMutationCaught seeds the DisableCancelRepair
// mutation: when the timer consumes an in-flight relay signal without
// passing it onward, the plain waiter's wake-up is lost. The checker
// must find the schedule (producer relays to the deadline'd consumer,
// then its timer fires) and report it — as the relay-invariance breach
// at the expiry step, or as the downstream starvation — and the printed
// schedule must replay to the same verdict.
func TestDeadlineRepairMutationCaught(t *testing.T) {
	opts := Options{DisableCancelRepair: true}
	err := Check(MustProgram("deadline-buffer"), opts)
	if err == nil {
		t.Fatal("DisableCancelRepair mutation survived the deadline-buffer exploration")
	}
	var v *Violation
	if !errors.As(err, &v) {
		t.Fatalf("non-violation error: %v", err)
	}
	if !strings.Contains(v.Kind, "relay invariance") && !strings.Contains(v.Kind, "deadlock") {
		t.Fatalf("unexpected violation kind: %v", err)
	}
	if v.Schedule == "" {
		t.Fatal("violation carries no replayable schedule")
	}
	rerr := Replay(MustProgram("deadline-buffer"), v.Schedule, opts)
	var rv *Violation
	if !errors.As(rerr, &rv) || rv.Kind != v.Kind {
		t.Fatalf("replay of %q = %v, want the original %q", v.Schedule, rerr, v.Kind)
	}
}

// TestDeadlineBoundedBufferMix: deadline'd consumers inside the classic
// bounded buffer — a producer refills behind a consumer that may expire,
// so timer branches interleave with futile wakes and barging. Every
// schedule must stay clean; accounting closes the books: takes plus
// misses equals the consumers' demand.
func TestDeadlineBoundedBufferMix(t *testing.T) {
	space := func(s State) bool { return s["count"] < s["cap"] }
	items := func(s State) bool { return s["count"] > 0 }
	take := func(s State) { s["count"]--; s["takes"]++ }
	miss := func(s State) { s["misses"]++ }
	p := Program{
		Init: State{"count": 0, "cap": 1, "takes": 0, "misses": 0},
		Threads: []Thread{
			{Name: "producer", Ops: []Op{
				Wait("put", space, func(s State) { s["count"]++ }),
				Wait("put", space, func(s State) { s["count"]++ }),
			}},
			{Name: "dl1", Ops: []Op{WaitDeadline("take", items, take, miss)}},
			{Name: "dl2", Ops: []Op{WaitDeadline("take", items, take, miss)}},
		},
	}
	// An expired consumer leaves its item in the buffer, so the producer's
	// second put can block forever — cap it with a deadline'd observation:
	// the terminal books must balance instead.
	p.Threads[0].Ops[1] = WaitDeadline("put", space, func(s State) { s["count"]++ }, nil)
	res, err := Explore(p, Options{RelayNondet: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Terminals {
		if s["takes"]+s["misses"] != 2 {
			t.Errorf("books do not balance at terminal %s", s.key())
		}
	}
	if _, err := CheckLinearizable(p, Options{RelayNondet: true}); err != nil {
		t.Fatal(err)
	}
}
