package simcheck

import (
	"fmt"
	"strings"
)

// explorer runs the exhaustive DFS over schedules: every enabled thread
// at every configuration, every internal choice (via the chooser
// odometer), memoized on the 128-bit configuration hash and pruned with
// sleep-set partial-order reduction.
type explorer struct {
	mc   *machine
	res  *Result
	memo map[[16]byte][][]int
}

func (mc *machine) explore() (*Result, error) {
	e := &explorer{mc: mc, res: &Result{}, memo: map[[16]byte][][]int{}}
	err := e.dfs(newConfig(mc), 0, nil, nil, nil)
	return e.res, err
}

func memberOf(set []int, ti int) bool {
	for _, v := range set {
		if v == ti {
			return true
		}
	}
	return false
}

func subsetOf(a, b []int) bool {
	for _, v := range a {
		if !memberOf(b, v) {
			return false
		}
	}
	return true
}

// covered reports whether an earlier visit already explored at least as
// much as this arrival would: some recorded sleep set is a subset of the
// current one (a smaller sleep set means more successors were taken).
func covered(recorded [][]int, sleep []int) bool {
	for _, r := range recorded {
		if subsetOf(r, sleep) {
			return true
		}
	}
	return false
}

// record adds sleep to the state's antichain of explored sleep sets,
// dropping any recorded superset it now dominates.
func (e *explorer) record(h [16]byte, sleep []int) {
	kept := e.memo[h][:0]
	for _, r := range e.memo[h] {
		if !subsetOf(sleep, r) {
			kept = append(kept, r)
		}
	}
	e.memo[h] = append(kept, append([]int(nil), sleep...))
}

// nextScript advances the choice odometer: the lexicographically next
// script after a run that took the recorded choices, or nil when that
// run's choices were all at their maxima.
func nextScript(taken, arity []int) []int {
	for i := len(taken) - 1; i >= 0; i-- {
		if taken[i]+1 < arity[i] {
			out := append([]int(nil), taken[:i]...)
			return append(out, taken[i]+1)
		}
	}
	return nil
}

// token renders one schedule entry: the thread index, plus any internal
// choices the step took.
func token(ti int, taken []int) string {
	if len(taken) == 0 {
		return fmt.Sprintf("%d", ti)
	}
	parts := make([]string, len(taken))
	for i, v := range taken {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return fmt.Sprintf("%d:%s", ti, strings.Join(parts, "."))
}

// dfs explores every schedule from c. trace holds human-readable step
// labels, sched the machine-readable tokens, sleep the sleep set carried
// into this configuration.
func (e *explorer) dfs(c *config, depth int, trace, sched []string, sleep []int) error {
	var enabled []int
	unfinished := false
	for ti := range c.threads {
		if !c.threads[ti].done() {
			unfinished = true
		}
		if e.mc.runnable(c, ti) {
			enabled = append(enabled, ti)
		}
	}

	if len(enabled) == 0 {
		if unfinished {
			var stuck []string
			for ti := range c.threads {
				if !c.threads[ti].done() {
					stuck = append(stuck, e.mc.prog.Threads[ti].Name)
				}
			}
			return &Violation{
				Kind:     fmt.Sprintf("deadlock freedom: threads [%s] blocked with no runnable thread", strings.Join(stuck, " ")),
				Trace:    trace,
				Schedule: strings.Join(sched, ","),
				State:    c.state.clone(),
			}
		}
		if v := e.mc.terminalViolation(c); v != nil {
			v.Trace = trace
			v.Schedule = strings.Join(sched, ",")
			return v
		}
		e.res.addTerminal(e.mc.observe(c.state))
		return nil
	}

	if depth >= e.mc.opts.MaxDepth {
		return &Violation{
			Kind:     fmt.Sprintf("depth bound: schedule reached %d steps without terminating (livelock, or raise Options.MaxDepth)", depth),
			Trace:    trace,
			Schedule: strings.Join(sched, ","),
			State:    c.state.clone(),
		}
	}

	if !e.mc.opts.DisableMemo {
		h := e.mc.hash(c)
		if covered(e.memo[h], sleep) {
			e.res.Revisits++
			return nil
		}
		e.record(h, sleep)
	}
	e.res.States++
	if e.res.States > e.mc.opts.MaxStates {
		return fmt.Errorf("simcheck: state budget exhausted (over %d configurations; raise Options.MaxStates)", e.mc.opts.MaxStates)
	}
	if depth > e.res.DeepestTrace {
		e.res.DeepestTrace = depth
	}

	var done []int // threads already explored from this configuration
	for _, ti := range enabled {
		if !e.mc.opts.DisableSleepSets && memberOf(sleep, ti) {
			e.res.SleepSkips++
			continue
		}

		// The successor's sleep set: every thread slept here or already
		// explored here whose next step is independent of ti's.
		var childSleep []int
		if !e.mc.opts.DisableSleepSets {
			for _, u := range sleep {
				if u != ti && e.mc.independent(c, u, ti) {
					childSleep = append(childSleep, u)
				}
			}
			for _, u := range done {
				if u != ti && !memberOf(childSleep, u) && e.mc.independent(c, u, ti) {
					childSleep = append(childSleep, u)
				}
			}
		}

		// Enumerate every internal choice of this step via the odometer.
		var script []int
		for {
			child := c.clone()
			ch := &chooser{script: script}
			label, viol := e.mc.exec(child, ti, ch)
			e.res.Transitions++
			if e.res.Transitions > e.mc.opts.MaxTransitions {
				return fmt.Errorf("simcheck: transition budget exhausted (over %d steps; raise Options.MaxTransitions)", e.mc.opts.MaxTransitions)
			}
			ctrace := append(trace[:len(trace):len(trace)], label)
			csched := append(sched[:len(sched):len(sched)], token(ti, ch.taken))
			if viol != nil {
				viol.Trace = ctrace
				viol.Schedule = strings.Join(csched, ",")
				return viol
			}
			if err := e.dfs(child, depth+1, ctrace, csched, childSleep); err != nil {
				return err
			}
			if script = nextScript(ch.taken, ch.arity); script == nil {
				break
			}
		}
		done = append(done, ti)
	}
	return nil
}
