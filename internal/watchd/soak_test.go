package watchd

import (
	"testing"
	"time"
)

// TestSoakShort is a miniature of the CI soak smoke: a standing
// population under churn and publish load for a fraction of a second,
// with eviction pressure configured, verifying the full acceptance
// surface — sustained population, non-zero latency percentiles, at least
// one eviction, and leak-free drain.
func TestSoakShort(t *testing.T) {
	if testing.Short() {
		t.Skip("soak in -short mode")
	}
	cfg := SoakConfig{
		Sessions:     400,
		Duration:     600 * time.Millisecond,
		Churners:     2,
		ChurnEvery:   500 * time.Microsecond,
		Publishers:   2,
		PublishEvery: 100 * time.Microsecond,
		Daemon: Config{
			Keys:   128,
			Shards: 4,
			// Eviction pressure: the armed population sits above MaxIdle,
			// so the LRU evicts idle sessions throughout the run.
			MaxIdle: 300,
		},
	}
	res, err := Soak(cfg)
	if err != nil {
		t.Fatalf("soak: %v (result %+v)", err, res)
	}
	if res.SustainedMin < int64(cfg.Sessions)/2 {
		t.Errorf("sustained minimum %d below half the population", res.SustainedMin)
	}
	if res.Stats.Delivered == 0 {
		t.Error("soak delivered nothing")
	}
	h := res.Stats.WakeToClaim
	if h.Count() == 0 || h.P50() <= 0 || h.P99() <= 0 || h.P999() <= 0 {
		t.Errorf("latency percentiles not populated: %s", h.String())
	}
	if res.Stats.Evicted == 0 {
		t.Error("eviction pressure configured but zero evictions")
	}
	if res.LeakedGoroutines != 0 || res.ResidualWaiters != 0 {
		t.Errorf("leaks: %d goroutines, %d waiters", res.LeakedGoroutines, res.ResidualWaiters)
	}
	if res.Published == 0 || res.Churned == 0 {
		t.Errorf("generators idle: published=%d churned=%d", res.Published, res.Churned)
	}
}

// TestSoakDefaultsAndFailure: zero-value config resolves to a valid run,
// and an impossible fill (MaxSessions below Sessions) reports an error
// rather than hanging.
func TestSoakDefaults(t *testing.T) {
	if testing.Short() {
		t.Skip("soak in -short mode")
	}
	res, err := Soak(SoakConfig{Sessions: 50, Duration: 100 * time.Millisecond})
	if err != nil {
		t.Fatalf("default soak: %v (%+v)", err, res)
	}
	if res.Stats.Delivered == 0 {
		t.Error("default soak delivered nothing")
	}
}

func TestSoakFillRejection(t *testing.T) {
	cfg := SoakConfig{
		Sessions: 100,
		Duration: 50 * time.Millisecond,
		Daemon:   Config{Keys: 16, MaxSessions: 10},
	}
	if _, err := Soak(cfg); err == nil {
		t.Fatal("fill beyond MaxSessions succeeded")
	}
}
