package watchd

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/testutil"
)

// smallConfig keeps unit-test daemons tiny and deterministic.
func smallConfig() Config {
	return Config{Keys: 16, Shards: 4, Dispatchers: 2, MaxSessions: 1 << 10}
}

// mustClose closes the daemon and fails the test on any drain leak.
func mustClose(t *testing.T, d *Daemon) {
	t.Helper()
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// recvEvent receives one event with a deadline.
func recvEvent(t *testing.T, s *Session) Event {
	t.Helper()
	select {
	case ev, ok := <-s.Events():
		if !ok {
			t.Fatalf("events channel closed early; session err = %v", s.Err())
		}
		return ev
	case <-time.After(5 * time.Second):
		t.Fatalf("no event within deadline; session err = %v", s.Err())
	}
	panic("unreachable")
}

// TestRegisterPublishDeliver is the basic lifecycle: register, publish,
// receive the event with the published version and a recorded latency,
// renew, receive again.
func TestRegisterPublishDeliver(t *testing.T) {
	d := New(smallConfig())
	defer testutil.NoLeaks(t, d)()
	defer mustClose(t, d)

	s, err := d.Register(3)
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	if s.Key() != 3 || s.Seen() != 0 {
		t.Fatalf("fresh session: key=%d seen=%d", s.Key(), s.Seen())
	}
	if v, err := d.Publish(3); err != nil || v != 1 {
		t.Fatalf("Publish = %d, %v", v, err)
	}
	ev := recvEvent(t, s)
	if ev.Key != 3 || ev.Version != 1 {
		t.Fatalf("event = key %d version %d, want key 3 version 1", ev.Key, ev.Version)
	}
	if s.Seen() != 1 {
		t.Fatalf("Seen after delivery = %d", s.Seen())
	}

	// A second publish before Renew must not deliver (the session is in
	// the delivered state); Renew re-arms against seen+1 and the already
	// published version satisfies it immediately.
	if _, err := d.Publish(3); err != nil {
		t.Fatal(err)
	}
	if err := s.Renew(); err != nil {
		t.Fatalf("Renew: %v", err)
	}
	ev = recvEvent(t, s)
	if ev.Version != 2 {
		t.Fatalf("renewed event version = %d, want 2", ev.Version)
	}

	st := d.Stats()
	if st.Delivered != 2 || st.Registered != 1 || st.Renewed != 1 {
		t.Fatalf("stats = %v", st)
	}
	if st.WakeToClaim.Count() != 2 {
		t.Fatalf("latency histogram count = %d, want 2", st.WakeToClaim.Count())
	}
	if st.WakeToClaim.P50() <= 0 {
		t.Fatalf("p50 wake-to-claim = %v, want > 0", st.WakeToClaim.P50())
	}
	s.Cancel()
	if !errors.Is(s.Err(), ErrCancelled) {
		t.Fatalf("Err after cancel = %v", s.Err())
	}
	if _, ok := <-s.Events(); ok {
		t.Fatal("events channel still open after cancel")
	}
}

// TestPublishWakesOnlyReachedThresholds: sessions watching different keys
// are independent, and a key's publish wakes exactly its watchers.
func TestPublishWakesOnlyReachedThresholds(t *testing.T) {
	d := New(smallConfig())
	defer testutil.NoLeaks(t, d)()
	defer mustClose(t, d)

	a, err := d.Register(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.Register(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Publish(1); err != nil {
		t.Fatal(err)
	}
	if ev := recvEvent(t, a); ev.Key != 1 {
		t.Fatalf("watcher of key 1 got key %d", ev.Key)
	}
	select {
	case ev := <-b.Events():
		t.Fatalf("watcher of key 2 woke on publish of key 1: %+v", ev)
	case <-time.After(50 * time.Millisecond):
	}
	a.Cancel()
	b.Cancel()
}

// TestAdmissionControl: MaxSessions rejections are graceful and counted,
// and cancelling frees capacity.
func TestAdmissionControl(t *testing.T) {
	cfg := smallConfig()
	cfg.MaxSessions = 4
	d := New(cfg)
	defer testutil.NoLeaks(t, d)()
	defer mustClose(t, d)

	var held []*Session
	for i := 0; i < 4; i++ {
		s, err := d.Register(uint64(i % cfg.Keys))
		if err != nil {
			t.Fatalf("register %d: %v", i, err)
		}
		held = append(held, s)
	}
	if _, err := d.Register(0); !errors.Is(err, ErrSessionLimit) {
		t.Fatalf("over-limit Register = %v, want ErrSessionLimit", err)
	}
	if st := d.Stats(); st.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", st.Rejected)
	}
	held[0].Cancel()
	testutil.WaitFor(t, 5*time.Second, 0, func() bool { return d.ActiveSessions() == 3 },
		"capacity freed after cancel")
	if _, err := d.Register(5); err != nil {
		t.Fatalf("Register after freeing capacity: %v", err)
	}
	if _, err := d.Register(uint64(cfg.Keys)); !errors.Is(err, ErrBadKey) {
		t.Fatalf("out-of-range key = %v, want ErrBadKey", err)
	}
	if _, err := d.Publish(uint64(cfg.Keys)); !errors.Is(err, ErrBadKey) {
		t.Fatalf("out-of-range publish = %v, want ErrBadKey", err)
	}
}

// TestEviction: with MaxIdle below the session count, registration
// pressure evicts the least-recently-active sessions, which observe
// ErrEvicted; recently touched sessions survive.
func TestEviction(t *testing.T) {
	cfg := smallConfig()
	cfg.MaxIdle = 4
	d := New(cfg)
	defer testutil.NoLeaks(t, d)()
	defer mustClose(t, d)

	first, err := d.Register(0)
	if err != nil {
		t.Fatal(err)
	}
	var rest []*Session
	for i := 1; i < 8; i++ {
		// Touch the oldest survivor each round so the LRU order is
		// exercised, not just insertion order.
		s, err := d.Register(uint64(i))
		if err != nil {
			t.Fatalf("register %d: %v", i, err)
		}
		rest = append(rest, s)
	}
	testutil.WaitFor(t, 5*time.Second, 0, func() bool { return d.ArmedSessions() <= int64(cfg.MaxIdle) },
		"armed population under MaxIdle")
	st := d.Stats()
	if st.Evicted < 1 {
		t.Fatalf("evicted = %d, want >= 1", st.Evicted)
	}
	// The first registration is the coldest session; it must be among the
	// evicted.
	if !errors.Is(first.Err(), ErrEvicted) {
		t.Fatalf("oldest session err = %v, want ErrEvicted", first.Err())
	}
	// Renew on an evicted session reports the eviction; live sessions
	// accept the keep-alive.
	if err := first.Renew(); !errors.Is(err, ErrEvicted) {
		t.Fatalf("Renew on evicted = %v", err)
	}
	live := 0
	for _, s := range rest {
		if s.Err() == nil {
			if err := s.Renew(); err != nil {
				t.Fatalf("keep-alive Renew: %v", err)
			}
			live++
		}
	}
	if live == 0 {
		t.Fatal("every session evicted; expected the recent ones to survive")
	}
}

// TestOnEventCallbackAndRenewLoop drives the callback delivery mode with
// an auto-renewing consumer — the soak harness configuration — through a
// few hundred publishes on one key.
func TestOnEventCallbackAndRenewLoop(t *testing.T) {
	const rounds = 200
	var mu sync.Mutex
	var got []int64
	done := make(chan struct{})
	cfg := smallConfig()
	cfg.OnEvent = func(ev Event) {
		mu.Lock()
		got = append(got, ev.Version)
		n := len(got)
		mu.Unlock()
		if n >= rounds {
			close(done)
			return
		}
		if err := ev.Session.Renew(); err != nil {
			t.Errorf("renew in callback: %v", err)
		}
	}
	d := New(cfg)
	defer testutil.NoLeaks(t, d)()
	defer mustClose(t, d)

	if _, err := d.Register(7); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rounds; i++ {
		if _, err := d.Publish(7); err != nil {
			t.Fatal(err)
		}
		// Publishing faster than the consumer renews coalesces into the
		// next delivery; pace on the observed count to make every version
		// land.
		testutil.WaitFor(t, 5*time.Second, 0, func() bool {
			mu.Lock()
			defer mu.Unlock()
			return len(got) > i
		}, "delivery %d", i)
	}
	<-done
	mu.Lock()
	defer mu.Unlock()
	for i, v := range got {
		if v != int64(i+1) {
			t.Fatalf("delivery %d saw version %d; sequence %v...", i, v, got[:i+1])
		}
	}
	if st := d.Stats(); st.WakeToClaim.Count() != rounds {
		t.Fatalf("histogram count = %d, want %d", st.WakeToClaim.Count(), rounds)
	}
}

// TestCloseDrains: Close cancels every live session (they observe
// ErrClosed), refuses new registrations, drains zombies, and leaves zero
// registered waiters.
func TestCloseDrains(t *testing.T) {
	d := New(smallConfig())
	defer testutil.NoLeaks(t, d)()

	var ss []*Session
	for i := 0; i < 64; i++ {
		s, err := d.Register(uint64(i % 16))
		if err != nil {
			t.Fatal(err)
		}
		ss = append(ss, s)
	}
	// Leave a few sessions in the delivered state and a few cancelled, so
	// Close sweeps a mixed population.
	if _, err := d.Publish(0); err != nil {
		t.Fatal(err)
	}
	ss[1].Cancel()
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := d.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("second Close = %v, want ErrClosed", err)
	}
	if _, err := d.Register(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("Register after Close = %v, want ErrClosed", err)
	}
	if err := ss[2].Renew(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Renew after Close = %v, want ErrClosed", err)
	}
	if !errors.Is(ss[1].Err(), ErrCancelled) {
		t.Fatalf("pre-close cancel overwritten: %v", ss[1].Err())
	}
	st := d.Stats()
	if st.Active != 0 || st.Zombies != 0 || st.Waiting != 0 {
		t.Fatalf("post-close stats: %v", st)
	}
}

// TestConcurrentChurn hammers the full surface — register, publish,
// renew, cancel — from many goroutines under the race detector, then
// verifies the drain invariants.
func TestConcurrentChurn(t *testing.T) {
	cfg := smallConfig()
	cfg.MaxSessions = 256
	cfg.MaxIdle = 128
	d := New(cfg)
	defer testutil.NoLeaks(t, d)()

	const (
		workers = 8
		rounds  = 300
	)
	var (
		wg        sync.WaitGroup
		survivors = make([][]*Session, workers)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var mine []*Session
			for i := 0; i < rounds; i++ {
				switch i % 4 {
				case 0, 1:
					s, err := d.Register(uint64((w + i) % cfg.Keys))
					if err == nil {
						mine = append(mine, s)
					} else if !errors.Is(err, ErrSessionLimit) {
						t.Errorf("register: %v", err)
						return
					}
				case 2:
					if _, err := d.Publish(uint64((w + i) % cfg.Keys)); err != nil {
						t.Errorf("publish: %v", err)
						return
					}
					for _, s := range mine {
						s.Renew() // keep-alive or re-arm; errors are lifecycle, not bugs
					}
				case 3:
					if len(mine) > 0 {
						mine[0].Cancel()
						mine = mine[1:]
					}
				}
			}
			survivors[w] = mine
		}(w)
	}
	wg.Wait()
	// The loop can outrun the dispatchers entirely; publish once more to
	// every key and give delivery a chance to land before teardown.
	for k := 0; k < cfg.Keys; k++ {
		if _, err := d.Publish(uint64(k)); err != nil {
			t.Fatal(err)
		}
	}
	testutil.WaitFor(t, 5*time.Second, 0, func() bool { return d.Stats().Delivered > 0 },
		"churn deliveries")
	for _, mine := range survivors {
		for _, s := range mine {
			s.Cancel()
		}
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close after churn: %v", err)
	}
	if st := d.Stats(); st.Active != 0 || st.Zombies != 0 || st.Waiting != 0 {
		t.Fatalf("drain leaked: %v", st)
	}
}

// TestMechanismVariants runs the lifecycle against each monitor
// configuration the bench compares (default tagging, tagging disabled),
// since watchd is also the registry scenario's engine.
func TestMechanismVariants(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts []core.Option
	}{
		{"autosynch", nil},
		{"autosynch-t", []core.Option{core.WithoutTagging()}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := smallConfig()
			cfg.MonitorOptions = tc.opts
			d := New(cfg)
			defer testutil.NoLeaks(t, d)()
			defer mustClose(t, d)
			s, err := d.Register(2)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := d.Publish(2); err != nil {
				t.Fatal(err)
			}
			if ev := recvEvent(t, s); ev.Version != 1 {
				t.Fatalf("version = %d", ev.Version)
			}
			s.Cancel()
		})
	}
}

// TestVersionAccessor: Version tracks publishes without a session.
func TestVersionAccessor(t *testing.T) {
	d := New(smallConfig())
	defer testutil.NoLeaks(t, d)()
	defer mustClose(t, d)
	for i := int64(1); i <= 3; i++ {
		if v, err := d.Publish(9); err != nil || v != i {
			t.Fatalf("publish %d = %d, %v", i, v, err)
		}
	}
	if v, err := d.Version(9); err != nil || v != 3 {
		t.Fatalf("Version = %d, %v", v, err)
	}
	if v, err := d.Version(8); err != nil || v != 0 {
		t.Fatalf("untouched key Version = %d, %v", v, err)
	}
}
