// Package watchd is a long-running keyed watch-service daemon built on
// the sharded automatic-signal monitor: clients register standing watch
// sessions on keys, publishers bump per-key versions, and the daemon
// delivers "key k reached version v" events with wake-to-claim latency
// measured per delivery. It is the production-shaped proof behind the
// library: 10⁵–10⁶ concurrent sessions under client churn, judged by the
// numbers real services are judged by — p50/p99/p999 latency, graceful
// load shedding, and leak-free drain.
//
// # Architecture
//
// Every session is one armed *core.Wait handle on a compiled per-key
// threshold predicate ("v<k> >= want") living on the key's owner shard —
// no goroutine is parked per session. Handles are multiplexed onto a
// small set of dispatcher goroutines with Wait.Subscribe: each dispatcher
// owns one buffered delivery channel, receives the session ids of fired
// handles, claims Mesa-style (re-validating under the shard lock), reads
// the key's version, and hands the event to the client (callback or
// per-session channel). The wake-to-claim interval — notification
// received to claim completed — is recorded into a per-dispatcher
// histogram and merged on Stats.
//
// # Admission control and eviction
//
// Register sheds load gracefully rather than collapsing: a MaxSessions
// gate (plus a per-dispatcher capacity gate that also backs the delivery
// channel's no-drop guarantee) rejects registrations with
// ErrSessionLimit, and when the armed-waiter population exceeds MaxIdle,
// the least-recently-active idle sessions are evicted — their handles
// cancelled with the mechanism's usual relay repair — so waiter memory
// stays bounded under churn. An optional IdleExpiry deadline bounds
// waiter lifetime by time the same way: a janitor expires armed sessions
// (ErrExpired, distinct from ErrEvicted) that go a full deadline without
// a delivery, Renew, or futile wake. All three are surfaced in Stats.
//
// # Delivery-channel accounting
//
// The dispatcher channel must never drop a live session's notification
// (a drop is a lost wake-up). A handle sends at most once per arm cycle,
// so queued entries are bounded by live armed sessions plus "zombies":
// cancelled sessions whose final notification (real or Cancel's
// courtesy) is still queued. The daemon counts zombies exactly —
// incremented when an armed session is cancelled, decremented when its
// stale id is dequeued — and admission keeps live+zombies within the
// channel capacity, making the no-drop bound an invariant rather than a
// hope. Close drains every dispatcher and verifies zero live sessions,
// zero zombies, and zero registered waiters.
package watchd

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/shard"
	"repro/internal/stats"
)

// Session lifecycle errors.
var (
	// ErrClosed is returned by Register after Close, and reported by
	// sessions cancelled by the daemon shutting down.
	ErrClosed = errors.New("watchd: daemon closed")

	// ErrSessionLimit is the admission-control rejection: the daemon is at
	// MaxSessions (or a dispatcher is at capacity) and the client should
	// back off and retry.
	ErrSessionLimit = errors.New("watchd: session limit reached")

	// ErrEvicted reports a session cancelled by memory-pressure eviction:
	// it sat idle while the armed-waiter population exceeded MaxIdle.
	ErrEvicted = errors.New("watchd: session evicted under memory pressure")

	// ErrExpired reports a session cancelled by the idle deadline: it went
	// IdleExpiry without a delivery, Renew, or futile wake. Distinct from
	// ErrEvicted — expiry is a per-session time contract, eviction is
	// population-wide memory pressure — so clients can tell "come back
	// later" from "you went away".
	ErrExpired = errors.New("watchd: session expired after idle deadline")

	// ErrCancelled reports a session cancelled by its client.
	ErrCancelled = errors.New("watchd: session cancelled")

	// ErrBadKey reports a watch or publish on a key outside [0, Keys).
	ErrBadKey = errors.New("watchd: key out of range")
)

// Config sizes a Daemon. The zero value of every field selects a
// reasonable default (see New).
type Config struct {
	Keys        int // watchable key space [0, Keys); default 4096
	Shards      int // partitions of the key space; default 8
	Dispatchers int // delivery goroutines; default min(GOMAXPROCS, 8)

	MaxSessions int // admission gate; default 1<<17
	MaxIdle     int // armed-waiter watermark for LRU eviction; 0 disables

	// IdleExpiry, when positive, expires armed sessions that see no
	// activity (delivery, Renew keep-alive, or futile wake) for this long:
	// a janitor cancels them with ErrExpired. It bounds waiter lifetime by
	// time the way MaxIdle bounds it by count.
	IdleExpiry time.Duration

	// OnEvent, when set, is called by the delivering dispatcher (outside
	// all daemon locks) instead of sending on the session's Events
	// channel. A daemon serving many thousands of sessions should use the
	// callback: it needs no per-session consumer goroutine.
	OnEvent func(Event)

	// EventBuffer is the per-session Events channel capacity when OnEvent
	// is nil; default 1. Deliveries that find the buffer full are
	// coalesced (the session still tracks the latest version).
	EventBuffer int

	// MonitorOptions configure every inner monitor (e.g.
	// core.WithoutTagging for the AutoSynch-T variant).
	MonitorOptions []core.Option
}

// withDefaults resolves zero fields.
func (c Config) withDefaults() Config {
	if c.Keys <= 0 {
		c.Keys = 4096
	}
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.Dispatchers <= 0 {
		c.Dispatchers = runtime.GOMAXPROCS(0)
		if c.Dispatchers > 8 {
			c.Dispatchers = 8
		}
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 1 << 17
	}
	if c.EventBuffer <= 0 {
		c.EventBuffer = 1
	}
	return c
}

// Event is one watch delivery: key reached version, observed with the
// given wake-to-claim latency.
type Event struct {
	Session *Session
	Key     uint64
	Version int64
	Wake    time.Duration
}

// sessionState is the lifecycle of a session.
type sessionState uint8

const (
	sessionArmed     sessionState = iota // handle armed, waiting for its version
	sessionDelivered                     // event delivered; waiting for Renew
	sessionDead                          // cancelled, evicted, or closed; see err
)

// Session is one standing keyed watch: an armed wait handle owned by the
// daemon, renewed by the client after each delivery. All methods are safe
// for concurrent use.
type Session struct {
	d  *Daemon
	dp *dispatcher
	id int

	key uint64

	// Guarded by dp.mu.
	state         sessionState
	err           error // terminal cause when dead
	w             *core.Wait
	seen          int64 // latest delivered (or registration-time) version
	want          int64 // version the armed predicate fires at
	claiming      bool  // a dispatcher is mid-claim on w
	pendingCancel bool  // cancel requested while claiming; finalize completes it
	cancelCause   error
	events        chan Event
	lruEl         *lruElem
	lruEpoch      uint64
	lastTouch     time.Time // guarded by d.lruMu; stamped on push/touch
}

// Key returns the watched key.
func (s *Session) Key() uint64 { return s.key }

// Seen returns the latest version observed by the session (the version at
// registration until the first delivery).
func (s *Session) Seen() int64 {
	s.dp.mu.Lock()
	defer s.dp.mu.Unlock()
	return s.seen
}

// Events returns the delivery channel (nil when the daemon uses the
// OnEvent callback). The channel is closed when the session ends; check
// Err for the cause.
func (s *Session) Events() <-chan Event { return s.events }

// Err reports why the session ended: nil while live, ErrCancelled,
// ErrEvicted, ErrExpired, or ErrClosed afterwards.
func (s *Session) Err() error {
	s.dp.mu.Lock()
	defer s.dp.mu.Unlock()
	if s.state == sessionDead {
		return s.err
	}
	return nil
}

// Renew re-arms a delivered session for the version after the one it saw,
// and refreshes the session's idle-LRU position. Renewing a still-armed
// session is a keep-alive touch. Returns the terminal error of a dead
// session.
func (s *Session) Renew() error {
	dp, d := s.dp, s.d
	dp.mu.Lock()
	switch s.state {
	case sessionDead:
		err := s.err
		dp.mu.Unlock()
		return err
	case sessionArmed:
		d.lruTouch(s)
		dp.mu.Unlock()
		return nil
	}
	s.want = s.seen + 1
	s.state = sessionArmed
	dp.arm(s)
	d.armed.Add(1)
	d.lruTouch(s)
	dp.mu.Unlock()
	d.renewed.Add(1)
	d.maybeEvict()
	return nil
}

// Cancel ends the session: the armed handle (if any) is cancelled with
// relay repair, the session is removed, and Err reports ErrCancelled.
// Cancelling a dead session is a no-op.
func (s *Session) Cancel() {
	s.dp.mu.Lock()
	s.dp.cancelLocked(s, ErrCancelled)
	s.dp.mu.Unlock()
}

// dispatcher multiplexes the armed handles of its sessions over one
// buffered delivery channel.
type dispatcher struct {
	d  *Daemon
	ch chan int

	mu       sync.Mutex
	sessions map[int]*Session
	nextID   int
	live     int // sessions in the map
	zombies  int // cancelled sessions with a possibly-queued notification
	quota    int // live+zombies bound; equals cap(ch)
	hist     stats.Histogram
}

// arm arms (or re-arms) the session's handle and subscribes it to the
// dispatcher channel. Caller holds dp.mu.
func (dp *dispatcher) arm(s *Session) {
	s.w = dp.d.preds[s.key].Arm(core.BindInt("want", s.want))
	if err := s.w.Err(); err != nil {
		// The per-key predicates are statically well-formed; an arming
		// error is a programming bug, not an input condition.
		panic(fmt.Sprintf("watchd: arm session on key %d: %v", s.key, err))
	}
	s.w.Subscribe(dp.ch, s.id)
}

// cancelLocked ends a session with the given cause. Caller holds dp.mu.
// A session mid-claim is flagged for the dispatcher's finalize step,
// which completes the bookkeeping; otherwise the session is removed here.
func (dp *dispatcher) cancelLocked(s *Session, cause error) {
	if s.state == sessionDead {
		return
	}
	if s.claiming {
		if !s.pendingCancel {
			s.pendingCancel = true
			s.cancelCause = cause
			s.w.Cancel()
		}
		return
	}
	if s.state == sessionArmed {
		s.w.Cancel()
		dp.zombies++ // the cycle's notification (real or courtesy) is queued
		dp.d.armed.Add(-1)
		dp.d.lruRemove(s)
	}
	dp.removeLocked(s, cause)
}

// removeLocked finishes taking a session out of the daemon. Caller holds
// dp.mu; the session must not be armed or claiming anymore.
func (dp *dispatcher) removeLocked(s *Session, cause error) {
	s.state = sessionDead
	s.err = cause
	delete(dp.sessions, s.id)
	dp.live--
	dp.d.active.Add(-1)
	if s.events != nil {
		close(s.events)
	}
	switch cause {
	case ErrEvicted:
		dp.d.evicted.Add(1)
	case ErrExpired:
		dp.d.expired.Add(1)
	case ErrCancelled:
		dp.d.cancelled.Add(1)
	default:
		dp.d.closedOut.Add(1)
	}
}

// run is the dispatcher goroutine: receive fired session ids, claim,
// deliver. After quit closes it drains the channel — every send happens
// before the corresponding Cancel or Close returns, so a drained channel
// means no entry is outstanding — and exits.
func (dp *dispatcher) run() {
	defer dp.d.wg.Done()
	for {
		select {
		case id := <-dp.ch:
			dp.process(id, time.Now())
		case <-dp.d.quit:
			for {
				select {
				case id := <-dp.ch:
					dp.process(id, time.Now())
				default:
					return
				}
			}
		}
	}
}

// process handles one delivery-channel entry. t0 — the receive time — is
// the wake timestamp of the wake-to-claim measurement.
func (dp *dispatcher) process(id int, t0 time.Time) {
	dp.mu.Lock()
	s, ok := dp.sessions[id]
	if !ok {
		// A zombie's final notification: the session was cancelled with
		// this entry queued (or mid-receive); account the drained slot.
		if dp.zombies > 0 {
			dp.zombies--
		}
		dp.mu.Unlock()
		return
	}
	if s.state != sessionArmed || s.claiming {
		// Defensive: a delivered session has consumed its cycle's entry,
		// so nothing should route here; ignore rather than double-claim.
		dp.mu.Unlock()
		return
	}
	s.claiming = true
	w := s.w
	dp.mu.Unlock()

	err := w.Claim()
	var ver int64
	if err == nil {
		// Claim succeeded: the shard monitor is held with the predicate
		// true; read the version and leave before any daemon locks.
		ver = dp.d.vers[s.key].Get()
		dp.d.sm.Of(s.key).Exit()
	}
	wake := time.Since(t0)

	ev, deliver := dp.finalize(s, err, ver, wake)
	if deliver && dp.d.cfg.OnEvent != nil {
		dp.d.cfg.OnEvent(ev)
	}
}

// finalize settles a claim outcome under dp.mu and returns the event to
// deliver via the OnEvent callback (channel-mode delivery happens inside,
// under the lock, so it cannot race the channel close in removeLocked).
func (dp *dispatcher) finalize(s *Session, err error, ver int64, wake time.Duration) (Event, bool) {
	d := dp.d
	dp.mu.Lock()
	defer dp.mu.Unlock()
	s.claiming = false
	if s.pendingCancel {
		// A cancel or eviction raced the claim; it deferred to us.
		if errors.Is(err, core.ErrNotReady) {
			// The futile claim re-armed the handle before the cancel
			// landed, so the cancel's courtesy notification is queued.
			dp.zombies++
		}
		d.armed.Add(-1)
		d.lruRemove(s)
		dp.removeLocked(s, s.cancelCause)
		return Event{}, false
	}
	switch {
	case err == nil:
		s.state = sessionDelivered
		s.seen = ver
		d.armed.Add(-1)
		d.lruRemove(s)
		dp.hist.Observe(wake)
		d.delivered.Add(1)
		ev := Event{Session: s, Key: s.key, Version: ver, Wake: wake}
		if s.events != nil {
			select {
			case s.events <- ev:
			default:
				d.coalesced.Add(1)
			}
			return Event{}, false
		}
		return ev, true
	case errors.Is(err, core.ErrNotReady):
		// Falsified between notification and claim; the handle re-armed
		// transparently and stays subscribed. Count the futile wake as
		// activity so the session is not immediately eviction fodder.
		d.futile.Add(1)
		d.lruTouch(s)
	}
	return Event{}, false
}

// Daemon is the watch service. Construct with New, drive with Register/
// Publish, and shut down with Close, which verifies leak-free drain.
type Daemon struct {
	cfg   Config
	sm    *shard.Monitor
	vers  []*core.IntCell   // per-key version cells, on their owner shards
	preds []*core.Predicate // per-key "v<k> >= want" on the owner shard

	disp []*dispatcher
	rr   atomic.Uint64 // round-robin dispatcher assignment

	closed atomic.Bool
	quit   chan struct{}
	wg     sync.WaitGroup

	lruMu sync.Mutex
	lru   lruList

	active atomic.Int64 // live sessions (armed + delivered)
	armed  atomic.Int64 // armed sessions (the waiter population)

	registered atomic.Uint64
	renewed    atomic.Uint64
	cancelled  atomic.Uint64
	evicted    atomic.Uint64
	expired    atomic.Uint64
	rejected   atomic.Uint64
	closedOut  atomic.Uint64 // sessions cancelled by Close
	delivered  atomic.Uint64
	coalesced  atomic.Uint64
	futile     atomic.Uint64
}

// New constructs and starts a daemon: Shards inner monitors with one
// version cell and one compiled threshold predicate per key on its owner
// shard, and Dispatchers delivery goroutines.
func New(cfg Config) *Daemon {
	cfg = cfg.withDefaults()
	d := &Daemon{cfg: cfg, quit: make(chan struct{})}
	d.vers = make([]*core.IntCell, cfg.Keys)
	d.preds = make([]*core.Predicate, cfg.Keys)
	d.sm = shard.New(cfg.Shards,
		shard.WithMonitorOptions(cfg.MonitorOptions...),
		shard.WithSetup(func(si int, m *core.Monitor) {
			for k := 0; k < cfg.Keys; k++ {
				if shard.IndexFor(uint64(k), cfg.Shards) == si {
					d.vers[k] = m.NewInt(fmt.Sprintf("v%d", k), 0)
				}
			}
		}))
	for k := 0; k < cfg.Keys; k++ {
		d.preds[k] = d.sm.MustCompileAt(uint64(k), fmt.Sprintf("v%d >= want", k))
	}
	// Per-dispatcher capacity: the delivery channel must hold one entry
	// per live armed session plus one per zombie, so quota == cap(ch) and
	// admission enforces live+zombies < quota. Doubling the fair share
	// keeps round-robin imbalance and zombie transients from rejecting
	// below MaxSessions in practice.
	quota := 2*((cfg.MaxSessions+cfg.Dispatchers-1)/cfg.Dispatchers) + 64
	d.disp = make([]*dispatcher, cfg.Dispatchers)
	for i := range d.disp {
		d.disp[i] = &dispatcher{
			d: d, ch: make(chan int, quota), quota: quota,
			sessions: make(map[int]*Session),
		}
		d.wg.Add(1)
		go d.disp[i].run()
	}
	if cfg.IdleExpiry > 0 {
		d.wg.Add(1)
		go d.janitor()
	}
	return d
}

// janitor is the idle-expiry sweeper: at a fraction of IdleExpiry it
// expires every armed session whose last activity is older than the
// deadline. Scanning from the LRU tail terminates at the first
// fresh-enough session, so a sweep costs O(expired), not O(armed).
func (d *Daemon) janitor() {
	defer d.wg.Done()
	tick := d.cfg.IdleExpiry / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-d.quit:
			return
		case now := <-t.C:
			d.expireIdle(now)
		}
	}
}

// expireIdle cancels (with ErrExpired) armed sessions untouched since
// before now − IdleExpiry. The same pop-and-recheck discipline as
// maybeEvict: the LRU pop is provisional, and only a session still armed,
// not mid-claim, and untouched since the pop (epoch match) is expired —
// anything else self-heals its LRU position on its next activity.
func (d *Daemon) expireIdle(now time.Time) {
	cutoff := now.Add(-d.cfg.IdleExpiry)
	for {
		d.lruMu.Lock()
		if e := d.lru.tail; e == nil || e.s.lastTouch.After(cutoff) {
			d.lruMu.Unlock()
			return
		}
		s, epoch := d.lru.popOldest()
		d.lruMu.Unlock()
		s.dp.mu.Lock()
		if s.state == sessionArmed && !s.claiming && s.lruEpoch == epoch {
			s.dp.cancelLocked(s, ErrExpired)
		}
		s.dp.mu.Unlock()
	}
}

// NumKeys returns the size of the watchable key space.
func (d *Daemon) NumKeys() int { return d.cfg.Keys }

// ActiveSessions returns the current live session count.
func (d *Daemon) ActiveSessions() int64 { return d.active.Load() }

// ArmedSessions returns the current armed-waiter count (the population
// MaxIdle bounds).
func (d *Daemon) ArmedSessions() int64 { return d.armed.Load() }

// Waiting returns the registered-waiter count across all shards.
func (d *Daemon) Waiting() int { return d.sm.Waiting() }

// Version returns key's current version.
func (d *Daemon) Version(key uint64) (int64, error) {
	if key >= uint64(d.cfg.Keys) {
		return 0, ErrBadKey
	}
	var v int64
	d.sm.Do(key, func(*core.Monitor) { v = d.vers[key].Get() })
	return v, nil
}

// Publish bumps key's version inside its owner shard — the exit's relay
// search wakes eligible watchers — and returns the new version.
func (d *Daemon) Publish(key uint64) (int64, error) {
	if key >= uint64(d.cfg.Keys) {
		return 0, ErrBadKey
	}
	var v int64
	d.sm.Do(key, func(*core.Monitor) { v = d.vers[key].Add(1) })
	return v, nil
}

// Register opens a standing watch on key for versions after the current
// one. It fails with ErrSessionLimit when the daemon is at MaxSessions or
// the assigned dispatcher is at capacity (load shedding: back off and
// retry), and with ErrClosed after Close.
func (d *Daemon) Register(key uint64) (*Session, error) {
	if key >= uint64(d.cfg.Keys) {
		return nil, ErrBadKey
	}
	if d.closed.Load() {
		return nil, ErrClosed
	}
	if n := d.active.Add(1); n > int64(d.cfg.MaxSessions) {
		d.active.Add(-1)
		d.rejected.Add(1)
		return nil, ErrSessionLimit
	}
	dp := d.disp[d.rr.Add(1)%uint64(len(d.disp))]
	var cur int64
	d.sm.Do(key, func(*core.Monitor) { cur = d.vers[key].Get() })

	dp.mu.Lock()
	if d.closed.Load() {
		// Close cancels every session under each dispatcher's lock after
		// setting closed; re-checking under the lock means no session can
		// slip in behind that sweep.
		dp.mu.Unlock()
		d.active.Add(-1)
		return nil, ErrClosed
	}
	if dp.live+dp.zombies >= dp.quota {
		dp.mu.Unlock()
		d.active.Add(-1)
		d.rejected.Add(1)
		return nil, ErrSessionLimit
	}
	dp.nextID++
	s := &Session{
		d: d, dp: dp, id: dp.nextID, key: key,
		state: sessionArmed, seen: cur, want: cur + 1,
	}
	if d.cfg.OnEvent == nil {
		s.events = make(chan Event, d.cfg.EventBuffer)
	}
	dp.sessions[s.id] = s
	dp.live++
	dp.arm(s)
	d.armed.Add(1)
	d.lruPush(s)
	dp.mu.Unlock()

	d.registered.Add(1)
	d.maybeEvict()
	return s, nil
}

// maybeEvict enforces the MaxIdle watermark: while the armed-waiter
// population exceeds it, the least-recently-active armed session is
// cancelled with ErrEvicted. Sessions that turn out to be mid-delivery or
// freshly renewed are skipped (their LRU position self-heals on the next
// activity).
func (d *Daemon) maybeEvict() {
	if d.cfg.MaxIdle <= 0 {
		return
	}
	// The attempt bound keeps a burst of skips (sessions racing into
	// delivery) from spinning; pressure that remains is relieved by the
	// next Register or Renew.
	attempts := 2*int(d.armed.Load()-int64(d.cfg.MaxIdle)) + 8
	for i := 0; i < attempts && d.armed.Load() > int64(d.cfg.MaxIdle); i++ {
		d.lruMu.Lock()
		s, epoch := d.lru.popOldest()
		d.lruMu.Unlock()
		if s == nil {
			return
		}
		s.dp.mu.Lock()
		if s.state == sessionArmed && !s.claiming && s.lruEpoch == epoch {
			s.dp.cancelLocked(s, ErrEvicted)
		}
		s.dp.mu.Unlock()
	}
}

// Stats is a point-in-time snapshot of the daemon's counters, the merged
// wake-to-claim histogram, and the underlying monitor statistics.
type Stats struct {
	Active int64 `json:"active"` // live sessions
	Armed  int64 `json:"armed"`  // armed waiters (bounded by MaxIdle)

	Registered uint64 `json:"registered"`
	Renewed    uint64 `json:"renewed"`
	Cancelled  uint64 `json:"cancelled"` // client cancels
	Evicted    uint64 `json:"evicted"`   // memory-pressure evictions
	Expired    uint64 `json:"expired"`   // idle-deadline expiries
	Rejected   uint64 `json:"rejected"`  // admission-control rejections
	ClosedOut  uint64 `json:"closed_out"`
	Delivered  uint64 `json:"delivered"`
	Coalesced  uint64 `json:"coalesced"`
	Futile     uint64 `json:"futile"` // claims that found the predicate falsified

	Zombies int64 `json:"zombies"` // queued final notifications (0 after drain)
	Waiting int   `json:"waiting"` // registered waiters across shards

	WakeToClaim stats.Histogram `json:"wake_to_claim"`
	Monitor     core.Stats      `json:"monitor"`
}

// String renders the one-line summary soak reports print.
func (s Stats) String() string {
	return fmt.Sprintf(
		"active=%d armed=%d registered=%d renewed=%d delivered=%d cancelled=%d evicted=%d expired=%d rejected=%d coalesced=%d futile=%d wake[%s]",
		s.Active, s.Armed, s.Registered, s.Renewed, s.Delivered,
		s.Cancelled, s.Evicted, s.Expired, s.Rejected, s.Coalesced, s.Futile, s.WakeToClaim.String())
}

// Stats snapshots the daemon.
func (d *Daemon) Stats() Stats {
	st := Stats{
		Active:     d.active.Load(),
		Armed:      d.armed.Load(),
		Registered: d.registered.Load(),
		Renewed:    d.renewed.Load(),
		Cancelled:  d.cancelled.Load(),
		Evicted:    d.evicted.Load(),
		Expired:    d.expired.Load(),
		Rejected:   d.rejected.Load(),
		ClosedOut:  d.closedOut.Load(),
		Delivered:  d.delivered.Load(),
		Coalesced:  d.coalesced.Load(),
		Futile:     d.futile.Load(),
		Waiting:    d.sm.Waiting(),
		Monitor:    d.sm.Stats(),
	}
	for _, dp := range d.disp {
		dp.mu.Lock()
		st.Zombies += int64(dp.zombies)
		h := dp.hist
		dp.mu.Unlock()
		st.WakeToClaim.Merge(&h)
	}
	return st
}

// Close shuts the daemon down: new registrations are refused, every
// session is cancelled (sessions see ErrClosed), dispatcher channels are
// drained, and the dispatcher goroutines exit. It returns an error if the
// drain leaks — a session, a zombie notification, or a registered waiter
// left behind. Closing twice returns ErrClosed.
func (d *Daemon) Close() error {
	if d.closed.Swap(true) {
		return ErrClosed
	}
	for _, dp := range d.disp {
		dp.mu.Lock()
		victims := make([]*Session, 0, len(dp.sessions))
		for _, s := range dp.sessions {
			victims = append(victims, s)
		}
		for _, s := range victims {
			dp.cancelLocked(s, ErrClosed)
		}
		dp.mu.Unlock()
	}
	// Wait for in-flight claims to finalize and queued notifications to
	// drain; the dispatchers are still running and consume them.
	drained := func() bool {
		for _, dp := range d.disp {
			dp.mu.Lock()
			ok := dp.live == 0 && dp.zombies == 0
			dp.mu.Unlock()
			if !ok {
				return false
			}
		}
		return true
	}
	deadline := time.Now().Add(10 * time.Second)
	for !drained() {
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(200 * time.Microsecond)
	}
	close(d.quit)
	d.wg.Wait()
	var live, zombies int
	for _, dp := range d.disp {
		live += dp.live
		zombies += dp.zombies
	}
	if live != 0 || zombies != 0 {
		return fmt.Errorf("watchd: drain leaked %d sessions and %d queued notifications", live, zombies)
	}
	if w := d.sm.Waiting(); w != 0 {
		return fmt.Errorf("watchd: drain leaked %d registered waiters", w)
	}
	return nil
}

// lruElem / lruList is a tiny intrusive doubly-linked list ordering armed
// sessions by last activity (front = most recent). All operations run
// under the daemon's lruMu.
type lruElem struct {
	s          *Session
	prev, next *lruElem
}

type lruList struct {
	head, tail *lruElem // head = most recent
}

func (l *lruList) pushFront(e *lruElem) {
	e.prev = nil
	e.next = l.head
	if l.head != nil {
		l.head.prev = e
	}
	l.head = e
	if l.tail == nil {
		l.tail = e
	}
}

func (l *lruList) remove(e *lruElem) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		l.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// popOldest removes and returns the least-recently-active session and its
// LRU epoch at pop time (nil when empty). The caller re-checks state and
// epoch under the session's dispatcher lock before acting.
func (l *lruList) popOldest() (*Session, uint64) {
	e := l.tail
	if e == nil {
		return nil, 0
	}
	l.remove(e)
	s := e.s
	s.lruEl = nil
	return s, s.lruEpoch
}

// lruPush inserts an armed session at the recent end. Caller holds the
// session's dispatcher lock.
func (d *Daemon) lruPush(s *Session) {
	d.lruMu.Lock()
	if s.lruEl == nil {
		s.lruEl = &lruElem{s: s}
	}
	s.lruEpoch++
	s.lastTouch = time.Now()
	d.lru.pushFront(s.lruEl)
	d.lruMu.Unlock()
}

// lruTouch moves a session to the recent end (re-inserting it if an
// evictor popped it concurrently). Caller holds the dispatcher lock.
func (d *Daemon) lruTouch(s *Session) {
	d.lruMu.Lock()
	if s.lruEl != nil {
		d.lru.remove(s.lruEl)
	} else {
		s.lruEl = &lruElem{s: s}
	}
	s.lruEpoch++
	s.lastTouch = time.Now()
	d.lru.pushFront(s.lruEl)
	d.lruMu.Unlock()
}

// lruRemove drops a session from the LRU (no-op if already popped).
// Caller holds the dispatcher lock.
func (d *Daemon) lruRemove(s *Session) {
	d.lruMu.Lock()
	if s.lruEl != nil {
		d.lru.remove(s.lruEl)
		s.lruEl = nil
	}
	d.lruMu.Unlock()
}
