package watchd

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"time"
)

// SoakConfig shapes a duration-based soak run: hold Sessions standing
// watches while churners replace sessions and publishers bump versions,
// then drain and verify nothing leaked.
type SoakConfig struct {
	Daemon Config

	Sessions int           // standing session population; default 1000
	Duration time.Duration // measurement interval after fill; default 1s

	Churners   int           // session-replacement generators; default 2
	ChurnEvery time.Duration // per-churner replacement pacing; default 1ms

	Publishers   int           // version-bump generators; default 2
	PublishEvery time.Duration // per-publisher pacing; default 200µs

	Seed int64 // publisher key-choice seed; 0 means a fixed default

	// OnDaemon, when non-nil, receives the daemon right after construction
	// and before the fill, so callers can register live gauges (cmd/watchd
	// -metrics-addr) or otherwise observe it while the soak runs. The
	// daemon is closed by the time Soak returns.
	OnDaemon func(*Daemon)
}

func (c SoakConfig) withDefaults() SoakConfig {
	if c.Sessions <= 0 {
		c.Sessions = 1000
	}
	if c.Duration <= 0 {
		c.Duration = time.Second
	}
	if c.Churners <= 0 {
		c.Churners = 2
	}
	if c.ChurnEvery <= 0 {
		c.ChurnEvery = time.Millisecond
	}
	if c.Publishers <= 0 {
		c.Publishers = 2
	}
	if c.PublishEvery <= 0 {
		c.PublishEvery = 200 * time.Microsecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// SoakResult is what a soak run measured. Latency is the merged
// wake-to-claim histogram; SustainedMin/Max bracket the live session
// count observed during the measurement interval, proving the population
// was actually held, not just reached.
type SoakResult struct {
	Sessions int           `json:"sessions"`
	Duration time.Duration `json:"duration_ns"`

	SustainedMin int64 `json:"sustained_min"`
	SustainedMax int64 `json:"sustained_max"`

	Published uint64 `json:"published"`
	Churned   uint64 `json:"churned"`

	Stats Stats `json:"stats"`

	LeakedGoroutines int `json:"leaked_goroutines"`
	ResidualWaiters  int `json:"residual_waiters"`
}

// Soak runs the configured scenario: build a daemon whose deliveries
// auto-renew (every event immediately re-arms, so the population stays
// standing), fill it to Sessions, run churners and publishers for
// Duration, then drain and check for leaked goroutines and residual
// waiters. A non-nil error reports a failed invariant — a drain leak, a
// goroutine leak, or a population that could not be sustained.
func Soak(cfg SoakConfig) (SoakResult, error) {
	cfg = cfg.withDefaults()
	res := SoakResult{Sessions: cfg.Sessions, Duration: cfg.Duration}

	baseline := runtime.NumGoroutine()

	dcfg := cfg.Daemon
	dcfg.OnEvent = func(ev Event) { ev.Session.Renew() }
	if dcfg.MaxSessions <= 0 {
		// Leave admission headroom above the standing population so the
		// churners' register-then-cancel ordering does not starve; tight
		// limits can be configured explicitly to exercise rejection.
		dcfg.MaxSessions = cfg.Sessions + cfg.Sessions/8 + 16
	}
	d := New(dcfg)
	if cfg.OnDaemon != nil {
		cfg.OnDaemon(d)
	}

	sessions := make([]*Session, cfg.Sessions)
	for i := range sessions {
		s, err := d.Register(uint64(i % d.NumKeys()))
		if err != nil {
			d.Close()
			return res, fmt.Errorf("soak fill at %d/%d: %w", i, cfg.Sessions, err)
		}
		sessions[i] = s
	}

	stop := make(chan struct{})
	done := make(chan struct{})
	workers := 0
	var churned atomic.Uint64

	// Churners replace sessions in their own partition: register the
	// successor first (briefly overshooting the population, exercising the
	// admission gate), fall back to cancel-first when rejected.
	per := (len(sessions) + cfg.Churners - 1) / cfg.Churners
	for c := 0; c < cfg.Churners; c++ {
		lo := c * per
		hi := lo + per
		if hi > len(sessions) {
			hi = len(sessions)
		}
		if lo >= hi {
			break
		}
		workers++
		go func(part []*Session, seed int64) {
			defer func() { done <- struct{}{} }()
			rng := rand.New(rand.NewSource(seed))
			tick := time.NewTicker(cfg.ChurnEvery)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
				}
				i := rng.Intn(len(part))
				key := uint64(rng.Intn(d.NumKeys()))
				next, err := d.Register(key)
				if err != nil {
					// At the admission limit: free the slot first, retry.
					part[i].Cancel()
					next, err = d.Register(key)
					if err != nil {
						continue // rejected again (racing churners); skip
					}
				} else {
					part[i].Cancel()
				}
				part[i] = next
				churned.Add(1)
			}
		}(sessions[lo:hi], cfg.Seed+int64(c)+1)
	}

	// Publishers bump random keys.
	publishCounts := make([]uint64, cfg.Publishers)
	for p := 0; p < cfg.Publishers; p++ {
		workers++
		go func(p int) {
			defer func() { done <- struct{}{} }()
			rng := rand.New(rand.NewSource(cfg.Seed + 1000 + int64(p)))
			tick := time.NewTicker(cfg.PublishEvery)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
				}
				if _, err := d.Publish(uint64(rng.Intn(d.NumKeys()))); err == nil {
					publishCounts[p]++
				}
			}
		}(p)
	}

	// Sampler tracks the sustained population during the interval.
	res.SustainedMin, res.SustainedMax = d.ActiveSessions(), d.ActiveSessions()
	workers++
	go func() {
		defer func() { done <- struct{}{} }()
		tick := time.NewTicker(10 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			n := d.ActiveSessions()
			if n < res.SustainedMin {
				res.SustainedMin = n
			}
			if n > res.SustainedMax {
				res.SustainedMax = n
			}
		}
	}()

	time.Sleep(cfg.Duration)
	close(stop)
	for i := 0; i < workers; i++ {
		<-done
	}
	for _, p := range publishCounts {
		res.Published += p
	}
	res.Churned = churned.Load()

	closeErr := d.Close()
	res.Stats = d.Stats()
	res.ResidualWaiters = res.Stats.Waiting

	// The generators are gone and Close drained the dispatchers; the
	// goroutine count should be back at the baseline. Poll briefly — the
	// runtime reaps exiting goroutines asynchronously.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine() - baseline; n <= 0 {
			res.LeakedGoroutines = 0
			break
		} else if time.Now().After(deadline) {
			res.LeakedGoroutines = n
			break
		}
		time.Sleep(time.Millisecond)
	}

	switch {
	case closeErr != nil:
		return res, fmt.Errorf("soak drain: %w", closeErr)
	case res.LeakedGoroutines > 0:
		return res, fmt.Errorf("soak leaked %d goroutines", res.LeakedGoroutines)
	case res.ResidualWaiters > 0:
		return res, fmt.Errorf("soak left %d residual waiters", res.ResidualWaiters)
	case res.SustainedMin < int64(cfg.Sessions)/2:
		return res, fmt.Errorf("population collapsed: sustained minimum %d of %d sessions",
			res.SustainedMin, cfg.Sessions)
	}
	return res, nil
}
