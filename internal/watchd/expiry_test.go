package watchd

import (
	"errors"
	"testing"
	"time"

	"repro/internal/testutil"
)

// TestIdleExpiry: armed sessions that see no activity for IdleExpiry are
// cancelled by the janitor with ErrExpired — a cause distinct from
// ErrEvicted — and counted in Stats.Expired, while the rest of the
// daemon's accounting (armed population, drain) stays exact.
func TestIdleExpiry(t *testing.T) {
	cfg := smallConfig()
	cfg.IdleExpiry = 20 * time.Millisecond
	d := New(cfg)
	defer testutil.NoLeaks(t, d)()
	defer mustClose(t, d)

	const n = 6
	sessions := make([]*Session, n)
	for i := range sessions {
		s, err := d.Register(uint64(i))
		if err != nil {
			t.Fatalf("register %d: %v", i, err)
		}
		sessions[i] = s
	}
	// Nothing publishes, nothing renews: every session crosses the idle
	// deadline and the janitor reaps the whole population.
	testutil.WaitFor(t, 5*time.Second, 0, func() bool { return d.ArmedSessions() == 0 },
		"armed population expired")
	for i, s := range sessions {
		if err := s.Err(); !errors.Is(err, ErrExpired) {
			t.Errorf("session %d err = %v, want ErrExpired", i, err)
		}
		if errors.Is(s.Err(), ErrEvicted) {
			t.Errorf("session %d expiry must not read as eviction", i)
		}
		if err := s.Renew(); !errors.Is(err, ErrExpired) {
			t.Errorf("Renew on expired session %d = %v, want ErrExpired", i, err)
		}
	}
	st := d.Stats()
	if st.Expired != n {
		t.Errorf("Stats.Expired = %d, want %d", st.Expired, n)
	}
	if st.Evicted != 0 {
		t.Errorf("Stats.Evicted = %d, want 0 (no MaxIdle pressure configured)", st.Evicted)
	}
	if st.Active != 0 {
		t.Errorf("Stats.Active = %d after full expiry", st.Active)
	}
}

// TestIdleExpiryKeepAlive: Renew keep-alive touches and deliveries reset
// the idle clock, so an active session outlives several expiry windows
// while an abandoned one on the same daemon expires.
func TestIdleExpiryKeepAlive(t *testing.T) {
	cfg := smallConfig()
	cfg.IdleExpiry = 40 * time.Millisecond
	d := New(cfg)
	defer testutil.NoLeaks(t, d)()
	defer mustClose(t, d)

	kept, err := d.Register(1)
	if err != nil {
		t.Fatal(err)
	}
	abandoned, err := d.Register(2)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(4 * cfg.IdleExpiry)
	for time.Now().Before(deadline) {
		if err := kept.Renew(); err != nil {
			t.Fatalf("keep-alive Renew: %v", err)
		}
		time.Sleep(cfg.IdleExpiry / 8)
	}
	if err := kept.Err(); err != nil {
		t.Fatalf("kept session died across %v of keep-alives: %v", 4*cfg.IdleExpiry, err)
	}
	if !errors.Is(abandoned.Err(), ErrExpired) {
		t.Fatalf("abandoned session err = %v, want ErrExpired", abandoned.Err())
	}
	// A delivery also counts as activity: publish, let the auto-renew-less
	// session sit delivered (delivered sessions hold no armed waiter, so
	// the janitor has nothing to reap), then renew and verify it is live.
	if _, err := d.Publish(1); err != nil {
		t.Fatal(err)
	}
	ev := recvEvent(t, kept)
	if ev.Version < 1 {
		t.Fatalf("delivered version = %d", ev.Version)
	}
	time.Sleep(2 * cfg.IdleExpiry)
	if err := kept.Renew(); err != nil {
		t.Fatalf("Renew after delivered dwell = %v", err)
	}
	kept.Cancel()
}

// TestIdleExpirySoak is the soak assertion for the time-based reaper:
// a churned population under an idle deadline keeps expiring stragglers
// (Expired > 0) while the churners refill the slots, and the run still
// drains leak-free — expiry composes with cancellation, delivery, and
// eviction bookkeeping instead of corrupting it.
func TestIdleExpirySoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak runs are not short")
	}
	res, err := Soak(SoakConfig{
		Sessions: 200,
		Duration: 500 * time.Millisecond,
		Churners: 2,
		Daemon: Config{
			// Default key space (4096) over 200 sessions: publishes rarely
			// land on a watched key, so un-churned slots go idle and cross
			// the deadline.
			IdleExpiry: 100 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatalf("soak: %v\n%+v", err, res)
	}
	if res.Stats.Expired == 0 {
		t.Fatalf("soak expired no sessions under a %v idle deadline: %s",
			100*time.Millisecond, res.Stats.String())
	}
	if res.ResidualWaiters != 0 || res.LeakedGoroutines != 0 {
		t.Fatalf("soak leaked: %d waiters, %d goroutines", res.ResidualWaiters, res.LeakedGoroutines)
	}
}
