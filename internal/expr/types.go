package expr

import "fmt"

// Type is the type of an expression: the language has exactly two.
type Type int

// The two value types of the predicate language.
const (
	TypeInvalid Type = iota
	TypeInt
	TypeBool
)

func (t Type) String() string {
	switch t {
	case TypeInt:
		return "int"
	case TypeBool:
		return "bool"
	}
	return "invalid"
}

// TypeError reports a type-checking failure.
type TypeError struct {
	Node Node
	Msg  string
}

func (e *TypeError) Error() string {
	return fmt.Sprintf("type error in %q: %s", e.Node.String(), e.Msg)
}

func typeErrf(n Node, format string, args ...any) error {
	return &TypeError{Node: n, Msg: fmt.Sprintf(format, args...)}
}

// VarTypes resolves a variable name to its declared type. The second result
// reports whether the variable is known.
type VarTypes func(name string) (Type, bool)

// TypeCheck infers the type of n given variable types, rejecting ill-typed
// trees: arithmetic needs ints, && || ! need bools, < <= > >= compare ints,
// and == != compare two ints or two bools.
func TypeCheck(n Node, vars VarTypes) (Type, error) {
	switch n := n.(type) {
	case IntLit:
		return TypeInt, nil
	case BoolLit:
		return TypeBool, nil
	case Var:
		t, ok := vars(n.Name)
		if !ok {
			return TypeInvalid, typeErrf(n, "undeclared variable %q", n.Name)
		}
		if t != TypeInt && t != TypeBool {
			return TypeInvalid, typeErrf(n, "variable %q has invalid type", n.Name)
		}
		return t, nil
	case Unary:
		xt, err := TypeCheck(n.X, vars)
		if err != nil {
			return TypeInvalid, err
		}
		switch n.Op {
		case OpNeg:
			if xt != TypeInt {
				return TypeInvalid, typeErrf(n, "operand of unary - must be int, got %s", xt)
			}
			return TypeInt, nil
		case OpNot:
			if xt != TypeBool {
				return TypeInvalid, typeErrf(n, "operand of ! must be bool, got %s", xt)
			}
			return TypeBool, nil
		}
		return TypeInvalid, typeErrf(n, "invalid unary operator %s", n.Op)
	case Binary:
		lt, err := TypeCheck(n.L, vars)
		if err != nil {
			return TypeInvalid, err
		}
		rt, err := TypeCheck(n.R, vars)
		if err != nil {
			return TypeInvalid, err
		}
		switch n.Op {
		case OpAdd, OpSub, OpMul, OpDiv, OpMod:
			if lt != TypeInt || rt != TypeInt {
				return TypeInvalid, typeErrf(n, "operands of %s must be int, got %s and %s", n.Op, lt, rt)
			}
			return TypeInt, nil
		case OpLt, OpLe, OpGt, OpGe:
			if lt != TypeInt || rt != TypeInt {
				return TypeInvalid, typeErrf(n, "operands of %s must be int, got %s and %s", n.Op, lt, rt)
			}
			return TypeBool, nil
		case OpEq, OpNe:
			if lt != rt {
				return TypeInvalid, typeErrf(n, "operands of %s must have the same type, got %s and %s", n.Op, lt, rt)
			}
			return TypeBool, nil
		case OpAnd, OpOr:
			if lt != TypeBool || rt != TypeBool {
				return TypeInvalid, typeErrf(n, "operands of %s must be bool, got %s and %s", n.Op, lt, rt)
			}
			return TypeBool, nil
		}
		return TypeInvalid, typeErrf(n, "invalid binary operator %s", n.Op)
	}
	return TypeInvalid, typeErrf(n, "unknown node kind %T", n)
}

// CheckBool type-checks n and requires it to be a boolean predicate.
func CheckBool(n Node, vars VarTypes) error {
	t, err := TypeCheck(n, vars)
	if err != nil {
		return err
	}
	if t != TypeBool {
		return typeErrf(n, "predicate must be bool, got %s", t)
	}
	return nil
}

// MapTypes adapts a plain map to the VarTypes interface.
func MapTypes(m map[string]Type) VarTypes {
	return func(name string) (Type, bool) {
		t, ok := m[name]
		return t, ok
	}
}
