package expr

import "fmt"

// This file compiles well-typed expressions into closure trees over resolved
// variable accessors. The condition manager evaluates globalized predicates
// on every relay-signal decision, so the hot path must not re-walk the AST
// or hash variable names; compilation resolves each variable reference once.

// Getter reads the current value of a variable. Booleans are encoded as
// 0/1 in the int64 so one accessor shape serves both types; the compiler
// consults the declared Type to keep the encoding honest.
type Getter func() int64

// Resolver maps a variable name to its accessor and declared type at
// compile time. Returning ok=false fails the compilation.
type Resolver func(name string) (get Getter, typ Type, ok bool)

// BoolFn is a compiled boolean expression.
type BoolFn func() bool

// IntFn is a compiled integer expression.
type IntFn func() int64

// CompileError reports a compilation failure.
type CompileError struct {
	Node Node
	Msg  string
}

func (e *CompileError) Error() string {
	return fmt.Sprintf("compiling %q: %s", e.Node.String(), e.Msg)
}

func compileErrf(n Node, format string, args ...any) error {
	return &CompileError{Node: n, Msg: fmt.Sprintf(format, args...)}
}

// CompileBool compiles a boolean expression. Division or modulus by zero in
// a compiled predicate evaluates to false rather than panicking: a predicate
// that cannot be evaluated is treated as "not yet true", which is the only
// safe answer while holding the monitor lock.
func CompileBool(n Node, resolve Resolver) (BoolFn, error) {
	f, t, err := compile(n, resolve)
	if err != nil {
		return nil, err
	}
	if t != TypeBool {
		return nil, compileErrf(n, "expected bool expression, got %s", t)
	}
	return func() bool { return f() != 0 }, nil
}

// CompileInt compiles an integer expression.
func CompileInt(n Node, resolve Resolver) (IntFn, error) {
	f, t, err := compile(n, resolve)
	if err != nil {
		return nil, err
	}
	if t != TypeInt {
		return nil, compileErrf(n, "expected int expression, got %s", t)
	}
	return IntFn(f), nil
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func compile(n Node, resolve Resolver) (Getter, Type, error) {
	switch n := n.(type) {
	case IntLit:
		v := n.Value
		return func() int64 { return v }, TypeInt, nil
	case BoolLit:
		v := b2i(n.Value)
		return func() int64 { return v }, TypeBool, nil
	case Var:
		get, t, ok := resolve(n.Name)
		if !ok {
			return nil, TypeInvalid, compileErrf(n, "unresolved variable %q", n.Name)
		}
		return get, t, nil
	case Unary:
		x, xt, err := compile(n.X, resolve)
		if err != nil {
			return nil, TypeInvalid, err
		}
		switch n.Op {
		case OpNeg:
			if xt != TypeInt {
				return nil, TypeInvalid, compileErrf(n, "unary - on %s", xt)
			}
			return func() int64 { return -x() }, TypeInt, nil
		case OpNot:
			if xt != TypeBool {
				return nil, TypeInvalid, compileErrf(n, "! on %s", xt)
			}
			return func() int64 { return 1 - x() }, TypeBool, nil
		}
		return nil, TypeInvalid, compileErrf(n, "invalid unary op %s", n.Op)
	case Binary:
		l, lt, err := compile(n.L, resolve)
		if err != nil {
			return nil, TypeInvalid, err
		}
		r, rt, err := compile(n.R, resolve)
		if err != nil {
			return nil, TypeInvalid, err
		}
		needInts := func() error {
			if lt != TypeInt || rt != TypeInt {
				return compileErrf(n, "%s on %s and %s", n.Op, lt, rt)
			}
			return nil
		}
		switch n.Op {
		case OpAdd:
			if err := needInts(); err != nil {
				return nil, TypeInvalid, err
			}
			return func() int64 { return l() + r() }, TypeInt, nil
		case OpSub:
			if err := needInts(); err != nil {
				return nil, TypeInvalid, err
			}
			return func() int64 { return l() - r() }, TypeInt, nil
		case OpMul:
			if err := needInts(); err != nil {
				return nil, TypeInvalid, err
			}
			return func() int64 { return l() * r() }, TypeInt, nil
		case OpDiv:
			if err := needInts(); err != nil {
				return nil, TypeInvalid, err
			}
			return func() int64 {
				d := r()
				if d == 0 {
					return 0
				}
				return l() / d
			}, TypeInt, nil
		case OpMod:
			if err := needInts(); err != nil {
				return nil, TypeInvalid, err
			}
			return func() int64 {
				d := r()
				if d == 0 {
					return 0
				}
				return l() % d
			}, TypeInt, nil
		case OpLt:
			if err := needInts(); err != nil {
				return nil, TypeInvalid, err
			}
			return func() int64 { return b2i(l() < r()) }, TypeBool, nil
		case OpLe:
			if err := needInts(); err != nil {
				return nil, TypeInvalid, err
			}
			return func() int64 { return b2i(l() <= r()) }, TypeBool, nil
		case OpGt:
			if err := needInts(); err != nil {
				return nil, TypeInvalid, err
			}
			return func() int64 { return b2i(l() > r()) }, TypeBool, nil
		case OpGe:
			if err := needInts(); err != nil {
				return nil, TypeInvalid, err
			}
			return func() int64 { return b2i(l() >= r()) }, TypeBool, nil
		case OpEq, OpNe:
			if lt != rt {
				return nil, TypeInvalid, compileErrf(n, "%s on %s and %s", n.Op, lt, rt)
			}
			if n.Op == OpEq {
				return func() int64 { return b2i(l() == r()) }, TypeBool, nil
			}
			return func() int64 { return b2i(l() != r()) }, TypeBool, nil
		case OpAnd:
			if lt != TypeBool || rt != TypeBool {
				return nil, TypeInvalid, compileErrf(n, "&& on %s and %s", lt, rt)
			}
			return func() int64 {
				if l() == 0 {
					return 0
				}
				return r()
			}, TypeBool, nil
		case OpOr:
			if lt != TypeBool || rt != TypeBool {
				return nil, TypeInvalid, compileErrf(n, "|| on %s and %s", lt, rt)
			}
			return func() int64 {
				if l() != 0 {
					return 1
				}
				return r()
			}, TypeBool, nil
		}
		return nil, TypeInvalid, compileErrf(n, "invalid binary op %s", n.Op)
	}
	return nil, TypeInvalid, compileErrf(n, "unknown node kind %T", n)
}
