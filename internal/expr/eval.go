package expr

import (
	"errors"
	"fmt"
)

// Value is a runtime value of the predicate language: an int64 or a bool.
type Value struct {
	Type Type
	I    int64
	B    bool
}

// IntValue wraps an int64.
func IntValue(v int64) Value { return Value{Type: TypeInt, I: v} }

// BoolValue wraps a bool.
func BoolValue(v bool) Value { return Value{Type: TypeBool, B: v} }

func (v Value) String() string {
	switch v.Type {
	case TypeInt:
		return fmt.Sprintf("%d", v.I)
	case TypeBool:
		return fmt.Sprintf("%t", v.B)
	}
	return "<invalid>"
}

// Lit converts a value to its literal AST node.
func (v Value) Lit() Node {
	switch v.Type {
	case TypeInt:
		return IntLit{Value: v.I}
	case TypeBool:
		return BoolLit{Value: v.B}
	}
	panic("expr: Lit on invalid Value")
}

// Env resolves variable names to values during evaluation.
type Env func(name string) (Value, bool)

// MapEnv adapts a plain map to Env.
func MapEnv(m map[string]Value) Env {
	return func(name string) (Value, bool) {
		v, ok := m[name]
		return v, ok
	}
}

// ErrDivByZero is returned when / or % is applied with a zero divisor.
var ErrDivByZero = errors.New("expr: division by zero")

// EvalError reports an evaluation failure.
type EvalError struct {
	Node Node
	Err  error
}

func (e *EvalError) Error() string {
	return fmt.Sprintf("evaluating %q: %v", e.Node.String(), e.Err)
}

func (e *EvalError) Unwrap() error { return e.Err }

func evalErrf(n Node, format string, args ...any) error {
	return &EvalError{Node: n, Err: fmt.Errorf(format, args...)}
}

// Eval evaluates a (well-typed) expression under env. Evaluation of an
// ill-typed tree returns an error rather than panicking, so the runtime can
// surface user predicate mistakes cleanly.
func Eval(n Node, env Env) (Value, error) {
	switch n := n.(type) {
	case IntLit:
		return IntValue(n.Value), nil
	case BoolLit:
		return BoolValue(n.Value), nil
	case Var:
		v, ok := env(n.Name)
		if !ok {
			return Value{}, evalErrf(n, "unbound variable %q", n.Name)
		}
		return v, nil
	case Unary:
		x, err := Eval(n.X, env)
		if err != nil {
			return Value{}, err
		}
		switch n.Op {
		case OpNeg:
			if x.Type != TypeInt {
				return Value{}, evalErrf(n, "unary - on %s", x.Type)
			}
			return IntValue(-x.I), nil
		case OpNot:
			if x.Type != TypeBool {
				return Value{}, evalErrf(n, "! on %s", x.Type)
			}
			return BoolValue(!x.B), nil
		}
		return Value{}, evalErrf(n, "invalid unary op %s", n.Op)
	case Binary:
		l, err := Eval(n.L, env)
		if err != nil {
			return Value{}, err
		}
		// Short-circuit booleans before evaluating the right side.
		if n.Op == OpAnd || n.Op == OpOr {
			if l.Type != TypeBool {
				return Value{}, evalErrf(n, "%s on %s", n.Op, l.Type)
			}
			if n.Op == OpAnd && !l.B {
				return BoolValue(false), nil
			}
			if n.Op == OpOr && l.B {
				return BoolValue(true), nil
			}
			r, err := Eval(n.R, env)
			if err != nil {
				return Value{}, err
			}
			if r.Type != TypeBool {
				return Value{}, evalErrf(n, "%s on %s", n.Op, r.Type)
			}
			return r, nil
		}
		r, err := Eval(n.R, env)
		if err != nil {
			return Value{}, err
		}
		return applyBinary(n, n.Op, l, r)
	}
	return Value{}, evalErrf(n, "unknown node kind %T", n)
}

func applyBinary(n Node, op Op, l, r Value) (Value, error) {
	switch op {
	case OpAdd, OpSub, OpMul, OpDiv, OpMod:
		if l.Type != TypeInt || r.Type != TypeInt {
			return Value{}, evalErrf(n, "%s on %s and %s", op, l.Type, r.Type)
		}
		switch op {
		case OpAdd:
			return IntValue(l.I + r.I), nil
		case OpSub:
			return IntValue(l.I - r.I), nil
		case OpMul:
			return IntValue(l.I * r.I), nil
		case OpDiv:
			if r.I == 0 {
				return Value{}, &EvalError{Node: n, Err: ErrDivByZero}
			}
			return IntValue(l.I / r.I), nil
		default: // OpMod
			if r.I == 0 {
				return Value{}, &EvalError{Node: n, Err: ErrDivByZero}
			}
			return IntValue(l.I % r.I), nil
		}
	case OpLt, OpLe, OpGt, OpGe:
		if l.Type != TypeInt || r.Type != TypeInt {
			return Value{}, evalErrf(n, "%s on %s and %s", op, l.Type, r.Type)
		}
		switch op {
		case OpLt:
			return BoolValue(l.I < r.I), nil
		case OpLe:
			return BoolValue(l.I <= r.I), nil
		case OpGt:
			return BoolValue(l.I > r.I), nil
		default: // OpGe
			return BoolValue(l.I >= r.I), nil
		}
	case OpEq, OpNe:
		if l.Type != r.Type {
			return Value{}, evalErrf(n, "%s on %s and %s", op, l.Type, r.Type)
		}
		var eq bool
		if l.Type == TypeInt {
			eq = l.I == r.I
		} else {
			eq = l.B == r.B
		}
		if op == OpNe {
			eq = !eq
		}
		return BoolValue(eq), nil
	}
	return Value{}, evalErrf(n, "invalid binary op %s", op)
}

// EvalBool evaluates n and requires a boolean result.
func EvalBool(n Node, env Env) (bool, error) {
	v, err := Eval(n, env)
	if err != nil {
		return false, err
	}
	if v.Type != TypeBool {
		return false, evalErrf(n, "expected bool result, got %s", v.Type)
	}
	return v.B, nil
}

// EvalInt evaluates n and requires an integer result.
func EvalInt(n Node, env Env) (int64, error) {
	v, err := Eval(n, env)
	if err != nil {
		return 0, err
	}
	if v.Type != TypeInt {
		return 0, evalErrf(n, "expected int result, got %s", v.Type)
	}
	return v.I, nil
}
