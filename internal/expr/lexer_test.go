package expr

import "testing"

func kinds(toks []Token) []Kind {
	ks := make([]Kind, len(toks))
	for i, t := range toks {
		ks[i] = t.Kind
	}
	return ks
}

func TestTokenizeOperators(t *testing.T) {
	toks, err := Tokenize("+ - * / % < <= > >= == = != && || ! ( ) { } [ ] , ; += -= := ++ --")
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{
		Plus, Minus, Star, Slash, Percent,
		Lt, Le, Gt, Ge, Eq, Eq, Ne,
		AndAnd, OrOr, Bang,
		LParen, RParen, LBrace, RBrace, LBracket, RBracket,
		Comma, Semicolon, PlusEq, MinusEq, ColonEq, PlusPlus, MinusLess,
		EOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
}

func TestTokenizeIdentifiersAndLiterals(t *testing.T) {
	toks, err := Tokenize("count x_1 _tmp true false 042 7")
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		kind Kind
		text string
	}{
		{Ident, "count"}, {Ident, "x_1"}, {Ident, "_tmp"},
		{True, ""}, {False, ""}, {Int, "042"}, {Int, "7"}, {EOF, ""},
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d", len(toks), len(want))
	}
	for i, w := range want {
		if toks[i].Kind != w.kind || toks[i].Text != w.text {
			t.Errorf("token %d: got (%s,%q), want (%s,%q)", i, toks[i].Kind, toks[i].Text, w.kind, w.text)
		}
	}
}

func TestTokenizeComments(t *testing.T) {
	toks, err := Tokenize("a // line comment\n + /* block\ncomment */ b")
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{Ident, Plus, Ident, EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
}

func TestTokenizePositions(t *testing.T) {
	toks, err := Tokenize("a\n  bb")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Line != 1 || toks[0].Col != 1 {
		t.Errorf("first token at %d:%d, want 1:1", toks[0].Line, toks[0].Col)
	}
	if toks[1].Line != 2 || toks[1].Col != 3 {
		t.Errorf("second token at %d:%d, want 2:3", toks[1].Line, toks[1].Col)
	}
}

func TestTokenizeErrors(t *testing.T) {
	cases := []string{"@", "12abc", "a /* unterminated", "#"}
	for _, src := range cases {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("Tokenize(%q): expected error", src)
		}
	}
}

func TestSyntaxErrorHasPosition(t *testing.T) {
	_, err := Tokenize("ab\n @")
	if err == nil {
		t.Fatal("expected error")
	}
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("expected *SyntaxError, got %T", err)
	}
	if se.Line != 2 || se.Col != 2 {
		t.Errorf("error at %d:%d, want 2:2", se.Line, se.Col)
	}
}

func TestQuoteIdent(t *testing.T) {
	for _, s := range []string{"a", "_x", "count9"} {
		if !quoteIdent(s) {
			t.Errorf("quoteIdent(%q) = false, want true", s)
		}
	}
	for _, s := range []string{"", "9a", "a b", "a-b"} {
		if quoteIdent(s) {
			t.Errorf("quoteIdent(%q) = true, want false", s)
		}
	}
}
