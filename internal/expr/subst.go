package expr

// Subst returns n with every variable bound in env replaced by its literal
// value. This is the syntactic half of globalization (Definition 2 in the
// paper): substituting the thread-local variables of a complex predicate
// with their values at the instant the waituntil statement runs yields a
// shared predicate any thread can evaluate.
func Subst(n Node, env Env) Node {
	switch n := n.(type) {
	case IntLit, BoolLit:
		return n
	case Var:
		if v, ok := env(n.Name); ok {
			return v.Lit()
		}
		return n
	case Unary:
		x := Subst(n.X, env)
		if x == n.X {
			return n
		}
		return Unary{Op: n.Op, X: x}
	case Binary:
		l := Subst(n.L, env)
		r := Subst(n.R, env)
		if l == n.L && r == n.R {
			return n
		}
		return Binary{Op: n.Op, L: l, R: r}
	}
	return n
}

// Fold performs conservative constant folding and boolean simplification:
// constant subtrees are evaluated, and boolean identities (true && p → p,
// false && p → false, !!p → p, etc.) are applied. Division by zero is left
// in place so the error surfaces at evaluation time with context.
func Fold(n Node) Node {
	switch n := n.(type) {
	case IntLit, BoolLit, Var:
		return n
	case Unary:
		x := Fold(n.X)
		switch n.Op {
		case OpNeg:
			if lit, ok := x.(IntLit); ok {
				return IntLit{Value: -lit.Value}
			}
			if neg, ok := x.(Unary); ok && neg.Op == OpNeg {
				return neg.X // --x → x
			}
		case OpNot:
			if lit, ok := x.(BoolLit); ok {
				return BoolLit{Value: !lit.Value}
			}
			if not, ok := x.(Unary); ok && not.Op == OpNot {
				return not.X // !!p → p
			}
			// Push negation through a comparison: !(a < b) → a >= b.
			if cmp, ok := x.(Binary); ok && cmp.Op.IsComparison() {
				return Binary{Op: cmp.Op.Negate(), L: cmp.L, R: cmp.R}
			}
		}
		return Unary{Op: n.Op, X: x}
	case Binary:
		l := Fold(n.L)
		r := Fold(n.R)
		ll, lIsInt := l.(IntLit)
		rl, rIsInt := r.(IntLit)
		lb, lIsBool := l.(BoolLit)
		rb, rIsBool := r.(BoolLit)

		switch n.Op {
		case OpAdd, OpSub, OpMul, OpDiv, OpMod:
			if lIsInt && rIsInt {
				if (n.Op == OpDiv || n.Op == OpMod) && rl.Value == 0 {
					break // keep; evaluation reports the error
				}
				v, _ := applyBinary(n, n.Op, IntValue(ll.Value), IntValue(rl.Value))
				return IntLit{Value: v.I}
			}
			// Arithmetic identities.
			switch n.Op {
			case OpAdd:
				if lIsInt && ll.Value == 0 {
					return r
				}
				if rIsInt && rl.Value == 0 {
					return l
				}
			case OpSub:
				if rIsInt && rl.Value == 0 {
					return l
				}
			case OpMul:
				if lIsInt && ll.Value == 1 {
					return r
				}
				if rIsInt && rl.Value == 1 {
					return l
				}
				if (lIsInt && ll.Value == 0) || (rIsInt && rl.Value == 0) {
					return IntLit{Value: 0}
				}
			}
		case OpLt, OpLe, OpGt, OpGe:
			if lIsInt && rIsInt {
				v, _ := applyBinary(n, n.Op, IntValue(ll.Value), IntValue(rl.Value))
				return BoolLit{Value: v.B}
			}
		case OpEq, OpNe:
			if lIsInt && rIsInt {
				v, _ := applyBinary(n, n.Op, IntValue(ll.Value), IntValue(rl.Value))
				return BoolLit{Value: v.B}
			}
			if lIsBool && rIsBool {
				v, _ := applyBinary(n, n.Op, BoolValue(lb.Value), BoolValue(rb.Value))
				return BoolLit{Value: v.B}
			}
			// p == true → p, p != false → p, and the negating variants.
			if rIsBool {
				if (n.Op == OpEq) == rb.Value {
					return l
				}
				return Fold(Unary{Op: OpNot, X: l})
			}
			if lIsBool {
				if (n.Op == OpEq) == lb.Value {
					return r
				}
				return Fold(Unary{Op: OpNot, X: r})
			}
		case OpAnd:
			if lIsBool {
				if lb.Value {
					return r
				}
				return BoolLit{Value: false}
			}
			if rIsBool {
				if rb.Value {
					return l
				}
				return BoolLit{Value: false}
			}
		case OpOr:
			if lIsBool {
				if lb.Value {
					return BoolLit{Value: true}
				}
				return r
			}
			if rIsBool {
				if rb.Value {
					return BoolLit{Value: true}
				}
				return l
			}
		}
		return Binary{Op: n.Op, L: l, R: r}
	}
	return n
}

// Globalize substitutes bindings into n and folds the result. Per
// Proposition 1 the result is semantically equivalent to n for the duration
// of the waituntil period, because only the waiting thread could have
// changed the substituted locals.
func Globalize(n Node, bindings Env) Node {
	return Fold(Subst(n, bindings))
}
