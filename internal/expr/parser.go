package expr

// The predicate parser is a conventional Pratt (precedence-climbing) parser
// over the token stream. Grammar, loosest to tightest binding:
//
//	expr   = or
//	or     = and { "||" and }
//	and    = cmp { "&&" cmp }
//	cmp    = add [ ("<" | "<=" | ">" | ">=" | "==" | "=" | "!=") add ]
//	add    = mul { ("+" | "-") mul }
//	mul    = unary { ("*" | "/" | "%") unary }
//	unary  = ("-" | "!") unary | primary
//	primary = Int | "true" | "false" | Ident | "(" expr ")"
//
// Comparisons are non-associative (a < b < c is rejected), matching Go and
// avoiding a classic source of silent predicate bugs.

// Parser consumes tokens produced by a Lexer. It is also embedded by the
// MiniSynch statement parser in internal/preproc.
type Parser struct {
	lex *Lexer
	tok Token // current lookahead
	err error
}

// NewParser returns a parser over src positioned at the first token.
func NewParser(src string) (*Parser, error) {
	p := &Parser{lex: NewLexer(src)}
	if err := p.Advance(); err != nil {
		return nil, err
	}
	return p, nil
}

// Cur returns the current lookahead token.
func (p *Parser) Cur() Token { return p.tok }

// Advance moves to the next token.
func (p *Parser) Advance() error {
	t, err := p.lex.Next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

// Expect consumes a token of kind k or fails with a descriptive error.
func (p *Parser) Expect(k Kind) (Token, error) {
	t := p.tok
	if t.Kind != k {
		return t, errAt(t, "expected %s, found %s", k, t)
	}
	if err := p.Advance(); err != nil {
		return t, err
	}
	return t, nil
}

// Got consumes the current token if it has kind k and reports whether it did.
func (p *Parser) Got(k Kind) (bool, error) {
	if p.tok.Kind != k {
		return false, nil
	}
	return true, p.Advance()
}

// Parse parses src as a single expression and requires that the whole input
// is consumed.
func Parse(src string) (Node, error) {
	p, err := NewParser(src)
	if err != nil {
		return nil, err
	}
	n, err := p.ParseExpr()
	if err != nil {
		return nil, err
	}
	if p.tok.Kind != EOF {
		return nil, errAt(p.tok, "unexpected %s after expression", p.tok)
	}
	return n, nil
}

// ParseExpr parses one expression starting at the current token, leaving the
// lookahead at the first token after it. Exported for the preprocessor.
func (p *Parser) ParseExpr() (Node, error) { return p.parseOr() }

func (p *Parser) parseOr() (Node, error) {
	n, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == OrOr {
		if err := p.Advance(); err != nil {
			return nil, err
		}
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		n = Binary{Op: OpOr, L: n, R: r}
	}
	return n, nil
}

func (p *Parser) parseAnd() (Node, error) {
	n, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == AndAnd {
		if err := p.Advance(); err != nil {
			return nil, err
		}
		r, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		n = Binary{Op: OpAnd, L: n, R: r}
	}
	return n, nil
}

var cmpOps = map[Kind]Op{
	Lt: OpLt, Le: OpLe, Gt: OpGt, Ge: OpGe, Eq: OpEq, Ne: OpNe,
}

func (p *Parser) parseCmp() (Node, error) {
	n, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	op, ok := cmpOps[p.tok.Kind]
	if !ok {
		return n, nil
	}
	if err := p.Advance(); err != nil {
		return nil, err
	}
	r, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if _, chained := cmpOps[p.tok.Kind]; chained {
		return nil, errAt(p.tok, "comparisons cannot be chained; parenthesize and combine with &&")
	}
	return Binary{Op: op, L: n, R: r}, nil
}

func (p *Parser) parseAdd() (Node, error) {
	n, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == Plus || p.tok.Kind == Minus {
		op := OpAdd
		if p.tok.Kind == Minus {
			op = OpSub
		}
		if err := p.Advance(); err != nil {
			return nil, err
		}
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		n = Binary{Op: op, L: n, R: r}
	}
	return n, nil
}

func (p *Parser) parseMul() (Node, error) {
	n, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op Op
		switch p.tok.Kind {
		case Star:
			op = OpMul
		case Slash:
			op = OpDiv
		case Percent:
			op = OpMod
		default:
			return n, nil
		}
		if err := p.Advance(); err != nil {
			return nil, err
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		n = Binary{Op: op, L: n, R: r}
	}
}

func (p *Parser) parseUnary() (Node, error) {
	switch p.tok.Kind {
	case Minus:
		if err := p.Advance(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Unary{Op: OpNeg, X: x}, nil
	case Bang:
		if err := p.Advance(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Unary{Op: OpNot, X: x}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Node, error) {
	t := p.tok
	switch t.Kind {
	case Int:
		if err := p.Advance(); err != nil {
			return nil, err
		}
		var v int64
		for _, c := range t.Text {
			d := int64(c - '0')
			if v > (1<<62)/10 {
				return nil, errAt(t, "integer literal %s overflows int64", t.Text)
			}
			v = v*10 + d
		}
		return IntLit{Value: v}, nil
	case True:
		return BoolLit{Value: true}, p.Advance()
	case False:
		return BoolLit{Value: false}, p.Advance()
	case Ident:
		return Var{Name: t.Text}, p.Advance()
	case LParen:
		if err := p.Advance(); err != nil {
			return nil, err
		}
		n, err := p.ParseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.Expect(RParen); err != nil {
			return nil, err
		}
		return n, nil
	}
	return nil, errAt(t, "expected expression, found %s", t)
}
