package expr

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseRoundTrip(t *testing.T) {
	// Each input must re-render to the expected canonical form, and the
	// canonical form must re-parse to an equal tree.
	cases := []struct{ in, want string }{
		{"1", "1"},
		{"x", "x"},
		{"true", "true"},
		{"false", "false"},
		{"1 + 2 * 3", "1 + 2 * 3"},
		{"(1 + 2) * 3", "(1 + 2) * 3"},
		{"1 - 2 - 3", "1 - 2 - 3"},
		{"1 - (2 - 3)", "1 - (2 - 3)"},
		{"-x", "-x"},
		{"-(x + y)", "-(x + y)"},
		{"!p", "!p"},
		{"!(a < b)", "!(a < b)"},
		{"a < b && c >= d", "a < b && c >= d"},
		{"a && b || c && d", "a && b || c && d"},
		{"a && (b || c)", "a && (b || c)"},
		{"x = 5", "x == 5"},
		{"x == 5", "x == 5"},
		{"x != 5", "x != 5"},
		{"count + n <= cap", "count + n <= cap"},
		{"a % 2 == 0", "a % 2 == 0"},
		{"a / b / c", "a / b / c"},
		{"!!p", "!!p"},
		{"x*2+y*3 >= 10 || z == 0", "x * 2 + y * 3 >= 10 || z == 0"},
	}
	for _, c := range cases {
		n, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if got := n.String(); got != c.want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.in, got, c.want)
		}
		n2, err := Parse(n.String())
		if err != nil {
			t.Errorf("re-Parse(%q): %v", n.String(), err)
			continue
		}
		if !Equal(n, n2) {
			t.Errorf("round trip of %q changed the tree: %q vs %q", c.in, n, n2)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	n := MustParse("a || b && c == d + e * -f")
	// Expect: a || (b && (c == (d + (e * (-f)))))
	or, ok := n.(Binary)
	if !ok || or.Op != OpOr {
		t.Fatalf("root is %v, want ||", n)
	}
	and, ok := or.R.(Binary)
	if !ok || and.Op != OpAnd {
		t.Fatalf("right of || is %v, want &&", or.R)
	}
	eq, ok := and.R.(Binary)
	if !ok || eq.Op != OpEq {
		t.Fatalf("right of && is %v, want ==", and.R)
	}
	add, ok := eq.R.(Binary)
	if !ok || add.Op != OpAdd {
		t.Fatalf("right of == is %v, want +", eq.R)
	}
	mul, ok := add.R.(Binary)
	if !ok || mul.Op != OpMul {
		t.Fatalf("right of + is %v, want *", add.R)
	}
	neg, ok := mul.R.(Unary)
	if !ok || neg.Op != OpNeg {
		t.Fatalf("right of * is %v, want unary -", mul.R)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		in      string
		errPart string
	}{
		{"", "expected expression"},
		{"1 +", "expected expression"},
		{"(1", "expected )"},
		{"1 2", "unexpected"},
		{"a < b < c", "chained"},
		{"&& a", "expected expression"},
		{"a ||", "expected expression"},
		{"99999999999999999999", "overflows"},
	}
	for _, c := range cases {
		_, err := Parse(c.in)
		if err == nil {
			t.Errorf("Parse(%q): expected error containing %q", c.in, c.errPart)
			continue
		}
		if !strings.Contains(err.Error(), c.errPart) {
			t.Errorf("Parse(%q) error %q does not contain %q", c.in, err, c.errPart)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse on invalid input did not panic")
		}
	}()
	MustParse("((")
}

// genNode builds a pseudo-random well-formed expression from a seed stream,
// used by the property tests below.
type nodeGen struct {
	seed  int64
	depth int
}

func (g *nodeGen) next() int64 {
	g.seed = g.seed*6364136223846793005 + 1442695040888963407
	v := g.seed >> 33
	if v < 0 {
		v = -v
	}
	return v
}

func (g *nodeGen) intExpr(depth int) Node {
	if depth <= 0 {
		switch g.next() % 3 {
		case 0:
			return IntLit{Value: g.next() % 100}
		default:
			return Var{Name: string(rune('a' + g.next()%4))}
		}
	}
	switch g.next() % 6 {
	case 0:
		return IntLit{Value: g.next() % 100}
	case 1:
		return Var{Name: string(rune('a' + g.next()%4))}
	case 2:
		return Unary{Op: OpNeg, X: g.intExpr(depth - 1)}
	default:
		ops := []Op{OpAdd, OpSub, OpMul, OpDiv, OpMod}
		return Binary{Op: ops[g.next()%int64(len(ops))], L: g.intExpr(depth - 1), R: g.intExpr(depth - 1)}
	}
}

func (g *nodeGen) boolExpr(depth int) Node {
	if depth <= 0 {
		cmps := []Op{OpLt, OpLe, OpGt, OpGe, OpEq, OpNe}
		return Binary{Op: cmps[g.next()%int64(len(cmps))], L: g.intExpr(0), R: g.intExpr(0)}
	}
	switch g.next() % 5 {
	case 0:
		return Unary{Op: OpNot, X: g.boolExpr(depth - 1)}
	case 1:
		return Binary{Op: OpAnd, L: g.boolExpr(depth - 1), R: g.boolExpr(depth - 1)}
	case 2:
		return Binary{Op: OpOr, L: g.boolExpr(depth - 1), R: g.boolExpr(depth - 1)}
	default:
		cmps := []Op{OpLt, OpLe, OpGt, OpGe, OpEq, OpNe}
		return Binary{Op: cmps[g.next()%int64(len(cmps))], L: g.intExpr(depth - 1), R: g.intExpr(depth - 1)}
	}
}

// RandomBool is exported to sibling test packages via this test helper file
// pattern: dnf and tag tests reconstruct generators of their own, so this
// stays unexported here.

func TestPropertyPrintParseRoundTrip(t *testing.T) {
	// For any generated tree, String() must re-parse to an Equal tree.
	f := func(seed int64) bool {
		g := &nodeGen{seed: seed}
		n := g.boolExpr(3)
		n2, err := Parse(n.String())
		if err != nil {
			t.Logf("parse of %q failed: %v", n.String(), err)
			return false
		}
		return Equal(n, n2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyFoldPreservesSemantics(t *testing.T) {
	env := MapEnv(map[string]Value{
		"a": IntValue(3), "b": IntValue(-7), "c": IntValue(0), "d": IntValue(12),
	})
	f := func(seed int64) bool {
		g := &nodeGen{seed: seed}
		n := g.boolExpr(3)
		want, errWant := EvalBool(n, env)
		got, errGot := EvalBool(Fold(n), env)
		if errWant != nil {
			// Folding may remove an erroring subtree (e.g. short-circuit),
			// which is acceptable; only compare when the original evaluates.
			return true
		}
		return errGot == nil && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
