// Package expr implements the predicate expression language used by the
// AutoSynch monitor runtime and the MiniSynch preprocessor.
//
// The language is a side-effect-free subset of Go/Java boolean and integer
// expressions: integer and boolean literals, identifiers, the arithmetic
// operators + - * / %, the comparisons < <= > >= == != (with = accepted as a
// synonym for ==, matching the paper's notation), and the boolean operators
// && || !. Parenthesized grouping is supported.
//
// Identifiers are not resolved by this package; whether a variable is a
// shared monitor variable or a thread-local variable (the distinction at the
// heart of globalization, §4.1 of the paper) is decided by the caller through
// a Resolver or a binding environment.
package expr

import "fmt"

// Kind classifies a lexical token.
type Kind int

// Token kinds produced by the Lexer.
const (
	EOF Kind = iota
	Ident
	Int  // integer literal
	True // the literal "true"
	False

	Plus    // +
	Minus   // -
	Star    // *
	Slash   // /
	Percent // %

	Lt // <
	Le // <=
	Gt // >
	Ge // >=
	Eq // == (or =)
	Ne // !=

	AndAnd // &&
	OrOr   // ||
	Bang   // !

	LParen // (
	RParen // )

	// Tokens below are used only by the MiniSynch preprocessor grammar,
	// which shares this lexer.
	LBrace    // {
	RBrace    // }
	LBracket  // [
	RBracket  // ]
	Comma     // ,
	Semicolon // ;
	Assign    // := or = in statement position (lexed as Eq; parser decides)
	PlusEq    // +=
	MinusEq   // -=
	ColonEq   // :=
	PlusPlus  // ++
	MinusLess // --
)

var kindNames = map[Kind]string{
	EOF:       "end of input",
	Ident:     "identifier",
	Int:       "integer",
	True:      "true",
	False:     "false",
	Plus:      "+",
	Minus:     "-",
	Star:      "*",
	Slash:     "/",
	Percent:   "%",
	Lt:        "<",
	Le:        "<=",
	Gt:        ">",
	Ge:        ">=",
	Eq:        "==",
	Ne:        "!=",
	AndAnd:    "&&",
	OrOr:      "||",
	Bang:      "!",
	LParen:    "(",
	RParen:    ")",
	LBrace:    "{",
	RBrace:    "}",
	LBracket:  "[",
	RBracket:  "]",
	Comma:     ",",
	Semicolon: ";",
	PlusEq:    "+=",
	MinusEq:   "-=",
	ColonEq:   ":=",
	PlusPlus:  "++",
	MinusLess: "--",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Token is a single lexical token with its source position.
type Token struct {
	Kind Kind
	Text string // literal text for Ident and Int
	Pos  int    // byte offset in the input
	Line int    // 1-based line number
	Col  int    // 1-based column number
}

func (t Token) String() string {
	switch t.Kind {
	case Ident, Int:
		return t.Text
	default:
		return t.Kind.String()
	}
}

// SyntaxError reports a lexing or parsing failure with position information.
type SyntaxError struct {
	Msg  string
	Pos  int
	Line int
	Col  int
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}

func errAt(t Token, format string, args ...any) error {
	return &SyntaxError{
		Msg:  fmt.Sprintf(format, args...),
		Pos:  t.Pos,
		Line: t.Line,
		Col:  t.Col,
	}
}
