package expr

import (
	"errors"
	"strings"
	"testing"
)

func env(m map[string]Value) Env { return MapEnv(m) }

func TestEvalArithmetic(t *testing.T) {
	cases := []struct {
		src  string
		want int64
	}{
		{"1 + 2", 3},
		{"2 * 3 + 4", 10},
		{"2 * (3 + 4)", 14},
		{"10 / 3", 3},
		{"10 % 3", 1},
		{"-10 / 3", -3}, // Go-style truncated division
		{"-10 % 3", -1},
		{"x + y", 11},
		{"x - y * 2", -13},
		{"-x", -3},
	}
	e := env(map[string]Value{"x": IntValue(3), "y": IntValue(8)})
	for _, c := range cases {
		got, err := EvalInt(MustParse(c.src), e)
		if err != nil {
			t.Errorf("EvalInt(%q): %v", c.src, err)
			continue
		}
		if got != c.want {
			t.Errorf("EvalInt(%q) = %d, want %d", c.src, got, c.want)
		}
	}
}

func TestEvalBooleans(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"true", true},
		{"false", false},
		{"1 < 2", true},
		{"2 <= 2", true},
		{"2 > 2", false},
		{"2 >= 2", true},
		{"x == 3", true},
		{"x = 3", true},
		{"x != 3", false},
		{"p && x == 3", true},
		{"!p || x == 3", true},
		{"!p", false},
		{"p == true", true},
		{"p != q", true},
		{"x == 3 && y == 8 || x == 0", true},
	}
	e := env(map[string]Value{
		"x": IntValue(3), "y": IntValue(8),
		"p": BoolValue(true), "q": BoolValue(false),
	})
	for _, c := range cases {
		got, err := EvalBool(MustParse(c.src), e)
		if err != nil {
			t.Errorf("EvalBool(%q): %v", c.src, err)
			continue
		}
		if got != c.want {
			t.Errorf("EvalBool(%q) = %t, want %t", c.src, got, c.want)
		}
	}
}

func TestEvalShortCircuit(t *testing.T) {
	// The right side is unbound; short-circuiting must avoid touching it.
	e := env(map[string]Value{"p": BoolValue(false), "q": BoolValue(true)})
	if got, err := EvalBool(MustParse("p && missing == 1"), e); err != nil || got {
		t.Errorf("false && _ = (%t, %v), want (false, nil)", got, err)
	}
	if got, err := EvalBool(MustParse("q || missing == 1"), e); err != nil || !got {
		t.Errorf("true || _ = (%t, %v), want (true, nil)", got, err)
	}
}

func TestEvalErrors(t *testing.T) {
	e := env(map[string]Value{"x": IntValue(3), "p": BoolValue(true)})
	cases := []struct {
		src     string
		errPart string
	}{
		{"y + 1", "unbound variable"},
		{"1 / 0", "division by zero"},
		{"1 % 0", "division by zero"},
		{"x && p", "&& on int"},
		{"p + 1", "+ on bool"},
		{"p < p", "< on bool"},
		{"x == p", "== on int and bool"},
		{"-p", "unary - on bool"},
		{"!x", "! on int"},
	}
	for _, c := range cases {
		_, err := Eval(MustParse(c.src), e)
		if err == nil {
			t.Errorf("Eval(%q): expected error containing %q", c.src, c.errPart)
			continue
		}
		if !strings.Contains(err.Error(), c.errPart) {
			t.Errorf("Eval(%q) error %q does not contain %q", c.src, err, c.errPart)
		}
	}
}

func TestEvalDivByZeroUnwraps(t *testing.T) {
	_, err := Eval(MustParse("1 / 0"), env(nil))
	if !errors.Is(err, ErrDivByZero) {
		t.Errorf("errors.Is(err, ErrDivByZero) = false for %v", err)
	}
}

func TestTypeCheck(t *testing.T) {
	vars := MapTypes(map[string]Type{"x": TypeInt, "p": TypeBool})
	good := []struct {
		src  string
		want Type
	}{
		{"x + 1", TypeInt},
		{"x < 1", TypeBool},
		{"p && x == 0", TypeBool},
		{"p == p", TypeBool},
		{"-x", TypeInt},
		{"!p", TypeBool},
	}
	for _, c := range good {
		got, err := TypeCheck(MustParse(c.src), vars)
		if err != nil {
			t.Errorf("TypeCheck(%q): %v", c.src, err)
			continue
		}
		if got != c.want {
			t.Errorf("TypeCheck(%q) = %s, want %s", c.src, got, c.want)
		}
	}
	bad := []string{"x + p", "p < p", "x && p", "!x", "-p", "x == p", "unknown + 1"}
	for _, src := range bad {
		if _, err := TypeCheck(MustParse(src), vars); err == nil {
			t.Errorf("TypeCheck(%q): expected error", src)
		}
	}
}

func TestCheckBool(t *testing.T) {
	vars := MapTypes(map[string]Type{"x": TypeInt})
	if err := CheckBool(MustParse("x > 0"), vars); err != nil {
		t.Errorf("CheckBool(x > 0): %v", err)
	}
	if err := CheckBool(MustParse("x + 1"), vars); err == nil {
		t.Error("CheckBool(x + 1): expected error for int predicate")
	}
}

func TestVarsAndHasVar(t *testing.T) {
	n := MustParse("count + num <= cap && count >= 0")
	got := Vars(n)
	want := []string{"cap", "count", "num"}
	if len(got) != len(want) {
		t.Fatalf("Vars = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Vars = %v, want %v", got, want)
		}
	}
	if !HasVar(n, "cap") || HasVar(n, "zz") {
		t.Error("HasVar misreported membership")
	}
}

func TestSubstAndGlobalize(t *testing.T) {
	// The paper's running example: take(num) waiting on count >= num with
	// num = 48 globalizes to count >= 48.
	n := MustParse("count >= num")
	g := Globalize(n, env(map[string]Value{"num": IntValue(48)}))
	if g.String() != "count >= 48" {
		t.Errorf("Globalize = %q, want %q", g.String(), "count >= 48")
	}
	// Unbound variables stay symbolic.
	s := Subst(n, env(map[string]Value{"other": IntValue(1)}))
	if !Equal(s, n) {
		t.Errorf("Subst with irrelevant binding changed the tree: %q", s)
	}
	// Bool substitution.
	b := Globalize(MustParse("flag && count > 0"), env(map[string]Value{"flag": BoolValue(true)}))
	if b.String() != "count > 0" {
		t.Errorf("Globalize(flag && count > 0) = %q, want %q", b.String(), "count > 0")
	}
}

func TestFold(t *testing.T) {
	cases := []struct{ in, want string }{
		{"1 + 2", "3"},
		{"2 * 3 + x", "6 + x"},
		{"x + 0", "x"},
		{"0 + x", "x"},
		{"x - 0", "x"},
		{"x * 1", "x"},
		{"1 * x", "x"},
		{"x * 0", "0"},
		{"!!p", "p"},
		{"!(x < 3)", "x >= 3"},
		{"!(x == 3)", "x != 3"},
		{"true && p", "p"},
		{"p && false", "false"},
		{"false || p", "p"},
		{"p || true", "true"},
		{"p == true", "p"},
		{"p == false", "!p"},
		{"p != true", "!p"},
		{"3 < 5", "true"},
		{"3 == 5", "false"},
		{"1 / 0", "1 / 0"}, // preserved for runtime error reporting
		{"-(-x)", "x"},
	}
	for _, c := range cases {
		got := Fold(MustParse(c.in)).String()
		if got != c.want {
			t.Errorf("Fold(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestValueLitAndString(t *testing.T) {
	if IntValue(5).Lit().String() != "5" {
		t.Error("IntValue(5).Lit() != 5")
	}
	if BoolValue(true).Lit().String() != "true" {
		t.Error("BoolValue(true).Lit() != true")
	}
	if IntValue(5).String() != "5" || BoolValue(false).String() != "false" {
		t.Error("Value.String misrendered")
	}
}

func TestOpHelpers(t *testing.T) {
	negs := map[Op]Op{OpLt: OpGe, OpLe: OpGt, OpGt: OpLe, OpGe: OpLt, OpEq: OpNe, OpNe: OpEq}
	for op, want := range negs {
		if got := op.Negate(); got != want {
			t.Errorf("%s.Negate() = %s, want %s", op, got, want)
		}
	}
	flips := map[Op]Op{OpLt: OpGt, OpLe: OpGe, OpGt: OpLt, OpGe: OpLe, OpEq: OpEq, OpNe: OpNe}
	for op, want := range flips {
		if got := op.Flip(); got != want {
			t.Errorf("%s.Flip() = %s, want %s", op, got, want)
		}
	}
	if !OpLt.IsComparison() || OpAdd.IsComparison() {
		t.Error("IsComparison wrong")
	}
	if !OpLe.IsOrdering() || OpEq.IsOrdering() {
		t.Error("IsOrdering wrong")
	}
}

func TestSizeAndRender(t *testing.T) {
	n := MustParse("a + b < c")
	if got := Size(n); got != 5 {
		t.Errorf("Size = %d, want 5", got)
	}
	if got := Render([]Node{MustParse("a"), MustParse("b + 1")}, ", "); got != "a, b + 1" {
		t.Errorf("Render = %q", got)
	}
}

func TestConstructors(t *testing.T) {
	n := And(Bin(OpGt, V("x"), I(0)), Or(B(false), Not(Bin(OpEq, V("y"), I(1)))))
	want := "x > 0 && (false || !(y == 1))"
	if n.String() != want {
		t.Errorf("constructed tree = %q, want %q", n.String(), want)
	}
	if And().String() != "true" || Or().String() != "false" {
		t.Error("empty And/Or units wrong")
	}
	if Neg(V("x")).String() != "-x" {
		t.Error("Neg printing wrong")
	}
}
