package expr

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Op identifies an operator in the AST. The zero value is invalid.
type Op int

// AST operators. Comparison, boolean, and arithmetic operators share one
// enum so that Binary can represent all of them.
const (
	OpInvalid Op = iota

	OpAdd // +
	OpSub // -
	OpMul // *
	OpDiv // /
	OpMod // %

	OpLt // <
	OpLe // <=
	OpGt // >
	OpGe // >=
	OpEq // ==
	OpNe // !=

	OpAnd // &&
	OpOr  // ||

	OpNeg // unary -
	OpNot // unary !
)

var opNames = map[Op]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=", OpEq: "==", OpNe: "!=",
	OpAnd: "&&", OpOr: "||", OpNeg: "-", OpNot: "!",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// IsComparison reports whether o is one of < <= > >= == !=.
func (o Op) IsComparison() bool {
	switch o {
	case OpLt, OpLe, OpGt, OpGe, OpEq, OpNe:
		return true
	}
	return false
}

// IsOrdering reports whether o is one of the four threshold-forming
// comparisons < <= > >= (Definition 7 in the paper).
func (o Op) IsOrdering() bool {
	switch o {
	case OpLt, OpLe, OpGt, OpGe:
		return true
	}
	return false
}

// Negate returns the comparison that is the logical negation of o
// (e.g. the negation of < is >=). It panics if o is not a comparison.
func (o Op) Negate() Op {
	switch o {
	case OpLt:
		return OpGe
	case OpLe:
		return OpGt
	case OpGt:
		return OpLe
	case OpGe:
		return OpLt
	case OpEq:
		return OpNe
	case OpNe:
		return OpEq
	}
	panic("expr: Negate on non-comparison operator " + o.String())
}

// Flip returns the comparison with its operands exchanged
// (a < b  ⇔  b > a). It panics if o is not a comparison.
func (o Op) Flip() Op {
	switch o {
	case OpLt:
		return OpGt
	case OpLe:
		return OpGe
	case OpGt:
		return OpLt
	case OpGe:
		return OpLe
	case OpEq, OpNe:
		return o
	}
	panic("expr: Flip on non-comparison operator " + o.String())
}

// Node is an expression AST node. Nodes are immutable after construction;
// transformation functions return new trees sharing unchanged subtrees.
type Node interface {
	// String renders the node with minimal parentheses; the output
	// re-parses to an equal tree.
	String() string
	isNode()
}

// IntLit is an integer literal.
type IntLit struct{ Value int64 }

// BoolLit is a boolean literal.
type BoolLit struct{ Value bool }

// Var is an unresolved identifier reference.
type Var struct{ Name string }

// Unary is a prefix operator application (OpNeg or OpNot).
type Unary struct {
	Op Op
	X  Node
}

// Binary is an infix operator application.
type Binary struct {
	Op   Op
	L, R Node
}

func (IntLit) isNode()  {}
func (BoolLit) isNode() {}
func (Var) isNode()     {}
func (Unary) isNode()   {}
func (Binary) isNode()  {}

func (n IntLit) String() string { return strconv.FormatInt(n.Value, 10) }

func (n BoolLit) String() string {
	if n.Value {
		return "true"
	}
	return "false"
}

func (n Var) String() string { return n.Name }

// precedence returns the binding strength used for minimal-paren printing.
func precedence(n Node) int {
	switch n := n.(type) {
	case Binary:
		switch n.Op {
		case OpOr:
			return 1
		case OpAnd:
			return 2
		case OpLt, OpLe, OpGt, OpGe, OpEq, OpNe:
			return 3
		case OpAdd, OpSub:
			return 4
		case OpMul, OpDiv, OpMod:
			return 5
		}
	case Unary:
		return 6
	}
	return 7 // literals, vars
}

func (n Unary) String() string {
	inner := n.X.String()
	if precedence(n.X) < precedence(n) {
		inner = "(" + inner + ")"
	}
	// "--x" would lex as the decrement token; force "-(-x)".
	if n.Op == OpNeg && len(inner) > 0 && inner[0] == '-' {
		inner = "(" + inner + ")"
	}
	return n.Op.String() + inner
}

func (n Binary) String() string {
	p := precedence(n)
	l := n.L.String()
	if precedence(n.L) < p {
		l = "(" + l + ")"
	}
	r := n.R.String()
	// Right child needs parens at equal precedence too, since all our
	// binary operators associate to the left.
	if precedence(n.R) <= p {
		r = "(" + r + ")"
	}
	return l + " " + n.Op.String() + " " + r
}

// Equal reports structural equality of two trees.
func Equal(a, b Node) bool {
	switch a := a.(type) {
	case IntLit:
		b, ok := b.(IntLit)
		return ok && a.Value == b.Value
	case BoolLit:
		b, ok := b.(BoolLit)
		return ok && a.Value == b.Value
	case Var:
		b, ok := b.(Var)
		return ok && a.Name == b.Name
	case Unary:
		b, ok := b.(Unary)
		return ok && a.Op == b.Op && Equal(a.X, b.X)
	case Binary:
		b, ok := b.(Binary)
		return ok && a.Op == b.Op && Equal(a.L, b.L) && Equal(a.R, b.R)
	}
	return false
}

// Walk calls f for n and every descendant in pre-order. If f returns false
// the walk does not descend into that node's children.
func Walk(n Node, f func(Node) bool) {
	if !f(n) {
		return
	}
	switch n := n.(type) {
	case Unary:
		Walk(n.X, f)
	case Binary:
		Walk(n.L, f)
		Walk(n.R, f)
	}
}

// Vars returns the sorted set of variable names referenced by n.
func Vars(n Node) []string {
	seen := map[string]bool{}
	Walk(n, func(m Node) bool {
		if v, ok := m.(Var); ok {
			seen[v.Name] = true
		}
		return true
	})
	names := make([]string, 0, len(seen))
	for name := range seen {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// HasVar reports whether n references the variable name.
func HasVar(n Node, name string) bool {
	found := false
	Walk(n, func(m Node) bool {
		if v, ok := m.(Var); ok && v.Name == name {
			found = true
		}
		return !found
	})
	return found
}

// Size returns the number of nodes in the tree, a proxy for predicate
// complexity used by DNF blow-up guards.
func Size(n Node) int {
	count := 0
	Walk(n, func(Node) bool { count++; return true })
	return count
}

// --- convenience constructors, used heavily in tests and by codegen ---

// I returns an integer literal node.
func I(v int64) Node { return IntLit{Value: v} }

// B returns a boolean literal node.
func B(v bool) Node { return BoolLit{Value: v} }

// V returns a variable reference node.
func V(name string) Node { return Var{Name: name} }

// Bin returns a binary application node.
func Bin(op Op, l, r Node) Node { return Binary{Op: op, L: l, R: r} }

// Not returns the logical negation of x.
func Not(x Node) Node { return Unary{Op: OpNot, X: x} }

// Neg returns the arithmetic negation of x.
func Neg(x Node) Node { return Unary{Op: OpNeg, X: x} }

// And returns the conjunction of all xs (true for none).
func And(xs ...Node) Node { return fold(OpAnd, B(true), xs) }

// Or returns the disjunction of all xs (false for none).
func Or(xs ...Node) Node { return fold(OpOr, B(false), xs) }

func fold(op Op, unit Node, xs []Node) Node {
	if len(xs) == 0 {
		return unit
	}
	n := xs[0]
	for _, x := range xs[1:] {
		n = Binary{Op: op, L: n, R: x}
	}
	return n
}

// MustParse parses src and panics on error; for tests and static tables.
func MustParse(src string) Node {
	n, err := Parse(src)
	if err != nil {
		panic("expr.MustParse(" + strconv.Quote(src) + "): " + err.Error())
	}
	return n
}

// Render joins the canonical strings of several nodes, used in diagnostics.
func Render(ns []Node, sep string) string {
	parts := make([]string, len(ns))
	for i, n := range ns {
		parts[i] = n.String()
	}
	return strings.Join(parts, sep)
}
