package expr

import (
	"strings"
	"testing"
)

func TestInfer(t *testing.T) {
	shared := MapTypes(map[string]Type{"count": TypeInt, "open": TypeBool})
	cases := []struct {
		src  string
		want map[string]Type
	}{
		{"count >= num", map[string]Type{"num": TypeInt}},
		{"count + k <= 64 || stop", map[string]Type{"k": TypeInt, "stop": TypeBool}},
		{"b && count > 0", map[string]Type{"b": TypeBool}},
		{"open == b", map[string]Type{"b": TypeBool}},
		{"num == count", map[string]Type{"num": TypeInt}},
		{"!p", map[string]Type{"p": TypeBool}},
		{"-x > 0", map[string]Type{"x": TypeInt}},
		// Equality between two unknowns propagates a constraint found
		// anywhere else in the tree.
		{"a == b && a > 0", map[string]Type{"a": TypeInt, "b": TypeInt}},
		{"a == b && (b || open)", map[string]Type{"a": TypeBool, "b": TypeBool}},
		// Fully unconstrained equality defaults to int.
		{"a == b", map[string]Type{"a": TypeInt, "b": TypeInt}},
		{"count > 0", map[string]Type{}},
		// Compound sides of == pin their nested unknowns.
		{"count + k == num", map[string]Type{"k": TypeInt, "num": TypeInt}},
	}
	for _, c := range cases {
		n := MustParse(c.src)
		got, err := Infer(n, shared)
		if err != nil {
			t.Errorf("Infer(%q): %v", c.src, err)
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("Infer(%q) = %v, want %v", c.src, got, c.want)
			continue
		}
		for name, wt := range c.want {
			if got[name] != wt {
				t.Errorf("Infer(%q)[%s] = %s, want %s", c.src, name, got[name], wt)
			}
		}
		// The inferred types must satisfy the type checker.
		all := func(name string) (Type, bool) {
			if tt, ok := shared(name); ok {
				return tt, true
			}
			tt, ok := got[name]
			return tt, ok
		}
		if err := CheckBool(n, all); err != nil {
			t.Errorf("Infer(%q) produced ill-typed assignment: %v", c.src, err)
		}
	}
}

func TestInferConflicts(t *testing.T) {
	shared := MapTypes(map[string]Type{"open": TypeBool})
	cases := []struct {
		src     string
		errPart string
	}{
		{"a && a > 0", "used as both"},
		{"a == b && a > 0 && (b || open)", ""}, // conflict via the union
		{"open == a && a > 0", "used as both"},
	}
	for _, c := range cases {
		_, err := Infer(MustParse(c.src), shared)
		if err == nil {
			t.Errorf("Infer(%q) succeeded, want conflict error", c.src)
			continue
		}
		if c.errPart != "" && !strings.Contains(err.Error(), c.errPart) {
			t.Errorf("Infer(%q) error %q does not contain %q", c.src, err, c.errPart)
		}
	}
}
