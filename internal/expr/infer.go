package expr

// Type inference for undeclared (thread-local) variables. The predicate
// language is small enough that almost every occurrence of a variable pins
// its type: operands of arithmetic and ordering comparisons are int,
// operands of && || ! are bool. The one underdetermined position is == and
// != between two unknowns, which only constrains the operands to have the
// *same* type; Infer tracks those equalities with a union-find and lets a
// constraint discovered anywhere in the tree propagate across them.
// Variables left unconstrained after propagation default to int.
//
// Infer makes Monitor.Compile possible: a predicate can be compiled once,
// before any Await supplies bindings, with every local variable's type
// fixed at compile time. Bindings are then validated against the inferred
// types instead of silently fixing them at first use.

// inferState carries the union-find and the resolved types during a walk.
type inferState struct {
	known  VarTypes
	parent map[string]string // union-find over unknown variable names
	typ    map[string]Type   // resolved type per union-find root
}

// Infer returns the type of every variable in n that `known` does not
// resolve. It fails with a *TypeError when an unknown variable is used at
// two incompatible types.
func Infer(n Node, known VarTypes) (map[string]Type, error) {
	st := &inferState{
		known:  known,
		parent: map[string]string{},
		typ:    map[string]Type{},
	}
	// Register every unknown variable so unconstrained ones still appear
	// in the result (defaulted to int below).
	for _, name := range Vars(n) {
		if _, ok := known(name); !ok {
			st.parent[name] = name
		}
	}
	if err := st.constrain(n, TypeBool); err != nil {
		return nil, err
	}
	out := make(map[string]Type, len(st.parent))
	for name := range st.parent {
		t := st.typ[st.find(name)]
		if t == TypeInvalid {
			t = TypeInt // unconstrained (e.g. `a == b` alone): default int
		}
		out[name] = t
	}
	return out, nil
}

func (st *inferState) find(name string) string {
	for st.parent[name] != name {
		st.parent[name] = st.parent[st.parent[name]]
		name = st.parent[name]
	}
	return name
}

// setType records that the unknown variable name has type t, failing on a
// conflict with an earlier constraint.
func (st *inferState) setType(n Node, name string, t Type) error {
	root := st.find(name)
	if cur := st.typ[root]; cur != TypeInvalid && cur != t {
		return typeErrf(n, "variable %q used as both %s and %s", name, cur, t)
	}
	st.typ[root] = t
	return nil
}

// union merges the type classes of two unknown variables.
func (st *inferState) union(n Node, a, b string) error {
	ra, rb := st.find(a), st.find(b)
	if ra == rb {
		return nil
	}
	ta, tb := st.typ[ra], st.typ[rb]
	if ta != TypeInvalid && tb != TypeInvalid && ta != tb {
		return typeErrf(n, "variables %q and %q compared but used as %s and %s", a, b, ta, tb)
	}
	st.parent[ra] = rb
	if tb == TypeInvalid {
		st.typ[rb] = ta
	}
	delete(st.typ, ra)
	return nil
}

// natural returns the type a subtree must have when it is determined by
// the tree's own shape: literals, known variables, already-resolved
// unknowns, and every operator except a bare unknown Var.
func (st *inferState) natural(n Node) Type {
	switch n := n.(type) {
	case IntLit:
		return TypeInt
	case BoolLit:
		return TypeBool
	case Var:
		if t, ok := st.known(n.Name); ok {
			return t
		}
		return st.typ[st.find(n.Name)] // TypeInvalid while undetermined
	case Unary:
		if n.Op == OpNeg {
			return TypeInt
		}
		return TypeBool
	case Binary:
		switch n.Op {
		case OpAdd, OpSub, OpMul, OpDiv, OpMod:
			return TypeInt
		default:
			return TypeBool
		}
	}
	return TypeInvalid
}

// constrain walks n requiring it to have type want, recording constraints
// on unknown variables as it goes.
func (st *inferState) constrain(n Node, want Type) error {
	switch n := n.(type) {
	case IntLit, BoolLit:
		return nil // TypeCheck validates literal positions later
	case Var:
		if _, ok := st.known(n.Name); ok {
			return nil
		}
		return st.setType(n, n.Name, want)
	case Unary:
		if n.Op == OpNeg {
			return st.constrain(n.X, TypeInt)
		}
		return st.constrain(n.X, TypeBool)
	case Binary:
		switch n.Op {
		case OpAdd, OpSub, OpMul, OpDiv, OpMod, OpLt, OpLe, OpGt, OpGe:
			if err := st.constrain(n.L, TypeInt); err != nil {
				return err
			}
			return st.constrain(n.R, TypeInt)
		case OpAnd, OpOr:
			if err := st.constrain(n.L, TypeBool); err != nil {
				return err
			}
			return st.constrain(n.R, TypeBool)
		case OpEq, OpNe:
			lv, lUnknown := asUnknownVar(n.L, st.known)
			rv, rUnknown := asUnknownVar(n.R, st.known)
			switch {
			case lUnknown && rUnknown:
				// Only an equality constraint; the shared type may be pinned
				// elsewhere in the tree.
				return st.union(n, lv, rv)
			case lUnknown:
				if t := st.natural(n.R); t != TypeInvalid {
					if err := st.setType(n, lv, t); err != nil {
						return err
					}
				}
				return st.constrain(n.R, st.natural(n.R))
			case rUnknown:
				if t := st.natural(n.L); t != TypeInvalid {
					if err := st.setType(n, rv, t); err != nil {
						return err
					}
				}
				return st.constrain(n.L, st.natural(n.L))
			default:
				// Both sides determined by shape: recurse with their own
				// natural types (compound sides may still contain unknowns
				// in pinned positions).
				if err := st.constrain(n.L, st.natural(n.L)); err != nil {
					return err
				}
				return st.constrain(n.R, st.natural(n.R))
			}
		}
	}
	return nil
}

// asUnknownVar reports whether n is a bare variable not resolved by known.
func asUnknownVar(n Node, known VarTypes) (string, bool) {
	v, ok := n.(Var)
	if !ok {
		return "", false
	}
	if _, isKnown := known(v.Name); isKnown {
		return "", false
	}
	return v.Name, true
}
