package expr

import (
	"strings"
	"testing"
	"testing/quick"
)

// cellResolver builds a Resolver over mutable int64 cells.
func cellResolver(ints map[string]*int64, bools map[string]*bool) Resolver {
	return func(name string) (Getter, Type, bool) {
		if c, ok := ints[name]; ok {
			return func() int64 { return *c }, TypeInt, true
		}
		if c, ok := bools[name]; ok {
			return func() int64 {
				if *c {
					return 1
				}
				return 0
			}, TypeBool, true
		}
		return nil, TypeInvalid, false
	}
}

func TestCompileBoolTracksCells(t *testing.T) {
	count := int64(10)
	open := true
	r := cellResolver(map[string]*int64{"count": &count}, map[string]*bool{"open": &open})
	f, err := CompileBool(MustParse("open && count >= 32"), r)
	if err != nil {
		t.Fatal(err)
	}
	if f() {
		t.Error("predicate true with count=10")
	}
	count = 40
	if !f() {
		t.Error("predicate false with count=40")
	}
	open = false
	if f() {
		t.Error("predicate true with open=false")
	}
}

func TestCompileIntArithmetic(t *testing.T) {
	x := int64(7)
	r := cellResolver(map[string]*int64{"x": &x}, nil)
	f, err := CompileInt(MustParse("2 * x + 1"), r)
	if err != nil {
		t.Fatal(err)
	}
	if got := f(); got != 15 {
		t.Errorf("f() = %d, want 15", got)
	}
	x = -3
	if got := f(); got != -5 {
		t.Errorf("f() = %d, want -5", got)
	}
}

func TestCompileDivModByZeroSafe(t *testing.T) {
	d := int64(0)
	r := cellResolver(map[string]*int64{"d": &d}, nil)
	f, err := CompileBool(MustParse("10 / d > 2"), r)
	if err != nil {
		t.Fatal(err)
	}
	if f() {
		t.Error("10/0 > 2 compiled predicate should be false, not panic")
	}
	g, err := CompileBool(MustParse("10 % d == 0"), r)
	if err != nil {
		t.Fatal(err)
	}
	if !g() {
		t.Error("10%0 == 0 should evaluate with the 0 fallback")
	}
	d = 5
	if f() { // 10/5 = 2, not > 2
		t.Error("10/5 > 2 should be false")
	}
	if !g() { // 10%5 == 0
		t.Error("10%5 == 0 should be true")
	}
}

func TestCompileErrors(t *testing.T) {
	r := cellResolver(map[string]*int64{"x": new(int64)}, nil)
	cases := []struct {
		src     string
		compile func(Node) error
		errPart string
	}{
		{"y > 0", func(n Node) error { _, err := CompileBool(n, r); return err }, "unresolved variable"},
		{"x + 1", func(n Node) error { _, err := CompileBool(n, r); return err }, "expected bool"},
		{"x > 0", func(n Node) error { _, err := CompileInt(n, r); return err }, "expected int"},
		{"!x", func(n Node) error { _, err := CompileBool(n, r); return err }, "! on int"},
	}
	for _, c := range cases {
		err := c.compile(MustParse(c.src))
		if err == nil {
			t.Errorf("compile(%q): expected error containing %q", c.src, c.errPart)
			continue
		}
		if !strings.Contains(err.Error(), c.errPart) {
			t.Errorf("compile(%q) error %q does not contain %q", c.src, err, c.errPart)
		}
	}
}

func TestPropertyCompileMatchesEval(t *testing.T) {
	// Compiled evaluation must agree with tree-walking evaluation on all
	// generated predicates whose tree evaluation succeeds (the compiled
	// form differs only on division by zero, where Eval errors).
	a, b, c, d := int64(3), int64(-7), int64(0), int64(12)
	r := cellResolver(map[string]*int64{"a": &a, "b": &b, "c": &c, "d": &d}, nil)
	e := MapEnv(map[string]Value{
		"a": IntValue(a), "b": IntValue(b), "c": IntValue(c), "d": IntValue(d),
	})
	f := func(seed int64) bool {
		g := &nodeGen{seed: seed}
		n := g.boolExpr(3)
		want, err := EvalBool(n, e)
		if err != nil {
			return true // division by zero path; compiled form is defined, Eval is not
		}
		fn, cerr := CompileBool(n, r)
		if cerr != nil {
			t.Logf("compile of %q failed: %v", n.String(), cerr)
			return false
		}
		return fn() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
