package expr

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// Lexer tokenizes predicate and MiniSynch source text. It is shared between
// the runtime predicate parser and the preprocessor's statement parser.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (l *Lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) advance(n int) {
	for i := 0; i < n && l.pos < len(l.src); i++ {
		if l.src[l.pos] == '\n' {
			l.line++
			l.col = 1
		} else {
			l.col++
		}
		l.pos++
	}
}

func (l *Lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance(1)
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance(1)
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			start := l.token(EOF, "")
			l.advance(2)
			for {
				if l.pos+1 >= len(l.src) {
					return errAt(start, "unterminated block comment")
				}
				if l.src[l.pos] == '*' && l.src[l.pos+1] == '/' {
					l.advance(2)
					break
				}
				l.advance(1)
			}
		default:
			return nil
		}
	}
	return nil
}

func (l *Lexer) token(k Kind, text string) Token {
	return Token{Kind: k, Text: text, Pos: l.pos, Line: l.line, Col: l.col}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// Next returns the next token, or an error on malformed input. At end of
// input it returns a token with Kind EOF.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	if l.pos >= len(l.src) {
		return l.token(EOF, ""), nil
	}
	tok := l.token(EOF, "")
	c := l.src[l.pos]

	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<=":
		tok.Kind = Le
	case ">=":
		tok.Kind = Ge
	case "==":
		tok.Kind = Eq
	case "!=":
		tok.Kind = Ne
	case "&&":
		tok.Kind = AndAnd
	case "||":
		tok.Kind = OrOr
	case "+=":
		tok.Kind = PlusEq
	case "-=":
		tok.Kind = MinusEq
	case ":=":
		tok.Kind = ColonEq
	case "++":
		tok.Kind = PlusPlus
	case "--":
		tok.Kind = MinusLess
	}
	if tok.Kind != EOF {
		l.advance(2)
		return tok, nil
	}

	switch c {
	case '+':
		tok.Kind = Plus
	case '-':
		tok.Kind = Minus
	case '*':
		tok.Kind = Star
	case '/':
		tok.Kind = Slash
	case '%':
		tok.Kind = Percent
	case '<':
		tok.Kind = Lt
	case '>':
		tok.Kind = Gt
	case '=':
		// A single '=' in expression position is the paper's equality;
		// the MiniSynch statement parser reinterprets it as assignment.
		tok.Kind = Eq
	case '!':
		tok.Kind = Bang
	case '(':
		tok.Kind = LParen
	case ')':
		tok.Kind = RParen
	case '{':
		tok.Kind = LBrace
	case '}':
		tok.Kind = RBrace
	case '[':
		tok.Kind = LBracket
	case ']':
		tok.Kind = RBracket
	case ',':
		tok.Kind = Comma
	case ';':
		tok.Kind = Semicolon
	}
	if tok.Kind != EOF || c == 0 {
		if tok.Kind == EOF {
			return Token{}, errAt(tok, "unexpected character %q", string(rune(c)))
		}
		l.advance(1)
		return tok, nil
	}

	if c >= '0' && c <= '9' {
		start := l.pos
		for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
			l.advance(1)
		}
		// Reject identifiers glued to numbers, e.g. "12abc".
		if l.pos < len(l.src) {
			r, _ := utf8.DecodeRuneInString(l.src[l.pos:])
			if isIdentStart(r) {
				return Token{}, errAt(tok, "malformed number %q", l.src[start:l.pos+1])
			}
		}
		tok.Kind = Int
		tok.Text = l.src[start:l.pos]
		return tok, nil
	}

	r, size := utf8.DecodeRuneInString(l.src[l.pos:])
	if isIdentStart(r) {
		start := l.pos
		l.advance(size)
		for l.pos < len(l.src) {
			r, size = utf8.DecodeRuneInString(l.src[l.pos:])
			if !isIdentPart(r) {
				break
			}
			l.advance(size)
		}
		text := l.src[start:l.pos]
		switch text {
		case "true":
			tok.Kind = True
		case "false":
			tok.Kind = False
		default:
			tok.Kind = Ident
			tok.Text = text
		}
		return tok, nil
	}

	return Token{}, errAt(tok, "unexpected character %q", string(r))
}

// Tokenize lexes the whole input, returning every token up to and including
// the terminating EOF token.
func Tokenize(src string) ([]Token, error) {
	l := NewLexer(src)
	var toks []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, nil
		}
	}
}

// quoteIdent reports whether s is a valid identifier, used by canonical
// printing helpers elsewhere.
func quoteIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		if i == 0 && !isIdentStart(r) {
			return false
		}
		if i > 0 && !isIdentPart(r) {
			return false
		}
	}
	return !strings.ContainsAny(s, " \t\n")
}
