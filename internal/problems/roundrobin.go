package problems

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
)

func init() {
	Register(Spec{
		Name:           "round-robin",
		Runner:         RunRoundRobin,
		DefaultThreads: 32,
		Mechs:          NoBaseline,
		CheckDesc:      "turn variable returned to zero (every round completed)",
		Figure:         "fig11",
	})
}

// RunRoundRobin is the round-robin access pattern (§6.3.2, Fig. 11):
// threads take turns entering the monitor in a fixed cyclic order. Each
// thread's waiting condition turn == id mentions its thread-local id, so
// this is the canonical complex-predicate workload: the explicit version
// keeps an array of condition variables and signals exactly the next
// thread; AutoSynch recovers the same O(1) behaviour through equivalence
// tags on the shared expression turn, while AutoSynch-T degrades to a
// linear scan — the contrast shown in Fig. 11 and Table 1.
//
// threads is the ring size; totalOps the total number of turns taken
// (rounded down to a whole number of rounds). Ops counts turns taken;
// Check is turn's final value, which is 0 when every thread completed all
// of its rounds.
func RunRoundRobin(mech Mechanism, threads, totalOps int) Result {
	rounds := totalOps / threads
	if rounds == 0 {
		rounds = 1
	}
	switch mech {
	case Explicit:
		return runRRExplicit(threads, rounds)
	case Baseline:
		return runRRBaseline(threads, rounds)
	default:
		return runRRAuto(mech, threads, rounds)
	}
}

// RunRoundRobinProfiled runs the automatic variants with the Table 1 phase
// timers enabled, and the explicit variant with lock/await timing.
func RunRoundRobinProfiled(mech Mechanism, threads, totalOps int) Result {
	rounds := totalOps / threads
	if rounds == 0 {
		rounds = 1
	}
	switch mech {
	case Explicit:
		return runRRExplicitOpts(threads, rounds, core.WithProfiling())
	case Baseline:
		return runRRBaseline(threads, rounds)
	default:
		return runRRAutoOpts(mech, threads, rounds, core.WithProfiling())
	}
}

func runRRExplicit(threads, rounds int) Result {
	return runRRExplicitOpts(threads, rounds)
}

func runRRExplicitOpts(threads, rounds int, opts ...core.Option) Result {
	m := core.NewExplicit(opts...)
	conds := make([]*core.Cond, threads)
	for i := range conds {
		conds[i] = m.NewCond()
	}
	turn := 0

	var wg sync.WaitGroup
	start := time.Now()
	for id := 0; id < threads; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				m.Enter()
				conds[id].Await(func() bool { return turn == id })
				turn = (turn + 1) % threads
				conds[turn].Signal()
				m.Exit()
			}
		}(id)
	}
	wg.Wait()
	elapsed := time.Since(start)
	return finish(Explicit, m, elapsed, int64(threads)*int64(rounds), int64(turn))
}

func runRRBaseline(threads, rounds int) Result {
	m := core.NewBaseline()
	turn := 0
	var wg sync.WaitGroup
	start := time.Now()
	for id := 0; id < threads; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				m.Enter()
				m.Await(func() bool { return turn == id })
				turn = (turn + 1) % threads
				m.Exit()
			}
		}(id)
	}
	wg.Wait()
	elapsed := time.Since(start)
	return finish(Baseline, m, elapsed, int64(threads)*int64(rounds), int64(turn))
}

func runRRAuto(mech Mechanism, threads, rounds int) Result {
	return runRRAutoOpts(mech, threads, rounds)
}

func runRRAutoOpts(mech Mechanism, threads, rounds int, opts ...core.Option) Result {
	m := newAuto(mech, opts...)
	turn := m.NewInt("turn", 0)
	n := int64(threads)
	myTurn := m.MustCompile("turn == id")

	var wg sync.WaitGroup
	start := time.Now()
	for id := 0; id < threads; id++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				m.Enter()
				if err := m.AwaitPred(myTurn, core.BindInt("id", id)); err != nil {
					panic(fmt.Sprintf("round-robin waiter %d: %v", id, err))
				}
				turn.Set((turn.Get() + 1) % n)
				m.Exit()
			}
		}(int64(id))
	}
	wg.Wait()
	elapsed := time.Since(start)
	var finalTurn int64
	m.Do(func() { finalTurn = turn.Get() })
	return finish(mech, m, elapsed, int64(threads)*int64(rounds), finalTurn)
}
