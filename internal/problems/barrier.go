package problems

import (
	"sync"
	"time"

	"repro/internal/core"
)

func init() {
	Register(Spec{
		Name:           "fifo-barrier",
		Runner:         RunBarrier,
		DefaultThreads: 32,
		// Whole-generation waits make the baseline re-broadcast on every
		// futile wake-up (seconds per run at 32 threads, worse beyond),
		// so it is dropped from the presentation lineup as in
		// Fig. 11–13; the differential test still exercises it.
		Mechs:     NoBaseline,
		CheckDesc: "every arrival released (arrivals == released)",
	})
}

// RunBarrier is a cyclic barrier with FIFO release: threads cross the
// barrier in rounds, and a generation opens only when all parties of the
// current generation have arrived. Arrivals take monotonically increasing
// tickets and wait for released > t — a threshold predicate with an
// unbounded key space, so the AutoSynch min-heap naturally releases the
// generation in arrival order, while the explicit version keeps one
// condition variable per generation and broadcasts it (the textbook
// explicit barrier). threads is the number of parties; totalOps the total
// number of crossings (rounded down to whole rounds, at least one). Ops
// counts crossings; Check is arrivals − released (must be 0).
func RunBarrier(mech Mechanism, threads, totalOps int) Result {
	if threads < 1 {
		threads = 1
	}
	rounds := totalOps / threads
	if rounds == 0 {
		rounds = 1
	}
	switch mech {
	case Explicit:
		return runBarrierExplicit(threads, rounds)
	case Baseline:
		return runBarrierBaseline(threads, rounds)
	default:
		return runBarrierAuto(mech, threads, rounds)
	}
}

// Shared state shape for all variants: arrivals is the monotone ticket
// counter and released the monotone release watermark; a thread with
// ticket t may pass once released > t. The ticket that completes a
// generation (arrivals a multiple of the party count) raises released
// over the whole generation, itself included.

func runBarrierExplicit(parties, rounds int) Result {
	m := core.NewExplicit()
	var arrivals, released int64
	n := int64(parties)
	conds := map[int64]*core.Cond{} // generation index -> condition
	var wg sync.WaitGroup
	start := time.Now()
	for p := 0; p < parties; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				m.Enter()
				t := arrivals
				arrivals++
				if arrivals%n == 0 {
					released += n
					gen := t / n
					if c, ok := conds[gen]; ok {
						c.Broadcast() // the whole generation leaves together
						delete(conds, gen)
					}
				} else {
					gen := t / n
					c, ok := conds[gen]
					if !ok {
						c = m.NewCond()
						conds[gen] = c
					}
					c.Await(func() bool { return released > t })
				}
				m.Exit()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	return finish(Explicit, m, elapsed, int64(parties)*int64(rounds), arrivals-released)
}

func runBarrierBaseline(parties, rounds int) Result {
	m := core.NewBaseline()
	var arrivals, released int64
	n := int64(parties)
	var wg sync.WaitGroup
	start := time.Now()
	for p := 0; p < parties; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				m.Enter()
				t := arrivals
				arrivals++
				if arrivals%n == 0 {
					released += n
				} else {
					m.Await(func() bool { return released > t })
				}
				m.Exit()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	return finish(Baseline, m, elapsed, int64(parties)*int64(rounds), arrivals-released)
}

func runBarrierAuto(mech Mechanism, parties, rounds int) Result {
	m := newAuto(mech)
	arrivals := m.NewInt("arrivals", 0)
	released := m.NewInt("released", 0)
	myRelease := m.MustCompile("released > t")
	n := int64(parties)
	var wg sync.WaitGroup
	start := time.Now()
	for p := 0; p < parties; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				m.Enter()
				t := arrivals.Get()
				arrivals.Add(1)
				if arrivals.Get()%n == 0 {
					released.Add(n)
				} else {
					await(myRelease, core.BindInt("t", t))
				}
				m.Exit()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	var check int64
	m.Do(func() { check = arrivals.Get() - released.Get() })
	return finish(mech, m, elapsed, int64(parties)*int64(rounds), check)
}
