package problems

// zz_generated_preds.go holds the generated evaluators for every static
// predicate the scenario registry compiles (inventory: preds.manifest).
// Linking this package is what turns the registry's monitors onto the
// generated dispatch path; the differential tests in this package pin the
// generated evaluators and tags to the closure interpreter, and the CI
// drift gate (`go generate ./... && git diff --exit-code`) keeps the file
// in lock-step with the manifest.

//go:generate go run repro/cmd/minisynchc -manifest -pkg problems -o zz_generated_preds.go preds.manifest
