package problems

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
)

func init() {
	Register(Spec{
		Name:           "dining-philosophers",
		Runner:         RunPhilosophers,
		DefaultThreads: 32,
		Mechs:          NoBaseline,
		CheckDesc:      "all chopsticks back on the table",
		Figure:         "fig13",
	})
}

// RunPhilosophers is the dining philosophers problem (§6.3.2, Fig. 13):
// each philosopher needs both adjacent chopsticks, picked up atomically
// under the monitor, and contends only with two neighbours — which is why
// the explicit mechanism's edge over automatic signaling stays small in
// the paper's results. threads is the number of philosophers (≥ 2);
// totalOps the total number of meals. Ops counts meals; Check must be 0
// (all chopsticks back on the table).
func RunPhilosophers(mech Mechanism, threads, totalOps int) Result {
	if threads < 2 {
		threads = 2
	}
	meals := split(totalOps, threads)
	switch mech {
	case Explicit:
		return runPhilExplicit(threads, meals)
	case Baseline:
		return runPhilBaseline(threads, meals)
	default:
		return runPhilAuto(mech, threads, meals)
	}
}

func runPhilExplicit(n int, meals []int) Result {
	m := core.NewExplicit()
	held := make([]bool, n) // held[i]: chopstick i is in use
	conds := make([]*core.Cond, n)
	for i := range conds {
		conds[i] = m.NewCond()
	}

	var wg sync.WaitGroup
	start := time.Now()
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id, ops int) {
			defer wg.Done()
			left, right := id, (id+1)%n
			for i := 0; i < ops; i++ {
				m.Enter()
				conds[id].Await(func() bool { return !held[left] && !held[right] })
				held[left], held[right] = true, true
				m.Exit()
				// eat (empty: saturation test)
				m.Enter()
				held[left], held[right] = false, false
				// Only the two neighbours can newly become eligible.
				conds[(id+n-1)%n].Signal()
				conds[(id+1)%n].Signal()
				m.Exit()
			}
		}(id, meals[id])
	}
	wg.Wait()
	elapsed := time.Since(start)
	var down int64
	for _, h := range held {
		if h {
			down++
		}
	}
	return finish(Explicit, m, elapsed, opsSum(meals), down)
}

func runPhilBaseline(n int, meals []int) Result {
	m := core.NewBaseline()
	held := make([]bool, n)

	var wg sync.WaitGroup
	start := time.Now()
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id, ops int) {
			defer wg.Done()
			left, right := id, (id+1)%n
			for i := 0; i < ops; i++ {
				m.Enter()
				m.Await(func() bool { return !held[left] && !held[right] })
				held[left], held[right] = true, true
				m.Exit()
				m.Enter()
				held[left], held[right] = false, false
				m.Exit()
			}
		}(id, meals[id])
	}
	wg.Wait()
	elapsed := time.Since(start)
	var down int64
	for _, h := range held {
		if h {
			down++
		}
	}
	return finish(Baseline, m, elapsed, opsSum(meals), down)
}

func runPhilAuto(mech Mechanism, n int, meals []int) Result {
	m := newAuto(mech)
	held := make([]*core.BoolCell, n)
	for i := range held {
		held[i] = m.NewBool(fmt.Sprintf("c%d", i), false)
	}
	// Each philosopher's waiting condition is a static shared predicate
	// over its two chopsticks, compiled once per table seat; the runtime
	// registers each exactly once.
	preds := make([]*core.Predicate, n)
	for i := range preds {
		preds[i] = m.MustCompile(fmt.Sprintf("!c%d && !c%d", i, (i+1)%n))
	}

	var wg sync.WaitGroup
	start := time.Now()
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id, ops int) {
			defer wg.Done()
			left, right := id, (id+1)%n
			for i := 0; i < ops; i++ {
				m.Enter()
				await(preds[id])
				held[left].Set(true)
				held[right].Set(true)
				m.Exit()
				m.Enter()
				held[left].Set(false)
				held[right].Set(false)
				m.Exit()
			}
		}(id, meals[id])
	}
	wg.Wait()
	elapsed := time.Since(start)
	var down int64
	m.Do(func() {
		for _, h := range held {
			if h.Get() {
				down++
			}
		}
	})
	return finish(mech, m, elapsed, opsSum(meals), down)
}
