// Package problems implements a registry of conditional-synchronization
// scenarios: the seven problems of the paper's evaluation (§6.3) plus
// further classic workloads, each against the four signaling mechanisms
// of §6.2 (explicit, baseline, AutoSynch-T, AutoSynch). All workloads are
// saturation tests: the threads do nothing but monitor operations, so the
// measured time is synchronization cost. Each problem file registers its
// scenario in Registry (see registry.go); consumers iterate the registry
// instead of keeping hand-maintained problem lists.
package problems

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/stats"
)

// Mechanism selects a signaling mechanism for a problem run.
type Mechanism int

// The four mechanisms compared throughout the evaluation.
const (
	Explicit   Mechanism = iota // manual condition variables and signals
	Baseline                    // one condition variable, signalAll everywhere
	AutoSynchT                  // automatic signaling without predicate tags
	AutoSynch                   // the full mechanism
)

// All lists every mechanism in presentation order.
var All = []Mechanism{Explicit, Baseline, AutoSynchT, AutoSynch}

// Automatic lists the two AutoSynch variants.
var Automatic = []Mechanism{AutoSynchT, AutoSynch}

// NoBaseline is the Fig. 11–13 lineup: the baseline is omitted because it
// is off the scale of those plots.
var NoBaseline = []Mechanism{Explicit, AutoSynchT, AutoSynch}

// HeadToHead is the Fig. 14–15 lineup: explicit signaling against the
// full AutoSynch mechanism.
var HeadToHead = []Mechanism{Explicit, AutoSynch}

func (m Mechanism) String() string {
	switch m {
	case Explicit:
		return "explicit"
	case Baseline:
		return "baseline"
	case AutoSynchT:
		return "autosynch-t"
	case AutoSynch:
		return "autosynch"
	}
	return fmt.Sprintf("Mechanism(%d)", int(m))
}

// ParseMechanism is the inverse of String.
func ParseMechanism(s string) (Mechanism, error) {
	for _, m := range All {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("unknown mechanism %q", s)
}

// newAuto builds the monitor for one of the two automatic variants.
func newAuto(mech Mechanism, opts ...core.Option) *core.Monitor {
	if mech == AutoSynchT {
		opts = append(opts, core.WithoutTagging())
	}
	return core.New(opts...)
}

// autoOpts returns the core options selecting one of the two automatic
// variants, for runners that construct monitors indirectly (the sharded
// scenarios hand these to shard.New).
func autoOpts(mech Mechanism) []core.Option {
	if mech == AutoSynchT {
		return []core.Option{core.WithoutTagging()}
	}
	return nil
}

// AutoOptions is autoOpts for external consumers (the simcheck
// differential shapes build sharded monitors per mechanism): the core
// options selecting mech's variant of an automatic monitor.
func AutoOptions(mech Mechanism) []core.Option { return autoOpts(mech) }

// NewMechanism constructs a fresh monitor of the given mechanism behind
// the shared core.Mechanism interface, with any extra core options
// applied. This is the one place the mechanism enum maps to concrete
// constructors; differential harnesses build their rigs through it.
func NewMechanism(mech Mechanism, opts ...core.Option) core.Mechanism {
	switch mech {
	case Explicit:
		return core.NewExplicit(opts...)
	case Baseline:
		return core.NewBaseline(opts...)
	default:
		return newAuto(mech, opts...)
	}
}

// DefaultShards is the partition count the sharded scenarios use unless
// overridden (cmd/autosynch-bench -shards, or the scale-shards sweep).
const DefaultShards = 8

// shardCount is read by the sharded runners; set it once before runs.
var shardCount = DefaultShards

// SetShardCount overrides the partition count for subsequent runs of the
// sharded scenarios (specs with Sharded: true). Non-positive counts are
// ignored. Not safe to call concurrently with running scenarios.
func SetShardCount(n int) {
	if n > 0 {
		shardCount = n
	}
}

// ShardCount returns the partition count the sharded scenarios run with.
func ShardCount() int { return shardCount }

// Result is the outcome of one problem run.
type Result struct {
	Mechanism Mechanism
	Elapsed   time.Duration
	Stats     core.Stats
	Ops       int64 // completed operations (problem-specific unit)
	Check     int64 // problem-specific conservation value; see each problem

	// Latency, when non-nil, is the run's wake-to-claim histogram:
	// notification received to claim completed, recorded per delivery.
	// Only scenarios with an observable delivery path (the watch service)
	// populate it; pure-throughput scenarios leave it nil.
	Latency *stats.Histogram
}

// Throughput returns operations per second.
func (r Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

// Runner runs a problem at a given scale: threads is the problem's
// x-axis unit (see each problem's documentation) and totalOps the overall
// amount of work, held constant across thread counts so runs are
// comparable, as in the paper's saturation protocol.
type Runner func(mech Mechanism, threads, totalOps int) Result

// finish assembles a Result for any monitor implementation: the runner
// code is mechanism-specific (that is the comparison being made), but the
// measurement plumbing drives every mechanism through the shared
// core.Mechanism interface. elapsed is captured by the caller before any
// final check reads, so the measurement excludes them.
func finish(mech Mechanism, m core.Mechanism, elapsed time.Duration, ops, check int64) Result {
	return Result{Mechanism: mech, Elapsed: elapsed, Stats: m.Stats(), Ops: ops, Check: check,
		Latency: m.WaitLatency()}
}

// stripeStats merges the counters of hand-striped monitors (the explicit
// and baseline variants of the sharded scenarios), mirroring
// shard.Monitor.Stats for the automatic ones.
func stripeStats(ms ...core.Mechanism) core.Stats {
	var s core.Stats
	for _, m := range ms {
		s = s.Add(m.Stats())
	}
	return s
}

// stripeLatency merges the wake-to-claim histograms of hand-striped
// monitors, mirroring shard.Monitor.WaitLatency for the automatic ones;
// nil when no stripe completed a wait.
func stripeLatency(ms ...core.Mechanism) *stats.Histogram {
	hs := make([]*stats.Histogram, len(ms))
	for i, m := range ms {
		hs[i] = m.WaitLatency()
	}
	return mergeLatency(hs...)
}

// mergeLatency folds already-snapshotted histograms (WaitLatency returns
// copies, so merging in place is safe); nil when every input is nil.
func mergeLatency(hs ...*stats.Histogram) *stats.Histogram {
	var merged *stats.Histogram
	for _, h := range hs {
		if h == nil {
			continue
		}
		if merged == nil {
			merged = h
			continue
		}
		merged.Merge(h)
	}
	return merged
}

// await panics on a wait error: scenario predicates are statically known
// to be well-formed, so an error here is a programming bug, not an input
// condition.
func await(p *core.Predicate, binds ...core.Binding) {
	if err := p.Await(binds...); err != nil {
		panic(err)
	}
}

// split divides total into n near-equal positive parts.
func split(total, n int) []int {
	parts := make([]int, n)
	base, rem := total/n, total%n
	for i := range parts {
		parts[i] = base
		if i < rem {
			parts[i]++
		}
	}
	return parts
}

// xorshift64 is a tiny per-goroutine PRNG so random workloads do not
// contend on a shared source.
type xorshift64 uint64

func newRand(seed uint64) xorshift64 {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return xorshift64(seed)
}

// intn returns a pseudo-random value in [1, n].
func (x *xorshift64) intn(n int64) int64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift64(v)
	return int64(v%uint64(n)) + 1
}
