package problems

import (
	"errors"
	"os"
	"testing"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/expr"
)

// loadManifest parses the checked-in predicate inventory.
func loadManifest(t *testing.T) []codegen.Input {
	t.Helper()
	src, err := os.ReadFile("preds.manifest")
	if err != nil {
		t.Fatalf("read manifest: %v", err)
	}
	inputs, err := codegen.ParseManifest("preds.manifest", string(src))
	if err != nil {
		t.Fatal(err)
	}
	return inputs
}

// TestGeneratedFileUpToDate is the in-repo drift gate for the registry's
// generated evaluators: zz_generated_preds.go must be byte-identical to
// what the manifest generates today.
func TestGeneratedFileUpToDate(t *testing.T) {
	want, err := codegen.Generate(codegen.Options{
		Pkg:    "problems",
		Source: "minisynchc -manifest preds.manifest",
	}, loadManifest(t))
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile("zz_generated_preds.go")
	if err != nil {
		t.Fatalf("read generated file: %v", err)
	}
	if string(got) != want {
		t.Error("zz_generated_preds.go is stale; run `go generate ./internal/problems`")
	}
}

// TestGeneratedManifestDifferential compiles every manifest predicate on a
// generated-dispatch monitor and a closure-interpreter monitor with the
// manifest's own shared declarations, then pins result, entry canon, and
// tags to each other — and the result to the AST oracle — over fuzzed
// shared states and bindings. This is the registry half of the keystone
// differential (internal/codegen carries the fuzzed-corpus half).
func TestGeneratedManifestDifferential(t *testing.T) {
	rng := xorshift64(0xabcde)
	trials := 32
	if testing.Short() {
		trials = 8
	}
	for _, in := range loadManifest(t) {
		in := in
		t.Run(in.Monitor, func(t *testing.T) {
			gm := core.New()
			fm := core.New(core.WithoutGenerated())
			gInts := map[string]*core.IntCell{}
			gBools := map[string]*core.BoolCell{}
			fInts := map[string]*core.IntCell{}
			fBools := map[string]*core.BoolCell{}
			for _, v := range in.Shared {
				if v.Bool {
					gBools[v.Name] = gm.NewBool(v.Name, false)
					fBools[v.Name] = fm.NewBool(v.Name, false)
				} else {
					gInts[v.Name] = gm.NewInt(v.Name, 0)
					fInts[v.Name] = fm.NewInt(v.Name, 0)
				}
			}
			for _, src := range in.Preds {
				gp, err := gm.Compile(src)
				if err != nil {
					t.Fatalf("compile %q: %v", src, err)
				}
				fp, err := fm.Compile(src)
				if err != nil {
					t.Fatalf("compile %q (fallback): %v", src, err)
				}
				if !gp.Generated() {
					t.Errorf("%q: no generated evaluator bound (manifest drift?)", src)
					continue
				}
				spec := fp.GenSpec()
				node := expr.MustParse(src)
				for trial := 0; trial < trials; trial++ {
					env := map[string]expr.Value{}
					for name, c := range gInts {
						v := int64(rng.intn(9) - 2)
						c.Set(v)
						fInts[name].Set(v)
						env[name] = expr.IntValue(v)
					}
					for name, c := range gBools {
						v := rng.intn(2) == 1
						c.Set(v)
						fBools[name].Set(v)
						env[name] = expr.BoolValue(v)
					}
					binds := make([]core.Binding, 0, len(spec.Locals))
					for _, l := range spec.Locals {
						if l.Bool {
							v := rng.intn(2) == 1
							binds = append(binds, core.BindBool(l.Name, v))
							env[l.Name] = expr.BoolValue(v)
						} else {
							v := int64(rng.intn(9) - 2)
							binds = append(binds, core.BindInt(l.Name, v))
							env[l.Name] = expr.IntValue(v)
						}
					}
					gotGen, gErr := gm.ProbeEntry(gp, binds...)
					gotInt, fErr := fm.ProbeEntry(fp, binds...)
					if (gErr != nil) != (fErr != nil) {
						t.Fatalf("%q: probe errors diverge: %v vs %v", src, gErr, fErr)
					}
					if gErr != nil {
						continue
					}
					if gotGen.Fast != gotInt.Fast || gotGen.Eval != gotInt.Eval ||
						gotGen.Folded != gotInt.Folded || gotGen.Canon != gotInt.Canon {
						t.Fatalf("%q: generated %+v != interpreted %+v (env %v)", src, gotGen, gotInt, env)
					}
					if len(gotGen.Tags) != len(gotInt.Tags) {
						t.Fatalf("%q: tag count %d != %d", src, len(gotGen.Tags), len(gotInt.Tags))
					}
					for i := range gotGen.Tags {
						if gotGen.Tags[i].String() != gotInt.Tags[i].String() {
							t.Fatalf("%q: tag[%d] %s != %s", src, i, gotGen.Tags[i], gotInt.Tags[i])
						}
					}
					want, err := expr.EvalBool(node, expr.MapEnv(env))
					if err != nil {
						if errors.Is(err, expr.ErrDivByZero) {
							continue
						}
						t.Fatalf("%q: oracle: %v", src, err)
					}
					if gotGen.Eval != want {
						t.Fatalf("%q: generated eval %t, oracle %t (env %v)", src, gotGen.Eval, want, env)
					}
				}
			}
			if s := gm.Stats(); s.GenMisses != 0 {
				t.Errorf("manifest monitor %q recorded %d generated-dispatch misses", in.Monitor, s.GenMisses)
			}
		})
	}
}

// TestGeneratedRegistryCoverage runs every registered scenario on the full
// automatic mechanism and asserts the generated dispatch path actually
// served it: every statically-known predicate must bind a generated
// evaluator (GenMisses == 0), and only the scenarios that build predicate
// sources dynamically with fmt.Sprintf are allowed to fall back.
func TestGeneratedRegistryCoverage(t *testing.T) {
	// Predicates formatted per-instance at runtime; the registry cannot
	// know them statically, so the closure interpreter serves them.
	dynamic := map[string]bool{
		"dining-philosophers": true, // "!c%d && !c%d" per seat
		"sharded-kv":          true, // "v%d >= r" etc. per key/pair
		"watch-service":       true, // "v%d >= want" per watched key
	}
	const threads, totalOps = 6, 360
	for _, name := range Names() {
		spec := MustLookup(name)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			res := spec.Runner(AutoSynch, threads, totalOps)
			if res.Check != 0 {
				t.Fatalf("conservation check = %d, want 0", res.Check)
			}
			s := res.Stats
			if dynamic[name] {
				if s.GenMisses == 0 {
					t.Errorf("expected dynamic predicates to miss generated dispatch (GenMisses = 0)")
				}
				return
			}
			if s.GenPreds == 0 {
				t.Errorf("no generated evaluators bound (GenPreds = 0); manifest out of date?")
			}
			if s.GenMisses != 0 {
				t.Errorf("%d predicates missed generated dispatch; manifest signatures drifted", s.GenMisses)
			}
		})
	}
}
