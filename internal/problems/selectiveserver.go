package problems

import (
	"sync"
	"time"

	"repro/internal/core"
)

// SelectiveQueueCap bounds each class's request queue: small, so clients
// genuinely block on queue room and the server's draining cadence feeds
// back into admission.
const SelectiveQueueCap = 4

// selectiveClientsPerClass is how many client goroutines share one
// class; requests within a class interleave, so the ticket predicates
// (done >= t) genuinely overlap.
const selectiveClientsPerClass = 2

func init() {
	Register(Spec{
		Name:           "selective-server",
		Runner:         RunSelectiveServer,
		DefaultThreads: 8,
		CheckDesc:      "every request served, queues empty, no registered waiter left",
		Figure:         "",
	})
}

// RunSelectiveServer is the guarded-region selective server: threads
// client CLASSES, each with its own monitor (per-tenant locks, as a
// server would shard its sessions), and ONE server goroutine that serves
// all of them with SelectOrdered over one has-requests guard per class —
// class 0 is the highest priority, so whenever several classes have
// requests pending at a decision point the earliest class is served
// first, while a lone ready class never starves behind an idle
// higher-priority one. Each request is synchronous: a client takes a
// ticket, enqueues, and waits — inside the same critical section, across
// the released monitor — until the server's batch advances the class's
// done watermark past its ticket (a threshold-tagged predicate per
// outstanding ticket). The server's winning body drains the class queue
// under that class's lock; admission is bounded by SelectiveQueueCap.
// totalOps is the number of requests, split across classes and then
// across each class's clients; Check is the unserved backlog plus any
// waiter still registered after the run.
func RunSelectiveServer(mech Mechanism, threads, totalOps int) Result {
	classes := threads
	if classes < 1 {
		classes = 1
	}
	perClass := split(totalOps, classes)

	// class is one tenant: the mechanism-specific monitor, the client
	// request loop, the has-requests guard the server selects on, and
	// the serve step its winning body runs (returning requests served).
	type class struct {
		mech    core.Mechanism
		request func(n int)
		guard   *core.Guard
		serve   func() int64
	}
	cls := make([]*class, classes)
	for i := range cls {
		switch mech {
		case Explicit:
			m := core.NewExplicit()
			notFull := m.NewCond()
			notEmpty := m.NewCond()
			servedC := m.NewCond()
			pending, issued, done := 0, 0, 0
			cls[i] = &class{
				mech: m,
				request: func(n int) {
					for op := 0; op < n; op++ {
						m.Enter()
						notFull.Await(func() bool { return pending < SelectiveQueueCap })
						t := issued
						issued++
						pending++
						notEmpty.Signal()
						servedC.Await(func() bool { return done > t })
						m.Exit()
					}
				},
				guard: notEmpty.When(func() bool { return pending > 0 }),
				serve: func() int64 {
					n := pending
					pending = 0
					done += n
					// A whole batch was admitted and a whole batch
					// completed: several clients may proceed on each side,
					// so this is inherently a signalAll moment for the
					// explicit monitor.
					notFull.Broadcast()
					servedC.Broadcast()
					return int64(n)
				},
			}
		case Baseline:
			m := core.NewBaseline()
			pending, issued, done := 0, 0, 0
			cls[i] = &class{
				mech: m,
				request: func(n int) {
					for op := 0; op < n; op++ {
						m.Enter()
						m.Await(func() bool { return pending < SelectiveQueueCap })
						t := issued
						issued++
						pending++
						m.Await(func() bool { return done > t })
						m.Exit()
					}
				},
				guard: m.WhenFunc(func() bool { return pending > 0 }),
				serve: func() int64 {
					n := pending
					pending = 0
					done += n
					return int64(n)
				},
			}
		default:
			m := newAuto(mech)
			pending := m.NewInt("pending", 0)
			m.NewInt("qcap", SelectiveQueueCap)
			done := m.NewInt("done", 0)
			issued := int64(0) // monitor-guarded: touched only between Enter/Exit
			room := m.MustCompile("pending < qcap")
			ticketDone := m.MustCompile("done >= t")
			cls[i] = &class{
				mech: m,
				request: func(n int) {
					for op := 0; op < n; op++ {
						m.Enter()
						await(room)
						t := issued
						issued++
						pending.Add(1)
						await(ticketDone, core.BindInt("t", t+1))
						m.Exit()
					}
				},
				guard: m.MustCompile("pending > 0").When(),
				serve: func() int64 {
					n := pending.Get()
					pending.Set(0)
					done.Add(n)
					return n
				},
			}
		}
	}

	var wg sync.WaitGroup
	start := time.Now()
	for c, cl := range cls {
		for _, share := range split(perClass[c], selectiveClientsPerClass) {
			wg.Add(1)
			go func(cl *class, n int) {
				defer wg.Done()
				cl.request(n)
			}(cl, share)
		}
	}

	// The server: one goroutine, one SelectOrdered per batch over the
	// same reusable guards — class order is priority order. The winning
	// body serves under that class's lock; its exit relays the done
	// watermark to the waiting ticket holders, and the losing guards are
	// cancelled leak-free.
	var served int64
	cases := make([]core.Case, classes)
	for c, cl := range cls {
		cl := cl
		cases[c] = cl.guard.Then(func() { served += cl.serve() })
	}
	for served < int64(totalOps) {
		if _, err := core.SelectOrdered(cases...); err != nil {
			panic(err)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Conservation: every class queue drained, every issued ticket
	// served, and nobody — parked client or armed guard — left
	// registered anywhere.
	var check int64
	var agg core.Stats
	mechs := make([]core.Mechanism, 0, len(cls))
	for _, cl := range cls {
		cl.mech.Do(func() { check += cl.serve() })
		check += int64(cl.mech.Waiting())
		agg = agg.Add(cl.mech.Stats())
		mechs = append(mechs, cl.mech)
	}
	return Result{Mechanism: mech, Elapsed: elapsed, Stats: agg, Ops: served, Check: check,
		Latency: stripeLatency(mechs...)}
}
