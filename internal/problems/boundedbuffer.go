package problems

import (
	"sync"
	"time"

	"repro/internal/core"
)

// DefaultBufferCap is the buffer capacity used by the Fig. 8 workload.
const DefaultBufferCap = 64

func init() {
	Register(Spec{
		Name:           "bounded-buffer",
		Runner:         RunBoundedBuffer,
		DefaultThreads: 32,
		CheckDesc:      "final buffer occupancy is zero",
		Figure:         "fig8",
	})
}

// RunBoundedBuffer is the classical bounded-buffer problem (§6.3.1,
// Fig. 8): producers wait while the buffer is full, consumers while it is
// empty, one item per operation. threads is the total number of producers
// plus consumers (half each, at least one each); totalOps is the number of
// items pushed through the buffer. Check is the final buffer occupancy
// (must be 0).
func RunBoundedBuffer(mech Mechanism, threads, totalOps int) Result {
	return RunBoundedBufferCap(mech, threads, totalOps, DefaultBufferCap)
}

// RunBoundedBufferCap is RunBoundedBuffer with an explicit capacity.
func RunBoundedBufferCap(mech Mechanism, threads, totalOps, capacity int) Result {
	producers := threads / 2
	if producers == 0 {
		producers = 1
	}
	consumers := threads - producers
	if consumers == 0 {
		consumers = 1
	}
	prodOps := split(totalOps, producers)
	consOps := split(totalOps, consumers)

	switch mech {
	case Explicit:
		return runBBExplicit(producers, consumers, prodOps, consOps, capacity)
	case Baseline:
		return runBBBaseline(producers, consumers, prodOps, consOps, capacity)
	default:
		return runBBAuto(mech, producers, consumers, prodOps, consOps, capacity)
	}
}

func runBBExplicit(producers, consumers int, prodOps, consOps []int, capacity int) Result {
	m := core.NewExplicit()
	notFull := m.NewCond()
	notEmpty := m.NewCond()
	count := 0

	var wg sync.WaitGroup
	start := time.Now()
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(ops int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				m.Enter()
				notFull.Await(func() bool { return count < capacity })
				count++
				notEmpty.Signal()
				m.Exit()
			}
		}(prodOps[p])
	}
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(ops int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				m.Enter()
				notEmpty.Await(func() bool { return count > 0 })
				count--
				notFull.Signal()
				m.Exit()
			}
		}(consOps[c])
	}
	wg.Wait()
	elapsed := time.Since(start)
	return finish(Explicit, m, elapsed, opsSum(prodOps)+opsSum(consOps), int64(count))
}

func runBBBaseline(producers, consumers int, prodOps, consOps []int, capacity int) Result {
	m := core.NewBaseline()
	count := 0

	var wg sync.WaitGroup
	start := time.Now()
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(ops int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				m.Enter()
				m.Await(func() bool { return count < capacity })
				count++
				m.Exit()
			}
		}(prodOps[p])
	}
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(ops int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				m.Enter()
				m.Await(func() bool { return count > 0 })
				count--
				m.Exit()
			}
		}(consOps[c])
	}
	wg.Wait()
	elapsed := time.Since(start)
	return finish(Baseline, m, elapsed, opsSum(prodOps)+opsSum(consOps), int64(count))
}

func runBBAuto(mech Mechanism, producers, consumers int, prodOps, consOps []int, capacity int) Result {
	m := newAuto(mech)
	count := m.NewInt("count", 0)
	m.NewInt("cap", int64(capacity))
	notFull := m.MustCompile("count < cap")
	notEmpty := m.MustCompile("count > 0")

	var wg sync.WaitGroup
	start := time.Now()
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(ops int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				m.Enter()
				await(notFull)
				count.Add(1)
				m.Exit()
			}
		}(prodOps[p])
	}
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(ops int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				m.Enter()
				await(notEmpty)
				count.Add(-1)
				m.Exit()
			}
		}(consOps[c])
	}
	wg.Wait()
	elapsed := time.Since(start)
	var check int64
	m.Do(func() { check = count.Get() })
	return finish(mech, m, elapsed, opsSum(prodOps)+opsSum(consOps), check)
}

func opsSum(ops []int) int64 {
	var s int64
	for _, o := range ops {
		s += int64(o)
	}
	return s
}
