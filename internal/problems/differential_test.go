package problems

import (
	"testing"
)

// TestDifferentialCrossMechanism runs every registered scenario under all
// four mechanisms with identical parameters and cross-checks the results:
// conservation must hold everywhere, the completed operation count must
// match across mechanisms (unless the spec declares it schedule-dependent,
// e.g. the balking barber), and the two AutoSynch variants must never
// broadcast — the paper's headline property, differentially verified on
// the whole suite.
func TestDifferentialCrossMechanism(t *testing.T) {
	const threads, totalOps = 6, 360
	for _, spec := range Specs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			results := make(map[Mechanism]Result, len(All))
			for _, mech := range All {
				// runChecked supplies the deadlock watchdog and the
				// per-result assertions (Check == 0, Ops > 0, label).
				results[mech] = runChecked(t, spec.Name, mech, threads, totalOps)
			}
			if !spec.OpsVary {
				base := results[Explicit].Ops
				for _, mech := range All[1:] {
					if got := results[mech].Ops; got != base {
						t.Errorf("op count diverges: explicit=%d %s=%d", base, mech, got)
					}
				}
			}
			for _, mech := range Automatic {
				if b := results[mech].Stats.Broadcasts; b != 0 {
					t.Errorf("%s issued %d broadcasts; must be 0", mech, b)
				}
			}
		})
	}
}

// TestRegistryShape pins the registry's contract: the twenty-three
// expected scenarios are present, and every spec is complete enough for
// the consumers that iterate the registry blindly.
func TestRegistryShape(t *testing.T) {
	want := []string{
		"bounded-buffer", "h2o", "sleeping-barber", "round-robin",
		"readers-writers", "dining-philosophers", "parameterized-buffer",
		"cigarette-smokers", "unisex-bathroom", "river-crossing",
		"fifo-barrier", "ticketed-elevator", "resource-allocator",
		"dispatcher", "selective-server",
		"sharded-kv", "striped-semaphore", "work-stealing-pool",
		"watch-service",
		"token-bucket", "priority-scheduler", "connection-pool",
		"pubsub-broker",
	}
	if len(Registry) < 23 {
		t.Errorf("registry holds %d scenarios, want >= 23", len(Registry))
	}
	for _, name := range []string{"sharded-kv", "striped-semaphore", "work-stealing-pool"} {
		if !MustLookup(name).Sharded {
			t.Errorf("scenario %q must be marked Sharded (the -shards flag keys off it)", name)
		}
	}
	for _, name := range want {
		spec, ok := Lookup(name)
		if !ok {
			t.Errorf("scenario %q missing from registry", name)
			continue
		}
		if spec.Name != name || spec.Runner == nil || spec.DefaultThreads <= 0 || spec.CheckDesc == "" {
			t.Errorf("scenario %q has an incomplete spec: %+v", name, spec)
		}
		if len(spec.Mechanisms()) == 0 {
			t.Errorf("scenario %q has no mechanisms", name)
		}
	}
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names() not sorted: %v", names)
			break
		}
	}
	if specs := Specs(); len(specs) != len(names) {
		t.Errorf("Specs() returned %d entries for %d names", len(specs), len(names))
	}
	if MustLookup("h2o").Figure != "fig9" {
		t.Error("h2o spec lost its figure id")
	}
}

func TestRegisterValidation(t *testing.T) {
	mustPanic := func(name string, s Spec) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", name)
			}
		}()
		Register(s)
	}
	mustPanic("empty", Spec{})
	mustPanic("no runner", Spec{Name: "x", DefaultThreads: 1})
	mustPanic("no threads", Spec{Name: "x", Runner: RunH2O})
	mustPanic("duplicate", Spec{Name: "h2o", Runner: RunH2O, DefaultThreads: 2})
}
