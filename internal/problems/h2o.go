package problems

import (
	"sync"
	"time"

	"repro/internal/core"
)

func init() {
	Register(Spec{
		Name:           "h2o",
		Runner:         RunH2O,
		DefaultThreads: 32,
		CheckDesc:      "every bonding slot consumed, no hydrogen offers leaked",
		Figure:         "fig9",
	})
}

// RunH2O is the water-building problem (§6.3.1, Fig. 9): hydrogen threads
// offer atoms and wait to be bonded; a single oxygen thread (as in the
// paper's setup) waits for two hydrogens and forms a molecule.
//
// threads is the number of hydrogen threads (minimum 2 — a single
// hydrogen can never have two offers outstanding, so one thread cannot
// complete a molecule); totalOps is the number of hydrogen atoms to bond
// (rounded up to even). Hydrogen threads draw work until the oxygen has
// formed every molecule: a quota per hydrogen thread would deadlock at the
// tail, when the one remaining thread cannot pair with itself, so the
// termination condition lives in the waiting predicate itself
// (hBonded > 0 || done) and stragglers retract their unpaired offers.
// Ops counts molecules; Check verifies every bonding slot was consumed and
// no offers leaked.
func RunH2O(mech Mechanism, threads, totalOps int) Result {
	if threads < 2 {
		threads = 2
	}
	if totalOps%2 != 0 {
		totalOps++
	}
	molecules := totalOps / 2
	switch mech {
	case Explicit:
		return runH2OExplicit(threads, molecules)
	case Baseline:
		return runH2OBaseline(threads, molecules)
	default:
		return runH2OAuto(mech, threads, molecules)
	}
}

// Shared state: hAvail hydrogens offered and unclaimed, hBonded bonding
// slots produced by the oxygen and not yet collected, done set by the
// oxygen after the last molecule.

func runH2OExplicit(threads, molecules int) Result {
	m := core.NewExplicit()
	oxygenReady := m.NewCond() // oxygen waits for 2 hydrogens
	bonded := m.NewCond()      // hydrogens wait to be bonded (or closing time)
	hAvail, hBonded := 0, 0
	doneFlag := false
	var water, consumed int64

	var wg sync.WaitGroup
	start := time.Now()
	wg.Add(1)
	go func() { // the oxygen thread
		defer wg.Done()
		for w := 0; w < molecules; w++ {
			m.Enter()
			oxygenReady.Await(func() bool { return hAvail >= 2 })
			hAvail -= 2
			hBonded += 2
			water++
			bonded.Signal()
			bonded.Signal()
			m.Exit()
		}
		m.Enter()
		doneFlag = true
		bonded.Broadcast() // release every straggler
		m.Exit()
	}()
	for h := 0; h < threads; h++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				m.Enter()
				if doneFlag && hBonded == 0 {
					m.Exit()
					return
				}
				hAvail++
				if hAvail >= 2 {
					oxygenReady.Signal()
				}
				bonded.Await(func() bool { return hBonded > 0 || doneFlag })
				if hBonded > 0 {
					hBonded--
					consumed++
					m.Exit()
					continue
				}
				hAvail-- // closing time: retract the unpaired offer
				m.Exit()
				return
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	return finish(Explicit, m, elapsed, water, 2*water-consumed+int64(hAvail)+int64(hBonded))
}

func runH2OBaseline(threads, molecules int) Result {
	m := core.NewBaseline()
	hAvail, hBonded := 0, 0
	doneFlag := false
	var water, consumed int64

	var wg sync.WaitGroup
	start := time.Now()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for w := 0; w < molecules; w++ {
			m.Enter()
			m.Await(func() bool { return hAvail >= 2 })
			hAvail -= 2
			hBonded += 2
			water++
			m.Exit()
		}
		m.Do(func() { doneFlag = true })
	}()
	for h := 0; h < threads; h++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				m.Enter()
				if doneFlag && hBonded == 0 {
					m.Exit()
					return
				}
				hAvail++
				m.Await(func() bool { return hBonded > 0 || doneFlag })
				if hBonded > 0 {
					hBonded--
					consumed++
					m.Exit()
					continue
				}
				hAvail--
				m.Exit()
				return
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	return finish(Baseline, m, elapsed, water, 2*water-consumed+int64(hAvail)+int64(hBonded))
}

func runH2OAuto(mech Mechanism, threads, molecules int) Result {
	m := newAuto(mech)
	hAvail := m.NewInt("hAvail", 0)
	hBonded := m.NewInt("hBonded", 0)
	done := m.NewBool("done", false)
	twoHydrogens := m.MustCompile("hAvail >= 2")
	bondReady := m.MustCompile("hBonded > 0 || done")
	var water, consumed int64

	var wg sync.WaitGroup
	start := time.Now()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for w := 0; w < molecules; w++ {
			m.Enter()
			await(twoHydrogens)
			hAvail.Add(-2)
			hBonded.Add(2)
			water++
			m.Exit()
		}
		m.Do(func() { done.Set(true) })
	}()
	for h := 0; h < threads; h++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				m.Enter()
				if done.Get() && hBonded.Get() == 0 {
					m.Exit()
					return
				}
				hAvail.Add(1)
				await(bondReady)
				if hBonded.Get() > 0 {
					hBonded.Add(-1)
					consumed++
					m.Exit()
					continue
				}
				hAvail.Add(-1)
				m.Exit()
				return
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	var leak int64
	m.Do(func() { leak = hAvail.Get() + hBonded.Get() })
	return finish(mech, m, elapsed, water, 2*water-consumed+leak)
}
