package problems

import (
	"reflect"
	"sync"
	"time"

	"repro/internal/core"
)

// DispatcherBufCap is each buffer's capacity in the dispatcher workload:
// small, so producers genuinely block and both wait directions (blocking
// producer waits, armed dispatcher handles) are exercised.
const DispatcherBufCap = 4

func init() {
	Register(Spec{
		Name:           "dispatcher",
		Runner:         RunDispatcher,
		DefaultThreads: 16,
		CheckDesc:      "all items drained, no buffer occupancy or armed handle left",
		Figure:         "",
	})
}

// RunDispatcher is the select-multiplexing workload behind the handle
// API: threads independent bounded buffers (each its own monitor, as a
// server would keep per-resource locks), one producer goroutine per
// buffer, and a SINGLE dispatcher goroutine that drains all of them by
// arming one not-empty wait handle per buffer and selecting over the
// ready channels. Where every other scenario spends a parked goroutine
// per waiter, the dispatcher holds N armed waits at once from one
// goroutine — the handle redesign is what makes the pattern expressible
// at all. totalOps is the number of items pushed through, split across
// the buffers; Check is the final occupancy plus any waiter still
// registered after the dispatcher cancels its handles (a handle leak).
func RunDispatcher(mech Mechanism, threads, totalOps int) Result {
	if threads < 1 {
		threads = 1
	}
	perBuf := split(totalOps, threads)

	// buffer is one resource: the mechanism-specific monitor plus the
	// produce step, the armed-handle constructor, and the drain step the
	// dispatcher runs under a successful claim (returning items taken).
	type buffer struct {
		mech    core.Mechanism
		produce func(ops int)
		arm     func() *core.Wait
		drain   func() int64
	}
	bufs := make([]*buffer, threads)
	for i := range bufs {
		switch mech {
		case Explicit:
			m := core.NewExplicit()
			notFull := m.NewCond()
			notEmpty := m.NewCond()
			count := 0
			bufs[i] = &buffer{
				mech: m,
				produce: func(ops int) {
					for op := 0; op < ops; op++ {
						m.Enter()
						notFull.Await(func() bool { return count < DispatcherBufCap })
						count++
						notEmpty.Signal()
						m.Exit()
					}
				},
				arm: func() *core.Wait {
					return notEmpty.Arm(func() bool { return count > 0 })
				},
				drain: func() int64 {
					n := int64(count)
					count = 0
					notFull.Signal()
					return n
				},
			}
		case Baseline:
			m := core.NewBaseline()
			count := 0
			bufs[i] = &buffer{
				mech: m,
				produce: func(ops int) {
					for op := 0; op < ops; op++ {
						m.Enter()
						m.Await(func() bool { return count < DispatcherBufCap })
						count++
						m.Exit()
					}
				},
				arm: func() *core.Wait {
					return m.ArmFunc(func() bool { return count > 0 })
				},
				drain: func() int64 {
					n := int64(count)
					count = 0
					return n
				},
			}
		default:
			m := newAuto(mech)
			count := m.NewInt("count", 0)
			m.NewInt("cap", DispatcherBufCap)
			notFull := m.MustCompile("count < cap")
			notEmpty := m.MustCompile("count > 0")
			bufs[i] = &buffer{
				mech: m,
				produce: func(ops int) {
					for op := 0; op < ops; op++ {
						m.Enter()
						await(notFull)
						count.Add(1)
						m.Exit()
					}
				},
				arm:   func() *core.Wait { return notEmpty.Arm() },
				drain: func() int64 { n := count.Get(); count.Set(0); return n },
			}
		}
	}

	var wg sync.WaitGroup
	start := time.Now()
	for i, b := range bufs {
		wg.Add(1)
		go func(b *buffer, ops int) {
			defer wg.Done()
			b.produce(ops)
		}(b, perBuf[i])
	}

	// The dispatcher: arm one handle per buffer, select over all ready
	// channels with reflect.Select (the dynamic form of the select
	// statement, sized by data rather than by source text), claim, drain,
	// re-arm. A futile claim — possible in principle if a mechanism
	// notified spuriously — just re-selects: the handle re-armed itself.
	handles := make([]*core.Wait, threads)
	cases := make([]reflect.SelectCase, threads)
	for i, b := range bufs {
		handles[i] = b.arm()
		cases[i] = reflect.SelectCase{Dir: reflect.SelectRecv, Chan: reflect.ValueOf(handles[i].Ready())}
	}
	var drained int64
	for drained < int64(totalOps) {
		i, _, _ := reflect.Select(cases)
		if err := handles[i].Claim(); err != nil {
			if err == core.ErrNotReady {
				cases[i].Chan = reflect.ValueOf(handles[i].Ready())
				continue
			}
			panic(err)
		}
		drained += bufs[i].drain()
		bufs[i].mech.Exit()
		handles[i] = bufs[i].arm()
		cases[i].Chan = reflect.ValueOf(handles[i].Ready())
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Tear down: every still-armed handle is cancelled, and any waiter
	// left registered afterwards — a leaked handle or a stuck producer —
	// fails the conservation check.
	var check int64
	var agg core.Stats
	for i, b := range bufs {
		handles[i].Cancel()
		b.mech.Do(func() { check += bufs[i].drain() })
		check += int64(b.mech.Waiting())
		agg = agg.Add(b.mech.Stats())
	}
	return Result{Mechanism: mech, Elapsed: elapsed, Stats: agg, Ops: drained, Check: check}
}
