package problems

import (
	"sync"
	"time"

	"repro/internal/core"
)

// DispatcherBufCap is each buffer's capacity in the dispatcher workload:
// small, so producers genuinely block and both wait directions (blocking
// producer waits, the dispatcher's selected guards) are exercised.
const DispatcherBufCap = 4

func init() {
	Register(Spec{
		Name:           "dispatcher",
		Runner:         RunDispatcher,
		DefaultThreads: 16,
		CheckDesc:      "all items drained, no buffer occupancy or registered waiter left",
		Figure:         "",
	})
}

// RunDispatcher is the select-multiplexing workload behind the guarded
// regions: threads independent bounded buffers (each its own monitor, as
// a server would keep per-resource locks), one producer goroutine per
// buffer, and a SINGLE dispatcher goroutine that drains all of them with
// core.Select over one not-empty guard per buffer. Where every other
// scenario spends a parked goroutine per waiter, the dispatcher parks
// once across N predicates on N distinct monitors — first-true-wins,
// with the drain body running under the winning buffer's lock and every
// losing guard cancelled leak-free. (The pre-guard version of this
// scenario hand-assembled the same loop from armed handles and
// reflect.Select; BenchmarkSelect keeps that spelling as a comparator.)
// totalOps is the number of items pushed through, split across the
// buffers; Check is the final occupancy plus any waiter still registered
// after the run (a leaked guard or a stuck producer).
func RunDispatcher(mech Mechanism, threads, totalOps int) Result {
	if threads < 1 {
		threads = 1
	}
	perBuf := split(totalOps, threads)

	// buffer is one resource: the mechanism-specific monitor plus the
	// produce step, the not-empty guard the dispatcher selects on, and
	// the drain step its winning body runs (returning items taken).
	type buffer struct {
		mech    core.Mechanism
		produce func(ops int)
		guard   *core.Guard
		drain   func() int64
	}
	bufs := make([]*buffer, threads)
	for i := range bufs {
		switch mech {
		case Explicit:
			m := core.NewExplicit()
			notFull := m.NewCond()
			notEmpty := m.NewCond()
			count := 0
			bufs[i] = &buffer{
				mech: m,
				produce: func(ops int) {
					for op := 0; op < ops; op++ {
						m.Enter()
						notFull.Await(func() bool { return count < DispatcherBufCap })
						count++
						notEmpty.Signal()
						m.Exit()
					}
				},
				guard: notEmpty.When(func() bool { return count > 0 }),
				drain: func() int64 {
					n := int64(count)
					count = 0
					notFull.Signal()
					return n
				},
			}
		case Baseline:
			m := core.NewBaseline()
			count := 0
			bufs[i] = &buffer{
				mech: m,
				produce: func(ops int) {
					for op := 0; op < ops; op++ {
						m.Enter()
						m.Await(func() bool { return count < DispatcherBufCap })
						count++
						m.Exit()
					}
				},
				guard: m.WhenFunc(func() bool { return count > 0 }),
				drain: func() int64 {
					n := int64(count)
					count = 0
					return n
				},
			}
		default:
			m := newAuto(mech)
			count := m.NewInt("count", 0)
			m.NewInt("cap", DispatcherBufCap)
			notFull := m.MustCompile("count < cap")
			notEmpty := m.MustCompile("count > 0")
			bufs[i] = &buffer{
				mech: m,
				produce: func(ops int) {
					for op := 0; op < ops; op++ {
						m.Enter()
						await(notFull)
						count.Add(1)
						m.Exit()
					}
				},
				guard: notEmpty.When(),
				drain: func() int64 { n := count.Get(); count.Set(0); return n },
			}
		}
	}

	var wg sync.WaitGroup
	start := time.Now()
	for i, b := range bufs {
		wg.Add(1)
		go func(b *buffer, ops int) {
			defer wg.Done()
			b.produce(ops)
		}(b, perBuf[i])
	}

	// The dispatcher: one Select per delivery over the same N reusable
	// guards. Each call arms the guards, parks once on a shared channel,
	// claims the first buffer whose not-empty predicate holds (a futile
	// claim after a racing mutation just keeps waiting — the handle
	// re-armed itself), runs the drain under that buffer's lock, and
	// cancels the losers, so no handle outlives the call.
	var drained int64
	cases := make([]core.Case, threads)
	for i, b := range bufs {
		b := b
		cases[i] = b.guard.Then(func() { drained += b.drain() })
	}
	for drained < int64(totalOps) {
		if _, err := core.Select(cases...); err != nil {
			panic(err)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Tear down: any occupancy left in a buffer, and any waiter still
	// registered — a leaked guard handle or a stuck producer — fails the
	// conservation check.
	var check int64
	var agg core.Stats
	mechs := make([]core.Mechanism, 0, len(bufs))
	for _, b := range bufs {
		b.mech.Do(func() { check += b.drain() })
		check += int64(b.mech.Waiting())
		agg = agg.Add(b.mech.Stats())
		mechs = append(mechs, b.mech)
	}
	return Result{Mechanism: mech, Elapsed: elapsed, Stats: agg, Ops: drained, Check: check,
		Latency: stripeLatency(mechs...)}
}
