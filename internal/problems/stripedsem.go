package problems

import (
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/shard"
)

func init() {
	Register(Spec{
		Name:           "striped-semaphore",
		Runner:         RunStripedSemaphore,
		DefaultThreads: 64,
		CheckDesc:      "all permits returned to the stripes and the aggregate",
		Sharded:        true,
	})
}

// semMaxN is the largest batch one acquire requests.
const semMaxN = 4

// RunStripedSemaphore is a counting semaphore striped across
// ShardCount() partitions: the permit pool is split into per-stripe
// "free" cells, an acquire(n) takes all n permits from a single stripe —
// its home stripe when possible, any other by work-stealing sweep — and
// only when no single visit can satisfy it does it escalate to the
// cross-shard aggregate: a Counter tracks total free permits with batched
// publication, and the slow path waits on the aggregate predicate
// "total free ≥ n" before collecting permits stripe by stripe into its
// pocket. Collection is serialized by a ticket on the summary monitor so
// concurrent collectors cannot livelock, and a failed collection returns
// its pocket and re-waits with an epoch-fenced bound (AwaitAtLeastSince),
// so it wakes only when the aggregate both covers the request and has
// changed since the failed sweep.
//
// threads goroutines each run acquire(n)/release(n) cycles with random
// n ∈ [1,semMaxN], releasing to a rotating stripe so permits migrate and
// the aggregate stays busy. The pool holds max(8, 2·threads) permits.
// Ops counts completed cycles; Check is the final permit imbalance
// (stripe cells, then the flushed aggregate — both must match the pool).
func RunStripedSemaphore(mech Mechanism, threads, totalOps int) Result {
	return runStripedSemaphoreShards(mech, threads, totalOps, ShardCount())
}

func runStripedSemaphoreShards(mech Mechanism, threads, totalOps, shards int) Result {
	permits := 2 * threads
	if permits < 8 {
		permits = 8
	}
	perOps := split(totalOps, threads)
	switch mech {
	case Explicit:
		return runSemExplicit(threads, perOps, permits, shards)
	case Baseline:
		return runSemBaseline(threads, perOps, permits, shards)
	default:
		return runSemAuto(mech, threads, perOps, permits, shards)
	}
}

// semShares spreads the permit pool round-robin across stripes.
func semShares(permits, shards int) []int64 {
	shares := make([]int64, shards)
	for p := 0; p < permits; p++ {
		shares[p%shards]++
	}
	return shares
}

func runSemAuto(mech Mechanism, threads int, perOps []int, permits, shards int) Result {
	shares := semShares(permits, shards)
	free := make([]*core.IntCell, shards)
	sm := shard.New(shards,
		shard.WithMonitorOptions(autoOpts(mech)...),
		shard.WithSetup(func(s int, m *core.Monitor) {
			free[s] = m.NewInt("free", shares[s])
		}))
	cnt := sm.NewCounter("free-permits", semMaxN)
	for s := 0; s < shards; s++ {
		s := s
		sm.DoShard(s, func(*core.Monitor) { cnt.Add(s, shares[s]) })
	}
	// The collector ticket lives on the counter's summary monitor, beside
	// the aggregate cells it guards.
	sum := cnt.Summary()
	tk := sum.NewInt("tk", 0)
	tkFree := sum.MustCompile("tk == 0")

	// collect sweeps the stripes from home, pocketing up to n permits; on
	// a short sweep the pocket is returned to the home stripe. Runs only
	// under the ticket.
	collect := func(home int, n int64) bool {
		var pocket int64
		for off := 0; off < shards; off++ {
			s := (home + off) % shards
			sm.DoShard(s, func(*core.Monitor) {
				take := free[s].Get()
				if take > n-pocket {
					take = n - pocket
				}
				if take > 0 {
					free[s].Add(-take)
					cnt.Add(s, -take)
					pocket += take
				}
			})
			if pocket == n {
				return true
			}
		}
		if pocket > 0 {
			sm.DoShard(home, func(*core.Monitor) {
				free[home].Add(pocket)
				cnt.Add(home, pocket)
			})
		}
		return false
	}

	acquire := func(home int, n int64) {
		if _, ok := sm.TrySteal(home, func(_ *core.Monitor, s int) bool {
			if free[s].Get() >= n {
				free[s].Add(-n)
				cnt.Add(s, -n)
				return true
			}
			return false
		}); ok {
			return
		}
		// Slow path: take the collector ticket, then alternate
		// epoch-fenced aggregate waits with pocket collection.
		sum.Enter()
		await(tkFree)
		tk.Set(1)
		sum.Exit()
		for {
			e := cnt.Epoch()
			if collect(home, n) {
				break
			}
			if err := cnt.AwaitAtLeastSince(nil, n, e); err != nil {
				panic(err)
			}
		}
		sum.Do(func() { tk.Set(0) })
	}

	release := func(s int, n int64) {
		sm.DoShard(s, func(*core.Monitor) {
			free[s].Add(n)
			cnt.Add(s, n)
		})
	}

	var wg sync.WaitGroup
	start := time.Now()
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t, ops int) {
			defer wg.Done()
			home := t % shards
			rng := newRand(uint64(t)*971 + 13)
			for j := 0; j < ops; j++ {
				n := rng.intn(semMaxN)
				acquire(home, n)
				release((home+j)%shards, n)
			}
		}(t, perOps[t])
	}
	wg.Wait()
	elapsed := time.Since(start)

	var sumFree int64
	for s := 0; s < shards; s++ {
		s := s
		sm.DoShard(s, func(*core.Monitor) { sumFree += free[s].Get() })
	}
	check := sumFree - int64(permits)
	if check == 0 {
		check = cnt.Total() - int64(permits)
	}
	return Result{Mechanism: mech, Elapsed: elapsed,
		Stats: sm.Stats().Add(sum.Stats()), Ops: opsSum(perOps), Check: check,
		Latency: mergeLatency(sm.WaitLatency(), sum.WaitLatency())}
}

// runSemExplicit is the hand-striped explicit-signal variant: the
// programmer maintains the aggregate by publishing every stripe mutation
// into a summary monitor (no batching — precise publication is the
// explicit discipline) and broadcasts its change condition, since waiters
// hold different bounds. The same ticket/collect/epoch protocol, signaled
// by hand.
func runSemExplicit(threads int, perOps []int, permits, shards int) Result {
	shares := semShares(permits, shards)
	stripes := make([]*core.Explicit, shards)
	free := make([]int64, shards)
	for s := range stripes {
		stripes[s] = core.NewExplicit()
		free[s] = shares[s]
	}
	summary := core.NewExplicit()
	tkCond := summary.NewCond()
	chCond := summary.NewCond()
	var total, ep, tk int64
	total = int64(permits)

	// publish folds a stripe's delta into the summary; called while
	// holding the stripe, nesting the summary inside (stripe → summary
	// lock order, as the automatic variant's Counter.Add).
	publish := func(d int64) {
		summary.Enter()
		total += d
		ep++
		chCond.Broadcast()
		summary.Exit()
	}

	collect := func(home int, n int64) bool {
		var pocket int64
		for off := 0; off < shards; off++ {
			s := (home + off) % shards
			stripes[s].Enter()
			take := free[s]
			if take > n-pocket {
				take = n - pocket
			}
			if take > 0 {
				free[s] -= take
				publish(-take)
				pocket += take
			}
			stripes[s].Exit()
			if pocket == n {
				return true
			}
		}
		if pocket > 0 {
			stripes[home].Enter()
			free[home] += pocket
			publish(pocket)
			stripes[home].Exit()
		}
		return false
	}

	acquire := func(home int, n int64) {
		for off := 0; off < shards; off++ {
			s := (home + off) % shards
			stripes[s].Enter()
			if free[s] >= n {
				free[s] -= n
				publish(-n)
				stripes[s].Exit()
				return
			}
			stripes[s].Exit()
		}
		summary.Enter()
		tkCond.Await(func() bool { return tk == 0 })
		tk = 1
		summary.Exit()
		for {
			var e int64
			summary.Enter()
			e = ep
			summary.Exit()
			if collect(home, n) {
				break
			}
			summary.Enter()
			chCond.Await(func() bool { return total >= n && ep > e })
			summary.Exit()
		}
		summary.Enter()
		tk = 0
		tkCond.Signal()
		summary.Exit()
	}

	release := func(s int, n int64) {
		stripes[s].Enter()
		free[s] += n
		publish(n)
		stripes[s].Exit()
	}

	var wg sync.WaitGroup
	start := time.Now()
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t, ops int) {
			defer wg.Done()
			home := t % shards
			rng := newRand(uint64(t)*971 + 13)
			for j := 0; j < ops; j++ {
				n := rng.intn(semMaxN)
				acquire(home, n)
				release((home+j)%shards, n)
			}
		}(t, perOps[t])
	}
	wg.Wait()
	elapsed := time.Since(start)

	var sumFree int64
	ms := make([]core.Mechanism, 0, shards+1)
	for s := range stripes {
		stripes[s].Enter()
		sumFree += free[s]
		stripes[s].Exit()
		ms = append(ms, stripes[s])
	}
	ms = append(ms, summary)
	check := sumFree - int64(permits)
	if check == 0 {
		summary.Enter()
		check = total - int64(permits)
		summary.Exit()
	}
	return Result{Mechanism: Explicit, Elapsed: elapsed, Stats: stripeStats(ms...),
		Ops: opsSum(perOps), Check: check, Latency: stripeLatency(ms...)}
}

// runSemBaseline stripes the pool across baseline monitors: the same
// protocol with closure waits, every exit a broadcast.
func runSemBaseline(threads int, perOps []int, permits, shards int) Result {
	shares := semShares(permits, shards)
	stripes := make([]*core.Baseline, shards)
	free := make([]int64, shards)
	for s := range stripes {
		stripes[s] = core.NewBaseline()
		free[s] = shares[s]
	}
	summary := core.NewBaseline()
	var total, ep, tk int64
	total = int64(permits)

	publish := func(d int64) {
		summary.Enter()
		total += d
		ep++
		summary.Exit()
	}

	collect := func(home int, n int64) bool {
		var pocket int64
		for off := 0; off < shards; off++ {
			s := (home + off) % shards
			stripes[s].Enter()
			take := free[s]
			if take > n-pocket {
				take = n - pocket
			}
			if take > 0 {
				free[s] -= take
				publish(-take)
				pocket += take
			}
			stripes[s].Exit()
			if pocket == n {
				return true
			}
		}
		if pocket > 0 {
			stripes[home].Enter()
			free[home] += pocket
			publish(pocket)
			stripes[home].Exit()
		}
		return false
	}

	acquire := func(home int, n int64) {
		for off := 0; off < shards; off++ {
			s := (home + off) % shards
			stripes[s].Enter()
			if free[s] >= n {
				free[s] -= n
				publish(-n)
				stripes[s].Exit()
				return
			}
			stripes[s].Exit()
		}
		summary.Enter()
		summary.Await(func() bool { return tk == 0 })
		tk = 1
		summary.Exit()
		for {
			var e int64
			summary.Enter()
			e = ep
			summary.Exit()
			if collect(home, n) {
				break
			}
			summary.Enter()
			summary.Await(func() bool { return total >= n && ep > e })
			summary.Exit()
		}
		summary.Enter()
		tk = 0
		summary.Exit()
	}

	release := func(s int, n int64) {
		stripes[s].Enter()
		free[s] += n
		publish(n)
		stripes[s].Exit()
	}

	var wg sync.WaitGroup
	start := time.Now()
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t, ops int) {
			defer wg.Done()
			home := t % shards
			rng := newRand(uint64(t)*971 + 13)
			for j := 0; j < ops; j++ {
				n := rng.intn(semMaxN)
				acquire(home, n)
				release((home+j)%shards, n)
			}
		}(t, perOps[t])
	}
	wg.Wait()
	elapsed := time.Since(start)

	var sumFree int64
	ms := make([]core.Mechanism, 0, shards+1)
	for s := range stripes {
		stripes[s].Enter()
		sumFree += free[s]
		stripes[s].Exit()
		ms = append(ms, stripes[s])
	}
	ms = append(ms, summary)
	check := sumFree - int64(permits)
	if check == 0 {
		summary.Enter()
		check = total - int64(permits)
		summary.Exit()
	}
	return Result{Mechanism: Baseline, Elapsed: elapsed, Stats: stripeStats(ms...),
		Ops: opsSum(perOps), Check: check, Latency: stripeLatency(ms...)}
}
