package problems

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/shard"
)

func init() {
	// The baseline is dropped from the lineup as off-scale, like the
	// other broadcast-storm scenarios: its re-broadcast before every
	// re-wait turns the standing watch sessions into minutes of futile
	// wake-ups at representative scale. The differential test still runs
	// it at small scale.
	Register(Spec{
		Name:           "sharded-kv",
		Runner:         RunShardedKV,
		DefaultThreads: 64,
		Mechs:          NoBaseline,
		CheckDesc:      "every published version observed; aggregate lag drained to zero",
		Sharded:        true,
	})
}

// kvWindow is the pairwise flow-control window: a publisher runs at most
// this many puts ahead of its paired subscriber, so both sides generate
// real waiter traffic (subscribers wait on versions, publishers on the
// subscriber's progress).
const kvWindow = 8

// RunShardedKV is a sharded key-value/watch store: publishers bump
// per-key version cells, subscribers block until "key k has reached
// version r" — the per-key waiter pattern of a watch API. State is
// hash-striped across ShardCount() partitions; every key's version cell,
// its waiters, and its predicate entries live on the owner shard only, so
// operations on independent keys never share a lock and the relay search
// on each exit walks one shard's predicate groups instead of all of them.
//
// threads goroutines run in publisher/subscriber pairs (threads/2 pairs).
// Pair i's two sides draw the same seeded key sequence, so the subscriber
// waits for exactly the versions its publisher creates; the publisher is
// throttled to kvWindow puts ahead of its subscriber through a per-pair
// progress cell — version waits are therefore satisfied within a bounded
// horizon and the run is deadlock-free by construction (the publisher
// only waits on its own subscriber, which never waits for a version its
// publisher has not already produced while the window is open).
//
// Each pair also holds a standing watch session: a goroutine parked on
// the pair's shutdown flag for the entire measured phase and released
// only after the traffic completes — the long-lived watches a watch-API
// server carries while write traffic flows. The sessions are the scaling
// crux: every one is a waiter on its own shared expression (its session
// cell), so a single monitor carries one predicate group per pair and the
// relay search on EVERY monitor exit walks all of them — a cross-group
// scan that predicate tagging cannot prune (tags prune within a group,
// not across). Sharding divides that standing population by the shard
// count, which is where the scale-shards sweep gets its slope.
//
// The automatic variants additionally track total outstanding versions
// (puts minus observations) in a cross-shard aggregate Counter with
// batched publication. Ops counts puts plus observations; Check is the
// sum of final version cells minus total puts, plus the drained aggregate
// (all must be zero).
func RunShardedKV(mech Mechanism, threads, totalOps int) Result {
	return RunShardedKVShards(mech, threads, totalOps, ShardCount())
}

// RunShardedKVShards is RunShardedKV with an explicit partition count
// (the scale-shards sweep; 1 degenerates to a single monitor).
func RunShardedKVShards(mech Mechanism, threads, totalOps, shards int) Result {
	pairs := threads / 2
	if pairs == 0 {
		pairs = 1
	}
	keys := threads
	if keys < 32 {
		keys = 32
	}
	pairOps := split(totalOps, pairs)
	switch mech {
	case Explicit:
		return runKVExplicit(pairs, pairOps, keys, shards)
	case Baseline:
		return runKVBaseline(pairs, pairOps, keys, shards)
	default:
		return runKVAuto(mech, pairs, pairOps, keys, shards)
	}
}

// kvPairKey places pair i's flow-control cell in a key range disjoint
// from the version keys.
func kvPairKey(i int) uint64 { return uint64(i) | 1<<32 }

func kvSeed(i int) uint64 { return uint64(i)*2654435761 + 1 }

func runKVAuto(mech Mechanism, pairs int, pairOps []int, keys, shards int) Result {
	// Setup declares each key's version cell and each pair's progress and
	// session cells on its owner shard, capturing the handles.
	vcell := make([]*core.IntCell, keys)
	dcell := make([]*core.IntCell, pairs)
	wcell := make([]*core.IntCell, pairs)
	sm := shard.New(shards,
		shard.WithMonitorOptions(autoOpts(mech)...),
		shard.WithSetup(func(s int, m *core.Monitor) {
			for k := 0; k < keys; k++ {
				if shard.IndexFor(uint64(k), shards) == s {
					vcell[k] = m.NewInt(fmt.Sprintf("v%d", k), 0)
				}
			}
			for i := 0; i < pairs; i++ {
				if shard.IndexFor(kvPairKey(i), shards) == s {
					dcell[i] = m.NewInt(fmt.Sprintf("d%d", i), 0)
					wcell[i] = m.NewInt(fmt.Sprintf("w%d", i), 0)
				}
			}
		}))
	// Per-key "version reached" predicates compile on the owner shard;
	// per-pair "subscriber caught up" and session-shutdown predicates on
	// the pair's home shard.
	reached := make([]*core.Predicate, keys)
	for k := 0; k < keys; k++ {
		reached[k] = sm.MustCompileAt(uint64(k), fmt.Sprintf("v%d >= r", k))
	}
	caught := make([]*core.Predicate, pairs)
	closed := make([]*core.Predicate, pairs)
	for i := 0; i < pairs; i++ {
		caught[i] = sm.MustCompileAt(kvPairKey(i), fmt.Sprintf("d%d >= need", i))
		closed[i] = sm.MustCompileAt(kvPairKey(i), fmt.Sprintf("w%d >= 1", i))
	}
	lag := sm.NewCounter("lag", 64)

	// Park every watch session before the clock starts, so the standing
	// waiter population — the thing the partitioning is measured against —
	// is in place for the whole measured phase.
	var wg, swg sync.WaitGroup
	for i := 0; i < pairs; i++ {
		swg.Add(1)
		go func(i int) { // watch session: parked until released at the end
			defer swg.Done()
			sm.Enter(kvPairKey(i))
			await(closed[i])
			sm.Exit(kvPairKey(i))
		}(i)
	}
	for sm.Waiting() < pairs {
		time.Sleep(50 * time.Microsecond)
	}
	start := time.Now()
	for i := 0; i < pairs; i++ {
		wg.Add(1)
		go func(i, n int) { // publisher
			defer wg.Done()
			rng := newRand(kvSeed(i))
			for j := 0; j < n; j++ {
				k := int(rng.intn(int64(keys))) - 1
				if j+1 > kvWindow {
					sm.Enter(kvPairKey(i))
					await(caught[i], core.BindInt("need", int64(j+1-kvWindow)))
					sm.Exit(kvPairKey(i))
				}
				sm.Do(uint64(k), func(*core.Monitor) {
					vcell[k].Add(1)
					lag.Add(sm.Index(uint64(k)), 1)
				})
			}
		}(i, pairOps[i])
		wg.Add(1)
		go func(i, n int) { // subscriber
			defer wg.Done()
			rng := newRand(kvSeed(i))
			seen := make(map[int]int64, keys)
			for j := 0; j < n; j++ {
				k := int(rng.intn(int64(keys))) - 1
				seen[k]++
				sm.Enter(uint64(k))
				await(reached[k], core.BindInt("r", seen[k]))
				lag.Add(sm.Index(uint64(k)), -1)
				sm.Exit(uint64(k))
				sm.Do(kvPairKey(i), func(*core.Monitor) { dcell[i].Add(1) })
			}
		}(i, pairOps[i])
	}
	wg.Wait()
	elapsed := time.Since(start)
	for i := 0; i < pairs; i++ {
		i := i
		sm.Do(kvPairKey(i), func(*core.Monitor) { wcell[i].Set(1) })
	}
	swg.Wait()

	var totalPuts, sumV int64
	for _, n := range pairOps {
		totalPuts += int64(n)
	}
	for k := 0; k < keys; k++ {
		k := k
		sm.Do(uint64(k), func(*core.Monitor) { sumV += vcell[k].Get() })
	}
	check := sumV - totalPuts
	if check == 0 {
		check = lag.Total()
	}
	return Result{Mechanism: mech, Elapsed: elapsed,
		Stats: sm.Stats().Add(lag.Summary().Stats()),
		Ops:   2 * totalPuts, Check: check,
		Latency: mergeLatency(sm.WaitLatency(), lag.Summary().WaitLatency())}
}

// runKVExplicit is the hand-sharded explicit-signal variant: the
// programmer stripes the store across explicit monitors, keeps one
// condition per key (version watchers) and one per pair (flow control),
// and signals each at exactly the right point — the manual counterpart of
// what shard.Monitor automates. Version bumps broadcast their key's
// condition because watchers wait for different version bounds.
func runKVExplicit(pairs int, pairOps []int, keys, shards int) Result {
	stripes := make([]*core.Explicit, shards)
	for s := range stripes {
		stripes[s] = core.NewExplicit()
	}
	vers := make([]int64, keys)
	vcond := make([]*core.Cond, keys)
	for k := range vcond {
		vcond[k] = stripes[shard.IndexFor(uint64(k), shards)].NewCond()
	}
	prog := make([]int64, pairs)
	sessDone := make([]bool, pairs)
	pcond := make([]*core.Cond, pairs)
	wcond := make([]*core.Cond, pairs)
	for i := range pcond {
		owner := stripes[shard.IndexFor(kvPairKey(i), shards)]
		pcond[i] = owner.NewCond()
		wcond[i] = owner.NewCond()
	}
	stripe := func(key uint64) *core.Explicit { return stripes[shard.IndexFor(key, shards)] }
	waitingSum := func() int {
		n := 0
		for _, st := range stripes {
			n += st.Waiting()
		}
		return n
	}

	var wg, swg sync.WaitGroup
	for i := 0; i < pairs; i++ {
		swg.Add(1)
		go func(i int) { // watch session: parked until released at the end
			defer swg.Done()
			ps := stripe(kvPairKey(i))
			ps.Enter()
			wcond[i].Await(func() bool { return sessDone[i] })
			ps.Exit()
		}(i)
	}
	for waitingSum() < pairs {
		time.Sleep(50 * time.Microsecond)
	}
	start := time.Now()
	for i := 0; i < pairs; i++ {
		wg.Add(1)
		go func(i, n int) { // publisher
			defer wg.Done()
			rng := newRand(kvSeed(i))
			for j := 0; j < n; j++ {
				k := int(rng.intn(int64(keys))) - 1
				if j+1 > kvWindow {
					need := int64(j + 1 - kvWindow)
					ps := stripe(kvPairKey(i))
					ps.Enter()
					pcond[i].Await(func() bool { return prog[i] >= need })
					ps.Exit()
				}
				ks := stripe(uint64(k))
				ks.Enter()
				vers[k]++
				vcond[k].Broadcast()
				ks.Exit()
			}
		}(i, pairOps[i])
		wg.Add(1)
		go func(i, n int) { // subscriber
			defer wg.Done()
			rng := newRand(kvSeed(i))
			seen := make(map[int]int64, keys)
			for j := 0; j < n; j++ {
				k := int(rng.intn(int64(keys))) - 1
				seen[k]++
				r := seen[k]
				ks := stripe(uint64(k))
				ks.Enter()
				vcond[k].Await(func() bool { return vers[k] >= r })
				ks.Exit()
				ps := stripe(kvPairKey(i))
				ps.Enter()
				prog[i]++
				pcond[i].Signal()
				ps.Exit()
			}
		}(i, pairOps[i])
	}
	wg.Wait()
	elapsed := time.Since(start)
	for i := 0; i < pairs; i++ {
		ps := stripe(kvPairKey(i))
		ps.Enter()
		sessDone[i] = true
		wcond[i].Signal()
		ps.Exit()
	}
	swg.Wait()

	var totalPuts, sumV int64
	for _, n := range pairOps {
		totalPuts += int64(n)
	}
	ms := make([]core.Mechanism, len(stripes))
	for s, st := range stripes {
		ms[s] = st
	}
	for k := 0; k < keys; k++ {
		st := stripe(uint64(k))
		st.Enter()
		sumV += vers[k]
		st.Exit()
	}
	return Result{Mechanism: Explicit, Elapsed: elapsed, Stats: stripeStats(ms...),
		Ops: 2 * totalPuts, Check: sumV - totalPuts, Latency: stripeLatency(ms...)}
}

// runKVBaseline stripes the store across baseline monitors: every exit
// broadcasts, every woken waiter re-checks its closure — the strawman,
// striped for a like-for-like comparison.
func runKVBaseline(pairs int, pairOps []int, keys, shards int) Result {
	stripes := make([]*core.Baseline, shards)
	for s := range stripes {
		stripes[s] = core.NewBaseline()
	}
	vers := make([]int64, keys)
	prog := make([]int64, pairs)
	sessDone := make([]bool, pairs)
	stripe := func(key uint64) *core.Baseline { return stripes[shard.IndexFor(key, shards)] }
	waitingSum := func() int {
		n := 0
		for _, st := range stripes {
			n += st.Waiting()
		}
		return n
	}

	var wg, swg sync.WaitGroup
	for i := 0; i < pairs; i++ {
		swg.Add(1)
		go func(i int) { // watch session: parked until released at the end
			defer swg.Done()
			ps := stripe(kvPairKey(i))
			ps.Enter()
			ps.Await(func() bool { return sessDone[i] })
			ps.Exit()
		}(i)
	}
	for waitingSum() < pairs {
		time.Sleep(50 * time.Microsecond)
	}
	start := time.Now()
	for i := 0; i < pairs; i++ {
		wg.Add(1)
		go func(i, n int) { // publisher
			defer wg.Done()
			rng := newRand(kvSeed(i))
			for j := 0; j < n; j++ {
				k := int(rng.intn(int64(keys))) - 1
				if j+1 > kvWindow {
					need := int64(j + 1 - kvWindow)
					ps := stripe(kvPairKey(i))
					ps.Enter()
					ps.Await(func() bool { return prog[i] >= need })
					ps.Exit()
				}
				ks := stripe(uint64(k))
				ks.Enter()
				vers[k]++
				ks.Exit()
			}
		}(i, pairOps[i])
		wg.Add(1)
		go func(i, n int) { // subscriber
			defer wg.Done()
			rng := newRand(kvSeed(i))
			seen := make(map[int]int64, keys)
			for j := 0; j < n; j++ {
				k := int(rng.intn(int64(keys))) - 1
				seen[k]++
				r := seen[k]
				ks := stripe(uint64(k))
				ks.Enter()
				ks.Await(func() bool { return vers[k] >= r })
				ks.Exit()
				ps := stripe(kvPairKey(i))
				ps.Enter()
				prog[i]++
				ps.Exit()
			}
		}(i, pairOps[i])
	}
	wg.Wait()
	elapsed := time.Since(start)
	for i := 0; i < pairs; i++ {
		ps := stripe(kvPairKey(i))
		ps.Enter()
		sessDone[i] = true
		ps.Exit()
	}
	swg.Wait()

	var totalPuts, sumV int64
	for _, n := range pairOps {
		totalPuts += int64(n)
	}
	ms := make([]core.Mechanism, len(stripes))
	for s, st := range stripes {
		ms[s] = st
	}
	for k := 0; k < keys; k++ {
		st := stripe(uint64(k))
		st.Enter()
		sumV += vers[k]
		st.Exit()
	}
	return Result{Mechanism: Baseline, Elapsed: elapsed, Stats: stripeStats(ms...),
		Ops: 2 * totalPuts, Check: sumV - totalPuts, Latency: stripeLatency(ms...)}
}
