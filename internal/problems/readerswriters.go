package problems

import (
	"sync"
	"time"

	"repro/internal/core"
)

// DefaultReaderRatio is the readers-per-writer ratio of the Fig. 12
// workload (2/10, 4/20, …, 64/320).
const DefaultReaderRatio = 5

func init() {
	Register(Spec{
		Name:           "readers-writers",
		Runner:         RunReadersWriters,
		DefaultThreads: 8,
		Mechs:          NoBaseline,
		CheckDesc:      "no reader or writer left inside the resource",
		Figure:         "fig12",
	})
}

// RunReadersWriters is the ticket-ordered readers/writers problem
// (§6.3.2, Fig. 12), following Buhr & Harji: every arriving reader or
// writer takes a ticket; admission is strictly in ticket order, readers
// may overlap, writers are exclusive. Each waiter's condition mentions its
// own ticket, making this a complex-predicate workload with an unbounded
// key space — the stress case for predicate reuse and the inactive list.
//
// threads is the number of writers; readers are DefaultReaderRatio times
// as many. totalOps is the total number of accesses (split between the
// two classes in ratio). Ops counts accesses; Check must be 0 (no reader
// or writer left inside).
func RunReadersWriters(mech Mechanism, threads, totalOps int) Result {
	writers := threads
	readers := threads * DefaultReaderRatio
	writerShare := totalOps / (DefaultReaderRatio + 1)
	return RunReadersWritersN(mech, writers, readers, writerShare, totalOps-writerShare)
}

// RunReadersWritersN runs with explicit populations and operation totals.
func RunReadersWritersN(mech Mechanism, writers, readers, writerOps, readerOps int) Result {
	wOps := split(writerOps, writers)
	rOps := split(readerOps, readers)
	switch mech {
	case Explicit:
		return runRWExplicit(writers, readers, wOps, rOps)
	case Baseline:
		return runRWBaseline(writers, readers, wOps, rOps)
	default:
		return runRWAuto(mech, writers, readers, wOps, rOps)
	}
}

// Shared state: tickets (next to hand out), serving (next to admit),
// active readers count, writing flag. Admission advances serving, so the
// successor can be admitted as soon as its class constraints allow.

func runRWExplicit(writers, readers int, wOps, rOps []int) Result {
	m := core.NewExplicit()
	var tickets, serving int64
	activeReaders := 0
	writing := false
	// The explicit-signal version of ticket ordering needs a condition
	// per outstanding ticket — the "complicated code" §3 alludes to. A
	// map from ticket to condition variable plays the array role.
	conds := map[int64]*core.Cond{}
	admitNext := func() {
		if c, ok := conds[serving]; ok {
			c.Signal()
		}
	}

	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(ops int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				m.Enter()
				t := tickets
				tickets++
				if !(serving == t && !writing && activeReaders == 0) {
					c, ok := conds[t]
					if !ok {
						c = m.NewCond()
						conds[t] = c
					}
					c.Await(func() bool { return serving == t && !writing && activeReaders == 0 })
					delete(conds, t)
				}
				writing = true
				serving++
				m.Exit()
				// write section (empty: saturation test)
				m.Enter()
				writing = false
				admitNext()
				m.Exit()
			}
		}(wOps[w])
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(ops int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				m.Enter()
				t := tickets
				tickets++
				if !(serving == t && !writing) {
					c, ok := conds[t]
					if !ok {
						c = m.NewCond()
						conds[t] = c
					}
					c.Await(func() bool { return serving == t && !writing })
					delete(conds, t)
				}
				activeReaders++
				serving++
				admitNext()
				m.Exit()
				// read section (empty)
				m.Enter()
				activeReaders--
				if activeReaders == 0 {
					admitNext()
				}
				m.Exit()
			}
		}(rOps[r])
	}
	wg.Wait()
	elapsed := time.Since(start)
	check := int64(activeReaders)
	if writing {
		check++
	}
	return finish(Explicit, m, elapsed, opsSum(wOps)+opsSum(rOps), check)
}

func runRWBaseline(writers, readers int, wOps, rOps []int) Result {
	m := core.NewBaseline()
	var tickets, serving int64
	activeReaders := 0
	writing := false

	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(ops int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				m.Enter()
				t := tickets
				tickets++
				m.Await(func() bool { return serving == t && !writing && activeReaders == 0 })
				writing = true
				serving++
				m.Exit()
				m.Enter()
				writing = false
				m.Exit()
			}
		}(wOps[w])
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(ops int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				m.Enter()
				t := tickets
				tickets++
				m.Await(func() bool { return serving == t && !writing })
				activeReaders++
				serving++
				m.Exit()
				m.Enter()
				activeReaders--
				m.Exit()
			}
		}(rOps[r])
	}
	wg.Wait()
	elapsed := time.Since(start)
	check := int64(activeReaders)
	if writing {
		check++
	}
	return finish(Baseline, m, elapsed, opsSum(wOps)+opsSum(rOps), check)
}

func runRWAuto(mech Mechanism, writers, readers int, wOps, rOps []int) Result {
	m := newAuto(mech)
	tickets := m.NewInt("tickets", 0)
	serving := m.NewInt("serving", 0)
	activeReaders := m.NewInt("activeReaders", 0)
	writing := m.NewBool("writing", false)
	writerTurn := m.MustCompile("serving == t && !writing && activeReaders == 0")
	readerTurn := m.MustCompile("serving == t && !writing")

	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(ops int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				m.Enter()
				t := tickets.Get()
				tickets.Add(1)
				await(writerTurn, core.BindInt("t", t))
				writing.Set(true)
				serving.Add(1)
				m.Exit()
				m.Enter()
				writing.Set(false)
				m.Exit()
			}
		}(wOps[w])
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(ops int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				m.Enter()
				t := tickets.Get()
				tickets.Add(1)
				await(readerTurn, core.BindInt("t", t))
				activeReaders.Add(1)
				serving.Add(1)
				m.Exit()
				m.Enter()
				activeReaders.Add(-1)
				m.Exit()
			}
		}(rOps[r])
	}
	wg.Wait()
	elapsed := time.Since(start)
	var check int64
	m.Do(func() {
		check = activeReaders.Get()
		if writing.Get() {
			check++
		}
	})
	return finish(mech, m, elapsed, opsSum(wOps)+opsSum(rOps), check)
}
