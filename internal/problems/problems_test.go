package problems

import (
	"testing"
	"time"
)

// runChecked runs a problem via the registry with a watchdog, then
// verifies conservation and operation counts.
func runChecked(t *testing.T, name string, mech Mechanism, threads, ops int) Result {
	t.Helper()
	spec, ok := Lookup(name)
	if !ok {
		t.Fatalf("problem %q not in registry", name)
	}
	runner := spec.Runner
	type outcome struct{ r Result }
	ch := make(chan outcome, 1)
	go func() { ch <- outcome{runner(mech, threads, ops)} }()
	select {
	case o := <-ch:
		if o.r.Check != 0 {
			t.Errorf("%s/%s: check = %d, want 0", name, mech, o.r.Check)
		}
		if o.r.Ops <= 0 {
			t.Errorf("%s/%s: ops = %d, want > 0", name, mech, o.r.Ops)
		}
		if o.r.Elapsed <= 0 {
			t.Errorf("%s/%s: elapsed = %v", name, mech, o.r.Elapsed)
		}
		if o.r.Mechanism != mech {
			t.Errorf("%s/%s: result mechanism = %s", name, mech, o.r.Mechanism)
		}
		return o.r
	case <-time.After(60 * time.Second):
		t.Fatalf("%s/%s deadlocked", name, mech)
		return Result{}
	}
}

func TestAllProblemsAllMechanisms(t *testing.T) {
	// Every problem must terminate with conservation intact on every
	// mechanism, at a scale with real contention.
	for name := range Registry {
		for _, mech := range All {
			name, mech := name, mech
			t.Run(name+"/"+mech.String(), func(t *testing.T) {
				t.Parallel()
				runChecked(t, name, mech, 8, 400)
			})
		}
	}
}

func TestProblemsSingleThreadUnit(t *testing.T) {
	// Degenerate scales must still work.
	for name := range Registry {
		for _, mech := range All {
			runChecked(t, name, mech, 2, 16)
		}
	}
}

func TestAutoSynchNeverBroadcasts(t *testing.T) {
	for name := range Registry {
		r := runChecked(t, name, AutoSynch, 6, 300)
		if r.Stats.Broadcasts != 0 {
			t.Errorf("%s: AutoSynch issued %d broadcasts", name, r.Stats.Broadcasts)
		}
		r = runChecked(t, name, AutoSynchT, 6, 300)
		if r.Stats.Broadcasts != 0 {
			t.Errorf("%s: AutoSynch-T issued %d broadcasts", name, r.Stats.Broadcasts)
		}
	}
}

func TestExplicitParamBufferBroadcasts(t *testing.T) {
	// The defining feature of the Fig. 14 workload: explicit signaling
	// has to use signalAll.
	r := runChecked(t, "parameterized-buffer", Explicit, 4, 200)
	if r.Stats.Broadcasts == 0 {
		t.Error("explicit parameterized buffer used no broadcasts; workload miswired")
	}
}

func TestParamBufferSignalDiscipline(t *testing.T) {
	// Fig. 15's underlying mechanism at miniature scale. The absolute
	// wake-up gap only opens at large consumer counts (see
	// EXPERIMENTS.md), but the discipline is deterministic: AutoSynch
	// never broadcasts and, thanks to globalization, almost never wakes
	// a thread whose predicate is false, while the explicit version
	// must blanket-wake with signalAll.
	explicit := runChecked(t, "parameterized-buffer", Explicit, 16, 2000)
	auto := runChecked(t, "parameterized-buffer", AutoSynch, 16, 2000)
	if auto.Stats.Broadcasts != 0 {
		t.Errorf("autosynch broadcasts = %d", auto.Stats.Broadcasts)
	}
	if explicit.Stats.Broadcasts == 0 {
		t.Error("explicit version did not broadcast; workload miswired")
	}
	// Some futile wake-ups are inherent: a consumer whose predicate is
	// true on arrival can barge in and drain the buffer between the
	// relay decision and the signaled waiter's re-entry. They must stay
	// a minority, though — with signalAll they would be the vast
	// majority.
	if auto.Stats.FutileWakeups*2 > auto.Stats.Wakeups {
		t.Errorf("autosynch futile wakeups are the majority: %d of %d",
			auto.Stats.FutileWakeups, auto.Stats.Wakeups)
	}
}

func TestRoundRobinFairness(t *testing.T) {
	// Every mechanism must give each thread exactly ops/threads turns —
	// guaranteed by the turn variable, but a liveness bug would deadlock
	// and a signaling bug would panic the Await error path.
	for _, mech := range All {
		r := runChecked(t, "round-robin", mech, 5, 500)
		if r.Ops != 500 {
			t.Errorf("%s: ops = %d, want 500", mech, r.Ops)
		}
	}
}

func TestMechanismString(t *testing.T) {
	for _, m := range All {
		if m.String() == "" {
			t.Error("empty mechanism name")
		}
		got, err := ParseMechanism(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMechanism(%q) = %v, %v", m.String(), got, err)
		}
	}
	if Mechanism(99).String() == "" {
		t.Error("unknown mechanism should still render")
	}
	if _, err := ParseMechanism("bogus"); err == nil {
		t.Error("ParseMechanism(bogus) should fail")
	}
}

func TestSplit(t *testing.T) {
	cases := []struct {
		total, n int
		want     []int
	}{
		{10, 3, []int{4, 3, 3}},
		{9, 3, []int{3, 3, 3}},
		{2, 4, []int{1, 1, 0, 0}},
		{0, 2, []int{0, 0}},
	}
	for _, c := range cases {
		got := split(c.total, c.n)
		if len(got) != len(c.want) {
			t.Fatalf("split(%d,%d) = %v", c.total, c.n, got)
		}
		sum := 0
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("split(%d,%d) = %v, want %v", c.total, c.n, got, c.want)
				break
			}
			sum += got[i]
		}
		if sum != c.total {
			t.Errorf("split(%d,%d) sums to %d", c.total, c.n, sum)
		}
	}
}

func TestXorshiftRange(t *testing.T) {
	r := newRand(42)
	seen := map[int64]bool{}
	for i := 0; i < 10000; i++ {
		v := r.intn(MaxBatch)
		if v < 1 || v > MaxBatch {
			t.Fatalf("intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) < MaxBatch/2 {
		t.Errorf("poor coverage: only %d distinct values", len(seen))
	}
	z := newRand(0)
	if v := z.intn(10); v < 1 || v > 10 {
		t.Errorf("zero-seeded rng out of range: %d", v)
	}
}

func TestThroughputAndResultHelpers(t *testing.T) {
	r := Result{Ops: 1000, Elapsed: 2 * time.Second}
	if got := r.Throughput(); got != 500 {
		t.Errorf("Throughput = %f, want 500", got)
	}
	if (Result{}).Throughput() != 0 {
		t.Error("zero-elapsed throughput should be 0")
	}
}

func TestReadersWritersExplicitOrdering(t *testing.T) {
	// Admissions must respect ticket order; a violation would show up as
	// a deadlock (a later ticket admitted leaves an earlier one stranded)
	// or a non-zero check.
	r := RunReadersWritersN(Explicit, 3, 9, 60, 180)
	if r.Check != 0 {
		t.Errorf("check = %d", r.Check)
	}
	if r.Ops != 240 {
		t.Errorf("ops = %d, want 240", r.Ops)
	}
}

func TestH2OOddTotalRoundsUp(t *testing.T) {
	r := RunH2O(AutoSynch, 3, 99) // odd: must round to 100 atoms
	if r.Check != 0 {
		t.Errorf("check = %d", r.Check)
	}
	if r.Ops != 50 {
		t.Errorf("molecules = %d, want 50", r.Ops)
	}
}

func TestBarberBalkingUnderTinyShop(t *testing.T) {
	// With one chair and many customers, balking must occur and still
	// conserve visits.
	r := RunBarberChairs(AutoSynch, 8, 400, 1)
	if r.Check != 0 {
		t.Errorf("check = %d", r.Check)
	}
	if r.Ops == 0 {
		t.Error("no haircuts at all")
	}
}

func TestPhilosophersMinimumSize(t *testing.T) {
	r := RunPhilosophers(AutoSynch, 1, 50) // clamped to 2
	if r.Check != 0 {
		t.Errorf("check = %d", r.Check)
	}
}

func TestBoundedBufferCapOne(t *testing.T) {
	// Capacity 1 forces strict alternation, the tightest coupling.
	for _, mech := range All {
		r := RunBoundedBufferCap(mech, 4, 200, 1)
		if r.Check != 0 {
			t.Errorf("%s: check = %d", mech, r.Check)
		}
	}
}
