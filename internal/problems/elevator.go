package problems

import (
	"sync"
	"time"

	"repro/internal/core"
)

// DefaultElevatorCap is the cabin capacity of the ticketed elevator.
const DefaultElevatorCap = 8

func init() {
	Register(Spec{
		Name:           "ticketed-elevator",
		Runner:         RunElevator,
		DefaultThreads: 32,
		CheckDesc:      "every ticket boarded and arrived, cabin empty",
	})
}

// RunElevator is a ticketed elevator: riders take monotonically
// increasing tickets and one elevator thread serves them in strict ticket
// order, boarding up to DefaultElevatorCap riders per trip. Each ride is
// a two-phase wait — first for the boarding watermark to pass the rider's
// ticket, then for the arrival watermark — so every rider parks twice per
// operation on threshold predicates with unbounded keys, while the
// elevator alternates between waiting for calls and waiting for the cabin
// to fill and drain.
//
// threads is the number of rider threads; totalOps the total number of
// rides. Ops counts rides; Check is (tickets − arrivedUpTo) + inCabin
// (must be 0: every ticket served, cabin empty).
func RunElevator(mech Mechanism, threads, totalOps int) Result {
	return RunElevatorCap(mech, threads, totalOps, DefaultElevatorCap)
}

// RunElevatorCap is RunElevator with an explicit cabin capacity.
func RunElevatorCap(mech Mechanism, threads, totalOps, cabCap int) Result {
	if threads < 1 {
		threads = 1
	}
	if cabCap < 1 {
		cabCap = 1
	}
	rides := split(totalOps, threads)
	switch mech {
	case Explicit:
		return runElevatorExplicit(rides, totalOps, cabCap)
	case Baseline:
		return runElevatorBaseline(rides, totalOps, cabCap)
	default:
		return runElevatorAuto(mech, rides, totalOps, cabCap)
	}
}

// Shared state shape for all variants: tickets is the monotone ticket
// counter; boardedUpTo and arrivedUpTo are watermarks (tickets below them
// may board / have arrived); inCabin counts riders currently aboard. The
// elevator grants boarding in ticket order in batches of at most the
// cabin capacity, waits for the batch to board, "moves", releases it, and
// waits for the cabin to drain.

func runElevatorExplicit(rides []int, totalRides, cabCap int) Result {
	m := core.NewExplicit()
	callCond := m.NewCond()  // elevator waits for outstanding tickets
	cabinCond := m.NewCond() // elevator waits for the cabin to fill/drain
	arriveCond := m.NewCond()
	boardConds := map[int64]*core.Cond{} // ticket -> boarding condition
	var tickets, boardedUpTo, arrivedUpTo int64
	inCabin := 0
	var completed int64

	var wg sync.WaitGroup
	start := time.Now()
	wg.Add(1)
	go func() { // the elevator
		defer wg.Done()
		served := 0
		for served < totalRides {
			m.Enter()
			callCond.Await(func() bool { return tickets > boardedUpTo })
			grant := int(tickets - boardedUpTo)
			if grant > cabCap {
				grant = cabCap
			}
			lo := boardedUpTo
			boardedUpTo += int64(grant)
			for t := lo; t < boardedUpTo; t++ {
				if c, ok := boardConds[t]; ok {
					c.Signal()
					delete(boardConds, t)
				}
			}
			g := grant
			cabinCond.Await(func() bool { return inCabin == g })
			// travel (empty: saturation test)
			arrivedUpTo = boardedUpTo
			arriveCond.Broadcast() // doors open: the whole batch leaves
			cabinCond.Await(func() bool { return inCabin == 0 })
			m.Exit()
			served += grant
		}
	}()
	var rg sync.WaitGroup
	for r := 0; r < len(rides); r++ {
		rg.Add(1)
		go func(ops int) {
			defer rg.Done()
			for i := 0; i < ops; i++ {
				m.Enter()
				t := tickets
				tickets++
				callCond.Signal()
				if !(boardedUpTo > t) {
					c, ok := boardConds[t]
					if !ok {
						c = m.NewCond()
						boardConds[t] = c
					}
					c.Await(func() bool { return boardedUpTo > t })
				}
				inCabin++
				cabinCond.Signal()
				arriveCond.Await(func() bool { return arrivedUpTo > t })
				inCabin--
				cabinCond.Signal()
				completed++
				m.Exit()
			}
		}(rides[r])
	}
	rg.Wait()
	wg.Wait()
	elapsed := time.Since(start)
	return finish(Explicit, m, elapsed, completed, (tickets-arrivedUpTo)+int64(inCabin))
}

func runElevatorBaseline(rides []int, totalRides, cabCap int) Result {
	m := core.NewBaseline()
	var tickets, boardedUpTo, arrivedUpTo int64
	inCabin := 0
	var completed int64

	var wg sync.WaitGroup
	start := time.Now()
	wg.Add(1)
	go func() {
		defer wg.Done()
		served := 0
		for served < totalRides {
			m.Enter()
			m.Await(func() bool { return tickets > boardedUpTo })
			grant := int(tickets - boardedUpTo)
			if grant > cabCap {
				grant = cabCap
			}
			boardedUpTo += int64(grant)
			g := grant
			m.Await(func() bool { return inCabin == g })
			arrivedUpTo = boardedUpTo
			m.Await(func() bool { return inCabin == 0 })
			m.Exit()
			served += grant
		}
	}()
	var rg sync.WaitGroup
	for r := 0; r < len(rides); r++ {
		rg.Add(1)
		go func(ops int) {
			defer rg.Done()
			for i := 0; i < ops; i++ {
				m.Enter()
				t := tickets
				tickets++
				m.Await(func() bool { return boardedUpTo > t })
				inCabin++
				m.Await(func() bool { return arrivedUpTo > t })
				inCabin--
				completed++
				m.Exit()
			}
		}(rides[r])
	}
	rg.Wait()
	wg.Wait()
	elapsed := time.Since(start)
	return finish(Baseline, m, elapsed, completed, (tickets-arrivedUpTo)+int64(inCabin))
}

func runElevatorAuto(mech Mechanism, rides []int, totalRides, cabCap int) Result {
	m := newAuto(mech)
	tickets := m.NewInt("tickets", 0)
	boardedUpTo := m.NewInt("boardedUpTo", 0)
	arrivedUpTo := m.NewInt("arrivedUpTo", 0)
	inCabin := m.NewInt("inCabin", 0)
	hasTickets := m.MustCompile("tickets > boardedUpTo")
	cabinFull := m.MustCompile("inCabin == g")
	cabinEmpty := m.MustCompile("inCabin == 0")
	boarded := m.MustCompile("boardedUpTo > t")
	arrived := m.MustCompile("arrivedUpTo > t")
	var completed int64

	var wg sync.WaitGroup
	start := time.Now()
	wg.Add(1)
	go func() {
		defer wg.Done()
		served := 0
		for served < totalRides {
			m.Enter()
			await(hasTickets)
			grant := int(tickets.Get() - boardedUpTo.Get())
			if grant > cabCap {
				grant = cabCap
			}
			boardedUpTo.Add(int64(grant))
			await(cabinFull, core.BindInt("g", int64(grant)))
			arrivedUpTo.Set(boardedUpTo.Get())
			await(cabinEmpty)
			m.Exit()
			served += grant
		}
	}()
	var rg sync.WaitGroup
	for r := 0; r < len(rides); r++ {
		rg.Add(1)
		go func(ops int) {
			defer rg.Done()
			for i := 0; i < ops; i++ {
				m.Enter()
				t := tickets.Get()
				tickets.Add(1)
				await(boarded, core.BindInt("t", t))
				inCabin.Add(1)
				await(arrived, core.BindInt("t", t))
				inCabin.Add(-1)
				completed++
				m.Exit()
			}
		}(rides[r])
	}
	rg.Wait()
	wg.Wait()
	elapsed := time.Since(start)
	var check int64
	m.Do(func() { check = (tickets.Get() - arrivedUpTo.Get()) + inCabin.Get() })
	return finish(mech, m, elapsed, completed, check)
}
