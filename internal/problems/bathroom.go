package problems

import (
	"sync"
	"time"

	"repro/internal/core"
)

// DefaultBathroomCap is the number of stalls in the unisex bathroom.
const DefaultBathroomCap = 4

func init() {
	Register(Spec{
		Name:           "unisex-bathroom",
		Runner:         RunBathroom,
		DefaultThreads: 32,
		CheckDesc:      "nobody left inside the bathroom",
	})
}

// RunBathroom is the unisex bathroom problem (Andrews): men and women
// share a bathroom with DefaultBathroomCap stalls, but only one gender
// may be inside at a time. Both waiting conditions are static shared
// predicates (no thread-local variables), so all four mechanisms register
// exactly two predicates — the contrast case to the unbounded-key
// workloads. threads is the total number of users (half men, half women,
// at least one each); totalOps the total number of visits. Ops counts
// visits; Check is the number of occupants left inside (must be 0).
func RunBathroom(mech Mechanism, threads, totalOps int) Result {
	return RunBathroomCap(mech, threads, totalOps, DefaultBathroomCap)
}

// RunBathroomCap is RunBathroom with an explicit stall count.
func RunBathroomCap(mech Mechanism, threads, totalOps, stalls int) Result {
	menCount := threads / 2
	if menCount == 0 {
		menCount = 1
	}
	womenCount := threads - menCount
	if womenCount == 0 {
		womenCount = 1
	}
	menOps := split(totalOps/2, menCount)
	womenOps := split(totalOps-totalOps/2, womenCount)
	switch mech {
	case Explicit:
		return runBathroomExplicit(menOps, womenOps, stalls)
	case Baseline:
		return runBathroomBaseline(menOps, womenOps, stalls)
	default:
		return runBathroomAuto(mech, menOps, womenOps, stalls)
	}
}

// Shared state shape for all variants: men and women count the occupants
// of each gender; the invariant men == 0 || women == 0 is what the
// waiting conditions enforce.

func runBathroomExplicit(menOps, womenOps []int, stalls int) Result {
	m := core.NewExplicit()
	menWait := m.NewCond()
	womenWait := m.NewCond()
	men, women := 0, 0

	// The explicit version uses cascading signals: an entering user passes
	// the wake-up on while stalls remain, and the last user of a gender to
	// leave hands the bathroom to the other gender's queue.
	var wg sync.WaitGroup
	start := time.Now()
	user := func(ops int, mine, other *int, myCond, otherCond *core.Cond) {
		defer wg.Done()
		for i := 0; i < ops; i++ {
			m.Enter()
			myCond.Await(func() bool { return *other == 0 && *mine < stalls })
			*mine++
			if *other == 0 && *mine < stalls {
				myCond.Signal() // cascade: another of my gender may enter
			}
			m.Exit()
			// use a stall (empty: saturation test)
			m.Enter()
			*mine--
			myCond.Signal() // a stall freed for my gender
			if *mine == 0 {
				otherCond.Signal() // bathroom handed to the other gender
			}
			m.Exit()
		}
	}
	for _, ops := range menOps {
		wg.Add(1)
		go user(ops, &men, &women, menWait, womenWait)
	}
	for _, ops := range womenOps {
		wg.Add(1)
		go user(ops, &women, &men, womenWait, menWait)
	}
	wg.Wait()
	elapsed := time.Since(start)
	return finish(Explicit, m, elapsed, opsSum(menOps)+opsSum(womenOps), int64(men+women))
}

func runBathroomBaseline(menOps, womenOps []int, stalls int) Result {
	m := core.NewBaseline()
	men, women := 0, 0

	var wg sync.WaitGroup
	start := time.Now()
	user := func(ops int, mine, other *int) {
		defer wg.Done()
		for i := 0; i < ops; i++ {
			m.Enter()
			m.Await(func() bool { return *other == 0 && *mine < stalls })
			*mine++
			m.Exit()
			m.Enter()
			*mine--
			m.Exit()
		}
	}
	for _, ops := range menOps {
		wg.Add(1)
		go user(ops, &men, &women)
	}
	for _, ops := range womenOps {
		wg.Add(1)
		go user(ops, &women, &men)
	}
	wg.Wait()
	elapsed := time.Since(start)
	return finish(Baseline, m, elapsed, opsSum(menOps)+opsSum(womenOps), int64(men+women))
}

func runBathroomAuto(mech Mechanism, menOps, womenOps []int, stalls int) Result {
	m := newAuto(mech)
	men := m.NewInt("men", 0)
	women := m.NewInt("women", 0)
	stallCells := m.NewInt("stalls", int64(stalls))

	// Both waiting conditions through the typed builder: they lower to the
	// same compiled predicates as the strings "women == 0 && men < stalls"
	// and "men == 0 && women < stalls".
	menEnter := m.MustCompileExpr(core.And(
		women.EqualTo(core.Lit(0)), men.LessThan(stallCells.Expr())))
	womenEnter := m.MustCompileExpr(core.And(
		men.EqualTo(core.Lit(0)), women.LessThan(stallCells.Expr())))

	var wg sync.WaitGroup
	start := time.Now()
	user := func(ops int, mine *core.IntCell, canEnter *core.Predicate) {
		defer wg.Done()
		for i := 0; i < ops; i++ {
			m.Enter()
			await(canEnter)
			mine.Add(1)
			m.Exit()
			m.Enter()
			mine.Add(-1)
			m.Exit()
		}
	}
	for _, ops := range menOps {
		wg.Add(1)
		go user(ops, men, menEnter)
	}
	for _, ops := range womenOps {
		wg.Add(1)
		go user(ops, women, womenEnter)
	}
	wg.Wait()
	elapsed := time.Since(start)
	var inside int64
	m.Do(func() { inside = men.Get() + women.Get() })
	return finish(mech, m, elapsed, opsSum(menOps)+opsSum(womenOps), inside)
}
