package problems

import (
	"sync"
	"time"

	"repro/internal/core"
)

// Topics is the pub/sub broker's fixed topic count: one Select case per
// topic, so the broker's multiplexing is static and every topic predicate
// is statically known to the code generator.
const Topics = 3

func init() {
	Register(Spec{
		Name:           "pubsub-broker",
		Runner:         RunPubSub,
		DefaultThreads: 16,
		CheckDesc:      "every published message fanned out to every subscriber exactly once",
	})
}

// RunPubSub is a publish/subscribe broker multiplexed with Select:
// publishers append messages to per-topic queues, and a single broker
// thread Selects across the topic guards ("p0 >= 1", "p1 >= 1",
// "p2 >= 1") plus a stop guard that only becomes true when publishing is
// done and every topic has drained — so the broker parks on whichever
// topic fires next instead of polling. Each relayed message fans out to
// all subscribers by crediting the shared fan-out queue once per
// subscriber; subscribers consume one credit at a time ("q >= 1 ||
// flushed") and exit when the broker has flushed. Conservation counts
// every hop: published × subscribers must equal consumed, with both the
// topic queues and the fan-out queue empty.
//
// threads splits into subscribers (half, at least one), one broker, and
// publishers (the rest); totalOps messages are published in total. Ops
// counts fan-out deliveries consumed; Check is (consumed − published ×
// subscribers) plus all queue residues (must be 0).
func RunPubSub(mech Mechanism, threads, totalOps int) Result {
	if threads < 3 {
		threads = 3
	}
	subs := threads / 2
	if subs < 1 {
		subs = 1
	}
	pubs := threads - subs - 1 // one thread is the broker
	if pubs < 1 {
		pubs = 1
	}
	pubOps := split(totalOps, pubs)
	switch mech {
	case Explicit:
		return runPubSubExplicit(pubOps, subs)
	case Baseline:
		return runPubSubBaseline(pubOps, subs)
	default:
		return runPubSubAuto(mech, pubOps, subs)
	}
}

func runPubSubAuto(mech Mechanism, pubOps []int, subs int) Result {
	m := newAuto(mech)
	topics := []*core.IntCell{
		m.NewInt("p0", 0), m.NewInt("p1", 0), m.NewInt("p2", 0),
	}
	q := m.NewInt("q", 0)
	done := m.NewBool("done", false)
	flushed := m.NewBool("flushed", false)
	topicPreds := []*core.Predicate{
		m.MustCompile("p0 >= 1"), m.MustCompile("p1 >= 1"), m.MustCompile("p2 >= 1"),
	}
	stopPred := m.MustCompile("done && p0 <= 0 && p1 <= 0 && p2 <= 0")
	deliverable := m.MustCompile("q >= 1 || flushed")

	consumed := make([]int64, subs)

	var pwg, swg, bwg sync.WaitGroup
	start := time.Now()
	for i := range pubOps {
		pwg.Add(1)
		go func(i, n int) {
			defer pwg.Done()
			for j := 0; j < n; j++ {
				t := (i + j) % Topics
				m.Do(func() { topics[t].Add(1) })
			}
		}(i, pubOps[i])
	}
	bwg.Add(1)
	go func() { // broker: one Select per relayed message
		defer bwg.Done()
		cases := make([]core.Case, 0, Topics+1)
		stop := false
		for t := 0; t < Topics; t++ {
			t := t
			cases = append(cases, m.When(topicPreds[t]).Then(func() {
				topics[t].Add(-1)
				q.Add(int64(subs)) // fan out: one credit per subscriber
			}))
		}
		cases = append(cases, m.When(stopPred).Then(func() {
			flushed.Set(true)
			stop = true
		}))
		for !stop {
			if _, err := core.Select(cases...); err != nil {
				panic(err)
			}
		}
	}()
	for s := 0; s < subs; s++ {
		swg.Add(1)
		go func(s int) {
			defer swg.Done()
			for {
				m.Enter()
				await(deliverable)
				if q.Get() >= 1 {
					q.Add(-1)
					consumed[s]++
					m.Exit()
					continue
				}
				fin := flushed.Get()
				m.Exit()
				if fin {
					return
				}
			}
		}(s)
	}
	pwg.Wait()
	m.Do(func() { done.Set(true) })
	bwg.Wait()
	swg.Wait()
	elapsed := time.Since(start)

	var published int64
	for _, n := range pubOps {
		published += int64(n)
	}
	var got int64
	for _, c := range consumed {
		got += c
	}
	var residue int64
	m.Do(func() {
		residue = q.Get()
		for _, tc := range topics {
			residue += tc.Get()
		}
	})
	return finish(mech, m, elapsed, got, (got-published*int64(subs))+residue)
}

func runPubSubExplicit(pubOps []int, subs int) Result {
	m := core.NewExplicit()
	topicCond := m.NewCond() // broker waits here, one cond for all topics + stop
	subCond := m.NewCond()   // subscribers wait for fan-out credits
	topics := make([]int64, Topics)
	var q int64
	var done, flushed bool

	consumed := make([]int64, subs)

	var pwg, swg, bwg sync.WaitGroup
	start := time.Now()
	for i := range pubOps {
		pwg.Add(1)
		go func(i, n int) {
			defer pwg.Done()
			for j := 0; j < n; j++ {
				t := (i + j) % Topics
				m.Enter()
				topics[t]++
				topicCond.Signal()
				m.Exit()
			}
		}(i, pubOps[i])
	}
	bwg.Add(1)
	go func() {
		defer bwg.Done()
		cases := make([]core.Case, 0, Topics+1)
		stop := false
		for t := 0; t < Topics; t++ {
			t := t
			cases = append(cases, topicCond.When(func() bool { return topics[t] >= 1 }).Then(func() {
				topics[t]--
				q += int64(subs)
				for s := 0; s < subs; s++ {
					subCond.Signal()
				}
			}))
		}
		cases = append(cases, topicCond.When(func() bool {
			return done && topics[0] <= 0 && topics[1] <= 0 && topics[2] <= 0
		}).Then(func() {
			flushed = true
			subCond.Broadcast()
			stop = true
		}))
		for !stop {
			if _, err := core.Select(cases...); err != nil {
				panic(err)
			}
		}
	}()
	for s := 0; s < subs; s++ {
		swg.Add(1)
		go func(s int) {
			defer swg.Done()
			for {
				m.Enter()
				subCond.Await(func() bool { return q >= 1 || flushed })
				if q >= 1 {
					q--
					consumed[s]++
					m.Exit()
					continue
				}
				fin := flushed
				m.Exit()
				if fin {
					return
				}
			}
		}(s)
	}
	pwg.Wait()
	m.Enter()
	done = true
	topicCond.Broadcast()
	m.Exit()
	bwg.Wait()
	swg.Wait()
	elapsed := time.Since(start)

	var published int64
	for _, n := range pubOps {
		published += int64(n)
	}
	var got int64
	for _, c := range consumed {
		got += c
	}
	residue := q
	for _, tc := range topics {
		residue += tc
	}
	return finish(Explicit, m, elapsed, got, (got-published*int64(subs))+residue)
}

func runPubSubBaseline(pubOps []int, subs int) Result {
	m := core.NewBaseline()
	topics := make([]int64, Topics)
	var q int64
	var done, flushed bool

	consumed := make([]int64, subs)

	var pwg, swg, bwg sync.WaitGroup
	start := time.Now()
	for i := range pubOps {
		pwg.Add(1)
		go func(i, n int) {
			defer pwg.Done()
			for j := 0; j < n; j++ {
				t := (i + j) % Topics
				m.Do(func() { topics[t]++ })
			}
		}(i, pubOps[i])
	}
	bwg.Add(1)
	go func() {
		defer bwg.Done()
		cases := make([]core.Case, 0, Topics+1)
		stop := false
		for t := 0; t < Topics; t++ {
			t := t
			cases = append(cases, m.WhenFunc(func() bool { return topics[t] >= 1 }).Then(func() {
				topics[t]--
				q += int64(subs)
			}))
		}
		cases = append(cases, m.WhenFunc(func() bool {
			return done && topics[0] <= 0 && topics[1] <= 0 && topics[2] <= 0
		}).Then(func() {
			flushed = true
			stop = true
		}))
		for !stop {
			if _, err := core.Select(cases...); err != nil {
				panic(err)
			}
		}
	}()
	for s := 0; s < subs; s++ {
		swg.Add(1)
		go func(s int) {
			defer swg.Done()
			for {
				m.Enter()
				m.Await(func() bool { return q >= 1 || flushed })
				if q >= 1 {
					q--
					consumed[s]++
					m.Exit()
					continue
				}
				fin := flushed
				m.Exit()
				if fin {
					return
				}
			}
		}(s)
	}
	pwg.Wait()
	m.Do(func() { done = true })
	bwg.Wait()
	swg.Wait()
	elapsed := time.Since(start)

	var published int64
	for _, n := range pubOps {
		published += int64(n)
	}
	var got int64
	for _, c := range consumed {
		got += c
	}
	residue := q
	for _, tc := range topics {
		residue += tc
	}
	return finish(Baseline, m, elapsed, got, (got-published*int64(subs))+residue)
}
