package problems

import (
	"errors"
	"sync"
	"time"

	"repro/internal/core"
)

// Parameters of the connection pool: at most MaxOpen connections exist
// at once, and at most MaxIdle of them are parked idle — a release that
// would exceed MaxIdle closes the connection instead. AcquireTimeout is
// the deadline'd acquire's patience per attempt; an expired attempt is
// counted and retried, so the workload cannot wedge and the completed
// operation count stays deterministic.
const (
	MaxOpen        = 6
	MaxIdle        = 3
	AcquireTimeout = 2 * time.Millisecond
)

func init() {
	Register(Spec{
		Name:           "connection-pool",
		Runner:         RunConnPool,
		DefaultThreads: 16,
		CheckDesc:      "no busy connections left, idle set within max-idle",
	})
}

// RunConnPool is a bounded connection pool with a max-idle cap and a
// deadline'd acquire — the registry's exercise of the timer-wheel wait
// path under saturation. Each client operation acquires a connection
// (reuse an idle one, or open a new one while open < cap) with
// AcquireTimeout of patience per attempt: an attempt that expires returns
// ErrDeadline still holding the monitor, is counted, and retried — the
// Mesa-style recheck after expiry is the property under test. A release
// parks the connection idle if the idle set has room and closes it
// otherwise ("max idle"). Acquire eligibility is "idle >= 1 || open <
// cap": two-sided, so the explicit version signals both on release and
// on close.
//
// threads is the number of client threads; totalOps the total number of
// successful acquire/release cycles. Ops counts completed cycles; Check
// is busy connections left (open − idle) plus any idle excess over
// MaxIdle (must be 0).
func RunConnPool(mech Mechanism, threads, totalOps int) Result {
	if threads < 1 {
		threads = 1
	}
	ops := split(totalOps, threads)
	switch mech {
	case Explicit:
		return runConnPoolExplicit(ops)
	case Baseline:
		return runConnPoolBaseline(ops)
	default:
		return runConnPoolAuto(mech, ops)
	}
}

// connPoolCheck computes the conservation value from the final idle and
// open counts: no connection may still be busy, and the idle set must
// respect the max-idle cap.
func connPoolCheck(open, idle int64) int64 {
	check := open - idle // busy connections still out
	if idle > MaxIdle {
		check += idle - MaxIdle
	}
	return check
}

func runConnPoolAuto(mech Mechanism, ops []int) Result {
	m := newAuto(mech)
	idle := m.NewInt("idle", 0)
	open := m.NewInt("open", 0)
	m.NewInt("cap", MaxOpen)
	available := m.MustCompile("idle >= 1 || open < cap")

	var wg sync.WaitGroup
	start := time.Now()
	for i := range ops {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for op := 0; op < n; op++ {
				m.Enter()
				for {
					err := available.AwaitDeadline(time.Now().Add(AcquireTimeout))
					if err == nil {
						break
					}
					if !errors.Is(err, core.ErrDeadline) {
						panic(err)
					}
					// Expired still holding the monitor: retry in place.
				}
				if idle.Get() >= 1 {
					idle.Add(-1)
				} else {
					open.Add(1)
				}
				m.Exit()
				// use the connection (empty: saturation test)
				m.Enter()
				if idle.Get() < MaxIdle {
					idle.Add(1)
				} else {
					open.Add(-1) // close: the idle set is full
				}
				m.Exit()
			}
		}(ops[i])
	}
	wg.Wait()
	elapsed := time.Since(start)
	var completed int64
	for _, n := range ops {
		completed += int64(n)
	}
	var fi, fo int64
	m.Do(func() { fi, fo = idle.Get(), open.Get() })
	return finish(mech, m, elapsed, completed, connPoolCheck(fo, fi))
}

func runConnPoolExplicit(ops []int) Result {
	m := core.NewExplicit()
	availCond := m.NewCond()
	var idle, open int64

	var wg sync.WaitGroup
	start := time.Now()
	for i := range ops {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for op := 0; op < n; op++ {
				m.Enter()
				for {
					err := availCond.AwaitDeadline(time.Now().Add(AcquireTimeout),
						func() bool { return idle >= 1 || open < MaxOpen })
					if err == nil {
						break
					}
					if !errors.Is(err, core.ErrDeadline) {
						panic(err)
					}
				}
				if idle >= 1 {
					idle--
				} else {
					open++
				}
				m.Exit()
				m.Enter()
				if idle < MaxIdle {
					idle++
				} else {
					open--
				}
				// Either path makes an acquire eligible (an idle conn, or
				// headroom under the open cap): wake an acquirer.
				availCond.Signal()
				m.Exit()
			}
		}(ops[i])
	}
	wg.Wait()
	elapsed := time.Since(start)
	var completed int64
	for _, n := range ops {
		completed += int64(n)
	}
	return finish(Explicit, m, elapsed, completed, connPoolCheck(open, idle))
}

func runConnPoolBaseline(ops []int) Result {
	m := core.NewBaseline()
	var idle, open int64

	var wg sync.WaitGroup
	start := time.Now()
	for i := range ops {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for op := 0; op < n; op++ {
				m.Enter()
				for {
					err := m.AwaitFuncDeadline(time.Now().Add(AcquireTimeout),
						func() bool { return idle >= 1 || open < MaxOpen })
					if err == nil {
						break
					}
					if !errors.Is(err, core.ErrDeadline) {
						panic(err)
					}
				}
				if idle >= 1 {
					idle--
				} else {
					open++
				}
				m.Exit()
				m.Enter()
				if idle < MaxIdle {
					idle++
				} else {
					open--
				}
				m.Exit()
			}
		}(ops[i])
	}
	wg.Wait()
	elapsed := time.Since(start)
	var completed int64
	for _, n := range ops {
		completed += int64(n)
	}
	return finish(Baseline, m, elapsed, completed, connPoolCheck(open, idle))
}
