package problems

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/shard"
	"repro/internal/stats"
	"repro/internal/watchd"
)

func init() {
	// Presentation drops the baseline like the other standing-watch
	// scenarios (its exit broadcast re-wakes the whole session population
	// on every publish); the differential test still runs it at small
	// scale.
	Register(Spec{
		Name:           "watch-service",
		Runner:         RunWatchService,
		DefaultThreads: 256,
		Mechs:          NoBaseline,
		CheckDesc:      "daemon drained: zero residual sessions, zombies, and registered waiters",
		OpsVary:        true,
		Sharded:        true,
	})
}

// RunWatchService is the watchd daemon as a registry scenario: threads
// standing watch sessions are held over a striped key space while
// publishers bump random keys, every delivery immediately renews its
// session (the auto-renewing consumer of the soak harness), and the run
// drains to nothing at the end. This is the armed-handle counterpart of
// sharded-kv's parked watches: no goroutine blocks per session; a few
// dispatchers multiplex every handle.
//
// The automatic variants run the real watchd.Daemon over a sharded
// monitor; the explicit and baseline variants are the hand-built striped
// engine a programmer would write — per-key conditions with explicit
// broadcasts (or the baseline's exit broadcast), armed handles
// multiplexed per stripe. All four report wake-to-claim latency in
// Result.Latency.
//
// totalOps counts publishes; Ops is publishes plus deliveries (delivery
// counts are schedule-dependent — renews coalesce versions — so the spec
// declares OpsVary). Check sums residual sessions, zombie notifications,
// and registered waiters after the drain; zero certifies leak freedom.
func RunWatchService(mech Mechanism, threads, totalOps int) Result {
	sessions := threads
	if sessions < 1 {
		sessions = 1
	}
	keys := sessions / 4
	if keys < 32 {
		keys = 32
	}
	publishers := 4
	if publishers > totalOps {
		publishers = 1
	}
	pubOps := split(totalOps, publishers)
	switch mech {
	case Explicit, Baseline:
		return runWatchStriped(mech, sessions, keys, pubOps, ShardCount())
	default:
		return runWatchAuto(mech, sessions, keys, pubOps, ShardCount())
	}
}

// watchSeed decorrelates the publishers' key sequences.
func watchSeed(p int) uint64 { return uint64(p)*0x9e3779b97f4a7c15 + 11 }

// runWatchAuto drives the real daemon under mech's monitor variant.
func runWatchAuto(mech Mechanism, sessions, keys int, pubOps []int, shards int) Result {
	d := watchd.New(watchd.Config{
		Keys:           keys,
		Shards:         shards,
		MaxSessions:    sessions + 16,
		MonitorOptions: autoOpts(mech),
		OnEvent:        func(ev watchd.Event) { ev.Session.Renew() },
	})
	for i := 0; i < sessions; i++ {
		if _, err := d.Register(uint64(i % keys)); err != nil {
			panic(fmt.Sprintf("watch-service fill: %v", err))
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	for p, n := range pubOps {
		wg.Add(1)
		go func(p, n int) {
			defer wg.Done()
			rng := newRand(watchSeed(p))
			for j := 0; j < n; j++ {
				k := uint64(rng.intn(int64(keys)) - 1)
				if _, err := d.Publish(k); err != nil {
					panic(err)
				}
			}
		}(p, n)
	}
	wg.Wait()
	// Quiesce: every delivery renews its session, so the armed population
	// returns to full strength once the last in-flight claims finalize.
	for d.ArmedSessions() < int64(sessions) {
		time.Sleep(50 * time.Microsecond)
	}
	elapsed := time.Since(start)

	closeErr := d.Close()
	st := d.Stats()
	var totalPub int64
	for _, n := range pubOps {
		totalPub += int64(n)
	}
	check := st.Active + st.Zombies + int64(st.Waiting)
	if closeErr != nil && check == 0 {
		check = 1
	}
	hist := st.WakeToClaim
	return Result{Mechanism: mech, Elapsed: elapsed, Stats: st.Monitor,
		Ops: totalPub + int64(st.Delivered), Check: check, Latency: &hist}
}

// watchSession is one standing watch of the hand-striped engine.
type watchSession struct {
	key  int
	want int64
	w    *core.Wait
	done bool
}

// runWatchStriped is the engine a programmer builds without the automatic
// machinery: versions striped across explicit or baseline monitors, one
// dispatcher goroutine per stripe multiplexing its sessions' armed
// handles. The explicit variant keeps a condition per key and broadcasts
// it on publish (watchers hold different thresholds, so signal-one is not
// sufficient); the baseline variant arms any-signal handles and relies on
// the exit broadcast. Termination is by flush: after the publishers
// finish, a stop flag is raised and every key is bumped once more, so
// every armed handle fires, claims its final version, and retires without
// re-arming — no cancels, so the delivery channels drain exactly.
func runWatchStriped(mech Mechanism, sessions, keys int, pubOps []int, shards int) Result {
	type stripe struct {
		m     core.Mechanism
		enter func()
		exit  func()
		stop  bool // set under the stripe lock before the flush bumps
	}
	stripes := make([]*stripe, shards)
	vers := make([]int64, keys)
	var vcond []*core.Cond // explicit only: per-key condition
	for s := range stripes {
		stripes[s] = &stripe{}
	}
	switch mech {
	case Explicit:
		vcond = make([]*core.Cond, keys)
		for s := range stripes {
			e := core.NewExplicit()
			stripes[s].m = e
			stripes[s].enter = e.Enter
			stripes[s].exit = e.Exit
		}
		for k := range vcond {
			vcond[k] = stripes[shard.IndexFor(uint64(k), shards)].m.(*core.Explicit).NewCond()
		}
	default:
		for s := range stripes {
			b := core.NewBaseline()
			stripes[s].m = b
			stripes[s].enter = b.Enter
			stripes[s].exit = b.Exit
		}
	}
	owner := func(k int) *stripe { return stripes[shard.IndexFor(uint64(k), shards)] }

	// Sessions grouped per stripe, each stripe with its own dispatcher and
	// delivery channel; capacity covers one outstanding notification per
	// session (a handle sends at most once per arm cycle, and the flush
	// protocol never cancels).
	perStripe := make([][]*watchSession, shards)
	for i := 0; i < sessions; i++ {
		k := i % keys
		s := shard.IndexFor(uint64(k), shards)
		perStripe[s] = append(perStripe[s], &watchSession{key: k, want: 1})
	}
	arm := func(st *stripe, ws *watchSession) {
		pred := func() bool { return vers[ws.key] >= ws.want }
		if mech == Explicit {
			ws.w = vcond[ws.key].Arm(pred)
		} else {
			ws.w = st.m.ArmFunc(pred)
		}
	}

	var (
		wg, dwg   sync.WaitGroup
		histMu    sync.Mutex
		hist      stats.Histogram
		delivered int64
	)
	for s := range stripes {
		st := stripes[s]
		group := perStripe[s]
		ch := make(chan int, len(group)+8)
		for i, ws := range group {
			arm(st, ws)
			ws.w.Subscribe(ch, i)
		}
		dwg.Add(1)
		go func(st *stripe, group []*watchSession, ch chan int) {
			defer dwg.Done()
			var local stats.Histogram
			var nDelivered int64
			remaining := len(group)
			for remaining > 0 {
				i := <-ch
				t0 := time.Now()
				ws := group[i]
				if ws.done {
					continue
				}
				err := ws.w.Claim()
				if err == core.ErrNotReady {
					continue
				}
				if err != nil {
					panic(err)
				}
				// Claim succeeded: the stripe monitor is held.
				v := vers[ws.key]
				local.Observe(time.Since(t0))
				nDelivered++
				ws.want = v + 1
				if st.stop {
					ws.done = true
					remaining--
				} else {
					// Renew in place: re-arm for the next version on the
					// same subscription. Arm acquires the stripe lock, so
					// exit first.
					st.exit()
					arm(st, ws)
					ws.w.Subscribe(ch, i)
					continue
				}
				st.exit()
			}
			histMu.Lock()
			hist.Merge(&local)
			delivered += nDelivered
			histMu.Unlock()
		}(st, group, ch)
	}

	start := time.Now()
	for p, n := range pubOps {
		wg.Add(1)
		go func(p, n int) {
			defer wg.Done()
			rng := newRand(watchSeed(p))
			for j := 0; j < n; j++ {
				k := int(rng.intn(int64(keys)) - 1)
				st := owner(k)
				st.enter()
				vers[k]++
				if mech == Explicit {
					vcond[k].Broadcast()
				}
				st.exit()
			}
		}(p, n)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Flush: raise stop under each stripe lock, then bump every key once;
	// every armed session's threshold is at most vers[key]+1, so every
	// handle fires and retires on its next claim.
	for _, st := range stripes {
		st.enter()
		st.stop = true
		st.exit()
	}
	for k := 0; k < keys; k++ {
		st := owner(k)
		st.enter()
		vers[k]++
		if mech == Explicit {
			vcond[k].Broadcast()
		}
		st.exit()
	}
	dwg.Wait()

	var totalPub int64
	for _, n := range pubOps {
		totalPub += int64(n)
	}
	ms := make([]core.Mechanism, len(stripes))
	check := int64(0)
	for s, st := range stripes {
		ms[s] = st.m
		check += int64(st.m.Waiting())
	}
	return Result{Mechanism: mech, Elapsed: elapsed, Stats: stripeStats(ms...),
		Ops: totalPub + delivered, Check: check, Latency: &hist}
}
