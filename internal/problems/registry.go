package problems

import (
	"fmt"
	"sort"
)

// Spec describes one registered scenario: how to run it, a representative
// scale, which mechanisms the paper (or this repo) compares on it, what
// its conservation check certifies, and which figure of the paper it
// reproduces ("" for workloads that go beyond the paper's seven).
//
// Every consumer of the problem suite — the differential tests, the
// `go test -bench` entry points, the harness experiment index, and
// cmd/autosynch-bench — iterates this registry rather than keeping its
// own list, so a new workload becomes benchable, testable, and runnable
// everywhere by registering itself here.
type Spec struct {
	Name           string
	Runner         Runner
	DefaultThreads int         // representative thread count for single-point runs
	Mechs          []Mechanism // presentation lineup; nil means All
	CheckDesc      string      // what Check == 0 certifies
	Figure         string      // paper figure/table id, "" for beyond-paper workloads
	OpsVary        bool        // Ops legitimately differs across mechanisms (e.g. balking)
	Sharded        bool        // the runner stripes state across ShardCount() partitions
}

// Mechanisms returns the presentation lineup, defaulting to All.
func (s Spec) Mechanisms() []Mechanism {
	if len(s.Mechs) == 0 {
		return All
	}
	return s.Mechs
}

// Registry maps scenario names to their specs. Problem files register
// themselves in init; use Register to add scenarios from other packages.
var Registry = map[string]Spec{}

// Register adds a scenario to the registry. It panics on duplicate or
// malformed specs, so misregistration fails loudly at init time.
func Register(s Spec) {
	if s.Name == "" || s.Runner == nil {
		panic("problems: Register requires a name and a runner")
	}
	if s.DefaultThreads <= 0 {
		panic(fmt.Sprintf("problems: scenario %q has no default thread count", s.Name))
	}
	if _, dup := Registry[s.Name]; dup {
		panic(fmt.Sprintf("problems: scenario %q registered twice", s.Name))
	}
	Registry[s.Name] = s
}

// Lookup returns the spec registered under name.
func Lookup(name string) (Spec, bool) {
	s, ok := Registry[name]
	return s, ok
}

// MustLookup is Lookup for names that are known to be registered; it
// panics on a miss (a programming error, not an input error).
func MustLookup(name string) Spec {
	s, ok := Registry[name]
	if !ok {
		panic(fmt.Sprintf("problems: scenario %q not registered", name))
	}
	return s
}

// Names returns every registered scenario name in sorted order.
func Names() []string {
	names := make([]string, 0, len(Registry))
	for name := range Registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Specs returns every registered spec, sorted by name for deterministic
// iteration.
func Specs() []Spec {
	names := Names()
	specs := make([]Spec, len(names))
	for i, name := range names {
		specs[i] = Registry[name]
	}
	return specs
}
